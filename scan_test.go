package casper

import (
	"math"
	"testing"
)

// TestScanPublicAPI pins the public cursor surface: full drains agree with
// the aggregates, LIMIT caps totals, page tokens compose into a complete
// paginated drain, and bad tokens error instead of panicking.
func TestScanPublicAPI(t *testing.T) {
	keys := UniformKeys(5_000, 50_000, 3)
	opts := testOptions(ModeCasper)
	opts.Shards = 4
	e, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}

	c := e.Scan(math.MinInt64, math.MaxInt64, ScanOptions{})
	var n int
	var sum int64
	last := int64(math.MinInt64)
	for c.Next() {
		if c.Key() < last {
			t.Fatalf("scan regressed: %d after %d", c.Key(), last)
		}
		last = c.Key()
		if len(c.Payload()) != 3 {
			t.Fatalf("payload width %d, want 3", len(c.Payload()))
		}
		n++
		sum += c.Key()
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if n != e.RangeCount(math.MinInt64, math.MaxInt64) {
		t.Fatalf("scan drained %d rows, RangeCount says %d", n, e.RangeCount(math.MinInt64, math.MaxInt64))
	}
	if sum != e.RangeSum(math.MinInt64, math.MaxInt64) {
		t.Fatalf("scan key sum %d, RangeSum says %d", sum, e.RangeSum(math.MinInt64, math.MaxInt64))
	}

	// LIMIT caps the drain.
	c = e.Scan(math.MinInt64, math.MaxInt64, ScanOptions{Limit: 10})
	got := 0
	for c.Next() {
		got++
	}
	c.Close()
	if got != 10 {
		t.Fatalf("LIMIT 10 scan yielded %d rows", got)
	}

	// Page-token pagination re-drains the whole relation exactly once.
	paged, tok := 0, ""
	for {
		c := e.Scan(math.MinInt64, math.MaxInt64, ScanOptions{Limit: 997, PageToken: tok})
		pn := 0
		for c.Next() {
			pn++
		}
		tok = c.PageToken()
		c.Close()
		if pn == 0 {
			break
		}
		paged += pn
	}
	if paged != n {
		t.Fatalf("paginated drain %d rows, want %d", paged, n)
	}

	c = e.Scan(0, 10, ScanOptions{PageToken: "bogus"})
	if c.Next() || c.Err() == nil {
		t.Fatal("bogus page token did not error")
	}
	c.Close()
}

// TestScanViewPinnedPages checks the stable-pagination recipe: pages read
// from one View are unaffected by inserts landing between page reads of
// the outer engine.
func TestScanViewPinnedPages(t *testing.T) {
	keys := UniformKeys(2_000, 20_000, 9)
	opts := testOptions(ModeCasper)
	opts.Shards = 2
	e, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.View(func(v *View) {
		c1 := v.Scan(0, 20_000, ScanOptions{})
		var first []int64
		for c1.Next() {
			first = append(first, c1.Key())
		}
		c1.Close()
		c2 := v.Scan(0, 20_000, ScanOptions{})
		i := 0
		for c2.Next() {
			if i >= len(first) || c2.Key() != first[i] {
				t.Fatalf("view drains diverged at row %d", i)
			}
			i++
		}
		c2.Close()
		if i != len(first) {
			t.Fatalf("second view drain %d rows, first %d", i, len(first))
		}
	})
}

// TestScanOpExecuteAndMonitor checks the Scan op kind flows through
// Execute, honors its Limit, and lands in the public monitor so Retrain
// sees scan-shaped workloads.
func TestScanOpExecuteAndMonitor(t *testing.T) {
	e := openTest(t, ModeCasper, 2_000)
	e.StartMonitor(100)
	if got := e.Execute(Op{Kind: Scan, Key: 0, Key2: math.MaxInt64, Limit: 7}); got != 7 {
		t.Fatalf("Execute(Scan, Limit 7) = %d", got)
	}
	ops := e.StopMonitor()
	found := false
	for _, op := range ops {
		if op.Kind == Scan && op.Limit == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("Scan op not recorded by the monitor")
	}
	// A scan-heavy preset generates and trains without error.
	sample, err := PresetWorkload(ScanHeavy, UniformKeys(500, 20_000, 4), 20_000, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	nScan := 0
	for _, op := range sample {
		if op.Kind == Scan {
			nScan++
		}
	}
	if nScan == 0 {
		t.Fatal("scan-heavy preset generated no Scan ops")
	}
	if err := e.Train(sample, 2); err != nil {
		t.Fatalf("Train on scan-heavy sample: %v", err)
	}
}
