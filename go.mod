module casper

go 1.22
