// Command layoutopt is the offline layout advisor: given a workload mix it
// prints the optimal column layout (partition sizes and ghost allocation)
// Casper would apply, without loading any data — the "index advisor"-style
// workflow described in the paper's positioning (§1).
//
// Usage:
//
//	layoutopt -rows 1000000 -point 0.49 -range 0.0 -insert 0.50 -delete 0.0 -update 0.01 \
//	          [-skew recent|early|uniform] [-ghosts 0.001] [-read-sla NS] [-update-sla NS]
package main

import (
	"flag"
	"fmt"
	"os"

	"casper/internal/costmodel"
	"casper/internal/freq"
	"casper/internal/ghost"
	"casper/internal/iomodel"
	"casper/internal/solver"
)

func main() {
	var (
		rows      = flag.Int("rows", 1_000_000, "chunk size in values")
		blockKB   = flag.Int("block-kb", 16, "block size in KB")
		pointF    = flag.Float64("point", 0.5, "point query fraction")
		rangeF    = flag.Float64("range", 0, "range query fraction")
		rangeBlk  = flag.Float64("range-blocks", 4, "average blocks per range query")
		insertF   = flag.Float64("insert", 0.5, "insert fraction")
		deleteF   = flag.Float64("delete", 0, "delete fraction")
		updateF   = flag.Float64("update", 0, "update fraction")
		opsN      = flag.Float64("ops", 10_000, "operations in the modeled period")
		skew      = flag.String("skew", "uniform", "access skew: uniform | recent | early")
		ghostFrac = flag.Float64("ghosts", 0.001, "ghost value budget (fraction of rows)")
		readSLA   = flag.Float64("read-sla", 0, "point query SLA in ns (0 = none)")
		updSLA    = flag.Float64("update-sla", 0, "insert/update SLA in ns (0 = none)")
	)
	flag.Parse()

	params := iomodel.EngineDefaults(*blockKB * 1024)
	blockVals := params.BlockValues()
	nBlocks := (*rows + blockVals - 1) / blockVals

	var dist freq.Distribution
	switch *skew {
	case "uniform":
		dist = freq.Uniform
	case "recent":
		dist = freq.LinearRamp
	case "early":
		dist = freq.ReverseRamp
	default:
		fmt.Fprintf(os.Stderr, "layoutopt: unknown skew %q\n", *skew)
		os.Exit(2)
	}

	fm := freq.FromDistributions(nBlocks, freq.DistSpec{
		PointQueries:   *opsN * *pointF,
		PointDist:      dist,
		RangeQueries:   *opsN * *rangeF,
		RangeStartDist: dist,
		RangeBlocks:    *rangeBlk,
		Inserts:        *opsN * *insertF,
		InsertDist:     dist,
		Deletes:        *opsN * *deleteF,
		DeleteDist:     dist,
		Updates:        *opsN * *updateF,
		UpdateFromDist: dist,
		UpdateToDist:   freq.Uniform,
	})
	terms := costmodel.Compute(fm, params)

	var opts solver.Options
	if *readSLA > 0 {
		mps, err := solver.ReadSLAToMaxBlocks(*readSLA, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "layoutopt:", err)
			os.Exit(1)
		}
		opts.MaxPartitionBlocks = mps
	}
	if *updSLA > 0 {
		k, err := solver.UpdateSLAToMaxPartitions(*updSLA, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "layoutopt:", err)
			os.Exit(1)
		}
		opts.MaxPartitions = k
	}

	res, err := solver.Optimize(terms, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layoutopt:", err)
		os.Exit(1)
	}
	budget := ghost.Budget(*rows, *ghostFrac)
	alloc := ghost.Allocate(fm, res.Layout, budget)

	fmt.Printf("cost model:     %s\n", params)
	fmt.Printf("chunk:          %d values, %d blocks of %d values\n", *rows, nBlocks, blockVals)
	fmt.Printf("optimal layout: %d partitions, modeled cost %.3g ns/period\n",
		res.Layout.Partitions(), res.Cost)
	single := terms.Cost(costmodel.SingleJob(nBlocks).Boundaries())
	fmt.Printf("vs unpartitioned: %.2fx cheaper\n", single/res.Cost)
	fmt.Printf("ghost budget:   %d slots (%.3g%% of rows)\n\n", budget, *ghostFrac*100)
	fmt.Printf("%-5s %-14s %-14s %s\n", "part", "blocks", "values", "ghost slots")
	for j, s := range res.Layout.Sizes {
		fmt.Printf("%-5d %-14d %-14d %d\n", j, s, s*blockVals, alloc[j])
	}
}
