package main

// The -scenario mode: replay one of the adversarial phased workloads from
// internal/workload (zipf-hot, flashcrowd, diurnal, tenant-skew, htap-sweep,
// or "all") against a durable engine running its full background machinery —
// auto-retrainer, auto-rebalancer, periodic checkpointer, and a WAL-tailing
// follower — and report ops/s, client-observed p99 latency, rows moved by
// rebalancing, the admission-control shed fraction, and follower lag.
//
// The flashcrowd scenario runs twice: once uncontrolled and once with
// admission control enabled, so the artifact shows what the token bucket
// buys during the 50x write spike — the crowd's excess writes are shed with
// ErrOverload instead of queueing behind the engine, which bounds the
// latency every surviving operation observes.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"casper"
	"casper/internal/workload"
)

// scenarioBaseRate is the offered load, in ops/s, of a Rate-1 phase. Phase
// rates from the scenario spec multiply it (flashcrowd's crowd phase offers
// 50x this). The admission limit for controlled runs sits well above the
// calm write rate and far below the crowd's.
const (
	scenarioBaseRate     = 4_000.0
	scenarioWriteLimit   = 6_000.0 // MaxWriteRate for admission-on runs
	scenarioWriteBurst   = 500
	scenarioReplayWorker = 4
)

type scenarioPhaseResult struct {
	Phase       string  `json:"phase"`
	Ops         int     `json:"ops"`
	OfferedRate float64 `json:"offered_ops_per_sec"`
	OpsPerSec   float64 `json:"achieved_ops_per_sec"`
	P99Us       float64 `json:"p99_us"`
	Shed        uint64  `json:"shed"`
}

type scenarioResult struct {
	Scenario     string                `json:"scenario"`
	Admission    bool                  `json:"admission"`
	Ops          int                   `json:"ops"`
	ElapsedMs    float64               `json:"elapsed_ms"`
	OpsPerSec    float64               `json:"ops_per_sec"`
	P99Us        float64               `json:"p99_us"`
	RowsMoved    uint64                `json:"rows_moved"`
	Rebalances   uint64                `json:"rebalances"`
	Retrains     uint64                `json:"retrains"`
	Checkpoints  uint64                `json:"checkpoints"`
	Admitted     uint64                `json:"admitted"`
	Shed         uint64                `json:"shed"`
	ShedFraction float64               `json:"shed_fraction"`
	MaxLagMs     float64               `json:"max_replica_lag_ms"`
	FinalLagMs   float64               `json:"final_replica_lag_ms"`
	LeaderRows   int                   `json:"leader_rows"`
	FollowerRows int                   `json:"follower_rows"`
	Phases       []scenarioPhaseResult `json:"phases"`
}

type scenarioArtifact struct {
	Benchmark string           `json:"benchmark"`
	Rows      int              `json:"rows"`
	Ops       int              `json:"ops"`
	Shards    int              `json:"shards"`
	BaseRate  float64          `json:"base_ops_per_sec"`
	Seed      int64            `json:"seed"`
	HostCPUs  int              `json:"host_cpus"`
	GoVersion string           `json:"go_version"`
	Results   []scenarioResult `json:"results"`
}

// runScenario replays the named scenario (or every scenario for "all") and
// writes the JSON artifact to outPath.
func runScenario(name string, rows, measuredOps int, seed int64, outPath string) error {
	if rows <= 0 {
		rows = 100_000
	}
	if measuredOps <= 0 {
		measuredOps = 20_000
	}
	names := []string{name}
	if name == "all" {
		names = workload.ScenarioNames()
	}

	art := scenarioArtifact{
		Benchmark: "casperbench -scenario",
		Rows:      rows,
		Ops:       measuredOps,
		Shards:    4,
		BaseRate:  scenarioBaseRate,
		Seed:      seed,
		HostCPUs:  runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	for _, n := range names {
		runs := []bool{false}
		if n == workload.ScenarioFlashCrowd {
			runs = []bool{false, true} // uncontrolled baseline, then admission on
		}
		for _, adm := range runs {
			res, err := runOneScenario(n, rows, measuredOps, seed, adm)
			if err != nil {
				return fmt.Errorf("scenario %s (admission=%v): %w", n, adm, err)
			}
			art.Results = append(art.Results, *res)
		}
	}

	// Headline comparison when both flashcrowd runs are present.
	var base, ctrl *scenarioResult
	for i := range art.Results {
		r := &art.Results[i]
		if r.Scenario == workload.ScenarioFlashCrowd {
			if r.Admission {
				ctrl = r
			} else {
				base = r
			}
		}
	}
	if base != nil && ctrl != nil {
		fmt.Printf("\nflashcrowd, uncontrolled vs admission:\n")
		fmt.Printf("  p99            %10.1fµs -> %10.1fµs\n", base.P99Us, ctrl.P99Us)
		fmt.Printf("  shed fraction  %10.3f   -> %10.3f\n", base.ShedFraction, ctrl.ShedFraction)
	}

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nartifact written to %s\n", outPath)
	return nil
}

// runOneScenario builds a fresh durable engine, starts every background
// worker plus a follower, replays the scenario's phases at their offered
// rates, and collects the result row.
func runOneScenario(name string, rows, measuredOps int, seed int64, admission bool) (*scenarioResult, error) {
	spec, err := workload.Scenario(name, measuredOps, seed)
	if err != nil {
		return nil, err
	}
	domain := int64(rows) * 10
	keys := casper.UniformKeys(rows, domain, seed)
	stream, err := workload.GenerateScenario(keys, domain, spec)
	if err != nil {
		return nil, err
	}
	tenants := stream.TenantCount
	if tenants < 1 {
		tenants = 1
	}

	root, err := os.MkdirTemp("", "casperbench-scenario-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	opts := casper.Options{
		Mode:         casper.ModeCasper,
		Shards:       4,
		ShardByRange: true,
		Dir:          root,
		Sync:         casper.SyncModeNone,
	}
	if admission {
		opts.Admission = casper.AdmissionPolicy{
			MaxWriteRate: scenarioWriteLimit,
			Burst:        scenarioWriteBurst,
			MaxWait:      0, // shed immediately: the flash crowd gets ErrOverload
			Tenants:      tenants,
		}
	}
	eng, err := casper.Open(keys, opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	eng.EnableMetrics()

	// Train on a sibling stream (same shape, different seed) so the drift
	// monitor starts from a real baseline and the governor sees honest
	// drift, not the "never trained" floor.
	trainSpec := spec
	trainSpec.Seed = seed + 1
	trainStream, err := workload.GenerateScenario(keys, domain, trainSpec)
	if err != nil {
		return nil, err
	}
	if err := eng.Train(casperOps(trainStream.AllOps()), runtime.NumCPU()); err != nil {
		return nil, err
	}

	// The full background cast: retrainer, rebalancer, checkpointer.
	if err := eng.StartAutoRetrain(casper.RetrainPolicy{CheckEvery: 50 * time.Millisecond}); err != nil {
		return nil, err
	}
	// MaxSkew 1.1 (default 1.5) so the modest drift a 20k-op scenario can
	// build against a 100k-row table still exercises the rebalancer.
	if err := eng.StartAutoRebalance(casper.RebalancePolicy{CheckEvery: 50 * time.Millisecond, MaxSkew: 1.1, MinOps: 256}); err != nil {
		return nil, err
	}
	ckptDone := make(chan struct{})
	var ckptOnce sync.Once
	stopCkpt := func() { ckptOnce.Do(func() { close(ckptDone) }) }
	var checkpoints uint64
	go func() {
		t := time.NewTicker(150 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ckptDone:
				return
			case <-t.C:
				if eng.Checkpoint() == nil {
					atomic.AddUint64(&checkpoints, 1)
				}
			}
		}
	}()
	defer stopCkpt()

	// A follower tails the leader's WAL for the whole run.
	follower, err := casper.OpenFollower(root, opts)
	if err != nil {
		return nil, err
	}
	defer follower.Close()
	lagDone := make(chan struct{})
	var maxLagNs int64
	go func() {
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-lagDone:
				return
			case <-t.C:
				if lag := int64(follower.Lag()); lag > atomic.LoadInt64(&maxLagNs) {
					atomic.StoreInt64(&maxLagNs, lag)
				}
			}
		}
	}()

	res := &scenarioResult{Scenario: name, Admission: admission, Ops: stream.TotalOps()}
	fmt.Printf("scenario %-12s admission=%-5v %d ops, %d rows, 4 shards\n", name, admission, res.Ops, rows)

	writers := make([]*casper.Writer, tenants)
	for i := range writers {
		writers[i] = eng.Writer(i)
	}

	var allLat []int64
	start := time.Now()
	for _, ph := range stream.Phases {
		offered := scenarioBaseRate * ph.Rate
		phStart := time.Now()
		lat, shed := replayPhase(eng, writers, ph, offered)
		elapsed := time.Since(phStart)
		pr := scenarioPhaseResult{
			Phase:       ph.Name,
			Ops:         len(ph.Ops),
			OfferedRate: offered,
			OpsPerSec:   float64(len(ph.Ops)) / elapsed.Seconds(),
			P99Us:       p99us(lat),
			Shed:        shed,
		}
		res.Phases = append(res.Phases, pr)
		allLat = append(allLat, lat...)
		fmt.Printf("  %-10s %6d ops  offered %8.0f/s  achieved %8.0f/s  p99 %9.1fµs  shed %d\n",
			pr.Phase, pr.Ops, pr.OfferedRate, pr.OpsPerSec, pr.P99Us, pr.Shed)
	}
	res.ElapsedMs = time.Since(start).Seconds() * 1e3
	res.OpsPerSec = float64(res.Ops) / (res.ElapsedMs / 1e3)
	res.P99Us = p99us(allLat)

	// Quiesce before the convergence check. Order matters: stop the
	// background writers first — a rebalance racing this check appends a
	// MoveOut to one shard's log and the matching MoveIn to another's, and
	// under SyncModeNone one half can sit in an unflushed group-commit
	// buffer while the other is already on disk, so the follower applies a
	// torn pair, then sees empty polls and reports caught-up with rows
	// missing. Then flush the WAL so the stream's tail (the last client
	// writes included) is visible to the tailers at all.
	eng.StopAutoRetrain()
	eng.StopAutoRebalance()
	stopCkpt()
	if err := eng.SyncWAL(); err != nil {
		return nil, err
	}
	close(lagDone)
	if !follower.WaitCaughtUp(30 * time.Second) {
		return nil, fmt.Errorf("follower did not catch up within 30s (err=%v, lag=%v)",
			follower.Err(), follower.Lag())
	}
	res.MaxLagMs = float64(atomic.LoadInt64(&maxLagNs)) / 1e6
	res.FinalLagMs = follower.Lag().Seconds() * 1e3
	res.LeaderRows, res.FollowerRows = eng.Len(), follower.Len()
	if res.LeaderRows != res.FollowerRows {
		return nil, fmt.Errorf("row count diverged: leader %d, follower %d (pending moves %d, follower err %v, applied epoch %d, lag %v)",
			res.LeaderRows, res.FollowerRows, len(eng.PendingMoves()), follower.Err(), follower.AppliedEpoch(), follower.Lag())
	}

	snap := eng.Metrics()
	res.RowsMoved = snap.Rebalance.RowsMoved
	res.Rebalances = eng.Rebalances()
	res.Retrains = eng.Retrains()
	res.Checkpoints = atomic.LoadUint64(&checkpoints)
	res.Admitted = snap.Admission.Admitted
	res.Shed = snap.Admission.Shed
	if total := res.Admitted + res.Shed; total > 0 {
		res.ShedFraction = float64(res.Shed) / float64(total)
	}
	fmt.Printf("  => %8.0f ops/s  p99 %9.1fµs  moved %d rows (%d rebalances, %d retrains, %d ckpts)  shed %.3f  max lag %.2fms\n",
		res.OpsPerSec, res.P99Us, res.RowsMoved, res.Rebalances, res.Retrains, res.Checkpoints,
		res.ShedFraction, res.MaxLagMs)
	return res, nil
}

// replayPhase offers the phase's ops at the target rate across a small pool
// of clients: writes go through per-tenant Writer handles (so admission
// control sees the real lane), reads through Execute. Returns per-op
// latencies (ns) of the operations that ran and the count shed with
// ErrOverload. A client that falls behind the offered schedule stops
// sleeping — offered rate then degrades to the engine's actual capacity.
func replayPhase(eng *casper.Engine, writers []*casper.Writer, ph workload.ScenarioPhase, offered float64) ([]int64, uint64) {
	workers := scenarioReplayWorker
	if len(ph.Ops) < workers {
		workers = 1
	}
	interval := time.Duration(float64(workers) / offered * float64(time.Second))
	lats := make([][]int64, workers)
	var shed uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int64, 0, len(ph.Ops)/workers+1)
			next := time.Now()
			for i := w; i < len(ph.Ops); i += workers {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				op := ph.Ops[i]
				tenant := 0
				if ph.Tenants != nil {
					tenant = ph.Tenants[i]
				}
				t0 := time.Now()
				err := runScenarioOp(eng, writers[tenant], op)
				if errors.Is(err, casper.ErrOverload) {
					atomic.AddUint64(&shed, 1)
					continue // shed ops don't count toward latency
				}
				local = append(local, int64(time.Since(t0)))
			}
			lats[w] = local
		}(w)
	}
	wg.Wait()
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	return all, shed
}

// runScenarioOp routes one op: writes through the tenant's Writer (admission
// lane), reads through the engine. Non-overload write errors (not-found
// deletes/updates against a key another client just removed) are expected
// in a concurrent replay and ignored.
func runScenarioOp(eng *casper.Engine, w *casper.Writer, op workload.Op) error {
	switch op.Kind {
	case workload.Q4Insert:
		return w.Insert(op.Key)
	case workload.Q5Delete:
		return w.Delete(op.Key)
	case workload.Q6Update:
		return w.UpdateKey(op.Key, op.Key2)
	default:
		eng.Execute(casperOp(op))
		return nil
	}
}

// casperOp converts a workload op to the public Op type.
func casperOp(op workload.Op) casper.Op {
	var k casper.OpKind
	switch op.Kind {
	case workload.Q1PointQuery:
		k = casper.PointQuery
	case workload.Q2RangeCount:
		k = casper.RangeCount
	case workload.Q3RangeSum:
		k = casper.RangeSum
	case workload.Q4Insert:
		k = casper.Insert
	case workload.Q5Delete:
		k = casper.Delete
	case workload.Q6Update:
		k = casper.Update
	case workload.Q8Scan:
		k = casper.Scan
	default:
		panic(fmt.Sprintf("scenario: unroutable op kind %d", int(op.Kind)))
	}
	return casper.Op{Kind: k, Key: op.Key, Key2: op.Key2, Limit: op.Limit}
}

func casperOps(ops []workload.Op) []casper.Op {
	out := make([]casper.Op, len(ops))
	for i, op := range ops {
		out[i] = casperOp(op)
	}
	return out
}

// p99us returns the 99th-percentile latency in microseconds.
func p99us(lat []int64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return float64(lat[idx]) / 1e3
}
