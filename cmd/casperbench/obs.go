package main

// Observability commands: -http serves the live /metrics and /events
// endpoints over a continuously loaded engine, -validate-metrics checks a
// running endpoint round-trips (JSON decodes into casper.Snapshot, the
// Prometheus rendering carries the op counters, /events parses), and
// -obsbench measures the cost of metric collection itself — the same
// point-query loop with the registry disabled and enabled — and emits the
// delta as BENCH_obs.json together with a snapshot round-trip verification.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"casper"
	"casper/internal/obs/httpdebug"
)

// runHTTPServe loads a range-sharded engine, keeps a mixed workload running
// against it in the background, and serves the debug endpoints until killed:
//
//	GET /metrics                     JSON casper.Snapshot
//	GET /metrics?format=prometheus   Prometheus text exposition
//	GET /events?since=N              JSON []casper.Event
func runHTTPServe(addr string, rows int, seed int64) error {
	if rows <= 0 {
		rows = 200_000
	}
	const shards = 4
	domain := int64(rows) * 10
	keys := casper.UniformKeys(rows, domain, seed)
	eng, err := casper.Open(keys, casper.Options{Mode: casper.ModeCasper, Shards: shards, ShardByRange: true})
	if err != nil {
		return err
	}
	defer eng.Close()
	eng.EnableMetrics()

	// Background traffic so the endpoints have something to show: skewed
	// point reads, range aggregates, scans, and a trickle of writes; the
	// auto-rebalancer keeps lifecycle events flowing when the writes skew.
	if err := eng.StartAutoRebalance(casper.RebalancePolicy{CheckEvery: time.Second}); err != nil {
		return err
	}
	defer eng.StopAutoRebalance()
	go func() {
		i := int64(0)
		for {
			k := (i * 2654435761) % domain
			eng.PointQuery(k)
			eng.RangeCount(k, k+1_000)
			if i%16 == 0 {
				c := eng.Scan(k, k+10_000, casper.ScanOptions{Limit: 100})
				for c.Next() {
				}
				c.Close()
			}
			if i%4 == 0 {
				eng.Insert(domain + i)
			}
			if i%64 == 0 {
				_ = eng.Delete(domain + i/2)
				time.Sleep(time.Millisecond) // keep the load modest
			}
			i++
		}
	}()

	fmt.Printf("casperbench: serving /metrics and /events on %s (%d rows, %d shards)\n", addr, rows, shards)
	return http.ListenAndServe(addr, httpdebug.Handler(eng))
}

// runValidateMetrics fetches a live endpoint and verifies the three
// acceptance properties: the JSON body decodes into casper.Snapshot with
// non-zero op counts, the Prometheus rendering exposes the op counters, and
// /events returns a well-formed event list.
func runValidateMetrics(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap casper.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("/metrics JSON does not decode into casper.Snapshot: %w", err)
	}
	if !snap.Enabled {
		return fmt.Errorf("/metrics reports collection disabled")
	}
	var total uint64
	for _, op := range snap.Ops {
		total += op.Count
	}
	if total == 0 {
		return fmt.Errorf("/metrics has zero op counts — no traffic recorded")
	}

	resp, err = client.Get(base + "/metrics?format=prometheus")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "casper_ops_total") {
		return fmt.Errorf("prometheus rendering missing casper_ops_total")
	}

	resp, err = client.Get(base + "/events?since=0")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var events []casper.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		return fmt.Errorf("/events does not decode into []casper.Event: %w", err)
	}

	fmt.Printf("metrics endpoint ok: %d ops across %d kinds, epoch %d, %d events journaled\n",
		total, len(snap.Ops), snap.Epoch, len(events))
	return nil
}

// Artifact schema for -obsbench.
type obsRoundtrip struct {
	OpsMatch         bool   `json:"ops_match"`
	RebalancePauseNs uint64 `json:"rebalance_pause_samples"`
	WALFsyncSamples  uint64 `json:"wal_fsync_samples"`
	WALAppends       uint64 `json:"wal_appends"`
	Events           int    `json:"events"`
}

type obsArtifact struct {
	Benchmark         string       `json:"benchmark"`
	Rows              int          `json:"rows"`
	OpsPerTrial       int          `json:"ops_per_trial"`
	Trials            int          `json:"trials"`
	SampleEvery       int          `json:"latency_sample_every"`
	DisabledOpsPerSec float64      `json:"disabled_ops_per_sec"`
	EnabledOpsPerSec  float64      `json:"enabled_ops_per_sec"`
	OverheadPct       float64      `json:"overhead_pct"`
	Roundtrip         obsRoundtrip `json:"roundtrip"`
	GOMAXPROCS        int          `json:"gomaxprocs"`
	GOOS              string       `json:"goos"`
	GeneratedAt       string       `json:"generated_at"`
}

// runObsBench measures the overhead of metric collection: the identical
// point-query loop against one engine with the registry disabled and then
// enabled (median of trials each way), followed by a round-trip check — a
// rebalance and a durable WAL burst are driven, the Snapshot is marshaled
// through JSON, and the decoded copy must carry the op counts, a non-empty
// rebalance-pause histogram, and a non-empty WAL fsync histogram.
func runObsBench(rows, opsPerTrial int, seed int64, outPath string) error {
	if rows <= 0 {
		rows = 200_000
	}
	if opsPerTrial <= 0 {
		opsPerTrial = 400_000
	}
	const trials = 3
	domain := int64(rows) * 10
	keys := casper.UniformKeys(rows, domain, seed)
	eng, err := casper.Open(keys, casper.Options{Mode: casper.ModeCasper, Shards: 4, ShardByRange: true})
	if err != nil {
		return err
	}
	defer eng.Close()

	probe := casper.UniformKeys(opsPerTrial, domain, seed+1)
	trial := func() float64 {
		start := time.Now()
		sink := 0
		for _, k := range probe {
			sink += eng.PointQuery(k)
		}
		if sink < 0 {
			panic("unreachable")
		}
		return float64(opsPerTrial) / time.Since(start).Seconds()
	}
	median := func() float64 {
		xs := make([]float64, trials)
		for i := range xs {
			xs[i] = trial()
		}
		sort.Float64s(xs)
		return xs[trials/2]
	}

	trial() // warm both paths (page in tables, settle the scheduler)
	disabled := median()
	eng.EnableMetrics()
	enabled := median()
	overhead := (disabled - enabled) / disabled * 100

	// Round-trip: exercise the lifecycle paths the snapshot must carry. An
	// explicit boundary shift forces a real install even on uniform data,
	// where the proposers would short-circuit as already balanced.
	bounds := []int64{domain/4 + 1_000, domain/2 + 1_000, 3*domain/4 + 1_000}
	if _, err := eng.RebalanceTo(bounds); err != nil {
		return fmt.Errorf("obsbench rebalance: %w", err)
	}

	dir, err := os.MkdirTemp("", "casper-obsbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	wkeys := casper.UniformKeys(4_096, domain, seed+2)
	deng, err := casper.Open(wkeys, casper.Options{
		Mode: casper.ModeCasper, Shards: 2, ShardByRange: true,
		Dir: dir, Sync: casper.SyncModeAlways,
	})
	if err != nil {
		return err
	}
	deng.EnableMetrics()
	for i := 0; i < 512; i++ {
		deng.Insert(domain + int64(i))
	}
	if err := deng.SyncWAL(); err != nil {
		return err
	}
	dsnap := deng.Metrics()
	deng.Close()

	snap := eng.Metrics()
	blob, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	var decoded casper.Snapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		return fmt.Errorf("snapshot does not round-trip through JSON: %w", err)
	}
	opsMatch := len(decoded.Ops) == len(snap.Ops)
	for name, st := range snap.Ops {
		if decoded.Ops[name].Count != st.Count {
			opsMatch = false
		}
	}
	rt := obsRoundtrip{
		OpsMatch:         opsMatch,
		RebalancePauseNs: decoded.Rebalance.PauseNs.Count,
		WALFsyncSamples:  dsnap.WAL.FsyncNs.Count,
		WALAppends:       dsnap.WAL.Appends,
		Events:           len(eng.Events(0)),
	}
	if !rt.OpsMatch {
		return fmt.Errorf("op counts did not survive the JSON round-trip")
	}
	if rt.RebalancePauseNs == 0 {
		return fmt.Errorf("rebalance pause histogram empty after a forced rebalance")
	}
	if rt.WALFsyncSamples == 0 {
		return fmt.Errorf("WAL fsync histogram empty after a SyncModeAlways burst")
	}

	art := obsArtifact{
		Benchmark:         "obs-overhead",
		Rows:              rows,
		OpsPerTrial:       opsPerTrial,
		Trials:            trials,
		SampleEvery:       8,
		DisabledOpsPerSec: disabled,
		EnabledOpsPerSec:  enabled,
		OverheadPct:       overhead,
		Roundtrip:         rt,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		GOOS:              runtime.GOOS,
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
	}
	blob, err = json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("obs overhead: disabled %.0f ops/s, enabled %.0f ops/s (%+.2f%%); artifact %s\n",
		disabled, enabled, overhead, outPath)
	return nil
}
