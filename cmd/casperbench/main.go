// Command casperbench regenerates the tables and figures of "Optimal Column
// Layout for Hybrid Workloads" (PVLDB 2019).
//
// Usage:
//
//	casperbench [-fig N | -table N | -all] [-rows N] [-ops N] [-workers N]
//
// Examples:
//
//	casperbench -all                      # every experiment, default scale
//	casperbench -fig 12                   # six layouts × six workloads
//	casperbench -fig 9 -rows 1000000      # model verification on a 1M chunk
//	casperbench -table 1                  # the design-space table
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"casper/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (1,2,9,11,12,13,14,15,16)")
		tab     = flag.Int("table", 0, "table number to regenerate (1)")
		all     = flag.Bool("all", false, "run every experiment")
		abl     = flag.Bool("ablations", false, "run the design-choice ablations")
		comp    = flag.Bool("compression", false, "run the compression synergy report (§6.2)")
		gran    = flag.Bool("granularity", false, "run the histogram granularity sweep (§4.3)")
		rows    = flag.Int("rows", 0, "initial table rows (default 200k)")
		ops     = flag.Int("ops", 0, "measured operations per run (default 4k)")
		workers = flag.Int("workers", runtime.NumCPU(), "execution/optimization parallelism")
		seed    = flag.Int64("seed", 42, "workload generator seed")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Workers = *workers
	sc.Seed = *seed
	if *rows > 0 {
		sc.Rows = *rows
	}
	if *ops > 0 {
		sc.Ops = *ops
		sc.TrainOps = *ops
	}

	switch {
	case *all:
		for _, r := range experiments.All(sc) {
			fmt.Println(r)
		}
	case *abl:
		fmt.Println(experiments.Ablations(sc))
	case *comp:
		fmt.Println(experiments.ExtCompression(sc))
	case *gran:
		fmt.Println(experiments.ExtGranularity(sc))
	case *tab == 1:
		fmt.Println(experiments.Table1())
	case *fig != 0:
		var runner func(experiments.Scale) experiments.Report
		switch *fig {
		case 1:
			runner = experiments.Fig1
		case 2:
			runner = experiments.Fig2
		case 9:
			runner = experiments.Fig9
		case 11:
			runner = experiments.Fig11
		case 12:
			runner = experiments.Fig12
		case 13:
			runner = experiments.Fig13
		case 14:
			runner = experiments.Fig14
		case 15:
			runner = experiments.Fig15
		case 16:
			runner = experiments.Fig16
		default:
			fmt.Fprintf(os.Stderr, "casperbench: no experiment for figure %d (figures 3-8 and 10 are illustrative)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(runner(sc))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
