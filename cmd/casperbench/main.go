// Command casperbench regenerates the tables and figures of "Optimal Column
// Layout for Hybrid Workloads" (PVLDB 2019), and measures the sharded
// engine's multi-client throughput.
//
// Usage:
//
//	casperbench [-fig N | -table N | -all | -throughput | -durable | -rebalance | -scan | -replica] [-rows N] [-ops N] [-workers N]
//	casperbench -throughput -cpus 1,2,4,8 [-out BENCH_throughput.json]
//	casperbench -scan [-rows N] [-out BENCH_scan.json]
//	casperbench -replica [-rows N] [-ops N] [-out BENCH_replica.json]
//	casperbench -scenario NAME [-rows N] [-ops N] [-out BENCH_scenarios.json]
//	casperbench -http :8080               # live /metrics (JSON + Prometheus) and /events
//	casperbench -validate-metrics http://localhost:8080
//	casperbench -obsbench [-out BENCH_obs.json]
//
// Examples:
//
//	casperbench -all                      # every experiment, default scale
//	casperbench -fig 12                   # six layouts × six workloads
//	casperbench -fig 9 -rows 1000000      # model verification on a 1M chunk
//	casperbench -table 1                  # the design-space table
//	casperbench -throughput -shards 1,2,4,8 -workers 8
//	casperbench -throughput -cpus 1,2,4,8 # worker sweep, JSON artifact
//	casperbench -durable -rows 200000     # WAL overhead per fsync policy + recovery time
//	casperbench -rebalance -rows 200000   # skewed-drift scenario: quantile vs minimal proposer
//	casperbench -scan -rows 200000        # streaming cursor sweep: LIMIT × result size
//	casperbench -replica -rows 200000     # follower lag vs ingest rate; asserts lag -> 0 after quiesce
//	casperbench -scenario flashcrowd      # 50x write spike, uncontrolled vs admission-controlled
//	casperbench -scenario all             # every adversarial scenario
//
// The -scenario mode replays a time-phased adversarial workload (zipf-hot,
// flashcrowd, diurnal, tenant-skew, htap-sweep, or "all") against a durable
// range-sharded engine with the full background cast running concurrently:
// auto-retrainer, auto-rebalancer, a periodic checkpointer, and a follower
// tailing the WAL. Each phase is offered at its spec rate (a Rate-1 phase
// offers 4k ops/s; flashcrowd's crowd phase 50x that). The artifact
// (default BENCH_scenarios.json) records per-phase and per-run ops/s,
// client-observed p99, rows moved by rebalancing, admission counters and
// shed fraction, and follower lag. flashcrowd runs twice — uncontrolled,
// then with admission control — so the artifact shows the token bucket
// bounding p99 during the spike at the cost of shedding the crowd's excess
// writes with ErrOverload.
//
// The -scan sweep drives streaming cursors over ranges of three result
// sizes under LIMIT 10, 1000, and unlimited, reporting scans/s, first-row
// latency, and heap bytes allocated per scan, next to a materialized
// baseline that collects the whole result before serving its first row.
// The JSON artifact (default BENCH_scan.json) records the same numbers;
// the point of the report is that a LIMIT-10 cursor over a huge range
// allocates O(batch) bytes and reaches its first row orders of magnitude
// before the materialized path.
//
// The -rebalance report compares the two boundary-proposal strategies on
// the same drifted fleet, one column per metric:
//
//	rows-moved       rows migrated between shards (minimal ~ drift size)
//	stragglers       rows caught by the publish-window rescan of the
//	                 changed ownership intervals (writes that landed
//	                 between the staging batches)
//	pause-ms         exclusive publish+install window; under minimal the
//	                 straggler rescan walks only the changed intervals, so
//	                 the pause scales with drift, not table size
//	bounds-changed   boundaries rewritten vs total (quantile rewrites all,
//	                 minimal only those around breaching shards)
//	skew             max/mean shard row-count ratio before -> after
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"casper"
	"casper/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (1,2,9,11,12,13,14,15,16)")
		tab     = flag.Int("table", 0, "table number to regenerate (1)")
		all     = flag.Bool("all", false, "run every experiment")
		abl     = flag.Bool("ablations", false, "run the design-choice ablations")
		comp    = flag.Bool("compression", false, "run the compression synergy report (§6.2)")
		gran    = flag.Bool("granularity", false, "run the histogram granularity sweep (§4.3)")
		thr     = flag.Bool("throughput", false, "measure sharded-engine throughput across shard counts")
		durable = flag.Bool("durable", false, "measure durable ingest throughput per WAL sync policy and recovery time")
		rebal   = flag.Bool("rebalance", false, "run the skewed-drift shard rebalancing scenario")
		replica = flag.Bool("replica", false, "measure WAL-shipping replication lag vs ingest rate; emits BENCH_replica.json")
		scen    = flag.String("scenario", "", "replay an adversarial scenario (zipf-hot, flashcrowd, diurnal, tenant-skew, htap-sweep, or 'all') with the full background cast live; emits BENCH_scenarios.json")
		scan    = flag.Bool("scan", false, "run the streaming-scan sweep (LIMIT x result size); emits a JSON artifact")
		httpOn  = flag.String("http", "", "serve live /metrics and /events on this address (e.g. :8080) over a loaded engine")
		valMet  = flag.String("validate-metrics", "", "validate a running metrics endpoint (base URL, e.g. http://localhost:8080)")
		obench  = flag.Bool("obsbench", false, "measure metric-collection overhead (disabled vs enabled); emits BENCH_obs.json")
		shards  = flag.String("shards", "1,2,4,8", "shard counts for -throughput (comma separated)")
		cpus    = flag.String("cpus", "", "worker/GOMAXPROCS sweep for -throughput (comma separated); emits a JSON artifact")
		out     = flag.String("out", "BENCH_throughput.json", "artifact path for the -cpus sweep")
		rows    = flag.Int("rows", 0, "initial table rows (default 200k)")
		ops     = flag.Int("ops", 0, "measured operations per run (default 4k)")
		workers = flag.Int("workers", runtime.NumCPU(), "execution/optimization parallelism")
		seed    = flag.Int64("seed", 42, "workload generator seed")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Workers = *workers
	sc.Seed = *seed
	if *rows > 0 {
		sc.Rows = *rows
	}
	if *ops > 0 {
		sc.Ops = *ops
		sc.TrainOps = *ops
	}

	switch {
	case *httpOn != "":
		if err := runHTTPServe(*httpOn, sc.Rows, sc.Seed); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *valMet != "":
		if err := runValidateMetrics(*valMet); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *obench:
		outPath := *out
		if !flagWasSet("out") {
			outPath = "BENCH_obs.json"
		}
		if err := runObsBench(sc.Rows, *ops, sc.Seed, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *thr && *cpus != "":
		if err := runThroughputSweep(*cpus, sc.Rows, *ops, sc.Seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *thr:
		if err := runThroughput(*shards, sc.Rows, *ops, *workers, sc.Seed); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *durable:
		if err := runDurable(sc.Rows, *ops, sc.Seed); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *rebal:
		if err := runRebalance(sc.Rows, *ops, sc.Seed); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *replica:
		outPath := *out
		if !flagWasSet("out") {
			outPath = "BENCH_replica.json"
		}
		if err := runReplica(sc.Rows, *ops, sc.Seed, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *scen != "":
		outPath := *out
		if !flagWasSet("out") {
			outPath = "BENCH_scenarios.json"
		}
		if err := runScenario(*scen, *rows, *ops, sc.Seed, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *scan:
		outPath := *out
		if !flagWasSet("out") {
			outPath = "BENCH_scan.json"
		}
		if err := runScan(sc.Rows, sc.Seed, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "casperbench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		for _, r := range experiments.All(sc) {
			fmt.Println(r)
		}
	case *abl:
		fmt.Println(experiments.Ablations(sc))
	case *comp:
		fmt.Println(experiments.ExtCompression(sc))
	case *gran:
		fmt.Println(experiments.ExtGranularity(sc))
	case *tab == 1:
		fmt.Println(experiments.Table1())
	case *fig != 0:
		var runner func(experiments.Scale) experiments.Report
		switch *fig {
		case 1:
			runner = experiments.Fig1
		case 2:
			runner = experiments.Fig2
		case 9:
			runner = experiments.Fig9
		case 11:
			runner = experiments.Fig11
		case 12:
			runner = experiments.Fig12
		case 13:
			runner = experiments.Fig13
		case 14:
			runner = experiments.Fig14
		case 15:
			runner = experiments.Fig15
		case 16:
			runner = experiments.Fig16
		default:
			fmt.Fprintf(os.Stderr, "casperbench: no experiment for figure %d (figures 3-8 and 10 are illustrative)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(runner(sc))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runDurable measures the WAL's write-path overhead: insert-only ingest
// through an in-memory baseline and through durable engines under each
// fsync policy, plus the time to recover the durable state with a fresh
// casper.Open. Data directories live under a temp root and are removed.
func runDurable(rows, measuredOps int, seed int64) error {
	if rows <= 0 {
		rows = 200_000
	}
	if measuredOps <= 0 {
		measuredOps = 50_000
	}
	root, err := os.MkdirTemp("", "casperbench-durable-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	keys := casper.UniformKeys(rows, int64(rows)*10, seed)
	batch := make([]casper.Op, measuredOps)
	for i := range batch {
		batch[i] = casper.Op{Kind: casper.Insert, Key: int64(seed*1e9) + int64(i)}
	}

	fmt.Printf("durable ingest: %d initial rows, %d inserts per run\n\n", rows, measuredOps)
	configs := []struct {
		name string
		opts func(casper.Options) casper.Options
	}{
		{"memory", func(o casper.Options) casper.Options { return o }},
		{"sync=none", func(o casper.Options) casper.Options {
			o.Dir, o.Sync = filepath.Join(root, "none"), casper.SyncModeNone
			return o
		}},
		{"sync=interval", func(o casper.Options) casper.Options {
			o.Dir, o.Sync = filepath.Join(root, "interval"), casper.SyncModeInterval
			return o
		}},
		{"sync=always", func(o casper.Options) casper.Options {
			o.Dir, o.Sync = filepath.Join(root, "always"), casper.SyncModeAlways
			return o
		}},
	}
	var base float64
	for _, c := range configs {
		opts := c.opts(casper.Options{Mode: casper.ModeCasper, Shards: 4})
		eng, err := casper.Open(keys, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		start := time.Now()
		eng.ApplyBatch(batch)
		opsPerSec := float64(len(batch)) / time.Since(start).Seconds()
		eng.Close()
		if base == 0 {
			base = opsPerSec
		}
		line := fmt.Sprintf("%-14s %12.0f ops/s   %5.2fx of memory", c.name, opsPerSec, opsPerSec/base)
		if opts.Dir != "" {
			start = time.Now()
			rec, err := casper.Open(nil, opts)
			if err != nil {
				return fmt.Errorf("%s recovery: %w", c.name, err)
			}
			line += fmt.Sprintf("   recovery %8.1fms (%d rows)", time.Since(start).Seconds()*1e3, rec.Len())
			rec.Close()
		}
		fmt.Println(line)
	}
	return nil
}

// runRebalance drives the skewed-drift scenario once per proposal strategy:
// a range-sharded engine is loaded uniformly, the write distribution then
// drifts entirely past one end of the key range (piling the new rows onto
// the last shard), and one rebalance re-splits the boundaries. The report
// compares the exhaustive quantile baseline against the minimal-movement
// default side by side: rows moved, stragglers caught by the delta-bounded
// publish rescan, the exclusive publish-window pause (which the minimal
// strategy measures over the changed intervals only), how many boundaries
// actually changed, and skew before/after. A second drift burst then
// exercises the StartAutoRebalance worker under the minimal default.
func runRebalance(rows, measuredOps int, seed int64) error {
	if rows <= 0 {
		rows = 200_000
	}
	if measuredOps <= 0 {
		measuredOps = 20_000
	}
	const shards = 8
	domain := int64(rows) * 10
	keys := casper.UniformKeys(rows, domain, seed)
	fmt.Printf("shard rebalancing: %d initial rows over [0, %d], %d shards (range), %d drift inserts\n\n",
		rows, domain, shards, measuredOps)

	// Drift: every insert lands past the top of the loaded range.
	batch := make([]casper.Op, measuredOps)
	for i := range batch {
		batch[i] = casper.Op{Kind: casper.Insert, Key: domain + 1 + int64(i)}
	}

	var eng *casper.Engine
	fmt.Printf("%-10s %12s %12s %14s %16s %18s\n",
		"strategy", "rows-moved", "stragglers", "pause-ms", "bounds-changed", "skew")
	for _, strat := range []struct {
		name string
		s    casper.RebalanceStrategy
	}{
		{"quantile", casper.RebalanceQuantile},
		{"minimal", casper.RebalanceMinimal},
	} {
		e, err := casper.Open(keys, casper.Options{Mode: casper.ModeCasper, Shards: shards, ShardByRange: true})
		if err != nil {
			return err
		}
		e.ApplyBatch(batch)
		res, err := e.RebalanceWith(strat.s)
		if err != nil {
			return err
		}
		changed := 0
		for i := range res.NewBounds {
			if res.NewBounds[i] != res.OldBounds[i] {
				changed++
			}
		}
		fmt.Printf("%-10s %12d %12d %14.2f %11d of %d %10.2fx -> %.2fx\n",
			strat.name, res.Moved, res.Stragglers, res.Pause.Seconds()*1e3,
			changed, len(res.OldBounds), res.SkewBefore, res.SkewAfter)
		if strat.s == casper.RebalanceMinimal {
			eng = e // the minimal engine carries on into the auto demo
		} else {
			e.Close()
		}
	}
	counts := func(label string) {
		fmt.Printf("%-22s skew %.2fx  rows/shard %v\n", label, eng.ShardSkew(), eng.ShardRowCounts())
	}
	fmt.Println()
	counts("after rebalance:")

	// Auto mode: a second drift burst under the background worker.
	if err := eng.StartAutoRebalance(casper.RebalancePolicy{
		CheckEvery: 20 * time.Millisecond,
		MaxSkew:    1.5,
		MinOps:     64,
	}); err != nil {
		return err
	}
	defer eng.StopAutoRebalance()
	for i := range batch {
		batch[i] = casper.Op{Kind: casper.Insert, Key: domain + int64(measuredOps) + 1 + int64(i)}
	}
	eng.ApplyBatch(batch)
	deadline := time.Now().Add(10 * time.Second)
	for eng.Rebalances() < 2 && time.Now().Before(deadline) {
		eng.Insert(domain + int64(2*measuredOps) + time.Now().UnixNano()%1_000)
		time.Sleep(5 * time.Millisecond)
	}
	if eng.Rebalances() < 2 {
		return fmt.Errorf("auto-rebalance did not trigger within 10s (skew %.2fx)", eng.ShardSkew())
	}
	fmt.Printf("\nauto rebalance:        triggered (total rebalances %d)\n", eng.Rebalances())
	counts("after auto drift:")
	return nil
}

// runThroughput drives the sharded engine with `workers` concurrent clients
// over read-heavy and write-heavy skewed mixes for every requested shard
// count, printing ops/sec and the scaling factor against the first listed
// shard count (the baseline).
func runThroughput(shardList string, rows, measuredOps, workers int, seed int64) error {
	if rows <= 0 {
		rows = 200_000
	}
	if measuredOps <= 0 {
		measuredOps = 100_000
	}
	var counts []int
	for _, f := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", f)
		}
		counts = append(counts, n)
	}
	fmt.Printf("sharded throughput: %d rows, %d ops/run, %d workers (GOMAXPROCS %d)\n",
		rows, measuredOps, workers, runtime.GOMAXPROCS(0))
	fmt.Printf("scaling factors are relative to shards=%d\n\n", counts[0])
	for _, mix := range experiments.ShardedMixes() {
		var base float64
		for _, n := range counts {
			eng, ops, err := experiments.ShardedScenario(mix.Preset, n, rows, measuredOps, workers, seed)
			if err != nil {
				return err
			}
			start := time.Now()
			eng.ExecuteParallel(ops, workers)
			opsPerSec := float64(len(ops)) / time.Since(start).Seconds()
			if base == 0 {
				base = opsPerSec
			}
			fmt.Printf("%-12s shards=%-2d  %10.0f ops/s   %4.2fx\n", mix.Name, n, opsPerSec, opsPerSec/base)
		}
		fmt.Println()
	}
	return nil
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Artifact schema for the -scan sweep.
type scanPoint struct {
	Range           string  `json:"range"`
	RangeRows       int     `json:"range_rows"`
	Limit           int     `json:"limit"` // 0 = unlimited
	RowsYielded     int     `json:"rows_yielded"`
	ScansPerSec     float64 `json:"scans_per_sec"`
	FirstRowNs      float64 `json:"first_row_ns"`
	AllocBytesPerOp uint64  `json:"alloc_bytes_per_scan"`
}

type scanBaseline struct {
	Range           string  `json:"range"`
	RangeRows       int     `json:"range_rows"`
	FirstRowNs      float64 `json:"first_row_ns"`
	AllocBytesPerOp uint64  `json:"alloc_bytes_per_scan"`
}

type scanArtifact struct {
	Benchmark    string         `json:"benchmark"`
	Rows         int            `json:"rows"`
	Shards       int            `json:"shards"`
	HostCPUs     int            `json:"host_cpus"`
	GoVersion    string         `json:"go_version"`
	Materialized []scanBaseline `json:"materialized_baseline"`
	Points       []scanPoint    `json:"points"`
}

// runScan sweeps streaming cursors over three result sizes × three LIMITs,
// against a materialized baseline that collects the entire result (copied
// rows) before its first row is readable — the pre-cursor read pattern.
func runScan(rows int, seed int64, outPath string) error {
	if rows <= 0 {
		rows = 200_000
	}
	domain := int64(rows) * 10
	keys := casper.UniformKeys(rows, domain, seed)
	eng, err := casper.Open(keys, casper.Options{Mode: casper.ModeCasper, Shards: 4})
	if err != nil {
		return err
	}
	art := scanArtifact{
		Benchmark: "casperbench -scan",
		Rows:      rows,
		Shards:    4,
		HostCPUs:  runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	ranges := []struct {
		name   string
		lo, hi int64
	}{
		{"1k-rows", 0, 10_000},
		{"10pct", 0, domain / 10},
		{"full", math.MinInt64, math.MaxInt64},
	}
	fmt.Printf("streaming scan sweep: %d rows over [0, %d], 4 shards\n\n", rows, domain)
	fmt.Printf("%-10s %10s %8s %12s %14s %14s\n",
		"range", "rows", "limit", "scans/s", "first-row-µs", "alloc/scan")
	for _, r := range ranges {
		size := eng.RangeCount(r.lo, r.hi)

		// Materialized baseline: collect everything, then read row one.
		iters := scanIters(size)
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var sink int64
		for i := 0; i < iters; i++ {
			allKeys := make([]int64, 0, size)
			allRows := make([][]int32, 0, size)
			c := eng.Scan(r.lo, r.hi, casper.ScanOptions{})
			for c.Next() {
				allKeys = append(allKeys, c.Key())
				allRows = append(allRows, append([]int32(nil), c.Payload()...))
			}
			c.Close()
			if len(allKeys) > 0 {
				sink += allKeys[0] + int64(allRows[0][0])
			}
		}
		matNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
		runtime.ReadMemStats(&m1)
		base := scanBaseline{
			Range:           r.name,
			RangeRows:       size,
			FirstRowNs:      matNs,
			AllocBytesPerOp: (m1.TotalAlloc - m0.TotalAlloc) / uint64(iters),
		}
		art.Materialized = append(art.Materialized, base)
		fmt.Printf("%-10s %10d %8s %12s %14.1f %14d   (materialized baseline)\n",
			r.name, size, "-", "-", matNs/1e3, base.AllocBytesPerOp)

		for _, limit := range []int{10, 1_000, 0} {
			drain := size
			if limit > 0 && limit < size {
				drain = limit
			}
			iters := scanIters(drain)
			var firstNs float64
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			for i := 0; i < iters; i++ {
				c := eng.Scan(r.lo, r.hi, casper.ScanOptions{Limit: limit})
				t0 := time.Now()
				if c.Next() {
					firstNs += float64(time.Since(t0).Nanoseconds())
					sink += c.Key()
				}
				for c.Next() {
					sink += c.Key()
				}
				c.Close()
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			pt := scanPoint{
				Range:           r.name,
				RangeRows:       size,
				Limit:           limit,
				RowsYielded:     drain,
				ScansPerSec:     float64(iters) / elapsed.Seconds(),
				FirstRowNs:      firstNs / float64(iters),
				AllocBytesPerOp: (m1.TotalAlloc - m0.TotalAlloc) / uint64(iters),
			}
			art.Points = append(art.Points, pt)
			lim := "full"
			if limit > 0 {
				lim = strconv.Itoa(limit)
			}
			fmt.Printf("%-10s %10d %8s %12.0f %14.1f %14d\n",
				r.name, size, lim, pt.ScansPerSec, pt.FirstRowNs/1e3, pt.AllocBytesPerOp)
		}
		fmt.Println()
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("artifact written to %s\n", outPath)
	return nil
}

// scanIters sizes the measurement loop so every cell does comparable work:
// tiny drains repeat often, full-table drains a handful of times.
func scanIters(drain int) int {
	switch {
	case drain <= 100:
		return 300
	case drain <= 10_000:
		return 50
	default:
		return 5
	}
}

// Artifact schema for the -cpus sweep. Speedups are relative to the first
// listed worker count; host metadata is embedded so a reader can judge
// whether the sweep had real parallel hardware behind it (a one-CPU host
// timeshares all workers on one core and will report ~flat speedups no
// matter how good the scaling is).
type sweepPoint struct {
	Workers   int     `json:"workers"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_first"`
}

type sweepMix struct {
	Mix    string       `json:"mix"`
	Points []sweepPoint `json:"points"`
}

type sweepArtifact struct {
	Benchmark string     `json:"benchmark"`
	Rows      int        `json:"rows"`
	Ops       int        `json:"ops"`
	Shards    int        `json:"shards"`
	HostCPUs  int        `json:"host_cpus"`
	GoVersion string     `json:"go_version"`
	Mixes     []sweepMix `json:"mixes"`
}

// runThroughputSweep fixes the shard count and sweeps the worker count
// instead: for each count c it pins GOMAXPROCS to c, builds a fresh engine
// (the fan-out pool is sized at engine construction, so the pool tracks the
// pinned value), and drives c concurrent clients. Results go to stdout and
// to a JSON artifact at outPath.
func runThroughputSweep(cpuList string, rows, measuredOps int, seed int64, outPath string) error {
	if rows <= 0 {
		rows = 200_000
	}
	if measuredOps <= 0 {
		measuredOps = 100_000
	}
	var counts []int
	for _, f := range strings.Split(cpuList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -cpus entry %q", f)
		}
		counts = append(counts, n)
	}
	const sweepShards = 8
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	art := sweepArtifact{
		Benchmark: "casperbench -throughput -cpus",
		Rows:      rows,
		Ops:       measuredOps,
		Shards:    sweepShards,
		HostCPUs:  runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	fmt.Printf("worker sweep: %d rows, %d ops/run, shards=%d, host CPUs %d\n",
		rows, measuredOps, sweepShards, art.HostCPUs)
	fmt.Printf("speedups are relative to workers=%d\n\n", counts[0])
	for _, mix := range experiments.ShardedMixes() {
		sm := sweepMix{Mix: mix.Name}
		var base float64
		for _, c := range counts {
			runtime.GOMAXPROCS(c)
			eng, ops, err := experiments.ShardedScenario(mix.Preset, sweepShards, rows, measuredOps, c, seed)
			if err != nil {
				return err
			}
			start := time.Now()
			eng.ExecuteParallel(ops, c)
			opsPerSec := float64(len(ops)) / time.Since(start).Seconds()
			if base == 0 {
				base = opsPerSec
			}
			pt := sweepPoint{Workers: c, OpsPerSec: opsPerSec, Speedup: opsPerSec / base}
			sm.Points = append(sm.Points, pt)
			fmt.Printf("%-12s workers=%-2d  %10.0f ops/s   %4.2fx\n", mix.Name, c, pt.OpsPerSec, pt.Speedup)
		}
		art.Mixes = append(art.Mixes, sm)
		fmt.Println()
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("artifact written to %s\n", outPath)
	return nil
}
