package main

// The -replica mode: measure WAL-shipping replication lag against ingest
// rate. A durable leader ingests while a follower in the same process tails
// its WAL; the run samples follower lag during ingest, then stops writing and
// times how long the follower takes to report caught-up. The headline
// assertion — which the CI smoke step relies on — is that lag returns to
// (exactly) zero once ingest stops and the replicated image matches the
// leader row for row.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"casper"
)

type replicaSample struct {
	ElapsedMs      float64 `json:"elapsed_ms"`
	LagMs          float64 `json:"lag_ms"`
	RecordsApplied uint64  `json:"records_applied"`
}

type replicaArtifact struct {
	Benchmark       string          `json:"benchmark"`
	Rows            int             `json:"rows"`
	Ops             int             `json:"ops"`
	Shards          int             `json:"shards"`
	HostCPUs        int             `json:"host_cpus"`
	GoVersion       string          `json:"go_version"`
	IngestOpsPerSec float64         `json:"ingest_ops_per_sec"`
	MaxLagMs        float64         `json:"max_lag_ms"`
	CatchupMs       float64         `json:"catchup_ms"`
	FinalLagMs      float64         `json:"final_lag_ms"`
	RecordsApplied  uint64          `json:"records_applied"`
	AppliedEpoch    uint64          `json:"applied_epoch"`
	LeaderRows      int             `json:"leader_rows"`
	FollowerRows    int             `json:"follower_rows"`
	Samples         []replicaSample `json:"samples"`
}

// runReplica drives the leader/follower pair and writes the JSON artifact.
func runReplica(rows, measuredOps int, seed int64, outPath string) error {
	if rows <= 0 {
		rows = 200_000
	}
	if measuredOps <= 0 {
		measuredOps = 50_000
	}
	root, err := os.MkdirTemp("", "casperbench-replica-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	opts := casper.Options{Mode: casper.ModeCasper, Shards: 4, Dir: root, Sync: casper.SyncModeNone}
	keys := casper.UniformKeys(rows, int64(rows)*10, seed)
	leader, err := casper.Open(keys, opts)
	if err != nil {
		return fmt.Errorf("leader: %w", err)
	}
	defer leader.Close()
	follower, err := casper.OpenFollower(root, opts)
	if err != nil {
		return fmt.Errorf("follower: %w", err)
	}
	defer follower.Close()

	batch := make([]casper.Op, measuredOps)
	for i := range batch {
		batch[i] = casper.Op{Kind: casper.Insert, Key: int64(rows)*10 + 1 + int64(i)}
	}

	fmt.Printf("replication lag: %d initial rows, %d inserts, 4 shards\n\n", rows, measuredOps)
	art := replicaArtifact{
		Benchmark: "casperbench -replica",
		Rows:      rows,
		Ops:       measuredOps,
		Shards:    4,
		HostCPUs:  runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}

	// Ingest in a goroutine; sample follower lag on a short cadence.
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		leader.ApplyBatch(batch)
	}()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
sampling:
	for {
		select {
		case <-done:
			break sampling
		case <-ticker.C:
			lag := follower.Lag()
			art.Samples = append(art.Samples, replicaSample{
				ElapsedMs:      time.Since(start).Seconds() * 1e3,
				LagMs:          lag.Seconds() * 1e3,
				RecordsApplied: follower.Metrics().Replica.RecordsApplied,
			})
			if ms := lag.Seconds() * 1e3; ms > art.MaxLagMs {
				art.MaxLagMs = ms
			}
		}
	}
	ingest := time.Since(start)
	art.IngestOpsPerSec = float64(measuredOps) / ingest.Seconds()

	// Ingest has stopped: the follower must drain the remaining tail and
	// report zero lag.
	t0 := time.Now()
	if !follower.WaitCaughtUp(30 * time.Second) {
		return fmt.Errorf("follower did not catch up within 30s (err=%v, lag=%v)",
			follower.Err(), follower.Lag())
	}
	art.CatchupMs = time.Since(t0).Seconds() * 1e3
	art.FinalLagMs = follower.Lag().Seconds() * 1e3
	if art.FinalLagMs != 0 {
		return fmt.Errorf("follower lag %.3fms after catch-up; want 0", art.FinalLagMs)
	}
	m := follower.Metrics().Replica
	art.RecordsApplied = m.RecordsApplied
	art.AppliedEpoch = m.AppliedEpoch
	art.LeaderRows, art.FollowerRows = leader.Len(), follower.Len()
	if art.RecordsApplied == 0 {
		return fmt.Errorf("follower applied 0 records over %d inserts", measuredOps)
	}
	if art.LeaderRows != art.FollowerRows {
		return fmt.Errorf("row count diverged: leader %d, follower %d", art.LeaderRows, art.FollowerRows)
	}

	fmt.Printf("ingest            %12.0f ops/s  (%d inserts in %.1fms)\n",
		art.IngestOpsPerSec, measuredOps, ingest.Seconds()*1e3)
	fmt.Printf("max lag           %12.2f ms during ingest\n", art.MaxLagMs)
	fmt.Printf("catch-up          %12.2f ms after ingest stopped\n", art.CatchupMs)
	fmt.Printf("final lag         %12.2f ms\n", art.FinalLagMs)
	fmt.Printf("records applied   %12d   (applied epoch %d)\n", art.RecordsApplied, art.AppliedEpoch)
	fmt.Printf("rows              %12d   leader == follower\n", art.LeaderRows)

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nartifact written to %s\n", outPath)
	return nil
}
