// Package compress implements the two compression schemes Casper supports
// natively (§6.2 of the paper): order-preserving dictionary encoding and
// frame-of-reference (delta) encoding with per-partition references.
//
// Frame-of-reference encoding interacts with partitioning: finer partitions
// cover narrower value ranges, so their offsets fit in fewer bytes — the
// partitioning/compression synergy the paper describes. EncodeFOR exposes
// per-partition byte widths so the synergy is measurable.
package compress

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// ---------------------------------------------------------------------------
// Dictionary encoding
// ---------------------------------------------------------------------------

// Dict is an order-preserving dictionary: codes compare like the values they
// encode, so range predicates evaluate directly on codes.
type Dict struct {
	values []int64          // sorted distinct values; code = index
	codeOf map[int64]uint32 // value → code
}

// NewDict builds a dictionary over the distinct values of vals.
func NewDict(vals []int64) *Dict {
	distinct := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		distinct[v] = struct{}{}
	}
	values := make([]int64, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	codeOf := make(map[int64]uint32, len(values))
	for i, v := range values {
		codeOf[v] = uint32(i)
	}
	return &Dict{values: values, codeOf: codeOf}
}

// Size returns the number of dictionary entries.
func (d *Dict) Size() int { return len(d.values) }

// Code returns the code of v; ok is false when v is not in the dictionary.
func (d *Dict) Code(v int64) (uint32, bool) {
	c, ok := d.codeOf[v]
	return c, ok
}

// CodeForRange maps a value range [lo, hi] on raw values to the equivalent
// inclusive code range; ok is false when the range selects nothing.
func (d *Dict) CodeForRange(lo, hi int64) (cLo, cHi uint32, ok bool) {
	a := sort.Search(len(d.values), func(i int) bool { return d.values[i] >= lo })
	b := sort.Search(len(d.values), func(i int) bool { return d.values[i] > hi })
	if a >= b {
		return 0, 0, false
	}
	return uint32(a), uint32(b - 1), true
}

// Value decodes a code.
func (d *Dict) Value(code uint32) int64 { return d.values[code] }

// Encode maps vals to codes. Values outside the dictionary cause an error.
func (d *Dict) Encode(vals []int64) ([]uint32, error) {
	out := make([]uint32, len(vals))
	for i, v := range vals {
		c, ok := d.codeOf[v]
		if !ok {
			return nil, fmt.Errorf("compress: value %d not in dictionary", v)
		}
		out[i] = c
	}
	return out, nil
}

// Decode maps codes back to values.
func (d *Dict) Decode(codes []uint32) []int64 {
	out := make([]int64, len(codes))
	for i, c := range codes {
		out[i] = d.values[c]
	}
	return out
}

// CodeBytes returns the bytes needed per code for this dictionary size.
func (d *Dict) CodeBytes() int {
	switch n := len(d.values); {
	case n <= 1<<8:
		return 1
	case n <= 1<<16:
		return 2
	default:
		return 4
	}
}

// Ratio returns the dictionary compression ratio for n 8-byte values
// (ignoring the dictionary itself, which is shared across chunks).
func (d *Dict) Ratio(n int) float64 {
	if n == 0 {
		return 1
	}
	return 8.0 / float64(d.CodeBytes())
}

// ---------------------------------------------------------------------------
// Frame-of-reference encoding
// ---------------------------------------------------------------------------

// FORBlock is one frame-of-reference encoded partition: offsets from Ref
// packed at Width bytes each.
type FORBlock struct {
	Ref   int64
	Width int // bytes per offset: 1, 2, 4, or 8
	N     int
	Data  []byte
}

// widthFor returns the narrowest supported byte width for a maximum offset.
func widthFor(maxOffset uint64) int {
	switch {
	case maxOffset < 1<<8:
		return 1
	case maxOffset < 1<<16:
		return 2
	case maxOffset < 1<<32:
		return 4
	default:
		return 8
	}
}

// EncodeFORPartition encodes one partition's values against their minimum.
func EncodeFORPartition(vals []int64) FORBlock {
	if len(vals) == 0 {
		return FORBlock{Width: 1}
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	w := widthFor(uint64(max - min))
	b := FORBlock{Ref: min, Width: w, N: len(vals), Data: make([]byte, len(vals)*w)}
	for i, v := range vals {
		off := uint64(v - min)
		switch w {
		case 1:
			b.Data[i] = byte(off)
		case 2:
			binary.LittleEndian.PutUint16(b.Data[i*2:], uint16(off))
		case 4:
			binary.LittleEndian.PutUint32(b.Data[i*4:], uint32(off))
		default:
			binary.LittleEndian.PutUint64(b.Data[i*8:], off)
		}
	}
	return b
}

// Decode reconstructs the partition's values.
func (b FORBlock) Decode() []int64 {
	out := make([]int64, b.N)
	for i := 0; i < b.N; i++ {
		out[i] = b.At(i)
	}
	return out
}

// At decodes the i-th value.
func (b FORBlock) At(i int) int64 {
	switch b.Width {
	case 1:
		return b.Ref + int64(b.Data[i])
	case 2:
		return b.Ref + int64(binary.LittleEndian.Uint16(b.Data[i*2:]))
	case 4:
		return b.Ref + int64(binary.LittleEndian.Uint32(b.Data[i*4:]))
	default:
		return b.Ref + int64(binary.LittleEndian.Uint64(b.Data[i*8:]))
	}
}

// Sum scans the compressed partition without materializing it.
func (b FORBlock) Sum() int64 {
	var s int64
	for i := 0; i < b.N; i++ {
		s += b.At(i)
	}
	return s
}

// Bytes returns the encoded size including the 16-byte header (ref + meta).
func (b FORBlock) Bytes() int { return len(b.Data) + 16 }

// FORColumn is a partitioned column encoded partition-by-partition.
type FORColumn struct {
	Blocks []FORBlock
}

// EncodeFOR encodes vals split into partitions of the given sizes.
func EncodeFOR(vals []int64, partitionSizes []int) (*FORColumn, error) {
	total := 0
	for _, s := range partitionSizes {
		if s < 0 {
			return nil, fmt.Errorf("compress: negative partition size %d", s)
		}
		total += s
	}
	if total != len(vals) {
		return nil, fmt.Errorf("compress: partitions cover %d values, column has %d", total, len(vals))
	}
	col := &FORColumn{Blocks: make([]FORBlock, len(partitionSizes))}
	pos := 0
	for j, s := range partitionSizes {
		col.Blocks[j] = EncodeFORPartition(vals[pos : pos+s])
		pos += s
	}
	return col, nil
}

// Bytes returns the total encoded size.
func (c *FORColumn) Bytes() int {
	n := 0
	for _, b := range c.Blocks {
		n += b.Bytes()
	}
	return n
}

// Ratio returns raw bytes / encoded bytes.
func (c *FORColumn) Ratio() float64 {
	raw := 0
	for _, b := range c.Blocks {
		raw += b.N * 8
	}
	enc := c.Bytes()
	if enc == 0 {
		return 1
	}
	return float64(raw) / float64(enc)
}

// Decode reconstructs the whole column.
func (c *FORColumn) Decode() []int64 {
	var out []int64
	for _, b := range c.Blocks {
		out = append(out, b.Decode()...)
	}
	return out
}

// Widths returns the per-partition byte widths; finer partitions over
// smoother data yield narrower widths (the §6.2 synergy).
func (c *FORColumn) Widths() []int {
	out := make([]int, len(c.Blocks))
	for i, b := range c.Blocks {
		out[i] = b.Width
	}
	return out
}
