package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDictRoundTrip(t *testing.T) {
	vals := []int64{5, 3, 5, 8, 3, 3, 100, -7}
	d := NewDict(vals)
	if d.Size() != 5 {
		t.Fatalf("Size = %d, want 5", d.Size())
	}
	codes, err := d.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	back := d.Decode(codes)
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("round trip diverges at %d: %d vs %d", i, back[i], vals[i])
		}
	}
}

func TestDictOrderPreserving(t *testing.T) {
	d := NewDict([]int64{30, 10, 20, 40})
	c10, _ := d.Code(10)
	c20, _ := d.Code(20)
	c30, _ := d.Code(30)
	if !(c10 < c20 && c20 < c30) {
		t.Errorf("codes not order preserving: %d %d %d", c10, c20, c30)
	}
}

func TestDictCodeForRange(t *testing.T) {
	d := NewDict([]int64{10, 20, 30, 40})
	lo, hi, ok := d.CodeForRange(15, 35)
	if !ok {
		t.Fatal("range should select values")
	}
	if d.Value(lo) != 20 || d.Value(hi) != 30 {
		t.Errorf("code range decodes to %d..%d, want 20..30", d.Value(lo), d.Value(hi))
	}
	if _, _, ok := d.CodeForRange(41, 50); ok {
		t.Error("empty range reported as non-empty")
	}
}

func TestDictUnknownValue(t *testing.T) {
	d := NewDict([]int64{1, 2})
	if _, err := d.Encode([]int64{3}); err == nil {
		t.Fatal("unknown value accepted")
	}
	if _, ok := d.Code(99); ok {
		t.Fatal("Code(99) reported ok")
	}
}

func TestDictCodeBytes(t *testing.T) {
	small := NewDict([]int64{1, 2, 3})
	if small.CodeBytes() != 1 {
		t.Errorf("3-entry dict code bytes = %d, want 1", small.CodeBytes())
	}
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i)
	}
	mid := NewDict(vals)
	if mid.CodeBytes() != 2 {
		t.Errorf("300-entry dict code bytes = %d, want 2", mid.CodeBytes())
	}
	if r := mid.Ratio(300); r != 4 {
		t.Errorf("ratio = %v, want 4", r)
	}
}

func TestFORRoundTripQuick(t *testing.T) {
	f := func(raw []int32, split uint8) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		// Split into two partitions at an arbitrary point.
		cut := 0
		if len(vals) > 0 {
			cut = int(split) % (len(vals) + 1)
		}
		col, err := EncodeFOR(vals, []int{cut, len(vals) - cut})
		if err != nil {
			return false
		}
		back := col.Decode()
		if len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFORWidthSelection(t *testing.T) {
	tests := []struct {
		vals  []int64
		width int
	}{
		{[]int64{100, 101, 356}, 2},
		{[]int64{100, 101, 102}, 1},
		{[]int64{0, 1 << 20}, 4},
		{[]int64{0, 1 << 40}, 8},
		{[]int64{-1000, -999}, 1}, // negative refs still narrow
	}
	for _, tc := range tests {
		b := EncodeFORPartition(tc.vals)
		if b.Width != tc.width {
			t.Errorf("width(%v) = %d, want %d", tc.vals, b.Width, tc.width)
		}
		got := b.Decode()
		for i := range tc.vals {
			if got[i] != tc.vals[i] {
				t.Errorf("decode(%v) = %v", tc.vals, got)
				break
			}
		}
	}
}

func TestFORSumMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1 << 30))
	}
	b := EncodeFORPartition(vals)
	var want int64
	for _, v := range vals {
		want += v
	}
	if got := b.Sum(); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
}

func TestFORPartitioningSynergy(t *testing.T) {
	// §6.2: finer partitions over value-ordered data compress better
	// because each partition's range is smaller.
	n := 4096
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 1000) // wide total range, narrow local ranges
	}
	coarse, err := EncodeFOR(vals, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = n / 64
	}
	fine, err := EncodeFOR(vals, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Bytes() >= coarse.Bytes() {
		t.Errorf("fine partitioning (%dB) should compress better than coarse (%dB)",
			fine.Bytes(), coarse.Bytes())
	}
	if fine.Ratio() <= coarse.Ratio() {
		t.Errorf("fine ratio %v should exceed coarse ratio %v", fine.Ratio(), coarse.Ratio())
	}
	// Coarse partition needs 4-byte offsets; fine partitions fit in 1-2.
	for _, w := range fine.Widths() {
		if w >= coarse.Blocks[0].Width {
			t.Errorf("fine width %d not narrower than coarse %d", w, coarse.Blocks[0].Width)
		}
	}
}

func TestEncodeFORValidation(t *testing.T) {
	if _, err := EncodeFOR([]int64{1, 2, 3}, []int{2}); err == nil {
		t.Error("partition size mismatch accepted")
	}
	if _, err := EncodeFOR([]int64{1}, []int{-1, 2}); err == nil {
		t.Error("negative partition size accepted")
	}
}

func TestEmptyPartition(t *testing.T) {
	b := EncodeFORPartition(nil)
	if b.N != 0 || len(b.Decode()) != 0 {
		t.Errorf("empty partition misbehaves: %+v", b)
	}
}
