// Package httpdebug serves an engine's observability data over HTTP for
// live introspection: /metrics (JSON by default, Prometheus text exposition
// with ?format=prometheus) and /events (the ring-buffer lifecycle journal,
// incrementally readable with ?since=SEQ).
//
// It depends only on net/http and internal/obs; mount it with
// casperbench -http :PORT or from the hybrid_dashboard example:
//
//	mux := http.NewServeMux()
//	mux.Handle("/", httpdebug.Handler(engine))
//	http.ListenAndServe(addr, mux)
package httpdebug

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"casper/internal/obs"
)

// Source is anything that can report metrics and journal events.
// casper.Engine satisfies it.
type Source interface {
	Metrics() obs.Snapshot
	Events(since uint64) []obs.Event
}

// Handler returns an http.Handler serving /metrics and /events from src.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := src.Metrics()
		if strings.EqualFold(r.URL.Query().Get("format"), "prometheus") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writePrometheus(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		evs := src.Events(since)
		if evs == nil {
			evs = []obs.Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(evs)
	})
	return mux
}

// writePrometheus renders the snapshot in Prometheus text exposition
// format. Histogram buckets are emitted cumulatively with a trailing +Inf,
// as the format requires.
func writePrometheus(w http.ResponseWriter, s obs.Snapshot) {
	fmt.Fprintf(w, "# TYPE casper_epoch counter\ncasper_epoch %d\n", s.Epoch)
	fmt.Fprintf(w, "# TYPE casper_event_seq counter\ncasper_event_seq %d\n", s.EventSeq)

	fmt.Fprintf(w, "# TYPE casper_ops_total counter\n")
	ops := make([]string, 0, len(s.Ops))
	for name := range s.Ops {
		ops = append(ops, name)
	}
	sort.Strings(ops)
	for _, name := range ops {
		fmt.Fprintf(w, "casper_ops_total{op=%q} %d\n", name, s.Ops[name].Count)
	}
	fmt.Fprintf(w, "# TYPE casper_op_latency_ns histogram\n")
	for _, name := range ops {
		writeHist(w, "casper_op_latency_ns", fmt.Sprintf("op=%q,", name), s.Ops[name].LatencyNs)
	}

	counters := []struct {
		name string
		v    uint64
	}{
		{"casper_stripe_retries_total", s.StripeRetries},
		{"casper_fan_submits_total", s.FanSubmits},
		{"casper_fan_inline_total", s.FanInline},
		{"casper_cursor_batches_total", s.CursorBatches},
		{"casper_compensation_hits_total", s.CompensationHits},
		{"casper_txn_commits_total", s.Txn.Commits},
		{"casper_txn_conflicts_total", s.Txn.Conflicts},
		{"casper_txn_aborts_total", s.Txn.Aborts},
		{"casper_wal_appends_total", s.WAL.Appends},
		{"casper_wal_bytes_total", s.WAL.Bytes},
		{"casper_wal_segment_rolls_total", s.WAL.SegmentRolls},
		{"casper_rebalance_rows_moved_total", s.Rebalance.RowsMoved},
		{"casper_checkpoints_total", s.Checkpoints},
		{"casper_admission_admitted_total", s.Admission.Admitted},
		{"casper_admission_shed_total", s.Admission.Shed},
		{"casper_admission_queued_total", s.Admission.Queued},
		{"casper_replica_records_applied_total", s.Replica.RecordsApplied},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v)
	}

	fmt.Fprintf(w, "# TYPE casper_replica_applied_epoch gauge\ncasper_replica_applied_epoch %d\n", s.Replica.AppliedEpoch)
	fmt.Fprintf(w, "# TYPE casper_replica_lag_seconds gauge\ncasper_replica_lag_seconds %g\n", s.Replica.LagSeconds)
	fmt.Fprintf(w, "# TYPE casper_admission_rate_limit gauge\ncasper_admission_rate_limit %g\n", s.Admission.RateLimit)

	hists := []struct {
		name string
		h    obs.HistStats
	}{
		{"casper_wal_fsync_ns", s.WAL.FsyncNs},
		{"casper_wal_group_batch", s.WAL.GroupBatch},
		{"casper_retrain_dur_ns", s.Retrain.DurNs},
		{"casper_rebalance_pause_ns", s.Rebalance.PauseNs},
		{"casper_admission_wait_ns", s.Admission.WaitNs},
	}
	for _, h := range hists {
		fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
		writeHist(w, h.name, "", h.h)
	}
}

func writeHist(w http.ResponseWriter, name, labelPrefix string, h obs.HistStats) {
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, labelPrefix, b.Le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, h.Count)
	if labelPrefix == "" {
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	} else {
		lbl := "{" + strings.TrimSuffix(labelPrefix, ",") + "}"
		fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", name, lbl, h.Sum, name, lbl, h.Count)
	}
}
