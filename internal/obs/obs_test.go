package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucket layout at int64
// extremes: negatives and zero clamp to bucket 0, 1 starts bucket 1,
// exact powers of two start new buckets, and MaxInt64 lands in bucket 63.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 62, 63},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds: le(i) = 2^i - 1, and bucketOf(le(i)) == i for i >= 1.
	if BucketUpperBound(0) != 0 {
		t.Errorf("BucketUpperBound(0) = %d, want 0", BucketUpperBound(0))
	}
	for i := 1; i < NumBuckets; i++ {
		le := BucketUpperBound(i)
		if got := bucketOf(int64(le)); got != i {
			t.Errorf("bucketOf(le(%d)=%d) = %d, want %d", i, le, got, i)
		}
		if i < 63 {
			if got := bucketOf(int64(le) + 1); got != i+1 {
				t.Errorf("bucketOf(le(%d)+1) = %d, want %d", i, got, i+1)
			}
		}
	}
	if BucketUpperBound(63) != math.MaxInt64 {
		t.Errorf("BucketUpperBound(63) = %d, want MaxInt64", BucketUpperBound(63))
	}
}

func TestHistogramObserveAndStats(t *testing.T) {
	h := newHistogram(4)
	h.Observe(0, 1)
	h.Observe(1, 1)
	h.Observe(2, 100)
	h.Observe(3, math.MaxInt64)
	h.Observe(0, -5) // clamps to bucket 0, excluded from sum
	st := h.stats()
	if st.Count != 5 {
		t.Fatalf("Count = %d, want 5", st.Count)
	}
	wantSum := uint64(1) + 1 + 100 + uint64(math.MaxInt64)
	if st.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", st.Sum, wantSum)
	}
	// Buckets must be non-empty only, ascending by Le.
	var prev uint64
	var total uint64
	for i, b := range st.Buckets {
		if b.Count == 0 {
			t.Errorf("bucket %d empty but present", i)
		}
		if i > 0 && b.Le <= prev {
			t.Errorf("buckets not ascending: %d after %d", b.Le, prev)
		}
		prev = b.Le
		total += b.Count
	}
	if total != st.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, st.Count)
	}
}

func TestQuantile(t *testing.T) {
	h := newHistogram(1)
	for i := 0; i < 90; i++ {
		h.Observe(0, 100) // bucket 7, le=127
	}
	for i := 0; i < 10; i++ {
		h.Observe(0, 10000) // bucket 14, le=16383
	}
	st := h.stats()
	if got := st.Quantile(0.5); got != 127 {
		t.Errorf("p50 = %d, want 127", got)
	}
	if got := st.Quantile(0.99); got != 16383 {
		t.Errorf("p99 = %d, want 16383", got)
	}
	if got := (HistStats{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestJournalWraparound fills the ring past capacity and checks that Seq
// stays monotonic, old events are dropped, and Events(since) slices
// correctly across the wrap point.
func TestJournalWraparound(t *testing.T) {
	var j Journal
	total := JournalCap*2 + 37
	for i := 0; i < total; i++ {
		seq := j.Append(Event{Kind: EvWALRoll, Shard: i})
		if seq != uint64(i+1) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
	if j.Seq() != uint64(total) {
		t.Fatalf("Seq() = %d, want %d", j.Seq(), total)
	}
	// Full read: only the newest JournalCap events survive.
	evs := j.Events(0)
	if len(evs) != JournalCap {
		t.Fatalf("Events(0) returned %d, want %d", len(evs), JournalCap)
	}
	if evs[0].Seq != uint64(total-JournalCap+1) {
		t.Fatalf("oldest retained seq = %d, want %d", evs[0].Seq, total-JournalCap+1)
	}
	if evs[len(evs)-1].Seq != uint64(total) {
		t.Fatalf("newest seq = %d, want %d", evs[len(evs)-1].Seq, total)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	// Incremental read from the middle of the retained window.
	mid := uint64(total) - 10
	tail := j.Events(mid)
	if len(tail) != 10 {
		t.Fatalf("Events(%d) returned %d, want 10", mid, len(tail))
	}
	if tail[0].Seq != mid+1 {
		t.Fatalf("tail starts at %d, want %d", tail[0].Seq, mid+1)
	}
	// since >= newest → nil.
	if got := j.Events(uint64(total)); got != nil {
		t.Fatalf("Events(newest) = %v, want nil", got)
	}
	// Shard payload rides along through the wrap.
	if tail[0].Shard != int(mid) {
		t.Fatalf("payload mismatch: Shard=%d, want %d", tail[0].Shard, mid)
	}
}

func TestRegistryEnableGating(t *testing.T) {
	r := New(4)
	if r.Enabled() {
		t.Fatal("fresh registry should be disabled")
	}
	tr := r.OpBegin(OpPointQuery, 0)
	r.OpEnd(OpPointQuery, 0, tr)
	if got := r.OpCount(OpPointQuery); got != 0 {
		t.Fatalf("disabled registry counted %d ops", got)
	}
	r.Enable()
	r.SetLatencySampleEvery(1)
	tr = r.OpBegin(OpPointQuery, 1)
	r.OpEnd(OpPointQuery, 1, tr)
	if got := r.OpCount(OpPointQuery); got != 1 {
		t.Fatalf("enabled registry counted %d ops, want 1", got)
	}
	s := r.Snapshot()
	if s.Ops["point_query"].Count != 1 {
		t.Fatalf("snapshot count = %d, want 1", s.Ops["point_query"].Count)
	}
	if s.Ops["point_query"].LatencyNs.Count != 1 {
		t.Fatalf("sampled latency count = %d, want 1 (sample interval 1)", s.Ops["point_query"].LatencyNs.Count)
	}
	// Events are journaled even while disabled.
	r.Disable()
	r.Event(Event{Kind: EvRetrainSwap, Shard: 2})
	if evs := r.Events(0); len(evs) != 1 || evs[0].Kind != EvRetrainSwap {
		t.Fatalf("disabled registry lost event: %v", evs)
	}
}

func TestCounterStripingSum(t *testing.T) {
	c := newCounter(8)
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(g) // stripe hint beyond len is fine (mod)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Total(); got != 16*per {
		t.Fatalf("Total = %d, want %d", got, 16*per)
	}
	// Negative stripe hints must not panic or drop.
	c.Inc(-3)
	if got := c.Total(); got != 16*per+1 {
		t.Fatalf("Total after negative-stripe Inc = %d", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New(2)
	r.Enable()
	r.SetLatencySampleEvery(1)
	for i := 0; i < 10; i++ {
		tr := r.OpBegin(OpInsert, i)
		r.OpEnd(OpInsert, i, tr)
	}
	r.WALFsyncNs.Observe(0, 1500)
	r.WALBytes.Add(0, 4096)
	r.Event(Event{Kind: EvCheckpointCut, Shard: 0, Rows: 42})
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Ops["insert"].Count != 10 {
		t.Fatalf("round-trip insert count = %d, want 10", back.Ops["insert"].Count)
	}
	if back.WAL.Bytes != 4096 {
		t.Fatalf("round-trip WAL bytes = %d", back.WAL.Bytes)
	}
	if back.WAL.FsyncNs.Count != 1 {
		t.Fatalf("round-trip fsync count = %d", back.WAL.FsyncNs.Count)
	}
	if back.EventSeq != 1 {
		t.Fatalf("round-trip event seq = %d", back.EventSeq)
	}
}

func TestSampleEveryValidation(t *testing.T) {
	r := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sample interval should panic")
		}
	}()
	r.SetLatencySampleEvery(3)
}
