// Package obs is the engine's observability layer: a lock-free metrics
// registry (striped atomic counters and fixed-bucket power-of-two latency
// histograms, no allocation on the hot path) plus a bounded ring-buffer
// event journal recording structured lifecycle events (retrain swaps,
// rebalance phases, checkpoint cuts, WAL segment rolls, recovery replay,
// cross-shard move stage/publish/rollback).
//
// Recording is safe from any goroutine. Counter and histogram recording is
// pure atomics — no locks — so it may be called while holding gate stripes,
// but by contract (see internal/shard's package comment) never while holding
// shard.mu or shard.jmu. Journal appends take only the journal's own leaf
// mutex and are likewise safe anywhere except under shard.mu/jmu.
//
// Metric recording is gated by a refcounted enable switch mirroring the
// shard engine's monitoring() pattern: when disabled, every hot-path hook
// is a single atomic load and a branch. Event journal appends are NOT
// gated — lifecycle events are rare (retrains, rebalances, checkpoints)
// and must be captured even before any reader calls Enable (e.g. the
// recovery replay summary emitted during Open).
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Op enumerates the public engine operations tracked per-kind.
type Op int

const (
	OpPointQuery Op = iota
	OpRangeCount
	OpRangeSum
	OpMultiRange
	OpScan
	OpInsert
	OpDelete
	OpUpdateKey
	OpPayload
	OpLen
	OpChunks
	NumOps
)

var opNames = [NumOps]string{
	"point_query", "range_count", "range_sum", "multi_range", "scan",
	"insert", "delete", "update_key", "payload", "len", "chunks",
}

// String returns the stable snake_case name used in Snapshot.Ops keys and
// Prometheus label values.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return "unknown"
	}
	return opNames[o]
}

// NumBuckets is the fixed histogram width. Bucket i (i >= 1) holds values v
// with 2^(i-1) <= v < 2^i, i.e. upper bound le(i) = 2^i - 1; bucket 0 holds
// v <= 0. math.MaxInt64 lands in bucket 63.
const NumBuckets = 64

// bucketOf maps a value to its histogram bucket. Negative and zero values
// clamp to bucket 0 (durations should never be negative, but a clock step
// must not index out of range or wrap through uint64 conversion).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..63 for v in [1, MaxInt64]
}

// BucketUpperBound returns the inclusive upper bound of bucket i.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// cell is a cache-line padded atomic counter cell, one per stripe, so
// concurrent recorders on different shards do not false-share.
type cell struct {
	v atomic.Uint64
	_ [120]byte
}

// Counter is a striped monotonic counter. The stripe argument is a cheap
// contention-avoidance hint (typically the shard index); correctness only
// requires that Total() sums all stripes.
type Counter struct {
	cells []cell
}

func newCounter(stripes int) Counter {
	if stripes < 1 {
		stripes = 1
	}
	return Counter{cells: make([]cell, stripes)}
}

// Inc adds 1 on the given stripe hint.
func (c *Counter) Inc(stripe int) { c.Add(stripe, 1) }

// Add adds n on the given stripe hint.
func (c *Counter) Add(stripe int, n uint64) {
	if len(c.cells) == 0 {
		return
	}
	c.cells[uint(stripe)%uint(len(c.cells))].v.Add(n)
}

// Total sums all stripes.
func (c *Counter) Total() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is a last-write-wins atomic value for metrics that go up and down
// (replica lag) or track a high-water mark (applied epoch). Unlike Counter
// it is not striped: gauges are written by one goroutine (the follower's
// apply loop) and read by snapshotters.
type Gauge struct {
	v atomic.Uint64
}

// Set stores an integer gauge value.
func (g *Gauge) Set(v uint64) { g.v.Store(v) }

// Load returns the integer gauge value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// SetFloat stores a float64 gauge value (IEEE bits).
func (g *Gauge) SetFloat(v float64) { g.v.Store(math.Float64bits(v)) }

// LoadFloat returns the float64 gauge value.
func (g *Gauge) LoadFloat() float64 { return math.Float64frombits(g.v.Load()) }

// histStripe is one stripe of a Histogram: 64 buckets plus count and sum.
// Padding between stripes comes from the buckets array being a multiple of
// the cache line; the trailing pad separates count/sum of adjacent stripes.
type histStripe struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [112]byte
}

// Histogram is a striped fixed-bucket histogram with power-of-two bounds.
// Observe is wait-free (three atomic adds).
type Histogram struct {
	stripes []histStripe
}

func newHistogram(stripes int) Histogram {
	if stripes < 1 {
		stripes = 1
	}
	return Histogram{stripes: make([]histStripe, stripes)}
}

// Observe records one value (typically nanoseconds) on the stripe hint.
func (h *Histogram) Observe(stripe int, v int64) {
	if len(h.stripes) == 0 {
		return
	}
	s := &h.stripes[uint(stripe)%uint(len(h.stripes))]
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	if v > 0 {
		s.sum.Add(uint64(v))
	}
}

// stats folds all stripes into a HistStats snapshot.
func (h *Histogram) stats() HistStats {
	var out HistStats
	var merged [NumBuckets]uint64
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		for b := 0; b < NumBuckets; b++ {
			merged[b] += s.buckets[b].Load()
		}
	}
	for b := 0; b < NumBuckets; b++ {
		if merged[b] != 0 {
			out.Buckets = append(out.Buckets, HistBucket{Le: BucketUpperBound(b), Count: merged[b]})
		}
	}
	return out
}

// HistBucket is one non-empty histogram bucket. Le is the inclusive upper
// bound; Count is the number of observations in this bucket alone (not
// cumulative — exporters that need cumulative counts, e.g. Prometheus,
// accumulate in order).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistStats is a JSON-marshalable histogram snapshot. Count and Sum are
// monotonic; Buckets lists only non-empty buckets in ascending Le order.
type HistStats struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value, or 0 when empty.
func (h HistStats) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// from the bucket boundaries: the Le of the first bucket whose cumulative
// count reaches q*Count. Because buckets are power-of-two wide the estimate
// is at most 2x the true value.
func (h HistStats) Quantile(q float64) uint64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= target {
			return b.Le
		}
	}
	return h.Buckets[len(h.Buckets)-1].Le
}

// OpStats is the per-operation slice of a Snapshot. Count covers every call
// (attempted, including not-found deletes); LatencyNs covers the sampled
// subset (1 in Registry's sample interval; tests can set it to 1).
type OpStats struct {
	Count     uint64    `json:"count"`
	LatencyNs HistStats `json:"latency_ns"`
}

// TxnStats counts transaction outcomes at the public API.
type TxnStats struct {
	Commits   uint64 `json:"commits"`
	Conflicts uint64 `json:"conflicts"`
	Aborts    uint64 `json:"aborts"`
}

// WALStats aggregates write-ahead-log activity across all shards.
type WALStats struct {
	Appends      uint64    `json:"appends"`
	Bytes        uint64    `json:"bytes"`
	SegmentRolls uint64    `json:"segment_rolls"`
	FsyncNs      HistStats `json:"fsync_ns"`
	GroupBatch   HistStats `json:"group_batch"`
}

// RetrainStats aggregates background layout retraining.
type RetrainStats struct {
	DurNs HistStats `json:"dur_ns"`
}

// RebalanceStats aggregates shard-boundary rebalancing.
type RebalanceStats struct {
	RowsMoved uint64    `json:"rows_moved"`
	PauseNs   HistStats `json:"pause_ns"`
}

// AdmissionStats reports the write admission controller's traffic split and
// queueing. All-zero when admission control is off. Admitted+Shed equals the
// writes submitted through admission-gated entry points; Queued counts the
// subset that waited for a token before resolving, and WaitNs is their
// queue-wait distribution. RateLimit is the current adaptive refill rate in
// writes/sec (the drift/retrain-lag governor's output).
type AdmissionStats struct {
	Admitted  uint64    `json:"admitted"`
	Shed      uint64    `json:"shed"`
	Queued    uint64    `json:"queued"`
	WaitNs    HistStats `json:"wait_ns"`
	RateLimit float64   `json:"rate_limit"`
}

// ReplicaStats reports WAL-shipping replication progress on a follower
// engine. All-zero on leaders (and on followers that have not applied
// anything yet). LagSeconds is time since the follower last observed itself
// caught up with the leader's visible WAL tail; it returns to zero once
// ingest stops and the follower drains.
type ReplicaStats struct {
	RecordsApplied uint64  `json:"records_applied"`
	AppliedEpoch   uint64  `json:"applied_epoch"`
	LagSeconds     float64 `json:"lag_seconds"`
}

// Snapshot is a point-in-time, JSON-marshalable view of every metric in a
// Registry. All counts are monotonic, so two snapshots can be diffed to get
// rates. Ops keys are Op.String() names.
type Snapshot struct {
	Enabled          bool               `json:"enabled"`
	Epoch            uint64             `json:"epoch"`
	EventSeq         uint64             `json:"event_seq"`
	Ops              map[string]OpStats `json:"ops"`
	StripeRetries    uint64             `json:"stripe_retries"`
	FanSubmits       uint64             `json:"fan_submits"`
	FanInline        uint64             `json:"fan_inline"`
	CursorBatches    uint64             `json:"cursor_batches"`
	CompensationHits uint64             `json:"compensation_hits"`
	Txn              TxnStats           `json:"txn"`
	WAL              WALStats           `json:"wal"`
	Retrain          RetrainStats       `json:"retrain"`
	Rebalance        RebalanceStats     `json:"rebalance"`
	Checkpoints      uint64             `json:"checkpoints"`
	Admission        AdmissionStats     `json:"admission"`
	Replica          ReplicaStats       `json:"replica"`
}

// Event is one structured lifecycle event from the ring-buffer journal.
// Seq is monotonic and 1-based; Shard is -1 for engine-wide events.
type Event struct {
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	Kind     string `json:"kind"`
	Shard    int    `json:"shard"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Rows     int    `json:"rows,omitempty"`
	DurNs    int64  `json:"dur_ns,omitempty"`
	Note     string `json:"note,omitempty"`
}

// Event kinds emitted by the engine.
const (
	EvRetrainStart     = "retrain.start"
	EvRetrainSwap      = "retrain.swap"
	EvRebalancePropose = "rebalance.propose"
	EvRebalanceStage   = "rebalance.stage"
	EvRebalancePublish = "rebalance.publish"
	EvRebalanceInstall = "rebalance.install"
	EvCheckpointCut    = "checkpoint.cut"
	EvCheckpointPrune  = "checkpoint.prune"
	EvWALRoll          = "wal.roll"
	EvRecoveryReplay   = "recovery.replay"
	EvMoveStage        = "move.stage"
	EvMovePublish      = "move.publish"
	EvMoveRollback     = "move.rollback"
)

// JournalCap is the number of events the ring journal retains.
const JournalCap = 1024

// Journal is a bounded ring buffer of lifecycle events with monotonic
// sequence numbers. Appends take one short mutex; readers copy out.
type Journal struct {
	mu   sync.Mutex
	ring [JournalCap]Event
	next uint64 // next Seq to assign, 1-based; also total appended
}

// Append stamps and stores ev, returning its assigned Seq.
func (j *Journal) Append(ev Event) uint64 {
	j.mu.Lock()
	j.next++
	ev.Seq = j.next
	if ev.UnixNano == 0 {
		ev.UnixNano = time.Now().UnixNano()
	}
	j.ring[(j.next-1)%JournalCap] = ev
	seq := j.next
	j.mu.Unlock()
	return seq
}

// Seq returns the latest assigned sequence number (0 if empty).
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	s := j.next
	j.mu.Unlock()
	return s
}

// Events returns all retained events with Seq > since, oldest first.
// Events older than the ring capacity are gone; callers detect loss when
// the first returned Seq is > since+1.
func (j *Journal) Events(since uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next == 0 || since >= j.next {
		return nil
	}
	lo := uint64(1)
	if j.next > JournalCap {
		lo = j.next - JournalCap + 1
	}
	if since+1 > lo {
		lo = since + 1
	}
	out := make([]Event, 0, j.next-lo+1)
	for s := lo; s <= j.next; s++ {
		out = append(out, j.ring[(s-1)%JournalCap])
	}
	return out
}

// opMetric pairs a per-op counter with its latency histogram.
type opMetric struct {
	count Counter
	lat   Histogram
}

// DefaultSampleEvery is the default latency sampling interval: counts are
// exact, but only one in every 8 calls pays the two time.Now() reads.
const DefaultSampleEvery = 8

// Registry holds every engine metric plus the event journal. One Registry
// per shard.Engine, created at engine construction with stripes == shard
// count. Zero-value is not usable; call New.
type Registry struct {
	on         atomic.Int32  // refcount; metrics recorded when > 0
	sampleMask atomic.Uint64 // sample latency when seq&mask == 0

	ops [NumOps]opMetric

	StripeRetries Counter
	FanSubmits    Counter
	FanInline     Counter
	CursorBatches Counter
	CompHits      Counter
	TxnCommits    Counter
	TxnConflicts  Counter
	TxnAborts     Counter
	WALAppends    Counter
	WALBytes      Counter
	WALRolls      Counter
	RebalanceRows Counter
	Checkpoints   Counter

	// Admission metrics are recorded ungated (like replica metrics): the
	// controller is itself opt-in, shed traffic must be accountable from
	// the first gated write, and admitted+shed == submitted is a
	// load-bearing invariant that cannot tolerate a late Enable. The
	// stripe hint is the tenant lane. AdmissionRate holds the governor's
	// current refill limit (float64 bits, writes/sec).
	AdmissionAdmitted Counter
	AdmissionShed     Counter
	AdmissionQueued   Counter
	AdmissionWaitNs   Histogram
	AdmissionRate     Gauge

	// Replica metrics are recorded ungated (like journal events): a
	// follower's apply loop starts before any reader calls Enable, and lag
	// must be observable from the first applied record.
	ReplicaRecordsApplied Counter
	ReplicaAppliedEpoch   Gauge
	ReplicaLagSeconds     Gauge // float64 bits

	WALFsyncNs       Histogram
	WALGroupBatch    Histogram
	RetrainNs        Histogram
	RebalancePauseNs Histogram

	sampleSeq atomic.Uint64 // global op sequence for latency sampling

	journal Journal
}

// New returns a Registry striped for the given shard count.
func New(stripes int) *Registry {
	r := &Registry{}
	for i := range r.ops {
		r.ops[i].count = newCounter(stripes)
		r.ops[i].lat = newHistogram(stripes)
	}
	r.StripeRetries = newCounter(stripes)
	r.FanSubmits = newCounter(stripes)
	r.FanInline = newCounter(stripes)
	r.CursorBatches = newCounter(stripes)
	r.CompHits = newCounter(stripes)
	r.TxnCommits = newCounter(1)
	r.TxnConflicts = newCounter(1)
	r.TxnAborts = newCounter(1)
	r.WALAppends = newCounter(stripes)
	r.WALBytes = newCounter(stripes)
	r.WALRolls = newCounter(stripes)
	r.RebalanceRows = newCounter(1)
	r.Checkpoints = newCounter(stripes)
	r.AdmissionAdmitted = newCounter(stripes)
	r.AdmissionShed = newCounter(stripes)
	r.AdmissionQueued = newCounter(stripes)
	r.AdmissionWaitNs = newHistogram(stripes)
	r.ReplicaRecordsApplied = newCounter(stripes)
	r.WALFsyncNs = newHistogram(stripes)
	r.WALGroupBatch = newHistogram(stripes)
	r.RetrainNs = newHistogram(stripes)
	r.RebalancePauseNs = newHistogram(1)
	r.sampleMask.Store(DefaultSampleEvery - 1)
	return r
}

// Enabled reports whether metric recording is on. This is the single
// hot-path check: one atomic load.
func (r *Registry) Enabled() bool { return r.on.Load() > 0 }

// Enable turns metric recording on (refcounted, like the shard engine's
// drift monitor).
func (r *Registry) Enable() { r.on.Add(1) }

// Disable decrements the enable refcount.
func (r *Registry) Disable() { r.on.Add(-1) }

// SetLatencySampleEvery sets the latency sampling interval to n, which must
// be a power of two (counts are always exact; only timing is sampled).
// Tests set 1 so histogram counts equal op counts.
func (r *Registry) SetLatencySampleEvery(n uint64) {
	if n == 0 || n&(n-1) != 0 {
		panic("obs: sample interval must be a power of two")
	}
	r.sampleMask.Store(n - 1)
}

// Track carries an in-flight operation's start time between OpBegin and
// OpEnd. Zero value means "not sampled / not enabled".
type Track struct {
	start int64
}

// OpBegin records one call of op on the given stripe hint and, for the
// sampled subset, captures a start time. Call OpEnd with the returned Track
// when the operation finishes. No-op when the registry is disabled.
func (r *Registry) OpBegin(op Op, stripe int) Track {
	if r == nil || !r.Enabled() {
		return Track{}
	}
	m := &r.ops[op]
	m.count.Inc(stripe)
	if r.sampleSeq.Add(1)&r.sampleMask.Load() == 0 {
		return Track{start: time.Now().UnixNano()}
	}
	return Track{}
}

// OpEnd completes a tracked operation, observing its latency if it was
// sampled by OpBegin.
func (r *Registry) OpEnd(op Op, stripe int, t Track) {
	if t.start == 0 {
		return
	}
	r.ops[op].lat.Observe(stripe, time.Now().UnixNano()-t.start)
}

// Timer measures one duration for the unified lifecycle timings (retrain,
// rebalance pause) so the journal, histograms, and returned result structs
// all report the same number.
type Timer struct{ start time.Time }

// StartTimer begins a duration measurement. Unlike OpBegin this is not
// gated on Enabled: lifecycle timings are rare and always measured.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Event appends a lifecycle event to the ring journal. Never gated on
// Enabled — lifecycle events are rare and must survive from before the
// first reader attaches (e.g. recovery replay during Open).
func (r *Registry) Event(ev Event) {
	if r == nil {
		return
	}
	r.journal.Append(ev)
}

// Events returns retained journal events with Seq > since, oldest first.
func (r *Registry) Events(since uint64) []Event {
	if r == nil {
		return nil
	}
	return r.journal.Events(since)
}

// OpCount returns the total recorded calls for op (test helper).
func (r *Registry) OpCount(op Op) uint64 { return r.ops[op].count.Total() }

// Snapshot folds every metric into a JSON-marshalable Snapshot. Epoch is
// zero here; the engine layer stamps it from its oracle.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Enabled:          r.Enabled(),
		EventSeq:         r.journal.Seq(),
		Ops:              make(map[string]OpStats, NumOps),
		StripeRetries:    r.StripeRetries.Total(),
		FanSubmits:       r.FanSubmits.Total(),
		FanInline:        r.FanInline.Total(),
		CursorBatches:    r.CursorBatches.Total(),
		CompensationHits: r.CompHits.Total(),
		Txn: TxnStats{
			Commits:   r.TxnCommits.Total(),
			Conflicts: r.TxnConflicts.Total(),
			Aborts:    r.TxnAborts.Total(),
		},
		WAL: WALStats{
			Appends:      r.WALAppends.Total(),
			Bytes:        r.WALBytes.Total(),
			SegmentRolls: r.WALRolls.Total(),
			FsyncNs:      r.WALFsyncNs.stats(),
			GroupBatch:   r.WALGroupBatch.stats(),
		},
		Retrain:     RetrainStats{DurNs: r.RetrainNs.stats()},
		Rebalance:   RebalanceStats{RowsMoved: r.RebalanceRows.Total(), PauseNs: r.RebalancePauseNs.stats()},
		Checkpoints: r.Checkpoints.Total(),
		Admission: AdmissionStats{
			Admitted:  r.AdmissionAdmitted.Total(),
			Shed:      r.AdmissionShed.Total(),
			Queued:    r.AdmissionQueued.Total(),
			WaitNs:    r.AdmissionWaitNs.stats(),
			RateLimit: r.AdmissionRate.LoadFloat(),
		},
		Replica: ReplicaStats{
			RecordsApplied: r.ReplicaRecordsApplied.Total(),
			AppliedEpoch:   r.ReplicaAppliedEpoch.Load(),
			LagSeconds:     r.ReplicaLagSeconds.LoadFloat(),
		},
	}
	for op := Op(0); op < NumOps; op++ {
		s.Ops[op.String()] = OpStats{
			Count:     r.ops[op].count.Total(),
			LatencyNs: r.ops[op].lat.stats(),
		}
	}
	return s
}
