// Package table assembles the storage substrates into the multi-column,
// chunked tables that the paper's experiments run against (§6–§7): a keyed
// relation R(a0, a1..ap) whose key column a0 is stored under one of six
// layout modes, with payload columns positionally aligned through row
// movers.
//
// The six modes of §7's evaluation:
//
//	NoOrder     plain column store, insertion order
//	Sorted      fully sorted key column
//	StateOfArt  sorted key column + global delta store (the baseline)
//	Equi        equi-width range partitioning, dense
//	EquiGV      equi-width range partitioning + evenly spread ghost values
//	Casper      optimizer-chosen partitioning + Eq. 18 ghost allocation
//
// Columns are physically split into chunks (1M values each in the paper,
// §6.3/§7); every chunk is laid out and optimized independently.
package table

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"casper/internal/column"
	"casper/internal/costmodel"
	"casper/internal/delta"
	"casper/internal/freq"
	"casper/internal/ghost"
	"casper/internal/iomodel"
	"casper/internal/solver"
	"casper/internal/workload"
)

// Mode selects a column layout strategy.
type Mode int

const (
	NoOrder Mode = iota
	Sorted
	StateOfArt
	Equi
	EquiGV
	Casper
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NoOrder:
		return "NoOrder"
	case Sorted:
		return "Sorted"
	case StateOfArt:
		return "StateOfArt"
	case Equi:
		return "Equi"
	case EquiGV:
		return "EquiGV"
	case Casper:
		return "Casper"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists all layout modes in the paper's comparison order.
func Modes() []Mode { return []Mode{Casper, EquiGV, Equi, StateOfArt, Sorted, NoOrder} }

// Config controls table construction.
type Config struct {
	Mode Mode
	// PayloadCols is the number of payload columns (the paper's narrow
	// table has 16 including the key).
	PayloadCols int
	// ChunkValues is the column chunk size (1M in the paper).
	ChunkValues int
	// BlockValues is the logical block size in values; derived from
	// Params.BlockBytes when zero.
	BlockValues int
	// GhostFrac is the ghost value budget as a fraction of the data size
	// (0.1% = 0.001 in Fig. 12).
	GhostFrac float64
	// Partitions is the per-chunk partition count for the Equi modes and
	// the partition budget for Casper ("we allow Casper to have as many
	// partitions as the equi-width partitioning schemes", §7). Zero
	// derives one partition per block.
	Partitions int
	// Params is the calibrated cost model.
	Params iomodel.CostParams
	// SolverOpts adds SLA constraints for Casper mode.
	SolverOpts solver.Options
	// MergeThreshold is the delta-store merge trigger (StateOfArt mode);
	// zero selects the package default.
	MergeThreshold int
}

func (c Config) withDefaults() Config {
	if c.Params.BlockBytes == 0 {
		c.Params = iomodel.EngineDefaults(0)
	}
	if c.BlockValues <= 0 {
		c.BlockValues = c.Params.BlockValues()
	}
	if c.ChunkValues <= 0 {
		c.ChunkValues = 1 << 20
	}
	if c.PayloadCols < 0 {
		c.PayloadCols = 0
	}
	return c
}

// store is the operation surface every layout provides.
type store interface {
	PointQuery(v int64) int
	RangeCount(lo, hi int64) int
	RangeSum(lo, hi int64) int64
	RangePositions(lo, hi int64, buf []int) []int
	Insert(v int64) int
	Delete(v int64) error
	Update(old, new int64) (int, error)
	Locate(v int64) (int, bool)
	Value(pos int) int64
	Len() int
}

// payloadMover mirrors key-column row movements into the payload columns.
type payloadMover struct {
	cols [][]int32
}

func (m *payloadMover) Move(dst, src int) {
	for _, c := range m.cols {
		c[dst] = c[src]
	}
}

func (m *payloadMover) MoveRange(dst, src, n int) {
	for _, c := range m.cols {
		copy(c[dst:dst+n], c[src:src+n])
	}
}

func (m *payloadMover) Swap(a, b int) {
	for _, c := range m.cols {
		c[a], c[b] = c[b], c[a]
	}
}

func (m *payloadMover) Grow(n int) {
	for i, c := range m.cols {
		for len(c) < n {
			c = append(c, 0)
		}
		m.cols[i] = c
	}
}

func (m *payloadMover) Reorder(perm []int) {
	for i, c := range m.cols {
		next := make([]int32, len(perm))
		for j, old := range perm {
			next[j] = c[old]
		}
		m.cols[i] = next
	}
}

// chunk is one independently laid-out column chunk plus its payload columns.
type chunk struct {
	mu    sync.RWMutex
	store store
	mover *payloadMover
	// casperCol is non-nil when store is a *column.Column (Equi/EquiGV/
	// Casper modes); used for layout introspection and rebuilds.
	casperCol *column.Column
	lowerKey  int64 // smallest key routed to this chunk
	// ver counts mutations (bumped under mu.Lock whenever live rows or
	// physical layout change), letting ScanIter detect between batches
	// whether its captured positions are still valid.
	ver uint64
	// trainedBlocks/trainedGhosts record the layout TrainLayout last
	// applied to this chunk (partition widths in blocks and the ghost
	// allocation), so checkpoints can persist the learned layout and
	// recovery can restore it without re-running the solver. Nil until
	// the chunk has been trained.
	trainedBlocks []int
	trainedGhosts []int
}

// Table is a keyed relation under one layout mode.
type Table struct {
	cfg    Config
	chunks []*chunk
	// chunkLower[i] is the lower key bound of chunk i (chunkLower[0]
	// conceptually −∞).
	chunkLower []int64
}

// PayloadGen derives payload column values from a key; the default fills
// column c of row with key k with int32(k + c).
type PayloadGen func(key int64, col int) int32

// DefaultPayload is the payload generator used when none is supplied.
func DefaultPayload(key int64, col int) int32 { return int32(key) + int32(col) }

// New builds a table over keys (any order) under cfg, generating payload
// rows with gen (nil = DefaultPayload).
func New(keys []int64, cfg Config, gen PayloadGen) (*Table, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("table: empty key set")
	}
	if gen == nil {
		gen = DefaultPayload
	}
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return build(sorted, cfg, func(ord, col int) int32 { return gen(sorted[ord], col) })
}

// NewFromRows builds a table over already-sorted keys with explicit payload
// rows (rows[i] holds the payload columns of sortedKeys[i]). It is the
// constructor behind shadow-copy rebuilds: Snapshot output feeds straight
// into it, preserving payloads that no generator could re-derive (rows moved
// by key updates).
func NewFromRows(sortedKeys []int64, rows [][]int32, cfg Config) (*Table, error) {
	if len(sortedKeys) == 0 {
		return nil, fmt.Errorf("table: empty key set")
	}
	if len(rows) != len(sortedKeys) {
		return nil, fmt.Errorf("table: %d rows for %d keys", len(rows), len(sortedKeys))
	}
	for i := 1; i < len(sortedKeys); i++ {
		if sortedKeys[i] < sortedKeys[i-1] {
			return nil, fmt.Errorf("table: NewFromRows keys not sorted at %d", i)
		}
	}
	return build(sortedKeys, cfg, func(ord, col int) int32 {
		if col < len(rows[ord]) {
			return rows[ord][col]
		}
		return DefaultPayload(sortedKeys[ord], col)
	})
}

// build chunks sorted keys and loads payloads through rowAt, which maps a
// global sorted ordinal and column to the payload value.
func build(sorted []int64, cfg Config, rowAt func(ord, col int) int32) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{cfg: cfg}
	for lo := 0; lo < len(sorted); lo += cfg.ChunkValues {
		hi := lo + cfg.ChunkValues
		if hi > len(sorted) {
			hi = len(sorted)
		}
		// Keep duplicate runs within one chunk.
		for hi < len(sorted) && hi > 0 && sorted[hi] == sorted[hi-1] {
			hi++
		}
		base := lo
		ck, err := newChunk(sorted[lo:hi], cfg, func(ord, col int) int32 { return rowAt(base+ord, col) })
		if err != nil {
			return nil, err
		}
		t.chunks = append(t.chunks, ck)
		t.chunkLower = append(t.chunkLower, sorted[lo])
		if hi >= len(sorted) {
			break
		}
		lo = hi - cfg.ChunkValues // loop adds ChunkValues back
	}
	return t, nil
}

// newChunk builds one chunk under the table's mode; rowAt maps a chunk-local
// sorted ordinal and column to the payload value.
func newChunk(sortedKeys []int64, cfg Config, rowAt func(ord, col int) int32) (*chunk, error) {
	mover := &payloadMover{cols: make([][]int32, cfg.PayloadCols)}
	ck := &chunk{mover: mover, lowerKey: sortedKeys[0]}

	loadPayload := func(posOf func(ord int) int) {
		for ord := range sortedKeys {
			pos := posOf(ord)
			for c := 0; c < cfg.PayloadCols; c++ {
				mover.cols[c][pos] = rowAt(ord, c)
			}
		}
	}

	switch cfg.Mode {
	case NoOrder:
		h := delta.NewHeap(sortedKeys, mover)
		ck.store = h
		loadPayload(func(ord int) int { return ord })
	case Sorted:
		s := delta.NewSorted(sortedKeys, mover)
		ck.store = s
		loadPayload(func(ord int) int { return ord })
	case StateOfArt:
		d := delta.NewDelta(sortedKeys, cfg.MergeThreshold, mover)
		ck.store = d
		loadPayload(func(ord int) int { return ord })
	case Equi, EquiGV, Casper:
		n := len(sortedKeys)
		nb := (n + cfg.BlockValues - 1) / cfg.BlockValues
		k := cfg.Partitions
		if k <= 0 || k > nb {
			k = nb
		}
		layout := costmodel.EquiWidth(nb, k)
		var ghosts []int
		mode := column.Dense
		if cfg.Mode == EquiGV {
			ghosts = ghost.Even(k, ghost.Budget(n, cfg.GhostFrac))
			mode = column.Ghost
		}
		// Casper starts from the equi layout; TrainLayout re-partitions.
		col, err := column.NewFromSorted(sortedKeys, column.Config{
			Layout:      layout,
			BlockValues: cfg.BlockValues,
			Ghosts:      ghosts,
			Mode:        mode,
			Mover:       mover,
		})
		if err != nil {
			return nil, err
		}
		ck.store = col
		ck.casperCol = col
		positions := make([]int, 0, n)
		col.PhysicalPositions(func(ord, pos int) { positions = append(positions, pos) })
		loadPayload(func(ord int) int { return positions[ord] })
	default:
		return nil, fmt.Errorf("table: unknown mode %v", cfg.Mode)
	}
	return ck, nil
}

// Mode returns the table's layout mode.
func (t *Table) Mode() Mode { return t.cfg.Mode }

// Chunks returns the chunk count.
func (t *Table) Chunks() int { return len(t.chunks) }

// Len returns the live row count.
func (t *Table) Len() int {
	n := 0
	for _, ck := range t.chunks {
		ck.mu.RLock()
		n += ck.store.Len()
		ck.mu.RUnlock()
	}
	return n
}

// chunkFor routes a key to its chunk.
func (t *Table) chunkFor(v int64) *chunk {
	i := sort.Search(len(t.chunkLower), func(i int) bool { return t.chunkLower[i] > v })
	if i == 0 {
		return t.chunks[0]
	}
	return t.chunks[i-1]
}

// chunkRange returns the chunk ordinals spanned by [lo, hi].
func (t *Table) chunkRange(lo, hi int64) (int, int) {
	a := sort.Search(len(t.chunkLower), func(i int) bool { return t.chunkLower[i] > lo })
	b := sort.Search(len(t.chunkLower), func(i int) bool { return t.chunkLower[i] > hi })
	if a > 0 {
		a--
	}
	if b > 0 {
		b--
	}
	return a, b
}

// PointQuery executes Q1: the number of live rows with key v.
func (t *Table) PointQuery(v int64) int {
	ck := t.chunkFor(v)
	ck.mu.RLock()
	defer ck.mu.RUnlock()
	return ck.store.PointQuery(v)
}

// RangeCount executes Q2 over [lo, hi].
func (t *Table) RangeCount(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	a, b := t.chunkRange(lo, hi)
	n := 0
	for i := a; i <= b; i++ {
		ck := t.chunks[i]
		ck.mu.RLock()
		n += ck.store.RangeCount(lo, hi)
		ck.mu.RUnlock()
	}
	return n
}

// RangeSum executes Q3 over [lo, hi], summing the key column over the
// selected rows.
func (t *Table) RangeSum(lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	a, b := t.chunkRange(lo, hi)
	var s int64
	for i := a; i <= b; i++ {
		ck := t.chunks[i]
		ck.mu.RLock()
		s += ck.store.RangeSum(lo, hi)
		ck.mu.RUnlock()
	}
	return s
}

// PayloadFilter is a conjunctive predicate on one payload column.
type PayloadFilter struct {
	Col    int
	Lo, Hi int32
}

// MultiRangeSum executes a TPC-H-Q6-shaped query: select rows with key in
// [lo, hi] whose payload columns pass all filters, returning the sum of
// payload column sumCol over qualifying rows (Fig. 1's range query).
func (t *Table) MultiRangeSum(lo, hi int64, filters []PayloadFilter, sumCol int) int64 {
	if hi < lo {
		return 0
	}
	it := t.ScanRange(lo, hi)
	defer it.Close()
	buf := getRowBuf()
	defer putRowBuf(buf)
	var sum int64
	for it.NextBatch(buf, DefaultScanBatch) {
	rowLoop:
		for _, row := range buf.Rows {
			for _, f := range filters {
				x := row[f.Col]
				if x < f.Lo || x > f.Hi {
					continue rowLoop
				}
			}
			sum += int64(row[sumCol])
		}
	}
	return sum
}

// Insert executes Q4, generating the payload row with gen semantics of
// construction time (DefaultPayload).
func (t *Table) Insert(key int64) {
	ck := t.chunkFor(key)
	ck.mu.Lock()
	ck.ver++
	pos := ck.store.Insert(key)
	for c := range ck.mover.cols {
		ck.mover.cols[c][pos] = DefaultPayload(key, c)
	}
	ck.mu.Unlock()
}

// Delete executes Q5. Missing keys are a no-op that still pays the lookup.
func (t *Table) Delete(key int64) error {
	ck := t.chunkFor(key)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.ver++
	return ck.store.Delete(key)
}

// UpdateKey executes Q6: changes a row's key from old to new, preserving
// its payload. Cross-chunk updates are a delete+insert pair carrying the
// payload across.
func (t *Table) UpdateKey(old, new int64) error {
	_, err := t.UpdateKeyRow(old, new)
	return err
}

// UpdateKeyRow is UpdateKey returning a copy of the moved row's payload, so
// callers can journal the move with row identity (with duplicate keys the
// payload pins which duplicate moved).
func (t *Table) UpdateKeyRow(old, new int64) ([]int32, error) {
	src := t.chunkFor(old)
	dst := t.chunkFor(new)
	if src == dst {
		src.mu.Lock()
		defer src.mu.Unlock()
		pos, ok := src.store.Locate(old)
		if !ok {
			return nil, fmt.Errorf("table: %w: %d", column.ErrNotFound, old)
		}
		src.ver++
		saved := src.payloadAt(pos)
		newPos, err := src.store.Update(old, new)
		if err != nil {
			return nil, err
		}
		src.setPayload(newPos, saved)
		return saved, nil
	}
	// Cross-chunk: lock in address order to avoid deadlock.
	first, second := src, dst
	if t.chunkOrdinal(dst) < t.chunkOrdinal(src) {
		first, second = dst, src
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	pos, ok := src.store.Locate(old)
	if !ok {
		return nil, fmt.Errorf("table: %w: %d", column.ErrNotFound, old)
	}
	src.ver++
	dst.ver++
	saved := src.payloadAt(pos)
	if err := src.store.Delete(old); err != nil {
		return nil, err
	}
	newPos := dst.store.Insert(new)
	dst.setPayload(newPos, saved)
	return saved, nil
}

func (t *Table) chunkOrdinal(ck *chunk) int {
	for i, c := range t.chunks {
		if c == ck {
			return i
		}
	}
	return -1
}

func (ck *chunk) payloadAt(pos int) []int32 {
	out := make([]int32, len(ck.mover.cols))
	for c := range ck.mover.cols {
		out[c] = ck.mover.cols[c][pos]
	}
	return out
}

func (ck *chunk) setPayload(pos int, row []int32) {
	for c := range ck.mover.cols {
		ck.mover.cols[c][pos] = row[c]
	}
}

// InsertRow executes Q4 with an explicit payload row instead of the default
// generator — the insert half of a cross-table key move.
func (t *Table) InsertRow(key int64, row []int32) {
	ck := t.chunkFor(key)
	ck.mu.Lock()
	ck.ver++
	pos := ck.store.Insert(key)
	for c := range ck.mover.cols {
		if c < len(row) {
			ck.mover.cols[c][pos] = row[c]
		} else {
			ck.mover.cols[c][pos] = DefaultPayload(key, c)
		}
	}
	ck.mu.Unlock()
}

// TakeRow deletes one row with the given key and returns its payload — the
// delete half of a cross-table key move.
func (t *Table) TakeRow(key int64) ([]int32, error) {
	ck := t.chunkFor(key)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	pos, ok := ck.store.Locate(key)
	if !ok {
		return nil, fmt.Errorf("table: %w: %d", column.ErrNotFound, key)
	}
	ck.ver++
	row := ck.payloadAt(pos)
	if err := ck.store.Delete(key); err != nil {
		return nil, err
	}
	return row, nil
}

// DeleteRowExact removes the live row with the given key whose payload is
// byte-identical to row, selecting among duplicate keys by payload. It backs
// row-identity journal replay: a delete journaled during a shadow retrain
// carries the payload the live table actually dropped, and replaying it
// through DeleteRowExact drops the same duplicate on the shadow, keeping the
// two byte-identical. Non-matching duplicates taken while searching are
// reinserted, preserving the row multiset.
func (t *Table) DeleteRowExact(key int64, row []int32) error {
	var stash [][]int32
	defer func() {
		for _, r := range stash {
			t.InsertRow(key, r)
		}
	}()
	for {
		got, err := t.TakeRow(key)
		if err != nil {
			return err
		}
		if rowsEqual(got, row) {
			return nil
		}
		stash = append(stash, got)
	}
}

func rowsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot returns every live row — keys ascending, payload rows aligned —
// in the form NewFromRows accepts.
//
// Consistency contract: Snapshot takes chunk read locks one at a time, so it
// observes each chunk atomically — a row is never torn, and a single-chunk
// write is either fully present or fully absent — but NOT the table as a
// whole: a writer landing between two chunk visits makes the result a state
// the table never passed through (e.g. a cross-chunk UpdateKey can appear in
// neither or both chunks). Callers needing a table-consistent cut must
// serialize writers themselves for the duration of the call: the sharded
// engine does this by holding the shard's exclusive swap lock (and, for
// recovery checkpoints, cutting under the engine move gate so the snapshot
// sits at a single epoch with no cross-shard move half-applied).
func (t *Table) Snapshot() ([]int64, [][]int32) {
	it := t.ScanRange(math.MinInt64, math.MaxInt64)
	defer it.Close()
	buf := getRowBuf()
	defer putRowBuf(buf)
	var keys []int64
	var rows [][]int32
	for it.NextBatch(buf, DefaultScanBatch) {
		keys = append(keys, buf.Keys...)
		for _, r := range buf.Rows {
			rows = append(rows, append([]int32(nil), r...))
		}
	}
	return keys, rows
}

// keyAt returns the key at physical position pos; caller holds the chunk
// lock.
func (ck *chunk) keyAt(pos int) int64 {
	if ck.casperCol != nil {
		return ck.casperCol.Value(pos)
	}
	return ck.store.Value(pos)
}

// Keys returns every live key (ascending, duplicates included) without
// copying payload rows — the cheap form of Snapshot for callers that only
// plan by key, such as the shard rebalancer scanning for rows whose owner
// changes under a proposed boundary set. The consistency contract is
// Snapshot's: per-chunk atomicity only, unless the caller serializes
// writers.
func (t *Table) Keys() []int64 {
	return t.KeysInRange(math.MinInt64, math.MaxInt64)
}

// KeysInRange returns the live keys in [lo, hi] (ascending, duplicates
// included), touching only the chunks overlapping the range — the bounded
// form of Keys for callers that plan by key intervals, such as the shard
// rebalancer staging and rescanning the ownership-delta intervals of a
// boundary change instead of walking every live key. The consistency
// contract is Snapshot's: per-chunk atomicity only, unless the caller
// serializes writers.
func (t *Table) KeysInRange(lo, hi int64) []int64 {
	if hi < lo {
		return nil
	}
	it := t.ScanRangeKeys(lo, hi)
	defer it.Close()
	buf := getRowBuf()
	defer putRowBuf(buf)
	var keys []int64
	for it.NextBatch(buf, DefaultScanBatch) {
		keys = append(keys, buf.Keys...)
	}
	return keys
}

// Payload returns payload column col at physical position pos of the chunk
// owning key; test helper.
func (t *Table) Payload(key int64, col int) (int32, bool) {
	ck := t.chunkFor(key)
	ck.mu.RLock()
	defer ck.mu.RUnlock()
	pos, ok := ck.store.Locate(key)
	if !ok {
		return 0, false
	}
	return ck.mover.cols[col][pos], true
}

// Execute runs one benchmark operation, returning a result sink value (to
// defeat dead-code elimination in benchmarks).
func (t *Table) Execute(op workload.Op) int64 {
	switch op.Kind {
	case workload.Q1PointQuery:
		return int64(t.PointQuery(op.Key))
	case workload.Q2RangeCount:
		return int64(t.RangeCount(op.Key, op.Key2))
	case workload.Q3RangeSum:
		return t.RangeSum(op.Key, op.Key2)
	case workload.Q4Insert:
		t.Insert(op.Key)
		return 1
	case workload.Q5Delete:
		if err := t.Delete(op.Key); err == nil {
			return 1
		}
		return 0
	case workload.Q6Update:
		if err := t.UpdateKey(op.Key, op.Key2); err == nil {
			return 1
		}
		return 0
	}
	return 0
}

// ExecuteAll runs every operation serially.
func (t *Table) ExecuteAll(ops []workload.Op) int64 {
	var sink int64
	for _, op := range ops {
		sink += t.Execute(op)
	}
	return sink
}

// ExecuteParallel spreads operations over workers goroutines; chunk-level
// locks serialize conflicting writes (§6: "column layouts create regions of
// the data that can be processed in parallel").
func (t *Table) ExecuteParallel(ops []workload.Op, workers int) int64 {
	if workers <= 1 {
		return t.ExecuteAll(ops)
	}
	var wg sync.WaitGroup
	sums := make([]int64, workers)
	per := (len(ops) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ops) {
			hi = len(ops)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []workload.Op) {
			defer wg.Done()
			var s int64
			for _, op := range part {
				s += t.Execute(op)
			}
			sums[w] = s
		}(w, ops[lo:hi])
	}
	wg.Wait()
	var sink int64
	for _, s := range sums {
		sink += s
	}
	return sink
}

// TrainLayout re-partitions every chunk for the sampled workload (Casper
// mode): it builds a per-chunk Frequency Model, solves the layout problem
// (in parallel across chunks, §6.3), allocates the ghost budget per Eq. 18,
// and rebuilds the chunks. Non-Casper tables return an error.
func (t *Table) TrainLayout(sample []workload.Op, parallelism int) error {
	if t.cfg.Mode != Casper {
		return fmt.Errorf("table: TrainLayout requires Casper mode, have %v", t.cfg.Mode)
	}
	fops := workload.ToFreqOps(sample)

	// Partition the sample per chunk.
	perChunk := make([][]freq.Op, len(t.chunks))
	for _, op := range fops {
		i := t.ordinalFor(op.Key)
		perChunk[i] = append(perChunk[i], op)
		if op.Kind == freq.OpRangeQuery || op.Kind == freq.OpUpdate {
			if j := t.ordinalFor(op.Key2); j != i {
				// Ops spanning chunks contribute to both.
				perChunk[j] = append(perChunk[j], op)
			}
		}
	}

	type job struct {
		i     int
		fm    *freq.Model
		terms *costmodel.Terms
		keys  []int64
	}
	var jobs []job
	var termsList []*costmodel.Terms
	for i, ck := range t.chunks {
		keys := snapshotSorted(ck)
		if len(keys) == 0 {
			continue // fully deleted chunk: nothing to lay out
		}
		fm, _ := freq.FromSample(keys, t.cfg.BlockValues, perChunk[i])
		// The optimizer prices the chunk as it will actually run: with a
		// ghost budget absorbing inserts/updates, only the residual
		// fraction pays ripple costs (§4.6). Eq. 18 allocation below still
		// uses the raw model.
		optView := fm
		if t.cfg.GhostFrac > 0 {
			optView = fm.GhostAware(float64(ghost.Budget(len(keys), t.cfg.GhostFrac)))
		}
		terms := costmodel.Compute(optView, t.cfg.Params)
		jobs = append(jobs, job{i: i, fm: fm, terms: terms, keys: keys})
		termsList = append(termsList, terms)
	}

	opts := t.cfg.SolverOpts
	if t.cfg.Partitions > 0 && (opts.MaxPartitions == 0 || t.cfg.Partitions < opts.MaxPartitions) {
		// Fairness budget of §7 ("as many partitions as the equi-width
		// schemes") composes with any SLA-derived cap by taking the min.
		opts.MaxPartitions = t.cfg.Partitions
	}
	results := solver.OptimizeChunks(termsList, opts, parallelism)
	for ji, r := range results {
		if r.Err != nil {
			return fmt.Errorf("table: chunk %d: %w", jobs[ji].i, r.Err)
		}
	}
	for ji, j := range jobs {
		budget := ghost.Budget(len(j.keys), t.cfg.GhostFrac)
		alloc := ghost.Allocate(j.fm, results[ji].Result.Layout, budget)
		if err := t.rebuildChunk(j.i, j.keys, results[ji].Result.Layout, alloc); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) ordinalFor(v int64) int {
	i := sort.Search(len(t.chunkLower), func(i int) bool { return t.chunkLower[i] > v })
	if i == 0 {
		return 0
	}
	return i - 1
}

// snapshotSorted returns the chunk's live keys sorted.
func snapshotSorted(ck *chunk) []int64 {
	ck.mu.RLock()
	defer ck.mu.RUnlock()
	if ck.casperCol != nil {
		return ck.casperCol.SortedSnapshot()
	}
	n := ck.store.Len()
	out := make([]int64, 0, n)
	// Full range covers everything representable.
	var buf []int
	buf = ck.store.RangePositions(math.MinInt64, math.MaxInt64, buf)
	for _, pos := range buf {
		out = append(out, ck.store.Value(pos))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebuildChunk replaces chunk i's storage with a freshly partitioned column
// and reloads payload rows.
func (t *Table) rebuildChunk(i int, sortedKeys []int64, layout costmodel.Layout, ghosts []int) error {
	ck := t.chunks[i]
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.ver++

	// Save payload rows in key-sorted order.
	old := ck.casperCol
	saved := make([][]int32, 0, len(sortedKeys))
	if old != nil {
		// Walk old physical order; pair with keys.
		type kv struct {
			key int64
			row []int32
		}
		rows := make([]kv, 0, old.Len())
		old.PhysicalPositions(func(ord, pos int) {
			rows = append(rows, kv{old.Value(pos), ck.payloadAt(pos)})
		})
		sort.SliceStable(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
		for _, r := range rows {
			saved = append(saved, r.row)
		}
	}

	mode := column.Dense
	for _, g := range ghosts {
		if g > 0 {
			mode = column.Ghost
			break
		}
	}
	mover := &payloadMover{cols: make([][]int32, t.cfg.PayloadCols)}
	col, err := column.NewFromSorted(sortedKeys, column.Config{
		Layout:      layout,
		BlockValues: t.cfg.BlockValues,
		Ghosts:      ghosts,
		Mode:        mode,
		Mover:       mover,
	})
	if err != nil {
		return fmt.Errorf("table: rebuilding chunk %d: %w", i, err)
	}
	col.PhysicalPositions(func(ord, pos int) {
		for c := 0; c < t.cfg.PayloadCols; c++ {
			if ord < len(saved) {
				mover.cols[c][pos] = saved[ord][c]
			} else {
				mover.cols[c][pos] = DefaultPayload(sortedKeys[ord], c)
			}
		}
	})
	ck.store = col
	ck.casperCol = col
	ck.mover = mover
	ck.trainedBlocks = append([]int(nil), layout.Sizes...)
	ck.trainedGhosts = append([]int(nil), ghosts...)
	return nil
}

// ChunkLayout captures one chunk's applied trained layout for persistence:
// partition widths in blocks plus the ghost allocation, exactly as last
// handed to rebuildChunk. Trained is false for chunks still on their
// construction-time layout.
type ChunkLayout struct {
	Trained bool
	Blocks  []int
	Ghosts  []int
}

// ChunkLayouts returns each chunk's applied trained layout (Trained=false
// entries for untrained chunks), in chunk order. Feed the result back into
// RestoreLayouts after rebuilding the table from a Snapshot to restore the
// learned partitioning without re-running the solver.
func (t *Table) ChunkLayouts() []ChunkLayout {
	out := make([]ChunkLayout, len(t.chunks))
	for i, ck := range t.chunks {
		ck.mu.RLock()
		if ck.trainedBlocks != nil {
			out[i] = ChunkLayout{
				Trained: true,
				Blocks:  append([]int(nil), ck.trainedBlocks...),
				Ghosts:  append([]int(nil), ck.trainedGhosts...),
			}
		}
		ck.mu.RUnlock()
	}
	return out
}

// RestoreLayouts re-applies previously captured trained layouts to a table
// rebuilt from the same snapshot the layouts were captured with, chunk by
// chunk — the recovery-side counterpart of ChunkLayouts. Entries beyond the
// current chunk count and untrained entries are skipped. Only meaningful in
// Casper mode; other modes ignore the call.
func (t *Table) RestoreLayouts(specs []ChunkLayout) error {
	if t.cfg.Mode != Casper {
		return nil
	}
	for i, spec := range specs {
		if !spec.Trained || i >= len(t.chunks) {
			continue
		}
		keys := snapshotSorted(t.chunks[i])
		if len(keys) == 0 {
			continue
		}
		if err := t.rebuildChunk(i, keys, costmodel.Layout{Sizes: spec.Blocks}, spec.Ghosts); err != nil {
			return fmt.Errorf("table: restoring chunk %d layout: %w", i, err)
		}
	}
	return nil
}

// LayoutSummary describes one chunk's current layout.
type LayoutSummary struct {
	Chunk      int
	Partitions int
	Sizes      []int
	Ghosts     []int
}

// Layouts reports the partitioned chunks' layouts (empty for baseline
// modes).
func (t *Table) Layouts() []LayoutSummary {
	var out []LayoutSummary
	for i, ck := range t.chunks {
		ck.mu.RLock()
		if ck.casperCol != nil {
			out = append(out, LayoutSummary{
				Chunk:      i,
				Partitions: ck.casperCol.Partitions(),
				Sizes:      ck.casperCol.PartitionSizes(),
				Ghosts:     ck.casperCol.GhostSlots(),
			})
		}
		ck.mu.RUnlock()
	}
	return out
}
