package table

import (
	"math/rand"
	"reflect"
	"testing"

	"casper/internal/workload"
)

func testConfig(mode Mode) Config {
	return Config{
		Mode:        mode,
		PayloadCols: 4,
		ChunkValues: 512,
		BlockValues: 32,
		GhostFrac:   0.01,
		Partitions:  8,
	}
}

func buildTable(t *testing.T, mode Mode, n int) *Table {
	t.Helper()
	keys := workload.UniformKeys(n, int64(n)*10, 21)
	tb, err := New(keys, testConfig(mode), nil)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	return tb
}

func TestNewAllModes(t *testing.T) {
	for _, mode := range Modes() {
		tb := buildTable(t, mode, 2000)
		if tb.Len() != 2000 {
			t.Errorf("%v: Len = %d, want 2000", mode, tb.Len())
		}
		if tb.Chunks() < 2 {
			t.Errorf("%v: chunks = %d, want >= 2", mode, tb.Chunks())
		}
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, testConfig(NoOrder), nil); err == nil {
		t.Fatal("empty key set accepted")
	}
}

// TestAllModesAgreeOnWorkload runs an identical operation stream through
// every layout mode and requires identical query answers — the layouts are
// interchangeable access paths over the same logical relation.
func TestAllModesAgreeOnWorkload(t *testing.T) {
	keys := workload.UniformKeys(3000, 30_000, 33)
	spec, err := workload.Preset(workload.HybridSkewed, 2500, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec.Mix = append(spec.Mix,
		workload.MixEntry{Kind: workload.Q2RangeCount, Frac: 0.1, Access: workload.Uniform},
		workload.MixEntry{Kind: workload.Q3RangeSum, Frac: 0.1, Access: workload.Uniform},
		workload.MixEntry{Kind: workload.Q5Delete, Frac: 0.05, Access: workload.Uniform},
	)
	ops, err := workload.Generate(keys, 30_000, spec)
	if err != nil {
		t.Fatal(err)
	}

	var reference []int64
	var refMode Mode
	for i, mode := range Modes() {
		tb, err := New(keys, testConfig(mode), nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if mode == Casper {
			if err := tb.TrainLayout(ops[:500], 2); err != nil {
				t.Fatalf("TrainLayout: %v", err)
			}
		}
		results := make([]int64, len(ops))
		for j, op := range ops {
			results[j] = tb.Execute(op)
		}
		if i == 0 {
			reference = results
			refMode = mode
			continue
		}
		for j := range results {
			if results[j] != reference[j] {
				t.Fatalf("%v diverges from %v at op %d (%+v): %d vs %d",
					mode, refMode, j, ops[j], results[j], reference[j])
			}
		}
	}
}

func TestPointAndRangeQueries(t *testing.T) {
	keys := []int64{5, 10, 10, 20, 30, 40, 50, 60, 70, 80}
	for _, mode := range Modes() {
		tb, err := New(keys, Config{Mode: mode, PayloadCols: 2, ChunkValues: 100, BlockValues: 2, Partitions: 3}, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := tb.PointQuery(10); got != 2 {
			t.Errorf("%v: PointQuery(10) = %d, want 2", mode, got)
		}
		if got := tb.RangeCount(10, 50); got != 6 {
			t.Errorf("%v: RangeCount(10,50) = %d, want 6", mode, got)
		}
		if got := tb.RangeSum(10, 50); got != 160 {
			t.Errorf("%v: RangeSum(10,50) = %d, want 160", mode, got)
		}
	}
}

func TestInsertDeleteUpdateAcrossChunks(t *testing.T) {
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i)
	}
	for _, mode := range Modes() {
		cfg := testConfig(mode)
		cfg.ChunkValues = 250
		tb, err := New(keys, cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if tb.Chunks() != 4 {
			t.Fatalf("%v: chunks = %d, want 4", mode, tb.Chunks())
		}
		// Cross-chunk update: key 10 (chunk 0) → 900 (chunk 3).
		if err := tb.UpdateKey(10, 900); err != nil {
			t.Fatalf("%v: UpdateKey: %v", mode, err)
		}
		if got := tb.PointQuery(10); got != 0 {
			t.Errorf("%v: old key still present", mode)
		}
		if got := tb.PointQuery(900); got != 2 {
			t.Errorf("%v: PointQuery(900) = %d, want 2", mode, got)
		}
		if tb.Len() != 1000 {
			t.Errorf("%v: Len = %d, want 1000", mode, tb.Len())
		}
		// Delete and insert.
		if err := tb.Delete(500); err != nil {
			t.Fatalf("%v: Delete: %v", mode, err)
		}
		tb.Insert(500)
		if tb.Len() != 1000 {
			t.Errorf("%v: Len after delete+insert = %d", mode, tb.Len())
		}
	}
}

func TestUpdatePreservesPayload(t *testing.T) {
	keys := make([]int64, 400)
	for i := range keys {
		keys[i] = int64(i) * 3
	}
	gen := func(key int64, col int) int32 { return int32(key*100) + int32(col) }
	for _, mode := range Modes() {
		cfg := testConfig(mode)
		cfg.ChunkValues = 100
		tb, err := New(keys, cfg, gen)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Same-chunk update.
		if err := tb.UpdateKey(30, 31); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got, ok := tb.Payload(31, 2); !ok || got != 30*100+2 {
			t.Errorf("%v: payload after same-chunk update = %d,%v, want %d", mode, got, ok, 30*100+2)
		}
		// Cross-chunk update (key 60 in chunk 0; 901 is absent and routes
		// to the last chunk).
		if err := tb.UpdateKey(60, 901); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got, ok := tb.Payload(901, 1); !ok || got != 60*100+1 {
			t.Errorf("%v: payload after cross-chunk update = %d,%v, want %d", mode, got, ok, 60*100+1)
		}
	}
}

func TestMultiRangeSum(t *testing.T) {
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
	}
	gen := func(key int64, col int) int32 {
		if col == 0 {
			return int32(key % 10) // filter column
		}
		return int32(key) // sum column
	}
	for _, mode := range Modes() {
		tb, err := New(keys, Config{Mode: mode, PayloadCols: 2, ChunkValues: 1000, BlockValues: 8, Partitions: 4}, gen)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Keys 20..39 with key%10 in [2,4]: 22,23,24,32,33,34.
		got := tb.MultiRangeSum(20, 39, []PayloadFilter{{Col: 0, Lo: 2, Hi: 4}}, 1)
		want := int64(22 + 23 + 24 + 32 + 33 + 34)
		if got != want {
			t.Errorf("%v: MultiRangeSum = %d, want %d", mode, got, want)
		}
	}
}

func TestTrainLayoutAdaptsToSkew(t *testing.T) {
	// Point queries hammer the high domain; inserts hammer the low
	// domain. Casper should use narrow partitions where reads land and
	// give ghost slots where inserts land.
	keys := make([]int64, 2048)
	for i := range keys {
		keys[i] = int64(i)
	}
	cfg := Config{
		Mode:        Casper,
		PayloadCols: 1,
		ChunkValues: 4096, // single chunk
		BlockValues: 64,
		GhostFrac:   0.05,
		Partitions:  16,
	}
	tb, err := New(keys, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reads must outweigh insert ripple cost for fine partitioning to pay
	// off: point queries outnumber inserts 10:1 (Fig. 2a's trade-off).
	var sample []workload.Op
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		sample = append(sample, workload.Op{Kind: workload.Q1PointQuery, Key: 1536 + int64(rng.Intn(512))})
		if i%10 == 0 {
			sample = append(sample, workload.Op{Kind: workload.Q4Insert, Key: int64(rng.Intn(512))})
		}
	}
	if err := tb.TrainLayout(sample, 1); err != nil {
		t.Fatal(err)
	}
	ls := tb.Layouts()
	if len(ls) != 1 {
		t.Fatalf("layouts = %d, want 1", len(ls))
	}
	l := ls[0]
	if l.Partitions > 16 {
		t.Errorf("partition budget violated: %d > 16", l.Partitions)
	}
	if l.Partitions < 2 {
		t.Fatalf("optimizer kept a single partition: %v", l.Sizes)
	}
	// Ghost slots should concentrate where inserts land (low domain).
	// Sizes and the positions derived from them are in values.
	var earlyGhosts, lateGhosts, covered int
	for j, size := range l.Sizes {
		mid := covered + size/2
		if mid < 1024 {
			earlyGhosts += l.Ghosts[j]
		} else {
			lateGhosts += l.Ghosts[j]
		}
		covered += size
	}
	if earlyGhosts <= lateGhosts {
		t.Errorf("ghosts not skewed to insert region: early=%d late=%d", earlyGhosts, lateGhosts)
	}
	// Partitions in the read-heavy region should be narrower on average
	// than in the insert-heavy region.
	var readVals, readParts, restVals, restParts int
	covered = 0
	for _, size := range l.Sizes {
		mid := covered + size/2
		if mid >= 1536 {
			readVals += size
			readParts++
		} else {
			restVals += size
			restParts++
		}
		covered += size
	}
	if readParts == 0 || restParts == 0 {
		t.Fatalf("unexpected layout %v", l.Sizes)
	}
	readAvg := float64(readVals) / float64(readParts)
	restAvg := float64(restVals) / float64(restParts)
	if readAvg >= restAvg {
		t.Errorf("read-region partitions (%v values avg) should be narrower than the rest (%v)",
			readAvg, restAvg)
	}
}

func TestTrainLayoutRequiresCasper(t *testing.T) {
	tb := buildTable(t, Equi, 500)
	if err := tb.TrainLayout(nil, 1); err == nil {
		t.Fatal("TrainLayout accepted on Equi table")
	}
}

func TestTrainLayoutPreservesData(t *testing.T) {
	keys := workload.UniformKeys(1500, 15_000, 8)
	cfg := testConfig(Casper)
	tb, err := New(keys, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.Preset(workload.HybridSkewed, 1000, 3)
	sample, _ := workload.Generate(keys, 15_000, spec)
	before := tb.RangeSum(0, 15_000)
	if err := tb.TrainLayout(sample, 2); err != nil {
		t.Fatal(err)
	}
	if after := tb.RangeSum(0, 15_000); after != before {
		t.Fatalf("data changed across retrain: %d -> %d", before, after)
	}
	if tb.Len() != 1500 {
		t.Fatalf("Len = %d, want 1500", tb.Len())
	}
}

func TestExecuteParallelMatchesSerial(t *testing.T) {
	keys := workload.UniformKeys(2000, 20_000, 44)
	spec, _ := workload.Preset(workload.ReadOnlyUniform, 2000, 6)
	ops, err := workload.Generate(keys, 20_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Read-only ops commute, so parallel and serial sums must match.
	var readOnly []workload.Op
	for _, op := range ops {
		if op.Kind == workload.Q1PointQuery || op.Kind == workload.Q2RangeCount {
			readOnly = append(readOnly, op)
		}
	}
	tb := buildTable(t, Casper, 2000)
	serial := tb.ExecuteAll(readOnly)
	parallel := tb.ExecuteParallel(readOnly, 4)
	if serial != parallel {
		t.Fatalf("parallel sum %d != serial %d", parallel, serial)
	}
}

func TestParallelMixedWorkloadIsRaceFree(t *testing.T) {
	// Run under -race: concurrent mixed operations must not race even
	// though results are order-dependent.
	keys := workload.UniformKeys(2000, 20_000, 45)
	spec, _ := workload.Preset(workload.HybridSkewed, 3000, 7)
	ops, err := workload.Generate(keys, 20_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Casper, StateOfArt} {
		cfg := testConfig(mode)
		tb, err := New(keys, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		tb.ExecuteParallel(ops, 4)
	}
}

func TestDuplicateRunsCrossingChunkBoundary(t *testing.T) {
	keys := make([]int64, 0, 600)
	for i := 0; i < 200; i++ {
		keys = append(keys, 1)
	}
	for i := 0; i < 400; i++ {
		keys = append(keys, int64(i+10))
	}
	cfg := testConfig(Casper)
	cfg.ChunkValues = 128
	tb, err := New(keys, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.PointQuery(1); got != 200 {
		t.Fatalf("PointQuery(1) = %d, want 200 (duplicates split across chunks)", got)
	}
}

// TestDeleteRowExactSelectsDuplicateByPayload: with duplicate keys carrying
// different payloads, DeleteRowExact must remove exactly the requested row
// and leave the other duplicates untouched — the property retrain-journal
// replay relies on for byte-identical shadows.
func TestDeleteRowExactSelectsDuplicateByPayload(t *testing.T) {
	for _, mode := range Modes() {
		keys := []int64{5, 10, 10, 10, 20}
		rows := [][]int32{
			{50, 51, 52, 53},
			{100, 101, 102, 103},
			{200, 201, 202, 203},
			{300, 301, 302, 303},
			{20, 21, 22, 23},
		}
		tb, err := NewFromRows(keys, rows, testConfig(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := tb.DeleteRowExact(10, []int32{200, 201, 202, 203}); err != nil {
			t.Fatalf("%v: DeleteRowExact: %v", mode, err)
		}
		if got := tb.PointQuery(10); got != 2 {
			t.Fatalf("%v: PointQuery(10) = %d after exact delete, want 2", mode, got)
		}
		// The two survivors are the other duplicates, payloads intact.
		seen := map[int32]bool{}
		for i := 0; i < 2; i++ {
			row, err := tb.TakeRow(10)
			if err != nil {
				t.Fatalf("%v: TakeRow survivor %d: %v", mode, i, err)
			}
			seen[row[0]] = true
		}
		if !seen[100] || !seen[300] {
			t.Fatalf("%v: survivors %v, want payloads 100 and 300", mode, seen)
		}
		// A payload that matches no duplicate fails and restores the rows.
		if err := tb.DeleteRowExact(5, []int32{9, 9, 9, 9}); err == nil {
			t.Fatalf("%v: DeleteRowExact with unknown payload should error", mode)
		}
		if got := tb.PointQuery(5); got != 1 {
			t.Fatalf("%v: PointQuery(5) = %d after failed exact delete, want 1", mode, got)
		}
		if v, ok := tb.Payload(5, 0); !ok || v != 50 {
			t.Fatalf("%v: Payload(5,0) = (%d,%v) after failed exact delete, want (50,true)", mode, v, ok)
		}
	}
}

// TestUpdateKeyRowReturnsMovedPayload: UpdateKeyRow must report the payload
// of the duplicate it moved, for both same-chunk and cross-chunk moves.
func TestUpdateKeyRowReturnsMovedPayload(t *testing.T) {
	keys := []int64{10, 20}
	rows := [][]int32{{100, 101, 102, 103}, {200, 201, 202, 203}}
	tb, err := NewFromRows(keys, rows, testConfig(Casper))
	if err != nil {
		t.Fatal(err)
	}
	row, err := tb.UpdateKeyRow(20, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 4 || row[0] != 200 {
		t.Fatalf("moved payload %v, want [200 201 202 203]", row)
	}
	if v, ok := tb.Payload(15, 0); !ok || v != 200 {
		t.Fatalf("Payload(15,0) = (%d,%v), want (200,true)", v, ok)
	}
	if _, err := tb.UpdateKeyRow(999, 1); err == nil {
		t.Fatal("UpdateKeyRow of absent key should error")
	}
}

// TestSnapshotConsistencyContract pins Snapshot's documented contract:
// (a) each chunk is observed atomically — no torn row ever appears, even
// under concurrent writers — and (b) with writers serialized externally the
// snapshot is an exact, key-sorted image of the table.
func TestSnapshotConsistencyContract(t *testing.T) {
	keys := make([]int64, 600)
	for i := range keys {
		keys[i] = int64(i * 3)
	}
	tb, err := New(keys, testConfig(Casper), nil)
	if err != nil {
		t.Fatal(err)
	}

	// (a) Concurrent inserts: every row in every snapshot must carry the
	// DefaultPayload of its key — a torn row (key from one row, payload
	// from another) would violate payload[c] == key+c.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			tb.Insert(int64(i*5 + 1))
		}
	}()
	for {
		gotKeys, gotRows := tb.Snapshot()
		if len(gotRows) != len(gotKeys) {
			t.Fatalf("snapshot shape: %d rows for %d keys", len(gotRows), len(gotKeys))
		}
		for i, k := range gotKeys {
			if i > 0 && k < gotKeys[i-1] {
				t.Fatalf("snapshot keys not sorted at %d", i)
			}
			for c, v := range gotRows[i] {
				if v != DefaultPayload(k, c) {
					t.Fatalf("torn row: key %d col %d = %d, want %d", k, c, v, DefaultPayload(k, c))
				}
			}
		}
		select {
		case <-done:
			// (b) Writers quiesced: the snapshot is exact.
			gotKeys, _ := tb.Snapshot()
			if len(gotKeys) != len(keys)+400 {
				t.Fatalf("quiesced snapshot has %d rows, want %d", len(gotKeys), len(keys)+400)
			}
			return
		default:
		}
	}
}

// TestChunkLayoutsRoundTrip: RestoreLayouts on a table rebuilt from a
// snapshot reproduces the trained physical layout exactly.
func TestChunkLayoutsRoundTrip(t *testing.T) {
	tb := buildTable(t, Casper, 1500)
	sample := make([]workload.Op, 0, 300)
	for i := 0; i < 300; i++ {
		sample = append(sample, workload.Op{Kind: workload.Q1PointQuery, Key: int64(i % 200)})
	}
	if err := tb.TrainLayout(sample, 1); err != nil {
		t.Fatalf("TrainLayout: %v", err)
	}
	specs := tb.ChunkLayouts()
	trained := 0
	for _, s := range specs {
		if s.Trained {
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("no chunk reports a trained layout after TrainLayout")
	}

	snapKeys, snapRows := tb.Snapshot()
	rebuilt, err := NewFromRows(snapKeys, snapRows, testConfig(Casper))
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.RestoreLayouts(specs); err != nil {
		t.Fatalf("RestoreLayouts: %v", err)
	}
	got, want := rebuilt.Layouts(), tb.Layouts()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored layouts diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestKeysInRangeMatchesKeys: the bounded iterator must agree with a filter
// over the full Keys() listing on every layout mode — across duplicates,
// chunk boundaries, mutations, and empty/reversed ranges. The shard
// rebalancer's ownership-delta staging and straggler rescan both ride on
// this equivalence.
func TestKeysInRangeMatchesKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, mode := range Modes() {
		keys := make([]int64, 0, 1_200)
		for i := 0; i < 1_000; i++ {
			keys = append(keys, rng.Int63n(5_000))
		}
		for i := 0; i < 200; i++ {
			keys = append(keys, 777) // a duplicate run
		}
		cfg := testConfig(mode)
		cfg.ChunkValues = 256 // force several chunks so ranges straddle them
		tb, err := New(keys, cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := 0; i < 150; i++ { // mutate so live positions have holes
			switch rng.Intn(3) {
			case 0:
				tb.Insert(rng.Int63n(5_000))
			case 1:
				_ = tb.Delete(keys[rng.Intn(len(keys))])
			default:
				_ = tb.UpdateKey(keys[rng.Intn(len(keys))], rng.Int63n(5_000))
			}
		}
		all := tb.Keys()
		filtered := func(lo, hi int64) []int64 {
			var out []int64
			for _, k := range all {
				if lo <= k && k <= hi {
					out = append(out, k)
				}
			}
			return out
		}
		ranges := [][2]int64{
			{0, 5_000},          // everything
			{777, 777},          // the duplicate run
			{-100, -1},          // empty below
			{6_000, 9_000},      // empty above
			{250, 260},          // narrow
			{0, 2_500},          // half
			{2_400, 2_700},      // chunk-straddling interior
			{-1 << 40, 1 << 40}, // beyond the domain on both sides
		}
		for _, r := range ranges {
			got, want := tb.KeysInRange(r[0], r[1]), filtered(r[0], r[1])
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("%v: KeysInRange(%d,%d) = %d keys, filter of Keys() = %d keys",
					mode, r[0], r[1], len(got), len(want))
			}
		}
		if got := tb.KeysInRange(10, 5); got != nil {
			t.Fatalf("%v: reversed range returned %v, want nil", mode, got)
		}
	}
}
