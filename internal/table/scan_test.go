package table

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refRange returns the expected (keys, rows) of a [lo, hi] scan by brute
// force from a Snapshot taken before the scan.
func refRange(keys []int64, rows [][]int32, lo, hi int64) ([]int64, [][]int32) {
	var rk []int64
	var rr [][]int32
	for i, k := range keys {
		if k >= lo && k <= hi {
			rk = append(rk, k)
			rr = append(rr, rows[i])
		}
	}
	return rk, rr
}

func drainScan(t *testing.T, it *ScanIter, max int) ([]int64, [][]int32) {
	t.Helper()
	var keys []int64
	var rows [][]int32
	buf := &RowBuf{}
	prevLast := int64(math.MinInt64)
	for it.NextBatch(buf, max) {
		if buf.Len() == 0 {
			t.Fatal("NextBatch returned true with empty batch")
		}
		if buf.Keys[0] == prevLast && prevLast != math.MinInt64 {
			t.Fatalf("duplicate run split across batches at key %d", prevLast)
		}
		for i, k := range buf.Keys {
			if i > 0 && k < buf.Keys[i-1] {
				t.Fatalf("batch not ascending: %d after %d", k, buf.Keys[i-1])
			}
			if k < prevLast {
				t.Fatalf("batch regressed below previous batch: %d < %d", k, prevLast)
			}
		}
		prevLast = buf.Keys[buf.Len()-1]
		keys = append(keys, buf.Keys...)
		for _, r := range buf.Rows {
			rows = append(rows, append([]int32(nil), r...))
		}
	}
	return keys, rows
}

// TestScanRangeMatchesSnapshot checks, in every layout mode and across batch
// sizes, that the chunk-bounded iterator yields exactly the rows a
// materialized Snapshot reports for the range, in ascending key order.
func TestScanRangeMatchesSnapshot(t *testing.T) {
	for _, mode := range Modes() {
		tb := buildTable(t, mode, 3000)
		// Force duplicates so runs exercise the key-boundary batch cut.
		for i := 0; i < 50; i++ {
			tb.Insert(int64(1000 + i%10))
		}
		keys, rows := tb.Snapshot()
		for _, batch := range []int{1, 7, 256, 0} {
			for _, rng := range [][2]int64{
				{0, 30_000}, {500, 1500}, {math.MinInt64, math.MaxInt64},
				{29_999, 29_000}, // empty (hi < lo)
			} {
				wantK, wantR := refRange(keys, rows, rng[0], rng[1])
				it := tb.ScanRange(rng[0], rng[1])
				gotK, gotR := drainScan(t, it, batch)
				it.Close()
				if len(gotK) != len(wantK) {
					t.Fatalf("%v batch=%d range=%v: %d keys, want %d", mode, batch, rng, len(gotK), len(wantK))
				}
				for i := range gotK {
					if gotK[i] != wantK[i] {
						t.Fatalf("%v batch=%d: key[%d]=%d want %d", mode, batch, i, gotK[i], wantK[i])
					}
					if !rowsEqual(gotR[i], wantR[i]) {
						t.Fatalf("%v batch=%d: row[%d]=%v want %v", mode, batch, i, gotR[i], wantR[i])
					}
				}
			}
		}
	}
}

// TestScanRangeKeysOnly checks the keys-only scan agrees with KeysInRange.
func TestScanRangeKeysOnly(t *testing.T) {
	for _, mode := range Modes() {
		tb := buildTable(t, mode, 2000)
		want := tb.KeysInRange(100, 9000)
		it := tb.ScanRangeKeys(100, 9000)
		got, rows := drainScan(t, it, 64)
		it.Close()
		if len(rows) != 0 {
			t.Fatalf("%v: keys-only scan yielded %d rows", mode, len(rows))
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d keys, want %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: key[%d]=%d want %d", mode, i, got[i], want[i])
			}
		}
	}
}

// TestScanSurvivesConcurrentMutation interleaves writes with a paused scan:
// the iterator must revalidate its chunk capture and keep yielding a sorted,
// duplicate-run-intact stream whose keys all belong to the union of the
// original and inserted key sets.
func TestScanSurvivesConcurrentMutation(t *testing.T) {
	for _, mode := range Modes() {
		tb := buildTable(t, mode, 3000)
		valid := make(map[int64]bool)
		for _, k := range tb.Keys() {
			valid[k] = true
		}
		rng := rand.New(rand.NewSource(7))
		it := tb.ScanRange(math.MinInt64, math.MaxInt64)
		buf := &RowBuf{}
		last := int64(math.MinInt64)
		n := 0
		for it.NextBatch(buf, 128) {
			for _, k := range buf.Keys {
				if k < last {
					t.Fatalf("%v: scan regressed: %d < %d", mode, k, last)
				}
				last = k
				if !valid[k] {
					t.Fatalf("%v: scan yielded key %d never inserted", mode, k)
				}
			}
			n += buf.Len()
			// Mutate between batches: inserts ahead and behind, deletes,
			// and an update, all bumping chunk versions mid-scan.
			for i := 0; i < 5; i++ {
				k := rng.Int63n(30_000)
				tb.Insert(k)
				valid[k] = true
			}
			_ = tb.Delete(rng.Int63n(30_000))
			nk := rng.Int63n(30_000)
			if tb.UpdateKey(rng.Int63n(30_000), nk) == nil {
				valid[nk] = true
			}
		}
		it.Close()
		if n == 0 {
			t.Fatalf("%v: scan yielded nothing", mode)
		}
	}
}

// TestScanExtremeKeys pins the int64 boundary behavior: keys at MinInt64 and
// MaxInt64 are yielded exactly once and the iterator terminates.
func TestScanExtremeKeys(t *testing.T) {
	for _, mode := range Modes() {
		keys := []int64{math.MinInt64, math.MinInt64, -5, 0, 7, math.MaxInt64, math.MaxInt64}
		tb, err := New(keys, testConfig(mode), nil)
		if err != nil {
			t.Fatalf("New(%v): %v", mode, err)
		}
		it := tb.ScanRange(math.MinInt64, math.MaxInt64)
		got, _ := drainScan(t, it, 2)
		it.Close()
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("%v: %d keys, want %d (%v vs %v)", mode, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: key[%d]=%d want %d", mode, i, got[i], want[i])
			}
		}
	}
}

// TestScanBufferReuse checks NextBatch reuses the caller's buffer: after a
// warmup batch, refills at the same width must not grow the arena.
func TestScanBufferReuse(t *testing.T) {
	tb := buildTable(t, Sorted, 4000)
	it := tb.ScanRange(math.MinInt64, math.MaxInt64)
	defer it.Close()
	buf := &RowBuf{}
	if !it.NextBatch(buf, 256) {
		t.Fatal("empty first batch")
	}
	capKeys, capData := cap(buf.Keys), cap(buf.data)
	for it.NextBatch(buf, 256) {
		if cap(buf.Keys) != capKeys || cap(buf.data) != capData {
			t.Fatalf("buffer grew across refills: keys %d->%d data %d->%d",
				capKeys, cap(buf.Keys), capData, cap(buf.data))
		}
	}
}

// TestSnapshotMatchesLegacyOrder regression-pins the Snapshot rebasing: the
// per-chunk stable sort must reproduce the old global stable sort, byte for
// byte, including duplicate-key payload order.
func TestSnapshotMatchesLegacyOrder(t *testing.T) {
	for _, mode := range Modes() {
		tb := buildTable(t, mode, 2500)
		for i := 0; i < 40; i++ {
			tb.InsertRow(int64(777), []int32{int32(i), int32(i * 2), 0, 0})
		}
		keys, rows := tb.Snapshot()
		if len(keys) != tb.Len() {
			t.Fatalf("%v: snapshot %d rows, want %d", mode, len(keys), tb.Len())
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatalf("%v: snapshot keys not sorted", mode)
		}
		// Round-trip: a table rebuilt from the snapshot snapshots equal.
		tb2, err := NewFromRows(keys, rows, testConfig(mode))
		if err != nil {
			t.Fatalf("%v: NewFromRows: %v", mode, err)
		}
		k2, r2 := tb2.Snapshot()
		if len(k2) != len(keys) {
			t.Fatalf("%v: round-trip %d rows, want %d", mode, len(k2), len(keys))
		}
		for i := range keys {
			if keys[i] != k2[i] || !rowsEqual(rows[i], r2[i]) {
				t.Fatalf("%v: round-trip mismatch at %d", mode, i)
			}
		}
	}
}
