// Chunk-bounded scan iteration: the lazy read path under every range
// consumer in the engine. A ScanIter walks the chunks overlapping [lo, hi]
// one at a time, materializing at most one chunk's qualifying positions plus
// one caller batch — never the whole result — so memory and first-row
// latency are bounded by the chunk and batch sizes, not the result size.
package table

import (
	"sort"
	"sync"
)

// DefaultScanBatch is the batch row count used when a caller passes max <= 0
// to NextBatch, and the batch size of the package's own scan-based readers
// (Snapshot, Keys, KeysInRange, MultiRangeSum).
const DefaultScanBatch = 1024

// RowBuf is a reusable scan batch: parallel Keys/Rows slices backed by a
// flat arena, refilled in place by ScanIter.NextBatch so steady-state
// batches allocate nothing. Rows is nil for keys-only scans; Rows[i] aliases
// the arena and is valid only until the next NextBatch call on the same
// buffer — callers retaining rows must copy them.
type RowBuf struct {
	Keys []int64
	Rows [][]int32
	data []int32
}

// Len returns the number of rows in the batch.
func (b *RowBuf) Len() int { return len(b.Keys) }

// Reset empties the batch, keeping capacity.
func (b *RowBuf) Reset() {
	b.Keys = b.Keys[:0]
	b.Rows = b.Rows[:0]
	b.data = b.data[:0]
}

// ScanIter streams the live rows of one table with key in [lo, hi] in
// ascending key order, one chunk at a time. It holds no locks between
// NextBatch calls: each batch takes the current chunk's read lock, validates
// the chunk version captured with its position set, and recaptures from the
// resume key if a writer intervened. Batches always end at a key boundary
// (a duplicate-key run is never split across batches), so the iterator can
// always resume at lastKey+1 regardless of concurrent mutation.
//
// Consistency matches Snapshot's contract: per-chunk atomicity only. A row
// inserted behind the scan position is missed; one inserted ahead is
// observed; neither is ever torn.
type ScanIter struct {
	t        *Table
	hi       int64
	resume   int64 // next key the scan may observe
	ci, cb   int   // current and last chunk ordinal
	withRows bool

	// capture of chunk ci's qualifying positions, key-sorted.
	loaded bool
	ver    uint64
	i      int // consumption index into keys/pos
	keys   []int64
	pos    []int
	posBuf []int
}

var scanIterPool = sync.Pool{New: func() any { return new(ScanIter) }}

var rowBufPool = sync.Pool{New: func() any { return new(RowBuf) }}

func getRowBuf() *RowBuf  { return rowBufPool.Get().(*RowBuf) }
func putRowBuf(b *RowBuf) { rowBufPool.Put(b) }

// ScanRange returns an iterator over the live rows with key in [lo, hi],
// ascending, with payload rows. Close the iterator when done to recycle it.
func (t *Table) ScanRange(lo, hi int64) *ScanIter { return t.newScan(lo, hi, true) }

// ScanRangeKeys is ScanRange without payload copying: NextBatch fills only
// buf.Keys, for consumers that plan by key alone.
func (t *Table) ScanRangeKeys(lo, hi int64) *ScanIter { return t.newScan(lo, hi, false) }

func (t *Table) newScan(lo, hi int64, withRows bool) *ScanIter {
	it := scanIterPool.Get().(*ScanIter)
	a, b := t.chunkRange(lo, hi)
	it.t = t
	it.hi = hi
	it.resume = lo
	it.ci, it.cb = a, b
	it.withRows = withRows
	it.loaded = false
	it.i = 0
	if hi < lo {
		it.cb = it.ci - 1
	}
	return it
}

// Close releases the iterator back to the pool. The iterator must not be
// used afterwards.
func (it *ScanIter) Close() {
	if it == nil || it.t == nil {
		return
	}
	it.t = nil
	it.loaded = false
	scanIterPool.Put(it)
}

// NextBatch fills buf with the next batch of rows in ascending key order and
// reports whether it produced any. Batches hold at most max rows (max <= 0
// selects DefaultScanBatch) but are extended past max to finish a
// duplicate-key run, so consecutive batches never share a key. A false
// return means the scan is exhausted; buf is empty.
func (it *ScanIter) NextBatch(buf *RowBuf, max int) bool {
	buf.Reset()
	if it.t == nil {
		return false
	}
	if max <= 0 {
		max = DefaultScanBatch
	}
	for it.ci <= it.cb && len(buf.Keys) < max {
		ck := it.t.chunks[it.ci]
		ck.mu.RLock()
		if !it.loaded || ck.ver != it.ver {
			it.capture(ck)
		}
		n := len(it.keys)
		for it.i < n {
			k := it.keys[it.i]
			if len(buf.Keys) >= max && k != buf.Keys[len(buf.Keys)-1] {
				break
			}
			buf.Keys = append(buf.Keys, k)
			if it.withRows {
				p := it.pos[it.i]
				for c := range ck.mover.cols {
					buf.data = append(buf.data, ck.mover.cols[c][p])
				}
			}
			it.i++
		}
		done := it.i >= n
		ck.mu.RUnlock()
		if !done {
			break // batch full at a key boundary inside this chunk
		}
		it.ci++
		it.loaded = false
	}
	if it.withRows {
		// Rebuild Rows as arena windows only after the arena stopped
		// growing: appends may have reallocated data mid-batch.
		w := it.t.cfg.PayloadCols
		for i := range buf.Keys {
			buf.Rows = append(buf.Rows, buf.data[i*w:(i+1)*w:(i+1)*w])
		}
	}
	if len(buf.Keys) == 0 {
		return false
	}
	if last := buf.Keys[len(buf.Keys)-1]; last >= it.hi {
		// last == hi: nothing left to observe (also avoids lastKey+1
		// overflow when hi is MaxInt64).
		it.ci = it.cb + 1
		it.loaded = false
	} else {
		it.resume = last + 1
	}
	return true
}

// capture snapshots chunk ck's qualifying positions from the resume key,
// sorted by key (stable, preserving RangePositions order among duplicates).
// Caller holds ck.mu; the capture stays valid as long as ck.ver is
// unchanged, which NextBatch revalidates under the lock on every call.
func (it *ScanIter) capture(ck *chunk) {
	it.posBuf = ck.store.RangePositions(it.resume, it.hi, it.posBuf[:0])
	it.keys = it.keys[:0]
	it.pos = it.pos[:0]
	for _, p := range it.posBuf {
		it.keys = append(it.keys, ck.keyAt(p))
		it.pos = append(it.pos, p)
	}
	sort.Stable(&keyPosSort{keys: it.keys, pos: it.pos})
	it.ver = ck.ver
	it.loaded = true
	it.i = 0
}

type keyPosSort struct {
	keys []int64
	pos  []int
}

func (s *keyPosSort) Len() int           { return len(s.keys) }
func (s *keyPosSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyPosSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
}
