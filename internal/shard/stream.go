// Streaming read path: per-shard chunk-bounded scans feeding a k-way
// loser-tree merge, consumed either through a Cursor (paginated, LIMIT,
// resumable) or folded into an aggregate. See the package comment's
// lock-order section for the scan locking contract; the short version is
// that a streaming scan holds its gate stripe and shard lock only while
// filling one batch, never across consumer yields.
package shard

import (
	"fmt"

	"casper/internal/obs"
	"casper/internal/table"
	"casper/internal/workload"
)

// sourceBuf is one filled batch of a shardSource: the physical rows pulled
// from the table iterator (rb) plus, when staged moves compensate into the
// batch window, the merged key/row sequence in mk/mr. keys/rows are views
// over whichever of the two backs this batch; done marks the final batch.
type sourceBuf struct {
	rb   table.RowBuf
	mk   []int64
	mr   [][]int32
	keys []int64
	rows [][]int32
	done bool
}

// shardSource streams one shard's live rows with keys in [cursor, hi],
// ascending, batch by batch. Two modes:
//
//   - pinned (pinned != nil): the caller holds the gate stripes covering
//     this shard (a View, or an aggregate's lockSpan) and the snapshot is
//     frozen — fill touches no stripe and compensates from the pinned
//     snapshot's move index.
//   - cursor (pinned == nil): fill acquires this shard's gate stripe shared
//     for the duration of one batch only, releasing it before the consumer
//     sees the rows, and adopts the routing snapshot current at each fill —
//     an install landing mid-scan is observed at the next batch boundary.
//
// Batches end at key boundaries (the table iterator never splits a
// duplicate run), so the resume cursor is always lastKey+1 and a batch's
// staged-move compensation window (cursor, upTo] tiles the scanned range
// exactly once per snapshot.
type shardSource struct {
	e          *Engine
	si         int
	hi         int64
	cursor     int64
	pinned     *routeSnap
	withRows   bool
	compensate bool
	batch      int

	it      *table.ScanIter
	tbl     *table.Table
	srcDone bool

	// Read-ahead state (cursor consumers only): two batch buffers cycled
	// through a capacity-1 channel. Exactly one fill is outstanding at a
	// time, so fills are serialized and the channel hand-off provides the
	// happens-before edge for the buffer contents.
	bufs    [2]sourceBuf
	pre     chan *sourceBuf
	pending bool
	cur     *sourceBuf
	curI    int

	// scratch reused across fills
	moveK []int64
	moveR [][]int32
}

// fill produces the next batch into b. At most one fill per source runs at
// a time (prefetch serializes through the hand-off channel; folds call it
// directly from one goroutine).
func (s *shardSource) fill(b *sourceBuf) {
	b.keys, b.rows, b.done = nil, nil, false
	if s.srcDone {
		b.done = true
		return
	}
	v := s.pinned
	if v == nil {
		st := &s.e.stripes[s.si]
		st.mu.RLock()
		defer st.mu.RUnlock()
		v = s.e.route.Load()
	}
	sh := s.e.shards[s.si]
	tableDone := true
	sh.mu.RLock()
	if t := sh.tbl; t != nil {
		if t != s.tbl {
			// First fill, or a shadow retrain swapped the table between
			// batches: the journal-replayed replacement holds the same
			// logical rows, so restarting an iterator at the resume cursor
			// continues the scan exactly.
			if s.it != nil {
				s.it.Close()
			}
			if s.withRows {
				s.it = t.ScanRange(s.cursor, s.hi)
			} else {
				s.it = t.ScanRangeKeys(s.cursor, s.hi)
			}
			s.tbl = t
		}
		tableDone = !s.it.NextBatch(&b.rb, s.batch)
	}
	sh.mu.RUnlock()
	upTo := s.hi
	if !tableDone {
		upTo = b.rb.Keys[len(b.rb.Keys)-1]
	}
	s.moveK, s.moveR = s.moveK[:0], s.moveR[:0]
	if s.compensate {
		// Staged moves whose rows are still visible at their old key on
		// this shard, within this batch's window. Entries are claimed by
		// the snapshot's own routing so that, under a pinned snapshot,
		// every staged row lands in exactly one source's window.
		v.moves.forRange(s.cursor, upTo, func(m *pendingMove) {
			if v.part.Shard(m.old) == s.si {
				s.moveK = append(s.moveK, m.old)
				if s.withRows {
					s.moveR = append(s.moveR, m.row)
				}
			}
		})
	}
	// Metrics: a batch yielded toward a cursor consumer (prefetch armed ⇔
	// s.pre non-nil; folds fill inline and are counted by their own op) and
	// any staged-move rows compensated into the batch window. Recording here
	// is atomics-only and, in cursor mode, runs under the shared gate stripe
	// — both allowed by the lock-order contract.
	if o := s.e.obs; o.Enabled() {
		if s.pre != nil && len(b.rb.Keys)+len(s.moveK) > 0 {
			o.CursorBatches.Inc(s.si)
		}
		if len(s.moveK) > 0 {
			o.CompHits.Add(s.si, uint64(len(s.moveK)))
		}
	}
	if len(s.moveK) == 0 {
		b.keys, b.rows = b.rb.Keys, b.rb.Rows
	} else {
		// Merge physical rows and staged rows (both ascending; physical
		// first on ties) into the dedicated merged buffers — never in
		// place over rb, which is also an input.
		b.mk, b.mr = b.mk[:0], b.mr[:0]
		pk := b.rb.Keys
		i, j := 0, 0
		for i < len(pk) || j < len(s.moveK) {
			if j >= len(s.moveK) || (i < len(pk) && pk[i] <= s.moveK[j]) {
				b.mk = append(b.mk, pk[i])
				if s.withRows {
					b.mr = append(b.mr, b.rb.Rows[i])
				}
				i++
			} else {
				b.mk = append(b.mk, s.moveK[j])
				if s.withRows {
					b.mr = append(b.mr, s.moveR[j])
				}
				j++
			}
		}
		b.keys, b.rows = b.mk, b.mr
	}
	if tableDone || upTo >= s.hi {
		// Physical rows exhausted, or the batch ended exactly at hi (a
		// duplicate run is never split, so nothing in range remains).
		s.srcDone = true
		b.done = true
		return
	}
	s.cursor = upTo + 1
}

// start arms the read-ahead pipeline: the first fill is scheduled on the
// engine's fan-out pool immediately, so a k-source cursor prefetches all
// shards in parallel before the first Next.
func (s *shardSource) start() {
	s.pre = make(chan *sourceBuf, 1)
	s.scheduleFill(&s.bufs[0])
}

func (s *shardSource) scheduleFill(b *sourceBuf) {
	s.pending = true
	s.e.pool.submit(func() {
		s.fill(b)
		s.pre <- b
	})
}

// next yields the source's next (key, row) pair. The returned row aliases
// the current batch buffer and stays valid until the call after the one
// that crosses into the next batch — the freed buffer is only rescheduled
// for refill at that crossing.
func (s *shardSource) next() (int64, []int32, bool) {
	for {
		if s.cur != nil {
			if s.curI < len(s.cur.keys) {
				k := s.cur.keys[s.curI]
				var r []int32
				if s.withRows {
					r = s.cur.rows[s.curI]
				}
				s.curI++
				return k, r, true
			}
			if s.cur.done {
				return 0, nil, false
			}
		}
		prev := s.cur
		s.cur = <-s.pre
		s.pending = false
		s.curI = 0
		if !s.cur.done {
			if prev == nil {
				prev = &s.bufs[1]
			}
			s.scheduleFill(prev)
		}
	}
}

// close releases the source: it waits out any in-flight prefetch (which may
// briefly hold the gate stripe) and recycles the table iterator.
func (s *shardSource) close() {
	if s.pending {
		<-s.pre
		s.pending = false
	}
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	s.tbl = nil
}

// ---------------------------------------------------------------------------
// k-way loser-tree merge
// ---------------------------------------------------------------------------

// mergeSource is the input stream of the k-way merge: ascending (key, row)
// pairs, ok=false forever once exhausted.
type mergeSource interface {
	next() (key int64, row []int32, ok bool)
}

// mergeIter merges k ascending sources into one ascending stream with a
// loser tree: each advance costs one source pull plus ⌈log2 k⌉ comparisons.
// Ties yield lower-indexed sources first, making the merged order stable
// and deterministic. The previously returned winner is advanced lazily, on
// the next call, so a yielded row stays valid (no buffer recycling under
// it) until the consumer asks for the next one.
type mergeIter struct {
	srcs   []mergeSource
	keys   []int64
	rows   [][]int32
	ok     []bool
	tree   []int // tree[0] overall winner; tree[1..k-1] internal losers
	lastW  int
	inited bool
}

func newMergeIter(srcs []mergeSource) *mergeIter {
	k := len(srcs)
	return &mergeIter{
		srcs:  srcs,
		keys:  make([]int64, k),
		rows:  make([][]int32, k),
		ok:    make([]bool, k),
		tree:  make([]int, k),
		lastW: -1,
	}
}

// wins reports whether source a's head strictly precedes source b's:
// exhausted sources sort last, equal keys break toward the lower index.
func (m *mergeIter) wins(a, b int) bool {
	if !m.ok[a] {
		return false
	}
	if !m.ok[b] {
		return true
	}
	if m.keys[a] != m.keys[b] {
		return m.keys[a] < m.keys[b]
	}
	return a < b
}

// build initializes internal node t's subtree, storing losers on the way
// up and returning the subtree winner. Leaves are sources k..2k-1 in the
// standard complete-tree layout (parent of leaf w+k is (w+k)/2).
func (m *mergeIter) build(t int) int {
	if t >= len(m.srcs) {
		return t - len(m.srcs)
	}
	a := m.build(2 * t)
	b := m.build(2*t + 1)
	if m.wins(a, b) {
		m.tree[t] = b
		return a
	}
	m.tree[t] = a
	return b
}

// sift replays source w's leaf-to-root path after its head changed.
func (m *mergeIter) sift(w int) {
	k := len(m.srcs)
	s := w
	for t := (w + k) / 2; t > 0; t /= 2 {
		if m.wins(m.tree[t], s) {
			m.tree[t], s = s, m.tree[t]
		}
	}
	m.tree[0] = s
}

func (m *mergeIter) next() (int64, []int32, bool) {
	k := len(m.srcs)
	if k == 0 {
		return 0, nil, false
	}
	if !m.inited {
		m.inited = true
		for i, s := range m.srcs {
			m.keys[i], m.rows[i], m.ok[i] = s.next()
		}
		if k > 1 {
			m.tree[0] = m.build(1)
		}
	} else if m.lastW >= 0 {
		w := m.lastW
		m.keys[w], m.rows[w], m.ok[w] = m.srcs[w].next()
		if k > 1 {
			m.sift(w)
		}
	}
	w := 0
	if k > 1 {
		w = m.tree[0]
	}
	if !m.ok[w] {
		m.lastW = -1
		return 0, nil, false
	}
	m.lastW = w
	return m.keys[w], m.rows[w], true
}

// ---------------------------------------------------------------------------
// Streaming aggregates
// ---------------------------------------------------------------------------

// streamFold drains a pinned streaming scan of [lo, hi] over every spanned
// shard in parallel (one drain per fan-out worker) and sums the fold
// results. fn receives each batch's keys (and rows when withRows) and
// returns its contribution plus a stop flag; stop ends that shard's drain
// early — the early-exit path of LIMIT-shaped folds — without affecting the
// other shards. fn runs concurrently across shards and must be pure.
//
// The caller holds gate stripes covering the span of v (lockSpan or a
// View), so the snapshot is frozen for the whole fold; staged-move
// compensation stays with the caller, exactly as with the materialized
// fan-out this replaces.
func (e *Engine) streamFold(v *routeSnap, lo, hi int64, withRows bool, fn func(keys []int64, rows [][]int32) (int64, bool)) int64 {
	a, b := v.part.Span(lo, hi)
	parts := make([]int64, b-a+1)
	e.pool.run(len(parts), func(i int) {
		src := &shardSource{
			e: e, si: a + i, hi: hi, cursor: lo,
			pinned: v, withRows: withRows, batch: table.DefaultScanBatch,
		}
		defer src.close()
		var buf sourceBuf
		var acc int64
		for {
			src.fill(&buf)
			if len(buf.keys) > 0 {
				d, stop := fn(buf.keys, buf.rows)
				acc += d
				if stop {
					break
				}
			}
			if buf.done {
				break
			}
		}
		parts[i] = acc
	})
	var sum int64
	for _, p := range parts {
		sum += p
	}
	return sum
}

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

// ScanOptions configures a streaming scan.
type ScanOptions struct {
	// Limit caps the rows the cursor yields (0 = unlimited). The cap spans
	// SeekTo repositioning: a cursor never yields more than Limit rows
	// total.
	Limit int
	// Batch is the per-shard batch row count (0 = table.DefaultScanBatch,
	// clamped down to Limit when one is set). Smaller batches lower
	// first-row latency and memory; larger ones amortize locking.
	Batch int
	// PageToken resumes a scan after the row a previous cursor's PageToken
	// recorded. An invalid token surfaces through Cursor.Err.
	PageToken string
}

// ErrBadPageToken reports a malformed or truncated page token.
var ErrBadPageToken = fmt.Errorf("shard: malformed page token")

// Cursor streams the live rows with keys in [lo, hi] in ascending key
// order across all spanned shards. Next advances to the next row; Key and
// Payload read it; the payload slice is valid only until the next Next or
// Close. Close releases the cursor's buffers (always call it; a cursor
// holds no locks between Next calls, so it may be paged at leisure).
//
// Consistency: a cursor opened with Engine.Scan holds its per-shard gate
// stripe only while filling one batch, so concurrent writes interleave at
// batch boundaries — rows inserted behind the scan position are missed,
// rows ahead are observed, staged cross-shard moves are compensated per
// batch from the then-current snapshot, and a row whose key is moved (or
// migrated by a rebalance install) across the scan frontier mid-flight may
// be missed or observed twice. A cursor opened with View.Scan is pinned to
// the view's frozen snapshot: no move or install can interleave, and two
// drains inside one View agree exactly (single-shard inserts and deletes
// still land between batches — a View is move-stable, not write-stable).
type Cursor struct {
	e      *Engine
	pinned *routeSnap
	lo, hi int64
	opts   ScanOptions

	srcs  []*shardSource
	merge *mergeIter

	key     int64
	row     []int32
	yielded int
	lastKey int64
	dupN    int

	pk          int64
	prow        []int32
	havePending bool

	done   bool
	closed bool
	err    error

	// tr times the scan from open to Close on the OpScan histogram when the
	// registry sampled it; the zero Track is "not sampled".
	tr obs.Track
}

// Scan opens a streaming cursor over [lo, hi]. The scan is recorded in the
// drift monitor as a range access over the requested span (a Q8 op), like
// any other range read. Do not use an Engine cursor inside a View callback
// — it acquires gate stripes the callback already holds; use View.Scan.
func (e *Engine) Scan(lo, hi int64, opts ScanOptions) *Cursor {
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q8Scan, Key: lo, Key2: hi, Limit: opts.Limit})
	}
	return e.newCursor(lo, hi, opts, nil)
}

// Scan opens a cursor pinned to the view's snapshot. It is only valid
// inside the View callback: Next after the callback returns races the
// moves the view was excluding.
func (v *View) Scan(lo, hi int64, opts ScanOptions) *Cursor {
	return v.e.newCursor(lo, hi, opts, v.v)
}

func (e *Engine) newCursor(lo, hi int64, opts ScanOptions, pinned *routeSnap) *Cursor {
	c := &Cursor{e: e, pinned: pinned, lo: lo, hi: hi, opts: opts, lastKey: lo}
	// OpScan counts at open; latency is observed at Close so it covers the
	// whole consumption window, not just cursor construction.
	c.tr = e.obs.OpBegin(obs.OpScan, int(lo))
	skip := 0
	if opts.PageToken != "" {
		k, n, err := parsePageToken(opts.PageToken)
		if err != nil {
			c.err = err
			c.done = true
			return c
		}
		if k >= lo {
			lo = k
			skip = n
		}
	}
	if hi < lo || len(e.shards) == 0 {
		c.done = true
		return c
	}
	c.open(lo, skip)
	return c
}

// open builds the per-shard sources and merge at resume key lo, then
// discards skip rows with key exactly lo (the duplicates a page token
// recorded as already yielded).
func (c *Cursor) open(lo int64, skip int) {
	v := c.pinned
	if v == nil {
		v = c.e.loadRoute()
	}
	a, b := v.part.Span(lo, c.hi)
	batch := c.opts.Batch
	if batch <= 0 {
		batch = table.DefaultScanBatch
	}
	if c.opts.Limit > 0 && c.opts.Limit < batch {
		batch = c.opts.Limit
	}
	for si := a; si <= b; si++ {
		s := &shardSource{
			e: c.e, si: si, hi: c.hi, cursor: lo,
			pinned: c.pinned, withRows: true, compensate: true, batch: batch,
		}
		s.start()
		c.srcs = append(c.srcs, s)
	}
	ms := make([]mergeSource, len(c.srcs))
	for i, s := range c.srcs {
		ms[i] = s
	}
	c.merge = newMergeIter(ms)
	c.lastKey, c.dupN = lo, 0
	for c.dupN < skip {
		k, r, ok := c.merge.next()
		if !ok {
			c.done = true
			return
		}
		if k != lo {
			// Fewer duplicates survive than the token recorded (concurrent
			// deletes); the pulled row is the next result.
			c.pk, c.prow, c.havePending = k, r, true
			return
		}
		c.dupN++
	}
}

// Next advances to the next row, reporting whether one is available.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	if c.opts.Limit > 0 && c.yielded >= c.opts.Limit {
		c.done = true
		return false
	}
	var k int64
	var r []int32
	var ok bool
	if c.havePending {
		k, r, ok = c.pk, c.prow, true
		c.havePending = false
	} else {
		k, r, ok = c.merge.next()
	}
	if !ok {
		c.done = true
		return false
	}
	c.key, c.row = k, r
	if k == c.lastKey {
		c.dupN++
	} else {
		c.lastKey, c.dupN = k, 1
	}
	c.yielded++
	return true
}

// Key returns the current row's key; valid after a true Next.
func (c *Cursor) Key() int64 { return c.key }

// Payload returns the current row's payload columns. The slice aliases the
// cursor's batch buffers: it is valid only until the next Next, SeekTo, or
// Close — copy it to retain it.
func (c *Cursor) Payload() []int32 { return c.row }

// Err reports a cursor construction failure (e.g. a malformed page token).
// A drained cursor with a nil Err ended normally.
func (c *Cursor) Err() error { return c.err }

// SeekTo repositions the cursor so the next row is the first with key >=
// key (clamped to the cursor's [lo, hi]), discarding the current
// read-ahead. Rows already yielded keep counting against Limit.
func (c *Cursor) SeekTo(key int64) {
	if c.closed || c.err != nil {
		return
	}
	c.closeSources()
	c.havePending = false
	c.done = false
	if key < c.lo {
		key = c.lo
	}
	if key > c.hi {
		c.done = true
		c.lastKey, c.dupN = key, 0
		return
	}
	c.open(key, 0)
}

// PageToken returns a token that resumes the scan just past the last row
// this cursor yielded (from the cursor's start, when none was yielded
// yet). Pass it as ScanOptions.PageToken to a later Scan — resuming
// tolerates writes in between: the next page starts at the first live row
// after the recorded position, even mid-way through a duplicate-key run.
func (c *Cursor) PageToken() string {
	return fmt.Sprintf("s1:%d:%d", c.lastKey, c.dupN)
}

func parsePageToken(tok string) (key int64, skip int, err error) {
	var k int64
	var n int
	if _, err := fmt.Sscanf(tok, "s1:%d:%d", &k, &n); err != nil || n < 0 {
		return 0, 0, fmt.Errorf("%w: %q", ErrBadPageToken, tok)
	}
	return k, n, nil
}

// Close releases the cursor's sources and buffers. Idempotent.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.done = true
	c.closeSources()
	c.e.obs.OpEnd(obs.OpScan, int(c.lo), c.tr)
}

func (c *Cursor) closeSources() {
	for _, s := range c.srcs {
		s.close()
	}
	c.srcs = c.srcs[:0]
	c.merge = nil
}
