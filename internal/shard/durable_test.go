package shard

// Durability suite: crash recovery must restore exactly the state a shadow
// in-memory twin reaches. The kill/replay property test chops the WAL at
// op boundaries and at random offsets inside the final record (torn tail)
// and replays from a copy of the directory, so one run exercises many
// simulated crashes.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"casper/internal/table"
	"casper/internal/wal"
	"casper/internal/workload"
)

func durableConfig(dir string) Config {
	return Config{
		Shards: 3,
		Table: table.Config{
			Mode:        table.Casper,
			PayloadCols: 3,
			ChunkValues: 128,
			BlockValues: 16,
			GhostFrac:   0.01,
			Partitions:  4,
		},
		Dir:  dir,
		Sync: wal.SyncNone, // same-process "crashes" read the page cache
	}
}

func durableKeys(n int, rng *rand.Rand) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1000)
	}
	return keys
}

// rowkv is one live row in canonical form.
type rowkv struct {
	key int64
	row []int32
}

// engineState returns the engine's full logical state in canonical order
// (key ascending, then row lexicographic), layout-independent.
func engineState(e *Engine) []rowkv {
	var out []rowkv
	for _, s := range e.shards {
		if s.tbl == nil {
			continue
		}
		keys, rows := s.tbl.Snapshot()
		for i := range keys {
			out = append(out, rowkv{keys[i], rows[i]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].key != out[b].key {
			return out[a].key < out[b].key
		}
		ra, rb := out[a].row, out[b].row
		for i := range ra {
			if i >= len(rb) || ra[i] != rb[i] {
				return i < len(rb) && ra[i] < rb[i]
			}
		}
		return false
	})
	return out
}

func statesEqual(a, b []rowkv) bool { return reflect.DeepEqual(a, b) }

// copyDir clones a durable engine directory so recovery can run against a
// frozen "crash image" while the live engine keeps going.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

// segPath returns the path of shard i's current (newest) WAL segment.
func segPath(t *testing.T, dir string, i int) string {
	t.Helper()
	sdir := shardDir(dir, i)
	entries, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatalf("no WAL segment in %s", sdir)
	}
	return filepath.Join(sdir, newest)
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// mutateOp is one scripted write, applied identically to the durable engine
// and its shadow twin.
type mutateOp struct {
	kind     int // 0 insert, 1 delete, 2 update
	key, new int64
}

func (op mutateOp) apply(e *Engine) {
	switch op.kind {
	case 0:
		e.Insert(op.key)
	case 1:
		_ = e.Delete(op.key)
	case 2:
		_ = e.UpdateKey(op.key, op.new)
	}
}

// genTrainSample builds a skewed read-mostly sample so Train produces a
// non-trivial partitioning on every shard.
func genTrainSample(keys []int64, rng *rand.Rand) []workload.Op {
	ops := make([]workload.Op, 0, 600)
	for i := 0; i < 500; i++ {
		k := keys[rng.Intn(len(keys)/4+1)] // skew toward the head
		ops = append(ops, workload.Op{Kind: workload.Q1PointQuery, Key: k})
	}
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(900)
		ops = append(ops, workload.Op{Kind: workload.Q2RangeCount, Key: lo, Key2: lo + 50})
	}
	return ops
}

// genOps scripts nOps writes biased toward live keys so deletes and updates
// mostly hit, with cross-shard updates well represented under hashing.
func genOps(rng *rand.Rand, keys []int64, nOps int) []mutateOp {
	live := append([]int64(nil), keys...)
	ops := make([]mutateOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		var op mutateOp
		switch r := rng.Intn(10); {
		case r < 4: // insert
			op = mutateOp{kind: 0, key: rng.Int63n(1000)}
			live = append(live, op.key)
		case r < 6: // delete
			op = mutateOp{kind: 1, key: live[rng.Intn(len(live))]}
		default: // update (hash partitioning makes most of these cross-shard)
			op = mutateOp{kind: 2, key: live[rng.Intn(len(live))], new: rng.Int63n(1000)}
			live = append(live, op.new)
		}
		ops = append(ops, op)
	}
	return ops
}

func TestDurableBootstrapAndReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	keys := durableKeys(400, rng)
	e, err := New(keys, durableConfig(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, op := range genOps(rng, keys, 120) {
		op.apply(e)
	}
	want := engineState(e)
	wantEpoch := e.Epoch()
	e.Close()

	re, err := New(nil, durableConfig(dir)) // keys ignored: directory has state
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := engineState(re); !statesEqual(got, want) {
		t.Fatalf("reopened state diverged: %d rows vs %d", len(got), len(want))
	}
	if re.Epoch() < wantEpoch {
		t.Fatalf("epoch regressed: %d < %d", re.Epoch(), wantEpoch)
	}
	// The reopened engine keeps working and persisting.
	re.Insert(12345)
	if re.PointQuery(12345) == 0 {
		t.Fatal("insert after recovery not visible")
	}
}

// TestKillReplayRandomOffsets is the crash property test: it applies a
// scripted workload, snapshotting a shadow in-memory twin and the per-shard
// WAL sizes after every op, then simulates crashes by truncating a copy of
// the directory — at op boundaries (clean kill) and at random byte offsets
// inside the last record (torn tail) — and asserts the recovered state is
// byte-identical to the shadow twin at the corresponding op (for a torn
// final record: at that op or the one before, since a torn cross-shard move
// resolves to whichever side of the crash its surviving records prove).
func TestKillReplayRandomOffsets(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	keys := durableKeys(300, rng)
	cfg := durableConfig(dir)
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	shadow, err := New(keys, Config{Shards: cfg.Shards, Table: cfg.Table})
	if err != nil {
		t.Fatal(err)
	}

	nShards := e.Shards()
	ops := genOps(rng, keys, 160)
	states := make([][]rowkv, 0, len(ops)+1) // shadow state after op i
	sizes := make([][]int64, 0, len(ops)+1)  // WAL sizes after op i
	states = append(states, engineState(shadow))
	snapSizes := func() []int64 {
		out := make([]int64, nShards)
		for i := 0; i < nShards; i++ {
			out[i] = fileSize(t, segPath(t, dir, i))
		}
		return out
	}
	sizes = append(sizes, snapSizes())
	for _, op := range ops {
		op.apply(e)
		op.apply(shadow)
		states = append(states, engineState(shadow))
		sizes = append(sizes, snapSizes())
		// The durable engine and its twin must agree while both are alive.
	}
	if !statesEqual(engineState(e), states[len(states)-1]) {
		t.Fatal("durable engine diverged from in-memory twin before any crash")
	}

	recoverAt := func(cut []int64) *Engine {
		t.Helper()
		crash := t.TempDir()
		copyDir(t, dir, crash)
		for i := 0; i < nShards; i++ {
			if err := os.Truncate(segPath(t, crash, i), cut[i]); err != nil {
				t.Fatal(err)
			}
		}
		rcfg := cfg
		rcfg.Dir = crash
		re, err := New(nil, rcfg)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		re.Close()
		return re
	}

	// Clean kills at op boundaries: recovered state must equal the shadow
	// twin exactly at that op.
	for i := 0; i < len(states); i += 9 {
		re := recoverAt(sizes[i])
		if got := engineState(re); !statesEqual(got, states[i]) {
			t.Fatalf("clean kill after op %d: recovered %d rows, twin has %d",
				i, len(got), len(states[i]))
		}
	}

	// Torn kills: truncate one shard's log somewhere strictly inside the
	// bytes op i appended, leaving the other shards at the op-i boundary.
	torn := 0
	for i := 1; i < len(states) && torn < 25; i++ {
		grew := -1
		for s := 0; s < nShards; s++ {
			if sizes[i][s] > sizes[i-1][s] {
				grew = s
				break
			}
		}
		if grew < 0 {
			continue // op was a no-op (e.g. failed delete)
		}
		torn++
		cut := append([]int64(nil), sizes[i]...)
		span := cut[grew] - sizes[i-1][grew]
		cut[grew] = sizes[i-1][grew] + 1 + rng.Int63n(span) // strictly inside, may equal boundary
		if cut[grew] >= sizes[i][grew] {
			cut[grew] = sizes[i][grew] - 1 // force a genuinely torn final record
		}
		if cut[grew] <= sizes[i-1][grew] {
			continue // record of 1 byte cannot be torn strictly inside
		}
		re := recoverAt(cut)
		got := engineState(re)
		if !statesEqual(got, states[i-1]) && !statesEqual(got, states[i]) {
			t.Fatalf("torn kill inside op %d (shard %d cut %d of [%d,%d]): recovered state matches neither twin state",
				i, grew, cut[grew], sizes[i-1][grew], sizes[i][grew])
		}
	}
	if torn == 0 {
		t.Fatal("workload produced no torn-kill candidates")
	}
}

// TestKillReplayDuringRebalance extends the kill/replay property suite with
// crashes at random byte offsets inside a rebalance's durability footprint —
// including between the WAL boundary record and the bulk-move records, and
// between the WAL commit and the manifest rewrite. Every crash image must
// recover rows byte-identical to the in-memory shadow twin, land on exactly
// one consistent boundary set (old or new, never a blend), and place every
// row on the shard that owns it under the recovered set. The suite runs once
// per proposal strategy: the quantile baseline rewrites every boundary,
// while the minimal default must leave part of the bounds vector
// bit-identical mid-crash and still recover exactly one consistent set.
func TestKillReplayDuringRebalance(t *testing.T) {
	t.Run("quantile", func(t *testing.T) {
		runKillReplayRebalance(t, func(e *Engine) (RebalanceResult, error) {
			return e.RebalanceWith(RebalanceQuantile)
		}, false)
	})
	t.Run("minimal", func(t *testing.T) {
		runKillReplayRebalance(t, func(e *Engine) (RebalanceResult, error) {
			return e.Rebalance() // minimal is the default proposer
		}, true)
	})
}

// runKillReplayRebalance drives one strategy through the crash matrix;
// wantPartial asserts the proposal changed a strict subset of the boundary
// vector (the minimal proposer's signature property — crashes then straddle
// records whose bounds mostly equal the manifest's).
func runKillReplayRebalance(t *testing.T, rebalance func(*Engine) (RebalanceResult, error), wantPartial bool) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	keys := durableKeys(300, rng)
	cfg := durableConfig(dir)
	cfg.ByRange = true
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	twin, err := New(keys, Config{Shards: cfg.Shards, ByRange: true, Table: cfg.Table})
	if err != nil {
		t.Fatal(err)
	}
	nShards := e.Shards()

	// A scripted mixed prefix, then a drift burst onto the top of the
	// domain, applied identically to both engines.
	for _, op := range genOps(rng, keys, 80) {
		op.apply(e)
		op.apply(twin)
	}
	for i := 0; i < 250; i++ {
		k := 900 + rng.Int63n(100)
		e.Insert(k)
		twin.Insert(k)
	}
	want := engineState(twin)
	if !statesEqual(engineState(e), want) {
		t.Fatal("durable engine diverged from twin before the rebalance")
	}
	if e.Skew() < 1.2 {
		t.Fatalf("drift burst produced skew %.2f; rebalance would be a no-op", e.Skew())
	}
	oldBounds := e.Partitioner().(*RangePartitioner).Bounds()

	// Flush so the pre-rebalance WAL prefix is the durable baseline, then
	// record each shard's segment size: the rebalance's records land after
	// these offsets.
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	preSizes := make([]int64, nShards)
	for i := 0; i < nShards; i++ {
		preSizes[i] = fileSize(t, segPath(t, dir, i))
	}

	// Crash image A: mid-staging (rows parked in the in-memory registry,
	// nothing of the rebalance in the WAL).
	stagedImg := t.TempDir()
	stagedCopied := false
	e.betweenRebalanceWindows = func() {
		if !stagedCopied {
			stagedCopied = true
			copyDir(t, dir, stagedImg)
		}
	}
	// Crash image B: after the WAL records commit, before the manifest
	// rewrite and checkpoint — the window where only the WAL tails know the
	// new bounds.
	preManifest := t.TempDir()
	e.afterRebalanceWAL = func() {
		if err := e.SyncWAL(); err != nil { // SyncNone: make the tail real
			t.Errorf("seam sync: %v", err)
		}
		copyDir(t, dir, preManifest)
	}

	res, err := rebalance(e)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if res.Moved == 0 || !stagedCopied {
		t.Fatalf("rebalance moved %d rows (staging seam ran: %v)", res.Moved, stagedCopied)
	}
	newBounds := res.NewBounds
	if wantPartial {
		changed := 0
		for i := range newBounds {
			if newBounds[i] != oldBounds[i] {
				changed++
			}
		}
		if changed == 0 || changed == len(newBounds) {
			t.Fatalf("minimal proposer changed %d of %d boundaries (%v -> %v); scenario needs a strict subset",
				changed, len(newBounds), oldBounds, newBounds)
		}
	}

	// Recovery mutates a directory (fresh WAL segment, torn-tail repair), so
	// every recovery below runs against a throwaway copy of its image.
	assertRecovered := func(img string, label string) *Engine {
		t.Helper()
		work := t.TempDir()
		copyDir(t, img, work)
		rcfg := cfg
		rcfg.Dir = work
		re, err := New(nil, rcfg)
		if err != nil {
			t.Fatalf("%s: recovery: %v", label, err)
		}
		re.Close()
		if got := engineState(re); !statesEqual(got, want) {
			t.Fatalf("%s: recovered %d rows, twin has %d (or payloads diverged)", label, len(got), len(want))
		}
		got := re.Partitioner().(*RangePartitioner).Bounds()
		if !boundsEqual(got, oldBounds) && !boundsEqual(got, newBounds) {
			t.Fatalf("%s: recovered bounds %v are neither old %v nor new %v", label, got, oldBounds, newBounds)
		}
		assertPlacement(t, re)
		return re
	}

	// Image A recovers the pre-rebalance timeline; image B must resolve the
	// new bounds from the WAL tails despite the stale manifest.
	assertRecovered(stagedImg, "mid-staging image")
	reB := assertRecovered(preManifest, "pre-manifest image")
	if got := reB.Partitioner().(*RangePartitioner).Bounds(); !boundsEqual(got, newBounds) {
		t.Fatalf("pre-manifest image: bounds %v, want the WAL-carried new bounds %v", got, newBounds)
	}

	// Random-offset kills inside the rebalance's WAL span: each shard's tail
	// is cut independently somewhere in [pre-rebalance size, full size],
	// slicing every interleaving of bulk moves and the boundary record
	// (torn final frames included).
	postSizes := make([]int64, nShards)
	for i := 0; i < nShards; i++ {
		postSizes[i] = fileSize(t, segPath(t, preManifest, i))
		if postSizes[i] < preSizes[i] {
			t.Fatalf("shard %d: WAL shrank across the rebalance (%d -> %d)", i, preSizes[i], postSizes[i])
		}
	}
	for trial := 0; trial < 12; trial++ {
		crash := t.TempDir()
		copyDir(t, preManifest, crash)
		for i := 0; i < nShards; i++ {
			cut := preSizes[i] + rng.Int63n(postSizes[i]-preSizes[i]+1)
			if err := os.Truncate(segPath(t, crash, i), cut); err != nil {
				t.Fatal(err)
			}
		}
		assertRecovered(crash, fmt.Sprintf("random-offset trial %d", trial))
	}

	// The completed live directory (manifest + checkpoint in place).
	reF := assertRecovered(dir, "completed rebalance")
	if got := reF.Partitioner().(*RangePartitioner).Bounds(); !boundsEqual(got, newBounds) {
		t.Fatalf("completed image: bounds %v, want %v", got, newBounds)
	}
	if reF.Skew() >= 1.5 && e.Skew() < 1.5 {
		t.Fatalf("recovered skew %.2f lost the rebalance's balance", reF.Skew())
	}
}

// TestCheckpointDuringStagedMove cuts a checkpoint while a cross-shard move
// is staged (taken from its source shard, not yet published). The
// checkpoint must count the row exactly once — at its old key — and a
// recovery from that image must restore it there; the observability of the
// staged move is asserted through PendingMoves.
func TestCheckpointDuringStagedMove(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	keys := durableKeys(200, rng)
	cfg := durableConfig(dir)
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Find a key pair on different shards whose counts are unambiguous.
	var old, new int64
	for k := int64(2000); ; k++ {
		if e.PointQuery(k) == 0 {
			if old == 0 {
				old = k
			} else if e.Partitioner().Shard(k) != e.Partitioner().Shard(old) {
				new = k
				break
			}
		}
	}
	e.Insert(old)

	crash := t.TempDir()
	checked := false
	e.betweenMoveWindows = func() {
		pend := e.PendingMoves()
		if len(pend) != 1 || pend[0].Old != old || pend[0].New != new {
			t.Errorf("PendingMoves mid-move = %+v, want [{%d %d}]", pend, old, new)
		}
		// The staged row must still be visible, exactly once, at old.
		if got := e.PointQuery(old); got != 1 {
			t.Errorf("staged row: PointQuery(old) = %d, want 1", got)
		}
		if err := e.Checkpoint(); err != nil {
			t.Errorf("checkpoint during staged move: %v", err)
		}
		copyDir(t, dir, crash)
		checked = true
	}
	if err := e.UpdateKey(old, new); err != nil {
		t.Fatalf("UpdateKey: %v", err)
	}
	if !checked {
		t.Fatal("betweenMoveWindows seam did not run")
	}
	if pend := e.PendingMoves(); len(pend) != 0 {
		t.Fatalf("PendingMoves after publish = %+v", pend)
	}

	// Recovery from the mid-move image: the move never published in that
	// timeline, so the row lives at old on exactly one shard.
	rcfg := cfg
	rcfg.Dir = crash
	re, err := New(nil, rcfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := re.PointQuery(old); got != 1 {
		t.Fatalf("recovered PointQuery(old) = %d, want 1", got)
	}
	if got := re.PointQuery(new); got != 0 {
		t.Fatalf("recovered PointQuery(new) = %d, want 0", got)
	}

	// The live engine published the move; a recovery of its directory (with
	// the post-checkpoint WAL tail holding the MoveOut/MoveIn pair) lands
	// the row at new.
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	after := t.TempDir()
	copyDir(t, dir, after)
	rcfg.Dir = after
	re2, err := New(nil, rcfg)
	if err != nil {
		t.Fatalf("post-publish recovery: %v", err)
	}
	defer re2.Close()
	if got := re2.PointQuery(new); got != 1 {
		t.Fatalf("post-publish recovered PointQuery(new) = %d, want 1", got)
	}
	if got := re2.PointQuery(old); got != 0 {
		t.Fatalf("post-publish recovered PointQuery(old) = %d, want 0", got)
	}
}

// TestTrainedLayoutSurvivesRecovery checks the checkpoint restores the
// learned partitioning without re-running the solver: the recovered engine
// reports the same per-chunk layouts as the trained one.
func TestTrainedLayoutSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	keys := durableKeys(400, rng)
	cfg := durableConfig(dir)
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Train(genTrainSample(keys, rng), 1); err != nil {
		t.Fatalf("Train: %v", err)
	}
	want := e.Layouts()
	if len(want) == 0 {
		t.Fatal("trained engine reports no layouts")
	}

	crash := t.TempDir()
	copyDir(t, dir, crash)
	rcfg := cfg
	rcfg.Dir = crash
	re, err := New(nil, rcfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	got := re.Layouts()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered layouts diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if got := engineState(re); !statesEqual(got, engineState(e)) {
		t.Fatal("recovered rows diverged after layout restore")
	}
}

// TestCheckpointDoesNotOrphanMovePair guards the move-pair durability
// invariant: a per-shard checkpoint prunes its own half of published
// MoveOut/MoveIn pairs and records a horizon covering them, which is only
// sound if the OTHER shard's half is on stable storage first. Under
// Sync=none the destination's MoveIn lives in the page cache, so the
// checkpoint must flush every WAL before it commits; otherwise this
// power-loss sequence recovers the moved row on zero shards.
func TestCheckpointDoesNotOrphanMovePair(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	keys := durableKeys(200, rng)
	cfg := durableConfig(dir) // SyncNone: durability only via checkpoint flushes
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var old, new int64
	for k := int64(2000); ; k++ {
		if e.PointQuery(k) == 0 {
			if old == 0 {
				old = k
			} else if e.Partitioner().Shard(k) != e.Partitioner().Shard(old) {
				new = k
				break
			}
		}
	}
	e.Insert(old)
	if err := e.UpdateKey(old, new); err != nil {
		t.Fatalf("UpdateKey: %v", err)
	}

	// Checkpoint ONLY the source shard: it prunes the MoveOut and records a
	// move horizon covering the move.
	if err := e.checkpointShard(e.Partitioner().Shard(old)); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Power loss: every shard keeps exactly its provably durable prefix.
	crash := t.TempDir()
	copyDir(t, dir, crash)
	for i, s := range e.shards {
		if err := os.Truncate(segPath(t, crash, i), s.log.DurableOffset()); err != nil {
			t.Fatal(err)
		}
	}

	rcfg := cfg
	rcfg.Dir = crash
	re, err := New(nil, rcfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := re.PointQuery(new); got != 1 {
		t.Fatalf("recovered PointQuery(new) = %d, want 1 — move pair orphaned by checkpoint", got)
	}
	if got := re.PointQuery(old); got != 0 {
		t.Fatalf("recovered PointQuery(old) = %d, want 0 — row duplicated across shards", got)
	}
}
