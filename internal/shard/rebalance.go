package shard

// Drift-triggered shard rebalancing: the sharded analogue of re-partitioning
// inside a shard (see the package comment's rebalance section for the
// stage → publish → install-partitioner protocol and ROADMAP "Shard
// rebalancing"). A detector watches per-shard row-count skew and the write
// rate observed by the retrain monitors; when the key distribution has
// drifted onto one end of the range, fresh boundaries are proposed and rows
// migrate between shards without ever being visible on zero or two shards.
//
// Proposals come in two strategies. The default, RebalanceMinimal
// (ProposeMinimalBounds), re-splits only the shards breaching the skew
// bound plus the neighbors absorbing their load, leaving every other
// boundary bit-identical; RebalanceQuantile re-splits every boundary on the
// global quantiles — the exhaustive baseline. Whatever the proposal, the
// migration is planned from the ownership delta (ownershipDelta): only rows
// inside intervals whose owner actually changes are staged, and the
// publish-window straggler rescan walks just those intervals through the
// table's bounded iterator (KeysInRange) instead of every live key — so
// both migration volume and the exclusive-window pause scale with the drift
// the layout absorbs, not with the table size.
//
// Durability: migrated rows are WAL-logged as MoveOut/MoveIn pairs (Key ==
// Key2) and the boundary change as one RecRebalance record per shard, all
// stamped with the publish epoch; the manifest is rewritten and a checkpoint
// cut afterwards, so recovery resolves the newest boundary set from
// whichever source survived (manifest, checkpoint, or WAL tail) and a
// re-homing sweep lands every row on its owner under that set — a crash at
// any byte offset mid-rebalance recovers to exactly one consistent boundary
// set (durable.go).

import (
	"fmt"
	"time"

	"casper/internal/obs"
	"casper/internal/table"
	"casper/internal/wal"
)

// stageBatch is the number of rows parked in the staged-move registry per
// exclusive move-gate window while a rebalance stages; readers run (with
// registry compensation) between batches, bounding the per-window pause.
const stageBatch = 1024

// defaultMaxSkew is the max/mean row-count ratio that triggers (and, for the
// minimal proposer, scopes) a rebalance when no policy overrides it.
const defaultMaxSkew = 1.5

// RebalanceStrategy selects the boundary proposer used by Rebalance,
// RebalanceWith, and the auto-rebalance worker.
type RebalanceStrategy int

const (
	// RebalanceMinimal (the default) re-splits only the shards breaching
	// the skew bound, plus the neighbors absorbing their load, leaving
	// every other boundary bit-identical — migration volume and publish
	// pause track the drift size. See ProposeMinimalBounds.
	RebalanceMinimal RebalanceStrategy = iota
	// RebalanceQuantile re-splits every boundary on the global quantiles —
	// the exhaustive baseline, which migrates most resident rows to absorb
	// even a small drifted tail.
	RebalanceQuantile
)

// RebalancePolicy tunes the background auto-rebalancer (StartAutoRebalance).
// Zero fields select defaults.
type RebalancePolicy struct {
	// CheckEvery is the skew check cadence (default 200ms).
	CheckEvery time.Duration
	// MaxSkew triggers a rebalance when the max/mean shard row-count ratio
	// reaches this value (default 1.5). 1 means perfectly balanced.
	MaxSkew float64
	// Strategy selects the boundary proposer (default RebalanceMinimal).
	Strategy RebalanceStrategy
	// MinRows is the minimum total row count before rebalancing is
	// considered (default 1024): tiny fleets are always "skewed".
	MinRows int
	// MinOps is the minimum number of operations the shard monitors must
	// observe between rebalances (default 256), so an idle engine is never
	// rebalanced on stale skew.
	MinOps int
}

func (p RebalancePolicy) withDefaults() RebalancePolicy {
	if p.CheckEvery <= 0 {
		p.CheckEvery = 200 * time.Millisecond
	}
	if p.MaxSkew <= 0 {
		p.MaxSkew = defaultMaxSkew
	}
	if p.MinRows <= 0 {
		p.MinRows = 1024
	}
	if p.MinOps <= 0 {
		p.MinOps = 256
	}
	return p
}

// RebalanceResult reports one boundary re-split.
type RebalanceResult struct {
	// Moved is the number of rows migrated between shards.
	Moved int
	// Stragglers is the subset of Moved caught by the publish-window rescan
	// of the changed ownership intervals: writes that landed between the
	// staging batches under the old routing.
	Stragglers int
	// OldBounds and NewBounds are the boundary sets before and after.
	OldBounds, NewBounds []int64
	// SkewBefore and SkewAfter are the max/mean shard row-count ratios
	// around the rebalance.
	SkewBefore, SkewAfter float64
	// Pause is the duration of the exclusive publish+install window, during
	// which readers and writers were blocked.
	Pause time.Duration
}

// RowCounts returns the physical live-row count of every shard (rows staged
// in the move registry are not attributed); the input of the skew detector.
func (e *Engine) RowCounts() []int {
	e.rlockAll()
	defer e.runlockAll()
	counts := make([]int, len(e.shards))
	for i, s := range e.shards {
		s.read(func(t *table.Table) { counts[i] = t.Len() })
	}
	return counts
}

// Skew returns the current max/mean shard row-count ratio (1 = perfectly
// balanced; an empty engine reports 1).
func (e *Engine) Skew() float64 { return skewOf(e.RowCounts()) }

// skewOf is the max/mean row-count ratio over the shard fleet.
func skewOf(counts []int) float64 {
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 || len(counts) == 0 {
		return 1
	}
	return float64(max) * float64(len(counts)) / float64(total)
}

// liveKeys snapshots every live key across the fleet, staged moves included
// (at their old key), for boundary proposals. Keys land in no particular
// order; staleness against concurrent writers only shifts the proposed
// quantiles, never correctness.
func (e *Engine) liveKeys() []int64 {
	e.rlockAll()
	defer e.runlockAll()
	var keys []int64
	for _, s := range e.shards {
		s.read(func(t *table.Table) { keys = append(keys, t.Keys()...) })
	}
	for _, m := range e.loadRoute().moves.byOld {
		keys = append(keys, m.old)
	}
	return keys
}

// Rebalance proposes fresh boundaries from the current key distribution
// under the default minimal-movement strategy and migrates rows so every
// shard owns its new range — a no-op (Moved == 0) when no shard breaches
// the skew bound, when the proposal matches the installed bounds, or when
// the engine holds no rows. Concurrent reads keep flowing (and observe
// every row exactly once) except during the bounded stage windows and the
// single publish+install window (reported as Pause). Writes keep flowing
// too, with one caveat inherited from the cross-shard move protocol: a
// Delete or UpdateKey that targets a row while it is parked in the
// staged-move registry fails with "absent key" — the row is readable but
// not writable until the publish installs it; callers retry after the
// rebalance, exactly as with a row mid-move. Requires range partitioning.
//
// On a durable engine the boundary change and bulk moves are WAL-logged, the
// manifest rewritten, and a checkpoint cut; a returned error after a
// non-zero Moved reports lost durability, not a lost rebalance — the new
// boundaries are installed in memory either way.
func (e *Engine) Rebalance() (RebalanceResult, error) {
	return e.rebalanceStrategy(RebalanceMinimal, 0)
}

// RebalanceWith is Rebalance under an explicit proposal strategy —
// RebalanceQuantile restores the exhaustive all-boundaries re-split, for
// callers (and benchmarks) comparing it against the minimal default.
func (e *Engine) RebalanceWith(strategy RebalanceStrategy) (RebalanceResult, error) {
	return e.rebalanceStrategy(strategy, 0)
}

// rebalanceStrategy runs one proposal-driven rebalance; maxSkew <= 0 selects
// defaultMaxSkew (the auto-rebalance worker passes its policy's threshold so
// the proposer and the trigger agree on what "breaching" means).
func (e *Engine) rebalanceStrategy(strategy RebalanceStrategy, maxSkew float64) (RebalanceResult, error) {
	if e.readonly {
		return RebalanceResult{}, ErrReadOnly
	}
	if _, ok := e.loadPart().(*RangePartitioner); !ok {
		return RebalanceResult{}, fmt.Errorf("shard: rebalance requires range partitioning")
	}
	if maxSkew <= 0 {
		maxSkew = defaultMaxSkew
	}
	e.rebalanceMu.Lock()
	defer e.rebalanceMu.Unlock()
	keys := e.liveKeys()
	old := e.loadPart().(*RangePartitioner).Bounds()
	if len(keys) == 0 {
		return RebalanceResult{OldBounds: old, NewBounds: old, SkewBefore: 1, SkewAfter: 1}, nil
	}
	var proposal []int64
	switch strategy {
	case RebalanceQuantile:
		proposal = proposeBounds(keys, len(e.shards))
	default:
		proposal = ProposeMinimalBounds(keys, old, maxSkew)
	}
	return e.rebalanceLocked(proposal)
}

// RebalanceTo migrates rows onto an explicit boundary set (strictly
// increasing, exactly Shards()-1 entries) — manual resharding, and the
// deterministic entry point the test suites drive. Requires range
// partitioning.
func (e *Engine) RebalanceTo(bounds []int64) (RebalanceResult, error) {
	if e.readonly {
		return RebalanceResult{}, ErrReadOnly
	}
	if _, ok := e.loadPart().(*RangePartitioner); !ok {
		return RebalanceResult{}, fmt.Errorf("shard: rebalance requires range partitioning")
	}
	if len(bounds) != len(e.shards)-1 {
		return RebalanceResult{}, fmt.Errorf("shard: RebalanceTo needs %d boundaries for %d shards, got %d",
			len(e.shards)-1, len(e.shards), len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return RebalanceResult{}, fmt.Errorf("shard: RebalanceTo bounds must be strictly increasing, got %d after %d",
				bounds[i], bounds[i-1])
		}
	}
	e.rebalanceMu.Lock()
	defer e.rebalanceMu.Unlock()
	return e.rebalanceLocked(append([]int64(nil), bounds...))
}

// changedBounds counts the boundary entries that differ between two
// equal-length bound sets (journal-event detail for minimal proposals).
func changedBounds(a, b []int64) int {
	if len(a) != len(b) {
		return len(b)
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rebalanceLocked runs the stage → publish → install protocol onto newBounds;
// caller holds rebalanceMu and has validated that the engine is
// range-partitioned.
func (e *Engine) rebalanceLocked(newBounds []int64) (RebalanceResult, error) {
	res := RebalanceResult{
		OldBounds: e.loadPart().(*RangePartitioner).Bounds(),
		NewBounds: newBounds,
	}
	res.SkewBefore = skewOf(e.RowCounts())
	if boundsEqual(res.OldBounds, newBounds) {
		res.SkewAfter = res.SkewBefore
		return res, nil
	}
	newPart := RangePartitionerFromBounds(newBounds)
	if newPart.Shards() != len(e.shards) {
		return res, fmt.Errorf("shard: proposed bounds yield %d shards, engine has %d", newPart.Shards(), len(e.shards))
	}
	e.obs.Event(obs.Event{Kind: obs.EvRebalancePropose, Shard: -1,
		Note: fmt.Sprintf("skew %.2f, %d of %d bounds changing", res.SkewBefore, changedBounds(res.OldBounds, newBounds), len(newBounds))})

	// The migration plan is the ownership delta: the key intervals whose
	// owner differs between the old and new bounds, grouped by the shard
	// that loses them. Rows outside these intervals keep their owner, so
	// neither the staging scan below nor the publish-window straggler
	// rescan ever visits them — with a minimal proposal most boundaries are
	// bit-identical and both scans touch O(drift) keys, not O(table).
	losing := make([][]keyInterval, len(e.shards))
	for _, iv := range ownershipDelta(res.OldBounds, newBounds) {
		losing[iv.from] = append(losing[iv.from], iv)
	}

	// Stage: park every row whose owner changes in the staged-move registry
	// (old key == new key), in bounded exclusive windows. Readers run
	// between batches and serve staged rows from the registry, so each row
	// stays visible exactly once throughout. The take halves journal (via
	// run) for in-flight shadow retrains but skip the WAL: durability logs
	// the whole migration at publish, so a crash while staging recovers the
	// pre-rebalance state.
	var staged []*pendingMove
	srcOf := make(map[*pendingMove]int)
	for i, s := range e.shards {
		if len(losing[i]) == 0 {
			continue
		}
		var misplaced []int64
		s.read(func(t *table.Table) {
			for _, iv := range losing[i] {
				misplaced = append(misplaced, t.KeysInRange(iv.lo, iv.hi)...)
			}
		})
		for len(misplaced) > 0 {
			batch := misplaced
			if len(batch) > stageBatch {
				batch = batch[:stageBatch]
			}
			misplaced = misplaced[len(batch):]
			e.lockAll()
			var batchMoves []*pendingMove
			for _, k := range batch {
				j := &journalOp{kind: jDelete, key: k, skipWAL: true}
				err, _ := s.run(j, func(t *table.Table, _ bool) error {
					row, terr := t.TakeRow(k)
					j.row = row
					return terr
				})
				if err != nil {
					continue // deleted since the listing; nothing to move
				}
				m := &pendingMove{old: k, new: k, row: j.row}
				batchMoves = append(batchMoves, m)
				staged = append(staged, m)
				srcOf[m] = i
			}
			// One snapshot publish per batch, not per row: the registry is
			// copy-on-write, so staging is batched to keep it linear.
			if len(batchMoves) > 0 {
				v := e.loadRoute()
				e.publishRoute(v.part, v.moves.with(batchMoves, nil))
			}
			e.unlockAll()
			if e.betweenRebalanceWindows != nil {
				e.betweenRebalanceWindows()
			}
		}
	}

	e.obs.Event(obs.Event{Kind: obs.EvRebalanceStage, Shard: -1, Rows: len(staged)})

	// Publish + install: one exclusive window holding the move gate and
	// every shard's swap lock, so no reader, writer, move, retrain swap, or
	// checkpoint can interleave. Staged rows land at their destinations, the
	// tables are rescanned for stragglers (writes that slipped in between
	// the staging batches under the old routing), the migration is
	// WAL-logged, and the new partitioner is installed with a single epoch
	// bump that retires the registry entries.
	type movedRow struct {
		src, dst int
		key      int64
		row      []int32
	}
	ours := make(map[*pendingMove]struct{}, len(staged))
	for _, m := range staged {
		ours[m] = struct{}{}
	}
	// Install barrier: raise the flag (blocking new cross-shard stages),
	// then wait for every in-flight move to drain before freezing the
	// fleet. Boundaries must not change while a move is staged: the move's
	// WAL record placement and checkpoint registry folding both equate the
	// routed owner of a staged key with the shard the row physically left.
	// The wait sleeps with no locks held, so draining moves make progress;
	// each writer has at most one move in flight, so the drain is bounded.
	e.lockAll()
	e.installing = true
	for {
		foreign := false
		for _, m := range e.loadRoute().moves.byOld {
			if _, ok := ours[m]; !ok {
				foreign = true
				break
			}
		}
		if !foreign {
			break
		}
		e.unlockAll()
		time.Sleep(200 * time.Microsecond)
		e.lockAll()
	}
	// The pause clock starts only now: during the drain above, the gate was
	// repeatedly released and reads/writes flowed normally. The one obs
	// timer feeds res.Pause, the RebalancePauseNs histogram, and the
	// install event, so bench reporting and the journal cannot disagree.
	pauseTimer := obs.StartTimer()
	for _, s := range e.shards {
		s.mu.Lock()
	}
	moved := make([]movedRow, 0, len(staged))
	for _, m := range staged {
		dst := newPart.Shard(m.old)
		e.placeLocked(dst, m.old, m.row)
		moved = append(moved, movedRow{src: srcOf[m], dst: dst, key: m.old, row: m.row})
	}
	// Straggler rescan, bounded to the ownership delta: a write that slipped
	// in between the staging batches landed under the old routing, so if its
	// owner changes it sits on the losing shard inside one of that shard's
	// delta intervals — scanning exactly those intervals finds every
	// straggler (and nothing else; the equivalence against a full-table
	// rescan is locked down by TestDeltaRescanEquivalence via the
	// verifyRescan seam below). The rows just placed from the registry are
	// never revisited: they live in intervals their destination gains, not
	// loses.
	stragglersOf := func(i int) []int64 {
		s := e.shards[i]
		if s.tbl == nil || len(losing[i]) == 0 {
			return nil
		}
		var out []int64
		for _, iv := range losing[i] {
			out = append(out, s.tbl.KeysInRange(iv.lo, iv.hi)...)
		}
		return out
	}
	if e.verifyRescan != nil {
		var full, bounded []int64
		for i, s := range e.shards {
			if s.tbl == nil {
				continue
			}
			for _, k := range s.tbl.Keys() {
				if newPart.Shard(k) != i {
					full = append(full, k)
				}
			}
			bounded = append(bounded, stragglersOf(i)...)
		}
		e.verifyRescan(full, bounded)
	}
	for i, s := range e.shards {
		for _, k := range stragglersOf(i) {
			row, err := s.tbl.TakeRow(k)
			if err != nil {
				continue
			}
			s.journalLocked(journalOp{kind: jDelete, key: k, row: row})
			dst := newPart.Shard(k)
			e.placeLocked(dst, k, row)
			moved = append(moved, movedRow{src: i, dst: dst, key: k, row: row})
			res.Stragglers++
		}
	}
	pub := e.epoch.Advance() // the single epoch bump installing the bounds
	commits := make(map[*shard]uint64)
	if e.durable {
		// Move pairs first, then one boundary record per shard, all stamped
		// with the publish epoch; appended under each shard's jmu so the
		// per-shard epoch order stays monotonic. The appends must stay
		// inside the freeze: a post-install write to a migrated row carries
		// the same epoch as the publish, so if its record could beat the
		// MoveIn into the shard's WAL, the stable epoch sort at recovery
		// would replay them in that inverted order and resurrect the row.
		// Only the fsyncs (Commit) happen after the locks drop.
		for _, mv := range moved {
			id := e.moveSeq.Add(1)
			rec := wal.Record{Epoch: pub, MoveID: id, Key: mv.key, Key2: mv.key, Row: mv.row}
			src, dst := e.shards[mv.src], e.shards[mv.dst]
			src.jmu.Lock()
			rec.Kind = wal.RecMoveOut
			lsn, _ := src.log.Append(rec)
			src.jmu.Unlock()
			commits[src] = lsn
			dst.jmu.Lock()
			rec.Kind = wal.RecMoveIn
			lsn, _ = dst.log.Append(rec)
			dst.jmu.Unlock()
			commits[dst] = lsn
		}
		brec := wal.Record{Kind: wal.RecRebalance, Epoch: pub, Bounds: newBounds}
		for _, s := range e.shards {
			s.jmu.Lock()
			lsn, _ := s.log.Append(brec)
			s.jmu.Unlock()
			commits[s] = lsn
		}
	}
	// Install: one snapshot publish carries the new partitioner, the publish
	// epoch, and the registry with every staged entry retired in one pass (a
	// per-entry drop would be quadratic in the migration size, all inside
	// the window where every read and write is blocked). Readers and writers
	// blocked on the stripes and swap locks observe the new routing the
	// moment the locks drop.
	drop := make(map[*pendingMove]bool, len(staged))
	for _, m := range staged {
		drop[m] = true
	}
	e.publishRoute(newPart, e.loadRoute().moves.without(drop))
	e.installing = false // lower the barrier with the new boundaries in force
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
	e.unlockAll()
	res.Pause = pauseTimer.Elapsed()
	res.Moved = len(moved)
	if e.obs.Enabled() {
		e.obs.RebalancePauseNs.Observe(0, res.Pause.Nanoseconds())
		e.obs.RebalanceRows.Add(0, uint64(res.Moved))
	}
	e.obs.Event(obs.Event{Kind: obs.EvRebalancePublish, Shard: -1, Epoch: pub, Rows: res.Moved,
		Note: fmt.Sprintf("%d stragglers", res.Stragglers)})
	e.obs.Event(obs.Event{Kind: obs.EvRebalanceInstall, Shard: -1, Epoch: pub, DurNs: res.Pause.Nanoseconds(),
		Note: fmt.Sprintf("%d bounds installed", len(newBounds))})

	var werr error
	if e.durable {
		for i, s := range e.shards {
			if lsn, ok := commits[s]; ok {
				if err := s.log.Commit(lsn); err != nil && werr == nil {
					werr = fmt.Errorf("shard %d: %w", i, err)
				}
			}
		}
		if e.afterRebalanceWAL != nil {
			e.afterRebalanceWAL()
		}
		if err := e.rewriteManifest(); err != nil && werr == nil {
			werr = err
		}
		// Checkpointing persists the new boundary set in every shard's
		// checkpoint and prunes the migration's WAL records behind the new
		// horizon.
		if err := e.Checkpoint(); err != nil && werr == nil {
			werr = err
		}
	}
	e.rebalances.Add(1)
	res.SkewAfter = skewOf(e.RowCounts())
	return res, werr
}

// placeLocked inserts a migrated row into shard dst, seeding its table when
// empty and journaling the insert for an in-flight shadow retrain; caller
// holds every shard's swap lock exclusively (publish window).
func (e *Engine) placeLocked(dst int, key int64, row []int32) {
	d := e.shards[dst]
	if d.tbl == nil {
		tbl, err := table.NewFromRows([]int64{key}, [][]int32{row}, d.cfg)
		if err != nil {
			panic(fmt.Sprintf("shard: rebalance seeding one-row table: %v", err))
		}
		d.tbl = tbl
	} else {
		d.tbl.InsertRow(key, row)
	}
	d.journalLocked(journalOp{kind: jInsertRow, key: key, row: row})
}

// journalLocked appends j to the retrain journal when a shadow retrain is in
// flight; caller holds s.mu exclusively (the journaling flag is stable).
func (s *shard) journalLocked(j journalOp) {
	if !s.journaling {
		return
	}
	j.epoch = s.ep.Now()
	s.jmu.Lock()
	s.journal = append(s.journal, j)
	s.jmu.Unlock()
}

// StartAutoRebalance launches the background rebalancing worker: every
// CheckEvery it compares the max/mean shard row-count skew against the
// policy threshold and, once the fleet has both drifted and absorbed MinOps
// monitored operations, re-splits the boundaries under the policy's
// proposal strategy (minimal movement by default). Requires range
// partitioning; runs concurrently with the auto-retrainer (both feed the
// same per-shard monitors).
func (e *Engine) StartAutoRebalance(p RebalancePolicy) error {
	if _, ok := e.loadPart().(*RangePartitioner); !ok {
		return fmt.Errorf("shard: auto-rebalance requires range partitioning")
	}
	e.rebalanceCtl.Lock()
	defer e.rebalanceCtl.Unlock()
	if e.rebStopCh != nil {
		return fmt.Errorf("shard: auto-rebalance already running")
	}
	p = p.withDefaults()
	e.rebStopCh = make(chan struct{})
	e.rebDoneCh = make(chan struct{})
	e.monOn.Add(1)
	// The write-rate baseline is captured here, synchronously: operations
	// issued after StartAutoRebalance returns must count toward the MinOps
	// gate even if the worker goroutine is scheduled late (single-CPU
	// runtimes routinely run it only after the caller's next block).
	go e.rebalanceLoop(p, e.monitoredOps(), e.rebStopCh, e.rebDoneCh)
	return nil
}

// StopAutoRebalance stops the worker and waits for an in-flight rebalance to
// finish. Safe to call when none is running.
func (e *Engine) StopAutoRebalance() {
	e.rebalanceCtl.Lock()
	defer e.rebalanceCtl.Unlock()
	if e.rebStopCh == nil {
		return
	}
	close(e.rebStopCh)
	<-e.rebDoneCh
	e.rebStopCh, e.rebDoneCh = nil, nil
	e.monOn.Add(-1)
}

// Rebalances returns the number of completed rebalances (manual and
// automatic).
func (e *Engine) Rebalances() uint64 { return e.rebalances.Load() }

func (e *Engine) rebalanceLoop(p RebalancePolicy, opsBase int, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(p.CheckEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			counts := e.RowCounts()
			total := 0
			for _, c := range counts {
				total += c
			}
			if total < p.MinRows {
				continue
			}
			// Write-rate gate, reusing the retrain monitor windows: only
			// rebalance a fleet that is actually absorbing traffic. A
			// retrain rebasing its monitor can shrink the sum; re-base then.
			ops := e.monitoredOps()
			if ops < opsBase {
				opsBase = ops
			}
			if ops-opsBase < p.MinOps {
				continue
			}
			if skewOf(counts) < p.MaxSkew {
				continue
			}
			if _, err := e.rebalanceStrategy(p.Strategy, p.MaxSkew); err != nil {
				continue // durability errors also stick on the write path
			}
			opsBase = e.monitoredOps()
		}
	}
}

// monitoredOps sums the operations the per-shard monitors have observed
// since their last rebase — the rebalancer's write-rate signal.
func (e *Engine) monitoredOps() int {
	n := 0
	for _, s := range e.shards {
		since, _ := s.mon.stats()
		n += since
	}
	return n
}
