package shard

// Durability: per-shard write-ahead logging, chunk checkpoints, and crash
// recovery (the internal/wal subsystem wired into the engine).
//
// Layout of a durable engine directory:
//
//	dir/
//	  MANIFEST.json          shard topology; its presence commits bootstrap
//	  shard-000/
//	    ckpt-00000001.ckpt   newest-valid checkpoint wins at recovery
//	    wal-00000002.log     segments >= the checkpoint's WALSeq are its tail
//	  shard-001/ ...
//
// Writes log with row identity under each shard's jmu (see shard.run), so a
// shard's WAL is a persistent twin of its retrain journal: replaying the
// tail onto the checkpoint reproduces the live table byte-identically.
// Cross-shard moves log one MoveOut/MoveIn record pair inside the publish
// window; recovery reconciles pairs whose halves straddle the crash so a row
// is never restored on zero or two shards.
//
// Checkpoints cut one shard at a single point: under the shard's gate
// stripe (shared — move-gate transitions take every stripe, so no move can
// stage or publish) plus the shard's exclusive swap lock (no writer, no WAL
// append), the WAL is rotated and the table snapshot taken, satisfying
// table.Snapshot's serialize-writers contract.
// Rows staged OUT of the shard by an in-flight move are folded back in at
// their old key, exactly mirroring reader-side registry compensation. The
// checkpoint also records the move-ID horizon: every move with a smaller ID
// fully published before the cut, which recovery uses to tell a crashed move
// half from one whose record was legitimately pruned by a checkpoint.
//
// Recovery loads each shard's newest valid checkpoint, restores the trained
// layouts without re-running the solver, merges every shard's WAL tail in
// epoch order (stable, so per-shard append order is preserved), replays with
// row identity, reconciles move pairs, and restores the epoch oracle to the
// highest epoch observed.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"casper/internal/obs"
	"casper/internal/table"
	"casper/internal/txn"
	"casper/internal/wal"
)

// shardDir returns shard i's subdirectory under the engine directory.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// walOptions maps engine config to WAL options.
func walOptions(cfg Config) wal.Options {
	return wal.Options{Policy: cfg.Sync, Interval: cfg.SyncEvery}
}

// openDurable opens a durable engine: recovery when dir holds a committed
// manifest, bootstrap from keys otherwise.
func openDurable(keys []int64, cfg Config) (*Engine, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating %s: %w", cfg.Dir, err)
	}
	m, err := wal.LoadManifest(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if m != nil {
		return recoverDurable(cfg, m)
	}
	return bootstrapDurable(keys, cfg)
}

// bootstrapDurable loads keys in memory, then persists the initial state:
// per-shard initial checkpoint + empty WAL segment, manifest last. The
// manifest write is the commit point — a crash before it leaves a directory
// that bootstraps again from scratch, never partial state.
func bootstrapDurable(keys []int64, cfg Config) (*Engine, error) {
	e, err := newInMemory(keys, cfg)
	if err != nil {
		return nil, err
	}
	e.durable = true
	e.dir = cfg.Dir
	e.wopts = walOptions(cfg)
	for i, s := range e.shards {
		s.sdir = shardDir(cfg.Dir, i)
		// The manifest is the commit point, and it does not exist yet (its
		// presence routes to recovery instead), so anything already under the
		// shard directory is debris from a bootstrap that crashed before
		// committing. Clear it: OpenLog refuses to overwrite an existing
		// segment, and a stale one would otherwise wedge every re-bootstrap.
		if err := os.RemoveAll(s.sdir); err != nil {
			return nil, fmt.Errorf("shard: clearing %s: %w", s.sdir, err)
		}
		if err := os.MkdirAll(s.sdir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating %s: %w", s.sdir, err)
		}
		opts := e.wopts
		opts.Obs, opts.ObsShard = e.obs, i
		s.log, err = wal.OpenLog(s.sdir, 1, opts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.nextCkpt = 1
	}
	// Checkpoint only once every log exists: a checkpoint flushes all WALs
	// (see checkpointShard), so the fleet must be fully wired first.
	for i := range e.shards {
		if err := e.checkpointShard(i); err != nil {
			return nil, fmt.Errorf("shard %d: initial checkpoint: %w", i, err)
		}
	}
	if err := e.rewriteManifest(); err != nil {
		return nil, err
	}
	return e, nil
}

// shardRecord is one WAL record tagged with its owning shard, for the
// epoch-ordered global replay merge.
type shardRecord struct {
	shard int
	rec   wal.Record
}

// moveTrace accumulates the observed halves of one cross-shard move during
// replay, keyed by MoveID.
type moveTrace struct {
	out, in  bool
	old, new int64
	row      []int32
}

// recoverDurable rebuilds the engine from dir: newest valid checkpoint per
// shard, WAL tail replayed in epoch order (torn final records tolerated and
// trimmed), move pairs reconciled, epoch oracle restored.
//
// Boundary resolution: a rebalance changes the range-partitioner bounds at
// runtime and persists them in three places — the manifest (rewritten after
// the WAL commits), every checkpoint (schema v2), and a RecRebalance record
// in every shard's WAL tail. A crash can strand these sources at different
// ages, so recovery installs the boundary set carried by the highest epoch
// across all of them (the manifest counts as epoch 0 baseline) and then
// re-homes any row that ended up on a shard that no longer owns its key —
// whatever interleaving the crash cut, the engine lands on exactly one
// consistent boundary set with every row on exactly one, correct shard.
func recoverDurable(cfg Config, man *wal.Manifest) (*Engine, error) {
	monCap := cfg.MonitorCap
	if monCap <= 0 {
		monCap = 8192
	}
	ep := cfg.Epoch
	if ep == nil {
		ep = txn.NewOracle()
	}
	e := &Engine{
		cfg: cfg.Table, epoch: ep,
		keyLo: man.KeyLo, keyHi: man.KeyHi,
		durable: true, dir: cfg.Dir, wopts: walOptions(cfg),
	}
	bounds := man.Bounds // boundary set carried by the highest epoch so far
	var boundsEpoch uint64

	var all []shardRecord
	var maxEpoch, maxMove uint64
	horizons := make([]uint64, man.Shards) // per-shard checkpoint move horizon
	newSeqs := make([]uint64, man.Shards)  // fresh WAL segment per shard
	for i := 0; i < man.Shards; i++ {
		s := &shard{idx: i, eng: e, cfg: cfg.Table, mon: newMonitor(monCap), ep: ep, sdir: shardDir(cfg.Dir, i)}
		if err := os.MkdirAll(s.sdir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating %s: %w", s.sdir, err)
		}
		cp, cseq, err := wal.LoadNewestCheckpoint(s.sdir)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if cp == nil {
			// Bootstrap writes a checkpoint for every shard before the
			// manifest commits, so a manifest without one means corruption
			// or deletion; recovering the shard as empty would silently
			// drop its pre-checkpoint rows (they were never in the WAL).
			return nil, fmt.Errorf("shard %d: no valid checkpoint in %s", i, s.sdir)
		}
		fromSeq := cp.WALSeq
		horizons[i] = cp.MoveHorizon
		if cp.Epoch > maxEpoch {
			maxEpoch = cp.Epoch
		}
		if cp.MoveHorizon > maxMove {
			maxMove = cp.MoveHorizon
		}
		if man.ByRange && len(cp.Bounds) > 0 && cp.Epoch >= boundsEpoch {
			bounds, boundsEpoch = cp.Bounds, cp.Epoch
		}
		if len(cp.Keys) > 0 {
			tbl, err := table.NewFromRows(cp.Keys, cp.Rows, cfg.Table)
			if err != nil {
				return nil, fmt.Errorf("shard %d: checkpoint load: %w", i, err)
			}
			if err := tbl.RestoreLayouts(toTableLayouts(cp.Layouts)); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			s.tbl = tbl
		}
		recs, lastSeq, err := wal.ReplaySegments(s.sdir, fromSeq)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		for _, r := range recs {
			all = append(all, shardRecord{shard: i, rec: r})
			if r.Epoch > maxEpoch {
				maxEpoch = r.Epoch
			}
			if r.MoveID > maxMove {
				maxMove = r.MoveID
			}
			if r.Kind == wal.RecRebalance && man.ByRange && len(r.Bounds) > 0 && r.Epoch >= boundsEpoch {
				bounds, boundsEpoch = r.Bounds, r.Epoch
			}
		}
		newSeqs[i] = lastSeq + 1
		if newSeqs[i] < fromSeq {
			newSeqs[i] = fromSeq
		}
		s.nextCkpt = cseq + 1
		e.shards = append(e.shards, s)
	}

	// Install the resolved partitioner before replay: replay itself applies
	// records by the WAL file they came from (placement history, not
	// routing), but move reconciliation and the re-homing sweep below route
	// by it.
	var part Partitioner
	if man.ByRange {
		part = RangePartitionerFromBounds(bounds)
	} else {
		part = NewHashPartitioner(man.Shards)
	}
	if part.Shards() != man.Shards {
		return nil, fmt.Errorf("shard: recovered bounds yield %d shards, manifest declares %d", part.Shards(), man.Shards)
	}
	e.initRoute(part)

	// Epoch stamps are non-decreasing within one shard's WAL (appends and
	// stamps share jmu), so a stable sort preserves per-shard append order
	// while merging the tails into one epoch-ordered global replay.
	sort.SliceStable(all, func(a, b int) bool { return all[a].rec.Epoch < all[b].rec.Epoch })
	ap := &applier{e: e, moves: make(map[uint64]*moveTrace)}
	for _, sr := range all {
		ap.apply(sr.shard, sr.rec)
	}
	ap.reconcile(horizons)
	e.rehomeRecovered()
	e.replayMismatches = ap.mismatches

	ep.AdvanceTo(maxEpoch)
	e.moveSeq.Store(maxMove)
	for i, s := range e.shards {
		opts := e.wopts
		opts.Obs, opts.ObsShard = e.obs, i
		log, err := wal.OpenLog(s.sdir, newSeqs[i], opts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.log = log
	}
	// The replay summary is journaled unconditionally (events are not gated
	// on Enabled) so the first reader to attach still sees how this engine
	// came up. A non-zero mismatch count means some records named rows this
	// replay timeline never produced — the image silently diverged from the
	// WAL; ReplayMismatches exposes the same count programmatically.
	e.obs.Event(obs.Event{Kind: obs.EvRecoveryReplay, Shard: -1, Epoch: maxEpoch, Rows: len(all),
		Note: fmt.Sprintf("%d shards, %d move traces reconciled, %d replay mismatches",
			man.Shards, len(ap.moves), ap.mismatches)})
	return e, nil
}

// toTableLayouts converts persisted chunk layouts to the table form.
func toTableLayouts(in []wal.ChunkLayout) []table.ChunkLayout {
	out := make([]table.ChunkLayout, len(in))
	for i, cl := range in {
		out[i] = table.ChunkLayout{Trained: cl.Trained, Blocks: cl.Blocks, Ghosts: cl.Ghosts}
	}
	return out
}

// seedRecovered builds the shard's table from the first recovered row; the
// recovery-time counterpart of shard.seed (single-threaded, no locks, no
// WAL — the row came from the WAL).
func (s *shard) seedRecovered(key int64, row []int32) {
	tbl, err := table.NewFromRows([]int64{key}, [][]int32{row}, s.cfg)
	if err != nil {
		panic(fmt.Sprintf("shard: recovery seeding one-row table: %v", err))
	}
	s.tbl = tbl
}

// rehomeRecovered moves every recovered row onto the shard that owns its key
// under the resolved partitioner — the universal repair for crashes that
// split a rebalance's bulk moves from its boundary record. Whichever side of
// the rebalance the resolved bounds landed on, the sweep makes row placement
// agree with them; it is a no-op on hash-partitioned engines and on any
// crash image whose moves and bounds survived together. Single-threaded
// recovery context: no locks.
func (e *Engine) rehomeRecovered() {
	if _, ok := e.loadPart().(*RangePartitioner); !ok {
		return
	}
	p := e.loadPart()
	for i, s := range e.shards {
		if s.tbl == nil {
			continue
		}
		var misplaced []int64
		for _, k := range s.tbl.Keys() {
			if p.Shard(k) != i {
				misplaced = append(misplaced, k)
			}
		}
		for _, k := range misplaced {
			row, err := s.tbl.TakeRow(k)
			if err != nil {
				continue
			}
			if d := e.shards[p.Shard(k)]; d.tbl == nil {
				d.seedRecovered(k, row)
			} else {
				d.tbl.InsertRow(k, row)
			}
		}
	}
}

// rewriteManifest atomically re-persists the engine topology; called after a
// rebalance commits its WAL records so the manifest carries the new boundary
// set for the next bootstrap-free recovery.
func (e *Engine) rewriteManifest() error {
	man := &wal.Manifest{Shards: len(e.shards), KeyLo: e.keyLo, KeyHi: e.keyHi}
	if rp, ok := e.loadPart().(*RangePartitioner); ok {
		man.ByRange = true
		man.Bounds = rp.Bounds()
	}
	if err := wal.WriteManifest(e.dir, man); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// PendingMove describes one staged cross-shard move: the row has been taken
// from its source shard but not yet published at its destination; readers
// serve it from the registry at Old.
type PendingMove struct {
	Old, New int64
}

// PendingMoves returns the staged cross-shard moves currently in flight.
// Checkpoints fold these rows back into their source shard at Old, so a
// checkpoint cut while a move is staged never persists the row on zero or
// two shards.
func (e *Engine) PendingMoves() []PendingMove {
	e.rlockAll()
	defer e.runlockAll()
	moves := e.loadRoute().moves.byOld
	out := make([]PendingMove, len(moves))
	for i, m := range moves {
		out[i] = PendingMove{Old: m.old, New: m.new}
	}
	return out
}

// Checkpoint persists every shard's current state and truncates the WAL at
// the checkpoint boundaries. No-op on in-memory engines.
func (e *Engine) Checkpoint() error {
	if !e.durable {
		return nil
	}
	for i := range e.shards {
		if err := e.checkpointShard(i); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// checkpointShard cuts shard i at a single point and persists it: under the
// shard's gate stripe (shared) and its exclusive swap lock, the WAL rotates to
// a fresh segment and the snapshot is taken — no writer, no WAL append, no
// move stage/publish can interleave, so checkpoint + tail replay is exact.
// Rows staged out of this shard by in-flight moves are folded back in at
// their old key (registry compensation), and the recorded move horizon lets
// recovery distinguish crashed move halves from checkpoint-pruned ones. The
// checkpoint file is written and old segments pruned after the locks drop —
// the snapshot is already immutable.
func (e *Engine) checkpointShard(i int) error {
	s := e.shards[i]
	if s.log == nil {
		return fmt.Errorf("shard: checkpoint of non-durable shard %d", i)
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Holding any single stripe shared excludes every move-gate transition
	// (they take all stripes exclusively), so this shard's own stripe is
	// enough to freeze the snapshot fleet-wide — checkpoints of different
	// shards no longer contend on one gate.
	e.stripes[i].mu.RLock()
	s.mu.Lock()
	newSeq, err := s.log.Rotate()
	if err != nil {
		s.mu.Unlock()
		e.stripes[i].mu.RUnlock()
		return err
	}
	cp := &wal.Checkpoint{
		Epoch:       e.epoch.Now(),
		WALSeq:      newSeq,
		MoveHorizon: e.moveSeq.Load(),
	}
	// The snapshot is stable under the held stripe (a rebalance installs a
	// new partitioner only while holding every stripe exclusively), so the
	// bounds and the staged-move attribution below are consistent with the
	// cut.
	v := e.loadRoute()
	p := v.part
	if rp, ok := p.(*RangePartitioner); ok {
		cp.Bounds = rp.Bounds()
	}
	if s.tbl != nil {
		cp.Keys, cp.Rows = s.tbl.Snapshot()
		cp.Layouts = fromTableLayouts(s.tbl.ChunkLayouts())
	}
	for _, m := range v.moves.byOld {
		if p.Shard(m.old) == i {
			cp.Keys, cp.Rows = insertSorted(cp.Keys, cp.Rows, m.old, m.row)
		}
	}
	s.mu.Unlock()
	e.stripes[i].mu.RUnlock()

	// The checkpoint's move horizon asserts that every move with id <=
	// MoveHorizon is durable; its pruning destroys this shard's halves of
	// those moves' record pairs. Both are only sound once the OTHER shards'
	// halves are on stable storage — under Sync=none/interval they may
	// still be sitting in the page cache — so flush every WAL before the
	// checkpoint itself becomes durable. (Moves with larger ids publish
	// after the cut and are covered by reconciliation, not the horizon.)
	if err := e.SyncWAL(); err != nil {
		return err
	}

	seq := s.nextCkpt
	if err := wal.WriteCheckpoint(s.sdir, seq, cp); err != nil {
		return err
	}
	s.nextCkpt = seq + 1
	wal.Prune(s.sdir, seq, newSeq)
	// Lifecycle events are emitted here, after every shard/journal lock has
	// dropped, per the lock-order contract in the package comment.
	if e.obs.Enabled() {
		e.obs.Checkpoints.Inc(i)
	}
	e.obs.Event(obs.Event{Kind: obs.EvWALRoll, Shard: i, Note: fmt.Sprintf("segment %d opened", newSeq)})
	e.obs.Event(obs.Event{Kind: obs.EvCheckpointCut, Shard: i, Epoch: cp.Epoch, Rows: len(cp.Keys)})
	e.obs.Event(obs.Event{Kind: obs.EvCheckpointPrune, Shard: i,
		Note: fmt.Sprintf("checkpoint %d, segments < %d pruned", seq, newSeq)})
	return nil
}

// fromTableLayouts converts table chunk layouts to the persisted form.
func fromTableLayouts(in []table.ChunkLayout) []wal.ChunkLayout {
	out := make([]wal.ChunkLayout, len(in))
	for i, cl := range in {
		out[i] = wal.ChunkLayout{Trained: cl.Trained, Blocks: cl.Blocks, Ghosts: cl.Ghosts}
	}
	return out
}

// insertSorted splices (key, row) into keys-ascending parallel slices.
func insertSorted(keys []int64, rows [][]int32, key int64, row []int32) ([]int64, [][]int32) {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] > key })
	keys = append(keys, 0)
	copy(keys[i+1:], keys[i:])
	keys[i] = key
	rows = append(rows, nil)
	copy(rows[i+1:], rows[i:])
	rows[i] = row
	return keys, rows
}

// SyncWAL forces every shard's WAL to stable storage regardless of the sync
// policy — a durability barrier for callers running with SyncNone or
// SyncInterval.
func (e *Engine) SyncWAL() error {
	if !e.durable {
		return nil
	}
	for i, s := range e.shards {
		if s.log == nil {
			continue
		}
		if err := s.log.Sync(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
