package shard

// Recovery replay mismatch surfacing: a WAL record whose row-identity delete
// fails names a row the replay timeline never produced — the rebuilt image
// has silently diverged from the WAL, and recovery must count it and surface
// it through the recovery.replay journal event and ReplayMismatches.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"casper/internal/obs"
	"casper/internal/wal"
)

// replayEvent returns the engine's recovery.replay journal event.
func replayEvent(t *testing.T, e *Engine) obs.Event {
	t.Helper()
	for _, ev := range e.Events(0) {
		if ev.Kind == obs.EvRecoveryReplay {
			return ev
		}
	}
	t.Fatalf("no %s event journaled", obs.EvRecoveryReplay)
	return obs.Event{}
}

func TestReplayMismatchSurfaced(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	e, err := New(durableKeys(200, rng), durableConfig(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Log a few real writes so the WAL tail is non-trivial.
	for k := int64(2000); k < 2010; k++ {
		e.Insert(k)
	}
	want := engineState(e)
	epoch := e.Epoch()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Append a delete whose payload no replay timeline can produce to shard
	// 0's WAL, past its current final segment — the shape of a divergence
	// bug (or targeted corruption) recovery must not swallow.
	sdir := shardDir(dir, 0)
	_, lastSeq, err := wal.ReplaySegments(sdir, 1)
	if err != nil {
		t.Fatalf("ReplaySegments: %v", err)
	}
	l, err := wal.OpenLog(sdir, lastSeq+1, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if _, err := l.Append(wal.Record{
		Kind: wal.RecDelete, Epoch: epoch + 1, Key: 2000,
		Row: []int32{-123, -456, -789},
	}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := New(nil, durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer r.Close()
	if got := r.ReplayMismatches(); got != 1 {
		t.Fatalf("ReplayMismatches = %d; want 1", got)
	}
	ev := replayEvent(t, r)
	if !strings.Contains(ev.Note, "1 replay mismatches") {
		t.Fatalf("recovery.replay note = %q; want it to surface 1 replay mismatch", ev.Note)
	}
	// The bogus delete matched nothing, so the recovered state is still the
	// pre-crash state.
	if got := engineState(r); !reflect.DeepEqual(got, want) {
		t.Fatalf("state diverged beyond the surfaced mismatch")
	}
}

// TestReplayCleanHasNoMismatches: an ordinary shutdown/recover cycle reports
// zero mismatches, so the counter is a real signal, not noise.
func TestReplayCleanHasNoMismatches(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	e, err := New(durableKeys(200, rng), durableConfig(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for k := int64(3000); k < 3040; k++ {
		e.Insert(k)
	}
	for k := int64(3000); k < 3010; k++ {
		if err := e.Delete(k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := e.UpdateKey(3010, 9010); err != nil {
		t.Fatalf("UpdateKey: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := New(nil, durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer r.Close()
	if got := r.ReplayMismatches(); got != 0 {
		t.Fatalf("ReplayMismatches = %d; want 0 on clean recovery", got)
	}
	if !strings.Contains(replayEvent(t, r).Note, "0 replay mismatches") {
		t.Fatalf("recovery.replay note = %q; want 0 replay mismatches", replayEvent(t, r).Note)
	}
}
