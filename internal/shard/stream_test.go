package shard

// Streaming read-path suite: oracle equivalence of the stream folds and
// cursors against the materialized fan-out baseline (quiescent and under
// concurrent cross-shard moves and rebalance installs), cursor pagination
// semantics (LIMIT, page tokens, SeekTo), the loser-tree merge, and the
// drift-monitor attribution of Q8 scans.

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"casper/internal/table"
	"casper/internal/workload"
)

func streamTestEngine(t *testing.T, n int, shards int, byRange bool) (*Engine, []int64) {
	t.Helper()
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i * 3) // gaps so inserts/moves have room
	}
	e, err := New(keys, Config{Shards: shards, ByRange: byRange, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return e, keys
}

// drainCursor pages a cursor to exhaustion, asserting ascending key order,
// and returns the yielded keys and deep-copied payload rows.
func drainCursor(t *testing.T, c *Cursor) ([]int64, [][]int32) {
	t.Helper()
	var keys []int64
	var rows [][]int32
	last := int64(math.MinInt64)
	first := true
	for c.Next() {
		k := c.Key()
		if !first && k < last {
			t.Fatalf("cursor regressed: %d after %d", k, last)
		}
		first, last = false, k
		keys = append(keys, k)
		rows = append(rows, append([]int32(nil), c.Payload()...))
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return keys, rows
}

// TestScanMatchesMaterialized checks, quiescent, on both partitioning
// schemes, that a full cursor drain is byte-equal to the brute-force
// expectation, and that the stream-folded aggregates equal the retained
// materialized fan-out.
func TestScanMatchesMaterialized(t *testing.T) {
	for _, byRange := range []bool{false, true} {
		e, keys := streamTestEngine(t, 2_000, 4, byRange)
		// Duplicates exercise run-preserving batch cuts through the merge.
		for i := 0; i < 25; i++ {
			e.Insert(999)
		}
		all := append(append([]int64(nil), keys...), make([]int64, 25)...)
		for i := 0; i < 25; i++ {
			all[len(keys)+i] = 999
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, rng := range [][2]int64{
			{math.MinInt64, math.MaxInt64}, {0, 1_500}, {999, 999}, {100, 50},
		} {
			lo, hi := rng[0], rng[1]
			var want []int64
			for _, k := range all {
				if k >= lo && k <= hi {
					want = append(want, k)
				}
			}
			c := e.Scan(lo, hi, ScanOptions{})
			got, rows := drainCursor(t, c)
			c.Close()
			if len(got) != len(want) {
				t.Fatalf("byRange=%v [%d,%d]: %d keys, want %d", byRange, lo, hi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("byRange=%v: key[%d]=%d want %d", byRange, i, got[i], want[i])
				}
				if got[i] != 999 { // duplicate inserts share a key; payloads differ by insert order
					for col, v := range rows[i] {
						if v != table.DefaultPayload(got[i], col) {
							t.Fatalf("byRange=%v: row[%d] col %d = %d, want default payload", byRange, i, col, v)
						}
					}
				}
			}
			// Aggregate folds vs the materialized baseline under one snapshot.
			e.View(func(v *View) {
				a, b := v.v.part.Span(lo, hi)
				if hi < lo {
					return
				}
				matC := e.fanOut(a, b, func(t *table.Table) int64 { return int64(t.RangeCount(lo, hi)) })
				if got := v.RangeCount(lo, hi); int64(got) != matC {
					t.Fatalf("byRange=%v: stream RangeCount=%d materialized=%d", byRange, got, matC)
				}
				matS := e.fanOut(a, b, func(t *table.Table) int64 { return t.RangeSum(lo, hi) })
				if got := v.RangeSum(lo, hi); got != matS {
					t.Fatalf("byRange=%v: stream RangeSum=%d materialized=%d", byRange, got, matS)
				}
				matM := e.fanOut(a, b, func(t *table.Table) int64 { return t.MultiRangeSum(lo, hi, nil, 1) })
				if got := v.MultiRangeSum(lo, hi, nil, 1); got != matM {
					t.Fatalf("byRange=%v: stream MultiRangeSum=%d materialized=%d", byRange, got, matM)
				}
			})
		}
	}
}

// TestStreamOracleViewPinned is the concurrency oracle: while movers
// ping-pong cross-shard pairs and a rebalancer alternates boundary
// installs, every View must observe stream aggregates equal to the
// materialized fan-out plus staged-move compensation computed under the
// same pinned snapshot, and two cursor drains inside one View must be
// byte-identical.
func TestStreamOracleViewPinned(t *testing.T) {
	e, _ := streamTestEngine(t, 3_000, 4, true)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 2; w++ {
		// crossShardPair scans upward, which never changes shard under range
		// partitioning — pick one key above every initial bound (last shard)
		// and one at the bottom (first shard) instead. Non-multiples of 3
		// keep them absent from the seeded keys.
		a, b := int64(1_000_001+w*10_000), int64(6*w+1)
		if sh := e.Partitioner(); sh.Shard(a) == sh.Shard(b) {
			t.Fatalf("pair (%d,%d) landed on one shard", a, b)
		}
		e.Insert(a)
		wg.Add(1)
		go func(a, b int64) {
			defer wg.Done()
			cur, alt := a, b
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.UpdateKey(cur, alt); err == nil {
					cur, alt = alt, cur
				}
			}
		}(a, b)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			if flip {
				_, _ = e.Rebalance()
			} else {
				_, _ = e.RebalanceWith(RebalanceQuantile)
			}
			flip = !flip
			time.Sleep(time.Millisecond)
		}
	}()

	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		lo, hi := int64(500), int64(1_010_000)
		e.View(func(v *View) {
			a, b := v.v.part.Span(lo, hi)
			matC := e.fanOut(a, b, func(t *table.Table) int64 { return int64(t.RangeCount(lo, hi)) })
			v.v.moves.forRange(lo, hi, func(*pendingMove) { matC++ })
			if got := v.RangeCount(lo, hi); int64(got) != matC {
				t.Errorf("view: stream RangeCount=%d materialized=%d", got, matC)
			}
			matS := e.fanOut(a, b, func(t *table.Table) int64 { return t.RangeSum(lo, hi) })
			v.v.moves.forRange(lo, hi, func(m *pendingMove) { matS += m.old })
			if got := v.RangeSum(lo, hi); got != matS {
				t.Errorf("view: stream RangeSum=%d materialized=%d", got, matS)
			}

			c1 := v.Scan(lo, hi, ScanOptions{Batch: 64})
			k1, r1 := drainCursor(t, c1)
			c1.Close()
			c2 := v.Scan(lo, hi, ScanOptions{Batch: 512})
			k2, r2 := drainCursor(t, c2)
			c2.Close()
			if len(k1) != len(k2) || int64(len(k1)) != matC {
				t.Errorf("view drains: %d and %d rows, materialized %d", len(k1), len(k2), matC)
				return
			}
			var sum int64
			for i := range k1 {
				if k1[i] != k2[i] {
					t.Errorf("view drains diverge at %d: %d vs %d", i, k1[i], k2[i])
					return
				}
				for c := range r1[i] {
					if r1[i][c] != r2[i][c] {
						t.Errorf("view drain payloads diverge at row %d col %d", i, c)
						return
					}
				}
				sum += k1[i]
			}
			if sum != matS {
				t.Errorf("view drain key sum %d, materialized %d", sum, matS)
			}
		})
	}
	close(stop)
	wg.Wait()
}

// TestCursorPagingUnderMovers races Engine cursors (loose mode) against
// ping-ponging cross-shard movers: every page must stay ascending and
// in-range, stable keys (never touched by a mover) must each appear
// exactly once, and mover-owned keys only ever yield members of their
// pair. Run under -race this also exercises the per-batch stripe protocol.
func TestCursorPagingUnderMovers(t *testing.T) {
	e, keys := streamTestEngine(t, 2_000, 4, false)
	stable := make(map[int64]bool, len(keys))
	for _, k := range keys {
		stable[k] = true
	}
	pairs := make(map[int64]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		a, b := crossShardPair(t, e, int64(2_000_000+w*10_000))
		pairs[a], pairs[b] = true, true
		e.Insert(a)
		wg.Add(1)
		go func(a, b int64) {
			defer wg.Done()
			cur, alt := a, b
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.UpdateKey(cur, alt); err == nil {
					cur, alt = alt, cur
				}
			}
		}(a, b)
	}

	for round := 0; round < 20; round++ {
		seen := make(map[int64]int)
		tok := ""
		for page := 0; ; page++ {
			c := e.Scan(math.MinInt64, math.MaxInt64, ScanOptions{Limit: 157, Batch: 32, PageToken: tok})
			ks, _ := drainCursor(t, c)
			tok = c.PageToken()
			c.Close()
			if len(ks) == 0 {
				break
			}
			for _, k := range ks {
				seen[k]++
				if !stable[k] && !pairs[k] {
					t.Fatalf("cursor yielded key %d that was never inserted", k)
				}
			}
			if page > 200 {
				t.Fatal("paging never terminated")
			}
		}
		for k := range stable {
			if seen[k] != 1 {
				t.Fatalf("stable key %d seen %d times, want exactly once", k, seen[k])
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestCursorLimitSeekAndTokens pins the pagination semantics: LIMIT caps
// totals, page tokens resume mid-duplicate-run without loss or repeat,
// SeekTo repositions, and malformed tokens surface through Err.
func TestCursorLimitSeekAndTokens(t *testing.T) {
	e, keys := streamTestEngine(t, 500, 4, false)
	// A duplicate run longer than the page size, to split across pages.
	for i := 0; i < 23; i++ {
		e.Insert(600)
	}
	var all []int64
	c := e.Scan(math.MinInt64, math.MaxInt64, ScanOptions{})
	all, _ = drainCursor(t, c)
	c.Close()
	if len(all) != len(keys)+23 {
		t.Fatalf("full drain %d rows, want %d", len(all), len(keys)+23)
	}

	// Page in 7s: concatenation must equal the full drain exactly.
	var paged []int64
	tok := ""
	for {
		c := e.Scan(math.MinInt64, math.MaxInt64, ScanOptions{Limit: 7, PageToken: tok})
		ks, _ := drainCursor(t, c)
		tok = c.PageToken()
		c.Close()
		if len(ks) == 0 {
			break
		}
		if len(ks) > 7 {
			t.Fatalf("page of %d rows exceeds Limit 7", len(ks))
		}
		paged = append(paged, ks...)
	}
	if len(paged) != len(all) {
		t.Fatalf("paged drain %d rows, want %d", len(paged), len(all))
	}
	for i := range all {
		if paged[i] != all[i] {
			t.Fatalf("paged[%d]=%d, full[%d]=%d", i, paged[i], i, all[i])
		}
	}

	// SeekTo: jump forward, stream continues from the first key >= target.
	c = e.Scan(0, 2_000, ScanOptions{})
	if !c.Next() {
		t.Fatal("empty scan")
	}
	c.SeekTo(600)
	if !c.Next() || c.Key() != 600 {
		t.Fatalf("after SeekTo(600): key %d, want 600", c.Key())
	}
	c.Close()

	// Limit spans SeekTo: total yields stay capped.
	c = e.Scan(0, 2_000, ScanOptions{Limit: 5})
	n := 0
	for i := 0; i < 2 && c.Next(); i++ {
		n++
	}
	c.SeekTo(900)
	for c.Next() {
		n++
	}
	if n > 5 {
		t.Fatalf("cursor yielded %d rows across SeekTo, Limit 5", n)
	}
	c.Close()

	// Malformed token: Err, no rows, no panic.
	c = e.Scan(0, 100, ScanOptions{PageToken: "zz:not-a-token"})
	if c.Next() {
		t.Fatal("cursor with bad token yielded a row")
	}
	if c.Err() == nil {
		t.Fatal("bad page token produced no error")
	}
	c.Close()
}

// TestStreamFoldEarlyExit pins the early-exit path: a fold that stops after
// its first batch visits at most one batch per shard.
func TestStreamFoldEarlyExit(t *testing.T) {
	e, _ := streamTestEngine(t, 4_000, 4, false)
	var batches atomic.Int64
	e.rlockAll()
	v := e.loadRoute()
	got := e.streamFold(v, math.MinInt64, math.MaxInt64, false, func(keys []int64, _ [][]int32) (int64, bool) {
		batches.Add(1)
		return int64(len(keys)), true
	})
	e.runlockAll()
	if b := batches.Load(); b > int64(len(e.shards)) {
		t.Fatalf("early-exit fold ran %d batches across %d shards", b, len(e.shards))
	}
	if got <= 0 || got > int64(len(e.shards))*int64(table.DefaultScanBatch) {
		t.Fatalf("early-exit fold folded %d rows, want within one batch per shard", got)
	}
}

// TestScanMonitorAttribution checks a cursor scan records itself in the
// drift monitor as a Q8 range access over the requested span, on every
// shard the span routes to.
func TestScanMonitorAttribution(t *testing.T) {
	e, _ := streamTestEngine(t, 200, 2, false)
	e.monOn.Add(1)
	defer e.monOn.Add(-1)

	c := e.Scan(0, 597, ScanOptions{Limit: 10})
	drainCursor(t, c)
	c.Close()

	counts := monitorKinds(e)
	if counts[workload.Q8Scan] != len(e.shards) {
		t.Errorf("Q8Scan recorded on %d shards, want %d (hash span is the fleet)",
			counts[workload.Q8Scan], len(e.shards))
	}

	// Execute dispatches Q8 ops and honors the op's Limit.
	got := e.Execute(workload.Op{Kind: workload.Q8Scan, Key: 0, Key2: 597, Limit: 13})
	if got != 13 {
		t.Errorf("Execute(Q8Scan, Limit 13) yielded %d rows", got)
	}
	if e.Execute(workload.Op{Kind: workload.Q8Scan, Key: 0, Key2: 597}) != 200 {
		t.Error("Execute(Q8Scan, no limit) did not drain the range")
	}
}

// ---------------------------------------------------------------------------
// merge iterator
// ---------------------------------------------------------------------------

// sliceSource is a deterministic mergeSource over a pre-sorted key list;
// each yielded row encodes (source index, position) so tests can check
// stability.
type sliceSource struct {
	src  int
	keys []int64
	i    int
}

func (s *sliceSource) next() (int64, []int32, bool) {
	if s.i >= len(s.keys) {
		return 0, nil, false
	}
	k := s.keys[s.i]
	row := []int32{int32(s.src), int32(s.i)}
	s.i++
	return k, row, true
}

func checkMerge(t *testing.T, lists [][]int64) {
	t.Helper()
	type ref struct {
		key      int64
		src, pos int32
	}
	var want []ref
	srcs := make([]mergeSource, len(lists))
	for si, l := range lists {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		srcs[si] = &sliceSource{src: si, keys: l}
		for pi, k := range l {
			want = append(want, ref{k, int32(si), int32(pi)})
		}
	}
	// Stable sort by key over source-major order = exact merge semantics:
	// equal keys ordered by source index, then source position.
	sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })

	m := newMergeIter(srcs)
	for i, w := range want {
		k, row, ok := m.next()
		if !ok {
			t.Fatalf("merge ended at %d of %d", i, len(want))
		}
		if k != w.key || row[0] != w.src || row[1] != w.pos {
			t.Fatalf("merge[%d] = (%d, src %d, pos %d), want (%d, %d, %d)",
				i, k, row[0], row[1], w.key, w.src, w.pos)
		}
	}
	if _, _, ok := m.next(); ok {
		t.Fatal("merge yielded past the union")
	}
	if _, _, ok := m.next(); ok {
		t.Fatal("exhausted merge revived")
	}
}

func TestMergeIterBasics(t *testing.T) {
	checkMerge(t, nil)
	checkMerge(t, [][]int64{{}})
	checkMerge(t, [][]int64{{1, 2, 3}})
	checkMerge(t, [][]int64{{}, {}, {}})
	checkMerge(t, [][]int64{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}})
	checkMerge(t, [][]int64{{5, 5, 5}, {5, 5}, {5}})
	checkMerge(t, [][]int64{
		{math.MinInt64, 0, math.MaxInt64},
		{math.MinInt64, math.MaxInt64},
		{-1, 0, 1},
		{},
		{0},
	})
}

// FuzzMergeIterator feeds adversarial source shapes — duplicate keys within
// and across sources, int64 extremes, empty and lopsided sources — and
// checks the merged stream is sorted, stable, and complete.
func FuzzMergeIterator(f *testing.F) {
	f.Add(uint8(1), []byte{})
	f.Add(uint8(3), []byte{0, 0, 0, 0, 0, 0, 0, 1, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add(uint8(5), func() []byte {
		var b []byte
		for _, k := range []uint64{0, math.MaxUint64, 1 << 63, 42, 42, 42, 7} {
			var w [8]byte
			binary.BigEndian.PutUint64(w[:], k)
			b = append(b, w[:]...)
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, nsrc uint8, data []byte) {
		k := int(nsrc)%8 + 1
		lists := make([][]int64, k)
		rng := rand.New(rand.NewSource(int64(len(data))))
		for i := 0; i+8 <= len(data) && i < 8*512; i += 8 {
			key := int64(binary.BigEndian.Uint64(data[i : i+8]))
			j := rng.Intn(k)
			lists[j] = append(lists[j], key)
		}
		checkMerge(t, lists)
	})
}
