package shard

// White-box suite for the striped-gate read path: the sorted staged-move
// index behind reader compensation, snapshot-routed reads against a staged
// move, and the drift-monitor attribution the old read path got wrong —
// MultiRangeSum recorded itself as a plain Q3 range sum and Payload was
// invisible to the monitor entirely.

import (
	"testing"

	"casper/internal/table"
	"casper/internal/workload"
)

func TestMoveIndexLookups(t *testing.T) {
	mk := func(k int64) *pendingMove { return &pendingMove{old: k, new: k + 1} }
	a, b, c := mk(10), mk(20), mk(20) // duplicate old keys are legal
	ix := emptyMoves.with([]*pendingMove{b, a, c}, nil)
	collect := func(lo, hi int64) []*pendingMove {
		var out []*pendingMove
		ix.forRange(lo, hi, func(m *pendingMove) { out = append(out, m) })
		return out
	}
	if got := collect(10, 10); len(got) != 1 || got[0] != a {
		t.Errorf("forRange(10,10) = %v, want exactly the move at 10", got)
	}
	if got := collect(20, 20); len(got) != 2 {
		t.Errorf("forRange(20,20) found %d moves, want both duplicates", len(got))
	}
	if got := collect(11, 19); len(got) != 0 {
		t.Errorf("forRange(11,19) found %d moves, want 0", len(got))
	}
	if got := collect(0, 100); len(got) != 3 {
		t.Errorf("forRange(0,100) found %d moves, want 3", len(got))
	}
	ix = ix.with(nil, b)
	if ix.len() != 2 {
		t.Errorf("after drop: len = %d, want 2", ix.len())
	}
	if got := collect(20, 20); len(got) != 1 || got[0] != c {
		t.Errorf("after drop: forRange(20,20) = %v, want only the kept duplicate", got)
	}
	// Published indexes are immutable: the shared empty index must never
	// have absorbed any of the edits above.
	if emptyMoves.len() != 0 {
		t.Fatalf("emptyMoves mutated: len = %d", emptyMoves.len())
	}
}

// TestStagedMoveSnapshotCompensation pins the reader-compensation contract
// on the snapshot path: between the stage and publish windows of a
// cross-shard move, every read serves the staged row from the index at its
// old key — visible exactly once, payload intact.
func TestStagedMoveSnapshotCompensation(t *testing.T) {
	keys := make([]int64, 1_000)
	for i := range keys {
		keys[i] = int64(i)
	}
	e, err := New(keys, Config{Shards: 4, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	a, b := crossShardPair(t, e, 1_000_000)
	e.Insert(a)

	checked := false
	e.betweenMoveWindows = func() {
		checked = true
		if got := stagedMoves(e); got != 1 {
			t.Errorf("mid-move: %d staged moves, want 1", got)
		}
		if got := e.PointQuery(a); got != 1 {
			t.Errorf("mid-move: PointQuery(old) = %d, want 1 (served from index)", got)
		}
		if got := e.PointQuery(b); got != 0 {
			t.Errorf("mid-move: PointQuery(new) = %d, want 0 (not yet published)", got)
		}
		if got := e.RangeCount(a-1, b+1); got != 1 {
			t.Errorf("mid-move: RangeCount around the pair = %d, want 1", got)
		}
		if got := e.RangeSum(a-1, a+1); got != a {
			t.Errorf("mid-move: RangeSum(old±1) = %d, want %d", got, a)
		}
		if v, ok := e.Payload(a, 1); !ok || v != table.DefaultPayload(a, 1) {
			t.Errorf("mid-move: Payload(old,1) = (%d,%v), want (%d,true)", v, ok, table.DefaultPayload(a, 1))
		}
		if got := e.Len(); got != len(keys)+1 {
			t.Errorf("mid-move: Len = %d, want %d", got, len(keys)+1)
		}
	}
	if err := e.UpdateKey(a, b); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("betweenMoveWindows seam never ran")
	}
	if e.PointQuery(a) != 0 || e.PointQuery(b) != 1 {
		t.Errorf("after publish: counts (%d,%d), want (0,1)", e.PointQuery(a), e.PointQuery(b))
	}
	if got := stagedMoves(e); got != 0 {
		t.Errorf("after publish: %d staged moves left, want 0", got)
	}
}

// monitorKinds tallies the op kinds recorded across every shard's monitor.
func monitorKinds(e *Engine) map[workload.Kind]int {
	counts := make(map[workload.Kind]int)
	for _, s := range e.shards {
		for _, op := range s.mon.sample() {
			counts[op.Kind]++
		}
	}
	return counts
}

// TestMultiRangeSumMonitorAttribution regresses the falsified-mix bug:
// MultiRangeSum used to record itself as Q3RangeSum, so the retrainer and
// rebalancer could not tell the two apart in the recorded stream.
func TestMultiRangeSumMonitorAttribution(t *testing.T) {
	keys := make([]int64, 200)
	for i := range keys {
		keys[i] = int64(i)
	}
	e, err := New(keys, Config{Shards: 2, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	e.monOn.Add(1)
	defer e.monOn.Add(-1)

	e.RangeSum(0, 199)
	e.MultiRangeSum(0, 199, nil, 0)

	counts := monitorKinds(e)
	if counts[workload.Q3RangeSum] == 0 {
		t.Error("RangeSum not recorded as Q3RangeSum")
	}
	if counts[workload.Q7MultiRange] == 0 {
		t.Error("MultiRangeSum not recorded as Q7MultiRange")
	}
	// Both are range-shaped over the same span, so they fan into the same
	// shards: the recorded stream distinguishes them by kind alone.
	if counts[workload.Q3RangeSum] != counts[workload.Q7MultiRange] {
		t.Errorf("recorded Q3=%d Q7=%d over identical spans, want equal counts",
			counts[workload.Q3RangeSum], counts[workload.Q7MultiRange])
	}
}

// TestPayloadFeedsMonitor regresses the invisible-read bug: Payload never
// called e.record, so payload-heavy workloads could not trigger retraining.
func TestPayloadFeedsMonitor(t *testing.T) {
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
	}
	e, err := New(keys, Config{Shards: 2, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	e.monOn.Add(1)
	defer e.monOn.Add(-1)

	if _, ok := e.Payload(5, 0); !ok {
		t.Fatal("Payload(5,0) missed a resident key")
	}
	found := false
	for _, s := range e.shards {
		for _, op := range s.mon.sample() {
			if op.Kind == workload.Q1PointQuery && op.Key == 5 {
				found = true
			}
		}
	}
	if !found {
		t.Error("Payload read left no point-access trace in the drift monitor")
	}

	// Misses record too — like PointQuery, a miss scans the same partition
	// a hit would, which is what layout decisions care about.
	before := monitorKinds(e)[workload.Q1PointQuery]
	if _, ok := e.Payload(1_000_000, 0); ok {
		t.Fatal("Payload of absent key reported ok")
	}
	if after := monitorKinds(e)[workload.Q1PointQuery]; after <= before {
		t.Errorf("Payload miss not recorded: Q1 count %d, want > %d", after, before)
	}
}
