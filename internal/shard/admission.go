package shard

// Write admission control (ROADMAP "Scenario diversity"): a hierarchical
// token bucket that keeps a write burst from outrunning background
// retraining. Every gated write takes one token; tokens are minted at an
// adaptive rate the governor derives from the drift monitors — the same
// per-shard access histograms that trigger retraining (retrain.go). When a
// shard's histogram has drifted far from its training baseline AND a deep
// backlog of untrained operations has built up, the refill rate is squeezed
// toward a floor, trading write throughput for the retrainer's chance to
// catch up; with no drift pressure the bucket refills at the configured
// ceiling and admission costs one mutex acquire per write.
//
// Fairness is per tenant lane: each of the policy's Tenants lanes owns a
// guaranteed slice (rate/Tenants refill, burst/Tenants cap) and overflow
// from full lanes spills into a shared bucket any lane may borrow from —
// so an idle tenant's share is not wasted, but a flash-crowding tenant can
// never starve the others below their guarantee. Tokens are minted in
// exactly one lane and spill (never duplicate), so total admission per
// second is bounded by the adaptive rate regardless of lane traffic.
//
// Backpressure shape is selected by AdmissionPolicy.MaxWait: zero sheds
// immediately with ErrOverload; positive blocks the writer up to that
// deadline before shedding. Engine.Insert has no error to return, so under
// admission it always blocks until admitted (backpressure, never data
// loss); the tenant-scoped Writer handle and Delete/UpdateKey surface
// ErrOverload. The controller never holds any engine lock while a writer
// waits — admission resolves strictly before the write enters the gated
// write path, so a shed op is never partially applied.

import (
	"errors"
	"sync"
	"time"
)

// ErrOverload is returned by admission-gated writes when the token bucket
// is exhausted and the policy's MaxWait (if any) elapsed — the engine is
// shedding write load to let retraining catch up. Callers should back off
// and retry; the op was NOT applied.
var ErrOverload = errors.New("shard: write shed by admission control (overload)")

// AdmissionPolicy configures the write admission controller on Config.
// The zero value disables admission control entirely.
type AdmissionPolicy struct {
	// MaxWriteRate is the refill ceiling in writes/sec; <= 0 disables
	// admission control. The governor adapts the live rate between
	// MinRateFrac*MaxWriteRate and MaxWriteRate from drift pressure.
	MaxWriteRate float64
	// Burst is the total bucket capacity in writes (default
	// MaxWriteRate/4, min 64): the size of a spike absorbed without
	// queueing.
	Burst int
	// MaxWait selects the backpressure shape: 0 sheds immediately with
	// ErrOverload; > 0 blocks up to MaxWait for a token, then sheds.
	MaxWait time.Duration
	// Tenants is the number of fairness lanes (default 1). Writers name
	// their lane through Engine.Writer(tenant); out-of-range tenants wrap.
	Tenants int
	// AdaptEvery is the governor cadence re-deriving the refill rate from
	// the drift monitors (default 50ms).
	AdaptEvery time.Duration
	// MinRateFrac floors the adaptive rate at this fraction of
	// MaxWriteRate (default 0.1), so full drift pressure throttles writes
	// hard but never to a standstill.
	MinRateFrac float64
	// LagRef normalizes the retrain-lag signal: a shard's ops-since-train
	// count is capped at LagRef and mapped to [0,1] (default the monitor
	// window, 8192). Smaller reacts faster to write bursts.
	LagRef int
}

func (p AdmissionPolicy) withDefaults() AdmissionPolicy {
	if p.Burst <= 0 {
		p.Burst = int(p.MaxWriteRate / 4)
		if p.Burst < 64 {
			p.Burst = 64
		}
	}
	if p.Tenants < 1 {
		p.Tenants = 1
	}
	if p.AdaptEvery <= 0 {
		p.AdaptEvery = 50 * time.Millisecond
	}
	if p.MinRateFrac <= 0 || p.MinRateFrac > 1 {
		p.MinRateFrac = 0.1
	}
	if p.LagRef <= 0 {
		p.LagRef = 8192
	}
	return p
}

// admission is the per-engine controller. All bucket state is guarded by
// mu; waits happen with mu released (see the lock-order rule in the package
// comment — admission never nests inside a gate stripe or shard lock).
type admission struct {
	e   *Engine
	pol AdmissionPolicy

	mu     sync.Mutex
	lanes  []float64 // per-tenant guaranteed tokens, cap Burst/Tenants
	shared float64   // spillover from full lanes, cap Burst
	rate   float64   // current adaptive total refill, writes/sec
	last   time.Time // last mint

	stop chan struct{}
	done chan struct{}

	// onShed (test seam) runs under mu at every shed decision with the
	// rejected lane's and the shared bucket's token counts — both are < 1
	// by construction, which the race suite asserts.
	onShed func(lane, shared float64)
}

// startAdmission attaches a controller to e per cfg. No-op when the policy
// is zero. Called once from New; the controller participates in monitor
// refcounting so the drift signal flows even with no retrainer running.
func (e *Engine) startAdmission(pol AdmissionPolicy) {
	if pol.MaxWriteRate <= 0 {
		return
	}
	pol = pol.withDefaults()
	a := &admission{
		e: e, pol: pol,
		lanes:  make([]float64, pol.Tenants),
		shared: 0,
		rate:   pol.MaxWriteRate,
		last:   time.Now(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Start full: the guaranteed lanes hold their caps and the remainder
	// of the burst sits in the shared bucket.
	laneCap := float64(pol.Burst) / float64(pol.Tenants)
	for i := range a.lanes {
		a.lanes[i] = laneCap
	}
	a.shared = float64(pol.Burst) - laneCap*float64(pol.Tenants)
	e.obs.AdmissionRate.SetFloat(a.rate)
	e.monOn.Add(1)
	e.adm = a
	go a.govern()
}

// stopAdmission halts the governor. Idempotent; called from Close.
func (e *Engine) stopAdmission() {
	a := e.adm
	if a == nil {
		return
	}
	e.adm = nil
	close(a.stop)
	<-a.done
	e.monOn.Add(-1)
}

// AdmissionTokens reports the current token counts of one tenant's lane and
// the shared bucket (diagnostics and tests; racy by nature).
func (e *Engine) AdmissionTokens(tenant int) (lane, shared float64) {
	a := e.adm
	if a == nil {
		return 0, 0
	}
	t := laneOf(tenant, a.pol.Tenants)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mintLocked(time.Now())
	return a.lanes[t], a.shared
}

func laneOf(tenant, lanes int) int {
	t := tenant % lanes
	if t < 0 {
		t += lanes
	}
	return t
}

// mintLocked accrues tokens for the time since the last mint: each lane
// earns rate/Tenants, overflow past the lane cap spills into the shared
// bucket, and the shared bucket itself is capped at Burst. Every token is
// minted exactly once, so admission per second never exceeds rate.
func (a *admission) mintLocked(now time.Time) {
	dt := now.Sub(a.last).Seconds()
	if dt <= 0 {
		return
	}
	a.last = now
	perLane := a.rate * dt / float64(a.pol.Tenants)
	laneCap := float64(a.pol.Burst) / float64(a.pol.Tenants)
	for i := range a.lanes {
		a.lanes[i] += perLane
		if a.lanes[i] > laneCap {
			a.shared += a.lanes[i] - laneCap
			a.lanes[i] = laneCap
		}
	}
	if a.shared > float64(a.pol.Burst) {
		a.shared = float64(a.pol.Burst)
	}
}

// admit gates one write for the given tenant. canShed false (Engine.Insert,
// whose signature has no error) waits indefinitely; canShed true resolves
// per the policy: immediate ErrOverload when MaxWait is zero, else a block
// bounded by MaxWait. Instrumentation: exactly one of admitted/shed per
// call, queued once for any call that waited, wait time observed for every
// waiter (admitted or shed).
func (e *Engine) admit(tenant int, canShed bool) error {
	a := e.adm
	if a == nil {
		return nil
	}
	t := laneOf(tenant, a.pol.Tenants)
	var queuedAt time.Time
	var deadline time.Time
	for {
		a.mu.Lock()
		now := time.Now()
		a.mintLocked(now)
		if a.lanes[t] >= 1 {
			a.lanes[t]--
			a.mu.Unlock()
			e.admitted(t, queuedAt, now)
			return nil
		}
		if a.shared >= 1 {
			a.shared--
			a.mu.Unlock()
			e.admitted(t, queuedAt, now)
			return nil
		}
		// No token anywhere. Shed or queue.
		if canShed && a.pol.MaxWait <= 0 {
			if a.onShed != nil {
				a.onShed(a.lanes[t], a.shared)
			}
			a.mu.Unlock()
			e.obs.AdmissionShed.Inc(t)
			return ErrOverload
		}
		if queuedAt.IsZero() {
			queuedAt = now
			deadline = now.Add(a.pol.MaxWait)
			e.obs.AdmissionQueued.Inc(t)
		}
		if canShed && !now.Before(deadline) {
			if a.onShed != nil {
				a.onShed(a.lanes[t], a.shared)
			}
			a.mu.Unlock()
			e.obs.AdmissionShed.Inc(t)
			e.obs.AdmissionWaitNs.Observe(t, now.Sub(queuedAt).Nanoseconds())
			return ErrOverload
		}
		// Estimate the wait for this lane's next guaranteed token; the
		// shared bucket may refill sooner (spill from idle lanes), so the
		// sleep is clamped short and the loop re-checks.
		laneRate := a.rate / float64(a.pol.Tenants)
		a.mu.Unlock()
		wait := time.Duration(float64(time.Second) / laneRate)
		if wait > 2*time.Millisecond {
			wait = 2 * time.Millisecond
		}
		if wait < 50*time.Microsecond {
			wait = 50 * time.Microsecond
		}
		if canShed {
			if left := time.Until(deadline); left < wait {
				wait = left
			}
			if wait <= 0 {
				wait = time.Microsecond
			}
		}
		select {
		case <-a.stop:
			// Engine closing: stop blocking writers. Admit rather than
			// shed — the invariantly-counted paths stay balanced and the
			// write proceeds to fail (or not) on its own merits.
			e.admitted(t, queuedAt, time.Now())
			return nil
		case <-time.After(wait):
		}
	}
}

// admitted records the admit-side instrumentation.
func (e *Engine) admitted(lane int, queuedAt, now time.Time) {
	e.obs.AdmissionAdmitted.Inc(lane)
	if !queuedAt.IsZero() {
		e.obs.AdmissionWaitNs.Observe(lane, now.Sub(queuedAt).Nanoseconds())
	}
}

// govern is the background governor: every AdaptEvery it folds the drift
// monitors into a pressure score and re-derives the refill rate.
//
//	pressure = max over shards of drift · min(1, sinceTrain/LagRef)
//	rate     = MaxWriteRate · (1 − (1 − MinRateFrac) · pressure)
//
// Drift alone (a shifted read mix the layouts already absorbed) does not
// throttle until a backlog of untrained operations corroborates it, and a
// backlog of well-predicted operations (no drift) costs nothing — only the
// combination "access pattern moved AND retraining is behind" squeezes the
// write rate.
func (a *admission) govern() {
	defer close(a.done)
	tick := time.NewTicker(a.pol.AdaptEvery)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			var pressure float64
			for _, s := range a.e.shards {
				since, drift := s.mon.stats()
				lag := float64(since) / float64(a.pol.LagRef)
				if lag > 1 {
					lag = 1
				}
				if p := drift * lag; p > pressure {
					pressure = p
				}
			}
			rate := a.pol.MaxWriteRate * (1 - (1-a.pol.MinRateFrac)*pressure)
			a.mu.Lock()
			// Settle accrual at the old rate before switching.
			a.mintLocked(time.Now())
			a.rate = rate
			a.mu.Unlock()
			a.e.obs.AdmissionRate.SetFloat(rate)
		}
	}
}

// Writer is a tenant-scoped write handle: every write submitted through it
// passes admission as that tenant's lane and surfaces ErrOverload per the
// engine's AdmissionPolicy. On an engine without admission control it is a
// zero-cost veneer over the plain write methods (Insert additionally
// reporting the mutate error the errorless Engine.Insert swallows).
type Writer struct {
	e      *Engine
	tenant int
}

// Writer returns a write handle bound to the given tenant lane.
func (e *Engine) Writer(tenant int) *Writer { return &Writer{e: e, tenant: tenant} }

// Insert adds a row (Q4) through admission; unlike Engine.Insert it can
// shed with ErrOverload and it returns the write path's error.
func (w *Writer) Insert(key int64) error {
	if err := w.e.admit(w.tenant, true); err != nil {
		return err
	}
	return w.e.insertAdmitted(key)
}

// Delete removes one row (Q5) through admission as this writer's tenant.
func (w *Writer) Delete(key int64) error {
	if err := w.e.admit(w.tenant, true); err != nil {
		return err
	}
	return w.e.deleteAdmitted(key)
}

// UpdateKey changes one row's key (Q6) through admission as this writer's
// tenant.
func (w *Writer) UpdateKey(old, new int64) error {
	if err := w.e.admit(w.tenant, true); err != nil {
		return err
	}
	return w.e.updateKeyAdmitted(old, new)
}
