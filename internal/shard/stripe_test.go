package shard_test

// Equivalence suite for the striped move gate, meant for
// `go test -race ./internal/shard/`: the striped gate must preserve the
// old global-gate read semantics — View-pinned readers observe every
// ping-ponging row exactly once and a constant row count while cross-shard
// moves and rebalance boundary installs hammer the fleet — plus fan-out
// pool regressions at GOMAXPROCS=1 (sequential fallback) and many
// (bounded, reused workers).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"casper/internal/shard"
)

// stripeEngine builds a range-partitioned 8-shard engine over keys
// 0,4,...,4*(n-1) (the race suite's ≡0 mod 4 discipline).
func stripeEngine(t *testing.T, n int) (*shard.Engine, int64) {
	t.Helper()
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = 4 * int64(i)
	}
	cfg := oracleConfig()
	cfg.ChunkValues = 1_024
	e, err := shard.New(keys, shard.Config{Shards: 8, ByRange: true, Table: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e, keys[len(keys)-1]
}

// TestStripedGateEquivalence pins the striped gate to the old global-gate
// semantics: while cross-shard movers ping-pong rows between the fleet's
// ends and a rebalancer flip-flops the boundary set (all-stripe installs),
// View-pinned readers must see each moving row on exactly one of its two
// keys and a constant total row count, and gate-protected Chunks calls must
// never observe a mid-install state (they would crash or miscount tables
// being reseeded inside the publish window).
func TestStripedGateEquivalence(t *testing.T) {
	const (
		rows      = 4_096
		movers    = 4
		moveIters = 150
		installs  = 12
	)
	e, maxKey := stripeEngine(t, rows)

	// Each mover owns one row ping-ponging between a low key (shard 0) and
	// a high key (last shard) under every boundary set used below; both
	// keys are ≡ 2 (mod 4), disjoint from the resident rows.
	lowKey := func(w int) int64 { return int64(2 + 8*w) }
	highKey := func(w int) int64 { return maxKey - int64(2+8*w) } // ≡ 2 (mod 4)
	for w := 0; w < movers; w++ {
		e.Insert(lowKey(w))
	}
	total := rows + movers

	// Two boundary sets shifted against each other so every install changes
	// ownership somewhere; both keep lowKey/highKey on different shards.
	span := maxKey + 1
	boundsA := make([]int64, 7)
	boundsB := make([]int64, 7)
	for i := range boundsA {
		boundsA[i] = span * int64(i+1) / 8
		boundsB[i] = boundsA[i] - span/16
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, movers+2)

	for w := 0; w < movers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := lowKey(w), highKey(w)
			for i := 0; i < moveIters; i++ {
				if err := e.UpdateKey(a, b); err != nil {
					errs <- err
					return
				}
				if err := e.UpdateKey(b, a); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < installs; i++ {
			bounds := boundsA
			if i%2 == 1 {
				bounds = boundsB
			}
			if _, err := e.RebalanceTo(bounds); err != nil {
				errs <- err
				return
			}
		}
	}()

	// View-pinned readers: the move-atomicity invariants of the old global
	// gate, checked against a frozen snapshot.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e.View(func(v *shard.View) {
					for w := 0; w < movers; w++ {
						n := v.PointQuery(lowKey(w)) + v.PointQuery(highKey(w))
						if n != 1 {
							t.Errorf("view: mover %d visible %d times, want exactly 1", w, n)
						}
					}
					if got := v.Len(); got != total {
						t.Errorf("view: Len = %d, want %d (move-only traffic)", got, total)
					}
				})
				if got := e.Chunks(); got <= 0 {
					t.Errorf("Chunks = %d during rebalance, want > 0", got)
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := e.Len(); got != total {
		t.Fatalf("final Len = %d, want %d", got, total)
	}
	for w := 0; w < movers; w++ {
		if n := e.PointQuery(lowKey(w)) + e.PointQuery(highKey(w)); n != 1 {
			t.Errorf("final: mover %d visible %d times, want 1", w, n)
		}
	}
}

// fanOutSums drives range reads spanning every shard and checks them
// against the closed-form sum of the resident keys 0,4,...,4*(n-1).
func fanOutSums(t *testing.T, e *shard.Engine, n int, maxKey int64) {
	t.Helper()
	want := int64(n) * int64(n-1) * 2 // Σ 4i, i<n
	for i := 0; i < 50; i++ {
		if got := e.RangeSum(0, maxKey); got != want {
			t.Fatalf("RangeSum = %d, want %d", got, want)
		}
		if got := e.RangeCount(0, maxKey); got != n {
			t.Fatalf("RangeCount = %d, want %d", got, n)
		}
	}
}

// TestFanOutPoolSequentialFallback regresses the single-CPU fast path: an
// engine built at GOMAXPROCS=1 must serve fan-out reads correctly with an
// empty pool (pure sequential merge, no worker goroutines).
func TestFanOutPoolSequentialFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	const n = 2_048
	e, maxKey := stripeEngine(t, n) // pool sized at construction: 1
	before := runtime.NumGoroutine()
	fanOutSums(t, e, n, maxKey)
	if grew := runtime.NumGoroutine() - before; grew > 0 {
		t.Errorf("sequential fallback spawned %d goroutines, want 0", grew)
	}
}

// TestFanOutPoolBounded regresses pool reuse at many CPUs: fan-out must
// keep returning correct sums while the goroutine count stays bounded by
// the pool size — not one spawn per shard per query.
func TestFanOutPoolBounded(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	const n = 2_048
	e, maxKey := stripeEngine(t, n) // pool sized at construction: 8
	before := runtime.NumGoroutine()
	fanOutSums(t, e, n, maxKey)
	// 50 queries × 8 shards would be 400 spawns unpooled; the pool parks
	// at most its fixed worker set.
	if grew := runtime.NumGoroutine() - before; grew > 8 {
		t.Errorf("goroutine count grew by %d across 50 fan-outs, want <= pool size 8", grew)
	}
}
