package shard

import (
	"math"
	"sort"
)

// Partitioner routes keys to shards.
type Partitioner interface {
	// Shard returns the ordinal of the shard owning key. Every occurrence
	// of a key (duplicates included) must route to the same shard.
	Shard(key int64) int
	// Span returns the inclusive shard interval [a, b] that a key range
	// [lo, hi] can touch.
	Span(lo, hi int64) (int, int)
	// Shards returns the shard count.
	Shards() int
}

// HashPartitioner spreads keys across shards by a Fibonacci multiplicative
// hash. It is robust to key skew — a hot key range fans out over the whole
// fleet — at the price of range queries touching every shard.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner builds a hash partitioner over n shards.
func NewHashPartitioner(n int) *HashPartitioner {
	if n < 1 {
		n = 1
	}
	return &HashPartitioner{n: n}
}

// fibMix is 2^64 / phi, the Fibonacci hashing multiplier.
const fibMix = 0x9e3779b97f4a7c15

// Shard implements Partitioner.
func (p *HashPartitioner) Shard(key int64) int {
	h := uint64(key) * fibMix
	h ^= h >> 29
	return int(h % uint64(p.n))
}

// Span implements Partitioner: a hash-partitioned range touches every shard.
func (p *HashPartitioner) Span(lo, hi int64) (int, int) { return 0, p.n - 1 }

// Shards implements Partitioner.
func (p *HashPartitioner) Shards() int { return p.n }

// RangePartitioner splits the key domain at fixed boundaries, so range
// queries touch only the shards overlapping the range. Boundaries are
// typically quantiles of the initial key set (see NewRangePartitioner).
type RangePartitioner struct {
	// bounds[i] is the smallest key owned by shard i+1; len(bounds) is
	// one less than the shard count.
	bounds []int64
}

// NewRangePartitioner builds a range partitioner with n shards whose
// boundaries are the n-quantiles of keys (any order), so the initial load
// balances evenly even under skewed key distributions.
func NewRangePartitioner(keys []int64, n int) *RangePartitioner {
	if n < 1 {
		n = 1
	}
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var bounds []int64
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		b := sorted[idx]
		// Boundaries must be strictly increasing or duplicate keys could
		// straddle shards; collapse ties rather than split a key.
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return &RangePartitioner{bounds: bounds}
}

// RangePartitionerFromBounds rebuilds a range partitioner from boundaries
// previously captured with Bounds — the recovery path, where the boundaries
// come from the durable manifest (or a checkpoint / WAL boundary record)
// rather than from the initial key set. The input is sanitized defensively:
// Shard's binary search requires strictly increasing boundaries, and a
// corrupted or adversarial bounds set that is unsorted or holds duplicates
// would otherwise misroute keys silently. Sanitizing may shrink the set;
// callers that require an exact shard count must validate the length of
// Bounds() after the round trip.
func RangePartitionerFromBounds(bounds []int64) *RangePartitioner {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:0]
	for _, v := range b {
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return &RangePartitioner{bounds: out}
}

// Bounds returns the partitioner's shard boundaries (bounds[i] is the
// smallest key owned by shard i+1), for persistence in a durable manifest.
func (p *RangePartitioner) Bounds() []int64 {
	return append([]int64(nil), p.bounds...)
}

// Shard implements Partitioner: the number of boundaries ≤ key.
func (p *RangePartitioner) Shard(key int64) int {
	return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > key })
}

// Span implements Partitioner.
func (p *RangePartitioner) Span(lo, hi int64) (int, int) {
	if hi < lo {
		lo, hi = hi, lo
	}
	return p.Shard(lo), p.Shard(hi)
}

// Shards implements Partitioner.
func (p *RangePartitioner) Shards() int { return len(p.bounds) + 1 }

// proposeBounds returns exactly n-1 strictly increasing boundaries whose
// quantile split balances keys (any order) across n shards — the rebalance
// proposal. Unlike NewRangePartitioner, which collapses ties and may return
// a partitioner with fewer shards, a rebalance must preserve the engine's
// shard count, so when keys has too few distinct values the quantile bounds
// are padded with synthetic boundaries (the extra shards own empty ranges).
func proposeBounds(keys []int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var bounds []int64
	for i := 1; i < n && len(sorted) > 0; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		b := sorted[idx]
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return padBounds(bounds, n)
}

// ProposeMinimalBounds is the minimal-movement rebalance proposer: instead
// of re-splitting every boundary on the global quantiles (proposeBounds), it
// computes per-shard occupancy under oldBounds, identifies only the shards
// breaching the skew bound, and re-splits each repair region — a breaching
// shard plus the lighter neighbors absorbing its load — on the region's own
// quantiles, leaving every boundary outside the regions bit-identical.
// Migration volume and the publish-window straggler rescan then scale with
// the drift that actually occurred, not with the table size.
//
// Guarantees, for any input (the fuzz wall's invariants):
//
//   - exactly len(oldBounds) strictly increasing boundaries are returned;
//   - boundaries not interior to a repair region are returned unchanged;
//   - the proposal never worsens the max shard occupancy: if a region's keys
//     are too duplicate-heavy (or its key interval too narrow) to split any
//     better, oldBounds is returned verbatim and the rebalance degenerates
//     to a movement-free no-op.
//
// maxSkew is the max/mean row-count ratio that marks a shard as breaching;
// values that are NaN or <= 1 select the default (defaultMaxSkew).
func ProposeMinimalBounds(keys []int64, oldBounds []int64, maxSkew float64) []int64 {
	out := append([]int64(nil), oldBounds...)
	n := len(oldBounds) + 1
	if n == 1 || len(keys) == 0 {
		return out
	}
	for i := 1; i < len(oldBounds); i++ {
		if oldBounds[i] <= oldBounds[i-1] {
			return out // corrupt boundary set; never amplify it
		}
	}
	maxSkew = effectiveMaxSkew(maxSkew)
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	counts := countPerShard(sorted, oldBounds)
	regions := repairRegions(counts, maxSkew)
	if len(regions) == 0 {
		return out
	}
	changed := false
	for _, r := range regions {
		a, b := r[0], r[1]
		// The region's outer boundaries are fixed; its inner boundaries must
		// stay strictly inside them. At the fleet edges the key domain itself
		// is the only limit.
		loIdx, hiIdx := 0, len(sorted)
		loLim, hiLim := int64(math.MinInt64), int64(math.MaxInt64)
		if a > 0 {
			if oldBounds[a-1] == math.MaxInt64 {
				continue // no key space above the fixed lower boundary
			}
			loLim = oldBounds[a-1] + 1
			loIdx = sort.Search(len(sorted), func(j int) bool { return sorted[j] >= oldBounds[a-1] })
		}
		if b < n-1 {
			if oldBounds[b] == math.MinInt64 {
				continue // no key space below the fixed upper boundary
			}
			hiLim = oldBounds[b] - 1
			hiIdx = sort.Search(len(sorted), func(j int) bool { return sorted[j] >= oldBounds[b] })
		}
		rb := regionBounds(sorted[loIdx:hiIdx], b-a+1, loLim, hiLim)
		if rb == nil {
			continue // interval cannot hold the inner boundaries; leave as is
		}
		copy(out[a:b], rb)
		changed = true
	}
	if !changed {
		return out
	}
	// Install only a strict improvement: a duplicate-heavy region can defeat
	// any re-split, and skew is max/mean — a proposal that does not lower
	// the max occupancy would migrate rows for zero skew gain (or worse).
	if maxCount(countPerShard(sorted, out)) >= maxCount(counts) {
		return append([]int64(nil), oldBounds...)
	}
	return out
}

// effectiveMaxSkew guards nonsense skew thresholds (NaN, <= 1) back to the
// package default.
func effectiveMaxSkew(maxSkew float64) float64 {
	if !(maxSkew > 1) {
		return defaultMaxSkew
	}
	return maxSkew
}

// countPerShard returns the per-shard occupancy of sorted keys under bounds.
func countPerShard(sorted []int64, bounds []int64) []int {
	counts := make([]int, len(bounds)+1)
	prev := 0
	for i, b := range bounds {
		idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= b })
		counts[i] = idx - prev
		prev = idx
	}
	counts[len(bounds)] = len(sorted) - prev
	return counts
}

func maxCount(counts []int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// repairRegions identifies the contiguous shard runs a minimal rebalance must
// re-split: every shard whose occupancy breaches the skew bound (count/mean
// >= maxSkew), expanded over its lighter neighbor shard by shard until the
// region's mean occupancy fits under the repair target — 90% of the breach
// threshold, floored at the fleet mean so the expansion terminates (at the
// whole fleet, degenerating to a full re-split) when the drift simply
// outgrew the fleet. Overlapping regions merge. Returns nil when no shard
// breaches: the no-breach fleet proposes no movement at all.
func repairRegions(counts []int, maxSkew float64) [][2]int {
	n := len(counts)
	total := 0
	for _, c := range counts {
		total += c
	}
	if n < 2 || total == 0 {
		return nil
	}
	mean := float64(total) / float64(n)
	breachAt := maxSkew * mean
	target := 0.9 * breachAt
	if target < mean {
		target = mean
	}
	var regions [][2]int
	for i := 0; i < n; i++ {
		if float64(counts[i]) < breachAt {
			continue
		}
		a, b, sum := i, i, counts[i]
		for float64(sum) > target*float64(b-a+1) && (a > 0 || b < n-1) {
			switch {
			case a == 0:
				b++
				sum += counts[b]
			case b == n-1:
				a--
				sum += counts[a]
			case counts[a-1] <= counts[b+1]:
				a-- // merge the starved left neighbor
				sum += counts[a]
			default:
				b++ // merge the starved right neighbor
				sum += counts[b]
			}
		}
		if len(regions) > 0 && a <= regions[len(regions)-1][1] {
			regions[len(regions)-1][1] = b
		} else {
			regions = append(regions, [2]int{a, b})
		}
		i = b
	}
	return regions
}

// regionBounds proposes the size-1 strictly increasing inner boundaries of
// one repair region from the region's sorted keys, every boundary confined
// to [loLim, hiLim] (the values strictly between the region's fixed outer
// boundaries). Returns nil when the interval cannot hold size-1 distinct
// values — the caller leaves the region unchanged rather than emit an
// invalid bounds vector.
func regionBounds(sortedKeys []int64, size int, loLim, hiLim int64) []int64 {
	need := size - 1
	if need <= 0 {
		return []int64{}
	}
	if loLim > hiLim || uint64(hiLim)-uint64(loLim) < uint64(need-1) {
		return nil
	}
	var bounds []int64
	for i := 1; i <= need && len(sortedKeys) > 0; i++ {
		idx := i * len(sortedKeys) / size
		if idx >= len(sortedKeys) {
			idx = len(sortedKeys) - 1
		}
		b := sortedKeys[idx]
		if b < loLim {
			b = loLim
		}
		if b > hiLim {
			b = hiLim
		}
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return padBoundsWithin(bounds, need, loLim, hiLim)
}

// padBoundsWithin extends a strictly increasing boundary set already inside
// [loLim, hiLim] to exactly need entries without leaving the interval —
// padBounds with walls. The caller has verified the interval's capacity, so
// the only nil return is the unreachable exhausted-interval case.
func padBoundsWithin(bounds []int64, need int, loLim, hiLim int64) []int64 {
	for len(bounds) < need {
		switch {
		case len(bounds) == 0:
			bounds = append(bounds, loLim)
		case bounds[len(bounds)-1] < hiLim:
			bounds = append(bounds, bounds[len(bounds)-1]+1)
		case bounds[0] > loLim:
			bounds = append([]int64{bounds[0] - 1}, bounds...)
		default:
			inserted := false
			for i := 0; i+1 < len(bounds); i++ {
				if bounds[i+1] > bounds[i]+1 {
					bounds = append(bounds[:i+1], append([]int64{bounds[i] + 1}, bounds[i+1:]...)...)
					inserted = true
					break
				}
			}
			if !inserted {
				return nil
			}
		}
	}
	return bounds
}

// keyInterval is one inclusive key range whose owning shard changes across a
// boundary install, tagged with the owners before (from) and after (to).
type keyInterval struct {
	lo, hi   int64
	from, to int
}

// ownershipDelta computes the interval diff between two boundary sets: the
// inclusive key ranges whose owner differs between the partitioners built
// from oldBounds and newBounds, ascending, adjacent same-owner intervals
// merged. The rebalance protocol plans its whole migration from these
// intervals — rows outside them keep their owner by construction, so neither
// the staging scan nor the publish-window straggler rescan ever visits them,
// and a boundary left bit-identical by the proposer contributes nothing.
// An empty diff (equal bounds, or a single-shard engine with no bounds at
// all) yields nil: the rebalance is a no-op.
func ownershipDelta(oldBounds, newBounds []int64) []keyInterval {
	oldPart := RangePartitionerFromBounds(oldBounds)
	newPart := RangePartitionerFromBounds(newBounds)
	// Between consecutive breakpoints (the union of both boundary sets) both
	// owners are constant, so sampling each interval's low end suffices.
	merged := append(oldPart.Bounds(), newPart.Bounds()...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	var out []keyInterval
	emit := func(lo, hi int64) {
		f, t := oldPart.Shard(lo), newPart.Shard(lo)
		if f == t {
			return
		}
		if len(out) > 0 {
			if last := &out[len(out)-1]; last.from == f && last.to == t && last.hi+1 == lo {
				last.hi = hi
				return
			}
		}
		out = append(out, keyInterval{lo: lo, hi: hi, from: f, to: t})
	}
	prev := int64(math.MinInt64)
	for i, bp := range merged {
		if i > 0 && bp == merged[i-1] {
			continue
		}
		if bp == math.MinInt64 {
			continue // the interval below the breakpoint is empty
		}
		emit(prev, bp-1)
		prev = bp
	}
	emit(prev, math.MaxInt64)
	return out
}

// padBounds extends a strictly increasing boundary set to exactly n-1
// entries, preferring successors past the current maximum, then predecessors
// below the current minimum, then interior gaps — total for every input the
// int64 domain can accommodate (n-1 distinct values always fit).
func padBounds(bounds []int64, n int) []int64 {
	need := n - 1
	for len(bounds) < need {
		if len(bounds) == 0 {
			bounds = append(bounds, 0)
			continue
		}
		if last := bounds[len(bounds)-1]; last < math.MaxInt64 {
			bounds = append(bounds, last+1)
			continue
		}
		if first := bounds[0]; first > math.MinInt64 {
			bounds = append([]int64{first - 1}, bounds...)
			continue
		}
		// Both extremes taken: split the first interior gap. bounds[i]+1
		// cannot overflow because bounds[i] < bounds[i+1].
		inserted := false
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i+1] > bounds[i]+1 {
				bounds = append(bounds[:i+1], append([]int64{bounds[i] + 1}, bounds[i+1:]...)...)
				inserted = true
				break
			}
		}
		if !inserted {
			break // the whole int64 domain is a boundary; nothing left to add
		}
	}
	return bounds
}
