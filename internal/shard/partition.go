package shard

import (
	"math"
	"sort"
)

// Partitioner routes keys to shards.
type Partitioner interface {
	// Shard returns the ordinal of the shard owning key. Every occurrence
	// of a key (duplicates included) must route to the same shard.
	Shard(key int64) int
	// Span returns the inclusive shard interval [a, b] that a key range
	// [lo, hi] can touch.
	Span(lo, hi int64) (int, int)
	// Shards returns the shard count.
	Shards() int
}

// HashPartitioner spreads keys across shards by a Fibonacci multiplicative
// hash. It is robust to key skew — a hot key range fans out over the whole
// fleet — at the price of range queries touching every shard.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner builds a hash partitioner over n shards.
func NewHashPartitioner(n int) *HashPartitioner {
	if n < 1 {
		n = 1
	}
	return &HashPartitioner{n: n}
}

// fibMix is 2^64 / phi, the Fibonacci hashing multiplier.
const fibMix = 0x9e3779b97f4a7c15

// Shard implements Partitioner.
func (p *HashPartitioner) Shard(key int64) int {
	h := uint64(key) * fibMix
	h ^= h >> 29
	return int(h % uint64(p.n))
}

// Span implements Partitioner: a hash-partitioned range touches every shard.
func (p *HashPartitioner) Span(lo, hi int64) (int, int) { return 0, p.n - 1 }

// Shards implements Partitioner.
func (p *HashPartitioner) Shards() int { return p.n }

// RangePartitioner splits the key domain at fixed boundaries, so range
// queries touch only the shards overlapping the range. Boundaries are
// typically quantiles of the initial key set (see NewRangePartitioner).
type RangePartitioner struct {
	// bounds[i] is the smallest key owned by shard i+1; len(bounds) is
	// one less than the shard count.
	bounds []int64
}

// NewRangePartitioner builds a range partitioner with n shards whose
// boundaries are the n-quantiles of keys (any order), so the initial load
// balances evenly even under skewed key distributions.
func NewRangePartitioner(keys []int64, n int) *RangePartitioner {
	if n < 1 {
		n = 1
	}
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var bounds []int64
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		b := sorted[idx]
		// Boundaries must be strictly increasing or duplicate keys could
		// straddle shards; collapse ties rather than split a key.
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return &RangePartitioner{bounds: bounds}
}

// RangePartitionerFromBounds rebuilds a range partitioner from boundaries
// previously captured with Bounds — the recovery path, where the boundaries
// come from the durable manifest (or a checkpoint / WAL boundary record)
// rather than from the initial key set. The input is sanitized defensively:
// Shard's binary search requires strictly increasing boundaries, and a
// corrupted or adversarial bounds set that is unsorted or holds duplicates
// would otherwise misroute keys silently. Sanitizing may shrink the set;
// callers that require an exact shard count must validate the length of
// Bounds() after the round trip.
func RangePartitionerFromBounds(bounds []int64) *RangePartitioner {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:0]
	for _, v := range b {
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return &RangePartitioner{bounds: out}
}

// Bounds returns the partitioner's shard boundaries (bounds[i] is the
// smallest key owned by shard i+1), for persistence in a durable manifest.
func (p *RangePartitioner) Bounds() []int64 {
	return append([]int64(nil), p.bounds...)
}

// Shard implements Partitioner: the number of boundaries ≤ key.
func (p *RangePartitioner) Shard(key int64) int {
	return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > key })
}

// Span implements Partitioner.
func (p *RangePartitioner) Span(lo, hi int64) (int, int) {
	if hi < lo {
		lo, hi = hi, lo
	}
	return p.Shard(lo), p.Shard(hi)
}

// Shards implements Partitioner.
func (p *RangePartitioner) Shards() int { return len(p.bounds) + 1 }

// proposeBounds returns exactly n-1 strictly increasing boundaries whose
// quantile split balances keys (any order) across n shards — the rebalance
// proposal. Unlike NewRangePartitioner, which collapses ties and may return
// a partitioner with fewer shards, a rebalance must preserve the engine's
// shard count, so when keys has too few distinct values the quantile bounds
// are padded with synthetic boundaries (the extra shards own empty ranges).
func proposeBounds(keys []int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var bounds []int64
	for i := 1; i < n && len(sorted) > 0; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		b := sorted[idx]
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return padBounds(bounds, n)
}

// padBounds extends a strictly increasing boundary set to exactly n-1
// entries, preferring successors past the current maximum, then predecessors
// below the current minimum, then interior gaps — total for every input the
// int64 domain can accommodate (n-1 distinct values always fit).
func padBounds(bounds []int64, n int) []int64 {
	need := n - 1
	for len(bounds) < need {
		if len(bounds) == 0 {
			bounds = append(bounds, 0)
			continue
		}
		if last := bounds[len(bounds)-1]; last < math.MaxInt64 {
			bounds = append(bounds, last+1)
			continue
		}
		if first := bounds[0]; first > math.MinInt64 {
			bounds = append([]int64{first - 1}, bounds...)
			continue
		}
		// Both extremes taken: split the first interior gap. bounds[i]+1
		// cannot overflow because bounds[i] < bounds[i+1].
		inserted := false
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i+1] > bounds[i]+1 {
				bounds = append(bounds[:i+1], append([]int64{bounds[i] + 1}, bounds[i+1:]...)...)
				inserted = true
				break
			}
		}
		if !inserted {
			break // the whole int64 domain is a boundary; nothing left to add
		}
	}
	return bounds
}
