package shard_test

// Concurrency suite, meant for `go test -race ./internal/shard/`: hammers
// ApplyBatch writers, fan-out range readers, and shadow retraining against
// one engine simultaneously, asserting no torn reads — every key observed is
// one that was inserted.
//
// Key-space discipline makes the invariants checkable under concurrency:
//
//	initial keys  ≡ 0 (mod 4)
//	writer keys   ≡ 2 (mod 4), disjoint per writer
//	probe keys    odd — never inserted, must never be observed
//
// Every live key is even, so any RangeSum the readers observe must be even;
// an odd sum or a non-zero odd-key PointQuery is a torn read.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"casper/internal/shard"
	"casper/internal/workload"
)

const (
	raceWriters      = 4
	raceBatches      = 30
	raceBatchOps     = 64
	raceInitialRows  = 4_096
	raceReaderProbes = 64
)

func raceEngine(t *testing.T) (*shard.Engine, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	keys := make([]int64, raceInitialRows)
	for i := range keys {
		keys[i] = 4 * rng.Int63n(100_000) // ≡ 0 (mod 4)
	}
	cfg := oracleConfig()
	cfg.ChunkValues = 1_024
	e, err := shard.New(keys, shard.Config{Shards: 8, Table: cfg, MonitorCap: 4_096})
	if err != nil {
		t.Fatal(err)
	}
	return e, keys
}

// writerKey returns writer w's j-th private key: ≡ 2 (mod 4), disjoint
// across writers.
func writerKey(w, j int) int64 {
	return 2 + 4*int64(w*raceBatches*raceBatchOps+j)
}

func TestConcurrentBatchesReadsAndRetraining(t *testing.T) {
	e, keys := raceEngine(t)

	// Aggressive background retraining: tiny windows, any drift triggers.
	if err := e.StartAutoRetrain(shard.RetrainPolicy{
		CheckEvery:  2 * time.Millisecond,
		MinOps:      64,
		MaxDrift:    0.01,
		Parallelism: 1,
	}); err != nil {
		t.Fatal(err)
	}
	defer e.StopAutoRetrain()

	sample, err := workload.Preset(workload.HybridSkewed, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampleOps, err := workload.Generate(keys, 400_000, sample)
	if err != nil {
		t.Fatal(err)
	}

	var (
		writers sync.WaitGroup
		readers sync.WaitGroup
		stop    atomic.Bool
		torn    atomic.Int64
		probes  atomic.Int64
	)

	// Writers: ApplyBatch waves over private even key spaces. Each writer
	// inserts its keys, then deletes every third one, so the final
	// per-key state is deterministic.
	for w := 0; w < raceWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for b := 0; b < raceBatches; b++ {
				batch := make([]workload.Op, 0, raceBatchOps)
				for j := 0; j < raceBatchOps; j++ {
					k := writerKey(w, b*raceBatchOps+j)
					batch = append(batch, workload.Op{Kind: workload.Q4Insert, Key: k})
					if j%3 == 0 {
						batch = append(batch, workload.Op{Kind: workload.Q5Delete, Key: k})
					}
				}
				e.ApplyBatch(batch)
			}
		}(w)
	}

	// Readers: fan-out range scans plus phantom probes on odd keys.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !stop.Load() {
				lo := rng.Int63n(300_000)
				hi := lo + rng.Int63n(100_000)
				if sum := e.RangeSum(lo, hi); sum%2 != 0 {
					torn.Add(1)
					t.Errorf("odd RangeSum(%d,%d) = %d: torn read of a key", lo, hi, sum)
					return
				}
				for i := 0; i < raceReaderProbes; i++ {
					odd := 2*rng.Int63n(400_000) + 1
					if n := e.PointQuery(odd); n != 0 {
						torn.Add(1)
						t.Errorf("phantom key %d observed %d times", odd, n)
						return
					}
					if _, ok := e.Payload(odd, 0); ok {
						torn.Add(1)
						t.Errorf("phantom payload for key %d", odd)
						return
					}
					probes.Add(1)
				}
			}
		}(r)
	}

	// Foreground retrain pressure: deterministic shadow swaps while the
	// batches and readers run (the ticker-driven worker races too, but
	// these are guaranteed to exercise the journal/swap path).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for round := 0; round < 3; round++ {
			for i := 0; i < e.Shards(); i++ {
				// Serializes behind the ticker-driven worker when it got
				// to the shard first.
				_ = e.RetrainShard(i, sampleOps, 1)
			}
		}
	}()

	// Quiesce: writers drain first, then the readers are released.
	writers.Wait()
	stop.Store(true)
	readers.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d torn reads", torn.Load())
	}
	if probes.Load() == 0 {
		t.Error("readers made no probes")
	}

	// Deterministic final state: every writer key j with j%3 != 0 within
	// its batch survives exactly once, j%3 == 0 was deleted.
	for w := 0; w < raceWriters; w++ {
		for b := 0; b < raceBatches; b++ {
			for j := 0; j < raceBatchOps; j += 7 {
				k := writerKey(w, b*raceBatchOps+j)
				want := 1
				if j%3 == 0 {
					want = 0
				}
				if got := e.PointQuery(k); got != want {
					t.Fatalf("writer %d key %d: count %d, want %d", w, k, got, want)
				}
			}
		}
	}
}

// TestJournalOrderWithDependentWrites regresses the shadow-retrain journal
// ordering guarantee: writer A's UpdateKey(k→k2) creates the row writer B's
// Delete(k2) removes, while the shard's layout is being retrained. If the
// journal recorded the two mutations in a different order than they applied
// to the live table, the replay onto the shadow would silently drop the
// delete and the swap would resurrect k2.
func TestJournalOrderWithDependentWrites(t *testing.T) {
	e, keys := raceEngine(t)
	part := e.Partitioner()

	// Two fresh keys owned by the same shard, clear of the initial keys.
	k := int64(1_000_000)
	k2 := int64(2_000_000)
	for part.Shard(k2) != part.Shard(k) {
		k2 += 2
	}
	owner := part.Shard(k)

	sample, err := workload.Preset(workload.HybridSkewed, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampleOps, err := workload.Generate(keys, 400_000, sample)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 50; round++ {
		e.Insert(k)
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			_ = e.RetrainShard(owner, sampleOps, 1)
		}()
		go func() {
			defer wg.Done()
			for e.UpdateKey(k, k2) != nil {
			}
		}()
		go func() {
			defer wg.Done()
			// Spins until the update has materialized k2, then removes it:
			// this delete depends on the update having applied first.
			for e.Delete(k2) != nil {
			}
		}()
		wg.Wait()
		if n := e.PointQuery(k2); n != 0 {
			t.Fatalf("round %d: key %d resurrected by shadow swap (count %d)", round, k2, n)
		}
		if n := e.PointQuery(k); n != 0 {
			t.Fatalf("round %d: key %d still present after update (count %d)", round, k, n)
		}
	}
}

// TestCrossShardMoveAtomicVisibility is the acceptance regression for the
// epoch-based cross-shard commit protocol: one resident row is moved back
// and forth between two shards while readers assert — under a pinned View —
// that it is visible at exactly one of the two keys at all times, with its
// payload intact, and while shadow retrains of both involved shards are in
// flight (the epoch-replay path). Before the protocol, the take+insert gap
// made readers observe the row on neither shard ("0" windows).
func TestCrossShardMoveAtomicVisibility(t *testing.T) {
	e, keys := raceEngine(t)
	part := e.Partitioner()

	// A fresh odd key pair on different shards (initial keys are ≡ 0 mod 4).
	a := int64(1_000_001)
	b := a + 2
	for part.Shard(b) == part.Shard(a) {
		b += 2
	}
	e.Insert(a)
	wantPayload := int32(a) + 1 // DefaultPayload(a, 1); travels with the row

	sample, err := workload.Preset(workload.HybridSkewed, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampleOps, err := workload.Generate(keys, 400_000, sample)
	if err != nil {
		t.Fatal(err)
	}

	var (
		movers   sync.WaitGroup
		retrains sync.WaitGroup
		readers  sync.WaitGroup
		started  sync.WaitGroup // one Done per reader's first iteration
		stop     atomic.Bool
		torn     atomic.Int64
		views    atomic.Int64
	)

	// Readers: multi-query invariants under a pinned View, plus a one-call
	// fan-out probe (RangeCount spans both shards inside a single query).
	// They run until the bounded writers finish, with at least one
	// iteration each; the mover waits for every reader's first iteration,
	// so reads and moves are guaranteed to overlap.
	lo, hi := a-1, b+1
	if hi < lo {
		lo, hi = b-1, a+1
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		started.Add(1)
		go func() {
			defer readers.Done()
			signaled := false
			signal := func() {
				if !signaled {
					signaled = true
					started.Done()
				}
			}
			defer signal()
			// Bounded on both sides: readers exit when the bounded mover
			// finishes or after a fixed probe budget, whichever is first,
			// keeping the worst-case runtime flat under CPU contention.
			for i := 0; i < 1_500; i++ {
				ok := true
				e.View(func(v *shard.View) {
					na, nb := v.PointQuery(a), v.PointQuery(b)
					if na+nb != 1 {
						torn.Add(1)
						ok = false
						t.Errorf("view: row visible %d times at old + %d at new, want total 1", na, nb)
						return
					}
					at := a
					if nb == 1 {
						at = b
					}
					if pv, pok := v.Payload(at, 1); !pok || pv != wantPayload {
						torn.Add(1)
						ok = false
						t.Errorf("view: payload at %d = (%d,%v), want (%d,true)", at, pv, pok, wantPayload)
						return
					}
					views.Add(1)
				})
				// Fresh odd keys stay unique, so the fan-out range holds
				// exactly the moving row regardless of which shard owns it.
				if n := e.RangeCount(lo, hi); n != 1 {
					torn.Add(1)
					ok = false
					t.Errorf("RangeCount(%d,%d) = %d, want 1", lo, hi, n)
				}
				signal()
				if !ok || stop.Load() {
					return
				}
			}
		}()
	}

	// Mover: a bounded ping-pong of the row between the two shards; every
	// pass completes the pair, so the row ends at a.
	movers.Add(1)
	go func() {
		defer movers.Done()
		started.Wait()
		for i := 0; i < 150; i++ {
			if err := e.UpdateKey(a, b); err != nil {
				t.Errorf("move %d a→b: %v", i, err)
				return
			}
			if err := e.UpdateKey(b, a); err != nil {
				t.Errorf("move %d b→a: %v", i, err)
				return
			}
		}
	}()

	// Retrain pressure on both involved shards: the journaled halves of
	// in-flight moves must replay onto the shadows without breaking the
	// visibility invariant. Bounded rounds and the start gate keep a
	// single-CPU scheduler from spinning retrains before the readers and
	// the mover have even been scheduled.
	retrains.Add(1)
	go func() {
		defer retrains.Done()
		started.Wait()
		for r := 0; r < 20 && !stop.Load(); r++ {
			if err := e.RetrainShard(part.Shard(a), sampleOps, 1); err != nil {
				t.Errorf("retrain shard of a: %v", err)
			}
			if err := e.RetrainShard(part.Shard(b), sampleOps, 1); err != nil {
				t.Errorf("retrain shard of b: %v", err)
			}
		}
	}()

	movers.Wait()
	stop.Store(true)
	readers.Wait()
	retrains.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d atomicity violations", torn.Load())
	}
	if views.Load() == 0 {
		t.Error("readers pinned no views")
	}
	if na, nb := e.PointQuery(a), e.PointQuery(b); na != 1 || nb != 0 {
		t.Errorf("final counts (%d,%d), want (1,0)", na, nb)
	}
	if v, ok := e.Payload(a, 1); !ok || v != wantPayload {
		t.Errorf("final payload = (%d,%v), want (%d,true)", v, ok, wantPayload)
	}
}

// TestRebalanceAtomicVisibility is the acceptance regression for the
// rebalance protocol's visibility guarantee: while boundary sets flip back
// and forth (forcing bulk row migrations and partitioner installs), a
// resident row ping-pongs between two keys, View-pinned readers assert it is
// visible at exactly one key with its payload intact, fan-out probes count
// it exactly once, and writers hammer private keys through the re-route path
// with a deterministic final state. Bounded on every side (no goroutine
// ping-pong loops), so it stays flat on a single-CPU runtime.
func TestRebalanceAtomicVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]int64, raceInitialRows)
	for i := range keys {
		keys[i] = 4 * rng.Int63n(100_000) // ≡ 0 (mod 4)
	}
	cfg := oracleConfig()
	cfg.ChunkValues = 1_024
	e, err := shard.New(keys, shard.Config{Shards: 8, ByRange: true, Table: cfg, MonitorCap: 4_096})
	if err != nil {
		t.Fatal(err)
	}

	boundsA := e.Partitioner().(*shard.RangePartitioner).Bounds()
	if len(boundsA) != e.Shards()-1 {
		t.Fatalf("initial bounds %d for %d shards", len(boundsA), e.Shards())
	}
	boundsB := make([]int64, len(boundsA))
	for i, b := range boundsA {
		boundsB[i] = b + 401 // shifts a slice of rows across every boundary
	}

	// The moving row: a fresh odd key pair several boundaries apart, so the
	// ping-pong is cross-shard (move-gated) under BOTH boundary sets — a
	// same-shard update would bypass the gate and void the View invariant.
	// Either key may itself sit within a boundary flip's migration window,
	// so the resident row also rides rebalances.
	a := int64(100_001)
	b := int64(300_001)
	if pa, pb := e.Partitioner().Shard(a), e.Partitioner().Shard(b); pa == pb {
		t.Fatalf("setup: keys %d and %d share shard %d", a, b, pa)
	}
	e.Insert(a)
	wantPayload := int32(a) + 1 // DefaultPayload(a, 1); travels with the row

	// Fan-out probe constant: [a-1, b+1] spans several shards and holds the
	// resident row (at a or b) plus a fixed population of initial keys the
	// writers never touch.
	wantRange := e.RangeCount(a-1, b+1)
	if wantRange < 2 {
		t.Fatalf("setup: fan-out range holds only %d rows", wantRange)
	}

	var (
		writers sync.WaitGroup
		readers sync.WaitGroup
		started sync.WaitGroup
		stop    atomic.Bool
		torn    atomic.Int64
		views   atomic.Int64
	)

	// Readers: the one-key-exactly invariant under a pinned View plus a
	// single-call fan-out probe and phantom checks.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		started.Add(1)
		go func(r int) {
			defer readers.Done()
			signaled := false
			signal := func() {
				if !signaled {
					signaled = true
					started.Done()
				}
			}
			defer signal()
			prng := rand.New(rand.NewSource(int64(300 + r)))
			for i := 0; i < 1_200; i++ {
				ok := true
				e.View(func(v *shard.View) {
					na, nb := v.PointQuery(a), v.PointQuery(b)
					if na+nb != 1 {
						torn.Add(1)
						ok = false
						t.Errorf("view: moving row visible %d+%d times, want 1", na, nb)
						return
					}
					at := a
					if nb == 1 {
						at = b
					}
					if pv, pok := v.Payload(at, 1); !pok || pv != wantPayload {
						torn.Add(1)
						ok = false
						t.Errorf("view: payload at %d = (%d,%v), want (%d,true)", at, pv, pok, wantPayload)
						return
					}
					views.Add(1)
				})
				if n := e.RangeCount(a-1, b+1); n != wantRange {
					torn.Add(1)
					ok = false
					t.Errorf("RangeCount(%d,%d) = %d, want %d", a-1, b+1, n, wantRange)
				}
				if odd := 2*prng.Int63n(400_000) + 1; odd != a && odd != b && e.PointQuery(odd) != 0 {
					torn.Add(1)
					ok = false
					t.Errorf("phantom key %d observed", odd)
				}
				signal()
				if !ok || stop.Load() {
					return
				}
			}
		}(r)
	}

	// Writers: private even keys through Insert/Delete — these exercise the
	// route-revalidation path when an install lands mid-write.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for j := 0; j < 600; j++ {
				k := writerKey(w, j)
				e.Insert(k)
				if j%3 == 0 {
					if err := e.Delete(k); err != nil {
						t.Errorf("writer %d: delete(%d): %v", w, k, err)
					}
				}
			}
		}(w)
	}

	// Mover: ping-pongs the resident row. A move can transiently fail with
	// "absent key" while a rebalance has the row staged; bounded sleepy
	// retries avoid spinning a single-CPU scheduler.
	moveOnce := func(from, to int64) bool {
		for try := 0; try < 20_000; try++ {
			if err := e.UpdateKey(from, to); err == nil {
				return true
			}
			time.Sleep(50 * time.Microsecond)
		}
		return false
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		started.Wait()
		for i := 0; i < 80; i++ {
			if !moveOnce(a, b) || !moveOnce(b, a) {
				t.Error("mover starved: UpdateKey kept failing")
				return
			}
		}
	}()

	// Rebalancer: flips between the two boundary sets, each flip migrating
	// rows both ways and installing a new partitioner under live traffic.
	writers.Add(1)
	go func() {
		defer writers.Done()
		started.Wait()
		for round := 0; round < 12; round++ {
			bounds := boundsA
			if round%2 == 0 {
				bounds = boundsB
			}
			if _, err := e.RebalanceTo(bounds); err != nil {
				t.Errorf("rebalance round %d: %v", round, err)
				return
			}
		}
	}()

	writers.Wait()
	stop.Store(true)
	readers.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d atomicity violations", torn.Load())
	}
	if views.Load() == 0 {
		t.Error("readers pinned no views")
	}
	if got := e.Rebalances(); got < 12 {
		t.Errorf("rebalances = %d, want >= 12", got)
	}
	if na, nb := e.PointQuery(a), e.PointQuery(b); na != 1 || nb != 0 {
		t.Errorf("final counts (%d,%d), want (1,0)", na, nb)
	}
	// Writer keys: j%3 == 0 deleted, the rest survive exactly once — across
	// however many boundary installs the writes raced.
	for w := 0; w < 2; w++ {
		for j := 0; j < 600; j += 7 {
			want := 1
			if j%3 == 0 {
				want = 0
			}
			if got := e.PointQuery(writerKey(w, j)); got != want {
				t.Fatalf("writer %d key %d: count %d, want %d", w, j, got, want)
			}
		}
	}
	if skew := e.Skew(); skew >= 3 {
		t.Errorf("final skew %.2f suspiciously high after rebalances", skew)
	}
}

// TestConcurrentMixedOpsNoRace floods ExecuteParallel with a full hybrid mix
// while the auto-retrainer runs — a pure race detector target with a final
// row-count sanity bound.
func TestConcurrentMixedOpsNoRace(t *testing.T) {
	e, keys := raceEngine(t)
	if err := e.StartAutoRetrain(shard.RetrainPolicy{
		CheckEvery: 2 * time.Millisecond,
		MinOps:     128,
		MaxDrift:   0.01,
	}); err != nil {
		t.Fatal(err)
	}
	defer e.StopAutoRetrain()

	spec, err := workload.Preset(workload.HybridSkewed, 6_000, 77)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := workload.Generate(keys, 400_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	e.ExecuteParallel(ops, 8)

	counts := workload.Counts(ops)
	minLen := raceInitialRows - counts[workload.Q5Delete]
	maxLen := raceInitialRows + counts[workload.Q4Insert]
	if n := e.Len(); n < minLen || n > maxLen {
		t.Errorf("Len = %d outside feasible [%d, %d]", n, minLen, maxLen)
	}
	// The async batch path must also quiesce cleanly.
	p := e.ApplyBatchAsync(ops[:512])
	p.Wait()
}
