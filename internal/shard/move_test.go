package shard

// White-box suite for the epoch-based cross-shard commit protocol and the
// row-identity retrain journal: destination-failure rollback, monitor
// recording discipline, and byte-identical journal replay with duplicate
// keys carrying different payloads.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"casper/internal/table"
)

func moveTestConfig() table.Config {
	return table.Config{
		Mode:        table.Casper,
		PayloadCols: 4,
		ChunkValues: 1_024,
		GhostFrac:   0.01,
		Partitions:  8,
	}
}

// crossShardPair returns two fresh keys (absent from keys) owned by
// different shards.
func crossShardPair(t *testing.T, e *Engine, from int64) (int64, int64) {
	t.Helper()
	a := from
	b := a + 1
	for e.Partitioner().Shard(b) == e.Partitioner().Shard(a) {
		b++
	}
	return a, b
}

func stagedMoves(e *Engine) int {
	e.rlockAll()
	defer e.runlockAll()
	return e.loadRoute().moves.len()
}

// TestCrossShardInsertErrorPropagation regresses the swallowed-insert bug:
// when the destination shard rejects the publish half of a cross-shard
// move, UpdateKey must report the error and the row must be rolled back to
// the source shard — never silently lost.
func TestCrossShardInsertErrorPropagation(t *testing.T) {
	keys := make([]int64, 1_000)
	for i := range keys {
		keys[i] = int64(i)
	}
	e, err := New(keys, Config{Shards: 4, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	a, b := crossShardPair(t, e, 1_000_000)
	e.Insert(a)

	injected := errors.New("injected destination failure")
	e.failDestInsert = func(int, int64) error { return injected }
	uerr := e.UpdateKey(a, b)
	if !errors.Is(uerr, injected) {
		t.Fatalf("UpdateKey error = %v, want wrapped injected error", uerr)
	}
	if !strings.Contains(uerr.Error(), "destination insert") {
		t.Errorf("error %q does not name the failing half", uerr)
	}
	if got := e.PointQuery(a); got != 1 {
		t.Errorf("after failed move: PointQuery(old) = %d, want 1 (rolled back)", got)
	}
	if got := e.PointQuery(b); got != 0 {
		t.Errorf("after failed move: PointQuery(new) = %d, want 0", got)
	}
	if v, ok := e.Payload(a, 1); !ok || v != table.DefaultPayload(a, 1) {
		t.Errorf("after failed move: Payload(old, 1) = (%d,%v), want (%d,true)", v, ok, table.DefaultPayload(a, 1))
	}
	if got, want := e.Len(), len(keys)+1; got != want {
		t.Errorf("after failed move: Len = %d, want %d", got, want)
	}
	if got := stagedMoves(e); got != 0 {
		t.Errorf("after failed move: %d staged moves left in registry, want 0", got)
	}

	e.failDestInsert = nil
	if err := e.UpdateKey(a, b); err != nil {
		t.Fatalf("UpdateKey after clearing fault: %v", err)
	}
	if e.PointQuery(a) != 0 || e.PointQuery(b) != 1 {
		t.Errorf("after successful move: counts (%d,%d), want (0,1)", e.PointQuery(a), e.PointQuery(b))
	}
	if got := stagedMoves(e); got != 0 {
		t.Errorf("after successful move: %d staged moves left in registry, want 0", got)
	}
}

// TestMonitorRecordsOnlySuccessfulWrites regresses spurious drift triggers:
// deletes and updates of absent keys must not feed the per-shard monitors.
func TestMonitorRecordsOnlySuccessfulWrites(t *testing.T) {
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
	}
	e, err := New(keys, Config{Shards: 2, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	e.monOn.Add(1)
	defer e.monOn.Add(-1)

	recorded := func() int {
		sum := 0
		for _, s := range e.shards {
			since, _ := s.mon.stats()
			sum += since
		}
		return sum
	}

	base := recorded()
	if err := e.Delete(1_000_000); err == nil {
		t.Fatal("delete of absent key should error")
	}
	if got := recorded(); got != base {
		t.Errorf("failed delete recorded: monitor count %d, want %d", got, base)
	}
	if err := e.UpdateKey(1_000_001, 1_000_002); err == nil {
		t.Fatal("update of absent key should error")
	}
	a, b := crossShardPair(t, e, 2_000_000)
	if err := e.UpdateKey(a, b); err == nil {
		t.Fatal("cross-shard update of absent key should error")
	}
	if got := recorded(); got != base {
		t.Errorf("failed updates recorded: monitor count %d, want %d", got, base)
	}

	if err := e.Delete(5); err != nil {
		t.Fatalf("delete of resident key: %v", err)
	}
	afterDelete := recorded()
	if afterDelete <= base {
		t.Errorf("successful delete not recorded: monitor count %d, want > %d", afterDelete, base)
	}
	if err := e.UpdateKey(6, a); err != nil {
		t.Fatalf("update of resident key: %v", err)
	}
	if got := recorded(); got <= afterDelete {
		t.Errorf("successful update not recorded: monitor count %d, want > %d", got, afterDelete)
	}
}

// journalingOn reports whether a shadow retrain is journaling on s.
func journalingOn(s *shard) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.journaling
}

// TestJournalRowIdentityReplay regresses the delete-by-key replay bug: with
// two duplicates of one key carrying different payloads, a delete journaled
// mid-retrain must remove the same duplicate from the shadow that the live
// table dropped, leaving the swapped-in table byte-identical. Also checks
// the journal's epoch stamps are monotone in application order.
func TestJournalRowIdentityReplay(t *testing.T) {
	e, err := New([]int64{10, 20}, Config{Shards: 1, Table: moveTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// Two rows with key 10 whose payloads differ: the original (payload of
	// key 10) and the row moved up from key 20 (payload of key 20).
	if err := e.UpdateKey(20, 10); err != nil {
		t.Fatal(err)
	}

	// Hold a shadow retrain open while the journaled mutations land.
	s := e.shards[0]
	gate := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- e.retrainShard(0, func(*table.Table) error { <-gate; return nil }) }()
	for !journalingOn(s) {
		time.Sleep(time.Millisecond)
	}

	if err := e.Delete(10); err != nil {
		t.Fatal(err)
	}
	e.Insert(30)

	s.jmu.Lock()
	if len(s.journal) != 2 {
		s.jmu.Unlock()
		t.Fatalf("journal holds %d ops, want 2", len(s.journal))
	}
	del := s.journal[0]
	if del.kind != jDelete || del.key != 10 {
		s.jmu.Unlock()
		t.Fatalf("journal[0] = kind %d key %d, want jDelete of 10", del.kind, del.key)
	}
	removed := append([]int32(nil), del.row...)
	if len(removed) != 4 {
		s.jmu.Unlock()
		t.Fatalf("journaled delete carries %d payload cols, want 4", len(removed))
	}
	for i := 1; i < len(s.journal); i++ {
		if s.journal[i].epoch < s.journal[i-1].epoch {
			s.jmu.Unlock()
			t.Fatalf("journal epochs regress: %d after %d", s.journal[i].epoch, s.journal[i-1].epoch)
		}
	}
	s.jmu.Unlock()

	// The duplicate that survived on the live table is the one the journal
	// did not record as removed.
	want := table.DefaultPayload(10, 0)
	if removed[0] == want {
		want = table.DefaultPayload(20, 0) // payload moved up from key 20
	}
	liveV, ok := e.Payload(10, 0)
	if !ok || liveV != want {
		t.Fatalf("live survivor payload = (%d,%v), want (%d,true)", liveV, ok, want)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("retrain: %v", err)
	}
	if got := e.Retrains(); got != 1 {
		t.Fatalf("retrains = %d, want 1", got)
	}

	// After the swap the shadow must agree byte-for-byte with the live
	// state observed before it: same survivor duplicate, same row set.
	if got := e.PointQuery(10); got != 1 {
		t.Fatalf("after swap: PointQuery(10) = %d, want 1", got)
	}
	for c := 0; c < 4; c++ {
		wantC := want + int32(c) // DefaultPayload(k, c) = k + c
		if v, ok := e.Payload(10, c); !ok || v != wantC {
			t.Fatalf("after swap: Payload(10,%d) = (%d,%v), want (%d,true)", c, v, ok, wantC)
		}
	}
	if got := e.PointQuery(30); got != 1 {
		t.Fatalf("after swap: PointQuery(30) = %d, want 1 (journaled insert lost)", got)
	}
	if got := e.Len(); got != 2 {
		t.Fatalf("after swap: Len = %d, want 2", got)
	}
}
