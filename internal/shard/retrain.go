package shard

import (
	"fmt"
	"sync"
	"time"

	"casper/internal/obs"
	"casper/internal/table"
	"casper/internal/workload"
)

// driftBuckets is the resolution of the per-shard access histogram used to
// detect workload drift.
const driftBuckets = 64

// monitor is a per-shard window of recent operations plus an access
// histogram compared against the histogram captured at the last training to
// decide when the layout has drifted out from under the workload. Monitor
// locks never nest inside gate stripes, shard locks, or table locks:
// Engine.record routes off an advisory snapshot load and is only called
// while its caller holds no stripe, shard, or table lock.
type monitor struct {
	mu         sync.Mutex
	cap        int
	ops        []workload.Op
	hist       [driftBuckets]float64
	baseline   [driftBuckets]float64
	hasBase    bool
	sinceTrain int
}

func newMonitor(cap int) *monitor {
	return &monitor{cap: cap}
}

// record appends one operation to the window and its key bucket to the
// histogram, halving both when the window overflows so recent traffic
// dominates.
func (m *monitor) record(op workload.Op, bucket int) {
	m.mu.Lock()
	if len(m.ops) >= m.cap {
		copy(m.ops, m.ops[len(m.ops)-m.cap/2:])
		m.ops = m.ops[:m.cap/2]
		for i := range m.hist {
			m.hist[i] /= 2
		}
	}
	m.ops = append(m.ops, op)
	m.hist[bucket]++
	m.sinceTrain++
	m.mu.Unlock()
}

// stats returns the operations recorded since the last (re)train and the
// total-variation distance between the current access histogram and the
// baseline captured at that train (1 when no baseline exists yet).
func (m *monitor) stats() (since int, drift float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	since = m.sinceTrain
	if !m.hasBase {
		return since, 1
	}
	return since, tvDistance(m.hist, m.baseline)
}

// tvDistance is the total-variation distance between two histograms after
// normalization: 0.5 · Σ|p−q| ∈ [0, 1].
func tvDistance(a, b [driftBuckets]float64) float64 {
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	var d float64
	for i := range a {
		d += abs(a[i]/sa - b[i]/sb)
	}
	return d / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sample snapshots the window for training without touching drift state, so
// a failed retrain leaves the trigger armed for the next tick.
func (m *monitor) sample() []workload.Op {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]workload.Op, len(m.ops))
	copy(out, m.ops)
	return out
}

// rebase re-bases the drift baseline on the current histogram; called after
// a retrain actually completed.
func (m *monitor) rebase() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.baseline = m.hist
	m.hasBase = true
	m.sinceTrain = 0
}

// rebaseToSample re-bases the drift baseline on the key distribution of a
// training sample rather than the live window; called after a full
// Engine.Train so the governor and retrainer measure drift against the
// distribution the layouts were actually solved for. sinceTrain resets: the
// retrain-lag backlog is defined as ops since the layouts last matched the
// workload.
func (m *monitor) rebaseToSample(sample []workload.Op, bucketOf func(int64) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var base [driftBuckets]float64
	for _, op := range sample {
		base[bucketOf(op.Key)]++
	}
	m.baseline = base
	m.hasBase = true
	m.sinceTrain = 0
}

// RetrainPolicy tunes the background retrainer.
type RetrainPolicy struct {
	// CheckEvery is the drift check cadence (default 100ms).
	CheckEvery time.Duration
	// MinOps is the minimum number of operations a shard must observe
	// since its last training before it is considered (default 1000).
	MinOps int
	// MaxDrift triggers a retrain when the total-variation distance
	// between the shard's current access histogram and its at-training
	// baseline reaches this value (default 0.15). A shard that has never
	// been trained through the retrainer counts as fully drifted.
	MaxDrift float64
	// Parallelism is the per-retrain solver parallelism (default 1).
	Parallelism int
}

func (p RetrainPolicy) withDefaults() RetrainPolicy {
	if p.CheckEvery <= 0 {
		p.CheckEvery = 100 * time.Millisecond
	}
	if p.MinOps <= 0 {
		p.MinOps = 1000
	}
	if p.MaxDrift <= 0 {
		p.MaxDrift = 0.15
	}
	if p.Parallelism < 1 {
		p.Parallelism = 1
	}
	return p
}

// StartAutoRetrain launches the background retraining worker: it monitors
// every operation, and when a shard's access pattern drifts past the policy
// threshold it re-trains that shard's layout on a shadow copy and swaps the
// copy in atomically. Reads and writes keep flowing to the live table for
// the whole training; they are blocked only for the snapshot and the swap.
// Requires Casper mode.
func (e *Engine) StartAutoRetrain(p RetrainPolicy) error {
	if e.cfg.Mode != table.Casper {
		return fmt.Errorf("shard: auto-retrain requires Casper mode, have %v", e.cfg.Mode)
	}
	e.retrainMu.Lock()
	defer e.retrainMu.Unlock()
	if e.stopCh != nil {
		return fmt.Errorf("shard: auto-retrain already running")
	}
	p = p.withDefaults()
	e.stopCh = make(chan struct{})
	e.doneCh = make(chan struct{})
	e.monOn.Add(1)
	go e.retrainLoop(p, e.stopCh, e.doneCh)
	return nil
}

// StopAutoRetrain stops the worker and waits for any in-flight retrain to
// finish. Safe to call when no worker is running.
func (e *Engine) StopAutoRetrain() {
	e.retrainMu.Lock()
	defer e.retrainMu.Unlock()
	if e.stopCh == nil {
		return
	}
	close(e.stopCh)
	<-e.doneCh
	e.stopCh, e.doneCh = nil, nil
	e.monOn.Add(-1)
}

// Retrains returns the number of completed background shard retrains.
func (e *Engine) Retrains() uint64 { return e.retrains.Load() }

func (e *Engine) retrainLoop(p RetrainPolicy, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(p.CheckEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			for i, s := range e.shards {
				select {
				case <-stop:
					return
				default:
				}
				since, drift := s.mon.stats()
				if since < p.MinOps || drift < p.MaxDrift {
					continue
				}
				sample := s.mon.sample()
				if err := e.RetrainShard(i, sample, p.Parallelism); err != nil {
					// Drift state is untouched, so the trigger stays
					// armed and the next tick retries.
					continue
				}
				s.mon.rebase()
			}
		}
	}
}

// RetrainShard re-solves shard i's layout for the sample on a shadow copy
// and swaps the shadow in. Writes that land during training are journaled
// against the outgoing table and replayed onto the shadow before the swap,
// so no mutation is lost; readers keep scanning the outgoing table and never
// observe an intermediate layout. Replay is byte-identical: journaled
// deletes and updates carry the payload of the row the live table actually
// touched, so with duplicate keys the shadow drops the same duplicate, and
// the halves of a cross-shard move journal into their shards with the epoch
// order the commit protocol established.
func (e *Engine) RetrainShard(i int, sample []workload.Op, parallelism int) error {
	return e.retrainShard(i, func(shadow *table.Table) error {
		return shadow.TrainLayout(sample, parallelism)
	})
}

// retrainShard is RetrainShard with the shadow training step injected, so
// tests can exercise the journal/swap machinery deterministically.
func (e *Engine) retrainShard(i int, train func(*table.Table) error) error {
	if i < 0 || i >= len(e.shards) {
		return fmt.Errorf("shard: retrain of unknown shard %d", i)
	}
	s := e.shards[i]
	s.layoutMu.Lock()
	defer s.layoutMu.Unlock()

	// One timer covers snapshot → shadow build/train → journal drain →
	// swap; the same measurement feeds the RetrainNs histogram and the
	// retrain.swap event so the two can never disagree.
	timer := obs.StartTimer()
	e.obs.Event(obs.Event{Kind: obs.EvRetrainStart, Shard: i})

	// Snapshot under the exclusive lock: no writer can slip a mutation
	// between the snapshot and the journal turning on.
	s.mu.Lock()
	if s.tbl == nil {
		s.mu.Unlock()
		return nil
	}
	keys, rows := s.tbl.Snapshot()
	s.jmu.Lock()
	s.journaling = true
	s.journal = s.journal[:0]
	s.jmu.Unlock()
	s.mu.Unlock()

	// journaling transitions must happen under the exclusive swap lock:
	// writers read the flag under the shared lock without touching jmu.
	stopJournal := func() {
		s.mu.Lock()
		s.journaling = false
		s.journal = nil
		s.mu.Unlock()
	}
	if len(keys) == 0 {
		stopJournal()
		return nil
	}

	// Build and train the shadow with no shard locks held: the live table
	// keeps serving reads and absorbing (journaled) writes.
	shadow, err := table.NewFromRows(keys, rows, s.cfg)
	if err != nil {
		stopJournal()
		return fmt.Errorf("shard %d: shadow build: %w", i, err)
	}
	if err := train(shadow); err != nil {
		stopJournal()
		return fmt.Errorf("shard %d: shadow train: %w", i, err)
	}

	// Swap: drain the journal onto the shadow, then publish it.
	s.mu.Lock()
	s.jmu.Lock()
	for _, j := range s.journal {
		j.applyTo(shadow)
	}
	s.journaling = false
	s.journal = nil
	s.jmu.Unlock()
	s.tbl = shadow
	s.mu.Unlock()
	e.retrains.Add(1)
	dur := timer.Elapsed()
	if e.obs.Enabled() {
		e.obs.RetrainNs.Observe(i, dur.Nanoseconds())
	}
	e.obs.Event(obs.Event{Kind: obs.EvRetrainSwap, Shard: i, Rows: len(keys), DurNs: dur.Nanoseconds()})
	if e.durable {
		// Persist the freshly trained layout and truncate the WAL at the
		// swap: recovery then restores the new layout from the checkpoint
		// instead of re-running the solver. The swap itself is already
		// durable (journaled writes were WAL-logged as they happened), so
		// a checkpoint failure only delays truncation.
		if err := e.checkpointShard(i); err != nil {
			return fmt.Errorf("shard %d: post-retrain checkpoint: %w", i, err)
		}
	}
	return nil
}
