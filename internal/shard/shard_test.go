package shard_test

// Oracle suite: a sharded engine must be observationally identical to the
// single-table engine. Every preset workload is replayed serially through a
// 1-shard oracle and through 8-shard hash- and range-partitioned engines,
// then sinks, row counts, and point/range/payload probes are compared.

import (
	"math/rand"
	"testing"

	"casper/internal/shard"
	"casper/internal/table"
	"casper/internal/workload"
)

const (
	oracleRows   = 10_000
	oracleDomain = 200_000
	oracleOps    = 2_000
)

func oracleConfig() table.Config {
	return table.Config{
		Mode:        table.Casper,
		PayloadCols: 4,
		ChunkValues: 4_096,
		GhostFrac:   0.01,
		Partitions:  16,
	}
}

func newEngines(t testing.TB, keys []int64) map[string]*shard.Engine {
	t.Helper()
	engines := make(map[string]*shard.Engine)
	for name, cfg := range map[string]shard.Config{
		"1-shard":       {Shards: 1, Table: oracleConfig()},
		"8-shard-hash":  {Shards: 8, Table: oracleConfig()},
		"8-shard-range": {Shards: 8, ByRange: true, Table: oracleConfig()},
	} {
		e, err := shard.New(keys, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		engines[name] = e
	}
	return engines
}

// probe compares every observable the engines expose on shared inputs.
func probe(t *testing.T, stage string, oracle *shard.Engine, name string, e *shard.Engine, keys []int64, rng *rand.Rand) {
	t.Helper()
	if got, want := e.Len(), oracle.Len(); got != want {
		t.Errorf("%s: %s Len = %d, oracle %d", stage, name, got, want)
	}
	for i := 0; i < 200; i++ {
		k := keys[rng.Intn(len(keys))]
		got, want := e.PointQuery(k), oracle.PointQuery(k)
		if got != want {
			t.Fatalf("%s: %s PointQuery(%d) = %d, oracle %d", stage, name, k, got, want)
		}
		if want == 1 {
			// With exactly one live row the payload is unambiguous.
			gv, gok := e.Payload(k, 1)
			wv, wok := oracle.Payload(k, 1)
			if gok != wok || gv != wv {
				t.Fatalf("%s: %s Payload(%d) = (%d,%v), oracle (%d,%v)", stage, name, k, gv, gok, wv, wok)
			}
		}
	}
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(oracleDomain)
		hi := lo + rng.Int63n(oracleDomain/10) + 1
		if got, want := e.RangeCount(lo, hi), oracle.RangeCount(lo, hi); got != want {
			t.Fatalf("%s: %s RangeCount(%d,%d) = %d, oracle %d", stage, name, lo, hi, got, want)
		}
		if got, want := e.RangeSum(lo, hi), oracle.RangeSum(lo, hi); got != want {
			t.Fatalf("%s: %s RangeSum(%d,%d) = %d, oracle %d", stage, name, lo, hi, got, want)
		}
		filters := []table.PayloadFilter{{Col: 1, Lo: -1 << 30, Hi: 1 << 30}, {Col: 2, Lo: 0, Hi: 1 << 30}}
		if got, want := e.MultiRangeSum(lo, hi, filters, 3), oracle.MultiRangeSum(lo, hi, filters, 3); got != want {
			t.Fatalf("%s: %s MultiRangeSum(%d,%d) = %d, oracle %d", stage, name, lo, hi, got, want)
		}
	}
}

func TestShardedMatchesOracleAcrossPresets(t *testing.T) {
	for _, preset := range workload.PresetNames() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			keys := workload.UniformKeys(oracleRows, oracleDomain, 7)
			engines := newEngines(t, keys)
			oracle := engines["1-shard"]

			spec, err := workload.Preset(preset, oracleOps, 11)
			if err != nil {
				t.Fatal(err)
			}
			ops, err := workload.Generate(keys, oracleDomain, spec)
			if err != nil {
				t.Fatal(err)
			}
			trainSpec, err := workload.Preset(preset, oracleOps, 12)
			if err != nil {
				t.Fatal(err)
			}
			trainOps, err := workload.Generate(keys, oracleDomain, trainSpec)
			if err != nil {
				t.Fatal(err)
			}

			for name, e := range engines {
				if err := e.Train(trainOps, 2); err != nil {
					t.Fatalf("%s: train: %v", name, err)
				}
			}
			sinks := make(map[string]int64)
			for name, e := range engines {
				sinks[name] = e.ExecuteAll(ops)
			}
			for name, e := range engines {
				if sinks[name] != sinks["1-shard"] {
					t.Errorf("sink mismatch: %s = %d, oracle %d", name, sinks[name], sinks["1-shard"])
				}
				if name == "1-shard" {
					continue
				}
				probe(t, "after-"+preset, oracle, name, e, keys, rand.New(rand.NewSource(3)))
			}
		})
	}
}

// TestShardedMatchesOracleAfterShadowRetrain replays a workload, then forces
// a shadow retrain of every shard and re-probes: the swapped-in layout must
// not change any query result.
func TestShardedMatchesOracleAfterShadowRetrain(t *testing.T) {
	keys := workload.UniformKeys(oracleRows, oracleDomain, 7)
	engines := newEngines(t, keys)
	oracle := engines["1-shard"]

	spec, err := workload.Preset(workload.HybridSkewed, oracleOps, 21)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := workload.Generate(keys, oracleDomain, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		e.ExecuteAll(ops)
	}
	for name, e := range engines {
		for i := 0; i < e.Shards(); i++ {
			if err := e.RetrainShard(i, ops, 1); err != nil {
				t.Fatalf("%s: retrain shard %d: %v", name, i, err)
			}
		}
		if got, want := e.Retrains(), uint64(e.Shards()); got != want {
			t.Errorf("%s: retrains = %d, want %d", name, got, want)
		}
	}
	for name, e := range engines {
		if name == "1-shard" {
			continue
		}
		probe(t, "after-retrain", oracle, name, e, keys, rand.New(rand.NewSource(5)))
	}
}

// TestEmptyShardLazySeeding drives keys into a shard that received no
// initial rows: reads must report absence, deletes must error, and the first
// insert must materialize the shard.
func TestEmptyShardLazySeeding(t *testing.T) {
	// All initial keys collide into few hash shards, leaving others empty.
	keys := []int64{0, 0, 0, 0}
	e, err := shard.New(keys, shard.Config{Shards: 8, Table: oracleConfig()})
	if err != nil {
		t.Fatal(err)
	}
	empty := int64(-1)
	for k := int64(1); k < 1_000; k++ {
		if e.Partitioner().Shard(k) != e.Partitioner().Shard(0) && e.PointQuery(k) == 0 {
			empty = k
			break
		}
	}
	if empty < 0 {
		t.Fatal("no key routing to an empty shard found")
	}
	if err := e.Delete(empty); err == nil {
		t.Error("delete on empty shard should error")
	}
	if err := e.UpdateKey(empty, empty+1); err == nil {
		t.Error("update on empty shard should error")
	}
	e.Insert(empty)
	if got := e.PointQuery(empty); got != 1 {
		t.Errorf("PointQuery after seeding insert = %d, want 1", got)
	}
	if got, want := e.Len(), len(keys)+1; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	if err := e.Delete(empty); err != nil {
		t.Errorf("delete after seeding: %v", err)
	}
}

// TestApplyBatchMatchesSerial checks that a batch of disjoint-key writes
// applied in parallel reaches the same final state as serial execution.
func TestApplyBatchMatchesSerial(t *testing.T) {
	keys := workload.UniformKeys(oracleRows, oracleDomain, 7)
	serial, err := shard.New(keys, shard.Config{Shards: 8, Table: oracleConfig()})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := shard.New(keys, shard.Config{Shards: 8, Table: oracleConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var ops []workload.Op
	for i := 0; i < 4_000; i++ {
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, workload.Op{Kind: workload.Q4Insert, Key: rng.Int63n(oracleDomain)})
		case 1:
			ops = append(ops, workload.Op{Kind: workload.Q1PointQuery, Key: rng.Int63n(oracleDomain)})
		default:
			ops = append(ops, workload.Op{Kind: workload.Q2RangeCount, Key: 0, Key2: oracleDomain})
		}
	}
	serial.ExecuteAll(ops)
	batched.ApplyBatch(ops)
	if got, want := batched.Len(), serial.Len(); got != want {
		t.Errorf("Len after batch = %d, serial %d", got, want)
	}
	for k := int64(0); k < oracleDomain; k += 997 {
		if got, want := batched.PointQuery(k), serial.PointQuery(k); got != want {
			t.Fatalf("PointQuery(%d) = %d, serial %d", k, got, want)
		}
	}
}

// TestPartitioners checks routing invariants shared by both partitioners.
func TestPartitioners(t *testing.T) {
	keys := workload.UniformKeys(5_000, 1_000_000, 3)
	for name, p := range map[string]shard.Partitioner{
		"hash":  shard.NewHashPartitioner(8),
		"range": shard.NewRangePartitioner(keys, 8),
	} {
		if p.Shards() != 8 {
			t.Fatalf("%s: shards = %d", name, p.Shards())
		}
		counts := make([]int, 8)
		for _, k := range keys {
			s := p.Shard(k)
			if s < 0 || s >= 8 {
				t.Fatalf("%s: key %d routed to %d", name, k, s)
			}
			if again := p.Shard(k); again != s {
				t.Fatalf("%s: key %d unstable routing %d vs %d", name, k, s, again)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Errorf("%s: shard %d received no keys", name, s)
			}
		}
		// Every key inside [lo, hi] must be inside Span(lo, hi)... only
		// meaningful for range partitioning; hash spans everything.
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1_000; i++ {
			lo := rng.Int63n(1_000_000)
			hi := lo + rng.Int63n(100_000)
			a, b := p.Span(lo, hi)
			for j := 0; j < 10; j++ {
				k := lo + rng.Int63n(hi-lo+1)
				if s := p.Shard(k); s < a || s > b {
					t.Fatalf("%s: key %d in [%d,%d] routed to shard %d outside span [%d,%d]", name, k, lo, hi, s, a, b)
				}
			}
		}
	}
}

// TestSplitByShard checks the training-sample router duplicates range and
// update ops into every shard that serves them.
func TestSplitByShard(t *testing.T) {
	p := shard.NewRangePartitioner([]int64{0, 100, 200, 300, 400, 500, 600, 700}, 4)
	ops := []workload.Op{
		{Kind: workload.Q1PointQuery, Key: 50},
		{Kind: workload.Q3RangeSum, Key: 50, Key2: 750},
		{Kind: workload.Q6Update, Key: 50, Key2: 750},
	}
	per := workload.SplitByShard(ops, 4, p.Shard, p.Span)
	if len(per[0]) != 3 {
		t.Errorf("shard 0 got %d ops, want 3", len(per[0]))
	}
	for s := 1; s < 3; s++ {
		if len(per[s]) != 1 {
			t.Errorf("shard %d got %d ops, want 1 (the spanning range)", s, len(per[s]))
		}
	}
	if len(per[3]) != 2 {
		t.Errorf("shard 3 got %d ops, want 2 (range + update target)", len(per[3]))
	}
	total := 0
	for _, g := range per {
		total += len(g)
	}
	if total != 7 {
		t.Errorf("total routed ops = %d, want 7", total)
	}
}
