package shard

// Minimal-movement rebalancing suite: table-driven coverage for the
// ownership-delta interval computation and the minimal-bounds proposer, a
// movement comparison pinning minimal strictly below the quantile baseline
// on a drifted tail, and the delta-rescan equivalence property test — on
// randomized op streams with forced drifts and writes injected between the
// staging batches, the publish-window rescan bounded to the changed
// intervals must stage exactly the same straggler multiset as a full-table
// rescan (shadow comparison through the verifyRescan seam).

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"casper/internal/workload"
)

func TestOwnershipDelta(t *testing.T) {
	cases := []struct {
		name     string
		old, new []int64
		want     []keyInterval
	}{
		{
			name: "empty delta",
			old:  []int64{10, 20, 30},
			new:  []int64{10, 20, 30},
			want: nil,
		},
		{
			name: "single-shard engine no-op",
			old:  nil,
			new:  nil,
			want: nil,
		},
		{
			name: "split moves keys down a shard",
			old:  []int64{10, 20},
			new:  []int64{10, 15},
			want: []keyInterval{{lo: 15, hi: 19, from: 1, to: 2}},
		},
		{
			name: "adjacent-shard merge",
			old:  []int64{10, 15},
			new:  []int64{10, 20},
			want: []keyInterval{{lo: 15, hi: 19, from: 2, to: 1}},
		},
		{
			name: "interior change leaves outer shards alone",
			old:  []int64{10, 20, 30},
			new:  []int64{10, 25, 30},
			want: []keyInterval{{lo: 20, hi: 24, from: 2, to: 1}},
		},
		{
			name: "wraparound extremes",
			old:  []int64{math.MinInt64 + 1},
			new:  []int64{math.MaxInt64},
			want: []keyInterval{{lo: math.MinInt64 + 1, hi: math.MaxInt64 - 1, from: 1, to: 0}},
		},
		{
			name: "boundary shift by one",
			old:  []int64{0},
			new:  []int64{1},
			want: []keyInterval{{lo: 0, hi: 0, from: 1, to: 0}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ownershipDelta(tc.old, tc.new)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ownershipDelta(%v, %v) = %+v, want %+v", tc.old, tc.new, got, tc.want)
			}
			// The diff is symmetric up to owner swap: every interval of the
			// reverse direction mirrors from/to.
			rev := ownershipDelta(tc.new, tc.old)
			if len(rev) != len(got) {
				t.Fatalf("reverse delta has %d intervals, forward %d", len(rev), len(got))
			}
			for i := range got {
				if rev[i].lo != got[i].lo || rev[i].hi != got[i].hi ||
					rev[i].from != got[i].to || rev[i].to != got[i].from {
					t.Fatalf("reverse delta %+v does not mirror %+v", rev[i], got[i])
				}
			}
		})
	}
}

func TestProposeMinimalBounds(t *testing.T) {
	uniform := func(n int, domain int64, seed int64) []int64 {
		return workload.UniformKeys(n, domain, seed)
	}

	t.Run("no breach is a verbatim no-op", func(t *testing.T) {
		keys := uniform(8_000, 100_000, 3)
		old := proposeBounds(keys, 4)
		got := ProposeMinimalBounds(keys, old, 1.5)
		if !boundsEqual(got, old) {
			t.Fatalf("balanced fleet proposed new bounds: %v -> %v", old, got)
		}
	})

	t.Run("drifted tail changes only the tail boundaries", func(t *testing.T) {
		base := uniform(40_000, 100_000, 5)
		old := proposeBounds(base, 4)
		keys := append(append([]int64(nil), base...), uniform(20_000, 20_000, 7)...)
		for i := len(base); i < len(keys); i++ {
			keys[i] += 100_001 // the tail drifts past the loaded domain
		}
		got := ProposeMinimalBounds(keys, old, 1.5)
		if boundsEqual(got, old) {
			t.Fatalf("drifted tail proposed no change (bounds %v)", old)
		}
		if got[0] != old[0] || got[1] != old[1] {
			t.Fatalf("tail drift rewrote head boundaries: %v -> %v", old, got)
		}
		if got[2] == old[2] {
			t.Fatalf("tail boundary unchanged despite breach: %v", got)
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pre, post := countPerShard(sorted, old), countPerShard(sorted, got)
		if maxCount(post) >= maxCount(pre) {
			t.Fatalf("max occupancy %d -> %d did not improve", maxCount(pre), maxCount(post))
		}
		if s := skewOf(post); s >= 1.5 {
			t.Fatalf("post-proposal skew %.2f, want < 1.5 (counts %v)", s, post)
		}
	})

	t.Run("interior hotspot keeps the far boundaries", func(t *testing.T) {
		base := uniform(10_000, 100_000, 11)
		old := proposeBounds(base, 5)
		hot := make([]int64, 6_000)
		for i := range hot {
			hot[i] = old[1] + int64(i)%(old[2]-old[1]) // all inside shard 2
		}
		keys := append(append([]int64(nil), base...), hot...)
		got := ProposeMinimalBounds(keys, old, 1.5)
		if boundsEqual(got, old) {
			t.Fatal("interior hotspot proposed no change")
		}
		if got[3] != old[3] {
			t.Fatalf("hotspot in shard 2 rewrote the top boundary: %v -> %v", old, got)
		}
	})

	t.Run("duplicate-saturated fleet bails to old bounds", func(t *testing.T) {
		keys := make([]int64, 1_000)
		for i := range keys {
			keys[i] = 7
		}
		old := []int64{1, 2, 3}
		got := ProposeMinimalBounds(keys, old, 1.5)
		if !boundsEqual(got, old) {
			t.Fatalf("unsplittable duplicates proposed movement: %v -> %v", old, got)
		}
	})

	t.Run("empty keys and single shard", func(t *testing.T) {
		if got := ProposeMinimalBounds(nil, []int64{5, 9}, 1.5); !boundsEqual(got, []int64{5, 9}) {
			t.Fatalf("empty keys proposed %v", got)
		}
		if got := ProposeMinimalBounds([]int64{1, 2, 3}, nil, 1.5); len(got) != 0 {
			t.Fatalf("single-shard engine proposed %v", got)
		}
	})
}

// TestMinimalVsQuantileMovement pins the point of the minimal proposer: on
// the same drifted-tail fleet, the minimal strategy migrates strictly fewer
// rows than the exhaustive quantile baseline while both repair the skew, and
// both leave the same key multiset placed correctly.
func TestMinimalVsQuantileMovement(t *testing.T) {
	build := func() *Engine {
		keys := workload.UniformKeys(8_000, 80_000, 17)
		e, err := New(keys, rebalanceConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4_000; i++ {
			e.Insert(80_001 + int64(i))
		}
		return e
	}

	quant := build()
	qres, err := quant.RebalanceWith(RebalanceQuantile)
	if err != nil {
		t.Fatalf("quantile rebalance: %v", err)
	}
	min := build()
	mres, err := min.Rebalance() // minimal is the default
	if err != nil {
		t.Fatalf("minimal rebalance: %v", err)
	}

	if qres.Moved == 0 || mres.Moved == 0 {
		t.Fatalf("rows moved: quantile %d, minimal %d — drift scenario degenerated", qres.Moved, mres.Moved)
	}
	if mres.Moved >= qres.Moved {
		t.Fatalf("minimal moved %d rows, quantile %d — no movement saved", mres.Moved, qres.Moved)
	}
	if mres.Moved > 2*4_000 {
		t.Fatalf("minimal moved %d rows for a 4000-row drift; movement not O(drift)", mres.Moved)
	}
	if qres.SkewAfter >= 1.5 || mres.SkewAfter >= 1.5 {
		t.Fatalf("skew after: quantile %.2f, minimal %.2f; want both < 1.5", qres.SkewAfter, mres.SkewAfter)
	}
	// Minimality of the bounds vector itself: some boundary survives
	// bit-identical under minimal, none needs to under quantile.
	same := 0
	for i := range mres.NewBounds {
		if mres.NewBounds[i] == mres.OldBounds[i] {
			same++
		}
	}
	if same == 0 {
		t.Fatalf("minimal proposer changed every boundary: %v -> %v", mres.OldBounds, mres.NewBounds)
	}
	if got, want := engineKeys(min), engineKeys(quant); !reflect.DeepEqual(got, want) {
		t.Fatalf("strategies diverged on the key multiset: %d vs %d rows", len(got), len(want))
	}
	assertPlacement(t, min)
	assertPlacement(t, quant)
}

// sortKeys sorts a key multiset in place and returns it.
func sortKeys(keys []int64) []int64 {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TestDeltaRescanEquivalence is the equivalence property test of the
// delta-bounded straggler rescan: across randomized op streams with forced
// drifts, and with writes injected between the staging batches (the exact
// window that produces stragglers), the publish-window rescan bounded to the
// ownership-delta intervals must find exactly the same straggler multiset as
// a full scan of every shard's keys — verified inside the publish window via
// the verifyRescan seam — and every rebalance must leave the engine
// oracle-equivalent and correctly placed.
func TestDeltaRescanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const domain = int64(1 << 20)
	initial := workload.UniformKeys(3_000, domain, 9)
	e, err := New(initial, rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sliceOracle{}
	for _, k := range initial {
		oracle.insert(k)
	}

	checked, stragglers := 0, 0
	e.verifyRescan = func(full, bounded []int64) {
		f, b := sortKeys(append([]int64(nil), full...)), sortKeys(append([]int64(nil), bounded...))
		if !reflect.DeepEqual(f, b) {
			t.Errorf("rescan multisets diverged: full scan %d keys %v, delta-bounded %d keys %v",
				len(f), f, len(b), b)
		}
		checked++
		stragglers += len(f)
	}
	// Straggler injection: inserts issued between the staging batches land
	// under the old routing; the ones inside the round's drifted (hence
	// re-split) region become exactly the stragglers the publish rescan
	// must catch.
	var hotspot int64
	e.betweenRebalanceWindows = func() {
		for i := 0; i < 8; i++ {
			k := (hotspot + rng.Int63n(domain/16)) % domain
			e.Insert(k)
			oracle.insert(k)
		}
	}

	liveKey := func() int64 { return oracle.rows[rng.Intn(len(oracle.rows))].key }
	const rounds = 6
	for round := 0; round < rounds; round++ {
		// Forced drift: pile inserts onto a hotspot that moves every round,
		// so each rebalance re-splits a different local region.
		hotspot = int64(round) * domain / rounds
		for i := 0; i < 1_200; i++ {
			k := (hotspot + rng.Int63n(domain/16)) % domain
			e.Insert(k)
			oracle.insert(k)
		}
		// Randomized mixed stream between drifts.
		for i := 0; i < 150; i++ {
			switch rng.Intn(4) {
			case 0:
				k := liveKey()
				if rng.Intn(8) == 0 {
					k = rng.Int63n(domain)
				}
				gotErr := e.Delete(k) != nil
				if wantErr := !oracle.delete(k); gotErr != wantErr {
					t.Fatalf("round %d: Delete(%d) error=%v, oracle absent=%v", round, k, gotErr, wantErr)
				}
			case 1:
				old, new := liveKey(), rng.Int63n(domain)
				gotErr := e.UpdateKey(old, new) != nil
				if wantErr := !oracle.update(old, new); gotErr != wantErr {
					t.Fatalf("round %d: UpdateKey(%d,%d) error=%v, oracle absent=%v", round, old, new, gotErr, wantErr)
				}
			default:
				k := rng.Int63n(domain)
				e.Insert(k)
				oracle.insert(k)
			}
		}

		if _, err := e.Rebalance(); err != nil {
			t.Fatalf("round %d: Rebalance: %v", round, err)
		}
		if got, want := e.Len(), len(oracle.rows); got != want {
			t.Fatalf("round %d: Len = %d, oracle %d", round, got, want)
		}
		got := sortKeys(engineCollectedKeys(e))
		want := sortKeys(oracleKeys(oracle))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: key multiset diverged (%d vs %d rows)", round, len(got), len(want))
		}
		assertPlacement(t, e)
	}
	if checked == 0 {
		t.Fatal("no rebalance exercised the rescan equivalence seam")
	}
	if stragglers == 0 {
		t.Fatal("no stragglers were produced; the equivalence check was vacuous")
	}
}

// engineCollectedKeys is engineKeys without the insertion-sort merge (the
// equivalence run holds an order of magnitude more rows).
func engineCollectedKeys(e *Engine) []int64 {
	var keys []int64
	for _, s := range e.shards {
		s.mu.RLock()
		tbl := s.tbl
		s.mu.RUnlock()
		if tbl != nil {
			keys = append(keys, tbl.Keys()...)
		}
	}
	return keys
}

// oracleKeys is the oracle's key multiset, unsorted.
func oracleKeys(o *sliceOracle) []int64 {
	keys := make([]int64, len(o.rows))
	for i, r := range o.rows {
		keys[i] = r.key
	}
	return keys
}
