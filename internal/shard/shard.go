// Package shard scales the single-table Casper engine to a fleet of
// independently laid-out tables. The paper observes that column layouts
// "create regions of the data that can be processed in parallel" (§6);
// shard takes that to its production conclusion:
//
//   - the key domain is hash- or range-partitioned across N tables, each
//     with its own locks, monitor window, and cost-model training state;
//   - point and range reads fan out across the spanned shards and merge;
//   - ApplyBatch groups a write batch by shard and applies the groups in
//     parallel;
//   - a background worker watches per-shard access-pattern drift and
//     re-trains drifted shards on a shadow copy, swapping the new layout in
//     atomically so reads never block on re-layout (the online A' arc of
//     Fig. 10).
//
// A 1-shard engine is behaviorally identical to the bare table, which keeps
// the public casper API backward compatible.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"casper/internal/table"
	"casper/internal/workload"
)

// journalKind enumerates the mutations a retrain journal can carry.
type journalKind int

const (
	jInsert journalKind = iota
	jInsertRow
	jDelete
	jUpdate
)

// journalOp is one mutation recorded while a shadow retrain is in flight,
// replayed onto the shadow table before it is swapped in.
type journalOp struct {
	kind journalKind
	key  int64
	key2 int64
	row  []int32
}

func (j journalOp) applyTo(t *table.Table) {
	switch j.kind {
	case jInsert:
		t.Insert(j.key)
	case jInsertRow:
		t.InsertRow(j.key, j.row)
	case jDelete:
		_ = t.Delete(j.key) // mirrored failure: key also absent in shadow
	case jUpdate:
		_ = t.UpdateKey(j.key, j.key2)
	}
}

// errEmptyShard marks operations against a shard that holds no rows yet.
var errEmptyShard = fmt.Errorf("shard: empty shard")

// shard is one partition: a table plus the swap lock and retrain journal.
type shard struct {
	// mu guards the tbl pointer. Readers and writers hold it shared for
	// the duration of an operation; the retrainer holds it exclusive only
	// to snapshot and to swap, never while solving layouts.
	mu  sync.RWMutex
	tbl *table.Table // nil until the shard receives its first row

	// jmu guards the retrain journal. While journaling, writers apply
	// and append under mu.RLock + jmu (keeping journal order identical
	// to application order); the retrainer flips journaling and drains
	// the journal under mu.Lock, so a swap observes every mutation
	// applied to the outgoing table.
	jmu        sync.Mutex
	journaling bool // written only under mu.Lock; stable under mu.RLock
	journal    []journalOp

	// layoutMu serializes layout mutations (in-place Train vs shadow
	// retrain) on this shard: a user-driven Train blocks behind an
	// in-flight background retrain (and vice versa) instead of failing.
	layoutMu sync.Mutex

	cfg table.Config // table config, for seeding and shadow rebuilds
	mon *monitor
}

// Config configures New.
type Config struct {
	// Shards is the partition count (default 1).
	Shards int
	// ByRange selects range partitioning on the initial keys' quantiles
	// instead of the default hash partitioning. Range partitioning prunes
	// range-query fan-out; hash partitioning spreads hot key ranges over
	// the whole fleet.
	ByRange bool
	// Table configures each shard's table.
	Table table.Config
	// Gen generates payload rows at load time (nil = table default).
	Gen table.PayloadGen
	// MonitorCap is the per-shard monitor window in operations
	// (default 8192); the window feeds background retraining.
	MonitorCap int
}

// Engine is a sharded Casper engine.
type Engine struct {
	cfg    table.Config
	part   Partitioner
	shards []*shard

	// monOn gates per-operation monitor recording; it is only set while a
	// background retrainer is running, so the unmonitored fast path costs
	// one atomic load.
	monOn        atomic.Bool
	keyLo, keyHi int64 // initial key extremes, for drift bucketing

	retrainMu sync.Mutex
	stopCh    chan struct{}
	doneCh    chan struct{}
	retrains  atomic.Uint64
}

// New loads keys (any order) into a sharded engine.
func New(keys []int64, cfg Config) (*Engine, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("shard: empty key set")
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	var part Partitioner
	if cfg.ByRange {
		part = NewRangePartitioner(keys, n)
	} else {
		part = NewHashPartitioner(n)
	}
	monCap := cfg.MonitorCap
	if monCap <= 0 {
		monCap = 8192
	}
	e := &Engine{cfg: cfg.Table, part: part, keyLo: keys[0], keyHi: keys[0]}
	perShard := make([][]int64, part.Shards())
	for _, k := range keys {
		perShard[part.Shard(k)] = append(perShard[part.Shard(k)], k)
		if k < e.keyLo {
			e.keyLo = k
		}
		if k > e.keyHi {
			e.keyHi = k
		}
	}
	for i := 0; i < part.Shards(); i++ {
		s := &shard{cfg: cfg.Table, mon: newMonitor(monCap)}
		if len(perShard[i]) > 0 {
			tbl, err := table.New(perShard[i], cfg.Table, cfg.Gen)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			s.tbl = tbl
		}
		e.shards = append(e.shards, s)
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.part.Shards() }

// Partitioner returns the key router in use.
func (e *Engine) Partitioner() Partitioner { return e.part }

// shardFor routes a key to its shard.
func (e *Engine) shardFor(key int64) *shard { return e.shards[e.part.Shard(key)] }

// bucket maps a key to a drift-histogram bucket over the initial domain.
func (e *Engine) bucket(key int64) int {
	span := e.keyHi - e.keyLo + 1
	if span <= 0 {
		return 0
	}
	b := int(float64(key-e.keyLo) / float64(span) * driftBuckets)
	if b < 0 {
		b = 0
	}
	if b >= driftBuckets {
		b = driftBuckets - 1
	}
	return b
}

// record feeds an operation into the monitor of every shard it touches,
// under the same RouteOp rule the training split uses.
func (e *Engine) record(op workload.Op) {
	owner := e.part.Shard(op.Key)
	workload.RouteOp(op, e.part.Shard, e.part.Span, func(s int) {
		key := op.Key
		if op.Kind == workload.Q6Update && s != owner {
			key = op.Key2 // the update lands in this shard at its new key
		}
		e.shards[s].mon.record(op, e.bucket(key))
	})
}

// ---------------------------------------------------------------------------
// Shard-local application with journaling
// ---------------------------------------------------------------------------

// run executes a mutation against the shard's current table under the swap
// read lock, journaling it (on success) when a shadow retrain is in flight.
// When the shard is still empty, seed builds a one-row table for inserts;
// deletes and updates report errEmptyShard.
//
// The journaling flag only transitions under the exclusive swap lock, so it
// is stable for the whole RLock window here. While a retrain is in flight,
// apply and journal-append happen atomically under jmu: dependent writes
// (an update another writer's delete relies on) land in the journal in
// exactly their application order, so the shadow replay preserves the live
// table's row counts and key contents exactly. One caveat inherits from
// Delete's own contract ("removes one row with the key, unspecified which"):
// when duplicate keys carry different payloads, a replayed delete may keep a
// different duplicate's payload than the live table did — within contract,
// but not byte-identical (see ROADMAP: row-identity journaling). When no
// retrain is running, writes skip jmu entirely and only contend on the
// table's chunk locks.
func (s *shard) run(j journalOp, fn func(*table.Table) error) error {
	for {
		s.mu.RLock()
		if t := s.tbl; t != nil {
			var err error
			if s.journaling {
				s.jmu.Lock()
				err = fn(t)
				if err == nil {
					s.journal = append(s.journal, j)
				}
				s.jmu.Unlock()
			} else {
				err = fn(t)
			}
			s.mu.RUnlock()
			return err
		}
		s.mu.RUnlock()
		if j.kind == jDelete || j.kind == jUpdate {
			return errEmptyShard
		}
		if s.seed(j) {
			return nil
		}
		// Lost the creation race; retry through the populated path.
	}
}

// seed creates the shard's table holding exactly j's row. Returns false if
// another writer created the table first.
func (s *shard) seed(j journalOp) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tbl != nil {
		return false
	}
	tbl, err := table.NewFromRows([]int64{j.key}, [][]int32{j.row}, s.cfg)
	if err != nil {
		panic(fmt.Sprintf("shard: seeding one-row table: %v", err))
	}
	s.tbl = tbl
	return true
}

// read runs fn against the current table under the swap read lock; fn is
// skipped (zero result) while the shard is empty.
func (s *shard) read(fn func(*table.Table)) {
	s.mu.RLock()
	if s.tbl != nil {
		fn(s.tbl)
	}
	s.mu.RUnlock()
}

// ---------------------------------------------------------------------------
// Reads: fan out across spanned shards and merge
// ---------------------------------------------------------------------------

// PointQuery returns the number of live rows with the given key (Q1).
func (e *Engine) PointQuery(key int64) int {
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q1PointQuery, Key: key})
	}
	n := 0
	e.shardFor(key).read(func(t *table.Table) { n = t.PointQuery(key) })
	return n
}

// fanOut merges fn over shards [a, b], returning the sum. The merge runs on
// parallel goroutines when the runtime has CPUs to run them; on a single-CPU
// runtime a sequential merge is strictly cheaper.
func (e *Engine) fanOut(a, b int, fn func(*table.Table) int64) int64 {
	if a == b {
		var v int64
		e.shards[a].read(func(t *table.Table) { v = fn(t) })
		return v
	}
	if runtime.GOMAXPROCS(0) == 1 {
		var sum int64
		for i := a; i <= b; i++ {
			e.shards[i].read(func(t *table.Table) { sum += fn(t) })
		}
		return sum
	}
	var wg sync.WaitGroup
	parts := make([]int64, b-a+1)
	for i := a; i <= b; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.shards[i].read(func(t *table.Table) { parts[i-a] = fn(t) })
		}(i)
	}
	wg.Wait()
	var sum int64
	for _, v := range parts {
		sum += v
	}
	return sum
}

// RangeCount counts live rows with keys in [lo, hi] (Q2).
func (e *Engine) RangeCount(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q2RangeCount, Key: lo, Key2: hi})
	}
	a, b := e.part.Span(lo, hi)
	return int(e.fanOut(a, b, func(t *table.Table) int64 { return int64(t.RangeCount(lo, hi)) }))
}

// RangeSum sums the keys of live rows in [lo, hi] (Q3).
func (e *Engine) RangeSum(lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q3RangeSum, Key: lo, Key2: hi})
	}
	a, b := e.part.Span(lo, hi)
	return e.fanOut(a, b, func(t *table.Table) int64 { return t.RangeSum(lo, hi) })
}

// MultiRangeSum runs the TPC-H-Q6-shaped query across all spanned shards.
func (e *Engine) MultiRangeSum(lo, hi int64, filters []table.PayloadFilter, sumCol int) int64 {
	if hi < lo {
		return 0
	}
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q3RangeSum, Key: lo, Key2: hi})
	}
	a, b := e.part.Span(lo, hi)
	return e.fanOut(a, b, func(t *table.Table) int64 { return t.MultiRangeSum(lo, hi, filters, sumCol) })
}

// Payload returns payload column col of one row with the given key.
func (e *Engine) Payload(key int64, col int) (int32, bool) {
	var v int32
	var ok bool
	e.shardFor(key).read(func(t *table.Table) { v, ok = t.Payload(key, col) })
	return v, ok
}

// Len returns the live row count across all shards.
func (e *Engine) Len() int {
	n := 0
	for _, s := range e.shards {
		s.read(func(t *table.Table) { n += t.Len() })
	}
	return n
}

// Chunks returns the total column chunk count across all shards.
func (e *Engine) Chunks() int {
	n := 0
	for _, s := range e.shards {
		s.read(func(t *table.Table) { n += t.Chunks() })
	}
	return n
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

// Insert adds a row with the given key (Q4).
func (e *Engine) Insert(key int64) {
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q4Insert, Key: key})
	}
	_ = e.shardFor(key).run(journalOp{kind: jInsert, key: key},
		func(t *table.Table) error { t.Insert(key); return nil })
}

// insertRow adds a row with an explicit payload (cross-shard update half).
func (e *Engine) insertRow(key int64, row []int32) {
	_ = e.shardFor(key).run(journalOp{kind: jInsertRow, key: key, row: row},
		func(t *table.Table) error { t.InsertRow(key, row); return nil })
}

// Delete removes one row with the given key (Q5).
func (e *Engine) Delete(key int64) error {
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q5Delete, Key: key})
	}
	err := e.shardFor(key).run(journalOp{kind: jDelete, key: key},
		func(t *table.Table) error { return t.Delete(key) })
	if err == errEmptyShard {
		return fmt.Errorf("shard: delete of absent key %d", key)
	}
	return err
}

// UpdateKey changes one row's key, preserving its payload (Q6). When the old
// and new keys live on different shards the move is a take+insert pair; a
// concurrent reader may briefly observe the row on neither shard, but never
// on both and never with a torn payload.
func (e *Engine) UpdateKey(old, new int64) error {
	if e.monOn.Load() {
		e.record(workload.Op{Kind: workload.Q6Update, Key: old, Key2: new})
	}
	so, sn := e.part.Shard(old), e.part.Shard(new)
	if so == sn {
		err := e.shards[so].run(journalOp{kind: jUpdate, key: old, key2: new},
			func(t *table.Table) error { return t.UpdateKey(old, new) })
		if err == errEmptyShard {
			return fmt.Errorf("shard: update of absent key %d", old)
		}
		return err
	}
	var row []int32
	err := e.shards[so].run(journalOp{kind: jDelete, key: old},
		func(t *table.Table) error {
			var terr error
			row, terr = t.TakeRow(old)
			return terr
		})
	if err == errEmptyShard {
		return fmt.Errorf("shard: update of absent key %d", old)
	}
	if err != nil {
		return err
	}
	e.insertRow(new, row)
	return nil
}

// ---------------------------------------------------------------------------
// Batched execution
// ---------------------------------------------------------------------------

// Execute runs one operation, returning a sink value (query result or 1/0
// success flag for writes).
func (e *Engine) Execute(op workload.Op) int64 {
	switch op.Kind {
	case workload.Q1PointQuery:
		return int64(e.PointQuery(op.Key))
	case workload.Q2RangeCount:
		return int64(e.RangeCount(op.Key, op.Key2))
	case workload.Q3RangeSum:
		return e.RangeSum(op.Key, op.Key2)
	case workload.Q4Insert:
		e.Insert(op.Key)
		return 1
	case workload.Q5Delete:
		if err := e.Delete(op.Key); err == nil {
			return 1
		}
		return 0
	case workload.Q6Update:
		if err := e.UpdateKey(op.Key, op.Key2); err == nil {
			return 1
		}
		return 0
	}
	return 0
}

// ExecuteAll runs the operations serially in order.
func (e *Engine) ExecuteAll(ops []workload.Op) int64 {
	var sink int64
	for _, op := range ops {
		sink += e.Execute(op)
	}
	return sink
}

// ExecuteParallel spreads the operations over the given number of worker
// goroutines regardless of shard affinity; shard and chunk locks serialize
// conflicting writes.
func (e *Engine) ExecuteParallel(ops []workload.Op, workers int) int64 {
	if workers <= 1 {
		return e.ExecuteAll(ops)
	}
	var wg sync.WaitGroup
	sums := make([]int64, workers)
	per := (len(ops) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ops) {
			hi = len(ops)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []workload.Op) {
			defer wg.Done()
			var s int64
			for _, op := range part {
				s += e.Execute(op)
			}
			sums[w] = s
		}(w, ops[lo:hi])
	}
	wg.Wait()
	var sink int64
	for _, s := range sums {
		sink += s
	}
	return sink
}

// ApplyBatch groups the operations by owning shard and applies each group on
// its own goroutine — the batched write path. Single-shard operations keep
// their relative order within a shard; operations spanning shards (range
// reads under hash partitioning, cross-shard updates) run after the
// per-shard waves. The returned sink is order-independent for disjoint-key
// batches.
func (e *Engine) ApplyBatch(ops []workload.Op) int64 {
	n := e.part.Shards()
	if n == 1 {
		return e.ExecuteAll(ops)
	}
	groups := make([][]workload.Op, n)
	var cross []workload.Op
	for _, op := range ops {
		// RouteOp yields every shard the op touches; single-shard ops
		// join that shard's parallel group, multi-shard ops go to the
		// cross wave.
		first, touched := -1, 0
		workload.RouteOp(op, e.part.Shard, e.part.Span, func(s int) {
			if touched == 0 {
				first = s
			}
			touched++
		})
		if touched == 1 {
			groups[first] = append(groups[first], op)
		} else {
			cross = append(cross, op)
		}
	}
	var wg sync.WaitGroup
	sums := make([]int64, n)
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []workload.Op) {
			defer wg.Done()
			var s int64
			for _, op := range g {
				s += e.Execute(op)
			}
			sums[i] = s
		}(i, g)
	}
	wg.Wait()
	var sink int64
	for _, s := range sums {
		sink += s
	}
	for _, op := range cross {
		sink += e.Execute(op)
	}
	return sink
}

// Pending is a handle to an asynchronously applied batch.
type Pending struct {
	ch chan int64
}

// Wait blocks until the batch has been applied and returns its sink value.
func (p *Pending) Wait() int64 { return <-p.ch }

// ApplyBatchAsync applies the batch on a background goroutine, returning
// immediately with a handle the caller can Wait on.
func (e *Engine) ApplyBatchAsync(ops []workload.Op) *Pending {
	p := &Pending{ch: make(chan int64, 1)}
	go func() { p.ch <- e.ApplyBatch(ops) }()
	return p
}

// ---------------------------------------------------------------------------
// Training
// ---------------------------------------------------------------------------

// Train re-partitions every shard for the sampled workload. The sample is
// split per shard (range ops feed every spanned shard, updates both
// endpoints), then the shards train concurrently, dividing the solver
// parallelism between them. Training mutates layouts in place under chunk
// locks; use the background retrainer for non-blocking re-layout.
func (e *Engine) Train(sample []workload.Op, parallelism int) error {
	if parallelism < 1 {
		parallelism = 1
	}
	n := e.part.Shards()
	per := workload.SplitByShard(sample, n, e.part.Shard, e.part.Span)
	conc := n
	if parallelism < conc {
		conc = parallelism
	}
	solverPar := parallelism / conc
	if solverPar < 1 {
		solverPar = 1
	}
	sem := make(chan struct{}, conc)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		s := e.shards[i]
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, s *shard) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = e.trainShard(i, s, per[i], solverPar)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// trainShard runs an in-place TrainLayout on one shard, serialized against
// shadow retrains (it waits for an in-flight one rather than failing).
func (e *Engine) trainShard(i int, s *shard, sample []workload.Op, parallelism int) error {
	s.layoutMu.Lock()
	defer s.layoutMu.Unlock()
	var err error
	s.read(func(t *table.Table) { err = t.TrainLayout(sample, parallelism) })
	return err
}

// LayoutSummary describes one chunk's physical layout within a shard.
type LayoutSummary struct {
	Shard      int
	Chunk      int
	Partitions int
	Sizes      []int
	Ghosts     []int
}

// Layouts reports the current physical layout of every shard's partitioned
// chunks.
func (e *Engine) Layouts() []LayoutSummary {
	var out []LayoutSummary
	for i, s := range e.shards {
		s.read(func(t *table.Table) {
			for _, l := range t.Layouts() {
				out = append(out, LayoutSummary{
					Shard:      i,
					Chunk:      l.Chunk,
					Partitions: l.Partitions,
					Sizes:      l.Sizes,
					Ghosts:     l.Ghosts,
				})
			}
		})
	}
	return out
}

// Close stops the background retrainer if one is running.
func (e *Engine) Close() { e.StopAutoRetrain() }
