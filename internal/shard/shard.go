// Package shard scales the single-table Casper engine to a fleet of
// independently laid-out tables. The paper observes that column layouts
// "create regions of the data that can be processed in parallel" (§6);
// shard takes that to its production conclusion:
//
//   - the key domain is hash- or range-partitioned across N tables, each
//     with its own locks, monitor window, and cost-model training state;
//   - point and range reads fan out across the spanned shards and merge;
//   - ApplyBatch groups a write batch by shard and applies the groups in
//     parallel;
//   - a background worker watches per-shard access-pattern drift and
//     re-trains drifted shards on a shadow copy, swapping the new layout in
//     atomically so reads never block on re-layout (the online A' arc of
//     Fig. 10);
//   - cross-shard key moves commit through an epoch-based protocol (below),
//     so a concurrent reader observes a moving row on exactly one shard at
//     all times.
//
// A 1-shard engine is behaviorally identical to the bare table, which keeps
// the public casper API backward compatible.
//
// # Epoch-based cross-shard commit protocol
//
// The engine carries a global epoch counter (a txn.Oracle, shareable with
// the transaction manager so commits and moves draw from one time domain)
// and a registry of staged cross-shard moves. Routing state — the epoch,
// the partitioner, and the staged-move registry (indexed by old key) — is
// published as one immutable snapshot behind an atomic pointer (routeSnap),
// so the hot read path pays one atomic load, not a contended lock acquire.
// Consistency comes from the striped move gate: one reader/writer stripe
// per shard. A point read holds the single stripe owning its key shared; a
// range read holds exactly the stripes its span touches; whole-fleet reads
// (Len, Chunks, View, RowCounts) hold every stripe shared. Move-gate
// transitions — staging or publishing a cross-shard move, a rebalance
// install — hold every stripe exclusively in ascending stripe order, so
// holding any one stripe shared freezes the entire snapshot: the epoch,
// the boundaries, and the registry are stable for the whole operation, and
// disjoint reads no longer contend on a single gate cache line.
//
// A reader validates its stripes optimistically: load the snapshot, lock
// the stripes the snapshot's partitioner routes to, then reload. If the
// partitioner changed in between (a rebalance install won the race), the
// stripes may be the wrong ones — unlock and retry; otherwise the freshest
// snapshot is used under the held stripes. Installs are rare, so the retry
// loop almost always exits on the first pass.
//
// A cross-shard UpdateKey commits in two short exclusive windows:
//
//  1. Stage: take the row from the source shard and register the staged
//     move (key pair + payload) in the registry. From this instant readers
//     compensate: the staged row still counts at its old key, served from
//     the registry instead of the source table.
//  2. Publish: insert the row at the destination shard, retire the registry
//     entry, and bump the global epoch — a single epoch bump that flips the
//     row's visible home from the old key to the new one atomically.
//
// Because both transitions happen while readers are excluded (they take
// every stripe), and readers hold their stripes across their whole fan-out,
// no reader ever observes the row on zero shards or on two shards —
// including while a shadow retrain of either shard is in flight (both
// halves journal like any other write, with the payload pinning row
// identity and the epoch recording commit order).
//
// # Lock order
//
// Gate stripes come first, then shard locks, then journal locks:
//
//	gate stripe(s) (ascending stripe index) → shard.mu → shard.jmu
//
// Multi-stripe acquisitions — range spans, whole-fleet reads, and the
// all-stripe exclusive windows of moves and installs — always acquire in
// ascending stripe index order and release in descending order. Shard code
// never acquires a stripe while holding shard.mu or jmu, so the order is
// acyclic. layoutMu (per-shard layout serialization) is taken without any
// stripe held and never nests inside one; monitor locks never nest inside
// shard or table locks. The fan-out worker pool executes read closures
// that take shard.mu only, so pool workers obey the same order.
//
// Observability (internal/obs) sits outside this order entirely: metric
// recording is lock-free (atomic counters and histogram buckets) and must
// never be called while holding shard.mu or jmu — recording under gate
// stripes is allowed, and the one sanctioned exception is WAL byte/append
// accounting inside wal.Log, which runs under the log's own mutex while
// the caller holds mu.RLock+jmu (atomics only, so no order edge is
// created). Event-journal appends take only the journal's leaf mutex and
// follow the same rule: emit lifecycle events after shard.mu/jmu windows
// close (checkpoints, retrains) or under gate stripes alone (move
// publish).
//
// Streaming scans (stream.go) follow the same order with one extra rule:
// a cursor-mode shardSource acquires its shard's gate stripe shared only
// for the duration of ONE batch fill — stripe → shard.mu → chunk locks,
// all released before the batch is handed to the consumer — and never
// holds any lock across a consumer yield. It revalidates at every fill:
// the routing snapshot is reloaded under the stripe (observing any install
// that landed between batches) and the table pointer is re-checked under
// shard.mu (restarting the chunk iterator at the resume key if a shadow
// retrain swapped the table). Pinned-mode sources (View.Scan, and the
// streamFold under every aggregate) must NOT touch stripes — their caller
// already holds the covering stripes shared, and re-acquiring would
// deadlock behind a queued writer — so they take only shard.mu per batch.
// Aggregates therefore keep today's exactly-once visibility: lockSpan is
// held for the entire fold, batching only the chunk-level locking.
// Prefetch fills run on fan-out pool workers and acquire stripe/shard.mu
// in the same order; a fill never blocks on its consumer (the batch
// hand-off channel always has room), so pool saturation degrades to
// inline fills, never deadlock.
//
// # Drift-triggered shard rebalancing
//
// Range partitioning fixes boundaries at load time, so a drifted key
// distribution piles rows onto one shard. Rebalancing (rebalance.go) is the
// sharded analogue of re-partitioning inside a shard: a detector watches
// per-shard row counts (max/mean skew) and write rates, proposes fresh
// boundaries — by default the minimal-movement proposer, which re-splits
// only the shards breaching the skew bound (merging load into their starved
// neighbors) and leaves every other boundary bit-identical; the exhaustive
// global-quantile re-split remains selectable as RebalanceQuantile — and
// migrates rows through a three-step protocol that extends the cross-shard
// commit protocol above. The whole migration is planned from the ownership
// delta: the key intervals whose owner differs between the old and new
// bounds. Rows outside those intervals keep their owner by construction, so
// every scan below is bounded to them (table.KeysInRange) and both the
// migration volume and the publish pause scale with the drift actually
// absorbed, not with the table size:
//
//  1. Stage: rows inside the delta intervals are taken from the shards
//     losing them and parked in the staged-move registry (old key == new
//     key), in batches under short exclusive move-gate windows. Between
//     batches readers run normally, serving staged rows from the registry —
//     every row stays visible exactly once throughout.
//  2. Publish: under one exclusive move-gate window that also holds every
//     shard's swap lock (freezing single-shard writers), staged rows are
//     inserted at their destination shards, the delta intervals (only) are
//     rescanned for stragglers that landed after staging, and the bulk
//     moves are WAL-logged as MoveOut/MoveIn pairs plus a RecRebalance
//     boundary record carrying the (minimally changed) bounds.
//     Before freezing, the window raises an install barrier: new
//     cross-shard moves may not stage, and every in-flight one drains —
//     boundaries never change while a move is staged, so a staged row's
//     routed owner always equals the shard it physically left (the
//     invariant its WAL records and checkpoint folding rely on).
//  3. Install: still inside that window, the new RangePartitioner is
//     installed with a single epoch bump, flipping every migrated row's
//     visible home atomically; the registry entries retire with it.
//
// Writers route to a shard, then revalidate the route after acquiring the
// shard's swap lock: because the install holds every swap lock exclusively,
// a writer that raced the install observes the new partitioner once it gets
// the lock and re-routes instead of stranding its row on a shard that no
// longer owns the key. Readers hold their gate stripes shared for their
// full fan-out and validate the partitioner after locking, so they never
// observe a half-installed boundary set.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"casper/internal/obs"
	"casper/internal/table"
	"casper/internal/txn"
	"casper/internal/wal"
	"casper/internal/workload"
)

// journalKind enumerates the mutations a retrain journal can carry.
type journalKind int

const (
	jInsert journalKind = iota
	jInsertRow
	jDelete
	jUpdate
)

// journalOp is one mutation recorded while a shadow retrain is in flight,
// replayed onto the shadow table before it is swapped in. Deletes and
// updates carry the payload of the row the live table actually touched, so
// replay resolves duplicate keys to the same row. Replay order is the
// append order established under jmu; the epoch stamp does not drive
// replay — it records which engine epoch each mutation was applied under,
// for diagnostics and tests.
type journalOp struct {
	kind  journalKind
	key   int64
	key2  int64
	row   []int32
	epoch uint64
	// skipWAL suppresses the WAL record for this mutation. The halves of a
	// cross-shard move set it: they journal normally (shadow retrains must
	// replay them) but durability logs the move as a MoveOut/MoveIn record
	// pair at publish instead, so recovery can reconcile a move whose
	// halves straddle the crash.
	skipWAL bool
}

// record converts a journal entry to its WAL form.
func (j journalOp) record() wal.Record {
	var k wal.Kind
	switch j.kind {
	case jInsert:
		k = wal.RecInsert
	case jInsertRow:
		k = wal.RecInsertRow
	case jDelete:
		k = wal.RecDelete
	case jUpdate:
		k = wal.RecUpdate
	}
	return wal.Record{Kind: k, Epoch: j.epoch, Key: j.key, Key2: j.key2, Row: j.row}
}

func (j journalOp) applyTo(t *table.Table) {
	switch j.kind {
	case jInsert:
		t.Insert(j.key)
	case jInsertRow:
		t.InsertRow(j.key, j.row)
	case jDelete:
		// Row-identity replay: drop the duplicate carrying exactly the
		// journaled payload (mirrored failure: key also absent in shadow).
		_ = t.DeleteRowExact(j.key, j.row)
	case jUpdate:
		if err := t.DeleteRowExact(j.key, j.row); err == nil {
			t.InsertRow(j.key2, j.row)
		}
	}
}

// errEmptyShard marks operations against a shard that holds no rows yet.
var errEmptyShard = fmt.Errorf("shard: empty shard")

// shard is one partition: a table plus the swap lock and retrain journal.
type shard struct {
	// idx is this shard's ordinal in eng.shards; together they let a write
	// revalidate its routing after acquiring the swap lock (see Engine.mutate
	// and the rebalance section of the package comment).
	idx int
	eng *Engine

	// mu guards the tbl pointer. Readers and writers hold it shared for
	// the duration of an operation; the retrainer holds it exclusive only
	// to snapshot and to swap, never while solving layouts.
	mu  sync.RWMutex
	tbl *table.Table // nil until the shard receives its first row

	// jmu guards the retrain journal. While journaling, writers apply
	// and append under mu.RLock + jmu (keeping journal order identical
	// to application order); the retrainer flips journaling and drains
	// the journal under mu.Lock, so a swap observes every mutation
	// applied to the outgoing table.
	jmu        sync.Mutex
	journaling bool // written only under mu.Lock; stable under mu.RLock
	journal    []journalOp

	// layoutMu serializes layout mutations (in-place Train vs shadow
	// retrain) on this shard: a user-driven Train blocks behind an
	// in-flight background retrain (and vice versa) instead of failing.
	layoutMu sync.Mutex

	cfg table.Config // table config, for seeding and shadow rebuilds
	mon *monitor
	ep  *txn.Oracle // engine epoch oracle, for stamping journal entries

	// Durability state (nil/zero on in-memory engines). log is the shard's
	// WAL handle; appends happen under mu.RLock + jmu exactly like journal
	// entries, so WAL order matches application order for dependent writes.
	// sdir is the shard's directory; ckptMu serializes checkpoints of this
	// shard; nextCkpt is the next checkpoint sequence number.
	log      *wal.Log
	sdir     string
	ckptMu   sync.Mutex
	nextCkpt uint64
}

// Config configures New.
type Config struct {
	// Shards is the partition count (default 1).
	Shards int
	// ByRange selects range partitioning on the initial keys' quantiles
	// instead of the default hash partitioning. Range partitioning prunes
	// range-query fan-out; hash partitioning spreads hot key ranges over
	// the whole fleet.
	ByRange bool
	// Table configures each shard's table.
	Table table.Config
	// Gen generates payload rows at load time (nil = table default).
	Gen table.PayloadGen
	// MonitorCap is the per-shard monitor window in operations
	// (default 8192); the window feeds background retraining.
	MonitorCap int
	// Epoch is the timestamp oracle backing the cross-shard commit
	// protocol. Passing the oracle of a txn.Manager puts transactional
	// commits and cross-shard moves in one time domain; nil creates a
	// private oracle.
	Epoch *txn.Oracle
	// Dir enables durability: each shard keeps an append-only WAL and
	// chunk checkpoints under this directory. When the directory already
	// holds a committed manifest, New recovers the persisted engine (keys
	// is ignored); otherwise it bootstraps from keys and persists the
	// initial state. Empty disables durability (fully in-memory).
	Dir string
	// Sync is the WAL fsync policy for durable engines (default
	// wal.SyncInterval).
	Sync wal.SyncPolicy
	// SyncEvery is the fsync interval under wal.SyncInterval (default
	// 100ms).
	SyncEvery time.Duration
	// Admission configures the write admission controller (admission.go):
	// a token-bucket write limiter with per-tenant fairness whose refill
	// rate the drift monitors govern. The zero value disables it.
	Admission AdmissionPolicy
}

// pendingMove is a cross-shard UpdateKey whose take half has executed but
// whose insert half has not yet published: the row is physically on neither
// shard, and readers serve it from this registry entry at its old key.
type pendingMove struct {
	old, new int64
	row      []int32
}

// Engine is a sharded Casper engine.
type Engine struct {
	cfg    table.Config
	shards []*shard

	// route is the atomically published routing snapshot: epoch,
	// partitioner, and staged-move index as of the last move-gate
	// transition. Reads load it once (one atomic load, no lock) and then
	// pin it by holding gate stripes shared; every transition — move
	// stage/publish/rollback, rebalance install — replaces the pointer
	// with a fresh immutable snapshot while holding every stripe
	// exclusively. Lock-free paths (batch grouping, monitor routing,
	// write pre-routing) load it once per decision; writes revalidate
	// their route under the shard swap lock.
	route atomic.Pointer[routeSnap]
	// stripes is the striped move gate, one stripe per shard, in shard
	// order. See the package comment's lock-order section; acquire
	// through lockKey/lockSpan/rlockAll/lockAll, never directly.
	stripes []gateStripe
	// pool is the bounded fan-out worker pool shared by every range read
	// (see fanPool).
	pool *fanPool

	// epoch is the global epoch counter of the cross-shard commit
	// protocol; publishing a cross-shard move advances it exactly once.
	epoch *txn.Oracle
	// installing (guarded by the all-stripe exclusive gate) is the
	// rebalance install barrier: while set, new cross-shard moves may not
	// stage. The rebalance publish window raises it and then waits for
	// every in-flight move to drain before installing the new partitioner,
	// so boundaries never change while a move is staged — logMove's record
	// placement and checkpointShard's registry folding may therefore
	// equate a staged row's routed owner with the shard it was physically
	// taken from.
	installing bool
	// failDestInsert, when non-nil, injects a destination-shard rejection
	// into the publish half of a cross-shard move (test seam for the
	// rollback path).
	failDestInsert func(shard int, key int64) error

	// Durability state (zero on in-memory engines): dir is the engine
	// directory, wopts the WAL options shared by every shard's log, and
	// moveSeq the cross-shard move ID counter pairing MoveOut/MoveIn WAL
	// records (allocated inside the publish window, so checkpoints cut
	// under the move gate see a stable horizon).
	durable bool
	dir     string
	wopts   wal.Options
	moveSeq atomic.Uint64
	// readonly marks a follower engine (NewFollower): every public mutation
	// fails with ErrReadOnly, and only its Replicator — which bypasses the
	// public write path entirely — changes table state.
	readonly bool
	// replayMismatches is the count of WAL records whose row-identity delete
	// failed during recovery replay (set once in recoverDurable, before the
	// engine is shared; see ReplayMismatches).
	replayMismatches int
	// betweenMoveWindows, when non-nil, runs between the stage and publish
	// windows of a cross-shard move with no locks held (test seam for
	// checkpoint-during-move coverage).
	betweenMoveWindows func()

	// obs is the engine's metrics registry and event journal, created in
	// initRoute with one stripe per shard. Metric recording is gated on
	// obs.Enabled() (refcounted, like monOn); journal events are recorded
	// unconditionally. See the lock-order section of the package comment
	// for where recording is allowed.
	obs *obs.Registry

	// adm is the write admission controller (admission.go); nil when
	// Config.Admission is zero. Set once in New before the engine is
	// shared, cleared only by Close.
	adm *admission

	// monOn counts the background workers (retrainer, rebalancer,
	// admission governor) that want per-operation monitor recording, so
	// the unmonitored fast path costs one atomic load and the workers can
	// start and stop independently.
	monOn        atomic.Int32
	keyLo, keyHi int64 // initial key extremes, for drift bucketing

	retrainMu sync.Mutex
	stopCh    chan struct{}
	doneCh    chan struct{}
	retrains  atomic.Uint64

	// Rebalance state (rebalance.go): rebalanceMu serializes rebalances,
	// rebalances counts completed ones, and the reb* channels bracket the
	// auto-rebalance worker. betweenRebalanceWindows (test seam) runs with no
	// locks held between the stage and publish phases; afterRebalanceWAL
	// (test seam) runs after the WAL commits but before the manifest rewrite.
	rebalanceMu             sync.Mutex
	rebalanceCtl            sync.Mutex
	rebStopCh               chan struct{}
	rebDoneCh               chan struct{}
	rebalances              atomic.Uint64
	betweenRebalanceWindows func()
	afterRebalanceWAL       func()
	// verifyRescan (test seam) runs inside the publish window, before the
	// straggler take pass, with the full-table straggler multiset and the
	// delta-bounded one — the shadow comparison behind the rescan
	// equivalence property test. Must not call engine operations (every
	// lock is held).
	verifyRescan func(full, bounded []int64)
}

// routeSnap is one immutable routing snapshot: the epoch, the partitioner,
// and the staged-move index as of the move-gate transition that published
// it. Readers pin a snapshot by holding gate stripes shared; transitions
// replace the whole pointer, never mutate a published snapshot.
type routeSnap struct {
	epoch uint64
	part  Partitioner
	moves *moveIndex
}

// moveIndex is the staged-move registry of a routing snapshot, kept sorted
// by old key so reader-side compensation is a binary search plus a walk of
// the matching entries instead of a scan of every staged move.
type moveIndex struct {
	byOld []*pendingMove
}

var emptyMoves = &moveIndex{}

func (ix *moveIndex) len() int { return len(ix.byOld) }

// forRange calls fn for every staged move whose old key lies in [lo, hi].
func (ix *moveIndex) forRange(lo, hi int64, fn func(*pendingMove)) {
	i := sort.Search(len(ix.byOld), func(i int) bool { return ix.byOld[i].old >= lo })
	for ; i < len(ix.byOld) && ix.byOld[i].old <= hi; i++ {
		fn(ix.byOld[i])
	}
}

// with returns a new index with add staged and drop retired. The receiver
// is never mutated (published snapshots are immutable).
func (ix *moveIndex) with(add []*pendingMove, drop *pendingMove) *moveIndex {
	out := make([]*pendingMove, 0, len(ix.byOld)+len(add))
	for _, m := range ix.byOld {
		if m != drop {
			out = append(out, m)
		}
	}
	out = append(out, add...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].old < out[j].old })
	return &moveIndex{byOld: out}
}

// without returns a new index dropping every move in drop.
func (ix *moveIndex) without(drop map[*pendingMove]bool) *moveIndex {
	out := make([]*pendingMove, 0, len(ix.byOld))
	for _, m := range ix.byOld {
		if !drop[m] {
			out = append(out, m)
		}
	}
	return &moveIndex{byOld: out}
}

// gateStripe is one stripe of the striped move gate, padded so the reader
// counts of different shards live on distinct cache lines — the contention
// the striping exists to remove.
type gateStripe struct {
	mu sync.RWMutex
	_  [128 - unsafe.Sizeof(sync.RWMutex{})%128]byte
}

// initRoute installs the initial routing snapshot and sizes the gate
// stripes and the fan-out pool; called once per constructed engine, before
// it is shared.
func (e *Engine) initRoute(part Partitioner) {
	e.obs = obs.New(part.Shards())
	e.stripes = make([]gateStripe, part.Shards())
	e.pool = newFanPool(e.obs)
	e.route.Store(&routeSnap{part: part, moves: emptyMoves})
}

// loadRoute returns the current routing snapshot. Only stable while at
// least one gate stripe is held; lock-free callers treat it as advisory.
func (e *Engine) loadRoute() *routeSnap { return e.route.Load() }

// loadPart returns the current partitioner.
func (e *Engine) loadPart() Partitioner { return e.route.Load().part }

// publishRoute installs a new routing snapshot carrying the current epoch.
// Caller holds every gate stripe exclusively, so no reader can be between
// its snapshot load and its compensation lookups.
func (e *Engine) publishRoute(part Partitioner, ix *moveIndex) {
	e.route.Store(&routeSnap{epoch: e.epoch.Now(), part: part, moves: ix})
}

// addMove publishes a snapshot with m staged; caller holds every stripe
// exclusively.
func (e *Engine) addMove(m *pendingMove) {
	v := e.route.Load()
	e.publishRoute(v.part, v.moves.with([]*pendingMove{m}, nil))
}

// dropMove publishes a snapshot with m retired; caller holds every stripe
// exclusively.
func (e *Engine) dropMove(m *pendingMove) {
	v := e.route.Load()
	e.publishRoute(v.part, v.moves.with(nil, m))
}

// lockKey acquires the gate stripe owning key shared and returns the
// snapshot it validated plus the stripe ordinal for unlockKey. See the
// package comment for the optimistic validation protocol.
func (e *Engine) lockKey(key int64) (*routeSnap, int) {
	for {
		v := e.route.Load()
		s := v.part.Shard(key)
		e.stripes[s].mu.RLock()
		w := e.route.Load()
		// Same snapshot, or a newer one under the same partitioner (a
		// move transition, which any held stripe excludes from here on):
		// the locked stripe is the right one. Only a rebalance install
		// can invalidate the routing; then retry.
		if w == v || w.part == v.part {
			return w, s
		}
		e.stripes[s].mu.RUnlock()
		if e.obs.Enabled() {
			e.obs.StripeRetries.Inc(s)
		}
	}
}

func (e *Engine) unlockKey(s int) { e.stripes[s].mu.RUnlock() }

// lockSpan acquires the stripes of the span [lo, hi] shared, in ascending
// order, and returns the validated snapshot plus the stripe interval for
// unlockSpan.
func (e *Engine) lockSpan(lo, hi int64) (*routeSnap, int, int) {
	for {
		v := e.route.Load()
		a, b := v.part.Span(lo, hi)
		for i := a; i <= b; i++ {
			e.stripes[i].mu.RLock()
		}
		w := e.route.Load()
		if w == v || w.part == v.part {
			return w, a, b
		}
		for i := b; i >= a; i-- {
			e.stripes[i].mu.RUnlock()
		}
		if e.obs.Enabled() {
			e.obs.StripeRetries.Inc(a)
		}
	}
}

func (e *Engine) unlockSpan(a, b int) {
	for i := b; i >= a; i-- {
		e.stripes[i].mu.RUnlock()
	}
}

// rlockAll acquires every stripe shared (ascending): the whole-fleet read
// gate. Holding it excludes every move-gate transition, so the snapshot
// needs no validation.
func (e *Engine) rlockAll() {
	for i := range e.stripes {
		e.stripes[i].mu.RLock()
	}
}

func (e *Engine) runlockAll() {
	for i := len(e.stripes) - 1; i >= 0; i-- {
		e.stripes[i].mu.RUnlock()
	}
}

// lockAll acquires every stripe exclusively (ascending): the move-gate
// transition window.
func (e *Engine) lockAll() {
	for i := range e.stripes {
		e.stripes[i].mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for i := len(e.stripes) - 1; i >= 0; i-- {
		e.stripes[i].mu.Unlock()
	}
}

// fanPool is the engine's bounded fan-out worker pool: GOMAXPROCS workers
// (sized once, at engine construction) reused across queries, so a range
// fan-out costs channel hand-offs instead of per-query goroutine spawns.
// On a single-CPU runtime the pool stays empty and fan-out degenerates to
// the strictly cheaper sequential merge. Workers are started lazily on the
// first parallel fan-out and then park on the empty channel for the
// engine's lifetime — a closed engine keeps serving reads, so there is
// deliberately no shutdown path.
type fanPool struct {
	size  int
	tasks chan func()
	once  sync.Once
	obs   *obs.Registry // submit-vs-inline accounting; counts pooled paths only
}

func newFanPool(o *obs.Registry) *fanPool {
	n := runtime.GOMAXPROCS(0)
	return &fanPool{size: n, tasks: make(chan func(), 4*n), obs: o}
}

// run executes fn(0..n-1), distributing across the pool's workers. When
// the queue is saturated the caller executes the task inline — the caller
// is a worker too, so a full pool degrades to sequential execution instead
// of blocking, and the pool can never deadlock on its own capacity.
func (p *fanPool) run(n int, fn func(int)) {
	if p.size <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.start()
	rec := p.obs != nil && p.obs.Enabled()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		t := func(i int) func() {
			return func() { defer wg.Done(); fn(i) }
		}(i)
		select {
		case p.tasks <- t:
			if rec {
				p.obs.FanSubmits.Inc(i)
			}
		default:
			if rec {
				p.obs.FanInline.Inc(i)
			}
			t()
		}
	}
	wg.Wait()
}

func (p *fanPool) start() {
	p.once.Do(func() {
		for w := 0; w < p.size; w++ {
			go func() {
				for t := range p.tasks {
					t()
				}
			}()
		}
	})
}

// submit schedules fn on a pool worker without waiting for it. On a
// single-CPU runtime, or when the queue is saturated, fn runs inline before
// submit returns — callers (scan read-ahead) must tolerate synchronous
// execution, which they do because a prefetch fill never blocks on its
// consumer: the hand-off channel always has room for the one outstanding
// batch.
func (p *fanPool) submit(fn func()) {
	if p.size <= 1 {
		fn()
		return
	}
	p.start()
	select {
	case p.tasks <- fn:
		if p.obs != nil && p.obs.Enabled() {
			p.obs.FanSubmits.Inc(0)
		}
	default:
		if p.obs != nil && p.obs.Enabled() {
			p.obs.FanInline.Inc(0)
		}
		fn()
	}
}

// monitoring reports whether any background worker wants per-operation
// monitor recording.
func (e *Engine) monitoring() bool { return e.monOn.Load() > 0 }

// Obs returns the engine's metrics registry (never nil once constructed).
// Tests use it to tighten latency sampling; normal consumers go through
// Metrics/Events.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// EnableObs turns on metric recording (refcounted). Lifecycle events are
// journaled regardless.
func (e *Engine) EnableObs() { e.obs.Enable() }

// DisableObs decrements the metric-recording refcount.
func (e *Engine) DisableObs() { e.obs.Disable() }

// Metrics returns a point-in-time snapshot of every engine metric, stamped
// with the current global epoch so two snapshots diff into rates (epoch
// advances per published cross-shard move and, with a shared oracle, per
// transaction commit).
func (e *Engine) Metrics() obs.Snapshot {
	s := e.obs.Snapshot()
	s.Epoch = e.epoch.Now()
	return s
}

// Events returns journaled lifecycle events with Seq > since, oldest first.
func (e *Engine) Events(since uint64) []obs.Event { return e.obs.Events(since) }

// compHit records n staged-move compensation hits on a read path — rows a
// reader served from the registry instead of a table because a cross-shard
// move or rebalance had them staged.
func (e *Engine) compHit(stripe, n int) {
	if n > 0 && e.obs.Enabled() {
		e.obs.CompHits.Add(stripe, uint64(n))
	}
}

// New loads keys (any order) into a sharded engine. With Config.Dir set the
// engine is durable: if the directory already holds committed state New
// recovers it (keys is ignored), otherwise the keys are loaded and the
// initial state persisted; see durable.go for the recovery protocol.
func New(keys []int64, cfg Config) (*Engine, error) {
	var e *Engine
	var err error
	if cfg.Dir != "" {
		e, err = openDurable(keys, cfg)
	} else {
		e, err = newInMemory(keys, cfg)
	}
	if err != nil {
		return nil, err
	}
	e.startAdmission(cfg.Admission)
	return e, nil
}

// newInMemory is the original fully in-memory constructor.
func newInMemory(keys []int64, cfg Config) (*Engine, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("shard: empty key set")
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	var part Partitioner
	if cfg.ByRange {
		part = NewRangePartitioner(keys, n)
	} else {
		part = NewHashPartitioner(n)
	}
	monCap := cfg.MonitorCap
	if monCap <= 0 {
		monCap = 8192
	}
	ep := cfg.Epoch
	if ep == nil {
		ep = txn.NewOracle()
	}
	e := &Engine{cfg: cfg.Table, epoch: ep, keyLo: keys[0], keyHi: keys[0]}
	e.initRoute(part)
	perShard := make([][]int64, part.Shards())
	for _, k := range keys {
		perShard[part.Shard(k)] = append(perShard[part.Shard(k)], k)
		if k < e.keyLo {
			e.keyLo = k
		}
		if k > e.keyHi {
			e.keyHi = k
		}
	}
	for i := 0; i < part.Shards(); i++ {
		s := &shard{idx: i, eng: e, cfg: cfg.Table, mon: newMonitor(monCap), ep: ep}
		if len(perShard[i]) > 0 {
			tbl, err := table.New(perShard[i], cfg.Table, cfg.Gen)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			s.tbl = tbl
		}
		e.shards = append(e.shards, s)
	}
	return e, nil
}

// Shards returns the shard count. It is invariant across rebalances — a
// rebalance re-splits boundaries among the existing shards, never changes
// their number.
func (e *Engine) Shards() int { return len(e.shards) }

// Partitioner returns the key router currently in use. On a range-
// partitioned engine a rebalance may replace it; the returned value is the
// router as of the call.
func (e *Engine) Partitioner() Partitioner { return e.loadPart() }

// Epoch returns the current global epoch. It advances exactly once per
// published cross-shard move (and, when the oracle is shared with a
// txn.Manager, once per transaction commit).
func (e *Engine) Epoch() uint64 { return e.epoch.Now() }

// shardFor routes a key to its shard under the current partitioner. Reads
// call it under the move gate (route stable for the whole query); writes go
// through mutate, which revalidates the route under the shard swap lock.
func (e *Engine) shardFor(key int64) *shard { return e.shards[e.loadPart().Shard(key)] }

// bucket maps a key to a drift-histogram bucket over the initial domain.
func (e *Engine) bucket(key int64) int {
	span := e.keyHi - e.keyLo + 1
	if span <= 0 {
		return 0
	}
	b := int(float64(key-e.keyLo) / float64(span) * driftBuckets)
	if b < 0 {
		b = 0
	}
	if b >= driftBuckets {
		b = driftBuckets - 1
	}
	return b
}

// record feeds an operation into the monitor of every shard it touches,
// under the same RouteOp rule the training split uses.
func (e *Engine) record(op workload.Op) {
	p := e.loadPart()
	owner := p.Shard(op.Key)
	workload.RouteOp(op, p.Shard, p.Span, func(s int) {
		key := op.Key
		if op.Kind == workload.Q6Update && s != owner {
			key = op.Key2 // the update lands in this shard at its new key
		}
		e.shards[s].mon.record(op, e.bucket(key))
	})
}

// ---------------------------------------------------------------------------
// Shard-local application with journaling
// ---------------------------------------------------------------------------

// routed reports whether this shard still owns j's key(s) under the current
// partitioner. It must be evaluated while holding s.mu (shared or
// exclusive): a rebalance installs a new partitioner only while holding
// every shard's swap lock exclusively, so the answer is stable for the rest
// of the lock window, and a writer that acquired the lock after an install
// is guaranteed to observe the new routing.
func (s *shard) routed(j *journalOp) bool {
	p := s.eng.loadPart()
	if p.Shard(j.key) != s.idx {
		return false
	}
	return j.kind != jUpdate || p.Shard(j.key2) == s.idx
}

// ErrReadOnly is returned by every mutation on a follower engine: a
// follower's state is the replicated image of its leader, and a local write
// would silently diverge it.
var ErrReadOnly = errors.New("shard: engine is read-only (follower)")

// mutate routes j to its owning shard and runs it there, re-routing if a
// concurrent rebalance moved the key's owner while the write waited on the
// shard lock.
func (e *Engine) mutate(j *journalOp, fn func(t *table.Table, capture bool) error) error {
	if e.readonly {
		return ErrReadOnly
	}
	for {
		if err, ok := e.shardFor(j.key).run(j, fn); ok {
			return err
		}
	}
}

// run executes a mutation against the shard's current table under the swap
// read lock, journaling it (on success) when a shadow retrain is in flight
// and WAL-logging it when the engine is durable. fn receives whether it must
// capture row identity; when it must, fn fills j.row with the payload of the
// row it touched before returning — the journal entry and WAL record are
// appended after fn succeeds, so they carry the row identity. When the shard
// is still empty, seed builds a one-row table for inserts; deletes and
// updates report errEmptyShard.
//
// run returns ok=false without executing fn when the shard no longer owns
// j's key under the current partitioner (a rebalance installed new
// boundaries while this write waited on the lock); the caller re-routes.
//
// The journaling flag only transitions under the exclusive swap lock, so it
// is stable for the whole RLock window here. While a retrain is in flight or
// a WAL is attached, apply and append happen atomically under jmu: dependent
// writes (an update another writer's delete relies on) land in the journal
// and the WAL in exactly their application order, so both shadow replay and
// crash replay preserve the live table's row contents byte-identically —
// deletes and updates carry the payload of the row the live table actually
// touched, resolving duplicate keys to the same row. When neither is active,
// writes skip jmu entirely and only contend on the table's chunk locks.
//
// The WAL fsync (group commit, per the log's policy) happens after the locks
// are released, so concurrent committers share fsyncs instead of serializing
// on one.
func (s *shard) run(j *journalOp, fn func(t *table.Table, capture bool) error) (error, bool) {
	for {
		s.mu.RLock()
		if !s.routed(j) {
			s.mu.RUnlock()
			return nil, false
		}
		if t := s.tbl; t != nil {
			var err error
			var lsn uint64
			logging := s.log != nil && !j.skipWAL
			if s.journaling || logging {
				s.jmu.Lock()
				err = fn(t, true)
				if err == nil {
					j.epoch = s.ep.Now()
					if s.journaling {
						s.journal = append(s.journal, *j)
					}
					if logging {
						lsn, _ = s.log.Append(j.record()) // sticky error surfaces in Commit
					}
				}
				s.jmu.Unlock()
			} else {
				err = fn(t, false)
			}
			s.mu.RUnlock()
			if err == nil && logging {
				if werr := s.log.Commit(lsn); werr != nil {
					return werr, true
				}
			}
			return err, true
		}
		s.mu.RUnlock()
		if j.kind == jDelete || j.kind == jUpdate {
			return errEmptyShard, true
		}
		if ok, lsn, logged := s.seed(*j); ok {
			if logged {
				if werr := s.log.Commit(lsn); werr != nil {
					return werr, true
				}
			}
			return nil, true
		}
		// Lost the creation race (or the route went stale); retry — the
		// top-of-loop route check re-routes a stale write.
	}
}

// seed creates the shard's table holding exactly j's row, WAL-logging the
// insert under the same exclusive window so no later record can precede it.
// Returns ok=false if another writer created the table first or the route
// went stale under a concurrent rebalance; logged reports whether a WAL
// record was appended (commit it after seeing ok).
func (s *shard) seed(j journalOp) (ok bool, lsn uint64, logged bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tbl != nil || !s.routed(&j) {
		return false, 0, false
	}
	tbl, err := table.NewFromRows([]int64{j.key}, [][]int32{j.row}, s.cfg)
	if err != nil {
		panic(fmt.Sprintf("shard: seeding one-row table: %v", err))
	}
	s.tbl = tbl
	if s.log != nil && !j.skipWAL {
		j.epoch = s.ep.Now()
		lsn, _ = s.log.Append(j.record())
		return true, lsn, true
	}
	return true, 0, false
}

// read runs fn against the current table under the swap read lock; fn is
// skipped (zero result) while the shard is empty.
func (s *shard) read(fn func(*table.Table)) {
	s.mu.RLock()
	if s.tbl != nil {
		fn(s.tbl)
	}
	s.mu.RUnlock()
}

// ---------------------------------------------------------------------------
// Reads: fan out across spanned shards and merge
// ---------------------------------------------------------------------------

// PointQuery returns the number of live rows with the given key (Q1).
func (e *Engine) PointQuery(key int64) int {
	tr := e.obs.OpBegin(obs.OpPointQuery, int(key))
	defer e.obs.OpEnd(obs.OpPointQuery, int(key), tr)
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q1PointQuery, Key: key})
	}
	v, s := e.lockKey(key)
	defer e.unlockKey(s)
	return e.pointQueryAt(v, key)
}

// pointQueryAt serves a point query under a pinned snapshot (caller holds
// the stripe owning key — or every stripe, for Views): the physical count
// plus one for every staged move whose row is still visible at its old key.
func (e *Engine) pointQueryAt(v *routeSnap, key int64) int {
	n := 0
	e.shards[v.part.Shard(key)].read(func(t *table.Table) { n = t.PointQuery(key) })
	hits := 0
	v.moves.forRange(key, key, func(*pendingMove) { n++; hits++ })
	e.compHit(int(key), hits)
	return n
}

// fanOut merges fn over shards [a, b], returning the sum. The merge runs on
// the engine's worker pool when the runtime has CPUs to run it; on a
// single-CPU runtime a sequential merge is strictly cheaper. The aggregate
// read path now folds over streaming scans (streamFold); fanOut remains as
// the materialized reference implementation the oracle-equivalence tests
// compare against.
func (e *Engine) fanOut(a, b int, fn func(*table.Table) int64) int64 {
	if a == b {
		var v int64
		e.shards[a].read(func(t *table.Table) { v = fn(t) })
		return v
	}
	parts := make([]int64, b-a+1)
	e.pool.run(len(parts), func(i int) {
		e.shards[a+i].read(func(t *table.Table) { parts[i] = fn(t) })
	})
	var sum int64
	for _, v := range parts {
		sum += v
	}
	return sum
}

// RangeCount counts live rows with keys in [lo, hi] (Q2).
func (e *Engine) RangeCount(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	tr := e.obs.OpBegin(obs.OpRangeCount, int(lo))
	defer e.obs.OpEnd(obs.OpRangeCount, int(lo), tr)
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q2RangeCount, Key: lo, Key2: hi})
	}
	v, a, b := e.lockSpan(lo, hi)
	defer e.unlockSpan(a, b)
	return e.rangeCountAt(v, lo, hi)
}

func (e *Engine) rangeCountAt(v *routeSnap, lo, hi int64) int {
	n := int(e.streamFold(v, lo, hi, false, func(keys []int64, _ [][]int32) (int64, bool) {
		return int64(len(keys)), false
	}))
	hits := 0
	v.moves.forRange(lo, hi, func(*pendingMove) { n++; hits++ })
	e.compHit(int(lo), hits)
	return n
}

// RangeSum sums the keys of live rows in [lo, hi] (Q3).
func (e *Engine) RangeSum(lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	tr := e.obs.OpBegin(obs.OpRangeSum, int(lo))
	defer e.obs.OpEnd(obs.OpRangeSum, int(lo), tr)
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q3RangeSum, Key: lo, Key2: hi})
	}
	v, a, b := e.lockSpan(lo, hi)
	defer e.unlockSpan(a, b)
	return e.rangeSumAt(v, lo, hi)
}

func (e *Engine) rangeSumAt(v *routeSnap, lo, hi int64) int64 {
	sum := e.streamFold(v, lo, hi, false, func(keys []int64, _ [][]int32) (int64, bool) {
		var s int64
		for _, k := range keys {
			s += k
		}
		return s, false
	})
	hits := 0
	v.moves.forRange(lo, hi, func(m *pendingMove) { sum += m.old; hits++ })
	e.compHit(int(lo), hits)
	return sum
}

// MultiRangeSum runs the TPC-H-Q6-shaped query across all spanned shards.
func (e *Engine) MultiRangeSum(lo, hi int64, filters []table.PayloadFilter, sumCol int) int64 {
	if hi < lo {
		return 0
	}
	tr := e.obs.OpBegin(obs.OpMultiRange, int(lo))
	defer e.obs.OpEnd(obs.OpMultiRange, int(lo), tr)
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q7MultiRange, Key: lo, Key2: hi})
	}
	v, a, b := e.lockSpan(lo, hi)
	defer e.unlockSpan(a, b)
	return e.multiRangeSumAt(v, lo, hi, filters, sumCol)
}

func (e *Engine) multiRangeSumAt(v *routeSnap, lo, hi int64, filters []table.PayloadFilter, sumCol int) int64 {
	sum := e.streamFold(v, lo, hi, true, func(_ []int64, rows [][]int32) (int64, bool) {
		var s int64
	rowLoop:
		for _, row := range rows {
			for _, f := range filters {
				if x := row[f.Col]; x < f.Lo || x > f.Hi {
					continue rowLoop
				}
			}
			s += int64(row[sumCol])
		}
		return s, false
	})
	hits := 0
	v.moves.forRange(lo, hi, func(m *pendingMove) {
		hits++
		for _, f := range filters {
			if x := m.row[f.Col]; x < f.Lo || x > f.Hi {
				return
			}
		}
		sum += int64(m.row[sumCol])
	})
	e.compHit(int(lo), hits)
	return sum
}

// Payload returns payload column col of one row with the given key. Like
// the other reads it feeds the drift monitor (as a point access — it scans
// the same partition a Q1 of the key would), so payload-heavy workloads
// drive retraining too.
func (e *Engine) Payload(key int64, col int) (int32, bool) {
	tr := e.obs.OpBegin(obs.OpPayload, int(key))
	defer e.obs.OpEnd(obs.OpPayload, int(key), tr)
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q1PointQuery, Key: key})
	}
	v, s := e.lockKey(key)
	defer e.unlockKey(s)
	return e.payloadAt(v, key, col)
}

func (e *Engine) payloadAt(v *routeSnap, key int64, col int) (int32, bool) {
	var val int32
	var ok bool
	e.shards[v.part.Shard(key)].read(func(t *table.Table) { val, ok = t.Payload(key, col) })
	if !ok {
		hits := 0
		v.moves.forRange(key, key, func(m *pendingMove) {
			hits++
			if !ok && col < len(m.row) {
				val, ok = m.row[col], true
			}
		})
		e.compHit(int(key), hits)
	}
	return val, ok
}

// Len returns the live row count across all shards. It pins a routing
// snapshot under the whole-fleet read gate like every other read and is
// counted in the metrics registry (OpLen); it deliberately does NOT feed
// the drift monitor — a fleet-wide row count has no key locality, so
// recording it would only dilute the access-pattern window retraining
// learns from.
func (e *Engine) Len() int {
	tr := e.obs.OpBegin(obs.OpLen, 0)
	defer e.obs.OpEnd(obs.OpLen, 0, tr)
	e.rlockAll()
	defer e.runlockAll()
	return e.lenAt(e.loadRoute())
}

func (e *Engine) lenAt(v *routeSnap) int {
	n := v.moves.len() // staged rows are live at their old key
	for _, s := range e.shards {
		s.read(func(t *table.Table) { n += t.Len() })
	}
	return n
}

// Chunks returns the total column chunk count across all shards.
//
// Read-consistency contract: Chunks holds every gate stripe shared, so the
// boundary set and row placement it observes belong to one routing
// snapshot — it can never see the half-installed state inside a rebalance
// publish window (rows parked off-table, destination tables mid-seed).
// Per-shard chunk counts are still read one shard at a time under each
// shard's swap lock, so concurrent single-shard writes and retrain swaps —
// which do not pass the move gate — may land between shard visits.
//
// Like Len, Chunks is metered (OpChunks) but does not feed the drift
// monitor: it has no key locality to learn from.
func (e *Engine) Chunks() int {
	tr := e.obs.OpBegin(obs.OpChunks, 0)
	defer e.obs.OpEnd(obs.OpChunks, 0, tr)
	e.rlockAll()
	defer e.runlockAll()
	n := 0
	for _, s := range e.shards {
		s.read(func(t *table.Table) { n += t.Chunks() })
	}
	return n
}

// View is a move-stable multi-query read handle pinned to one routing
// snapshot: while the callback of Engine.View runs, every gate stripe is
// held shared, so no cross-shard move can stage or publish and no
// rebalance can install — the epoch, the partitioner, and the staged-move
// registry the view routes through are one frozen routeSnap. Invariants
// that span several queries and depend only on move atomicity hold exactly
// (e.g. a row being moved between shards is counted exactly once by
// PointQuery(old)+PointQuery(new)). It is not a full snapshot: single-shard
// writes (Insert, Delete, same-shard UpdateKey) do not pass through the
// move gate and may land between the view's queries.
type View struct {
	e     *Engine
	v     *routeSnap
	epoch uint64
}

// View runs fn over a move-stable read handle pinned at the current epoch
// and routing snapshot. Queries must go through the View's methods; calling
// Engine methods (or nesting Views) from inside fn can deadlock against a
// queued move. Writes and single queries do not need View — every
// individual engine query pins a snapshot of its own.
func (e *Engine) View(fn func(*View)) {
	e.rlockAll()
	defer e.runlockAll()
	fn(&View{e: e, v: e.loadRoute(), epoch: e.epoch.Now()})
}

// Epoch returns the epoch the view is pinned at. No cross-shard move can
// advance it while the view is live.
func (v *View) Epoch() uint64 { return v.epoch }

// PointQuery is Engine.PointQuery under the view's snapshot. View queries
// are metered on the same per-op counters as their Engine counterparts.
func (v *View) PointQuery(key int64) int {
	tr := v.e.obs.OpBegin(obs.OpPointQuery, int(key))
	defer v.e.obs.OpEnd(obs.OpPointQuery, int(key), tr)
	return v.e.pointQueryAt(v.v, key)
}

// RangeCount is Engine.RangeCount under the view's snapshot.
func (v *View) RangeCount(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	tr := v.e.obs.OpBegin(obs.OpRangeCount, int(lo))
	defer v.e.obs.OpEnd(obs.OpRangeCount, int(lo), tr)
	return v.e.rangeCountAt(v.v, lo, hi)
}

// RangeSum is Engine.RangeSum under the view's snapshot.
func (v *View) RangeSum(lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	tr := v.e.obs.OpBegin(obs.OpRangeSum, int(lo))
	defer v.e.obs.OpEnd(obs.OpRangeSum, int(lo), tr)
	return v.e.rangeSumAt(v.v, lo, hi)
}

// MultiRangeSum is Engine.MultiRangeSum under the view's snapshot.
func (v *View) MultiRangeSum(lo, hi int64, filters []table.PayloadFilter, sumCol int) int64 {
	if hi < lo {
		return 0
	}
	tr := v.e.obs.OpBegin(obs.OpMultiRange, int(lo))
	defer v.e.obs.OpEnd(obs.OpMultiRange, int(lo), tr)
	return v.e.multiRangeSumAt(v.v, lo, hi, filters, sumCol)
}

// Payload is Engine.Payload under the view's snapshot.
func (v *View) Payload(key int64, col int) (int32, bool) {
	tr := v.e.obs.OpBegin(obs.OpPayload, int(key))
	defer v.e.obs.OpEnd(obs.OpPayload, int(key), tr)
	return v.e.payloadAt(v.v, key, col)
}

// Len is Engine.Len under the view's snapshot.
func (v *View) Len() int {
	tr := v.e.obs.OpBegin(obs.OpLen, 0)
	defer v.e.obs.OpEnd(obs.OpLen, 0, tr)
	return v.e.lenAt(v.v)
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

// Insert adds a row with the given key (Q4). The signature has no error to
// return, so on a durable engine a failed WAL append/fsync is held as the
// log's sticky error and surfaces on the next Delete/UpdateKey, SyncWAL,
// Checkpoint, or Close — callers needing per-insert durability confirmation
// should follow the batch with SyncWAL. For the same reason Insert never
// sheds under admission control: it blocks until admitted (tenant lane 0).
// Use Engine.Writer for per-tenant lanes and ErrOverload-style shedding.
func (e *Engine) Insert(key int64) {
	_ = e.admit(0, false)
	_ = e.insertAdmitted(key)
}

// insertAdmitted is the write path below admission.
func (e *Engine) insertAdmitted(key int64) error {
	tr := e.obs.OpBegin(obs.OpInsert, int(key))
	defer e.obs.OpEnd(obs.OpInsert, int(key), tr)
	if e.monitoring() {
		e.record(workload.Op{Kind: workload.Q4Insert, Key: key})
	}
	return e.mutate(&journalOp{kind: jInsert, key: key},
		func(t *table.Table, _ bool) error { t.Insert(key); return nil })
}

// Delete removes one row with the given key (Q5). While a shadow retrain is
// journaling (or a WAL is attached), the deleted row's payload is captured
// for the journal/WAL record, so the replayed delete removes the same
// duplicate the live table dropped; the uncaptured fast path stays a plain
// delete with no payload copy. The operation feeds the drift monitor only
// when it succeeds. Under admission control the op is gated on tenant lane
// 0 and may return ErrOverload without having been applied.
func (e *Engine) Delete(key int64) error {
	if err := e.admit(0, true); err != nil {
		return err
	}
	return e.deleteAdmitted(key)
}

// deleteAdmitted is the write path below admission.
func (e *Engine) deleteAdmitted(key int64) error {
	// Metered per attempt (a failed delete is still a call an operator
	// wants counted); the drift monitor below keeps its success-only rule.
	tr := e.obs.OpBegin(obs.OpDelete, int(key))
	defer e.obs.OpEnd(obs.OpDelete, int(key), tr)
	j := &journalOp{kind: jDelete, key: key}
	err := e.mutate(j, func(t *table.Table, capture bool) error {
		if !capture {
			return t.Delete(key)
		}
		row, terr := t.TakeRow(key)
		j.row = row
		return terr
	})
	if err == errEmptyShard {
		return fmt.Errorf("shard: delete of absent key %d", key)
	}
	if err == nil && e.monitoring() {
		e.record(workload.Op{Kind: workload.Q5Delete, Key: key})
	}
	return err
}

// UpdateKey changes one row's key, preserving its payload (Q6). When the old
// and new keys live on different shards the move commits through the
// epoch-based cross-shard protocol (see the package comment): a concurrent
// reader observes the row on exactly one shard at all times — never on
// neither, never on both, and never with a torn payload. The operation feeds
// the drift monitor only when it succeeds. Under admission control the op
// is gated on tenant lane 0 and may return ErrOverload without having been
// applied.
func (e *Engine) UpdateKey(old, new int64) error {
	if err := e.admit(0, true); err != nil {
		return err
	}
	return e.updateKeyAdmitted(old, new)
}

// updateKeyAdmitted is the write path below admission.
func (e *Engine) updateKeyAdmitted(old, new int64) error {
	if e.readonly {
		return ErrReadOnly
	}
	tr := e.obs.OpBegin(obs.OpUpdateKey, int(old))
	defer e.obs.OpEnd(obs.OpUpdateKey, int(old), tr)
	var err error
	for {
		p := e.loadPart()
		so, sn := p.Shard(old), p.Shard(new)
		var ok bool
		if so == sn {
			j := &journalOp{kind: jUpdate, key: old, key2: new}
			err, ok = e.shards[so].run(j, func(t *table.Table, capture bool) error {
				if !capture {
					return t.UpdateKey(old, new)
				}
				row, terr := t.UpdateKeyRow(old, new)
				j.row = row
				return terr
			})
			if ok && err == errEmptyShard {
				err = fmt.Errorf("shard: update of absent key %d", old)
			}
		} else {
			err, ok = e.moveCrossShard(old, new)
		}
		if ok {
			break
		}
		// A concurrent rebalance changed the keys' routing; re-derive it.
	}
	if err == nil && e.monitoring() {
		e.record(workload.Op{Kind: workload.Q6Update, Key: old, Key2: new})
	}
	return err
}

// moveCrossShard moves one row between shards under the epoch-based commit
// protocol. Stage: take the row from the source shard and register it as a
// staged move, in one exclusive window — readers switch from the physical
// row to the registry entry atomically, still counting it at old. Publish:
// insert the row at the destination, retire the registry entry, and advance
// the global epoch, in a second exclusive window — readers switch from the
// registry entry to the physical row at new atomically. Both halves journal
// like ordinary writes, so shadow retrains of either shard replay them
// exactly. A destination-shard failure rolls the staged row back to the
// source shard and reports the error — the row is never silently lost.
//
// A concurrent Delete(old) or UpdateKey(old, ...) that lands while the row
// is staged serializes after this move: it fails with "absent key", exactly
// as it would had it run just after the publish.
//
// The source and destination shards are re-derived from the current
// partitioner inside each exclusive window (a rebalance can install new
// boundaries between them); ok=false asks the caller to retry as a
// same-shard update when a rebalance collapsed the two keys onto one shard
// before the stage window.
func (e *Engine) moveCrossShard(old, new int64) (_ error, ok bool) {
	// The take, insert, and rollback halves all set skipWAL: durability
	// logs the move as one MoveOut/MoveIn record pair at publish (below),
	// so a crash between the windows recovers the row at its old key and a
	// rolled-back move leaves no WAL trace. The halves still journal for
	// shadow retrains.
	//
	// The stage respects the rebalance install barrier: while a rebalance is
	// about to install new boundaries it drains in-flight moves and blocks
	// new stages, so the routing derived here cannot be invalidated between
	// the two windows (sleepy retries, not spins — single-CPU friendly).
	for {
		e.lockAll()
		if !e.installing {
			break
		}
		e.unlockAll()
		time.Sleep(200 * time.Microsecond)
	}
	so, sn := e.loadPart().Shard(old), e.loadPart().Shard(new)
	if so == sn {
		e.unlockAll()
		return nil, false
	}
	j := &journalOp{kind: jDelete, key: old, skipWAL: true}
	// The route is stable under the held move gate, so run cannot re-route.
	err, _ := e.shards[so].run(j, func(t *table.Table, _ bool) error {
		// The payload is needed for the move itself, journaling or not.
		row, terr := t.TakeRow(old)
		j.row = row
		return terr
	})
	if err != nil {
		e.unlockAll()
		if err == errEmptyShard {
			return fmt.Errorf("shard: update of absent key %d", old), true
		}
		return err, true
	}
	m := &pendingMove{old: old, new: new, row: j.row}
	e.addMove(m)
	e.unlockAll()
	e.obs.Event(obs.Event{Kind: obs.EvMoveStage, Shard: so, Rows: 1,
		Note: fmt.Sprintf("key %d -> %d (shard %d -> %d)", old, new, so, sn)})

	// Readers may run here: they serve the staged row from the registry.
	if e.betweenMoveWindows != nil {
		e.betweenMoveWindows()
	}

	e.lockAll()
	defer e.unlockAll()
	// Re-derive routing defensively. The install barrier means no rebalance
	// can have changed the boundaries while this move was staged, so these
	// must equal the stage-time values; if both keys ever did land on one
	// shard the publish would still degenerate to a plain insert correctly.
	p := e.loadPart()
	so, sn = p.Shard(old), p.Shard(new)
	ierr := error(nil)
	if e.failDestInsert != nil {
		ierr = e.failDestInsert(sn, new)
	}
	if ierr == nil {
		ierr, _ = e.shards[sn].run(&journalOp{kind: jInsertRow, key: new, row: m.row, skipWAL: true},
			func(t *table.Table, _ bool) error { t.InsertRow(new, m.row); return nil })
	}
	if ierr != nil {
		// Roll back: the staged row returns to the source shard; only then
		// is its registry entry retired, so it stays visible throughout. If
		// the rollback itself fails (not reachable with in-memory tables),
		// the entry is kept pinned — the row stays readable at old rather
		// than vanishing — and both errors are reported.
		rerr, _ := e.shards[so].run(&journalOp{kind: jInsertRow, key: old, row: m.row, skipWAL: true},
			func(t *table.Table, _ bool) error { t.InsertRow(old, m.row); return nil })
		if rerr != nil {
			return fmt.Errorf("shard: cross-shard update %d→%d: destination insert: %v; rollback failed, row pinned in staged registry: %w", old, new, ierr, rerr), true
		}
		e.dropMove(m)
		e.obs.Event(obs.Event{Kind: obs.EvMoveRollback, Shard: so, Rows: 1,
			Note: fmt.Sprintf("key %d -> %d: %v", old, new, ierr)})
		return fmt.Errorf("shard: cross-shard update %d→%d: destination insert: %w", old, new, ierr), true
	}
	pub := e.epoch.Advance() // the single epoch bump publishing the move
	var werr error
	if e.durable {
		werr = e.logMove(so, sn, old, new, m.row, pub)
	}
	e.dropMove(m)
	// Journal appends take only the journal's leaf mutex, so emitting under
	// the held gate stripes is within the lock-order contract.
	e.obs.Event(obs.Event{Kind: obs.EvMovePublish, Shard: sn, Epoch: pub, Rows: 1,
		Note: fmt.Sprintf("key %d -> %d (shard %d -> %d)", old, new, so, sn)})
	// A WAL error reports lost durability, not a lost move: the move is
	// committed in memory either way, matching the state a recovery from
	// the last durable record would reconcile to.
	return werr, true
}

// logMove appends the MoveOut/MoveIn record pair of a published cross-shard
// move, both stamped with the publish epoch (so recovery restores the epoch
// oracle past the bump even when the move is the last durable event), and
// commits both per the fsync policy. Caller holds every gate stripe
// exclusively (publish window), so the pair is atomic with respect to
// checkpoints and the move-ID horizon they record. Each append takes its
// shard's jmu so the
// epoch stamps stay monotonic within that shard's WAL (epoch-order replay
// relies on stable per-shard order).
func (e *Engine) logMove(so, sn int, old, new int64, row []int32, pub uint64) error {
	id := e.moveSeq.Add(1)
	src, dst := e.shards[so], e.shards[sn]
	rec := wal.Record{Epoch: pub, MoveID: id, Key: old, Key2: new, Row: row}
	src.jmu.Lock()
	rec.Kind = wal.RecMoveOut
	lsnOut, _ := src.log.Append(rec)
	src.jmu.Unlock()
	dst.jmu.Lock()
	rec.Kind = wal.RecMoveIn
	lsnIn, _ := dst.log.Append(rec)
	dst.jmu.Unlock()
	if err := src.log.Commit(lsnOut); err != nil {
		return err
	}
	return dst.log.Commit(lsnIn)
}

// ---------------------------------------------------------------------------
// Batched execution
// ---------------------------------------------------------------------------

// Execute runs one operation, returning a sink value (query result or 1/0
// success flag for writes).
func (e *Engine) Execute(op workload.Op) int64 {
	switch op.Kind {
	case workload.Q1PointQuery:
		return int64(e.PointQuery(op.Key))
	case workload.Q2RangeCount:
		return int64(e.RangeCount(op.Key, op.Key2))
	case workload.Q3RangeSum:
		return e.RangeSum(op.Key, op.Key2)
	case workload.Q7MultiRange:
		return e.MultiRangeSum(op.Key, op.Key2, nil, 0)
	case workload.Q8Scan:
		c := e.Scan(op.Key, op.Key2, ScanOptions{Limit: op.Limit})
		var n int64
		for c.Next() {
			n++
		}
		c.Close()
		return n
	case workload.Q4Insert:
		e.Insert(op.Key)
		return 1
	case workload.Q5Delete:
		if err := e.Delete(op.Key); err == nil {
			return 1
		}
		return 0
	case workload.Q6Update:
		if err := e.UpdateKey(op.Key, op.Key2); err == nil {
			return 1
		}
		return 0
	}
	return 0
}

// ExecuteAll runs the operations serially in order.
func (e *Engine) ExecuteAll(ops []workload.Op) int64 {
	var sink int64
	for _, op := range ops {
		sink += e.Execute(op)
	}
	return sink
}

// ExecuteParallel spreads the operations over the given number of worker
// goroutines regardless of shard affinity; shard and chunk locks serialize
// conflicting writes.
func (e *Engine) ExecuteParallel(ops []workload.Op, workers int) int64 {
	if workers <= 1 {
		return e.ExecuteAll(ops)
	}
	var wg sync.WaitGroup
	sums := make([]int64, workers)
	per := (len(ops) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ops) {
			hi = len(ops)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []workload.Op) {
			defer wg.Done()
			var s int64
			for _, op := range part {
				s += e.Execute(op)
			}
			sums[w] = s
		}(w, ops[lo:hi])
	}
	wg.Wait()
	var sink int64
	for _, s := range sums {
		sink += s
	}
	return sink
}

// ApplyBatch groups the operations by owning shard and applies each group on
// its own goroutine — the batched write path. Single-shard operations keep
// their relative order within a shard; operations spanning shards (range
// reads under hash partitioning, cross-shard updates) run after the
// per-shard waves. The returned sink is order-independent for disjoint-key
// batches.
func (e *Engine) ApplyBatch(ops []workload.Op) int64 {
	n := len(e.shards)
	if n == 1 {
		return e.ExecuteAll(ops)
	}
	// The grouping is advisory: Execute re-routes each operation when it
	// runs, so a rebalance landing mid-batch costs locality, not correctness.
	p := e.loadPart()
	groups := make([][]workload.Op, n)
	var cross []workload.Op
	for _, op := range ops {
		// RouteOp yields every shard the op touches; single-shard ops
		// join that shard's parallel group, multi-shard ops go to the
		// cross wave.
		first, touched := -1, 0
		workload.RouteOp(op, p.Shard, p.Span, func(s int) {
			if touched == 0 {
				first = s
			}
			touched++
		})
		if touched == 1 {
			groups[first] = append(groups[first], op)
		} else {
			cross = append(cross, op)
		}
	}
	var wg sync.WaitGroup
	sums := make([]int64, n)
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []workload.Op) {
			defer wg.Done()
			var s int64
			for _, op := range g {
				s += e.Execute(op)
			}
			sums[i] = s
		}(i, g)
	}
	wg.Wait()
	var sink int64
	for _, s := range sums {
		sink += s
	}
	for _, op := range cross {
		sink += e.Execute(op)
	}
	return sink
}

// Pending is a handle to an asynchronously applied batch.
type Pending struct {
	ch chan int64
}

// Wait blocks until the batch has been applied and returns its sink value.
func (p *Pending) Wait() int64 { return <-p.ch }

// ApplyBatchAsync applies the batch on a background goroutine, returning
// immediately with a handle the caller can Wait on.
func (e *Engine) ApplyBatchAsync(ops []workload.Op) *Pending {
	p := &Pending{ch: make(chan int64, 1)}
	go func() { p.ch <- e.ApplyBatch(ops) }()
	return p
}

// ---------------------------------------------------------------------------
// Training
// ---------------------------------------------------------------------------

// Train re-partitions every shard for the sampled workload. The sample is
// split per shard (range ops feed every spanned shard, updates both
// endpoints), then the shards train concurrently, dividing the solver
// parallelism between them. Training mutates layouts in place under chunk
// locks; use the background retrainer for non-blocking re-layout.
func (e *Engine) Train(sample []workload.Op, parallelism int) error {
	if parallelism < 1 {
		parallelism = 1
	}
	n := len(e.shards)
	p := e.loadPart()
	per := workload.SplitByShard(sample, n, p.Shard, p.Span)
	conc := n
	if parallelism < conc {
		conc = parallelism
	}
	solverPar := parallelism / conc
	if solverPar < 1 {
		solverPar = 1
	}
	sem := make(chan struct{}, conc)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		s := e.shards[i]
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, s *shard) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = e.trainShard(i, s, per[i], solverPar)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// The layouts now match the sample's distribution: rebase each trained
	// shard's drift monitor onto its slice of the sample so the retrainer
	// and the admission governor measure drift (and retrain lag) against
	// what was actually trained. Shards the sample never touched keep their
	// no-baseline state — they still count as fully drifted, preserving
	// the retrainer's first-train trigger.
	for i, s := range e.shards {
		if len(per[i]) > 0 {
			s.mon.rebaseToSample(per[i], e.bucket)
		}
	}
	// In-place training changes no logical rows, so nothing reaches the
	// WAL; checkpointing persists the learned layouts so recovery restores
	// them without re-running the solver.
	return e.Checkpoint()
}

// trainShard runs an in-place TrainLayout on one shard, serialized against
// shadow retrains (it waits for an in-flight one rather than failing).
func (e *Engine) trainShard(i int, s *shard, sample []workload.Op, parallelism int) error {
	s.layoutMu.Lock()
	defer s.layoutMu.Unlock()
	var err error
	s.read(func(t *table.Table) { err = t.TrainLayout(sample, parallelism) })
	return err
}

// LayoutSummary describes one chunk's physical layout within a shard.
type LayoutSummary struct {
	Shard      int
	Chunk      int
	Partitions int
	Sizes      []int
	Ghosts     []int
}

// Layouts reports the current physical layout of every shard's partitioned
// chunks.
func (e *Engine) Layouts() []LayoutSummary {
	var out []LayoutSummary
	for i, s := range e.shards {
		s.read(func(t *table.Table) {
			for _, l := range t.Layouts() {
				out = append(out, LayoutSummary{
					Shard:      i,
					Chunk:      l.Chunk,
					Partitions: l.Partitions,
					Sizes:      l.Sizes,
					Ghosts:     l.Ghosts,
				})
			}
		})
	}
	return out
}

// Close stops the background retrainer and rebalancer if running and, on a
// durable engine, fsyncs and closes every shard's WAL, returning the first
// failure — under SyncNone/SyncInterval this final fsync is what makes the
// latest writes durable, so the error must not be swallowed. A closed
// durable engine keeps serving reads; further writes fail their durability
// commit.
func (e *Engine) Close() error {
	e.stopAdmission()
	e.StopAutoRetrain()
	e.StopAutoRebalance()
	var first error
	if e.durable {
		for i, s := range e.shards {
			if s.log == nil {
				continue
			}
			if err := s.log.Close(); err != nil && first == nil {
				first = fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return first
}
