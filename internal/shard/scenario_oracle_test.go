package shard

// The scenario test wall: every adversarial workload from
// internal/workload replayed serially against a durable range-sharded
// engine whose full background cast is live — auto-retrainer,
// auto-rebalancer (both boundary strategies), and a periodic checkpointer —
// with every read checked query-by-query against the plain-slice oracle
// from rebalance_test.go. The property under test is that no combination of
// phased skew, window drift, tenant banding, or scan pressure ever makes a
// read observably wrong while retraining, rebalancing, and checkpointing
// race the replay; the final states (live engine, oracle, and a fresh
// engine recovered from the last checkpoint + WAL) must agree row for row.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"casper/internal/workload"
)

const (
	scenOracleRows   = 3_000
	scenOracleDomain = 100_000
	scenOracleOps    = 4_000
)

func TestScenarioOracleWall(t *testing.T) {
	strategies := []struct {
		name string
		s    RebalanceStrategy
	}{
		{"minimal", RebalanceMinimal},
		{"quantile", RebalanceQuantile},
	}
	for _, name := range workload.ScenarioNames() {
		for _, strat := range strategies {
			name, strat := name, strat
			t.Run(fmt.Sprintf("%s/%s", name, strat.name), func(t *testing.T) {
				t.Parallel()
				runScenarioOracle(t, name, strat.s)
			})
		}
	}
}

func runScenarioOracle(t *testing.T, scenario string, strat RebalanceStrategy) {
	spec, err := workload.Scenario(scenario, scenOracleOps, 11)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.UniformKeys(scenOracleRows, scenOracleDomain, 5)
	stream, err := workload.GenerateScenario(keys, scenOracleDomain, spec)
	if err != nil {
		t.Fatal(err)
	}

	cfg := rebalanceConfig()
	cfg.Dir = t.TempDir()
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartAutoRetrain(RetrainPolicy{CheckEvery: 10 * time.Millisecond, MinOps: 200}); err != nil {
		t.Fatal(err)
	}
	if err := e.StartAutoRebalance(RebalancePolicy{
		CheckEvery: 10 * time.Millisecond,
		MaxSkew:    1.05,
		Strategy:   strat,
		MinRows:    256,
		MinOps:     64,
	}); err != nil {
		t.Fatal(err)
	}
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopCkpt:
				return
			case <-tick.C:
				// Failures here are not errors: a checkpoint can lose the
				// race with a concurrent rebalance's install window. The
				// deterministic checkpoint after the replay is asserted.
				_ = e.Checkpoint()
			}
		}
	}()

	oracle := &sliceOracle{}
	for _, k := range keys {
		oracle.insert(k)
	}

	// Serial replay, every read checked against the oracle the moment it
	// runs. Phase boundaries yield briefly so the background workers get
	// scheduled against a quiesced stream too, not only mid-replay.
	for _, ph := range stream.Phases {
		for i, op := range ph.Ops {
			at := func() string { return fmt.Sprintf("phase %s op %d %+v", ph.Name, i, op) }
			switch op.Kind {
			case workload.Q1PointQuery:
				if got, want := e.Execute(op), int64(oracle.count(op.Key)); got != want {
					t.Fatalf("%s: point count = %d, oracle %d", at(), got, want)
				}
			case workload.Q2RangeCount:
				if got, want := e.Execute(op), int64(oracle.rangeCount(op.Key, op.Key2)); got != want {
					t.Fatalf("%s: range count = %d, oracle %d", at(), got, want)
				}
			case workload.Q3RangeSum:
				if got, want := e.Execute(op), oracle.rangeSum(op.Key, op.Key2); got != want {
					t.Fatalf("%s: range sum = %d, oracle %d", at(), got, want)
				}
			case workload.Q8Scan:
				want := int64(oracle.rangeCount(op.Key, op.Key2))
				if op.Limit > 0 && int64(op.Limit) < want {
					want = int64(op.Limit)
				}
				if got := e.Execute(op); got != want {
					t.Fatalf("%s: scan rows = %d, oracle %d", at(), got, want)
				}
			case workload.Q4Insert:
				e.Execute(op)
				oracle.insert(op.Key)
			case workload.Q5Delete:
				want := oracle.delete(op.Key)
				got := retryStagedWrite(want, func() bool { return e.Delete(op.Key) == nil })
				if got != want {
					t.Fatalf("%s: delete found = %v, oracle %v", at(), got, want)
				}
			case workload.Q6Update:
				want := oracle.update(op.Key, op.Key2)
				got := retryStagedWrite(want, func() bool { return e.UpdateKey(op.Key, op.Key2) == nil })
				if got != want {
					t.Fatalf("%s: update found = %v, oracle %v", at(), got, want)
				}
			default:
				t.Fatalf("%s: unexpected op kind", at())
			}
		}
		time.Sleep(15 * time.Millisecond)
	}

	close(stopCkpt)
	ckptWG.Wait()
	e.StopAutoRetrain()
	e.StopAutoRebalance()

	// Final state: engine and oracle hold the same key multiset, every row
	// sits on the shard that owns it, and a cold recovery from the last
	// checkpoint + WAL reproduces the same multiset.
	assertPlacement(t, e)
	wantKeys := oracle.keysSorted()
	if got := engineKeys(e); !int64sEqual(got, wantKeys) {
		t.Fatalf("final multiset diverged: engine %d keys, oracle %d keys", len(got), len(wantKeys))
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec, err := New(nil, cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	if got := engineKeys(rec); !int64sEqual(got, wantKeys) {
		t.Fatalf("recovered multiset diverged: engine %d keys, oracle %d keys", len(got), len(wantKeys))
	}
}

// retryStagedWrite runs a Delete/UpdateKey attempt, honoring the documented
// staged-move contract: a write that targets a row while it is parked in
// the staged-move registry fails with "absent key" even though the row is
// live, and the caller retries after the rebalance publishes. When the
// oracle says the row exists, a not-found result is therefore retried (the
// publish window is bounded); a not-found against a row the oracle agrees
// is gone returns immediately.
func retryStagedWrite(want bool, attempt func() bool) bool {
	got := attempt()
	if got || !want {
		return got
	}
	deadline := time.Now().Add(5 * time.Second)
	for !got && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		got = attempt()
	}
	return got
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
