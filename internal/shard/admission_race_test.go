package shard

// Admission-control suite. The centerpiece is a flash-crowd race test meant
// for -race: concurrent per-tenant writers slam an admission-limited durable
// engine while View-pinned scanners read through it and a follower tails its
// WAL. Three invariants are asserted exactly:
//
//   - Conservation: every submitted write is counted exactly once as
//     admitted or shed — the obs counters equal the writers' own atomic
//     tallies, and admitted + shed == submitted.
//   - No torn outcome: an op is never both shed and applied. Every op
//     inserts a globally unique key, so presence in the engine (and in the
//     follower's converged image) is equivalent to having been admitted.
//   - No spurious overload: ErrOverload is never returned while the
//     writer's lane or the shared bucket holds a full token — asserted via
//     the onShed seam, which runs under the controller mutex at the moment
//     of the decision.
//
// Around the centerpiece: unit coverage for the disabled path, both
// backpressure shapes, Engine.Insert's block-don't-shed contract, tenant
// fairness under a flooding hog, and the drift×lag governor.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"casper/internal/wal"
	"casper/internal/workload"
)

func admissionConfig(dir string, pol AdmissionPolicy) Config {
	cfg := rebalanceConfig()
	cfg.Dir = dir
	cfg.Admission = pol
	return cfg
}

func TestAdmissionRaceFlashCrowd(t *testing.T) {
	const (
		tenants        = 4
		writersPerLane = 3
		opsPerWriter   = 400
		initialRows    = 2_000
		domain         = 100_000
	)
	keys := workload.UniformKeys(initialRows, domain, 9)
	cfg := admissionConfig(t.TempDir(), AdmissionPolicy{
		MaxWriteRate: 30_000,
		Burst:        256,
		MaxWait:      0, // flash crowd sheds immediately
		Tenants:      tenants,
		AdaptEvery:   10 * time.Millisecond,
		LagRef:       512,
	})
	e, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// The seam runs under the controller mutex at every shed decision;
	// both buckets must be below one full token or the shed was spurious.
	var spurious atomic.Int64
	e.adm.onShed = func(lane, shared float64) {
		if lane >= 1 || shared >= 1 {
			spurious.Add(1)
		}
	}

	// Follower: boot from a checkpoint, then tail every shard's WAL and
	// apply records concurrently with the crowd.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	boot, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tailers := make([]*wal.Tailer, len(boot.FromSeqs))
	for i, seq := range boot.FromSeqs {
		tl, err := wal.OpenTailer(WALDir(cfg.Dir, i), seq)
		if err != nil {
			t.Fatal(err)
		}
		tailers[i] = tl
		defer tl.Close()
	}
	rep := boot.Engine.NewReplicator(boot.BoundsEpoch)
	pollOnce := func() (int, error) {
		var recs []ReplicatedRecord
		for i, tl := range tailers {
			rs, err := tl.Poll()
			if err != nil {
				return 0, err
			}
			for _, r := range rs {
				recs = append(recs, ReplicatedRecord{Shard: i, Rec: r})
			}
		}
		return rep.Apply(recs), nil
	}
	stopTail := make(chan struct{})
	tailErr := make(chan error, 1)
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopTail:
				tailErr <- nil
				return
			case <-tick.C:
				if _, err := pollOnce(); err != nil {
					tailErr <- err
					return
				}
			}
		}
	}()

	// View-pinned scanners: each read pins an epoch snapshot for its whole
	// body, racing the crowd's inserts and the follower-independent
	// background minting.
	stopScan := make(chan struct{})
	var scanWG sync.WaitGroup
	for s := 0; s < 3; s++ {
		scanWG.Add(1)
		go func(s int) {
			defer scanWG.Done()
			for {
				select {
				case <-stopScan:
					return
				default:
				}
				e.View(func(v *View) {
					lo := int64(s * domain / 4)
					got := v.RangeCount(lo, lo+int64(domain/4))
					if got < 0 {
						t.Errorf("scanner %d: negative range count %d", s, got)
					}
					c := v.Scan(lo, lo+2_000, ScanOptions{Limit: 64})
					for c.Next() {
					}
					c.Close()
				})
			}
		}(s)
	}

	// The crowd. Every op gets a globally unique key, so applied ⇔ present.
	type outcome struct {
		key  int64
		shed bool
	}
	var submitted, admitted, shed atomic.Int64
	results := make([][]outcome, tenants*writersPerLane)
	var crowdWG sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		for wr := 0; wr < writersPerLane; wr++ {
			idx := tn*writersPerLane + wr
			crowdWG.Add(1)
			go func(tn, idx int) {
				defer crowdWG.Done()
				w := e.Writer(tn)
				out := make([]outcome, 0, opsPerWriter)
				base := int64(1_000_000_000) + int64(idx)*int64(opsPerWriter)
				for i := 0; i < opsPerWriter; i++ {
					key := base + int64(i)
					submitted.Add(1)
					err := w.Insert(key)
					switch {
					case err == nil:
						admitted.Add(1)
						out = append(out, outcome{key: key})
					case errors.Is(err, ErrOverload):
						shed.Add(1)
						out = append(out, outcome{key: key, shed: true})
					default:
						t.Errorf("writer %d: unexpected insert error: %v", idx, err)
					}
				}
				results[idx] = out
			}(tn, idx)
		}
	}
	crowdWG.Wait()
	close(stopScan)
	scanWG.Wait()

	if got := spurious.Load(); got != 0 {
		t.Fatalf("%d sheds fired while a bucket held a full token", got)
	}
	if admitted.Load()+shed.Load() != submitted.Load() {
		t.Fatalf("oracle counts leak: admitted %d + shed %d != submitted %d",
			admitted.Load(), shed.Load(), submitted.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("flash crowd shed nothing; the test did not exercise overload")
	}
	snap := e.Metrics()
	if snap.Admission.Admitted != uint64(admitted.Load()) || snap.Admission.Shed != uint64(shed.Load()) {
		t.Fatalf("obs counters diverge from oracle: admitted %d/%d, shed %d/%d",
			snap.Admission.Admitted, admitted.Load(), snap.Admission.Shed, shed.Load())
	}

	// No op both shed and applied: unique keys make presence ⇔ admitted.
	for _, out := range results {
		for _, o := range out {
			got := e.PointQuery(o.key)
			if o.shed && got != 0 {
				t.Fatalf("key %d was shed AND applied (count %d)", o.key, got)
			}
			if !o.shed && got != 1 {
				t.Fatalf("key %d was admitted but count = %d", o.key, got)
			}
		}
	}
	if want := initialRows + int(admitted.Load()); e.Len() != want {
		t.Fatalf("Len = %d, want %d (initial + admitted)", e.Len(), want)
	}

	// Quiesce and drain the follower: its image must converge on exactly
	// the admitted writes — a shed op must never surface downstream either.
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for boot.Engine.Len() != e.Len() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(stopTail)
	if err := <-tailErr; err != nil {
		t.Fatalf("tailer: %v", err)
	}
	// One final poll on this goroutine picks up anything between the last
	// tick and the stop.
	if _, err := pollOnce(); err != nil {
		t.Fatal(err)
	}
	if got, want := engineKeys(boot.Engine), engineKeys(e); !int64sEqual(got, want) {
		t.Fatalf("follower diverged: %d keys vs leader %d", len(got), len(want))
	}
	if n := rep.Mismatches(); n != 0 {
		t.Fatalf("replicator mismatches: %d", n)
	}
}

func TestAdmissionDisabledIsFree(t *testing.T) {
	e, err := New(workload.UniformKeys(100, 10_000, 1), rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := e.Writer(7)
	if err := w.Insert(50_000); err != nil {
		t.Fatalf("Writer.Insert without admission: %v", err)
	}
	if err := w.Delete(50_000); err != nil {
		t.Fatalf("Writer.Delete without admission: %v", err)
	}
	snap := e.Metrics()
	if snap.Admission.Admitted != 0 || snap.Admission.Shed != 0 || snap.Admission.Queued != 0 {
		t.Fatalf("admission counters moved on a disabled engine: %+v", snap.Admission)
	}
}

func TestAdmissionImmediateShed(t *testing.T) {
	e, err := New(workload.UniformKeys(100, 10_000, 1), admissionConfig(t.TempDir(), AdmissionPolicy{
		MaxWriteRate: 100, // trickle refill
		Burst:        8,
		MaxWait:      0,
		AdaptEvery:   time.Hour, // governor quiet for the test
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	w := e.Writer(0)
	var admitted, shed int
	for i := 0; i < 50; i++ {
		err := w.Insert(100_000 + int64(i))
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrOverload):
			shed++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("burst of 50 over a bucket of 8 shed nothing")
	}
	if admitted < 8 {
		t.Fatalf("admitted %d, want at least the burst", admitted)
	}
	snap := e.Metrics()
	if snap.Admission.Admitted != uint64(admitted) || snap.Admission.Shed != uint64(shed) {
		t.Fatalf("counters diverge: %+v vs admitted %d shed %d", snap.Admission, admitted, shed)
	}
	if want := 100 + admitted; e.Len() != want {
		t.Fatalf("Len = %d, want %d", e.Len(), want)
	}
}

func TestAdmissionBlocksThenSheds(t *testing.T) {
	e, err := New(workload.UniformKeys(100, 10_000, 1), admissionConfig(t.TempDir(), AdmissionPolicy{
		MaxWriteRate: 20, // one token per 50ms
		Burst:        4,
		MaxWait:      30 * time.Millisecond,
		AdaptEvery:   time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	w := e.Writer(0)
	for i := 0; i < 4; i++ { // drain the burst
		if err := w.Insert(200_000 + int64(i)); err != nil {
			t.Fatalf("burst insert %d: %v", i, err)
		}
	}
	start := time.Now()
	err = w.Insert(300_000)
	waited := time.Since(start)
	if err == nil {
		// A token refilled within the deadline (legal on a slow machine);
		// the wait must still have been recorded.
		if waited < 10*time.Millisecond {
			t.Fatalf("exhausted bucket admitted after only %v", waited)
		}
	} else if !errors.Is(err, ErrOverload) {
		t.Fatalf("unexpected error: %v", err)
	} else if waited < 25*time.Millisecond {
		t.Fatalf("shed after %v, want a block of ~MaxWait first", waited)
	}
	snap := e.Metrics()
	if snap.Admission.Queued == 0 {
		t.Fatal("blocked write was not counted as queued")
	}
	if snap.Admission.WaitNs.Count == 0 {
		t.Fatal("blocked write recorded no wait time")
	}
}

func TestAdmissionEngineInsertNeverSheds(t *testing.T) {
	e, err := New(workload.UniformKeys(100, 10_000, 1), admissionConfig(t.TempDir(), AdmissionPolicy{
		MaxWriteRate: 400,
		Burst:        4,
		MaxWait:      0, // Writer would shed; Engine.Insert must block instead
		AdaptEvery:   time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 40
	for i := 0; i < n; i++ {
		e.Insert(400_000 + int64(i)) // no error to return; blocks until admitted
	}
	if want := 100 + n; e.Len() != want {
		t.Fatalf("Len = %d, want %d: errorless Insert lost writes", e.Len(), want)
	}
	snap := e.Metrics()
	if snap.Admission.Shed != 0 {
		t.Fatalf("Engine.Insert shed %d writes; it must only block", snap.Admission.Shed)
	}
	if snap.Admission.Admitted != n {
		t.Fatalf("admitted %d, want %d", snap.Admission.Admitted, n)
	}
}

func TestAdmissionTenantFairness(t *testing.T) {
	e, err := New(workload.UniformKeys(100, 10_000, 1), admissionConfig(t.TempDir(), AdmissionPolicy{
		MaxWriteRate: 2_000,
		Burst:        40, // lane cap 20 each
		MaxWait:      0,
		Tenants:      2,
		AdaptEvery:   time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// The polite tenant runs a fixed number of ops so the test is not
	// sensitive to scheduler starvation on small machines (a wall-clock
	// window under a hot-looping hog can leave a sleeping goroutine only a
	// handful of turns on GOMAXPROCS=1); the hog floods until the polite
	// tenant is done. More wall time only mints the polite lane MORE
	// guaranteed tokens, so the invariant is unaffected by machine speed.
	const politeOps = 30
	var hogAdmitted, hogShed, politeAdmitted, politeShed atomic.Int64
	var wg sync.WaitGroup
	politeDone := make(chan struct{})
	wg.Add(2)
	go func() { // the hog floods lane 0 far over the total rate
		defer wg.Done()
		w := e.Writer(0)
		for i := int64(0); ; i++ {
			select {
			case <-politeDone:
				return
			default:
			}
			if err := w.Insert(500_000 + i); err == nil {
				hogAdmitted.Add(1)
			} else {
				hogShed.Add(1)
			}
		}
	}()
	go func() { // the polite tenant stays under its guaranteed half
		defer wg.Done()
		defer close(politeDone)
		w := e.Writer(1)
		for i := int64(0); i < politeOps; i++ {
			if err := w.Insert(9_500_000 + i); err == nil {
				politeAdmitted.Add(1)
			} else {
				politeShed.Add(1)
			}
			time.Sleep(3 * time.Millisecond) // ~330/s, under the 1000/s lane
		}
	}()
	wg.Wait()

	if hogShed.Load() == 0 {
		t.Fatal("the hog was never shed; it did not overload its share")
	}
	// The polite tenant consumes well under its lane's refill rate, so its
	// guaranteed slice must admit nearly everything it submits even while
	// the hog drains the shared bucket dry.
	if politeAdmitted.Load() < politeOps*2/3 {
		t.Fatalf("polite tenant admitted only %d of %d; its lane guarantee did not hold (shed %d)",
			politeAdmitted.Load(), politeOps, politeShed.Load())
	}
	// The lane guarantee, not perfect isolation: the polite tenant must be
	// admitted at a far higher ratio than the flooding hog.
	politeFrac := float64(politeAdmitted.Load()) / float64(politeAdmitted.Load()+politeShed.Load())
	hogFrac := float64(hogAdmitted.Load()) / float64(hogAdmitted.Load()+hogShed.Load())
	if politeFrac < hogFrac {
		t.Fatalf("polite admit fraction %.3f below the hog's %.3f", politeFrac, hogFrac)
	}
}

func TestAdmissionGovernorThrottlesAndRecovers(t *testing.T) {
	e, err := New(workload.UniformKeys(1_000, 10_000, 1), admissionConfig(t.TempDir(), AdmissionPolicy{
		MaxWriteRate: 10_000,
		Burst:        64,
		MaxWait:      0,
		AdaptEvery:   5 * time.Millisecond,
		MinRateFrac:  0.1,
		LagRef:       128,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Never-trained shards report full drift; once the recorded backlog
	// passes LagRef the governor must squeeze the rate to the floor.
	for i := 0; i < 600; i++ {
		e.Insert(600_000 + int64(i))
	}
	deadline := time.Now().Add(2 * time.Second)
	var rate float64
	for time.Now().Before(deadline) {
		rate = e.Metrics().Admission.RateLimit
		if rate < 10_000*0.2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rate >= 10_000*0.2 {
		t.Fatalf("governor rate %.0f under full drift pressure, want near the %.0f floor", rate, 10_000*0.1)
	}

	// Training rebases every monitor: drift collapses and the rate must
	// recover to the ceiling.
	sample := make([]workload.Op, 0, 1_000)
	for i := 0; i < 1_000; i++ {
		sample = append(sample, workload.Op{Kind: workload.Q1PointQuery, Key: int64(i * 10)})
	}
	if err := e.Train(sample, 1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		rate = e.Metrics().Admission.RateLimit
		if rate > 10_000*0.95 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("governor rate %.0f after retrain, want recovery toward 10000", rate)
}
