package shard

// The epoch-ordered WAL applier shared by crash recovery (durable.go) and
// live WAL-shipping replication (internal/replica): both consume a stream of
// per-shard WAL records merged into one epoch order, and both apply each
// record to the shard whose WAL carried it — physical placement history, not
// routing — so per-shard append order is preserved and the replayed image is
// byte-identical to the table the records were logged against.
//
// The two consumers differ only in pair repair. Recovery sees a stream cut
// by a crash, so a MoveOut/MoveIn pair can be torn mid-pair; it traces pairs
// and reconciles stragglers against checkpoint move horizons. A live
// follower's stream is never torn — a missing pair half only happens when
// the bootstrap checkpoint already covers it, which needs no repair — so it
// applies with tracing disabled.

import (
	"fmt"
	"sort"

	"casper/internal/table"
	"casper/internal/txn"
	"casper/internal/wal"
)

// applier applies one epoch-ordered record stream to the engine's shards.
// Single-threaded; the caller provides any locking the engine's liveness
// requires (none during recovery, the move gate during live replication).
type applier struct {
	e     *Engine
	moves map[uint64]*moveTrace // MoveOut/MoveIn pair traces; nil disables tracing
	// mismatches counts row-identity deletes that failed during apply: the
	// record named a (key, payload) the replayed timeline never produced, so
	// the rebuilt image has silently diverged from the WAL. Surfaced, not
	// fatal — the one row is lost either way, and the rest of the replay is
	// still the best available image.
	mismatches int
	maxEpoch   uint64
	maxMove    uint64
}

// apply replays one WAL record onto shard si. Deletes and updates resolve
// duplicate keys by payload (row identity), so replay order across
// non-conflicting writers is immaterial.
func (a *applier) apply(si int, r wal.Record) {
	if r.Epoch > a.maxEpoch {
		a.maxEpoch = r.Epoch
	}
	if r.MoveID > a.maxMove {
		a.maxMove = r.MoveID
	}
	s := a.e.shards[si]
	insert := func(key int64, row []int32) {
		switch {
		case s.tbl == nil:
			s.seedRecovered(key, row)
		case row == nil:
			s.tbl.Insert(key)
		default:
			s.tbl.InsertRow(key, row)
		}
	}
	del := func(key int64, row []int32) bool {
		if s.tbl == nil || s.tbl.DeleteRowExact(key, row) != nil {
			a.mismatches++
			return false
		}
		return true
	}
	switch r.Kind {
	case wal.RecInsert:
		insert(r.Key, nil)
	case wal.RecInsertRow:
		insert(r.Key, r.Row)
	case wal.RecDelete:
		del(r.Key, r.Row)
	case wal.RecUpdate:
		if del(r.Key, r.Row) {
			s.tbl.InsertRow(r.Key2, r.Row)
		}
	case wal.RecMoveOut:
		if a.moves != nil {
			a.traceFor(r).out = true
		}
		del(r.Key, r.Row)
	case wal.RecMoveIn:
		if a.moves != nil {
			a.traceFor(r).in = true
		}
		insert(r.Key2, r.Row)
	}
}

func (a *applier) traceFor(r wal.Record) *moveTrace {
	mv := a.moves[r.MoveID]
	if mv == nil {
		mv = &moveTrace{old: r.Key, new: r.Key2, row: r.Row}
		a.moves[r.MoveID] = mv
	}
	return mv
}

// reconcile repairs cross-shard moves whose record pair did not survive the
// crash intact, so every moved row lands on exactly one shard:
//
//   - MoveOut without MoveIn: if the destination shard checkpointed past
//     this move ID, the insert is inside its checkpoint and the MoveIn was
//     pruned — nothing to do. Otherwise the crash lost the destination half:
//     the move never became durable, so the row returns to its old key.
//   - MoveIn without MoveOut: if the source shard checkpointed past this
//     move ID, its checkpoint already excludes the row — nothing to do.
//     Otherwise the crash lost the source half: the move IS durable (the
//     destination insert survived), so the stale copy at the old key is
//     removed.
//
// The horizon test is sound because move IDs are allocated inside the
// publish window, which holds the move gate exclusively: a checkpoint (gate
// shared) with horizon >= id can only be cut after move id fully published.
//
// Rebalance bulk moves (Key == Key2) reconcile through the same table: their
// src and dst collapse onto the key's owner under the recovered bounds, so a
// half-pair repair may touch the "wrong" physical shard — row-identity
// deletes remove at most the one stale copy, and the re-homing sweep that
// follows moves whichever copy survived onto its owner, so every row still
// lands on exactly one shard. For the same reason a failed finish-the-move
// delete on a bulk move is expected (the stale copy may already be gone) and
// only genuine moves (old != new) count as mismatches.
func (a *applier) reconcile(horizons []uint64) {
	e := a.e
	p := e.loadPart()
	for id, mv := range a.moves {
		if mv.out == mv.in {
			continue // intact pair (or impossible empty trace)
		}
		src := p.Shard(mv.old)
		dst := p.Shard(mv.new)
		if mv.out && id > horizons[dst] {
			// Destination half lost in the crash: undo the move.
			if s := e.shards[src]; s.tbl == nil {
				s.seedRecovered(mv.old, mv.row)
			} else {
				s.tbl.InsertRow(mv.old, mv.row)
			}
		}
		if mv.in && id > horizons[src] {
			// Source half lost in the crash: finish the move.
			s := e.shards[src]
			if s.tbl == nil || s.tbl.DeleteRowExact(mv.old, mv.row) != nil {
				if mv.old != mv.new {
					a.mismatches++
				}
			}
		}
	}
}

// ReplayMismatches returns the number of WAL records whose row-identity
// delete failed during this engine's recovery replay — silent divergence
// between the WAL and the rebuilt image, also surfaced in the
// recovery.replay journal event's note. Zero on cleanly recovered and
// in-memory engines.
func (e *Engine) ReplayMismatches() int { return e.replayMismatches }

// ReplicatedRecord is one WAL record tagged with the shard whose WAL carried
// it, the unit a replication stream ships.
type ReplicatedRecord struct {
	Shard int
	Rec   wal.Record
}

// Replicator applies a live replication stream to a follower engine. Create
// one with NewReplicator on an engine built by NewFollower; Apply is not
// safe for concurrent use (one apply loop per follower).
type Replicator struct {
	e           *Engine
	boundsEpoch uint64
	ap          applier
}

// NewReplicator returns a Replicator for e. boundsEpoch is the epoch of the
// boundary set currently installed (FollowerBoot.BoundsEpoch); RecRebalance
// records at or below it are already reflected in the routing and are
// skipped.
func (e *Engine) NewReplicator(boundsEpoch uint64) *Replicator {
	return &Replicator{e: e, boundsEpoch: boundsEpoch, ap: applier{e: e}}
}

// applyWindow bounds how many records one exclusive move-gate window
// applies, so a follower catching up on a deep backlog still lets readers
// through between windows.
const applyWindow = 8192

// Apply merges recs into epoch order and applies them to the engine's
// shards, installing RecRebalance boundary sets newer than the one already
// routed. It holds every gate stripe exclusively while applying (in bounded
// windows), so View-consistent readers never observe a half-applied window,
// and advances the engine's epoch oracle to the highest epoch applied.
// Returns the number of records applied.
func (r *Replicator) Apply(recs []ReplicatedRecord) int {
	if len(recs) == 0 {
		return 0
	}
	e := r.e
	// Epoch stamps are non-decreasing within one shard's WAL, so a stable
	// sort preserves per-shard append order while merging the polled tails
	// into one epoch-ordered stream (exactly recovery's merge).
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Rec.Epoch < recs[b].Rec.Epoch })
	applied := 0
	for len(recs) > 0 {
		window := recs
		if len(window) > applyWindow {
			window = window[:applyWindow]
		}
		recs = recs[len(window):]
		e.lockAll()
		for _, sr := range window {
			if sr.Rec.Kind == wal.RecRebalance {
				if len(sr.Rec.Bounds) > 0 && sr.Rec.Epoch > r.boundsEpoch {
					if _, ok := e.loadPart().(*RangePartitioner); ok {
						e.publishRoute(RangePartitionerFromBounds(sr.Rec.Bounds), emptyMoves)
						r.boundsEpoch = sr.Rec.Epoch
					}
				}
				if sr.Rec.Epoch > r.ap.maxEpoch {
					r.ap.maxEpoch = sr.Rec.Epoch
				}
				continue
			}
			r.ap.apply(sr.Shard, sr.Rec)
		}
		e.epoch.AdvanceTo(r.ap.maxEpoch)
		if r.ap.maxMove > e.moveSeq.Load() {
			e.moveSeq.Store(r.ap.maxMove)
		}
		e.unlockAll()
		applied += len(window)
		// Replica metrics are ungated (see obs.Registry): lag and progress
		// must be observable before any reader calls Enable.
		e.obs.ReplicaRecordsApplied.Add(0, uint64(len(window)))
		e.obs.ReplicaAppliedEpoch.Set(r.ap.maxEpoch)
	}
	return applied
}

// Mismatches returns the count of records whose row-identity delete failed
// during live apply — divergence between the stream and the follower image.
func (r *Replicator) Mismatches() int { return r.ap.mismatches }

// FollowerBoot is the result of bootstrapping a follower engine from a
// leader's directory: the read-only engine, the WAL segment each shard's
// tailer must start from, and the epoch of the boundary set installed.
type FollowerBoot struct {
	Engine      *Engine
	FromSeqs    []uint64
	BoundsEpoch uint64
}

// NewFollower builds a read-only engine from the newest checkpoint of every
// shard in cfg.Dir, which may belong to a live leader — it reads the
// manifest and checkpoint files only, never opens a WAL for writing, and
// never truncates or deletes anything. The engine starts at the checkpoints'
// state; the caller catches it up by tailing each shard's segments from
// FromSeqs[i] (wal.OpenTailer) and feeding a Replicator.
//
// Unlike recovery it does not replay WAL tails, reconcile move pairs, or
// re-home rows: the tail replay is the follower's steady state, and applying
// it by physical placement converges the image without repair (see the file
// comment). Between bootstrap and catch-up a row that moved shards may be
// transiently visible on zero or two shards; convergence holds once the
// tailers drain.
func NewFollower(cfg Config) (*FollowerBoot, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: follower requires a directory")
	}
	man, err := wal.LoadManifest(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	if man == nil {
		return nil, fmt.Errorf("shard: no manifest in %s (nothing to follow)", cfg.Dir)
	}
	monCap := cfg.MonitorCap
	if monCap <= 0 {
		monCap = 8192
	}
	ep := cfg.Epoch
	if ep == nil {
		ep = txn.NewOracle()
	}
	e := &Engine{
		cfg: cfg.Table, epoch: ep,
		keyLo: man.KeyLo, keyHi: man.KeyHi,
		dir: cfg.Dir, readonly: true,
	}
	bounds := man.Bounds
	var boundsEpoch uint64
	var maxEpoch, maxMove uint64
	fromSeqs := make([]uint64, man.Shards)
	for i := 0; i < man.Shards; i++ {
		s := &shard{idx: i, eng: e, cfg: cfg.Table, mon: newMonitor(monCap), ep: ep, sdir: shardDir(cfg.Dir, i)}
		cp, _, err := wal.LoadNewestCheckpoint(s.sdir)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if cp == nil {
			return nil, fmt.Errorf("shard %d: no valid checkpoint in %s", i, s.sdir)
		}
		fromSeqs[i] = cp.WALSeq
		if cp.Epoch > maxEpoch {
			maxEpoch = cp.Epoch
		}
		if cp.MoveHorizon > maxMove {
			maxMove = cp.MoveHorizon
		}
		if man.ByRange && len(cp.Bounds) > 0 && cp.Epoch >= boundsEpoch {
			bounds, boundsEpoch = cp.Bounds, cp.Epoch
		}
		if len(cp.Keys) > 0 {
			tbl, err := table.NewFromRows(cp.Keys, cp.Rows, cfg.Table)
			if err != nil {
				return nil, fmt.Errorf("shard %d: checkpoint load: %w", i, err)
			}
			if err := tbl.RestoreLayouts(toTableLayouts(cp.Layouts)); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			s.tbl = tbl
		}
		e.shards = append(e.shards, s)
	}
	var part Partitioner
	if man.ByRange {
		part = RangePartitionerFromBounds(bounds)
	} else {
		part = NewHashPartitioner(man.Shards)
	}
	if part.Shards() != man.Shards {
		return nil, fmt.Errorf("shard: follower bounds yield %d shards, manifest declares %d", part.Shards(), man.Shards)
	}
	e.initRoute(part)
	ep.AdvanceTo(maxEpoch)
	e.moveSeq.Store(maxMove)
	e.obs.ReplicaAppliedEpoch.Set(maxEpoch)
	return &FollowerBoot{Engine: e, FromSeqs: fromSeqs, BoundsEpoch: boundsEpoch}, nil
}

// WALDir returns shard i's WAL directory under an engine directory — the
// path a replication tailer (wal.OpenTailer) reads from.
func WALDir(dir string, i int) string { return shardDir(dir, i) }

// ShardDump is one shard's physical contents, keys ascending with parallel
// payload rows.
type ShardDump struct {
	Keys []int64
	Rows [][]int32
}

// DumpShards snapshots every shard's physical contents — the divergence
// suites' ground truth for comparing a leader and a caught-up follower.
// Staged cross-shard moves are not folded in, so compare only after writes
// quiesce and pending moves drain.
func (e *Engine) DumpShards() []ShardDump {
	e.rlockAll()
	defer e.runlockAll()
	out := make([]ShardDump, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		if s.tbl != nil {
			out[i].Keys, out[i].Rows = s.tbl.Snapshot()
		}
		s.mu.Unlock()
	}
	return out
}
