package shard

// Rebalance suite: drift-triggered boundary re-splitting. The centerpiece is
// an oracle-twin property test — a random Insert/Delete/UpdateKey stream
// interleaved with forced rebalances, checked query-by-query against a plain
// slice oracle (the in-memory analogue of the kill/replay shadow twin) —
// plus unit coverage for skew detection, boundary proposals, validation, and
// the auto-rebalance worker.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"casper/internal/table"
	"casper/internal/workload"
)

// assertPlacement fails the test when any row sits on a shard that does not
// own its key under the current partitioner.
func assertPlacement(t *testing.T, e *Engine) {
	t.Helper()
	p := e.loadPart()
	for i, s := range e.shards {
		s.mu.RLock()
		tbl := s.tbl
		s.mu.RUnlock()
		if tbl == nil {
			continue
		}
		for _, k := range tbl.Keys() {
			if p.Shard(k) != i {
				t.Fatalf("key %d physically on shard %d, owned by shard %d", k, i, p.Shard(k))
			}
		}
	}
}

// engineKeys returns the multiset of live keys across the fleet, sorted.
func engineKeys(e *Engine) []int64 {
	var keys []int64
	for _, s := range e.shards {
		s.mu.RLock()
		tbl := s.tbl
		s.mu.RUnlock()
		if tbl != nil {
			keys = append(keys, tbl.Keys()...)
		}
	}
	// Keys() is per-shard sorted; merge by full sort for the comparison.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func rebalanceConfig() Config {
	return Config{
		Shards:  4,
		ByRange: true,
		Table: table.Config{
			Mode:        table.Casper,
			PayloadCols: 3,
			ChunkValues: 256,
			GhostFrac:   0.01,
			Partitions:  4,
		},
	}
}

func TestRebalanceReducesSkewAfterDrift(t *testing.T) {
	keys := workload.UniformKeys(4_000, 100_000, 3)
	e, err := New(keys, rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drift: the write distribution slides past the top of the loaded range,
	// piling everything onto the last shard.
	for i := 0; i < 3_000; i++ {
		e.Insert(100_001 + int64(i))
	}
	before := e.Skew()
	if before < 1.5 {
		t.Fatalf("drift did not skew the fleet: skew = %.2f", before)
	}
	wantLen := e.Len()
	res, err := e.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if res.Moved == 0 {
		t.Fatal("rebalance moved no rows despite skew")
	}
	if res.SkewAfter >= 1.5 {
		t.Fatalf("skew after rebalance = %.2f, want < 1.5 (before %.2f)", res.SkewAfter, res.SkewBefore)
	}
	if got := e.Len(); got != wantLen {
		t.Fatalf("Len changed across rebalance: %d -> %d", wantLen, got)
	}
	if got := e.Rebalances(); got != 1 {
		t.Fatalf("Rebalances = %d, want 1", got)
	}
	assertPlacement(t, e)
	// Every drifted row is still findable with its payload intact.
	for i := 0; i < 3_000; i += 97 {
		k := 100_001 + int64(i)
		if got := e.PointQuery(k); got != 1 {
			t.Fatalf("PointQuery(%d) = %d after rebalance, want 1", k, got)
		}
		if v, ok := e.Payload(k, 1); !ok || v != table.DefaultPayload(k, 1) {
			t.Fatalf("Payload(%d) = (%d,%v) after rebalance", k, v, ok)
		}
	}
	// A second rebalance with no further drift is a near no-op.
	res2, err := e.Rebalance()
	if err != nil {
		t.Fatalf("second Rebalance: %v", err)
	}
	if res2.SkewAfter >= 1.5 {
		t.Fatalf("second rebalance left skew %.2f", res2.SkewAfter)
	}
}

func TestRebalanceValidation(t *testing.T) {
	keys := workload.UniformKeys(500, 10_000, 1)
	hash, err := New(keys, Config{Shards: 4, Table: rebalanceConfig().Table})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hash.Rebalance(); err == nil {
		t.Error("Rebalance on a hash-partitioned engine should error")
	}
	if _, err := hash.RebalanceTo([]int64{1, 2, 3}); err == nil {
		t.Error("RebalanceTo on a hash-partitioned engine should error")
	}
	if err := hash.StartAutoRebalance(RebalancePolicy{}); err == nil {
		t.Error("StartAutoRebalance on a hash-partitioned engine should error")
	}

	rng, err := New(keys, rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rng.RebalanceTo([]int64{1, 2}); err == nil {
		t.Error("RebalanceTo with too few bounds should error")
	}
	if _, err := rng.RebalanceTo([]int64{5, 5, 9}); err == nil {
		t.Error("RebalanceTo with duplicate bounds should error")
	}
	if _, err := rng.RebalanceTo([]int64{9, 5, 20}); err == nil {
		t.Error("RebalanceTo with unsorted bounds should error")
	}
	if _, err := rng.RebalanceTo([]int64{2_000, 4_000, 8_000}); err != nil {
		t.Errorf("valid RebalanceTo: %v", err)
	}
	assertPlacement(t, rng)
}

func TestProposeBoundsPadding(t *testing.T) {
	cases := []struct {
		name string
		keys []int64
		n    int
	}{
		{"no keys", nil, 4},
		{"one key", []int64{42}, 8},
		{"all duplicates", []int64{7, 7, 7, 7, 7, 7}, 4},
		{"fewer distinct than shards", []int64{1, 1, 2, 2}, 6},
		{"max extreme", []int64{math.MaxInt64, math.MaxInt64}, 4},
		{"min extreme", []int64{math.MinInt64, math.MinInt64}, 4},
		{"both extremes", []int64{math.MinInt64, math.MaxInt64}, 5},
		{"plenty", workload.UniformKeys(1_000, 1_000_000, 9), 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := proposeBounds(tc.keys, tc.n)
			if len(b) != tc.n-1 {
				t.Fatalf("proposeBounds returned %d bounds, want %d", len(b), tc.n-1)
			}
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] {
					t.Fatalf("bounds not strictly increasing: %v", b)
				}
			}
			if got := RangePartitionerFromBounds(b).Shards(); got != tc.n {
				t.Fatalf("partitioner shards = %d, want %d", got, tc.n)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Oracle-twin property test
// ---------------------------------------------------------------------------

// unknownOrigin marks an oracle row whose payload identity became ambiguous:
// a delete or update removed one of several duplicates carrying different
// payloads, and the engine's choice of victim is internal. Count-shaped
// observables stay exact; payload probes skip such rows.
const unknownOrigin = math.MinInt64

// oracleRow is one live row in the slice oracle: its current key plus the
// key it was originally inserted at, which determines its payload
// (table.DefaultPayload(origin, col) — UpdateKey preserves payloads).
type oracleRow struct{ key, origin int64 }

// sliceOracle is the plain-slice model the engine is checked against
// query-by-query: a multiset of rows with engine-equivalent Insert, Delete,
// and UpdateKey semantics.
type sliceOracle struct{ rows []oracleRow }

func (o *sliceOracle) count(k int64) int {
	n := 0
	for _, r := range o.rows {
		if r.key == k {
			n++
		}
	}
	return n
}

func (o *sliceOracle) rangeCount(lo, hi int64) int {
	n := 0
	for _, r := range o.rows {
		if lo <= r.key && r.key <= hi {
			n++
		}
	}
	return n
}

func (o *sliceOracle) rangeSum(lo, hi int64) int64 {
	var sum int64
	for _, r := range o.rows {
		if lo <= r.key && r.key <= hi {
			sum += r.key
		}
	}
	return sum
}

func (o *sliceOracle) insert(k int64) { o.rows = append(o.rows, oracleRow{key: k, origin: k}) }

// takeOne removes one row with key k, mirroring the engine's free choice of
// victim among duplicates: when the duplicates disagree on payload, every
// survivor's payload identity becomes unknown. Returns the removed row's
// origin and whether a row existed.
func (o *sliceOracle) takeOne(k int64) (int64, bool) {
	first, n := -1, 0
	ambiguous := false
	for i, r := range o.rows {
		if r.key != k {
			continue
		}
		if n == 0 {
			first = i
		} else if r.origin != o.rows[first].origin {
			ambiguous = true
		}
		n++
	}
	if n == 0 {
		return 0, false
	}
	origin := o.rows[first].origin
	if ambiguous {
		origin = unknownOrigin
		for i := range o.rows {
			if o.rows[i].key == k {
				o.rows[i].origin = unknownOrigin
			}
		}
	}
	o.rows[first] = o.rows[len(o.rows)-1]
	o.rows = o.rows[:len(o.rows)-1]
	return origin, true
}

func (o *sliceOracle) delete(k int64) bool { _, ok := o.takeOne(k); return ok }

func (o *sliceOracle) update(old, new int64) bool {
	origin, ok := o.takeOne(old)
	if !ok {
		return false
	}
	o.rows = append(o.rows, oracleRow{key: new, origin: origin})
	return true
}

func (o *sliceOracle) keysSorted() []int64 {
	keys := make([]int64, len(o.rows))
	for i, r := range o.rows {
		keys[i] = r.key
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// payloadOrigin returns the origin of the unique row with key k, or ok=false
// when the key is absent, duplicated, or payload-ambiguous.
func (o *sliceOracle) payloadOrigin(k int64) (int64, bool) {
	origin, n := int64(0), 0
	for _, r := range o.rows {
		if r.key == k {
			origin = r.origin
			n++
		}
	}
	return origin, n == 1 && origin != unknownOrigin
}

// TestRebalanceOracleTwin is the oracle-twin property suite: a random
// Insert/Delete/UpdateKey stream whose insert distribution drifts across the
// domain, interleaved with forced rebalances (both proposal-driven and
// explicit adversarial boundary sets), checked query-by-query against the
// slice oracle. After every rebalance the full key multiset, row placement,
// and query observables must agree.
func TestRebalanceOracleTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	initial := workload.UniformKeys(1_500, 1<<20, 5)
	e, err := New(initial, rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sliceOracle{}
	for _, k := range initial {
		oracle.insert(k)
	}

	const domain = int64(1 << 20)
	randKey := func(step int) int64 {
		if rng.Intn(10) < 3 {
			return int64(rng.Intn(16)) // hot duplicates
		}
		// Drift: the insert center slides across the domain with the stream.
		center := int64(step) * domain / 1_200
		k := center + rng.Int63n(domain/8) - domain/16
		if k < 0 {
			k = -k
		}
		return k % domain
	}
	liveKey := func() int64 {
		if len(oracle.rows) == 0 {
			return rng.Int63n(domain)
		}
		return oracle.rows[rng.Intn(len(oracle.rows))].key
	}

	probe := func(step int, touched ...int64) {
		t.Helper()
		if got, want := e.Len(), len(oracle.rows); got != want {
			t.Fatalf("step %d: Len = %d, oracle %d", step, got, want)
		}
		keys := append(touched, liveKey(), rng.Int63n(domain), int64(rng.Intn(16)))
		for _, k := range keys {
			if got, want := e.PointQuery(k), oracle.count(k); got != want {
				t.Fatalf("step %d: PointQuery(%d) = %d, oracle %d", step, k, got, want)
			}
		}
		if step%8 == 0 {
			lo := rng.Int63n(domain)
			hi := lo + rng.Int63n(domain/4)
			if got, want := e.RangeCount(lo, hi), oracle.rangeCount(lo, hi); got != want {
				t.Fatalf("step %d: RangeCount(%d,%d) = %d, oracle %d", step, lo, hi, got, want)
			}
			if got, want := e.RangeSum(lo, hi), oracle.rangeSum(lo, hi); got != want {
				t.Fatalf("step %d: RangeSum(%d,%d) = %d, oracle %d", step, lo, hi, got, want)
			}
		}
		if k := liveKey(); true {
			if origin, ok := oracle.payloadOrigin(k); ok {
				want := table.DefaultPayload(origin, 1)
				if v, vok := e.Payload(k, 1); !vok || v != want {
					t.Fatalf("step %d: Payload(%d,1) = (%d,%v), oracle (%d,true)", step, k, v, vok, want)
				}
			}
		}
	}

	deepCompare := func(step int) {
		t.Helper()
		got, want := engineKeys(e), oracle.keysSorted()
		if len(got) != len(want) {
			t.Fatalf("step %d: engine holds %d rows, oracle %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: key multiset diverged at ordinal %d: %d vs %d", step, i, got[i], want[i])
			}
		}
		assertPlacement(t, e)
	}

	const steps = 1_000
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert, drifting
			k := randKey(step)
			e.Insert(k)
			oracle.insert(k)
			probe(step, k)
		case r < 7: // delete
			k := liveKey()
			if rng.Intn(8) == 0 {
				k = rng.Int63n(domain) // sometimes absent
			}
			gotErr := e.Delete(k) != nil
			wantErr := !oracle.delete(k)
			if gotErr != wantErr {
				t.Fatalf("step %d: Delete(%d) error = %v, oracle absent = %v", step, k, gotErr, wantErr)
			}
			probe(step, k)
		default: // update, possibly cross-shard
			old, new := liveKey(), randKey(step)
			gotErr := e.UpdateKey(old, new) != nil
			wantErr := !oracle.update(old, new)
			if gotErr != wantErr {
				t.Fatalf("step %d: UpdateKey(%d,%d) error = %v, oracle absent = %v", step, old, new, gotErr, wantErr)
			}
			probe(step, old, new)
		}

		if step%200 == 99 {
			// Adversarial explicit bounds: cram everything onto shard 0,
			// then let the proposal-driven rebalance below repair it.
			if _, err := e.RebalanceTo([]int64{domain + 1, domain + 2, domain + 3}); err != nil {
				t.Fatalf("step %d: RebalanceTo: %v", step, err)
			}
			deepCompare(step)
			if counts := e.RowCounts(); counts[0] != len(oracle.rows) {
				t.Fatalf("step %d: adversarial bounds left %d of %d rows on shard 0", step, counts[0], len(oracle.rows))
			}
		}
		if step%40 == 39 {
			res, err := e.Rebalance()
			if err != nil {
				t.Fatalf("step %d: Rebalance: %v", step, err)
			}
			deepCompare(step)
			if len(oracle.rows) >= 1_000 && res.SkewAfter >= 1.5 {
				t.Fatalf("step %d: skew %.2f after rebalance of %d rows", step, res.SkewAfter, len(oracle.rows))
			}
		}
	}
	deepCompare(steps)
	if e.Rebalances() == 0 {
		t.Fatal("property run performed no rebalances")
	}
}

// TestRebalanceWaitsForStagedMove regresses the install barrier: a rebalance
// must not install new boundaries while a cross-shard move is staged (the
// move's WAL records and checkpoint folding assume the staged row's routed
// owner is the shard it physically left). The move is parked between its two
// windows; the rebalance must block until it drains, then complete.
func TestRebalanceWaitsForStagedMove(t *testing.T) {
	keys := workload.UniformKeys(2_000, 40_000, 17)
	e, err := New(keys, rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh (absent) cross-shard pair inside the loaded domain (keys span
	// [0, 40000], so shard boundaries all sit below that).
	p := e.loadPart()
	a := int64(5_001)
	for e.PointQuery(a) != 0 {
		a++
	}
	b := a + 1
	for p.Shard(b) == p.Shard(a) || e.PointQuery(b) != 0 {
		b++
	}
	e.Insert(a)

	entered := make(chan struct{})
	release := make(chan struct{})
	e.betweenMoveWindows = func() {
		close(entered)
		<-release
	}
	moveDone := make(chan error, 1)
	go func() { moveDone <- e.UpdateKey(a, b) }()
	<-entered

	old := e.loadPart().(*RangePartitioner).Bounds()
	shifted := make([]int64, len(old))
	for i, v := range old {
		shifted[i] = v + 17
	}
	rebDone := make(chan struct{})
	go func() {
		if _, err := e.RebalanceTo(shifted); err != nil {
			t.Errorf("RebalanceTo: %v", err)
		}
		close(rebDone)
	}()

	select {
	case <-rebDone:
		t.Fatal("rebalance installed boundaries while a cross-shard move was staged")
	case <-time.After(100 * time.Millisecond):
	}
	// While both are in flight the staged row is still readable exactly once.
	if got := e.PointQuery(a); got != 1 {
		t.Fatalf("staged row: PointQuery(a) = %d, want 1", got)
	}

	close(release)
	if err := <-moveDone; err != nil {
		t.Fatalf("UpdateKey: %v", err)
	}
	select {
	case <-rebDone:
	case <-time.After(10 * time.Second):
		t.Fatal("rebalance never completed after the move drained")
	}
	if na, nb := e.PointQuery(a), e.PointQuery(b); na != 0 || nb != 1 {
		t.Fatalf("after move+rebalance: counts (%d,%d), want (0,1)", na, nb)
	}
	if !boundsEqual(e.loadPart().(*RangePartitioner).Bounds(), shifted) {
		t.Fatal("rebalance did not install the requested bounds")
	}
	assertPlacement(t, e)
}

// TestAutoRebalanceTriggers drives the background worker end to end: a
// drifted fleet absorbing writes must rebalance itself below the policy
// skew without manual intervention.
func TestAutoRebalanceTriggers(t *testing.T) {
	keys := workload.UniformKeys(2_000, 50_000, 11)
	e, err := New(keys, rebalanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drift everything onto the top shard before the worker starts.
	for i := 0; i < 2_000; i++ {
		e.Insert(50_001 + int64(i))
	}
	if e.Skew() < 1.5 {
		t.Fatalf("setup produced skew %.2f, want >= 1.5", e.Skew())
	}
	if err := e.StartAutoRebalance(RebalancePolicy{
		CheckEvery: 5 * time.Millisecond,
		MaxSkew:    1.5,
		MinRows:    100,
		MinOps:     8,
	}); err != nil {
		t.Fatal(err)
	}
	defer e.StopAutoRebalance()
	if err := e.StartAutoRebalance(RebalancePolicy{}); err == nil {
		t.Error("second StartAutoRebalance should error")
	}
	// Feed the write-rate gate (monitors record only while a worker runs).
	deadline := time.Now().Add(10 * time.Second)
	for e.Rebalances() == 0 && time.Now().Before(deadline) {
		e.Insert(50_001 + rng64(time.Now().UnixNano())%2_000)
		time.Sleep(time.Millisecond)
	}
	if e.Rebalances() == 0 {
		t.Fatal("auto-rebalancer never triggered")
	}
	if got := e.Skew(); got >= 1.5 {
		t.Fatalf("skew after auto-rebalance = %.2f, want < 1.5", got)
	}
	assertPlacement(t, e)
}

// rng64 is a tiny splitmix step for non-correlated probe keys without
// sharing a rand.Rand across asserts.
func rng64(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	if v := int64(z ^ (z >> 31)); v < 0 {
		return -v
	} else {
		return v
	}
}
