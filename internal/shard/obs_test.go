package shard_test

// Observability consistency suite, meant for `go test -race`: hammers the
// engine with concurrent readers, writers, cross-shard movers, rebalance
// installs, and View-pinned scans while every caller tallies its own ops
// into a shared oracle, then asserts the metrics registry agrees exactly —
// the per-op counters are striped atomics, so any lost or double count is a
// bug in the striping or in an instrumentation site, and with latency
// sampling forced to every-op the histograms must agree with the counters
// too (every begun op reaches its matching end).

import (
	"sync"
	"sync/atomic"
	"testing"

	"casper/internal/obs"
	"casper/internal/shard"
)

const (
	obsKeySpan   = int64(64_000) // initial keys: 8·i for i < 8000
	obsReaders   = 3
	obsReaderOps = 400
	obsMovers    = 2
	obsMoverOps  = 200
	obsScans     = 60
	obsInstalls  = 30
)

func obsRaceEngine(t *testing.T) *shard.Engine {
	t.Helper()
	keys := make([]int64, 8_000)
	for i := range keys {
		keys[i] = 8 * int64(i)
	}
	cfg := oracleConfig()
	cfg.ChunkValues = 1_024
	e, err := shard.New(keys, shard.Config{Shards: 4, ByRange: true, Table: cfg})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableObs()
	// Sample every op so the latency histogram count must equal the op
	// counter: any op that begins without ending (or vice versa) fails.
	e.Obs().SetLatencySampleEvery(1)
	return e
}

func TestObsOpCountConsistency(t *testing.T) {
	e := obsRaceEngine(t)

	var oracle [obs.NumOps]atomic.Uint64
	tally := func(op obs.Op) { oracle[op].Add(1) }

	var wg sync.WaitGroup

	// Rebalance installs: flip between two boundary sets so every install
	// migrates rows while readers and movers are mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := []int64{16_000, 32_000, 48_000}
		b := []int64{10_000, 30_000, 54_000}
		for i := 0; i < obsInstalls; i++ {
			bounds := a
			if i%2 == 1 {
				bounds = b
			}
			if _, err := e.RebalanceTo(bounds); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Movers: each toggles a private key (≡ w+1 mod 8, never an initial
	// key) across the fleet with UpdateKey. Inserts, deletes, and update
	// attempts — including failed ones — are all metered per attempt.
	for w := 0; w < obsMovers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := int64(w + 1)
			hi := lo + (obsKeySpan/8)*8 // same residue class, far shard
			e.Insert(lo)
			tally(obs.OpInsert)
			cur, other := lo, hi
			for i := 0; i < obsMoverOps; i++ {
				_ = e.UpdateKey(cur, other)
				tally(obs.OpUpdateKey)
				cur, other = other, cur
			}
			_ = e.Delete(cur)
			tally(obs.OpDelete)
		}(w)
	}

	// Readers: point, range-count, and range-sum traffic plus the counted
	// fleet snapshots (Len, Chunks).
	for r := 0; r < obsReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < obsReaderOps; i++ {
				k := 8 * int64((r*obsReaderOps+i)%8_000)
				e.PointQuery(k)
				tally(obs.OpPointQuery)
				e.RangeCount(k, k+1_024)
				tally(obs.OpRangeCount)
				e.RangeSum(k, k+1_024)
				tally(obs.OpRangeSum)
				if i%64 == 0 {
					e.Len()
					tally(obs.OpLen)
					e.Chunks()
					tally(obs.OpChunks)
				}
			}
		}(r)
	}

	// Scans: alternate engine cursors (stripe-per-batch) and View-pinned
	// cursors (frozen snapshot). Each open counts one OpScan; Close ends
	// the latency sample, so every cursor must be closed exactly once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < obsScans; i++ {
			lo := 8 * int64((i*97)%4_000)
			hi := lo + 8_192
			if i%2 == 0 {
				c := e.Scan(lo, hi, shard.ScanOptions{Batch: 256})
				for c.Next() {
				}
				c.Close()
				c.Close() // idempotent: must not double-count the latency
				tally(obs.OpScan)
			} else {
				e.View(func(v *shard.View) {
					c := v.Scan(lo, hi, shard.ScanOptions{Limit: 512})
					for c.Next() {
					}
					c.Close()
					tally(obs.OpScan)
					v.PointQuery(lo)
					tally(obs.OpPointQuery)
				})
			}
		}
	}()

	wg.Wait()

	s := e.Metrics()
	if !s.Enabled {
		t.Fatal("snapshot reports metrics disabled")
	}
	for op := obs.Op(0); op < obs.NumOps; op++ {
		want := oracle[op].Load()
		got, ok := s.Ops[op.String()]
		if !ok {
			t.Fatalf("snapshot missing op %q", op)
		}
		if got.Count != want {
			t.Errorf("op %q: counter %d, oracle %d", op, got.Count, want)
		}
		if got.LatencyNs.Count != want {
			t.Errorf("op %q: latency samples %d, oracle %d (sample-every-1: every op must be timed)", op, got.LatencyNs.Count, want)
		}
	}
	if s.Rebalance.RowsMoved == 0 {
		t.Error("rebalance installs migrated rows but RowsMoved == 0")
	}
	if s.Rebalance.PauseNs.Count == 0 {
		t.Error("rebalance pause histogram empty after installs")
	}
	if s.CursorBatches == 0 {
		t.Error("cursor scans drained batches but CursorBatches == 0")
	}
	if ev := e.Events(0); len(ev) == 0 {
		t.Error("no lifecycle events journaled despite rebalances")
	} else {
		for i := 1; i < len(ev); i++ {
			if ev[i].Seq <= ev[i-1].Seq {
				t.Fatalf("event seq not monotonic: %d after %d", ev[i].Seq, ev[i-1].Seq)
			}
		}
	}
}
