package shard

// Fuzz coverage for the range partitioner under adversarial boundary sets:
// RangePartitionerFromBounds ingests bounds from durable artifacts (manifest,
// checkpoints, WAL boundary records) that a crash or corruption can leave
// empty, duplicated, unsorted, or at the int64 extremes, and proposeBounds
// feeds RebalanceTo. Routing must stay total, stable, monotone, and
// span-consistent for every input. The seed corpus includes real rebalance
// proposals (padded quantile bounds) alongside the adversarial shapes.

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

func encodeBounds(bounds ...int64) []byte {
	out := make([]byte, 0, 8*len(bounds))
	for _, b := range bounds {
		out = binary.LittleEndian.AppendUint64(out, uint64(b))
	}
	return out
}

func FuzzRangePartitionerFromBounds(f *testing.F) {
	f.Add(encodeBounds(), int64(0))
	f.Add(encodeBounds(0), int64(5))
	f.Add(encodeBounds(5, 5, 5), int64(5))                        // duplicates
	f.Add(encodeBounds(9, 3, 7), int64(4))                        // unsorted
	f.Add(encodeBounds(math.MinInt64, math.MaxInt64), int64(-1))  // extremes
	f.Add(encodeBounds(math.MaxInt64, math.MaxInt64-1), int64(1)) // reversed extremes
	f.Add(encodeBounds(-10, -10, 0, 0, 10, 10), int64(0))         // dup runs
	f.Add(encodeBounds(proposeBounds([]int64{1, 2, 3, 100, 200, 300}, 4)...), int64(150))
	f.Add(encodeBounds(proposeBounds([]int64{7, 7, 7, 7}, 8)...), int64(7))
	f.Add(encodeBounds(proposeBounds(nil, 6)...), int64(2))

	f.Fuzz(func(t *testing.T, data []byte, probe int64) {
		if len(data) > 64*8 {
			data = data[:64*8]
		}
		var bounds []int64
		for i := 0; i+8 <= len(data); i += 8 {
			bounds = append(bounds, int64(binary.LittleEndian.Uint64(data[i:])))
		}
		p := RangePartitionerFromBounds(bounds)
		n := p.Shards()
		if n < 1 || n > len(bounds)+1 {
			t.Fatalf("Shards() = %d for %d raw bounds", n, len(bounds))
		}
		got := p.Bounds()
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("sanitized bounds not strictly increasing: %v", got)
			}
		}

		// Sample keys: the probe, the boundaries, and their neighborhoods
		// (wrapping at the extremes is fine — any int64 is a legal key).
		samples := []int64{probe, probe + 1, probe - 1, 0, math.MinInt64, math.MaxInt64}
		for _, b := range got {
			samples = append(samples, b, b-1, b+1)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

		last := 0
		for i, k := range samples {
			s := p.Shard(k)
			if s < 0 || s >= n {
				t.Fatalf("Shard(%d) = %d outside [0,%d)", k, s, n)
			}
			if again := p.Shard(k); again != s {
				t.Fatalf("Shard(%d) unstable: %d then %d", k, s, again)
			}
			if i > 0 && s < last {
				t.Fatalf("routing not monotone: Shard(%d)=%d after Shard(%d)=%d", k, s, samples[i-1], last)
			}
			last = s
		}

		// Span containment: every sampled key inside [lo, hi] routes inside
		// Span(lo, hi), including a reversed argument order.
		for trial := 0; trial+1 < len(samples); trial += 3 {
			lo, hi := samples[trial], samples[trial+1]
			a, b := p.Span(lo, hi)
			if a2, b2 := p.Span(hi, lo); a2 != a || b2 != b {
				t.Fatalf("Span not symmetric: (%d,%d) vs (%d,%d)", a, b, a2, b2)
			}
			for _, k := range samples {
				if k < lo || k > hi {
					continue
				}
				if s := p.Shard(k); s < a || s > b {
					t.Fatalf("key %d in [%d,%d] routed to %d outside span [%d,%d]", k, lo, hi, s, a, b)
				}
			}
		}

		// Idempotence: a sanitized set round-trips unchanged.
		if again := RangePartitionerFromBounds(got).Bounds(); !boundsEqual(again, got) {
			t.Fatalf("sanitize not idempotent: %v -> %v", got, again)
		}
	})
}

// FuzzProposeMinimalBounds locks the minimal-movement proposer's contract:
// for arbitrary key multisets (duplicate-heavy and int64-extreme included),
// arbitrary sanitized old boundary sets, and arbitrary skew thresholds, the
// proposal must keep exactly the old boundary count, stay strictly
// increasing without collapsing a shard, never worsen the max shard
// occupancy (post-proposal skew <= pre-proposal skew), change nothing when
// no shard breaches, and leave every boundary outside a repair region
// bit-identical.
func FuzzProposeMinimalBounds(f *testing.F) {
	f.Add(encodeBounds(), encodeBounds(0), uint8(0))
	f.Add(encodeBounds(1, 2, 3, 4, 5, 100, 200, 300), encodeBounds(50, 150), uint8(8))
	f.Add(encodeBounds(7, 7, 7, 7, 7, 7), encodeBounds(3, 10), uint8(16))
	f.Add(encodeBounds(math.MinInt64, math.MaxInt64, 0, 0), encodeBounds(math.MinInt64+1, math.MaxInt64-1), uint8(32))
	f.Add(encodeBounds(9, 9, 9, 9, 10, 11, 900, 901, 902, 903, 904, 905), encodeBounds(100, 500, 800), uint8(4))
	f.Add(encodeBounds(proposeBounds([]int64{1, 2, 3, 100, 200, 300}, 4)...), encodeBounds(proposeBounds([]int64{1, 2, 3, 100, 200, 300}, 4)...), uint8(12))

	f.Fuzz(func(t *testing.T, keyData, boundData []byte, skew uint8) {
		if len(keyData) > 256*8 {
			keyData = keyData[:256*8]
		}
		if len(boundData) > 16*8 {
			boundData = boundData[:16*8]
		}
		keys := decodeRawBounds(keyData)
		// The engine hands the proposer its installed (sanitized, strictly
		// increasing) boundary set; mirror that invariant here.
		old := RangePartitionerFromBounds(decodeRawBounds(boundData)).Bounds()
		maxSkew := 1 + float64(skew)/16 // 1.0 (→ default via guard) .. ~16.9
		got := ProposeMinimalBounds(keys, old, maxSkew)

		if len(got) != len(old) {
			t.Fatalf("proposal has %d bounds, old had %d", len(got), len(old))
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("proposal not strictly increasing: %v", got)
			}
		}
		if n := RangePartitionerFromBounds(got).Shards(); n != len(old)+1 {
			t.Fatalf("proposal yields %d shards, want %d", n, len(old)+1)
		}

		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pre := countPerShard(sorted, old)
		post := countPerShard(sorted, got)
		if maxCount(post) > maxCount(pre) {
			t.Fatalf("proposal worsened max occupancy %d -> %d (counts %v -> %v)",
				maxCount(pre), maxCount(post), pre, post)
		}

		regions := repairRegions(pre, effectiveMaxSkew(maxSkew))
		if len(regions) == 0 && !boundsEqual(got, old) {
			t.Fatalf("no shard breaches yet bounds changed: %v -> %v", old, got)
		}
		inRegion := make([]bool, len(old))
		for _, r := range regions {
			for j := r[0]; j < r[1] && j < len(old); j++ {
				inRegion[j] = true
			}
		}
		for j := range old {
			if !inRegion[j] && got[j] != old[j] {
				t.Fatalf("boundary %d outside every repair region changed: %v -> %v (regions %v)",
					j, old, got, regions)
			}
		}
	})
}

// decodeRawBounds decodes little-endian int64s, the shared corpus encoding.
func decodeRawBounds(data []byte) []int64 {
	var out []int64
	for i := 0; i+8 <= len(data); i += 8 {
		out = append(out, int64(binary.LittleEndian.Uint64(data[i:])))
	}
	return out
}

func FuzzProposeBounds(f *testing.F) {
	f.Add(encodeBounds(), uint8(4))
	f.Add(encodeBounds(42), uint8(8))
	f.Add(encodeBounds(7, 7, 7, 7), uint8(3))
	f.Add(encodeBounds(math.MaxInt64, math.MaxInt64), uint8(5))
	f.Add(encodeBounds(math.MinInt64, math.MaxInt64), uint8(6))
	f.Add(encodeBounds(1, 2, 3, 100, 200, 300, 1000), uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, shards uint8) {
		n := int(shards%16) + 1
		if len(data) > 256*8 {
			data = data[:256*8]
		}
		var keys []int64
		for i := 0; i+8 <= len(data); i += 8 {
			keys = append(keys, int64(binary.LittleEndian.Uint64(data[i:])))
		}
		b := proposeBounds(keys, n)
		if len(b) != n-1 {
			t.Fatalf("proposeBounds(%d keys, %d shards) returned %d bounds", len(keys), n, len(b))
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("proposal not strictly increasing: %v", b)
			}
		}
		p := RangePartitionerFromBounds(b)
		if p.Shards() != n {
			t.Fatalf("proposal yields %d shards, want %d", p.Shards(), n)
		}
		// Every input key routes somewhere legal, and with enough distinct
		// keys the quantile split keeps every key's shard near its rank.
		for _, k := range keys {
			if s := p.Shard(k); s < 0 || s >= n {
				t.Fatalf("key %d routed to %d of %d", k, s, n)
			}
		}
	})
}
