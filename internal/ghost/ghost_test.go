package ghost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"casper/internal/costmodel"
	"casper/internal/freq"
)

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func TestAllocateProportionalToInserts(t *testing.T) {
	// All movement targets partition 1 → the whole budget goes there.
	m := freq.NewModel(6)
	m.IN[2] = 10
	m.IN[3] = 20
	layout := costmodel.Layout{Sizes: []int{2, 2, 2}}
	got := Allocate(m, layout, 100)
	want := []int{0, 100, 0}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("Allocate = %v, want %v", got, want)
		}
	}
}

func TestAllocateIncludesUpdateTargets(t *testing.T) {
	// Eq. 18 counts update-to operations (both ripple directions) as data
	// movement.
	m := freq.NewModel(4)
	m.UTF[0] = 5
	m.UTB[3] = 15
	layout := costmodel.Layout{Sizes: []int{2, 2}}
	got := Allocate(m, layout, 20)
	if got[0] != 5 || got[1] != 15 {
		t.Fatalf("Allocate = %v, want [5 15]", got)
	}
}

func TestAllocateSumsToBudgetExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		m := freq.NewModel(n)
		for i := 0; i < n; i++ {
			m.IN[i] = float64(rng.Intn(10))
			m.UTF[i] = float64(rng.Intn(5))
		}
		// Random layout over n blocks.
		var sizes []int
		rem := n
		for rem > 0 {
			s := 1 + rng.Intn(rem)
			sizes = append(sizes, s)
			rem -= s
		}
		layout := costmodel.Layout{Sizes: sizes}
		total := rng.Intn(1000)
		got := Allocate(m, layout, total)
		if len(got) != layout.Partitions() {
			t.Fatalf("allocation length %d != partitions %d", len(got), layout.Partitions())
		}
		if sum(got) != total {
			t.Fatalf("allocation sums to %d, want %d (alloc=%v)", sum(got), total, got)
		}
		for j, g := range got {
			if g < 0 {
				t.Fatalf("negative allocation %d at partition %d", g, j)
			}
		}
	}
}

func TestAllocateNoMovementFallsBackToEven(t *testing.T) {
	m := freq.NewModel(6)
	m.PQ[0] = 100 // reads only: no data movement
	layout := costmodel.Layout{Sizes: []int{2, 2, 2}}
	got := Allocate(m, layout, 9)
	want := Even(3, 9)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("Allocate = %v, want even %v", got, want)
		}
	}
}

func TestAllocateZeroBudget(t *testing.T) {
	m := freq.NewModel(4)
	m.IN[0] = 1
	got := Allocate(m, costmodel.Layout{Sizes: []int{2, 2}}, 0)
	if sum(got) != 0 {
		t.Fatalf("zero budget allocated %v", got)
	}
}

func TestEvenProperties(t *testing.T) {
	f := func(kRaw, totalRaw uint8) bool {
		k := int(kRaw%20) + 1
		total := int(totalRaw)
		out := Even(k, total)
		if sum(out) != total {
			return false
		}
		for _, v := range out {
			if v < 0 || v > total/k+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvenPanicsOnZeroPartitions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Even(0, 5)
}

func TestBudget(t *testing.T) {
	tests := []struct {
		n    int
		frac float64
		want int
	}{
		{1_000_000, 0.01, 10_000},
		{1_000_000, 0.001, 1_000},
		{1_000_000, 0.0001, 100},
		{1_000_000, 0.10, 100_000},
		{100, 0, 0},
		{100, -1, 0},
		{3, 0.5, 2}, // rounds
	}
	for _, tc := range tests {
		if got := Budget(tc.n, tc.frac); got != tc.want {
			t.Errorf("Budget(%d, %v) = %d, want %d", tc.n, tc.frac, got, tc.want)
		}
	}
}
