// Package ghost distributes ghost values — empty slots that act as
// per-partition update buffers — across the partitions of a column layout
// (§4.6 of the paper, Eq. 18).
//
// Inserts and incoming updates into a partition with a free ghost slot avoid
// the ripple entirely; the budget is therefore distributed proportionally to
// each partition's expected data movement from inserts and update-to
// operations.
package ghost

import (
	"fmt"
	"sort"

	"casper/internal/costmodel"
	"casper/internal/freq"
)

// Allocate distributes total ghost slots over the partitions of layout
// proportionally to their share of insert/update-to data movement (Eq. 18).
// Rounding uses the largest-remainder method so the returned slots always
// sum exactly to total. When the model predicts no data movement at all, the
// budget falls back to an even split.
func Allocate(m *freq.Model, layout costmodel.Layout, total int) []int {
	if err := layout.Validate(); err != nil {
		panic(fmt.Sprintf("ghost: %v", err))
	}
	k := layout.Partitions()
	if total <= 0 {
		return make([]int, k)
	}
	dm := movement(m, layout)
	var dmTot float64
	for _, v := range dm {
		dmTot += v
	}
	if dmTot == 0 {
		return Even(k, total)
	}
	return largestRemainder(dm, dmTot, total)
}

// movement returns dm_part(j): the per-partition data movement attributable
// to inserts and incoming updates (Eq. 18's numerator). The paper's
// worst-case accounting treats every insert and update-to as requiring a
// ripple insert.
func movement(m *freq.Model, layout costmodel.Layout) []float64 {
	dm := make([]float64, layout.Partitions())
	b := 0
	for j, size := range layout.Sizes {
		for i := 0; i < size; i++ {
			if b < m.Blocks() {
				dm[j] += m.IN[b] + m.UTF[b] + m.UTB[b]
			}
			b++
		}
	}
	return dm
}

// largestRemainder apportions total slots to weights w (summing to wTot).
func largestRemainder(w []float64, wTot float64, total int) []int {
	k := len(w)
	out := make([]int, k)
	type frac struct {
		j int
		r float64
	}
	fr := make([]frac, k)
	assigned := 0
	for j, v := range w {
		exact := v / wTot * float64(total)
		out[j] = int(exact)
		assigned += out[j]
		fr[j] = frac{j, exact - float64(out[j])}
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].r != fr[b].r {
			return fr[a].r > fr[b].r
		}
		return fr[a].j < fr[b].j
	})
	for i := 0; assigned < total; i = (i + 1) % k {
		out[fr[i].j]++
		assigned++
	}
	return out
}

// Even splits total slots evenly over k partitions (the Equi-GV baseline of
// §7), with the remainder going to the leading partitions.
func Even(k, total int) []int {
	if k <= 0 {
		panic(fmt.Sprintf("ghost: non-positive partition count %d", k))
	}
	out := make([]int, k)
	if total <= 0 {
		return out
	}
	base, rem := total/k, total%k
	for j := range out {
		out[j] = base
		if j < rem {
			out[j]++
		}
	}
	return out
}

// Budget converts a relative ghost value budget (fraction of the data size,
// e.g. 0.01 for 1% as in Fig. 14) to an absolute slot count for a chunk of
// n values.
func Budget(n int, fraction float64) int {
	if fraction <= 0 {
		return 0
	}
	return int(float64(n)*fraction + 0.5)
}
