package workload

// Time-phased adversarial scenarios (ROADMAP "Scenario diversity"): each
// scenario is a seeded sequence of phases, every phase a workload mix with
// its own skew, arrival-rate multiplier, and active key window, generated
// against one shared live-key pool so the stream stays self-consistent
// across phase boundaries (deletes and updates always target keys the
// stream itself made live).
//
// The five shapes stress exactly the machinery the engine grew for drift:
//
//	zipf-hot     escalating Zipf exponent pins traffic onto ever fewer
//	             keys — the retrainer must keep re-concentrating layouts.
//	flashcrowd   a write burst at 50× the baseline arrival rate hammers
//	             the top of the domain — the admission controller's
//	             headline case (internal/shard/admission.go).
//	diurnal      the active window orbits the key domain in six steps,
//	             so yesterday's layout is always wrong — retrainer and
//	             rebalancer chase the window around the clock.
//	tenant-skew  eight tenant key bands with the hot tenant rotating;
//	             per-tenant admission fairness keeps the hot tenant from
//	             starving the rest.
//	htap-sweep   the mix slides from point-heavy transactional to
//	             scan-heavy analytical (Polynesia's HTAP split) and the
//	             layout must follow.
//
// Streams are plain []Op per phase, so the existing RouteOp/SplitByShard
// plumbing routes them unchanged; the parallel Tenants slice carries lane
// attribution for admission fairness without touching Op.

import (
	"fmt"
	"math"
	"math/rand"
)

// Scenario names accepted by Scenario and casperbench -scenario.
const (
	ScenarioZipfHot    = "zipf-hot"
	ScenarioFlashCrowd = "flashcrowd"
	ScenarioDiurnal    = "diurnal"
	ScenarioTenantSkew = "tenant-skew"
	ScenarioHTAPSweep  = "htap-sweep"
)

// ScenarioNames lists every scenario in a stable order.
func ScenarioNames() []string {
	return []string{
		ScenarioZipfHot, ScenarioFlashCrowd, ScenarioDiurnal,
		ScenarioTenantSkew, ScenarioHTAPSweep,
	}
}

// PhaseSpec describes one phase of a scenario.
type PhaseSpec struct {
	Name string
	Mix  []MixEntry
	// Frac is this phase's share of the scenario's total operations;
	// phase fractions are normalized over their sum.
	Frac float64
	// Rate is the arrival-rate multiplier relative to the scenario's
	// baseline (0 means 1×). Replayers pace by it; flashcrowd's burst
	// phase sets 50.
	Rate float64
	// ZipfS/ZipfV override the scenario-level Zipf parameters for this
	// phase (0 inherits).
	ZipfS, ZipfV float64
	// WinLo/WinHi bound the phase's active key window as fractions of the
	// domain (or of each tenant's band when the scenario is multi-tenant).
	// WinHi 0 means the full window.
	WinLo, WinHi float64
	// TenantWeights biases tenant selection for this phase; nil is
	// uniform. Length must equal the scenario's Tenants when set.
	TenantWeights []float64
}

// ScenarioSpec describes a phased scenario to generate.
type ScenarioSpec struct {
	Name string
	// Ops is the total operation count across phases.
	Ops int
	// Seed fixes the whole stream: equal specs and seeds yield equal
	// streams, op for op.
	Seed int64
	// Tenants > 1 splits the key domain into that many contiguous,
	// equal-width key bands; every generated op is attributed to the
	// tenant whose band it was drawn from.
	Tenants int
	// RangeFrac is the Q2/Q3/Q8 range width as a fraction of the active
	// window (default 0.02).
	RangeFrac float64
	// ZipfS/ZipfV are the scenario-level Zipf parameters (0 = the
	// Spec defaults, 1.3 and 8); phases may override. zipf-hot's
	// escalation is tuned by overriding the phase values.
	ZipfS, ZipfV float64
	Phases       []PhaseSpec
}

// maxScenarioTenants bounds tenant fan-out; fairness lanes are per-tenant
// state everywhere downstream.
const maxScenarioTenants = 4096

// Validate reports malformed scenario specs.
func (s ScenarioSpec) Validate() error {
	if s.Ops <= 0 {
		return fmt.Errorf("scenario %q: non-positive op count %d", s.Name, s.Ops)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", s.Name)
	}
	if s.Tenants < 0 || s.Tenants > maxScenarioTenants {
		return fmt.Errorf("scenario %q: tenant count %d out of range [0, %d]", s.Name, s.Tenants, maxScenarioTenants)
	}
	tenants := s.Tenants
	if tenants < 1 {
		tenants = 1
	}
	var fracTot float64
	for i, ph := range s.Phases {
		// A phase is a Spec over its own mix and skew; reuse its checks.
		probe := Spec{
			Name: fmt.Sprintf("%s/%s", s.Name, ph.Name), Mix: ph.Mix, Ops: 1,
			RangeFrac: s.RangeFrac,
			ZipfS:     inheritF(ph.ZipfS, s.ZipfS), ZipfV: inheritF(ph.ZipfV, s.ZipfV),
		}
		if err := probe.Validate(); err != nil {
			return err
		}
		if !(ph.Frac > 0) || math.IsInf(ph.Frac, 0) {
			return fmt.Errorf("scenario %q phase %d: non-positive fraction %v", s.Name, i, ph.Frac)
		}
		fracTot += ph.Frac
		if ph.Rate < 0 || math.IsNaN(ph.Rate) || math.IsInf(ph.Rate, 0) {
			return fmt.Errorf("scenario %q phase %d: bad rate %v", s.Name, i, ph.Rate)
		}
		lo, hi := ph.WinLo, ph.WinHi
		if hi == 0 {
			hi = 1
		}
		if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 1 || lo >= hi {
			return fmt.Errorf("scenario %q phase %d: bad window [%v, %v]", s.Name, i, ph.WinLo, ph.WinHi)
		}
		if ph.TenantWeights != nil {
			if len(ph.TenantWeights) != tenants {
				return fmt.Errorf("scenario %q phase %d: %d tenant weights for %d tenants", s.Name, i, len(ph.TenantWeights), tenants)
			}
			var wtot float64
			for _, w := range ph.TenantWeights {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("scenario %q phase %d: bad tenant weight %v", s.Name, i, w)
				}
				wtot += w
			}
			if wtot <= 0 {
				return fmt.Errorf("scenario %q phase %d: zero total tenant weight", s.Name, i)
			}
		}
	}
	if fracTot <= 0 || math.IsInf(fracTot, 0) {
		return fmt.Errorf("scenario %q: zero total phase fraction", s.Name)
	}
	return nil
}

func inheritF(v, fallback float64) float64 {
	if v != 0 {
		return v
	}
	return fallback
}

// ScenarioPhase is one generated phase: the ops to replay, the arrival-rate
// multiplier to pace them at, and (for multi-tenant scenarios) the tenant
// lane of each op.
type ScenarioPhase struct {
	Name string
	Rate float64
	Ops  []Op
	// Tenants is parallel to Ops (Tenants[i] is Ops[i]'s lane); nil when
	// the scenario is single-tenant.
	Tenants []int
}

// ScenarioStream is a generated scenario: deterministic by (spec, seed),
// routable phase by phase through SplitByShard.
type ScenarioStream struct {
	Name        string
	TenantCount int
	Phases      []ScenarioPhase
}

// TotalOps returns the op count across all phases.
func (st *ScenarioStream) TotalOps() int {
	n := 0
	for _, ph := range st.Phases {
		n += len(ph.Ops)
	}
	return n
}

// AllOps concatenates the phases into one stream, for consumers that
// replay without pacing (training splits, oracle twins).
func (st *ScenarioStream) AllOps() []Op {
	out := make([]Op, 0, st.TotalOps())
	for _, ph := range st.Phases {
		out = append(out, ph.Ops...)
	}
	return out
}

// GenerateScenario produces the phased op stream for spec. One generator
// (and one live key pool) spans every phase, so cross-phase deletes and
// updates stay self-consistent; per-phase skew, window, and tenant band are
// applied around the same generateOne the flat Generate uses.
func GenerateScenario(initialKeys []int64, domainMax int64, spec ScenarioSpec) (*ScenarioStream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(initialKeys) == 0 {
		return nil, fmt.Errorf("scenario %q: empty initial key set", spec.Name)
	}
	tenants := spec.Tenants
	if tenants < 1 {
		tenants = 1
	}
	rangeFrac := spec.RangeFrac
	if rangeFrac == 0 {
		rangeFrac = 0.02
	}
	g := newGenerator(initialKeys, domainMax, spec.Seed, spec.ZipfS, spec.ZipfV)

	var fracTot float64
	for _, ph := range spec.Phases {
		fracTot += ph.Frac
	}
	st := &ScenarioStream{Name: spec.Name, TenantCount: spec.Tenants}
	emitted := 0
	for pi, ph := range spec.Phases {
		want := int(math.Round(float64(spec.Ops) * ph.Frac / fracTot))
		if pi == len(spec.Phases)-1 {
			want = spec.Ops - emitted // rounding remainder lands here
		}
		if want < 0 {
			want = 0
		}
		g.setSkew(inheritF(ph.ZipfS, spec.ZipfS), inheritF(ph.ZipfV, spec.ZipfV))
		out := ScenarioPhase{Name: ph.Name, Rate: ph.Rate, Ops: make([]Op, 0, want)}
		if out.Rate == 0 {
			out.Rate = 1
		}
		if tenants > 1 {
			out.Tenants = make([]int, 0, want)
		}
		var wtot float64
		for _, w := range ph.TenantWeights {
			wtot += w
		}
		for len(out.Ops) < want {
			tenant := 0
			if tenants > 1 {
				tenant = pickTenant(g.rng, ph.TenantWeights, wtot, tenants)
			}
			g.setWindow(phaseWindow(tenant, tenants, ph, domainMax))
			if op, ok := g.generateOne(pickEntry(g.rng, ph.Mix, mixTotal(ph.Mix)), rangeFrac); ok {
				out.Ops = append(out.Ops, op)
				if tenants > 1 {
					out.Tenants = append(out.Tenants, tenant)
				}
			}
		}
		emitted += len(out.Ops)
		st.Phases = append(st.Phases, out)
	}
	return st, nil
}

func mixTotal(mix []MixEntry) float64 {
	var tot float64
	for _, e := range mix {
		tot += e.Frac
	}
	return tot
}

// pickTenant roulette-selects a tenant lane, consuming exactly one Float64.
// Nil weights select uniformly.
func pickTenant(rng *rand.Rand, weights []float64, wtot float64, tenants int) int {
	if len(weights) == 0 {
		return rng.Intn(tenants)
	}
	r := rng.Float64() * wtot
	for t, w := range weights {
		if r < w {
			return t
		}
		r -= w
	}
	return len(weights) - 1
}

// phaseWindow resolves a phase's active key window for one tenant: the
// tenant's contiguous band of the domain, narrowed by the phase's
// fractional window.
func phaseWindow(tenant, tenants int, ph PhaseSpec, domainMax int64) (int64, int64) {
	bandLo := int64(float64(domainMax+1) * float64(tenant) / float64(tenants))
	bandHi := int64(float64(domainMax+1)*float64(tenant+1)/float64(tenants)) - 1
	if bandHi > domainMax {
		bandHi = domainMax
	}
	wl, wh := ph.WinLo, ph.WinHi
	if wh == 0 {
		wh = 1
	}
	span := float64(bandHi - bandLo)
	return bandLo + int64(wl*span), bandLo + int64(wh*span)
}

// Scenario returns the named scenario's spec with the given total operation
// count and seed. The returned spec is plain data — callers may tune it
// (e.g. sharpen zipf-hot's exponent or re-weight tenants) before
// GenerateScenario.
func Scenario(name string, ops int, seed int64) (ScenarioSpec, error) {
	s := ScenarioSpec{Name: name, Ops: ops, Seed: seed, RangeFrac: 0.02}
	hybrid := []MixEntry{
		{Q1PointQuery, 0.50, SkewedRecent},
		{Q4Insert, 0.44, SkewedRecent},
		{Q5Delete, 0.05, Uniform},
		{Q6Update, 0.01, Uniform},
	}
	switch name {
	case ScenarioZipfHot:
		// Escalating exponent: the same mix, ever fewer distinct hot keys.
		s.Phases = []PhaseSpec{
			{Name: "warm", Frac: 0.3, Mix: hybrid},
			{Name: "hot", Frac: 0.4, Mix: hybrid, ZipfS: 2.2, ZipfV: 1},
			{Name: "blister", Frac: 0.3, Mix: hybrid, ZipfS: 3.0, ZipfV: 1},
		}
	case ScenarioFlashCrowd:
		calm := []MixEntry{
			{Q1PointQuery, 0.70, SkewedRecent},
			{Q2RangeCount, 0.09, SkewedRecent},
			{Q4Insert, 0.20, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
		crowd := []MixEntry{
			{Q4Insert, 0.85, SkewedRecent},
			{Q1PointQuery, 0.10, SkewedRecent},
			{Q5Delete, 0.04, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
		s.Phases = []PhaseSpec{
			{Name: "calm", Frac: 0.35, Rate: 1, Mix: calm},
			// The crowd: writes at 50× the baseline arrival rate, crammed
			// into the top 15% of the domain.
			{Name: "crowd", Frac: 0.35, Rate: 50, Mix: crowd, ZipfS: 2.0, ZipfV: 2, WinLo: 0.85, WinHi: 1},
			{Name: "recovery", Frac: 0.30, Rate: 1, Mix: calm},
		}
	case ScenarioDiurnal:
		// The hot window orbits the domain: six four-hour slices, each
		// phase's traffic confined to one sixth (plus overlap into the
		// next, so the handoff is a drift the monitor can see coming).
		mix := []MixEntry{
			{Q1PointQuery, 0.40, SkewedRecent},
			{Q2RangeCount, 0.05, Uniform},
			{Q3RangeSum, 0.05, Uniform},
			{Q4Insert, 0.35, SkewedRecent},
			{Q5Delete, 0.10, Uniform},
			{Q6Update, 0.05, Uniform},
		}
		for i := 0; i < 6; i++ {
			lo := float64(i) / 6
			hi := lo + 1.0/6 + 0.05
			if hi > 1 {
				hi = 1
			}
			s.Phases = append(s.Phases, PhaseSpec{
				Name: fmt.Sprintf("h%02d", i*4), Frac: 1.0 / 6, Mix: mix,
				WinLo: lo, WinHi: hi,
			})
		}
	case ScenarioTenantSkew:
		s.Tenants = 8
		// The hot tenant rotates 0 → 3 → 6, holding 60% of the traffic
		// while the other seven split the rest.
		for pi, hot := range []int{0, 3, 6} {
			w := make([]float64, s.Tenants)
			for t := range w {
				w[t] = 0.4 / float64(s.Tenants-1)
			}
			w[hot] = 0.6
			s.Phases = append(s.Phases, PhaseSpec{
				Name: fmt.Sprintf("hot-t%d", hot), Frac: 1.0 / 3, Mix: hybrid,
				ZipfS: 1.8, ZipfV: 4, TenantWeights: w,
				Rate: 1 + float64(pi), // each rotation arrives hotter
			})
		}
	case ScenarioHTAPSweep:
		// Sweep the mix from point-heavy transactional to scan-heavy
		// analytical while ingest stays constant.
		s.RangeFrac = 0.05
		for _, scan := range []float64{0.05, 0.2, 0.4, 0.6, 0.8} {
			mix := []MixEntry{
				{Q8Scan, scan, SkewedRecent},
				{Q1PointQuery, 0.85 - scan, SkewedRecent},
				{Q4Insert, 0.10, SkewedRecent},
				{Q5Delete, 0.04, Uniform},
				{Q6Update, 0.01, Uniform},
			}
			s.Phases = append(s.Phases, PhaseSpec{
				Name: fmt.Sprintf("scan%02d", int(scan*100)), Frac: 0.2, Mix: mix,
			})
		}
	default:
		return ScenarioSpec{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return s, nil
}
