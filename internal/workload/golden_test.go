package workload

import (
	"hash/fnv"
	"testing"
)

// streamFingerprint hashes every field of every op in order, so any change
// to a generated stream — reordering, a single key, a limit — changes it.
func streamFingerprint(ops []Op) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, op := range ops {
		w(int64(op.Kind))
		w(op.Key)
		w(op.Key2)
		w(int64(op.Limit))
	}
	return h.Sum64()
}

// TestSpecZipfParams covers the lifted Zipf knobs: Validate's range checks,
// and that a sharper exponent actually concentrates skewed accesses harder.
func TestSpecZipfParams(t *testing.T) {
	base := Spec{Name: "z", Mix: []MixEntry{{Q1PointQuery, 1, SkewedRecent}}, Ops: 4000}
	for _, bad := range []Spec{
		func() Spec { s := base; s.ZipfS = 1; return s }(),
		func() Spec { s := base; s.ZipfS = -2; return s }(),
		func() Spec { s := base; s.ZipfV = 0.5; return s }(),
		func() Spec { s := base; s.ZipfV = -1; return s }(),
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted ZipfS=%v ZipfV=%v", bad.ZipfS, bad.ZipfV)
		}
	}
	keys := UniformKeys(500, 1<<20, 3)
	tail := func(s Spec) float64 {
		s.Seed = 11
		ops, err := Generate(keys, 1<<20, s)
		if err != nil {
			t.Fatal(err)
		}
		hot := 0
		for _, op := range ops {
			if op.Key >= (1<<20)*99/100 {
				hot++
			}
		}
		return float64(hot) / float64(len(ops))
	}
	sharp := base
	sharp.ZipfS = 3
	sharp.ZipfV = 1
	if d, h := tail(base), tail(sharp); h <= d {
		t.Errorf("ZipfS=3/ZipfV=1 hot-tail fraction %.3f not above default %.3f", h, d)
	}
}

// TestPresetStreamsGolden pins the exact op streams the paper presets emit
// for a fixed seed. The Zipf skew exponent and value bound moved from
// hardcoded constants into Spec (ZipfS/ZipfV); the zero-value defaults must
// reproduce the original rand.NewZipf(rng, 1.3, 8, ...) streams bit for bit,
// or every trajectory artifact and trained layout in the repo silently
// shifts. If this test fails, a generator change broke seed compatibility —
// do not update the goldens without meaning to.
func TestPresetStreamsGolden(t *testing.T) {
	const (
		domainMax = int64(1 << 20)
		nKeys     = 2000
		nOps      = 5000
		seed      = 42
	)
	// Recorded from the generator as of the ZipfS/ZipfV lift (ops=5000,
	// seed=42, 2000 initial keys from UniformKeys(..., 7), domain 2^20).
	golden := map[string]uint64{
		HybridSkewed:      0xe366dab2e8e892d,
		HybridRangeSkewed: 0xd6a6e6d320fcfbc,
		ReadOnlySkewed:    0x57c68ffa0d8102ce,
		ReadOnlyUniform:   0x37e52f6728ccf652,
		UpdateOnlySkewed:  0x7ed9a3e94d5bc0de,
		UpdateOnlyUniform: 0xf6846913911cbf16,
		SLAHybrid:         0x8e8c9de1043ea9ea,
		UDI1:              0x7ed9a3e94d5bc0de,
		UDI2:              0xf6846913911cbf16,
		YCSBA2:            0x5a18c7ee31366748,
		Robust5050:        0x38372f1701c74f42,
		ScanHeavy:         0xe34e4850ab9ccdcb,
	}
	keys := UniformKeys(nKeys, domainMax, 7)
	for _, name := range PresetNames() {
		spec, err := Preset(name, nOps, seed)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		ops, err := Generate(keys, domainMax, spec)
		if err != nil {
			t.Fatalf("generate %s: %v", name, err)
		}
		got := streamFingerprint(ops)
		want, ok := golden[name]
		if !ok {
			t.Fatalf("preset %s has no golden fingerprint (got %#x)", name, got)
		}
		if got != want {
			t.Errorf("preset %s: stream fingerprint %#x, want %#x (seeded stream changed)", name, got, want)
		}
	}
}
