package workload

import (
	"math"
	"testing"
)

const (
	scenDomain = int64(1 << 20)
	scenOps    = 6000
)

func scenKeys() []int64 { return UniformKeys(2000, scenDomain, 7) }

// TestScenariosDeterministicBySeed: equal (spec, seed) must yield identical
// streams, phase for phase and op for op — the contract every oracle-twin
// replay and checked-in trajectory artifact depends on.
func TestScenariosDeterministicBySeed(t *testing.T) {
	for _, name := range ScenarioNames() {
		spec, err := Scenario(name, scenOps, 42)
		if err != nil {
			t.Fatal(err)
		}
		a, err := GenerateScenario(scenKeys(), scenDomain, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := GenerateScenario(scenKeys(), scenDomain, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Phases) != len(b.Phases) {
			t.Fatalf("%s: phase counts differ: %d vs %d", name, len(a.Phases), len(b.Phases))
		}
		for i := range a.Phases {
			pa, pb := a.Phases[i], b.Phases[i]
			if streamFingerprint(pa.Ops) != streamFingerprint(pb.Ops) {
				t.Errorf("%s phase %s: op streams differ for equal seeds", name, pa.Name)
			}
			for j := range pa.Tenants {
				if pa.Tenants[j] != pb.Tenants[j] {
					t.Fatalf("%s phase %s: tenant lanes differ at %d", name, pa.Name, j)
				}
			}
		}
		// A different seed must actually change the stream.
		spec.Seed = 43
		c, err := GenerateScenario(scenKeys(), scenDomain, spec)
		if err != nil {
			t.Fatal(err)
		}
		if streamFingerprint(a.AllOps()) == streamFingerprint(c.AllOps()) {
			t.Errorf("%s: seeds 42 and 43 generated identical streams", name)
		}
		if got := a.TotalOps(); got != scenOps {
			t.Errorf("%s: generated %d ops, want %d", name, got, scenOps)
		}
	}
}

// TestScenarioShapes spot-checks that each scenario produces the traffic
// shape its name promises.
func TestScenarioShapes(t *testing.T) {
	gen := func(name string) *ScenarioStream {
		spec, err := Scenario(name, scenOps, 9)
		if err != nil {
			t.Fatal(err)
		}
		st, err := GenerateScenario(scenKeys(), scenDomain, spec)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	t.Run(ScenarioZipfHot, func(t *testing.T) {
		st := gen(ScenarioZipfHot)
		// Sharper exponents mean fewer distinct keys carry the reads.
		distinct := func(ph ScenarioPhase) int {
			seen := map[int64]bool{}
			for _, op := range ph.Ops {
				if op.Kind == Q1PointQuery {
					seen[op.Key] = true
				}
			}
			return len(seen)
		}
		warm, blister := distinct(st.Phases[0]), distinct(st.Phases[2])
		if blister >= warm {
			t.Errorf("blister phase touched %d distinct point keys, warm %d; want fewer", blister, warm)
		}
	})

	t.Run(ScenarioFlashCrowd, func(t *testing.T) {
		st := gen(ScenarioFlashCrowd)
		crowd := st.Phases[1]
		if crowd.Rate != 50 {
			t.Errorf("crowd rate %v, want 50", crowd.Rate)
		}
		writes, inWindow := 0, 0
		for _, op := range crowd.Ops {
			if op.Kind == Q4Insert {
				writes++
				if op.Key >= scenDomain*85/100 {
					inWindow++
				}
			}
		}
		if frac := float64(writes) / float64(len(crowd.Ops)); frac < 0.7 {
			t.Errorf("crowd phase write fraction %.2f, want >= 0.7", frac)
		}
		if inWindow != writes {
			t.Errorf("%d/%d crowd inserts outside the top-15%% window", writes-inWindow, writes)
		}
	})

	t.Run(ScenarioDiurnal, func(t *testing.T) {
		st := gen(ScenarioDiurnal)
		if len(st.Phases) != 6 {
			t.Fatalf("%d phases, want 6", len(st.Phases))
		}
		// Each phase's inserts stay inside its window slice (±overlap).
		for i, ph := range st.Phases {
			lo := scenDomain * int64(i) / 6
			for _, op := range ph.Ops {
				if op.Kind == Q4Insert && (op.Key < lo || op.Key > scenDomain) {
					t.Fatalf("phase %s insert key %d outside window starting %d", ph.Name, op.Key, lo)
				}
			}
		}
	})

	t.Run(ScenarioTenantSkew, func(t *testing.T) {
		st := gen(ScenarioTenantSkew)
		if st.TenantCount != 8 {
			t.Fatalf("tenant count %d, want 8", st.TenantCount)
		}
		for pi, hot := range []int{0, 3, 6} {
			ph := st.Phases[pi]
			if len(ph.Tenants) != len(ph.Ops) {
				t.Fatalf("phase %s: %d tenant lanes for %d ops", ph.Name, len(ph.Tenants), len(ph.Ops))
			}
			hotN := 0
			band := scenDomain / 8
			for i, tn := range ph.Tenants {
				if tn == hot {
					hotN++
				}
				// Writes land inside their tenant's band.
				if op := ph.Ops[i]; op.Kind == Q4Insert {
					if op.Key < band*int64(tn) || op.Key > band*int64(tn+1)+8 {
						t.Fatalf("phase %s: tenant %d insert key %d outside its band", ph.Name, tn, op.Key)
					}
				}
			}
			if frac := float64(hotN) / float64(len(ph.Tenants)); math.Abs(frac-0.6) > 0.08 {
				t.Errorf("phase %s: hot tenant got %.2f of traffic, want ~0.6", ph.Name, frac)
			}
		}
	})

	t.Run(ScenarioHTAPSweep, func(t *testing.T) {
		st := gen(ScenarioHTAPSweep)
		prev := -1.0
		for _, ph := range st.Phases {
			scans := 0
			for _, op := range ph.Ops {
				if op.Kind == Q8Scan {
					scans++
				}
			}
			frac := float64(scans) / float64(len(ph.Ops))
			if frac <= prev {
				t.Errorf("phase %s scan fraction %.2f did not increase past %.2f", ph.Name, frac, prev)
			}
			prev = frac
		}
		if prev < 0.7 {
			t.Errorf("final phase scan fraction %.2f, want >= 0.7", prev)
		}
	})
}

// TestScenarioStreamsRoutable: every generated op routes through the
// existing SplitByShard plumbing without loss.
func TestScenarioStreamsRoutable(t *testing.T) {
	owner := func(k int64) int { return int(k % 4) }
	span := func(lo, hi int64) (int, int) { return 0, 3 }
	for _, name := range ScenarioNames() {
		spec, err := Scenario(name, 2000, 5)
		if err != nil {
			t.Fatal(err)
		}
		st, err := GenerateScenario(scenKeys(), scenDomain, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range st.Phases {
			per := SplitByShard(ph.Ops, 4, owner, span)
			total := 0
			for _, ops := range per {
				total += len(ops)
			}
			if total < len(ph.Ops) {
				t.Fatalf("%s/%s: SplitByShard dropped ops: %d routed < %d generated", name, ph.Name, total, len(ph.Ops))
			}
		}
	}
}

// FuzzScenarioSpec drives GenerateScenario with adversarial phase
// boundaries, tenant counts, and skew parameters: any spec Validate accepts
// must generate without panicking, produce exactly the requested op count,
// keep every key inside the domain, and be reproducible from its seed.
func FuzzScenarioSpec(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), 1.5, 4.0, 0.3, 0.9, 2.0)
	f.Add(int64(7), uint8(0), uint8(1), 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(int64(-3), uint8(200), uint8(6), 300.0, 1.0, 0.999, 1.0, 50.0)
	f.Add(int64(11), uint8(9), uint8(2), 1.0001, 1e9, 0.5, 0.50001, 0.1)
	f.Fuzz(func(t *testing.T, seed int64, tenants, phases uint8, zipfS, zipfV, winLo, winHi, rate float64) {
		nPhases := int(phases%5) + 1
		spec := ScenarioSpec{
			Name: "fuzz", Ops: 300, Seed: seed,
			Tenants: int(tenants), ZipfS: zipfS, ZipfV: zipfV,
		}
		weights := make([]float64, spec.Tenants)
		for i := range weights {
			weights[i] = float64(i%3) + 0.5
		}
		for i := 0; i < nPhases; i++ {
			ph := PhaseSpec{
				Name: "p", Frac: float64(i) + 0.5, Rate: rate,
				WinLo: winLo, WinHi: winHi,
				Mix: []MixEntry{
					{Q1PointQuery, 0.4, SkewedRecent},
					{Q4Insert, 0.4, SkewedEarly},
					{Q5Delete, 0.1, Uniform},
					{Q2RangeCount, 0.1, RampRecent},
				},
			}
			if spec.Tenants > 1 && i%2 == 0 {
				ph.TenantWeights = weights
			}
			spec.Phases = append(spec.Phases, ph)
		}
		if err := spec.Validate(); err != nil {
			return // malformed by construction; rejection is the right answer
		}
		keys := UniformKeys(64, scenDomain, 1)
		st, err := GenerateScenario(keys, scenDomain, spec)
		if err != nil {
			t.Fatalf("Validate passed but GenerateScenario failed: %v", err)
		}
		if st.TotalOps() != spec.Ops {
			t.Fatalf("generated %d ops, want %d", st.TotalOps(), spec.Ops)
		}
		for _, ph := range st.Phases {
			for _, op := range ph.Ops {
				if op.Key < 0 || op.Key > scenDomain || op.Key2 < 0 || op.Key2 > 2*scenDomain {
					t.Fatalf("op %v escaped the domain [0, %d]", op, scenDomain)
				}
			}
			if spec.Tenants > 1 {
				for _, tn := range ph.Tenants {
					if tn < 0 || tn >= spec.Tenants {
						t.Fatalf("tenant lane %d out of [0, %d)", tn, spec.Tenants)
					}
				}
			}
		}
		again, err := GenerateScenario(keys, scenDomain, spec)
		if err != nil {
			t.Fatal(err)
		}
		if streamFingerprint(st.AllOps()) != streamFingerprint(again.AllOps()) {
			t.Fatal("same spec and seed generated different streams")
		}
	})
}
