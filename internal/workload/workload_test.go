package workload

import (
	"math"
	"testing"

	"casper/internal/freq"
)

func initialKeys() []int64 { return UniformKeys(10_000, 1_000_000, 7) }

func TestGenerateMixFractions(t *testing.T) {
	spec, err := Preset(HybridSkewed, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Generate(initialKeys(), 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 20_000 {
		t.Fatalf("generated %d ops, want 20000", len(ops))
	}
	c := Counts(ops)
	frac := func(k Kind) float64 { return float64(c[k]) / float64(len(ops)) }
	if f := frac(Q1PointQuery); math.Abs(f-0.49) > 0.03 {
		t.Errorf("Q1 fraction = %v, want ~0.49", f)
	}
	if f := frac(Q4Insert); math.Abs(f-0.50) > 0.03 {
		t.Errorf("Q4 fraction = %v, want ~0.50", f)
	}
	if f := frac(Q6Update); math.Abs(f-0.01) > 0.01 {
		t.Errorf("Q6 fraction = %v, want ~0.01", f)
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	spec, _ := Preset(UpdateOnlyUniform, 1000, 42)
	a, err := Generate(initialKeys(), 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(initialKeys(), 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	spec.Seed = 43
	c, _ := Generate(initialKeys(), 1_000_000, spec)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSkewedRecentTargetsHighDomain(t *testing.T) {
	spec := Spec{
		Name: "skew-test",
		Mix:  []MixEntry{{Q4Insert, 1, SkewedRecent}},
		Ops:  5000,
		Seed: 3,
	}
	ops, err := Generate(initialKeys(), 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	var above int
	for _, op := range ops {
		if op.Key > 800_000 {
			above++
		}
	}
	if f := float64(above) / float64(len(ops)); f < 0.7 {
		t.Errorf("only %v of skewed-recent inserts in top 20%% of domain", f)
	}
}

func TestSkewedEarlyTargetsLowDomain(t *testing.T) {
	spec := Spec{
		Name: "skew-test",
		Mix:  []MixEntry{{Q4Insert, 1, SkewedEarly}},
		Ops:  5000,
		Seed: 3,
	}
	ops, err := Generate(initialKeys(), 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	var below int
	for _, op := range ops {
		if op.Key < 200_000 {
			below++
		}
	}
	if f := float64(below) / float64(len(ops)); f < 0.7 {
		t.Errorf("only %v of skewed-early inserts in bottom 20%% of domain", f)
	}
}

func TestRangeWidthFollowsSelectivity(t *testing.T) {
	spec := Spec{
		Name:      "range-test",
		Mix:       []MixEntry{{Q3RangeSum, 1, Uniform}},
		RangeFrac: 0.05,
		Ops:       100,
		Seed:      5,
	}
	dom := int64(1_000_000)
	ops, err := Generate(initialKeys(), dom, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		w := op.Key2 - op.Key
		if w != int64(0.05*float64(dom)) {
			t.Fatalf("range width %d, want %d", w, int64(0.05*float64(dom)))
		}
		if op.Key < 0 || op.Key2 > dom {
			t.Fatalf("range [%d,%d] outside domain", op.Key, op.Key2)
		}
	}
}

func TestDeletesTargetExistingKeys(t *testing.T) {
	keys := initialKeys()
	present := make(map[int64]int, len(keys))
	for _, k := range keys {
		present[k]++
	}
	spec, _ := Preset(UpdateOnlyUniform, 5000, 9)
	ops, err := Generate(keys, 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		switch op.Kind {
		case Q4Insert:
			present[op.Key]++
		case Q5Delete:
			if present[op.Key] == 0 {
				t.Fatalf("op %d deletes absent key %d", i, op.Key)
			}
			present[op.Key]--
		case Q6Update:
			if present[op.Key] == 0 {
				t.Fatalf("op %d updates absent key %d", i, op.Key)
			}
			present[op.Key]--
			present[op.Key2]++
		}
	}
}

func TestToFreqOps(t *testing.T) {
	ops := []Op{
		{Kind: Q1PointQuery, Key: 5},
		{Kind: Q2RangeCount, Key: 1, Key2: 9},
		{Kind: Q3RangeSum, Key: 2, Key2: 8},
		{Kind: Q4Insert, Key: 3},
		{Kind: Q5Delete, Key: 4},
		{Kind: Q6Update, Key: 5, Key2: 6},
	}
	fops := ToFreqOps(ops)
	if len(fops) != 6 {
		t.Fatalf("got %d freq ops, want 6", len(fops))
	}
	wantKinds := []freq.OpKind{
		freq.OpPointQuery, freq.OpRangeQuery, freq.OpRangeQuery,
		freq.OpInsert, freq.OpDelete, freq.OpUpdate,
	}
	for i, f := range fops {
		if f.Kind != wantKinds[i] {
			t.Errorf("op %d kind = %v, want %v", i, f.Kind, wantKinds[i])
		}
	}
}

func TestAllPresetsGenerate(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name, 500, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ops, err := Generate(initialKeys(), 1_000_000, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ops) != 500 {
			t.Errorf("%s: generated %d ops, want 500", name, len(ops))
		}
	}
	if _, err := Preset("nope", 10, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Name: "x"}).Validate(); err == nil {
		t.Error("empty mix accepted")
	}
	bad := Spec{Name: "x", Mix: []MixEntry{{Q1PointQuery, -1, Uniform}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Generate(nil, 100, Spec{Name: "x", Mix: []MixEntry{{Q1PointQuery, 1, Uniform}}, Ops: 1}); err == nil {
		t.Error("empty key set accepted")
	}
}

func TestUniformKeysWithinDomain(t *testing.T) {
	keys := UniformKeys(1000, 500, 2)
	if len(keys) != 1000 {
		t.Fatalf("got %d keys", len(keys))
	}
	for _, k := range keys {
		if k < 0 || k > 500 {
			t.Fatalf("key %d outside [0,500]", k)
		}
	}
}

func TestRobustPresetOpposingSkews(t *testing.T) {
	// Fig. 16's training workload: point queries on the late domain,
	// inserts on the early domain.
	spec, _ := Preset(Robust5050, 4000, 13)
	ops, err := Generate(initialKeys(), 1_000_000, spec)
	if err != nil {
		t.Fatal(err)
	}
	var pqHigh, inLow, pqN, inN int
	for _, op := range ops {
		switch op.Kind {
		case Q1PointQuery:
			pqN++
			if op.Key > 500_000 {
				pqHigh++
			}
		case Q4Insert:
			inN++
			if op.Key < 500_000 {
				inLow++
			}
		}
	}
	if f := float64(pqHigh) / float64(pqN); f < 0.6 {
		t.Errorf("point queries not skewed late: %v", f)
	}
	if f := float64(inLow) / float64(inN); f < 0.6 {
		t.Errorf("inserts not skewed early: %v", f)
	}
}
