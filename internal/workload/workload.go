// Package workload implements the HAP (Hybrid Access Patterns) benchmark of
// §7.1 of the paper: the six query templates Q1–Q6 over a keyed relation,
// composed into the hybrid, read-only, and update-only mixes with uniform or
// skewed access used throughout the paper's evaluation (Figs. 12–16), plus
// the TPC-H-Q6-shaped workload of Fig. 1 and the ghost-value workloads of
// Fig. 14.
//
//	Q1  SELECT a1..ak FROM R WHERE a0 = v            (point query)
//	Q2  SELECT count(*) FROM R WHERE a0 ∈ [vs,ve)    (aggregate range)
//	Q3  SELECT a1+..+ak FROM R WHERE a0 ∈ [vs,ve)    (arithmetic range)
//	Q4  INSERT INTO R VALUES (...)                   (insert)
//	Q5  DELETE FROM R WHERE a0 = v                   (delete)
//	Q6  UPDATE R SET a0 = vnew WHERE a0 = v          (key update)
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"casper/internal/freq"
)

// Kind enumerates the HAP queries.
type Kind int

const (
	Q1PointQuery Kind = iota
	Q2RangeCount
	Q3RangeSum
	Q4Insert
	Q5Delete
	Q6Update
	// Q7MultiRange is the TPC-H-Q6-shaped multi-predicate range scan of
	// Fig. 1 (key range plus payload filters). The preset mixes never
	// generate it; it exists so the drift monitor can attribute
	// MultiRangeSum traffic distinctly from a plain Q3 range sum while
	// still training the layout solver with its (range-shaped) access
	// pattern.
	Q7MultiRange
	// Q8Scan is a streaming cursor scan over [Key, Key2] that yields rows
	// lazily and may stop after Op.Limit rows — the paginated/LIMIT read
	// shape of serving workloads rather than a paper query. It trains the
	// layout solver and drift monitor as a range access over the key span
	// it *requests* (the engine cannot know where a consumer will stop).
	Q8Scan
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Q1PointQuery:
		return "Q1(point)"
	case Q2RangeCount:
		return "Q2(count)"
	case Q3RangeSum:
		return "Q3(sum)"
	case Q4Insert:
		return "Q4(insert)"
	case Q5Delete:
		return "Q5(delete)"
	case Q6Update:
		return "Q6(update)"
	case Q7MultiRange:
		return "Q7(multirange)"
	case Q8Scan:
		return "Q8(scan)"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Access selects where in the domain an operation lands.
type Access int

const (
	// Uniform spreads accesses evenly over the domain.
	Uniform Access = iota
	// SkewedRecent concentrates accesses on the high end of the domain
	// (the paper's "skewed accesses to more recent data").
	SkewedRecent
	// SkewedEarly concentrates accesses on the low end of the domain.
	SkewedEarly
	// RampRecent spreads accesses with linearly increasing density toward
	// the high end of the domain (the broad skew of Fig. 16a).
	RampRecent
	// RampEarly spreads accesses with linearly decreasing density.
	RampEarly
)

// Op is one benchmark operation over the key domain. Key2 is the range end
// for Q2/Q3/Q7/Q8 and the new key for Q6. Limit caps the rows a Q8 cursor
// scan yields (0 = unlimited); other kinds ignore it.
type Op struct {
	Kind  Kind
	Key   int64
	Key2  int64
	Limit int
}

// MixEntry gives one operation class a share of the workload and an access
// pattern.
type MixEntry struct {
	Kind   Kind
	Frac   float64
	Access Access
}

// Spec describes a workload to generate.
type Spec struct {
	Name string
	Mix  []MixEntry
	// RangeFrac is the width of Q2/Q3 ranges as a fraction of the domain.
	RangeFrac float64
	// Ops is the number of operations to generate.
	Ops int
	// Seed fixes the generator.
	Seed int64
}

// Validate reports malformed specs (empty mix, non-positive fractions).
func (s Spec) Validate() error {
	if len(s.Mix) == 0 {
		return fmt.Errorf("workload %q: empty mix", s.Name)
	}
	var tot float64
	for _, e := range s.Mix {
		if e.Frac <= 0 {
			return fmt.Errorf("workload %q: non-positive fraction %v for %v", s.Name, e.Frac, e.Kind)
		}
		tot += e.Frac
	}
	if tot <= 0 {
		return fmt.Errorf("workload %q: zero total fraction", s.Name)
	}
	return nil
}

// Generator draws operations against a live key pool, so deletes and
// updates overwhelmingly target existing keys.
type Generator struct {
	rng       *rand.Rand
	zipf      *rand.Zipf
	pool      []int64
	domainMax int64
}

// zipfRange is the resolution of the skewed-position generator.
const zipfRange = 1 << 20

// NewGenerator builds a generator over the initial keys; domainMax bounds
// the key domain [0, domainMax].
func NewGenerator(initialKeys []int64, domainMax int64, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]int64, len(initialKeys))
	copy(pool, initialKeys)
	return &Generator{
		rng:       rng,
		zipf:      rand.NewZipf(rng, 1.3, 8, zipfRange-1),
		pool:      pool,
		domainMax: domainMax,
	}
}

// skewedFrac returns a position in [0,1) concentrated near 0.
func (g *Generator) skewedFrac() float64 {
	return float64(g.zipf.Uint64()) / zipfRange
}

// domainKey draws a key from the domain under the access pattern.
func (g *Generator) domainKey(a Access) int64 {
	switch a {
	case SkewedRecent:
		return g.domainMax - int64(g.skewedFrac()*float64(g.domainMax))
	case SkewedEarly:
		return int64(g.skewedFrac() * float64(g.domainMax))
	case RampRecent:
		return int64(math.Sqrt(g.rng.Float64()) * float64(g.domainMax))
	case RampEarly:
		return int64((1 - math.Sqrt(g.rng.Float64())) * float64(g.domainMax))
	default:
		return g.rng.Int63n(g.domainMax + 1)
	}
}

// poolIndex draws an index into the live pool under the access pattern,
// where high indices are the most recently inserted keys.
func (g *Generator) poolIndex(a Access) int {
	n := len(g.pool)
	switch a {
	case SkewedRecent:
		return n - 1 - int(g.skewedFrac()*float64(n))
	case SkewedEarly:
		return int(g.skewedFrac() * float64(n))
	case RampRecent:
		return int(math.Sqrt(g.rng.Float64()) * float64(n-1))
	case RampEarly:
		return int((1 - math.Sqrt(g.rng.Float64())) * float64(n-1))
	default:
		return g.rng.Intn(n)
	}
}

// Generate produces spec.Ops operations. The pool is mutated as inserts and
// deletes are generated, so the stream is self-consistent.
func Generate(initialKeys []int64, domainMax int64, spec Spec) ([]Op, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(initialKeys) == 0 {
		return nil, fmt.Errorf("workload %q: empty initial key set", spec.Name)
	}
	g := NewGenerator(initialKeys, domainMax, spec.Seed)

	// Cumulative mix for roulette selection.
	var tot float64
	for _, e := range spec.Mix {
		tot += e.Frac
	}
	ops := make([]Op, 0, spec.Ops)
	for len(ops) < spec.Ops {
		r := g.rng.Float64() * tot
		var entry MixEntry
		for _, e := range spec.Mix {
			if r < e.Frac {
				entry = e
				break
			}
			r -= e.Frac
		}
		if entry.Frac == 0 {
			entry = spec.Mix[len(spec.Mix)-1]
		}
		if op, ok := g.generateOne(entry, spec.RangeFrac); ok {
			ops = append(ops, op)
		}
	}
	return ops, nil
}

func (g *Generator) generateOne(e MixEntry, rangeFrac float64) (Op, bool) {
	switch e.Kind {
	case Q1PointQuery:
		// Point queries draw from the domain distribution directly: a hit
		// and a miss scan the same partition, so the access *position* is
		// what matters for layout decisions.
		return Op{Kind: Q1PointQuery, Key: g.domainKey(e.Access)}, true
	case Q2RangeCount, Q3RangeSum, Q8Scan:
		width := int64(rangeFrac * float64(g.domainMax))
		if width < 1 {
			width = 1
		}
		lo := g.domainKey(e.Access)
		if lo > g.domainMax-width {
			lo = g.domainMax - width
		}
		if lo < 0 {
			lo = 0
		}
		op := Op{Kind: e.Kind, Key: lo, Key2: lo + width}
		if e.Kind == Q8Scan {
			// Paginated consumers mostly read a page or two; some drain.
			op.Limit = []int{10, 10, 100, 1000, 0}[g.rng.Intn(5)]
		}
		return op, true
	case Q4Insert:
		v := g.domainKey(e.Access)
		g.pool = append(g.pool, v)
		return Op{Kind: Q4Insert, Key: v}, true
	case Q5Delete:
		if len(g.pool) == 0 {
			return Op{}, false
		}
		i := g.poolIndex(e.Access)
		v := g.pool[i]
		g.pool[i] = g.pool[len(g.pool)-1]
		g.pool = g.pool[:len(g.pool)-1]
		return Op{Kind: Q5Delete, Key: v}, true
	case Q6Update:
		if len(g.pool) == 0 {
			return Op{}, false
		}
		i := g.poolIndex(e.Access)
		old := g.pool[i]
		new := g.rng.Int63n(g.domainMax + 1)
		g.pool[i] = new
		return Op{Kind: Q6Update, Key: old, Key2: new}, true
	}
	return Op{}, false
}

// ToFreqOps converts benchmark operations to Frequency Model training
// operations.
func ToFreqOps(ops []Op) []freq.Op {
	out := make([]freq.Op, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case Q1PointQuery:
			out = append(out, freq.Op{Kind: freq.OpPointQuery, Key: op.Key})
		case Q2RangeCount, Q3RangeSum, Q7MultiRange, Q8Scan:
			out = append(out, freq.Op{Kind: freq.OpRangeQuery, Key: op.Key, Key2: op.Key2})
		case Q4Insert:
			out = append(out, freq.Op{Kind: freq.OpInsert, Key: op.Key})
		case Q5Delete:
			out = append(out, freq.Op{Kind: freq.OpDelete, Key: op.Key})
		case Q6Update:
			out = append(out, freq.Op{Kind: freq.OpUpdate, Key: op.Key, Key2: op.Key2})
		}
	}
	return out
}

// RouteOp calls visit with the ordinal of every shard serving op, given
// owner (key → shard) and span (key range → inclusive shard interval; for
// hash partitioning that is the whole fleet). Range ops touch every spanned
// shard, updates both endpoints' shards, everything else its key's owner.
// This is the single routing rule shared by training splits, monitor
// recording, and batch grouping.
func RouteOp(op Op, owner func(int64) int, span func(lo, hi int64) (int, int), visit func(int)) {
	switch op.Kind {
	case Q2RangeCount, Q3RangeSum, Q7MultiRange, Q8Scan:
		a, b := span(op.Key, op.Key2)
		for s := a; s <= b; s++ {
			visit(s)
		}
	case Q6Update:
		a := owner(op.Key)
		visit(a)
		if b := owner(op.Key2); b != a {
			visit(b)
		}
	default:
		visit(owner(op.Key))
	}
}

// SplitByShard partitions an operation stream across n shards under RouteOp
// routing, duplicating multi-shard ops into every shard they touch, so each
// shard's slice is a faithful sample of the traffic it will actually serve —
// the per-shard training input.
func SplitByShard(ops []Op, n int, owner func(int64) int, span func(lo, hi int64) (int, int)) [][]Op {
	out := make([][]Op, n)
	for _, op := range ops {
		RouteOp(op, owner, span, func(s int) { out[s] = append(out[s], op) })
	}
	return out
}

// Counts tallies the operations per kind.
func Counts(ops []Op) map[Kind]int {
	m := make(map[Kind]int)
	for _, op := range ops {
		m[op.Kind]++
	}
	return m
}

// ---------------------------------------------------------------------------
// Paper workload presets
// ---------------------------------------------------------------------------

// Preset names match the experiment harness and EXPERIMENTS.md.
const (
	HybridSkewed      = "hybrid-skewed"       // Fig. 12/13a: Q1 49%, Q4 50%, Q6 1%
	HybridRangeSkewed = "hybrid-range-skewed" // Fig. 12: Q3 49%, Q4 50%, Q6 1%
	ReadOnlySkewed    = "read-only-skewed"    // Fig. 12/13b: Q1 94%, Q2 5%, Q6 1%
	ReadOnlyUniform   = "read-only-uniform"   // Fig. 12
	UpdateOnlySkewed  = "update-only-skewed"  // Fig. 12: Q4 80%, Q5 19%, Q6 1%
	UpdateOnlyUniform = "update-only-uniform" // Fig. 12/13c
	SLAHybrid         = "sla-hybrid"          // Fig. 15: Q1 89%, Q4 10%, Q6 1%
	UDI1              = "udi1"                // Fig. 14: update-only, skewed
	UDI2              = "udi2"                // Fig. 14: update-only, uniform
	YCSBA2            = "ycsb-a2"             // Fig. 14: hybrid, skewed
	Robust5050        = "robust-50-50"        // Fig. 16: PQ late domain + IN early domain
	ScanHeavy         = "scan-heavy"          // serving mix: paginated Q8 scans over live ingest
)

// Preset returns the named paper workload spec with the given operation
// count and seed, or an error for unknown names.
func Preset(name string, ops int, seed int64) (Spec, error) {
	s := Spec{Name: name, Ops: ops, Seed: seed, RangeFrac: 0.02}
	switch name {
	case HybridSkewed:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.49, SkewedRecent},
			{Q4Insert, 0.50, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case HybridRangeSkewed:
		s.Mix = []MixEntry{
			{Q3RangeSum, 0.49, SkewedRecent},
			{Q4Insert, 0.50, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case ReadOnlySkewed:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.94, SkewedRecent},
			{Q2RangeCount, 0.05, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case ReadOnlyUniform:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.94, Uniform},
			{Q2RangeCount, 0.05, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	case UpdateOnlySkewed:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, SkewedRecent},
			{Q5Delete, 0.19, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case UpdateOnlyUniform:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, Uniform},
			{Q5Delete, 0.19, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	case SLAHybrid:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.89, SkewedRecent},
			{Q4Insert, 0.10, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case UDI1:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, SkewedRecent},
			{Q5Delete, 0.19, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case UDI2:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, Uniform},
			{Q5Delete, 0.19, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	case YCSBA2:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.50, SkewedRecent},
			{Q4Insert, 0.49, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case Robust5050:
		// Fig. 16a: broad ramp histograms, not concentrated spikes —
		// point queries mostly target the late domain, inserts the early
		// domain, with mass everywhere.
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.50, RampRecent},
			{Q4Insert, 0.50, RampEarly},
		}
	case ScanHeavy:
		// Not a paper mix: the HTAP serving shape the streaming read path
		// targets — cursor scans dominating, with enough ingest and key
		// churn to keep the drift monitor and movers busy.
		s.Mix = []MixEntry{
			{Q8Scan, 0.40, SkewedRecent},
			{Q1PointQuery, 0.24, SkewedRecent},
			{Q4Insert, 0.30, SkewedRecent},
			{Q5Delete, 0.05, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	default:
		return Spec{}, fmt.Errorf("workload: unknown preset %q", name)
	}
	return s, nil
}

// PresetNames lists every preset in a stable order.
func PresetNames() []string {
	return []string{
		HybridSkewed, HybridRangeSkewed, ReadOnlySkewed, ReadOnlyUniform,
		UpdateOnlySkewed, UpdateOnlyUniform, SLAHybrid, UDI1, UDI2, YCSBA2,
		Robust5050, ScanHeavy,
	}
}

// UniformKeys generates n uniformly distributed distinct-ish keys over
// [0, domainMax] (§7.1 loads 100M uniformly distributed integers).
func UniformKeys(n int, domainMax int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(domainMax + 1)
	}
	return keys
}
