// Package workload implements the HAP (Hybrid Access Patterns) benchmark of
// §7.1 of the paper: the six query templates Q1–Q6 over a keyed relation,
// composed into the hybrid, read-only, and update-only mixes with uniform or
// skewed access used throughout the paper's evaluation (Figs. 12–16), plus
// the TPC-H-Q6-shaped workload of Fig. 1 and the ghost-value workloads of
// Fig. 14.
//
//	Q1  SELECT a1..ak FROM R WHERE a0 = v            (point query)
//	Q2  SELECT count(*) FROM R WHERE a0 ∈ [vs,ve)    (aggregate range)
//	Q3  SELECT a1+..+ak FROM R WHERE a0 ∈ [vs,ve)    (arithmetic range)
//	Q4  INSERT INTO R VALUES (...)                   (insert)
//	Q5  DELETE FROM R WHERE a0 = v                   (delete)
//	Q6  UPDATE R SET a0 = vnew WHERE a0 = v          (key update)
//
// # Phased scenario streams
//
// Beyond the flat Generate mixes, scenarios.go emits time-phased
// adversarial streams (Scenario/GenerateScenario) under a three-part
// contract:
//
//   - Phases. A ScenarioStream is an ordered list of phases, each a mix
//     with its own skew (ZipfS/ZipfV), arrival-rate multiplier (Rate),
//     and active key window. All phases draw from ONE live key pool, so
//     a delete in phase 3 targets a key some earlier phase made live —
//     replaying phases in order against an empty-diff engine is always
//     self-consistent; replaying them out of order is not supported.
//   - Determinism by seed. Equal (ScenarioSpec, initial keys, domain)
//     yield byte-identical streams, op for op, across runs and hosts:
//     generation consumes randomness only from the spec's seeded rng in
//     a fixed draw order, never from time, map iteration, or goroutine
//     interleaving. Fingerprint-style tests may hash streams.
//   - Tenant bands. Tenants > 1 splits [0, domainMax] into that many
//     contiguous equal-width key bands; every op is drawn inside its
//     tenant's band (narrowed by the phase window) and the phase's
//     parallel Tenants slice attributes each op to its lane, so
//     admission fairness can be exercised without widening Op.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"casper/internal/freq"
)

// Kind enumerates the HAP queries.
type Kind int

const (
	Q1PointQuery Kind = iota
	Q2RangeCount
	Q3RangeSum
	Q4Insert
	Q5Delete
	Q6Update
	// Q7MultiRange is the TPC-H-Q6-shaped multi-predicate range scan of
	// Fig. 1 (key range plus payload filters). The preset mixes never
	// generate it; it exists so the drift monitor can attribute
	// MultiRangeSum traffic distinctly from a plain Q3 range sum while
	// still training the layout solver with its (range-shaped) access
	// pattern.
	Q7MultiRange
	// Q8Scan is a streaming cursor scan over [Key, Key2] that yields rows
	// lazily and may stop after Op.Limit rows — the paginated/LIMIT read
	// shape of serving workloads rather than a paper query. It trains the
	// layout solver and drift monitor as a range access over the key span
	// it *requests* (the engine cannot know where a consumer will stop).
	Q8Scan
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Q1PointQuery:
		return "Q1(point)"
	case Q2RangeCount:
		return "Q2(count)"
	case Q3RangeSum:
		return "Q3(sum)"
	case Q4Insert:
		return "Q4(insert)"
	case Q5Delete:
		return "Q5(delete)"
	case Q6Update:
		return "Q6(update)"
	case Q7MultiRange:
		return "Q7(multirange)"
	case Q8Scan:
		return "Q8(scan)"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Access selects where in the domain an operation lands.
type Access int

const (
	// Uniform spreads accesses evenly over the domain.
	Uniform Access = iota
	// SkewedRecent concentrates accesses on the high end of the domain
	// (the paper's "skewed accesses to more recent data").
	SkewedRecent
	// SkewedEarly concentrates accesses on the low end of the domain.
	SkewedEarly
	// RampRecent spreads accesses with linearly increasing density toward
	// the high end of the domain (the broad skew of Fig. 16a).
	RampRecent
	// RampEarly spreads accesses with linearly decreasing density.
	RampEarly
)

// Op is one benchmark operation over the key domain. Key2 is the range end
// for Q2/Q3/Q7/Q8 and the new key for Q6. Limit caps the rows a Q8 cursor
// scan yields (0 = unlimited); other kinds ignore it.
type Op struct {
	Kind  Kind
	Key   int64
	Key2  int64
	Limit int
}

// MixEntry gives one operation class a share of the workload and an access
// pattern.
type MixEntry struct {
	Kind   Kind
	Frac   float64
	Access Access
}

// Spec describes a workload to generate.
type Spec struct {
	Name string
	Mix  []MixEntry
	// RangeFrac is the width of Q2/Q3 ranges as a fraction of the domain.
	RangeFrac float64
	// Ops is the number of operations to generate.
	Ops int
	// Seed fixes the generator.
	Seed int64
	// ZipfS is the skew exponent of the Zipf distribution behind the
	// Skewed* access patterns; larger concentrates more mass on fewer
	// positions. Must be > 1 (rand.NewZipf's domain); 0 selects the
	// default 1.3, which reproduces the historical hardcoded generator.
	ZipfS float64
	// ZipfV is the Zipf value bound v (>= 1); 0 selects the default 8.
	// Smaller v sharpens the head of the distribution.
	ZipfV float64
}

// Default Zipf parameters: the values the generator hardcoded before they
// were lifted into Spec. Zero-valued specs must keep emitting identical
// streams (see TestPresetStreamsGolden).
const (
	defaultZipfS = 1.3
	defaultZipfV = 8
)

// Upper bounds on the Zipf parameters. Beyond these rand.Zipf's internal
// exp(s·log(v+x)) terms underflow to zero and Uint64 degenerates into a
// float64(+Inf)→uint64 conversion — implementation-defined garbage that
// escapes the key domain (found by FuzzScenarioSpec). s=20 with v=10^6
// keeps every term orders of magnitude inside float64 range while allowing
// far sharper skew than any realistic workload.
const (
	maxZipfS = 20
	maxZipfV = 1e6
)

// Validate reports malformed specs (empty mix, non-positive fractions,
// out-of-domain Zipf parameters).
func (s Spec) Validate() error {
	if len(s.Mix) == 0 {
		return fmt.Errorf("workload %q: empty mix", s.Name)
	}
	var tot float64
	for _, e := range s.Mix {
		if e.Frac <= 0 || math.IsNaN(e.Frac) || math.IsInf(e.Frac, 0) {
			return fmt.Errorf("workload %q: non-positive fraction %v for %v", s.Name, e.Frac, e.Kind)
		}
		tot += e.Frac
	}
	if tot <= 0 {
		return fmt.Errorf("workload %q: zero total fraction", s.Name)
	}
	if s.ZipfS != 0 && !(s.ZipfS > 1 && s.ZipfS <= maxZipfS) || math.IsNaN(s.ZipfS) {
		return fmt.Errorf("workload %q: zipf skew exponent %v out of range (need 1 < s <= %v, or 0 for default)", s.Name, s.ZipfS, float64(maxZipfS))
	}
	if s.ZipfV != 0 && !(s.ZipfV >= 1 && s.ZipfV <= maxZipfV) || math.IsNaN(s.ZipfV) {
		return fmt.Errorf("workload %q: zipf value bound %v out of range (need 1 <= v <= %v, or 0 for default)", s.Name, s.ZipfV, float64(maxZipfV))
	}
	if math.IsNaN(s.RangeFrac) || math.IsInf(s.RangeFrac, 0) || s.RangeFrac < 0 {
		return fmt.Errorf("workload %q: range fraction %v out of range", s.Name, s.RangeFrac)
	}
	return nil
}

// Generator draws operations against a live key pool, so deletes and
// updates overwhelmingly target existing keys. Domain draws land inside the
// active window [winLo, winHi] — the whole domain by default; scenario
// phases narrow it to cycle the hot region (see scenarios.go).
type Generator struct {
	rng          *rand.Rand
	zipf         *rand.Zipf
	pool         []int64
	domainMax    int64
	winLo, winHi int64
}

// zipfRange is the resolution of the skewed-position generator.
const zipfRange = 1 << 20

// NewGenerator builds a generator over the initial keys; domainMax bounds
// the key domain [0, domainMax]. The Zipf skew defaults match zero-valued
// Spec fields (ZipfS 1.3, ZipfV 8).
func NewGenerator(initialKeys []int64, domainMax int64, seed int64) *Generator {
	return newGenerator(initialKeys, domainMax, seed, 0, 0)
}

func newGenerator(initialKeys []int64, domainMax, seed int64, zipfS, zipfV float64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]int64, len(initialKeys))
	copy(pool, initialKeys)
	g := &Generator{
		rng:       rng,
		pool:      pool,
		domainMax: domainMax,
		winLo:     0,
		winHi:     domainMax,
	}
	g.setSkew(zipfS, zipfV)
	return g
}

// setSkew (re)builds the skewed-position distribution. Zero parameters
// select the defaults; construction draws nothing from the shared rng, so
// per-phase re-skewing does not perturb the stream's determinism.
func (g *Generator) setSkew(s, v float64) {
	if s == 0 {
		s = defaultZipfS
	}
	if v == 0 {
		v = defaultZipfV
	}
	g.zipf = rand.NewZipf(g.rng, s, v, zipfRange-1)
}

// setWindow narrows domain draws to [lo, hi] (clamped to the domain).
// Access patterns keep their shape inside the window: SkewedRecent
// concentrates on hi, SkewedEarly on lo.
func (g *Generator) setWindow(lo, hi int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > g.domainMax {
		hi = g.domainMax
	}
	if hi < lo {
		hi = lo
	}
	g.winLo, g.winHi = lo, hi
}

// skewedFrac returns a position in [0,1) concentrated near 0. The clamp is
// defense in depth: Validate bounds the Zipf parameters to the regime where
// Uint64 stays within [0, zipfRange), so it never fires for a valid Spec.
func (g *Generator) skewedFrac() float64 {
	f := float64(g.zipf.Uint64()) / zipfRange
	if !(f >= 0) || f >= 1 {
		return 0
	}
	return f
}

// domainKey draws a key from the active window under the access pattern.
func (g *Generator) domainKey(a Access) int64 {
	span := g.winHi - g.winLo
	switch a {
	case SkewedRecent:
		return g.winHi - int64(g.skewedFrac()*float64(span))
	case SkewedEarly:
		return g.winLo + int64(g.skewedFrac()*float64(span))
	case RampRecent:
		return g.winLo + int64(math.Sqrt(g.rng.Float64())*float64(span))
	case RampEarly:
		return g.winLo + int64((1-math.Sqrt(g.rng.Float64()))*float64(span))
	default:
		return g.winLo + g.rng.Int63n(span+1)
	}
}

// poolIndex draws an index into the live pool under the access pattern,
// where high indices are the most recently inserted keys.
func (g *Generator) poolIndex(a Access) int {
	n := len(g.pool)
	switch a {
	case SkewedRecent:
		return n - 1 - int(g.skewedFrac()*float64(n))
	case SkewedEarly:
		return int(g.skewedFrac() * float64(n))
	case RampRecent:
		return int(math.Sqrt(g.rng.Float64()) * float64(n-1))
	case RampEarly:
		return int((1 - math.Sqrt(g.rng.Float64())) * float64(n-1))
	default:
		return g.rng.Intn(n)
	}
}

// Generate produces spec.Ops operations. The pool is mutated as inserts and
// deletes are generated, so the stream is self-consistent.
func Generate(initialKeys []int64, domainMax int64, spec Spec) ([]Op, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(initialKeys) == 0 {
		return nil, fmt.Errorf("workload %q: empty initial key set", spec.Name)
	}
	g := newGenerator(initialKeys, domainMax, spec.Seed, spec.ZipfS, spec.ZipfV)
	return g.generate(nil, spec.Mix, spec.RangeFrac, spec.Ops), nil
}

// generate appends n operations drawn from mix to ops, mutating the live
// pool — the shared inner loop of Generate and the phased scenario
// generators (scenarios.go).
func (g *Generator) generate(ops []Op, mix []MixEntry, rangeFrac float64, n int) []Op {
	// Cumulative mix for roulette selection.
	var tot float64
	for _, e := range mix {
		tot += e.Frac
	}
	want := len(ops) + n
	if cap(ops) < want {
		grown := make([]Op, len(ops), want)
		copy(grown, ops)
		ops = grown
	}
	for len(ops) < want {
		if op, ok := g.generateOne(pickEntry(g.rng, mix, tot), rangeFrac); ok {
			ops = append(ops, op)
		}
	}
	return ops
}

// pickEntry roulette-selects a mix entry, consuming exactly one Float64
// from the rng.
func pickEntry(rng *rand.Rand, mix []MixEntry, tot float64) MixEntry {
	r := rng.Float64() * tot
	for _, e := range mix {
		if r < e.Frac {
			return e
		}
		r -= e.Frac
	}
	return mix[len(mix)-1]
}

func (g *Generator) generateOne(e MixEntry, rangeFrac float64) (Op, bool) {
	switch e.Kind {
	case Q1PointQuery:
		// Point queries draw from the domain distribution directly: a hit
		// and a miss scan the same partition, so the access *position* is
		// what matters for layout decisions.
		return Op{Kind: Q1PointQuery, Key: g.domainKey(e.Access)}, true
	case Q2RangeCount, Q3RangeSum, Q8Scan:
		width := int64(rangeFrac * float64(g.winHi-g.winLo))
		if width < 1 {
			width = 1
		}
		lo := g.domainKey(e.Access)
		if lo > g.winHi-width {
			lo = g.winHi - width
		}
		if lo < g.winLo {
			lo = g.winLo
		}
		op := Op{Kind: e.Kind, Key: lo, Key2: lo + width}
		if e.Kind == Q8Scan {
			// Paginated consumers mostly read a page or two; some drain.
			op.Limit = []int{10, 10, 100, 1000, 0}[g.rng.Intn(5)]
		}
		return op, true
	case Q4Insert:
		v := g.domainKey(e.Access)
		g.pool = append(g.pool, v)
		return Op{Kind: Q4Insert, Key: v}, true
	case Q5Delete:
		if len(g.pool) == 0 {
			return Op{}, false
		}
		i := g.poolIndex(e.Access)
		v := g.pool[i]
		g.pool[i] = g.pool[len(g.pool)-1]
		g.pool = g.pool[:len(g.pool)-1]
		return Op{Kind: Q5Delete, Key: v}, true
	case Q6Update:
		if len(g.pool) == 0 {
			return Op{}, false
		}
		i := g.poolIndex(e.Access)
		old := g.pool[i]
		new := g.winLo + g.rng.Int63n(g.winHi-g.winLo+1)
		g.pool[i] = new
		return Op{Kind: Q6Update, Key: old, Key2: new}, true
	}
	return Op{}, false
}

// ToFreqOps converts benchmark operations to Frequency Model training
// operations.
func ToFreqOps(ops []Op) []freq.Op {
	out := make([]freq.Op, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case Q1PointQuery:
			out = append(out, freq.Op{Kind: freq.OpPointQuery, Key: op.Key})
		case Q2RangeCount, Q3RangeSum, Q7MultiRange, Q8Scan:
			out = append(out, freq.Op{Kind: freq.OpRangeQuery, Key: op.Key, Key2: op.Key2})
		case Q4Insert:
			out = append(out, freq.Op{Kind: freq.OpInsert, Key: op.Key})
		case Q5Delete:
			out = append(out, freq.Op{Kind: freq.OpDelete, Key: op.Key})
		case Q6Update:
			out = append(out, freq.Op{Kind: freq.OpUpdate, Key: op.Key, Key2: op.Key2})
		}
	}
	return out
}

// RouteOp calls visit with the ordinal of every shard serving op, given
// owner (key → shard) and span (key range → inclusive shard interval; for
// hash partitioning that is the whole fleet). Range ops touch every spanned
// shard, updates both endpoints' shards, everything else its key's owner.
// This is the single routing rule shared by training splits, monitor
// recording, and batch grouping.
func RouteOp(op Op, owner func(int64) int, span func(lo, hi int64) (int, int), visit func(int)) {
	switch op.Kind {
	case Q2RangeCount, Q3RangeSum, Q7MultiRange, Q8Scan:
		a, b := span(op.Key, op.Key2)
		for s := a; s <= b; s++ {
			visit(s)
		}
	case Q6Update:
		a := owner(op.Key)
		visit(a)
		if b := owner(op.Key2); b != a {
			visit(b)
		}
	default:
		visit(owner(op.Key))
	}
}

// SplitByShard partitions an operation stream across n shards under RouteOp
// routing, duplicating multi-shard ops into every shard they touch, so each
// shard's slice is a faithful sample of the traffic it will actually serve —
// the per-shard training input.
func SplitByShard(ops []Op, n int, owner func(int64) int, span func(lo, hi int64) (int, int)) [][]Op {
	out := make([][]Op, n)
	for _, op := range ops {
		RouteOp(op, owner, span, func(s int) { out[s] = append(out[s], op) })
	}
	return out
}

// Counts tallies the operations per kind.
func Counts(ops []Op) map[Kind]int {
	m := make(map[Kind]int)
	for _, op := range ops {
		m[op.Kind]++
	}
	return m
}

// ---------------------------------------------------------------------------
// Paper workload presets
// ---------------------------------------------------------------------------

// Preset names match the experiment harness and EXPERIMENTS.md.
const (
	HybridSkewed      = "hybrid-skewed"       // Fig. 12/13a: Q1 49%, Q4 50%, Q6 1%
	HybridRangeSkewed = "hybrid-range-skewed" // Fig. 12: Q3 49%, Q4 50%, Q6 1%
	ReadOnlySkewed    = "read-only-skewed"    // Fig. 12/13b: Q1 94%, Q2 5%, Q6 1%
	ReadOnlyUniform   = "read-only-uniform"   // Fig. 12
	UpdateOnlySkewed  = "update-only-skewed"  // Fig. 12: Q4 80%, Q5 19%, Q6 1%
	UpdateOnlyUniform = "update-only-uniform" // Fig. 12/13c
	SLAHybrid         = "sla-hybrid"          // Fig. 15: Q1 89%, Q4 10%, Q6 1%
	UDI1              = "udi1"                // Fig. 14: update-only, skewed
	UDI2              = "udi2"                // Fig. 14: update-only, uniform
	YCSBA2            = "ycsb-a2"             // Fig. 14: hybrid, skewed
	Robust5050        = "robust-50-50"        // Fig. 16: PQ late domain + IN early domain
	ScanHeavy         = "scan-heavy"          // serving mix: paginated Q8 scans over live ingest
)

// Preset returns the named paper workload spec with the given operation
// count and seed, or an error for unknown names.
func Preset(name string, ops int, seed int64) (Spec, error) {
	s := Spec{Name: name, Ops: ops, Seed: seed, RangeFrac: 0.02}
	switch name {
	case HybridSkewed:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.49, SkewedRecent},
			{Q4Insert, 0.50, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case HybridRangeSkewed:
		s.Mix = []MixEntry{
			{Q3RangeSum, 0.49, SkewedRecent},
			{Q4Insert, 0.50, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case ReadOnlySkewed:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.94, SkewedRecent},
			{Q2RangeCount, 0.05, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case ReadOnlyUniform:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.94, Uniform},
			{Q2RangeCount, 0.05, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	case UpdateOnlySkewed:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, SkewedRecent},
			{Q5Delete, 0.19, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case UpdateOnlyUniform:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, Uniform},
			{Q5Delete, 0.19, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	case SLAHybrid:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.89, SkewedRecent},
			{Q4Insert, 0.10, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case UDI1:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, SkewedRecent},
			{Q5Delete, 0.19, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case UDI2:
		s.Mix = []MixEntry{
			{Q4Insert, 0.80, Uniform},
			{Q5Delete, 0.19, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	case YCSBA2:
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.50, SkewedRecent},
			{Q4Insert, 0.49, SkewedRecent},
			{Q6Update, 0.01, Uniform},
		}
	case Robust5050:
		// Fig. 16a: broad ramp histograms, not concentrated spikes —
		// point queries mostly target the late domain, inserts the early
		// domain, with mass everywhere.
		s.Mix = []MixEntry{
			{Q1PointQuery, 0.50, RampRecent},
			{Q4Insert, 0.50, RampEarly},
		}
	case ScanHeavy:
		// Not a paper mix: the HTAP serving shape the streaming read path
		// targets — cursor scans dominating, with enough ingest and key
		// churn to keep the drift monitor and movers busy.
		s.Mix = []MixEntry{
			{Q8Scan, 0.40, SkewedRecent},
			{Q1PointQuery, 0.24, SkewedRecent},
			{Q4Insert, 0.30, SkewedRecent},
			{Q5Delete, 0.05, Uniform},
			{Q6Update, 0.01, Uniform},
		}
	default:
		return Spec{}, fmt.Errorf("workload: unknown preset %q", name)
	}
	return s, nil
}

// PresetNames lists every preset in a stable order.
func PresetNames() []string {
	return []string{
		HybridSkewed, HybridRangeSkewed, ReadOnlySkewed, ReadOnlyUniform,
		UpdateOnlySkewed, UpdateOnlyUniform, SLAHybrid, UDI1, UDI2, YCSBA2,
		Robust5050, ScanHeavy,
	}
}

// UniformKeys generates n uniformly distributed distinct-ish keys over
// [0, domainMax] (§7.1 loads 100M uniformly distributed integers).
func UniformKeys(n int, domainMax int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(domainMax + 1)
	}
	return keys
}
