package solver

import (
	"fmt"
	"math"

	"casper/internal/costmodel"
)

// BIPModel is the explicit linearized binary integer program of Eq. 20. The
// paper hands this model to Mosek; we keep the construction to demonstrate
// and test the linearization (the products of Eq. 19 replaced by auxiliary
// variables y_{i,j} with the three linking constraints), and solve it with
// the branch-and-bound in SolveBIP.
//
// Variables:
//
//	p_i, i ∈ [0,N)        boundary bits, p_{N−1} = 1
//	y_{i,j}, 0 ≤ i ≤ j < N  y_{i,j} = Π_{k=i}^{j} (1−p_k)
//
// Constraints (per Eq. 20):
//
//	y_{i,i} = 1 − p_i
//	y_{i,j} ≤ 1 − p_k        for every k ∈ [i,j]
//	y_{i,j} ≥ 1 − Σ_{k=i}^{j} p_k
type BIPModel struct {
	N int
	// CoefP[j] is the objective coefficient of p_j (from the trail_parts
	// linearization Σ_i parts_i·Σ_{j≥i} p_j = Σ_j p_j·Σ_{i≤j} parts_i).
	CoefP []float64
	// CoefY[i][j−i] is the objective coefficient of y_{i,j}.
	CoefY [][]float64
	// Fixed is the constant objective term.
	Fixed float64

	terms *costmodel.Terms
}

// BuildBIP constructs the Eq. 20 model from cost terms.
func BuildBIP(t *costmodel.Terms) *BIPModel {
	n := t.Blocks()
	m := &BIPModel{
		N:     n,
		CoefP: make([]float64, n),
		CoefY: make([][]float64, n),
		Fixed: t.FixedTotal(),
		terms: t,
	}
	for i := 0; i < n; i++ {
		m.CoefY[i] = make([]float64, n-i)
	}
	for j := 0; j < n; j++ {
		m.CoefP[j] = t.BoundaryCost(j)
	}
	// bck term of block i: Σ_{j=0}^{i−1} y_{j,i−1} weighted by Bck[i].
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			m.CoefY[j][i-1-j] += t.Bck[i]
		}
	}
	// fwd term of block i: Σ over suffix products y_{i,h}, h ∈ [i, N−1],
	// weighted by Fwd[i]. (h = N−j−1 for j ∈ [0, N−i−1].)
	for i := 0; i < n; i++ {
		for h := i; h < n; h++ {
			m.CoefY[i][h-i] += t.Fwd[i]
		}
	}
	return m
}

// NumVariables returns the variable count of the model (p and y variables).
func (m *BIPModel) NumVariables() int { return m.N + m.N*(m.N+1)/2 }

// NumConstraints returns the constraint count of Eq. 20 (excluding binary
// domains): the p_{N−1}=1 pin, one equality per y_{i,i}, one upper-bound
// link per (y_{i,j}, k) pair with i<j, and one lower-bound link per y_{i,j}
// with i<j.
func (m *BIPModel) NumConstraints() int {
	n := m.N
	pairs := n * (n - 1) / 2 // y variables with i<j
	upper := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			upper += j - i + 1
		}
	}
	return 1 + n + upper + pairs
}

// Objective evaluates the linear objective for a boundary assignment,
// deriving the y variables from their defining products. Tests use this to
// confirm the linearization matches Eq. 16 exactly.
func (m *BIPModel) Objective(p []bool) float64 {
	if len(p) != m.N {
		panic(fmt.Sprintf("solver: assignment has %d bits, want %d", len(p), m.N))
	}
	total := m.Fixed
	for j, set := range p {
		if set {
			total += m.CoefP[j]
		}
	}
	for i := 0; i < m.N; i++ {
		prod := 1.0
		for j := i; j < m.N; j++ {
			if p[j] {
				prod = 0
			}
			if prod == 0 {
				break
			}
			total += m.CoefY[i][j-i]
		}
	}
	return total
}

// SolveBIP solves the model exactly by depth-first branch and bound over the
// boundary bits. The lower bound at each node is the cost of the committed
// prefix plus the optimal unconstrained completion (a relaxation of the
// Eq. 21 bounds, mirroring how relaxation-based solvers prune). Exponential
// only where the SLA constraints bind; intended for modest N and for
// cross-validating the DP.
func SolveBIP(t *costmodel.Terms, opts Options) (Result, error) {
	n := t.Blocks()
	mps := opts.MaxPartitionBlocks
	if mps <= 0 || mps > n {
		mps = n
	}
	maxK := opts.MaxPartitions
	if maxK <= 0 || maxK > n {
		maxK = n
	}
	minK := opts.MinPartitions
	if maxK*mps < n || minK > maxK {
		return Result{}, fmt.Errorf("%w: N=%d mps=%d partitions in [%d,%d]", ErrInfeasible, n, mps, minK, maxK)
	}

	// suffixOpt[b]: optimal unconstrained-count cost of partitioning
	// blocks [b, N) with partitions of width ≤ mps.
	suffixOpt := make([]float64, n+1)
	for b := n - 1; b >= 0; b-- {
		best := math.Inf(1)
		for e := b; e < n && e-b < mps; e++ {
			if c := t.SegmentCost(b, e) + suffixOpt[e+1]; c < best {
				best = c
			}
		}
		suffixOpt[b] = best
	}

	bestCost := math.Inf(1)
	var bestSizes []int
	cur := make([]int, 0, n)

	var dfs func(i, a, k int, cost float64)
	dfs = func(i, a, k int, cost float64) {
		if i == n {
			if k >= minK && cost < bestCost {
				bestCost = cost
				bestSizes = append(bestSizes[:0], cur...)
			}
			return
		}
		if k >= maxK {
			return
		}
		// Lower bound: close the open segment at the cheapest feasible
		// end, then complete optimally without count constraints.
		lb := math.Inf(1)
		for b := i; b < n && b-a < mps; b++ {
			if c := t.SegmentCost(a, b) + suffixOpt[b+1]; c < lb {
				lb = c
			}
		}
		if cost+lb >= bestCost {
			return
		}
		// Branch p_i = 1: close segment [a, i].
		cur = append(cur, i-a+1)
		dfs(i+1, i+1, k+1, cost+t.SegmentCost(a, i))
		cur = cur[:len(cur)-1]
		// Branch p_i = 0: extend, if width and the final boundary allow.
		if i != n-1 && i-a+1 < mps {
			dfs(i+1, a, k, cost)
		}
	}
	dfs(0, 0, 0, t.FixedTotal())

	if bestSizes == nil {
		return Result{}, ErrInfeasible
	}
	return Result{Layout: costmodel.Layout{Sizes: bestSizes}, Cost: bestCost}, nil
}
