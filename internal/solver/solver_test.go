package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"casper/internal/costmodel"
	"casper/internal/freq"
	"casper/internal/iomodel"
)

func randomModel(n int, seed int64) *freq.Model {
	rng := rand.New(rand.NewSource(seed))
	m := freq.NewModel(n)
	ops := 5 * n
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0:
			m.RecordPointQuery(rng.Intn(n))
		case 1:
			a, b := rng.Intn(n), rng.Intn(n)
			if a > b {
				a, b = b, a
			}
			m.RecordRangeQuery(a, b)
		case 2:
			m.RecordInsert(rng.Intn(n))
		case 3:
			m.RecordDelete(rng.Intn(n))
		case 4:
			m.RecordUpdate(rng.Intn(n), rng.Intn(n))
		}
	}
	return m
}

func randomTerms(n int, seed int64) *costmodel.Terms {
	return costmodel.Compute(randomModel(n, seed), iomodel.DefaultParams())
}

func checkLayoutCovers(t *testing.T, l costmodel.Layout, n int) {
	t.Helper()
	if err := l.Validate(); err != nil {
		t.Fatalf("invalid layout: %v", err)
	}
	sum := 0
	for _, s := range l.Sizes {
		sum += s
	}
	if sum != n {
		t.Fatalf("layout covers %d blocks, want %d (%v)", sum, n, l.Sizes)
	}
}

func TestOptimizeMatchesEnumeration(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 4 + int(seed)%9
		terms := randomTerms(n, seed)
		got, err := Optimize(terms, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := Enumerate(terms, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-6*(1+math.Abs(want.Cost)) {
			t.Errorf("seed %d: DP cost %v != enumerated optimum %v", seed, got.Cost, want.Cost)
		}
		checkLayoutCovers(t, got.Layout, n)
		// The reported cost must equal the evaluated cost of the layout.
		if c := terms.Cost(got.Layout.Boundaries()); math.Abs(c-got.Cost) > 1e-6*(1+math.Abs(c)) {
			t.Errorf("seed %d: reported %v, layout evaluates to %v", seed, got.Cost, c)
		}
	}
}

func TestOptimizeWithMaxPartitionBlocks(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 8 + int(seed)
		terms := randomTerms(n, seed+100)
		mps := 3
		got, err := Optimize(terms, Options{MaxPartitionBlocks: mps})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range got.Layout.Sizes {
			if s > mps {
				t.Fatalf("seed %d: partition of %d blocks exceeds MPS %d", seed, s, mps)
			}
		}
		want, err := Enumerate(terms, Options{MaxPartitionBlocks: mps})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-6*(1+math.Abs(want.Cost)) {
			t.Errorf("seed %d: DP %v != enum %v", seed, got.Cost, want.Cost)
		}
	}
}

func TestOptimizeWithMaxPartitions(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 8 + int(seed)
		terms := randomTerms(n, seed+200)
		maxK := 2 + int(seed)%3
		got, err := Optimize(terms, Options{MaxPartitions: maxK})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Layout.Partitions() > maxK {
			t.Fatalf("seed %d: %d partitions exceeds limit %d", seed, got.Layout.Partitions(), maxK)
		}
		want, err := Enumerate(terms, Options{MaxPartitions: maxK})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-6*(1+math.Abs(want.Cost)) {
			t.Errorf("seed %d: DP %v != enum %v", seed, got.Cost, want.Cost)
		}
	}
}

func TestOptimizeWithMinPartitions(t *testing.T) {
	// Insert-heavy workloads want one partition; MinPartitions forces more.
	n := 10
	m := freq.NewModel(n)
	for i := 0; i < n; i++ {
		m.IN[i] = 100
	}
	terms := costmodel.Compute(m, iomodel.DefaultParams())
	free, err := Optimize(terms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Layout.Partitions() != 1 {
		t.Fatalf("insert-only optimum should be 1 partition, got %d", free.Layout.Partitions())
	}
	forced, err := Optimize(terms, Options{MinPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Layout.Partitions() < 4 {
		t.Fatalf("MinPartitions violated: %d < 4", forced.Layout.Partitions())
	}
	if forced.Cost < free.Cost {
		t.Errorf("constrained cost %v cannot beat unconstrained %v", forced.Cost, free.Cost)
	}
}

func TestOptimizeCombinedConstraintsMatchEnumeration(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 9 + int(seed)%4
		terms := randomTerms(n, seed+300)
		opts := Options{MaxPartitionBlocks: 4, MaxPartitions: 5, MinPartitions: 3}
		got, gotErr := Optimize(terms, opts)
		want, wantErr := Enumerate(terms, opts)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("seed %d: err mismatch %v vs %v", seed, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if math.Abs(got.Cost-want.Cost) > 1e-6*(1+math.Abs(want.Cost)) {
			t.Errorf("seed %d: DP %v != enum %v", seed, got.Cost, want.Cost)
		}
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	terms := randomTerms(10, 1)
	_, err := Optimize(terms, Options{MaxPartitionBlocks: 2, MaxPartitions: 3})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	_, err = Optimize(terms, Options{MinPartitions: 5, MaxPartitions: 3})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible for MinPartitions>MaxPartitions, got %v", err)
	}
	// MinPartitions beyond the block count clamps to the finest layout.
	r, err := Optimize(terms, Options{MinPartitions: 11})
	if err != nil {
		t.Fatalf("MinPartitions>N should clamp, got %v", err)
	}
	if r.Layout.Partitions() != 10 {
		t.Fatalf("clamped layout has %d partitions, want 10", r.Layout.Partitions())
	}
}

func TestOptimizeBeatsOrMatchesHeuristicLayouts(t *testing.T) {
	// The optimum must be ≤ the cost of every heuristic layout.
	for seed := int64(0); seed < 10; seed++ {
		n := 24
		terms := randomTerms(n, seed+400)
		opt, err := Optimize(terms, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 24} {
			c := terms.Cost(costmodel.EquiWidth(n, k).Boundaries())
			if opt.Cost > c+1e-6 {
				t.Errorf("seed %d: optimum %v worse than equi-width k=%d (%v)", seed, opt.Cost, k, c)
			}
		}
	}
}

func TestLagrangianRespectsBudgetAndNearOptimal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 30
		terms := randomTerms(n, seed+500)
		maxK := 5
		lag, err := OptimizeLagrangian(terms, 0, maxK)
		if err != nil {
			t.Fatal(err)
		}
		if lag.Layout.Partitions() > maxK {
			t.Fatalf("lagrangian used %d partitions > %d", lag.Layout.Partitions(), maxK)
		}
		exact, err := Optimize(terms, Options{MaxPartitions: maxK})
		if err != nil {
			t.Fatal(err)
		}
		if lag.Cost < exact.Cost-1e-6 {
			t.Fatalf("lagrangian %v beat exact %v — impossible", lag.Cost, exact.Cost)
		}
		if lag.Cost > exact.Cost*1.10+1e-6 {
			t.Errorf("seed %d: lagrangian %v more than 10%% above exact %v", seed, lag.Cost, exact.Cost)
		}
	}
}

func TestSLAConversions(t *testing.T) {
	p := iomodel.DefaultParams()
	mps, err := ReadSLAToMaxBlocks(p.RR+3*p.SR, p)
	if err != nil {
		t.Fatal(err)
	}
	if mps != 4 {
		t.Errorf("MPS = %d, want 4", mps)
	}
	if _, err := ReadSLAToMaxBlocks(p.RR/2, p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("sub-RR read SLA should be infeasible, got %v", err)
	}
	k, err := UpdateSLAToMaxPartitions(5*(p.RR+p.RW), p)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("maxK = %d, want 4", k)
	}
	if _, err := UpdateSLAToMaxPartitions(p.RR, p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("sub-ripple update SLA should be infeasible, got %v", err)
	}
}

func TestTighterUpdateSLAMonotonicallyFewerPartitions(t *testing.T) {
	// Fig. 15's mechanism: decreasing the insert SLA decreases the number
	// of partitions the optimizer may use.
	terms := randomTerms(40, 42)
	prevParts := math.MaxInt32
	p := iomodel.DefaultParams()
	for _, slaMul := range []float64{40, 20, 10, 5, 3} {
		maxK, err := UpdateSLAToMaxPartitions(slaMul*(p.RR+p.RW), p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Optimize(terms, Options{MaxPartitions: maxK})
		if err != nil {
			t.Fatal(err)
		}
		if r.Layout.Partitions() > prevParts {
			t.Errorf("partitions grew (%d -> %d) as SLA tightened", prevParts, r.Layout.Partitions())
		}
		if r.Layout.Partitions() > maxK {
			t.Errorf("SLA violated: %d > %d", r.Layout.Partitions(), maxK)
		}
		prevParts = r.Layout.Partitions()
	}
}

func TestBIPObjectiveMatchesEq16(t *testing.T) {
	// The Eq. 20 linearization must agree with Eq. 16 on every assignment.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		terms := randomTerms(n, int64(trial+600))
		model := BuildBIP(terms)
		p := make([]bool, n)
		for i := range p {
			p[i] = rng.Intn(2) == 0
		}
		p[n-1] = true
		if got, want := model.Objective(p), terms.Cost(p); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("n=%d: BIP objective %v != Eq.16 cost %v", n, got, want)
		}
	}
}

func TestBIPModelShape(t *testing.T) {
	terms := randomTerms(6, 1)
	m := BuildBIP(terms)
	if got, want := m.NumVariables(), 6+21; got != want {
		t.Errorf("variables = %d, want %d", got, want)
	}
	if m.NumConstraints() <= 0 {
		t.Error("constraint count must be positive")
	}
}

func TestSolveBIPMatchesDP(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 5 + int(seed)
		terms := randomTerms(n, seed+700)
		for _, opts := range []Options{
			{},
			{MaxPartitionBlocks: 3},
			{MaxPartitions: 3},
			{MaxPartitionBlocks: 4, MaxPartitions: 4, MinPartitions: 2},
		} {
			dp, dpErr := Optimize(terms, opts)
			bb, bbErr := SolveBIP(terms, opts)
			if (dpErr != nil) != (bbErr != nil) {
				t.Fatalf("seed %d opts %+v: err mismatch %v vs %v", seed, opts, dpErr, bbErr)
			}
			if dpErr != nil {
				continue
			}
			if math.Abs(dp.Cost-bb.Cost) > 1e-6*(1+math.Abs(dp.Cost)) {
				t.Errorf("seed %d opts %+v: DP %v != BIP %v", seed, opts, dp.Cost, bb.Cost)
			}
		}
	}
}

func TestOptimizeChunksParallel(t *testing.T) {
	terms := make([]*costmodel.Terms, 8)
	for i := range terms {
		terms[i] = randomTerms(16, int64(i+800))
	}
	serial := OptimizeChunks(terms, Options{}, 1)
	parallel := OptimizeChunks(terms, Options{}, 4)
	for i := range terms {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("chunk %d: errs %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.Cost != parallel[i].Result.Cost {
			t.Errorf("chunk %d: serial %v != parallel %v", i, serial[i].Result.Cost, parallel[i].Result.Cost)
		}
		if parallel[i].Chunk != i {
			t.Errorf("chunk order broken: got %d at %d", parallel[i].Chunk, i)
		}
	}
}

func TestEnumerateRefusesLargeN(t *testing.T) {
	if _, err := Enumerate(randomTerms(23, 1), Options{}); err == nil {
		t.Fatal("expected refusal for N=23")
	}
}
