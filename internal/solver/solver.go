// Package solver finds optimal column layouts: it minimizes the Eq. 16
// workload cost over all partitionings of a column chunk, subject to the
// SLA bounds of Eq. 21 (§5 of the paper).
//
// The paper linearizes the objective into a binary integer program (Eq. 20)
// and solves it with the commercial Mosek solver. This package substitutes
// an exact segmentation dynamic program: because the objective decomposes
// into independent per-partition costs (see internal/costmodel), the DP
// returns a provably optimal layout in
//
//	O(N·MPS)   with a read SLA (max partition size MPS),
//	O(N²)      unconstrained, and
//	O(N²·K)    with an update SLA (max K partitions).
//
// A branch-and-bound solver over the explicit Eq. 20 BIP model and a
// brute-force enumerator cross-validate the DP in tests.
package solver

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"casper/internal/costmodel"
	"casper/internal/iomodel"
)

// Options constrains the optimization (Eq. 21).
type Options struct {
	// MaxPartitionBlocks bounds the widest partition (read SLA). 0 means
	// unconstrained.
	MaxPartitionBlocks int
	// MaxPartitions bounds the number of partitions (update/insert SLA).
	// 0 means unconstrained.
	MaxPartitions int
	// MinPartitions forces at least this many partitions; used by the
	// experiment harness to hold the partition count comparable across
	// layout strategies. 0 means unconstrained. Values above the block
	// count clamp to one partition per block (chunks smaller than the
	// budget simply use their finest layout).
	MinPartitions int
}

// ErrInfeasible is returned when no layout satisfies the constraints (e.g.
// MaxPartitions · MaxPartitionBlocks < N).
var ErrInfeasible = errors.New("solver: constraints are infeasible")

// Result is an optimization outcome.
type Result struct {
	Layout costmodel.Layout
	// Cost is the Eq. 16 objective value of Layout (including the fixed,
	// partitioning-independent part).
	Cost float64
}

// ReadSLAToMaxBlocks converts a point-query latency SLA (ns) to the widest
// admissible partition in blocks. A partition of s blocks costs
// RR + SR·(s−1) (Eq. 7 with the partition fully scanned), so
// s ≤ (readSLA − RR)/SR + 1. Returns ErrInfeasible when even a single-block
// partition violates the SLA.
func ReadSLAToMaxBlocks(readSLA float64, p iomodel.CostParams) (int, error) {
	if readSLA < p.RR {
		return 0, fmt.Errorf("%w: read SLA %.1fns below one random read (%.1fns)", ErrInfeasible, readSLA, p.RR)
	}
	return int((readSLA-p.RR)/p.SR) + 1, nil
}

// UpdateSLAToMaxPartitions converts an insert/update latency SLA (ns) to the
// maximum admissible partition count (Eq. 21): the most expensive insert
// ripples through all k partitions at cost (RR+RW)·(1+k).
func UpdateSLAToMaxPartitions(updateSLA float64, p iomodel.CostParams) (int, error) {
	k := int(updateSLA/(p.RR+p.RW)) - 1
	if k < 1 {
		return 0, fmt.Errorf("%w: update SLA %.1fns below one ripple step (%.1fns)", ErrInfeasible, updateSLA, p.RR+p.RW)
	}
	return k, nil
}

// Optimize returns a minimum-cost layout for the given cost terms subject to
// opts. The result is exactly optimal (not a relaxation).
func Optimize(t *costmodel.Terms, opts Options) (Result, error) {
	n := t.Blocks()
	mps := opts.MaxPartitionBlocks
	if mps <= 0 || mps > n {
		mps = n
	}
	minK, maxK := opts.MinPartitions, opts.MaxPartitions
	if maxK <= 0 || maxK > n {
		maxK = n
	}
	if minK < 0 {
		minK = 0
	}
	if minK > n {
		minK = n
	}
	if minK > maxK || maxK*mps < n {
		return Result{}, fmt.Errorf("%w: N=%d, maxPartitionBlocks=%d, partitions in [%d,%d]",
			ErrInfeasible, n, mps, minK, maxK)
	}
	if minK == 0 && maxK >= n {
		return optimizeUnbounded(t, mps), nil
	}
	return optimizeBoundedPartitions(t, mps, minK, maxK)
}

// optimizeUnbounded runs the O(N·MPS) DP with no partition-count constraint.
func optimizeUnbounded(t *costmodel.Terms, mps int) Result {
	n := t.Blocks()
	dp := make([]float64, n+1) // dp[b] = best cost of blocks [0,b)
	prev := make([]int, n+1)   // prev[b] = start of the last partition
	for b := 1; b <= n; b++ {
		dp[b] = math.Inf(1)
		lo := b - mps
		if lo < 0 {
			lo = 0
		}
		for a := lo; a < b; a++ {
			c := dp[a] + t.SegmentCost(a, b-1)
			if c < dp[b] {
				dp[b] = c
				prev[b] = a
			}
		}
	}
	return Result{
		Layout: traceback(prev, n),
		Cost:   dp[n] + t.FixedTotal(),
	}
}

// optimizeBoundedPartitions runs the exact DP with a partition-count
// dimension: dp[k][b] = best cost of blocks [0,b) using exactly k
// partitions.
func optimizeBoundedPartitions(t *costmodel.Terms, mps, minK, maxK int) (Result, error) {
	n := t.Blocks()
	const inf = math.MaxFloat64
	cur := make([]float64, n+1)
	next := make([]float64, n+1)
	// prevStart[k][b] for traceback; kept as flat slices of int32 to bound
	// memory at maxK·(n+1)·4 bytes.
	prevStart := make([][]int32, maxK+1)
	for i := range cur {
		cur[i] = inf
	}
	cur[0] = 0

	bestCost := inf
	bestK := -1
	for k := 1; k <= maxK; k++ {
		ps := make([]int32, n+1)
		for b := 0; b <= n; b++ {
			next[b] = inf
			ps[b] = -1
		}
		for b := 1; b <= n; b++ {
			lo := b - mps
			if lo < 0 {
				lo = 0
			}
			for a := lo; a < b; a++ {
				if cur[a] == inf {
					continue
				}
				c := cur[a] + t.SegmentCost(a, b-1)
				if c < next[b] {
					next[b] = c
					ps[b] = int32(a)
				}
			}
		}
		prevStart[k] = ps
		if k >= minK && next[n] < bestCost {
			bestCost = next[n]
			bestK = k
		}
		cur, next = next, cur
	}
	if bestK < 0 {
		return Result{}, fmt.Errorf("%w: no layout with %d..%d partitions of ≤%d blocks covers %d blocks",
			ErrInfeasible, minK, maxK, mps, n)
	}
	// Traceback through the k dimension.
	sizes := make([]int, 0, bestK)
	b := n
	for k := bestK; k >= 1; k-- {
		a := int(prevStart[k][b])
		sizes = append(sizes, b-a)
		b = a
	}
	// Reverse into forward order.
	for i, j := 0, len(sizes)-1; i < j; i, j = i+1, j-1 {
		sizes[i], sizes[j] = sizes[j], sizes[i]
	}
	return Result{
		Layout: costmodel.Layout{Sizes: sizes},
		Cost:   bestCost + t.FixedTotal(),
	}, nil
}

func traceback(prev []int, n int) costmodel.Layout {
	var rev []int
	for b := n; b > 0; {
		a := prev[b]
		rev = append(rev, b-a)
		b = a
	}
	sizes := make([]int, len(rev))
	for i := range rev {
		sizes[i] = rev[len(rev)-1-i]
	}
	return costmodel.Layout{Sizes: sizes}
}

// OptimizeLagrangian approximately enforces a partition budget by charging a
// penalty λ per boundary and binary-searching λ until the unconstrained DP
// uses at most maxPartitions. It runs in O(N·MPS·log) and is useful for very
// large chunks; Optimize remains the exact reference.
func OptimizeLagrangian(t *costmodel.Terms, mps, maxPartitions int) (Result, error) {
	n := t.Blocks()
	if mps <= 0 || mps > n {
		mps = n
	}
	if maxPartitions <= 0 || maxPartitions > n {
		maxPartitions = n
	}
	if maxPartitions*mps < n {
		return Result{}, fmt.Errorf("%w: %d partitions of ≤%d blocks cannot cover %d blocks",
			ErrInfeasible, maxPartitions, mps, n)
	}
	run := func(lambda float64) Result {
		dp := make([]float64, n+1)
		prev := make([]int, n+1)
		for b := 1; b <= n; b++ {
			dp[b] = math.Inf(1)
			lo := b - mps
			if lo < 0 {
				lo = 0
			}
			for a := lo; a < b; a++ {
				c := dp[a] + t.SegmentCost(a, b-1) + lambda
				if c < dp[b] {
					dp[b] = c
					prev[b] = a
				}
			}
		}
		l := traceback(prev, n)
		return Result{Layout: l, Cost: t.Cost(l.Boundaries())}
	}
	res := run(0)
	if res.Layout.Partitions() <= maxPartitions {
		return res, nil
	}
	lo, hi := 0.0, 1.0
	for run(hi).Layout.Partitions() > maxPartitions {
		hi *= 2
		if hi > 1e18 {
			return Result{}, fmt.Errorf("%w: penalty search diverged", ErrInfeasible)
		}
	}
	best := run(hi)
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		r := run(mid)
		if r.Layout.Partitions() <= maxPartitions {
			hi = mid
			if r.Cost < best.Cost {
				best = r
			}
		} else {
			lo = mid
		}
	}
	return best, nil
}

// Enumerate exhaustively searches all 2^(N−1) partitionings; it exists to
// validate the DP in tests. Practical only for small N.
func Enumerate(t *costmodel.Terms, opts Options) (Result, error) {
	n := t.Blocks()
	if n > 22 {
		return Result{}, fmt.Errorf("solver: refusing to enumerate N=%d > 22", n)
	}
	mps := opts.MaxPartitionBlocks
	if mps <= 0 {
		mps = n
	}
	maxK, minK := opts.MaxPartitions, opts.MinPartitions
	if maxK <= 0 {
		maxK = n
	}
	best := Result{Cost: math.Inf(1)}
	p := make([]bool, n)
	p[n-1] = true
	var found bool
	for mask := 0; mask < 1<<(n-1); mask++ {
		for i := 0; i < n-1; i++ {
			p[i] = mask&(1<<i) != 0
		}
		l := costmodel.FromBoundaries(p)
		if l.Partitions() > maxK || l.Partitions() < minK {
			continue
		}
		ok := true
		for _, s := range l.Sizes {
			if s > mps {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if c := t.Cost(p); c < best.Cost {
			best = Result{Layout: l, Cost: c}
			found = true
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}
	return best, nil
}

// ChunkResult pairs a chunk index with its optimization result.
type ChunkResult struct {
	Chunk  int
	Result Result
	Err    error
}

// OptimizeChunks optimizes every chunk independently with up to parallelism
// concurrent workers, exploiting the embarrassing parallelism of §6.3.
// Results are returned in chunk order.
func OptimizeChunks(terms []*costmodel.Terms, opts Options, parallelism int) []ChunkResult {
	if parallelism <= 0 {
		parallelism = 1
	}
	results := make([]ChunkResult, len(terms))
	if parallelism == 1 || len(terms) <= 1 {
		// No parallelism to exploit: solve inline. Spawning workers here
		// would only add goroutine churn — and on a single-CPU runtime the
		// spawn/wait ping-pong can monopolize the scheduler's run-next
		// slot, starving unrelated goroutines.
		for i, t := range terms {
			r, err := Optimize(t, opts)
			results[i] = ChunkResult{Chunk: i, Result: r, Err: err}
		}
		return results
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i, t := range terms {
		wg.Add(1)
		go func(i int, t *costmodel.Terms) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := Optimize(t, opts)
			results[i] = ChunkResult{Chunk: i, Result: r, Err: err}
		}(i, t)
	}
	wg.Wait()
	return results
}
