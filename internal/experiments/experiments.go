// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 plus the model figures of §2/§4). Each Fig* function
// returns a Report with the same rows/series the paper presents; the
// casperbench command prints them and the repository-level benchmarks wrap
// them in testing.B harnesses.
//
// Absolute numbers differ from the paper (Go on this machine vs C++ on a
// 64-thread EC2 box); the reproduced artifact is the *shape*: who wins,
// by roughly what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured per figure.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"casper"
	"casper/internal/workload"
)

// Scale sizes the experiments. The paper's full scale (100M rows, 1M-value
// chunks) is reachable by raising these; the default keeps every figure
// under a few seconds on a laptop-class machine.
type Scale struct {
	Rows        int   // initial table rows (paper: 100M)
	Ops         int   // measured operations per run (paper: 10k)
	TrainOps    int   // sample size for layout training
	ChunkValues int   // column chunk size (paper: 1M)
	BlockBytes  int   // logical block size (paper: 16KB)
	Partitions  int   // per-chunk partition budget
	DomainMax   int64 // key domain upper bound
	Workers     int   // execution parallelism
	PayloadCols int   // payload columns (paper's narrow table: 16 incl. key)
	GhostFrac   float64
	Seed        int64
}

// DefaultScale returns the laptop-scale configuration.
func DefaultScale() Scale {
	return Scale{
		Rows:        1_000_000,
		Ops:         4_000,
		TrainOps:    6_000,
		ChunkValues: 262_144,
		BlockBytes:  16 * 1024,
		Partitions:  16,
		DomainMax:   10_000_000,
		Workers:     1,
		PayloadCols: 7,
		GhostFrac:   0.001,
		Seed:        42,
	}
}

// SmallScale returns a configuration small enough for unit tests.
func SmallScale() Scale {
	s := DefaultScale()
	s.Rows = 20_000
	s.Ops = 800
	s.TrainOps = 800
	s.ChunkValues = 8_192
	s.BlockBytes = 2_048 // 256 values per block
	s.DomainMax = 200_000
	return s
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Data carries the numeric series for programmatic checks; keyed by
	// series name, one value per row.
	Data map[string][]float64
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// addData appends one numeric point to a named series.
func (r *Report) addData(series string, v float64) {
	if r.Data == nil {
		r.Data = make(map[string][]float64)
	}
	r.Data[series] = append(r.Data[series], v)
}

// ---------------------------------------------------------------------------
// Measurement helpers
// ---------------------------------------------------------------------------

// KindStats aggregates latency per operation kind.
type KindStats struct {
	Count   int
	TotalNs int64
	MaxNs   int64
}

// MeanUs returns the mean latency in microseconds.
func (k KindStats) MeanUs() float64 {
	if k.Count == 0 {
		return 0
	}
	return float64(k.TotalNs) / float64(k.Count) / 1e3
}

// Measurement is the outcome of executing a workload on one engine.
type Measurement struct {
	PerKind map[casper.OpKind]*KindStats
	WallNs  int64
	Ops     int
}

// Throughput returns operations per second.
func (m Measurement) Throughput() float64 {
	if m.WallNs == 0 {
		return 0
	}
	return float64(m.Ops) / (float64(m.WallNs) / 1e9)
}

// Mean returns the mean latency (µs) of one kind.
func (m Measurement) Mean(k casper.OpKind) float64 {
	if s, ok := m.PerKind[k]; ok {
		return s.MeanUs()
	}
	return 0
}

// runMeasured executes ops serially, timing each operation.
func runMeasured(e *casper.Engine, ops []casper.Op) Measurement {
	m := Measurement{PerKind: make(map[casper.OpKind]*KindStats), Ops: len(ops)}
	start := time.Now()
	for _, op := range ops {
		t0 := time.Now()
		e.Execute(op)
		d := time.Since(t0).Nanoseconds()
		s := m.PerKind[op.Kind]
		if s == nil {
			s = &KindStats{}
			m.PerKind[op.Kind] = s
		}
		s.Count++
		s.TotalNs += d
		if d > s.MaxNs {
			s.MaxNs = d
		}
	}
	m.WallNs = time.Since(start).Nanoseconds()
	return m
}

// buildEngine opens an engine at the given scale and mode, training Casper
// mode on the training prefix of the workload.
func buildEngine(sc Scale, mode casper.Mode, preset string, keys []int64) (*casper.Engine, []casper.Op, error) {
	e, err := casper.Open(keys, casper.Options{
		Mode:        mode,
		PayloadCols: sc.PayloadCols,
		ChunkValues: sc.ChunkValues,
		BlockBytes:  sc.BlockBytes,
		GhostFrac:   sc.GhostFrac,
		Partitions:  sc.Partitions,
	})
	if err != nil {
		return nil, nil, err
	}
	train, err := casper.PresetWorkload(preset, keys, sc.DomainMax, sc.TrainOps, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	if mode == casper.ModeCasper {
		if err := e.Train(train, sc.Workers); err != nil {
			return nil, nil, err
		}
	}
	// Steady-state warmup: run one unmeasured stream so every layout is
	// measured in its sustained regime (delta buffers partially full and
	// merging, ghost slots partially consumed) rather than from a cold,
	// freshly-organized state.
	warm, err := casper.PresetWorkload(preset, keys, sc.DomainMax, sc.Ops, sc.Seed+2)
	if err != nil {
		return nil, nil, err
	}
	e.ExecuteAll(warm)
	run, err := casper.PresetWorkload(preset, keys, sc.DomainMax, sc.Ops, sc.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	return e, run, nil
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// modeLabel matches the paper's legend names.
func modeLabel(m casper.Mode) string {
	switch m {
	case casper.ModeCasper:
		return "Casper"
	case casper.ModeEquiGV:
		return "Equi-GV"
	case casper.ModeEqui:
		return "Equi"
	case casper.ModeStateOfArt:
		return "State-of-art"
	case casper.ModeSorted:
		return "Sorted"
	case casper.ModeNoOrder:
		return "No Order"
	}
	return m.String()
}

// workloadLabel matches Fig. 12's x-axis labels.
func workloadLabel(preset string) string {
	switch preset {
	case workload.HybridSkewed:
		return "hybrid, skewed"
	case workload.HybridRangeSkewed:
		return "hybrid, range, skewed"
	case workload.ReadOnlySkewed:
		return "read-only, skewed"
	case workload.ReadOnlyUniform:
		return "read-only, uniform"
	case workload.UpdateOnlySkewed:
		return "update-only, skewed"
	case workload.UpdateOnlyUniform:
		return "update-only, uniform"
	}
	return preset
}
