package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"casper/internal/column"
	"casper/internal/costmodel"
	"casper/internal/freq"
	"casper/internal/iomodel"
	"casper/internal/solver"
)

// Fig2 regenerates the conceptual trade-off curves of Fig. 2: (a) read and
// write cost versus the number of non-overlapping partitions; (b) read and
// write cost versus memory amplification from ghost values. Part (a) is
// analytic (the cost model's own predictors); part (b) is measured on a
// real partitioned column.
func Fig2(sc Scale) Report {
	p := iomodel.DefaultParams()
	r := Report{
		ID:     "fig2",
		Title:  "Impact of structure and ghost values on read/write cost",
		Header: []string{"series", "x", "read(norm)", "write(norm)"},
	}

	// (a) Partition-count sweep over a fixed-size chunk.
	nBlocks := 256
	readAt := func(k int) float64 {
		return costmodel.PointQueryCost(p, (nBlocks+k-1)/k)
	}
	writeAt := func(k int) float64 {
		// Average ripple distance is k/2 trailing partitions.
		return costmodel.InsertCost(p, k/2, k)
	}
	read1, write1 := readAt(1), writeAt(1)
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		rd := readAt(k) / read1
		wr := writeAt(k) / write1
		r.Rows = append(r.Rows, []string{"partitions", fmt.Sprint(k), fmtF(rd, 4), fmtF(wr, 2)})
		r.addData("a.read", rd)
		r.addData("a.write", wr)
	}

	// (b) Ghost-value sweep: measured insert and point-query cost on a
	// column with increasing per-partition buffer space.
	blockVals := 256
	n := sc.Rows / 4
	if n < 8_192 {
		n = 8_192
	}
	n -= n % blockVals
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 8
	}
	nb := n / blockVals
	k := 32
	if k > nb {
		k = nb
	}
	var base float64
	for _, frac := range []float64{0, 0.005, 0.01, 0.02, 0.05, 0.10} {
		ghosts := make([]int, k)
		per := int(float64(n) * frac / float64(k))
		mode := column.Dense
		for j := range ghosts {
			ghosts[j] = per
		}
		if per > 0 {
			mode = column.Ghost
		}
		col, err := column.NewFromSorted(keys, column.Config{
			Layout:      costmodel.EquiWidth(nb, k),
			BlockValues: blockVals,
			Ghosts:      ghosts,
			Mode:        mode,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(sc.Seed))
		inserts := 512
		t0 := time.Now()
		for i := 0; i < inserts; i++ {
			col.Insert(int64(rng.Intn(n)) * 8)
		}
		insNs := float64(time.Since(t0).Nanoseconds()) / float64(inserts)
		t0 = time.Now()
		reads := 512
		for i := 0; i < reads; i++ {
			col.PointQuery(int64(rng.Intn(n)) * 8)
		}
		rdNs := float64(time.Since(t0).Nanoseconds()) / float64(reads)
		if frac == 0 {
			base = insNs
			if base == 0 {
				base = 1
			}
		}
		r.Rows = append(r.Rows, []string{
			"ghost-values", fmt.Sprintf("%.1f%%", frac*100),
			fmtF(rdNs, 0) + "ns", fmtF(insNs/base, 3),
		})
		r.addData("b.write", insNs/base)
		r.addData("b.read", rdNs)
	}
	r.Notes = append(r.Notes,
		"(a) analytic from Eq. 7/9: read cost drops with structure, write cost grows linearly",
		"(b) measured: ghost values cut write cost at bounded memory amplification (Fig. 2b)")
	return r
}

// Fig9 regenerates the cost model verification of Fig. 9: measured versus
// model-predicted latency for (a) ripple inserts as a function of the
// target partition ordinal and (b) point queries as a function of the
// partition size. The model constants are fitted from the measurements at
// the two extremes, exactly as the paper fits its constants by
// micro-benchmarking (§4.5); the reproduced claim is the *linearity* —
// ratio ≈ 1 everywhere else.
func Fig9(sc Scale) Report {
	r := Report{
		ID:     "fig9",
		Title:  "Cost model verification (inserts, point queries)",
		Header: []string{"part", "x", "measured(us)", "model(us)", "ratio"},
	}

	// (a) Inserts into partition m of k: cost linear in trailing
	// partitions.
	n := sc.Rows
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 4
	}
	k := 100
	blockVals := 64
	nb := (n + blockVals - 1) / blockVals
	build := func() *column.Column {
		col, err := column.NewFromSorted(keys, column.Config{
			Layout:      costmodel.EquiWidth(nb, k),
			BlockValues: blockVals,
			Mode:        column.Dense,
		})
		if err != nil {
			panic(err)
		}
		// Seed tail capacity so inserts ripple from the end (the paper's
		// setting: an available empty slot at the end of the column).
		col.Insert(int64(n) * 4)
		return col
	}
	col := build()
	perPart := n / k
	measureInsert := func(m int) float64 {
		const reps = 40
		v := int64(m*perPart+perPart/2) * 4
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			col.Insert(v)
		}
		return float64(time.Since(t0).Nanoseconds()) / reps
	}
	parts := []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 99}
	meas := make(map[int]float64, len(parts))
	for _, m := range parts {
		meas[m] = measureInsert(m)
	}
	// Fit cost = a + b·trail from the extremes.
	t0, tN := float64(k-1-parts[0]), float64(k-1-parts[len(parts)-1])
	bSlope := (meas[parts[0]] - meas[parts[len(parts)-1]]) / (t0 - tN)
	aIcept := meas[parts[len(parts)-1]] - bSlope*tN
	for _, m := range parts {
		model := aIcept + bSlope*float64(k-1-m)
		ratio := meas[m] / model
		r.Rows = append(r.Rows, []string{
			"a.inserts", fmt.Sprint(m),
			fmtF(meas[m]/1e3, 2), fmtF(model/1e3, 2), fmtF(ratio, 2),
		})
		r.addData("a.ratio", ratio)
	}

	// (b) Point queries over exponentially growing partitions.
	expSizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	totalBlocks := 0
	for _, s := range expSizes {
		totalBlocks += s
	}
	n2 := totalBlocks * blockVals
	keys2 := make([]int64, n2)
	for i := range keys2 {
		keys2[i] = int64(i) * 4
	}
	col2, err := column.NewFromSorted(keys2, column.Config{
		Layout:      costmodel.Layout{Sizes: expSizes},
		BlockValues: blockVals,
	})
	if err != nil {
		panic(err)
	}
	sizes := col2.PartitionSizes()
	measurePQ := func(m int) float64 {
		reps := 200
		if sizes[m] > 100_000 {
			reps = 20
		}
		lo := 0
		for j := 0; j < m; j++ {
			lo += sizes[j]
		}
		v := int64(lo+sizes[m]/2) * 4
		t := time.Now()
		for i := 0; i < reps; i++ {
			col2.PointQuery(v)
		}
		return float64(time.Since(t).Nanoseconds()) / float64(reps)
	}
	measPQ := make([]float64, len(expSizes))
	for m := range expSizes {
		measPQ[m] = measurePQ(m)
	}
	// Fit cost = a + b·blocks from the extremes.
	b1, bN := float64(expSizes[0]), float64(expSizes[len(expSizes)-1])
	slope := (measPQ[len(measPQ)-1] - measPQ[0]) / (bN - b1)
	icept := measPQ[0] - slope*b1
	for m := range expSizes {
		model := icept + slope*float64(expSizes[m])
		ratio := measPQ[m] / model
		r.Rows = append(r.Rows, []string{
			"b.point-queries", fmt.Sprint(m),
			fmtF(measPQ[m]/1e3, 2), fmtF(model/1e3, 2), fmtF(ratio, 2),
		})
		r.addData("b.ratio", ratio)
	}
	r.Notes = append(r.Notes,
		"constants fitted from the extreme points (paper fits via micro-benchmark, §4.5)",
		"ratio ≈ 1 confirms the linear cost structure of Eq. 7 and Eq. 9")
	return r
}

// Fig11 regenerates the scalability experiment of Fig. 11: layout decision
// latency versus data size, single job versus chunked decomposition. The
// paper's solver is cubic in the block count; our exact DP is quadratic, so
// the single-job series grows more slowly here, but the headline
// observation — chunking turns an intractable problem into seconds — is
// reproduced directly.
func Fig11(sc Scale) Report {
	r := Report{
		ID:     "fig11",
		Title:  "Partitioning decision latency vs data size",
		Header: []string{"data size", "strategy", "latency(ms)"},
	}
	p := iomodel.DefaultParams().WithBlockBytes(4096) // paper: 4096-byte blocks
	blockVals := p.BlockValues()

	mkTerms := func(nBlocks int, seed int64) *costmodel.Terms {
		rng := rand.New(rand.NewSource(seed))
		m := freq.NewModel(nBlocks)
		for i := 0; i < nBlocks; i++ {
			m.PQ[i] = float64(rng.Intn(100))
			m.IN[i] = float64(rng.Intn(100))
			m.RS[i] = float64(rng.Intn(20))
			m.RE[i] = float64(rng.Intn(20))
			m.DE[i] = float64(rng.Intn(10))
		}
		return costmodel.Compute(m, p)
	}

	sizes := []int{10_000, 100_000, 1_000_000, 10_000_000}
	for _, size := range sizes {
		nBlocks := size / blockVals
		if nBlocks < 2 {
			nBlocks = 2
		}
		// Single job (cap the quadratic DP at 10M values).
		if size <= 10_000_000 {
			terms := mkTerms(nBlocks, sc.Seed)
			t0 := time.Now()
			if _, err := solver.Optimize(terms, solver.Options{}); err != nil {
				panic(err)
			}
			ms := float64(time.Since(t0).Nanoseconds()) / 1e6
			r.Rows = append(r.Rows, []string{fmt.Sprint(size), "single-job", fmtF(ms, 2)})
			r.addData("single", ms)
		}
		for _, chunks := range []int{100, 1000} {
			if nBlocks/chunks < 2 {
				continue
			}
			terms := make([]*costmodel.Terms, chunks)
			for c := range terms {
				terms[c] = mkTerms(nBlocks/chunks, sc.Seed+int64(c))
			}
			t0 := time.Now()
			res := solver.OptimizeChunks(terms, solver.Options{}, sc.Workers)
			for _, cr := range res {
				if cr.Err != nil {
					panic(cr.Err)
				}
			}
			ms := float64(time.Since(t0).Nanoseconds()) / 1e6
			r.Rows = append(r.Rows, []string{
				fmt.Sprint(size), fmt.Sprintf("chunked-%d", chunks), fmtF(ms, 2),
			})
			r.addData(fmt.Sprintf("chunked-%d", chunks), ms)
		}
	}
	r.Notes = append(r.Notes,
		"paper solves a cubic BIP (Mosek); this repo solves the same objective with an exact quadratic DP",
		"chunked decomposition is embarrassingly parallel (§6.3)")
	return r
}

// Table1 renders the design space of Table 1 and maps every supported cell
// to the mode that realizes it.
func Table1() Report {
	r := Report{
		ID:     "table1",
		Title:  "Design space of column layouts",
		Header: []string{"data organization", "update policy", "buffering", "realized by"},
	}
	rows := [][4]string{
		{"insertion order", "in-place", "none", "NoOrder mode"},
		{"sorted", "out-of-place", "global", "StateOfArt mode (delta store)"},
		{"sorted", "in-place", "none", "Sorted mode"},
		{"partitioned", "in-place", "none", "Equi mode (ripple updates)"},
		{"partitioned", "hybrid", "per-partition", "EquiGV mode (even ghost values)"},
		{"partitioned", "hybrid", "per-partition", "Casper mode (optimized layout + Eq. 18 ghosts)"},
	}
	for _, row := range rows {
		r.Rows = append(r.Rows, row[:])
	}
	r.Notes = append(r.Notes, "Casper explores {partitioned} × {in-place, out-of-place, hybrid} × {none, global, per-partition} (§2)")
	return r
}
