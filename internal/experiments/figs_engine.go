package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"casper"
	"casper/internal/workload"
)

// Fig1 regenerates the motivating experiment of Fig. 1: a TPC-H-shaped
// hybrid workload (point queries, a Q6-style multi-column range query, and
// inserts) executed on a vanilla column-store, a state-of-the-art delta
// design, and Casper's workload-tailored layout. The paper's headline: the
// delta design roughly doubles the vanilla throughput, and Casper
// multiplies it again.
func Fig1(sc Scale) Report {
	r := Report{
		ID:     "fig1",
		Title:  "Vanilla vs delta-store vs Casper on a TPC-H-shaped hybrid workload",
		Header: []string{"layout", "point(us)", "rangeQ6(us)", "insert(us)", "ops/s", "norm"},
	}
	keys := casper.UniformKeys(sc.Rows, sc.DomainMax, sc.Seed)
	rng := rand.New(rand.NewSource(sc.Seed + 7))

	type q6 struct {
		lo, hi int64
	}
	nPQ := sc.Ops * 30 / 100
	nQ6 := sc.Ops * 10 / 100
	nIN := sc.Ops - nPQ - nQ6
	pqKeys := make([]int64, nPQ)
	for i := range pqKeys {
		pqKeys[i] = rng.Int63n(sc.DomainMax + 1)
	}
	q6s := make([]q6, nQ6)
	width := sc.DomainMax / 50 // ~2% selectivity, TPC-H Q6-like
	for i := range q6s {
		lo := rng.Int63n(sc.DomainMax - width)
		q6s[i] = q6{lo, lo + width}
	}
	inKeys := make([]int64, nIN)
	for i := range inKeys {
		inKeys[i] = rng.Int63n(sc.DomainMax + 1)
	}
	filters := []casper.Filter{{Col: 1, Lo: -1 << 30, Hi: 1 << 30}, {Col: 2, Lo: 0, Hi: 1 << 30}}

	// Training sample mirrors the run mix.
	var sample []casper.Op
	for i := 0; i < nPQ; i++ {
		sample = append(sample, casper.Op{Kind: casper.PointQuery, Key: pqKeys[i%len(pqKeys)]})
	}
	for _, q := range q6s {
		sample = append(sample, casper.Op{Kind: casper.RangeSum, Key: q.lo, Key2: q.hi})
	}
	for _, k := range inKeys {
		sample = append(sample, casper.Op{Kind: casper.Insert, Key: k})
	}

	var base float64
	for _, mode := range []casper.Mode{casper.ModeNoOrder, casper.ModeStateOfArt, casper.ModeCasper} {
		e, err := casper.Open(keys, casper.Options{
			Mode:        mode,
			PayloadCols: sc.PayloadCols,
			ChunkValues: sc.ChunkValues,
			BlockBytes:  sc.BlockBytes,
			GhostFrac:   0.01, // Fig. 1 uses a 1% buffer budget
			Partitions:  sc.Partitions,
		})
		if err != nil {
			panic(err)
		}
		if mode == casper.ModeCasper {
			if err := e.Train(sample, sc.Workers); err != nil {
				panic(err)
			}
		}
		// Steady-state warmup (see buildEngine).
		for _, k := range inKeys {
			e.Insert(k)
		}
		for _, k := range pqKeys[:len(pqKeys)/4] {
			e.PointQuery(k)
		}
		var pqNs, q6Ns, inNs int64
		wall := time.Now()
		t0 := time.Now()
		for _, k := range pqKeys {
			e.PointQuery(k)
		}
		pqNs = time.Since(t0).Nanoseconds()
		t0 = time.Now()
		for _, q := range q6s {
			e.MultiRangeSum(q.lo, q.hi, filters, 3)
		}
		q6Ns = time.Since(t0).Nanoseconds()
		t0 = time.Now()
		for _, k := range inKeys {
			e.Insert(k)
		}
		inNs = time.Since(t0).Nanoseconds()
		wallNs := time.Since(wall).Nanoseconds()

		tput := float64(sc.Ops) / (float64(wallNs) / 1e9)
		if mode == casper.ModeNoOrder {
			base = tput
		}
		r.Rows = append(r.Rows, []string{
			modeLabel(mode),
			fmtF(float64(pqNs)/float64(nPQ)/1e3, 1),
			fmtF(float64(q6Ns)/float64(nQ6)/1e3, 1),
			fmtF(float64(inNs)/float64(nIN)/1e3, 1),
			fmtF(tput, 0),
			fmtF(tput/base, 2),
		})
		r.addData("tput", tput)
		r.addData("norm", tput/base)
	}
	r.Notes = append(r.Notes,
		"paper: delta ≈1.9× vanilla, Casper ≈8× vanilla (Fig. 1, 32 cores, 100M rows)")
	return r
}

// Fig12 regenerates the headline comparison of Fig. 12: six layout modes ×
// six workloads, throughput normalized against the state-of-the-art delta
// design.
func Fig12(sc Scale) Report {
	r := Report{
		ID:     "fig12",
		Title:  "Normalized throughput of column layouts across workloads",
		Header: []string{"workload", "layout", "ops/s", "norm vs state-of-art"},
	}
	presets := []string{
		workload.HybridSkewed, workload.HybridRangeSkewed,
		workload.ReadOnlySkewed, workload.ReadOnlyUniform,
		workload.UpdateOnlySkewed, workload.UpdateOnlyUniform,
	}
	keys := casper.UniformKeys(sc.Rows, sc.DomainMax, sc.Seed)
	for _, preset := range presets {
		tputs := make(map[casper.Mode]float64)
		for _, mode := range casper.AllModes() {
			e, run, err := buildEngine(sc, mode, preset, keys)
			if err != nil {
				panic(fmt.Sprintf("%s/%v: %v", preset, mode, err))
			}
			t0 := time.Now()
			e.ExecuteParallel(run, sc.Workers)
			tputs[mode] = float64(len(run)) / time.Since(t0).Seconds()
		}
		base := tputs[casper.ModeStateOfArt]
		for _, mode := range casper.AllModes() {
			norm := tputs[mode] / base
			r.Rows = append(r.Rows, []string{
				workloadLabel(preset), modeLabel(mode),
				fmtF(tputs[mode], 0), fmtF(norm, 2),
			})
			r.addData(workloadLabel(preset)+"/"+modeLabel(mode), norm)
		}
	}
	r.Notes = append(r.Notes,
		"paper: Casper 1.75–2.32× on hybrid and update-intensive mixes; state-of-art ~5% ahead on read-only skewed")
	return r
}

// Fig13 regenerates the per-operation drill-down of Fig. 13: mean latency
// per query class plus workload throughput for (a) the skewed hybrid mix,
// (b) the skewed read-only mix, and (c) the uniform update-only mix.
func Fig13(sc Scale) Report {
	r := Report{
		ID:     "fig13",
		Title:  "Per-operation latency and throughput",
		Header: []string{"workload", "layout", "Q1(us)", "Q2(us)", "Q4(us)", "Q5(us)", "Q6(us)", "Kops/s"},
	}
	keys := casper.UniformKeys(sc.Rows, sc.DomainMax, sc.Seed)
	for _, preset := range []string{
		workload.HybridSkewed, workload.ReadOnlySkewed, workload.UpdateOnlyUniform,
	} {
		for _, mode := range casper.AllModes() {
			e, run, err := buildEngine(sc, mode, preset, keys)
			if err != nil {
				panic(err)
			}
			m := runMeasured(e, run)
			r.Rows = append(r.Rows, []string{
				workloadLabel(preset), modeLabel(mode),
				fmtF(m.Mean(casper.PointQuery), 1),
				fmtF(m.Mean(casper.RangeCount), 1),
				fmtF(m.Mean(casper.Insert), 1),
				fmtF(m.Mean(casper.Delete), 1),
				fmtF(m.Mean(casper.Update), 1),
				fmtF(m.Throughput()/1e3, 2),
			})
			r.addData(workloadLabel(preset)+"/"+modeLabel(mode)+"/insert", m.Mean(casper.Insert))
			r.addData(workloadLabel(preset)+"/"+modeLabel(mode)+"/tput", m.Throughput())
		}
	}
	r.Notes = append(r.Notes,
		"paper: (a) Casper inserts orders of magnitude faster without hurting Q1;",
		"(b) Casper matches the delta design on reads; (c) ≥2× on update-only")
	return r
}
