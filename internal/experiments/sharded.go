package experiments

import (
	"casper"
)

// ShardedMix pairs a display name with the preset it measures.
type ShardedMix struct {
	Name   string
	Preset string
}

// ShardedMixes are the workload mixes of the sharded throughput scenario,
// shared by BenchmarkShardedThroughput and `casperbench -throughput` so the
// two report comparable numbers.
func ShardedMixes() []ShardedMix {
	return []ShardedMix{
		{"read-heavy", casper.ReadOnlySkewed},
		{"write-heavy", casper.UpdateOnlySkewed},
	}
}

// ShardedDomain is the key domain of the sharded throughput scenario.
const ShardedDomain = 2_000_000

// ShardedScenario builds the trained sharded engine plus the measured op
// stream for one throughput mix — the single definition of the scenario both
// the benchmark and the CLI drive.
func ShardedScenario(preset string, shards, rows, measuredOps, trainParallelism int, seed int64) (*casper.Engine, []casper.Op, error) {
	keys := casper.UniformKeys(rows, ShardedDomain, seed)
	eng, err := casper.Open(keys, casper.Options{
		Mode:        casper.ModeCasper,
		PayloadCols: 3,
		ChunkValues: 16_384,
		GhostFrac:   0.01,
		Partitions:  16,
		Shards:      shards,
	})
	if err != nil {
		return nil, nil, err
	}
	sample, err := casper.PresetWorkload(preset, keys, ShardedDomain, 4_000, seed+1)
	if err != nil {
		return nil, nil, err
	}
	if err := eng.Train(sample, trainParallelism); err != nil {
		return nil, nil, err
	}
	ops, err := casper.PresetWorkload(preset, keys, ShardedDomain, measuredOps, seed+2)
	if err != nil {
		return nil, nil, err
	}
	return eng, ops, nil
}
