package experiments

import (
	"fmt"
	"strings"
	"testing"

	"casper"
)

// scale returns a configuration small enough for CI-style runs.
func scale() Scale { return SmallScale() }

// retryTiming reruns a wall-clock-dependent check up to attempts times and
// fails with the last message only if every attempt failed: scheduler noise
// on a loaded (or single-core) machine must not fail the suite, while a
// genuine regression fails every attempt.
func retryTiming(t *testing.T, attempts int, check func() string) {
	t.Helper()
	var msg string
	for i := 0; i < attempts; i++ {
		if msg = check(); msg == "" {
			return
		}
	}
	t.Error(msg)
}

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	if !strings.Contains(r.String(), "Casper mode") {
		t.Error("rendered table missing Casper row")
	}
}

func TestFig1Shape(t *testing.T) {
	retryTiming(t, 3, func() string {
		r := Fig1(scale())
		norm := r.Data["norm"]
		if len(norm) != 3 {
			t.Fatalf("norm series = %v", norm)
		}
		// Vanilla is the baseline; Casper must beat it, and beat or
		// match the delta design.
		if norm[2] <= norm[0] {
			return fmt.Sprintf("Casper (%v) should beat vanilla (%v)", norm[2], norm[0])
		}
		if norm[2] < norm[1] {
			return fmt.Sprintf("Casper (%v) should be at least the delta design (%v)", norm[2], norm[1])
		}
		return ""
	})
}

func TestFig2Shape(t *testing.T) {
	r := Fig2(scale())
	read, write := r.Data["a.read"], r.Data["a.write"]
	if len(read) == 0 || len(read) != len(write) {
		t.Fatalf("bad series lengths: %d/%d", len(read), len(write))
	}
	// Read cost decreases with partitions; write cost increases.
	if read[len(read)-1] >= read[0] {
		t.Errorf("read cost should fall with partitions: %v", read)
	}
	if write[len(write)-1] <= write[0] {
		t.Errorf("write cost should rise with partitions: %v", write)
	}
	// Ghost values cut the measured write cost (Fig. 2b): the largest
	// budget must be cheaper than no budget.
	b := r.Data["b.write"]
	if b[len(b)-1] >= b[0] {
		t.Errorf("ghost values should cut insert cost: %v", b)
	}
}

func TestFig9ModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	retryTiming(t, 3, func() string {
		r := Fig9(scale())
		for _, series := range []string{"a.ratio", "b.ratio"} {
			for i, ratio := range r.Data[series] {
				if ratio < 0.2 || ratio > 5 {
					return fmt.Sprintf("%s[%d] = %v: model and measurement diverge wildly", series, i, ratio)
				}
			}
		}
		return ""
	})
}

func TestFig11ChunkedFasterThanSingle(t *testing.T) {
	sc := scale()
	retryTiming(t, 3, func() string {
		r := Fig11(sc)
		single := r.Data["single"]
		chunked := r.Data["chunked-100"]
		if len(single) == 0 || len(chunked) == 0 {
			t.Fatalf("missing series: %v", r.Data)
		}
		// At the largest common size, chunking must be dramatically
		// faster.
		if chunked[len(chunked)-1] >= single[len(single)-1] {
			return fmt.Sprintf("chunked (%vms) should beat single job (%vms) at scale",
				chunked[len(chunked)-1], single[len(single)-1])
		}
		return ""
	})
}

func TestFig12CasperWinsUpdateHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine comparison")
	}
	retryTiming(t, 3, func() string {
		r := Fig12(scale())
		// Casper must beat the state of the art on the update-only mixes
		// and the hybrid mixes (the paper's headline claims).
		for _, wl := range []string{"update-only, uniform", "update-only, skewed", "hybrid, skewed"} {
			key := wl + "/Casper"
			vals := r.Data[key]
			if len(vals) != 1 {
				t.Fatalf("missing series %q", key)
			}
			if vals[0] <= 1.0 {
				return fmt.Sprintf("%s: Casper norm = %v, want > 1 (beats state of art)", wl, vals[0])
			}
		}
		return ""
	})
}

func TestFig13InsertLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine comparison")
	}
	retryTiming(t, 3, func() string {
		r := Fig13(scale())
		// On the hybrid skewed workload, Casper's inserts must be cheaper
		// than the sorted column's (Fig. 13a's three-orders claim; at
		// test scale skewed inserts land near the chunk end, compressing
		// the sorted column's memmove cost, so only the ordering is
		// asserted).
		casperIns := r.Data["hybrid, skewed/Casper/insert"]
		sortedIns := r.Data["hybrid, skewed/Sorted/insert"]
		if len(casperIns) != 1 || len(sortedIns) != 1 {
			t.Fatalf("missing insert series")
		}
		if casperIns[0] >= sortedIns[0] {
			return fmt.Sprintf("Casper insert %vus not cheaper than Sorted %vus", casperIns[0], sortedIns[0])
		}
		return ""
	})
}

func TestFig14MoreGhostsCheaperInserts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	retryTiming(t, 3, func() string {
		r := Fig14(scale())
		for _, series := range []string{"udi1", "udi2"} {
			vals := r.Data[series]
			if len(vals) < 2 {
				t.Fatalf("missing series %s: %v", series, r.Data)
			}
			// The largest budget should not be slower than the smallest.
			if vals[len(vals)-1] > vals[0]*1.5 {
				return fmt.Sprintf("%s: insert latency grew with ghost budget: %v", series, vals)
			}
		}
		return ""
	})
}

func TestFig15SLATightensPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := Fig15(scale())
	parts := r.Data["parts"]
	if len(parts) < 3 {
		t.Fatalf("missing parts series: %v", r.Data)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i] > parts[i-1] {
			t.Errorf("partition count grew as SLA tightened: %v", parts)
		}
	}
	if parts[len(parts)-1] > 2 {
		t.Errorf("tightest SLA should force ≤2 partitions, got %v", parts[len(parts)-1])
	}
}

func TestFig16BaselineIsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	sc := scale()
	sc.Ops /= 2
	retryTiming(t, 3, func() string {
		r := Fig16(sc)
		zero := r.Data["mass+0"]
		if len(zero) == 0 {
			t.Fatalf("missing mass+0 series: %v", r.Data)
		}
		// The unshifted cell is the normalization baseline (ratio within
		// timing noise of 1).
		if zero[0] < 0.3 || zero[0] > 3 {
			return fmt.Sprintf("baseline norm = %v, want ≈1", zero[0])
		}
		return ""
	})
}

func TestReportString(t *testing.T) {
	r := Report{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	s := r.String()
	for _, want := range []string{"== x — t ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestMeasurementHelpers(t *testing.T) {
	m := Measurement{
		PerKind: map[casper.OpKind]*KindStats{
			casper.Insert: {Count: 2, TotalNs: 4000},
		},
		WallNs: 1e9,
		Ops:    100,
	}
	if got := m.Mean(casper.Insert); got != 2 {
		t.Errorf("Mean = %v, want 2us", got)
	}
	if got := m.Mean(casper.Delete); got != 0 {
		t.Errorf("Mean of absent kind = %v, want 0", got)
	}
	if got := m.Throughput(); got != 100 {
		t.Errorf("Throughput = %v, want 100", got)
	}
}

func TestAblationsShape(t *testing.T) {
	r := Ablations(scale())
	// Eq. 18 allocation must beat or match even allocation on skewed
	// inserts. The two sides are measured wall-clock, so the comparison
	// rides retryTiming like the other timing checks.
	retryTiming(t, 3, func() string {
		if eq, ev := r.Data["alloc.eq18"][0], r.Data["alloc.even"][0]; eq > ev*1.5 {
			r = Ablations(scale()) // remeasure for the next attempt
			return fmt.Sprintf("Eq.18 allocation (%vus) much worse than even (%vus)", eq, ev)
		}
		return ""
	})
	// The exact DP lower-bounds both alternatives.
	dp, lag, equi := r.Data["solver.dp"][0], r.Data["solver.lag"][0], r.Data["solver.equi"][0]
	if dp > lag+1e-6 || dp > equi+1e-6 {
		t.Errorf("DP cost %v should lower-bound lagrangian %v and equi %v", dp, lag, equi)
	}
	// Ghost-aware pricing affords at least as much structure.
	if r.Data["aware.parts"][0] < r.Data["raw.parts"][0] {
		t.Errorf("ghost-aware layout has fewer partitions (%v) than raw (%v)",
			r.Data["aware.parts"][0], r.Data["raw.parts"][0])
	}
}

func TestExtCompressionSynergy(t *testing.T) {
	r := ExtCompression(scale())
	if fine, single := r.Data["fine"][0], r.Data["single"][0]; fine <= single {
		t.Errorf("fine partitioning ratio %v should beat single frame %v", fine, single)
	}
}

func TestExtGranularityTradeoff(t *testing.T) {
	r := ExtGranularity(scale())
	rel := r.Data["rel"]
	if len(rel) < 3 {
		t.Fatalf("missing series: %v", r.Data)
	}
	// Full granularity reproduces the optimum; coarser bins never beat it.
	if rel[0] < 0.999 || rel[0] > 1.001 {
		t.Errorf("full granularity rel cost = %v, want 1", rel[0])
	}
	for i, v := range rel {
		if v < 1-1e-9 {
			t.Errorf("bin level %d: rel cost %v below optimal — impossible", i, v)
		}
	}
	// The coarsest level must be measurably worse than optimal or equal;
	// and solve time should not grow as bins shrink.
	ms := r.Data["ms"]
	if ms[len(ms)-1] > ms[0]*2 {
		t.Errorf("coarser bins solved slower: %v", ms)
	}
}
