package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"casper/internal/column"
	"casper/internal/compress"
	"casper/internal/costmodel"
	"casper/internal/freq"
	"casper/internal/ghost"
	"casper/internal/iomodel"
	"casper/internal/solver"
)

// Ablations quantifies the contribution of each design choice DESIGN.md
// calls out:
//
//	allocation   Eq. 18 proportional ghost allocation vs even spreading
//	             (paper §7.6 observation 4)
//	solver       exact DP vs Lagrangian relaxation vs equi-width, in
//	             modeled cost and decision latency
//	ghost-aware  pricing the residual (post-absorption) ripples vs pricing
//	             every insert as a worst-case ripple when choosing the
//	             layout
func Ablations(sc Scale) Report {
	r := Report{
		ID:     "ablations",
		Title:  "Design choice ablations",
		Header: []string{"ablation", "variant", "metric", "value"},
	}
	params := iomodel.EngineDefaults(sc.BlockBytes)
	blockVals := params.BlockValues()

	// Shared setup: a chunk with reads on the late domain and inserts on
	// the early domain (the shape that separates the variants).
	n := sc.ChunkValues
	if n > 1<<18 {
		n = 1 << 18
	}
	n -= n % blockVals
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i) * 4
	}
	nb := n / blockVals
	rng := rand.New(rand.NewSource(sc.Seed))
	fm := freq.NewModel(nb)
	insertKeys := make([]int64, 4000)
	for i := range insertKeys {
		insertKeys[i] = int64(rng.Intn(n/4)) * 4 // low-domain inserts
		fm.RecordInsert(int(insertKeys[i]/4) / blockVals)
	}
	for i := 0; i < 8000; i++ {
		k := n*3/4 + rng.Intn(n/4) // high-domain reads
		fm.RecordPointQuery(k / blockVals)
	}
	budget := ghost.Budget(n, 0.01)

	// --- Ablation 1: ghost allocation policy -------------------------------
	terms := costmodel.Compute(fm.GhostAware(float64(budget)), params)
	opt, err := solver.Optimize(terms, solver.Options{MaxPartitions: sc.Partitions})
	if err != nil {
		panic(err)
	}
	measureInserts := func(alloc []int) float64 {
		col, err := column.NewFromSorted(keys, column.Config{
			Layout:      opt.Layout,
			BlockValues: blockVals,
			Ghosts:      alloc,
			Mode:        column.Ghost,
		})
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		for _, k := range insertKeys {
			col.Insert(k)
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(len(insertKeys)) / 1e3
	}
	eq18 := measureInserts(ghost.Allocate(fm, opt.Layout, budget))
	even := measureInserts(ghost.Even(opt.Layout.Partitions(), budget))
	r.Rows = append(r.Rows,
		[]string{"allocation", "Eq.18 proportional", "insert us", fmtF(eq18, 2)},
		[]string{"allocation", "even split", "insert us", fmtF(even, 2)},
	)
	r.addData("alloc.eq18", eq18)
	r.addData("alloc.even", even)

	// --- Ablation 2: solver -----------------------------------------------
	t0 := time.Now()
	dp, err := solver.Optimize(terms, solver.Options{MaxPartitions: sc.Partitions})
	if err != nil {
		panic(err)
	}
	dpMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	t0 = time.Now()
	lag, err := solver.OptimizeLagrangian(terms, 0, sc.Partitions)
	if err != nil {
		panic(err)
	}
	lagMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	equiCost := terms.Cost(costmodel.EquiWidth(nb, min(sc.Partitions, nb)).Boundaries())
	r.Rows = append(r.Rows,
		[]string{"solver", "exact DP", "cost", fmtF(dp.Cost, 0)},
		[]string{"solver", "exact DP", "ms", fmtF(dpMs, 2)},
		[]string{"solver", "lagrangian", "cost", fmtF(lag.Cost, 0)},
		[]string{"solver", "lagrangian", "ms", fmtF(lagMs, 2)},
		[]string{"solver", "equi-width", "cost", fmtF(equiCost, 0)},
	)
	r.addData("solver.dp", dp.Cost)
	r.addData("solver.lag", lag.Cost)
	r.addData("solver.equi", equiCost)

	// --- Ablation 3: ghost-aware optimizer model ---------------------------
	rawTerms := costmodel.Compute(fm, params)
	raw, err := solver.Optimize(rawTerms, solver.Options{MaxPartitions: sc.Partitions})
	if err != nil {
		panic(err)
	}
	r.Rows = append(r.Rows,
		[]string{"ghost-aware", "on", "partitions", fmt.Sprint(opt.Layout.Partitions())},
		[]string{"ghost-aware", "off", "partitions", fmt.Sprint(raw.Layout.Partitions())},
	)
	r.addData("aware.parts", float64(opt.Layout.Partitions()))
	r.addData("raw.parts", float64(raw.Layout.Partitions()))
	r.Notes = append(r.Notes,
		"Eq.18 concentrates buffer slots where inserts land; even splitting leaks budget to read-only partitions",
		"the exact DP lower-bounds every heuristic; the Lagrangian variant trades ≤ a few % cost for near-linear time",
		"pricing residual ripples (ghost-aware) lets the optimizer afford fine read partitions")
	return r
}

// ExtCompression reports the partitioning/compression synergy of §6.2:
// frame-of-reference encoding under the workload-chosen layout versus one
// unpartitioned frame, plus dictionary coding, on a value-clustered column.
func ExtCompression(sc Scale) Report {
	r := Report{
		ID:     "compression",
		Title:  "Partitioning/compression synergy (§6.2)",
		Header: []string{"encoding", "layout", "bytes", "ratio"},
	}
	n := 1 << 16
	rng := rand.New(rand.NewSource(sc.Seed))
	keys := make([]int64, n)
	base := int64(0)
	for i := range keys {
		// Locally narrow (per-partition ranges fit 2-byte offsets),
		// globally wide (the single frame needs 4-byte offsets).
		base += int64(rng.Intn(60))
		keys[i] = base
	}

	single, err := compress.EncodeFOR(keys, []int{n})
	if err != nil {
		panic(err)
	}
	parts := make([]int, 64)
	for i := range parts {
		parts[i] = n / 64
	}
	fine, err := compress.EncodeFOR(keys, parts)
	if err != nil {
		panic(err)
	}
	raw := n * 8
	r.Rows = append(r.Rows,
		[]string{"none", "-", fmt.Sprint(raw), "1.00"},
		[]string{"frame-of-reference", "1 partition", fmt.Sprint(single.Bytes()), fmtF(single.Ratio(), 2)},
		[]string{"frame-of-reference", "64 partitions", fmt.Sprint(fine.Bytes()), fmtF(fine.Ratio(), 2)},
	)
	r.addData("single", single.Ratio())
	r.addData("fine", fine.Ratio())

	dict := compress.NewDict(keys)
	r.Rows = append(r.Rows, []string{
		"dictionary", "-", fmt.Sprint(n * dict.CodeBytes()), fmtF(dict.Ratio(n), 2),
	})
	r.Notes = append(r.Notes,
		"paper: Casper compresses micro-benchmark data 2.5×, TPC-H 4.5× (§6.2); finer partitions narrow each frame")
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ExtGranularity reports the histogram granularity knob of §4.3/§6.3:
// coarser Frequency Model bins solve faster but produce coarser layouts.
// The quality loss is evaluated by expanding each coarse layout back to
// fine blocks and pricing it with the fine-grained cost terms.
func ExtGranularity(sc Scale) Report {
	r := Report{
		ID:     "granularity",
		Title:  "Histogram granularity: decision time vs layout quality",
		Header: []string{"bins", "solve(ms)", "cost vs optimal"},
	}
	params := iomodel.EngineDefaults(sc.BlockBytes)
	nb := 512
	rng := rand.New(rand.NewSource(sc.Seed))
	fm := freq.NewModel(nb)
	for i := 0; i < 20_000; i++ {
		fm.RecordPointQuery(nb/2 + rng.Intn(nb/2))
		if i%5 == 0 {
			fm.RecordInsert(rng.Intn(nb / 2))
		}
	}
	fineTerms := costmodel.Compute(fm, params)
	opt, err := solver.Optimize(fineTerms, solver.Options{})
	if err != nil {
		panic(err)
	}

	for _, bins := range []int{512, 256, 128, 64, 32, 16} {
		g := nb / bins
		coarse := fm.Rebin(bins)
		// One coarse bin spans g fine blocks; the block access constants
		// scale accordingly.
		cp := params
		cp.SR *= float64(g)
		cp.SW *= float64(g)
		coarseTerms := costmodel.Compute(coarse, cp)
		t0 := time.Now()
		res, err := solver.Optimize(coarseTerms, solver.Options{})
		if err != nil {
			panic(err)
		}
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		// Expand to fine blocks and price with the fine terms.
		sizes := make([]int, len(res.Layout.Sizes))
		for i, s := range res.Layout.Sizes {
			sizes[i] = s * g
		}
		cost := fineTerms.Cost(costmodel.Layout{Sizes: sizes}.Boundaries())
		rel := cost / opt.Cost
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(bins), fmtF(ms, 3), fmtF(rel, 4),
		})
		r.addData("ms", ms)
		r.addData("rel", rel)
	}
	r.Notes = append(r.Notes,
		"finer granularity → better layouts at longer optimization runtime (§4.3);",
		"the paper exposes the same knob via block size and histogram bucket width")
	return r
}
