package experiments

import (
	"fmt"

	"casper"
	"casper/internal/iomodel"
	"casper/internal/workload"
)

// Fig14 regenerates the ghost-value sweep of Fig. 14: insert latency as the
// ghost budget grows from 0.01% to 10% of the data size, for the two
// update-intensive workloads and the hybrid YCSB-A-like mix.
func Fig14(sc Scale) Report {
	r := Report{
		ID:     "fig14",
		Title:  "Insert latency vs ghost value budget",
		Header: []string{"workload", "ghosts", "insert(us)", "ghost hits"},
	}
	keys := casper.UniformKeys(sc.Rows, sc.DomainMax, sc.Seed)
	for _, preset := range []string{workload.UDI1, workload.UDI2, workload.YCSBA2} {
		for _, frac := range []float64{0.0001, 0.001, 0.01, 0.10} {
			e, err := casper.Open(keys, casper.Options{
				Mode:          casper.ModeCasper,
				PayloadCols:   sc.PayloadCols,
				ChunkValues:   sc.ChunkValues,
				BlockBytes:    sc.BlockBytes,
				GhostFrac:     frac,
				Partitions:    sc.Partitions,
				MinPartitions: sc.Partitions / 2, // hold structure fixed across budgets
			})
			if err != nil {
				panic(err)
			}
			train, err := casper.PresetWorkload(preset, keys, sc.DomainMax, sc.TrainOps, sc.Seed)
			if err != nil {
				panic(err)
			}
			if err := e.Train(train, sc.Workers); err != nil {
				panic(err)
			}
			warm, err := casper.PresetWorkload(preset, keys, sc.DomainMax, sc.Ops, sc.Seed+2)
			if err != nil {
				panic(err)
			}
			e.ExecuteAll(warm)
			run, err := casper.PresetWorkload(preset, keys, sc.DomainMax, sc.Ops, sc.Seed+1)
			if err != nil {
				panic(err)
			}
			m := runMeasured(e, run)
			label := preset
			switch preset {
			case workload.UDI1:
				label = "UDI1 (update-only, skewed)"
			case workload.UDI2:
				label = "UDI2 (update-only, uniform)"
			case workload.YCSBA2:
				label = "YCSB-A2 (hybrid, skewed)"
			}
			r.Rows = append(r.Rows, []string{
				label, fmt.Sprintf("%.2f%%", frac*100),
				fmtF(m.Mean(casper.Insert), 2),
				fmt.Sprint(totalGhostSlots(e)),
			})
			r.addData(preset, m.Mean(casper.Insert))
			r.addData(preset+"/hits", float64(totalGhostSlots(e)))
		}
	}
	r.Notes = append(r.Notes,
		"paper: 1% ghost values roughly halve insert latency (Fig. 14, 4 threads, 1M chunks)")
	return r
}

func totalGhostSlots(e *casper.Engine) int {
	n := 0
	for _, l := range e.Layouts() {
		for _, g := range l.Ghosts {
			n += g
		}
	}
	return n
}

// Fig15 regenerates the SLA experiment of Fig. 15: as the insert SLA
// tightens, the optimizer uses fewer partitions, insert latency falls
// proportionally, update cost rises (its point-query half scans bigger
// partitions), and overall throughput degrades only marginally.
func Fig15(sc Scale) Report {
	r := Report{
		ID:     "fig15",
		Title:  "Meeting an insert latency SLA",
		Header: []string{"insertSLA", "maxParts", "Q1(us)", "Q4(us)", "Q6(us)", "Kops/s"},
	}
	keys := casper.UniformKeys(sc.Rows, sc.DomainMax, sc.Seed)
	p := iomodel.DefaultParams()
	step := p.RR + p.RW // one ripple step in model-ns

	type slaCase struct {
		label string
		ns    float64
	}
	cases := []slaCase{{"none", 0}}
	for _, k := range []int{32, 16, 8, 4, 2} {
		cases = append(cases, slaCase{
			fmt.Sprintf("%.1fus", step*float64(1+k)/1e3),
			step * float64(1+k),
		})
	}
	for _, c := range cases {
		opts := casper.Options{
			Mode:        casper.ModeCasper,
			PayloadCols: sc.PayloadCols,
			ChunkValues: sc.ChunkValues,
			BlockBytes:  sc.BlockBytes,
			GhostFrac:   sc.GhostFrac,
			Partitions:  sc.Partitions,
			UpdateSLA:   c.ns,
		}
		e, err := casper.Open(keys, opts)
		if err != nil {
			panic(err)
		}
		train, err := casper.PresetWorkload(workload.SLAHybrid, keys, sc.DomainMax, sc.TrainOps, sc.Seed)
		if err != nil {
			panic(err)
		}
		if err := e.Train(train, sc.Workers); err != nil {
			panic(err)
		}
		run, err := casper.PresetWorkload(workload.SLAHybrid, keys, sc.DomainMax, sc.Ops, sc.Seed+1)
		if err != nil {
			panic(err)
		}
		m := runMeasured(e, run)
		maxParts := 0
		for _, l := range e.Layouts() {
			if l.Partitions > maxParts {
				maxParts = l.Partitions
			}
		}
		r.Rows = append(r.Rows, []string{
			c.label, fmt.Sprint(maxParts),
			fmtF(m.Mean(casper.PointQuery), 1),
			fmtF(m.Mean(casper.Insert), 2),
			fmtF(m.Mean(casper.Update), 1),
			fmtF(m.Throughput()/1e3, 2),
		})
		r.addData("parts", float64(maxParts))
		r.addData("insert", m.Mean(casper.Insert))
		r.addData("tput", m.Throughput())
	}
	r.Notes = append(r.Notes,
		"paper: insert cost tracks the SLA; throughput hit < 3%; update cost rises at tight SLAs (Fig. 15)")
	return r
}

// Fig16 regenerates the robustness experiment of Fig. 16: a layout trained
// for one workload (point queries on the late domain, inserts on the early
// domain) is evaluated under mass shift between the two operation classes
// and rotational shift of the targeted domain. The paper observes a robust
// plateau (≤15% mass / ≤10% rotation) followed by a cliff of up to ~60%.
func Fig16(sc Scale) Report {
	r := Report{
		ID:     "fig16",
		Title:  "Robustness to workload uncertainty",
		Header: []string{"mass shift", "rotational shift", "norm latency"},
	}
	keys := casper.UniformKeys(sc.Rows, sc.DomainMax, sc.Seed)
	train, err := casper.PresetWorkload(workload.Robust5050, keys, sc.DomainMax, sc.TrainOps, sc.Seed)
	if err != nil {
		panic(err)
	}

	run := func(massShift, rotShift float64) float64 {
		e, err := casper.Open(keys, casper.Options{
			Mode:        casper.ModeCasper,
			PayloadCols: sc.PayloadCols,
			ChunkValues: sc.ChunkValues,
			BlockBytes:  sc.BlockBytes,
			GhostFrac:   0.01,
			Partitions:  sc.Partitions,
		})
		if err != nil {
			panic(err)
		}
		if err := e.Train(train, sc.Workers); err != nil {
			panic(err)
		}
		// Mass shift: move a fraction of point-query mass to inserts
		// (positive) or vice versa (negative).
		pqFrac := 0.5 * (1 - massShift)
		spec := workload.Spec{
			Name: "robust-eval",
			Mix: []workload.MixEntry{
				{Kind: workload.Q1PointQuery, Frac: pqFrac, Access: workload.RampRecent},
				{Kind: workload.Q4Insert, Frac: 1 - pqFrac, Access: workload.RampEarly},
			},
			Ops:  sc.Ops,
			Seed: sc.Seed + 2,
		}
		wops, err := workload.Generate(keys, sc.DomainMax, spec)
		if err != nil {
			panic(err)
		}
		ops := make([]casper.Op, len(wops))
		for i, w := range wops {
			kind := casper.PointQuery
			if w.Kind == workload.Q4Insert {
				kind = casper.Insert
			}
			ops[i] = casper.Op{Kind: kind, Key: w.Key}
		}
		if rotShift > 0 {
			ops = casper.ShiftWorkload(ops, sc.DomainMax, rotShift)
		}
		m := runMeasured(e, ops)
		return float64(m.WallNs) / float64(m.Ops) // mean ns/op
	}

	base := run(0, 0)
	for _, mass := range []float64{-0.25, -0.15, 0, 0.15, 0.25} {
		for _, rot := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50} {
			norm := run(mass, rot) / base
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%+.0f%%", mass*100),
				fmt.Sprintf("%.0f%%", rot*100),
				fmtF(norm, 2),
			})
			r.addData(fmt.Sprintf("mass%+.0f", mass*100), norm)
		}
	}
	r.Notes = append(r.Notes,
		"paper: robust within ±15% mass / 10% rotation, up to ~60% penalty beyond (Fig. 16b)")
	return r
}

// All runs every experiment at the given scale in paper order, followed by
// this repository's extension reports (ablations, compression synergy).
func All(sc Scale) []Report {
	return []Report{
		Table1(),
		Fig1(sc),
		Fig2(sc),
		Fig9(sc),
		Fig11(sc),
		Fig12(sc),
		Fig13(sc),
		Fig14(sc),
		Fig15(sc),
		Fig16(sc),
		Ablations(sc),
		ExtCompression(sc),
		ExtGranularity(sc),
	}
}
