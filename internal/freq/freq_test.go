package freq

import (
	"math"
	"testing"
	"testing/quick"
)

// fig7Keys is the example column of Fig. 6/7 in the paper. The physical
// layout shown there is range-partitioned; the Mapper works on the sorted
// data distribution, which is what determines value→block placement.
var fig7Keys = []int64{3, 1, 5, 4, 7, 8, 15, 18, 20, 19, 32, 55, 65, 67, 82, 95}

func fig7Mapper(t *testing.T) *Mapper {
	t.Helper()
	mp := NewMapper(fig7Keys, 2)
	if mp.Blocks() != 8 {
		t.Fatalf("Blocks() = %d, want 8", mp.Blocks())
	}
	return mp
}

func expectHistogram(t *testing.T, name string, got []float64, want map[int]float64) {
	t.Helper()
	for i, v := range got {
		if w := want[i]; v != w {
			t.Errorf("%s[%d] = %v, want %v", name, i, v, w)
		}
	}
}

// TestFig7a..g reproduce the exact counter updates of Fig. 7.

func TestFig7aPointQuery(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpPointQuery, Key: 4})
	expectHistogram(t, "pq", m.PQ, map[int]float64{1: 1})
}

func TestFig7bRangeQuery4to19(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpRangeQuery, Key: 4, Key2: 19})
	expectHistogram(t, "rs", m.RS, map[int]float64{1: 1})
	expectHistogram(t, "sc", m.SC, map[int]float64{2: 1, 3: 1})
	expectHistogram(t, "re", m.RE, map[int]float64{4: 1})
}

func TestFig7cSecondRangeQuery2to66(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpRangeQuery, Key: 4, Key2: 19})
	m.Capture(mp, Op{Kind: OpRangeQuery, Key: 2, Key2: 66})
	expectHistogram(t, "rs", m.RS, map[int]float64{0: 1, 1: 1})
	expectHistogram(t, "sc", m.SC, map[int]float64{1: 1, 2: 2, 3: 2, 4: 1, 5: 1})
	expectHistogram(t, "re", m.RE, map[int]float64{4: 1, 6: 1})
}

func TestFig7dDelete32(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpDelete, Key: 32})
	expectHistogram(t, "de", m.DE, map[int]float64{5: 1})
}

func TestFig7eInsert16(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpInsert, Key: 16})
	expectHistogram(t, "in", m.IN, map[int]float64{3: 1})
}

func TestFig7fForwardUpdate3to16(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpUpdate, Key: 3, Key2: 16})
	expectHistogram(t, "udf", m.UDF, map[int]float64{0: 1})
	expectHistogram(t, "utf", m.UTF, map[int]float64{3: 1})
	expectHistogram(t, "udb", m.UDB, nil)
	expectHistogram(t, "utb", m.UTB, nil)
}

func TestFig7gBackwardUpdate55to17(t *testing.T) {
	mp := fig7Mapper(t)
	m := NewModel(mp.Blocks())
	m.Capture(mp, Op{Kind: OpUpdate, Key: 55, Key2: 17})
	expectHistogram(t, "udb", m.UDB, map[int]float64{5: 1})
	expectHistogram(t, "utb", m.UTB, map[int]float64{3: 1})
	expectHistogram(t, "udf", m.UDF, nil)
	expectHistogram(t, "utf", m.UTF, nil)
}

func TestRangeQueryWithinSingleBlock(t *testing.T) {
	m := NewModel(4)
	m.RecordRangeQuery(2, 2)
	expectHistogram(t, "rs", m.RS, map[int]float64{2: 1})
	expectHistogram(t, "sc", m.SC, nil)
	expectHistogram(t, "re", m.RE, nil)
}

func TestRangeQuerySwapsReversedBounds(t *testing.T) {
	m := NewModel(4)
	m.RecordRangeQuery(3, 1)
	expectHistogram(t, "rs", m.RS, map[int]float64{1: 1})
	expectHistogram(t, "sc", m.SC, map[int]float64{2: 1})
	expectHistogram(t, "re", m.RE, map[int]float64{3: 1})
}

func TestUpdateSameBlockIsBackward(t *testing.T) {
	// §4.4: "the case i = j is correctly handled by either pair of
	// equations; by convention, we pick the latter" (backward).
	m := NewModel(4)
	m.RecordUpdate(2, 2)
	expectHistogram(t, "udb", m.UDB, map[int]float64{2: 1})
	expectHistogram(t, "utb", m.UTB, map[int]float64{2: 1})
	expectHistogram(t, "udf", m.UDF, nil)
}

func TestAddScaleClone(t *testing.T) {
	m := NewModel(3)
	m.RecordPointQuery(0)
	m.RecordInsert(2)

	c := m.Clone()
	c.Scale(2)
	if c.PQ[0] != 2 || c.IN[2] != 2 {
		t.Errorf("scale: got pq=%v in=%v, want 2,2", c.PQ[0], c.IN[2])
	}
	if m.PQ[0] != 1 {
		t.Error("Clone is not independent of the original")
	}

	m.Add(c)
	if m.PQ[0] != 3 || m.IN[2] != 3 {
		t.Errorf("add: got pq=%v in=%v, want 3,3", m.PQ[0], m.IN[2])
	}
}

func TestAddPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(3).Add(NewModel(4))
}

func TestTotalOps(t *testing.T) {
	m := NewModel(4)
	m.RecordPointQuery(0)
	m.RecordPointQuery(1)
	m.RecordRangeQuery(0, 3)
	m.RecordDelete(2)
	m.RecordInsert(3)
	m.RecordUpdate(0, 3)
	m.RecordUpdate(3, 0)
	pq, rq, de, in, ud := m.TotalOps()
	if pq != 2 || rq != 1 || de != 1 || in != 1 || ud != 2 {
		t.Errorf("TotalOps = %v %v %v %v %v, want 2 1 1 1 2", pq, rq, de, in, ud)
	}
}

func TestRebinPreservesMass(t *testing.T) {
	m := NewModel(8)
	for i := 0; i < 8; i++ {
		m.RecordPointQuery(i)
		m.RecordInsert(i)
	}
	c := m.Rebin(4)
	if c.Blocks() != 4 {
		t.Fatalf("Blocks() = %d, want 4", c.Blocks())
	}
	for i := 0; i < 4; i++ {
		if c.PQ[i] != 2 {
			t.Errorf("PQ[%d] = %v, want 2", i, c.PQ[i])
		}
	}
	pq1, _, _, in1, _ := m.TotalOps()
	pq2, _, _, in2, _ := c.TotalOps()
	if pq1 != pq2 || in1 != in2 {
		t.Errorf("mass changed: pq %v->%v in %v->%v", pq1, pq2, in1, in2)
	}
}

func TestRotationalShift(t *testing.T) {
	m := NewModel(10)
	m.RecordPointQuery(0)
	m.RecordInsert(9)
	s := m.RotationalShift(0.2)
	expectHistogram(t, "pq", s.PQ, map[int]float64{2: 1})
	expectHistogram(t, "in", s.IN, map[int]float64{1: 1}) // wraps around
	// Zero shift is identity.
	z := m.RotationalShift(0)
	expectHistogram(t, "pq", z.PQ, map[int]float64{0: 1})
}

func TestMassShiftConservesTotalMass(t *testing.T) {
	m := NewModel(4)
	for i := 0; i < 4; i++ {
		m.PQ[i] = 10
		m.IN[i] = 5
	}
	s := m.MassShift(0.25)
	pq, _, _, in, _ := s.TotalOps()
	if math.Abs(pq-30) > 1e-9 {
		t.Errorf("pq mass = %v, want 30", pq)
	}
	if math.Abs(in-30) > 1e-9 {
		t.Errorf("in mass = %v, want 30", in)
	}
	// Negative shift moves inserts to point queries.
	s2 := m.MassShift(-0.2)
	pq2, _, _, in2, _ := s2.TotalOps()
	if math.Abs(pq2-44) > 1e-9 || math.Abs(in2-16) > 1e-9 {
		t.Errorf("negative shift: pq=%v in=%v, want 44,16", pq2, in2)
	}
}

func TestMassShiftOntoEmptyTarget(t *testing.T) {
	m := NewModel(4)
	m.PQ[1] = 8
	s := m.MassShift(0.5)
	_, _, _, in, _ := s.TotalOps()
	if math.Abs(in-4) > 1e-9 {
		t.Errorf("in mass = %v, want 4 (spread uniformly)", in)
	}
}

func TestMapperBlockProperties(t *testing.T) {
	mp := NewMapper([]int64{10, 20, 30, 40, 50, 60, 70, 80}, 2)
	tests := []struct {
		v         int64
		block     int
		lastBlock int
	}{
		{5, 0, 0},   // below all data clamps to first block
		{10, 0, 0},  // first value
		{35, 1, 1},  // between 30 and 40: would insert at pos 3
		{80, 3, 3},  // last value
		{999, 3, 3}, // above all data clamps to last block
	}
	for _, tc := range tests {
		if got := mp.Block(tc.v); got != tc.block {
			t.Errorf("Block(%d) = %d, want %d", tc.v, got, tc.block)
		}
		if got := mp.LastBlock(tc.v); got != tc.lastBlock {
			t.Errorf("LastBlock(%d) = %d, want %d", tc.v, got, tc.lastBlock)
		}
	}
}

func TestMapperBlockMonotonic(t *testing.T) {
	keys := []int64{3, 141, 59, 26, 535, 89, 793, 238, 46, 264, 338, 327}
	mp := NewMapper(keys, 3)
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return mp.Block(x) <= mp.Block(y) && mp.LastBlock(x) <= mp.LastBlock(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDistributionsUniform(t *testing.T) {
	m := FromDistributions(10, DistSpec{
		PointQueries: 100,
		Inserts:      50,
		InsertDist:   ReverseRamp,
	})
	pq, _, _, in, _ := m.TotalOps()
	if math.Abs(pq-100) > 1e-9 {
		t.Errorf("pq mass = %v, want 100", pq)
	}
	if math.Abs(in-50) > 1e-9 {
		t.Errorf("in mass = %v, want 50", in)
	}
	if m.PQ[0] != m.PQ[9] {
		t.Errorf("uniform point dist uneven: %v vs %v", m.PQ[0], m.PQ[9])
	}
	if m.IN[0] <= m.IN[9] {
		t.Errorf("reverse ramp should favor early blocks: %v vs %v", m.IN[0], m.IN[9])
	}
}

func TestFromDistributionsRangeSpans(t *testing.T) {
	m := FromDistributions(10, DistSpec{
		RangeQueries:   10,
		RangeBlocks:    3,
		RangeStartDist: func(i, n int) float64 { return boolToF(i == 2) },
	})
	if m.RS[2] != 10 {
		t.Errorf("RS[2] = %v, want 10", m.RS[2])
	}
	if m.SC[3] != 10 {
		t.Errorf("SC[3] = %v, want 10", m.SC[3])
	}
	if m.RE[4] != 10 {
		t.Errorf("RE[4] = %v, want 10", m.RE[4])
	}
}

func TestFromDistributionsUpdatesDirection(t *testing.T) {
	// Updates moving mass from early blocks to late blocks must be forward.
	m := FromDistributions(8, DistSpec{
		Updates:        8,
		UpdateFromDist: ReverseRamp,
		UpdateToDist:   LinearRamp,
	})
	var udf, udb float64
	for i := range m.UDF {
		udf += m.UDF[i]
		udb += m.UDB[i]
	}
	if math.Abs(udf-8) > 1e-9 || udb != 0 {
		t.Errorf("udf=%v udb=%v, want 8,0", udf, udb)
	}
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestGhostAwareDeletesBecomeReads(t *testing.T) {
	m := NewModel(4)
	m.RecordDelete(1)
	m.RecordDelete(1)
	g := m.GhostAware(0)
	if g.DE[1] != 0 {
		t.Errorf("DE[1] = %v, want 0 (ghost deletes never ripple)", g.DE[1])
	}
	if g.PQ[1] != 2 {
		t.Errorf("PQ[1] = %v, want 2 (delete keeps its locating read)", g.PQ[1])
	}
	// The original model is untouched.
	if m.DE[1] != 2 {
		t.Errorf("original mutated: DE[1] = %v", m.DE[1])
	}
}

func TestGhostAwareBudgetScalesInserts(t *testing.T) {
	m := NewModel(4)
	for i := 0; i < 4; i++ {
		m.IN[i] = 25 // 100 inserts total
	}
	g := m.GhostAware(60) // 60 absorbed, 40% residual
	var tot float64
	for i := range g.IN {
		tot += g.IN[i]
	}
	if math.Abs(tot-40) > 1e-9 {
		t.Errorf("residual inserts = %v, want 40", tot)
	}
	// Budget covering all demand removes the insert cost entirely.
	full := m.GhostAware(100)
	for i := range full.IN {
		if full.IN[i] != 0 {
			t.Errorf("IN[%d] = %v, want 0 with a covering budget", i, full.IN[i])
		}
	}
}

func TestGhostAwareDeletesReplenishSlots(t *testing.T) {
	m := NewModel(2)
	m.IN[0] = 50
	m.DE[1] = 50
	// Demand (50) minus recycled delete slots (50) = 0: no budget needed.
	g := m.GhostAware(0)
	if g.IN[0] != 0 {
		t.Errorf("IN[0] = %v, want 0 (recycled slots cover inserts)", g.IN[0])
	}
}

func TestGhostAwareUpdatesKeepReadSide(t *testing.T) {
	m := NewModel(4)
	m.RecordUpdate(0, 3)    // forward
	m.RecordUpdate(3, 1)    // backward
	g := m.GhostAware(1000) // everything absorbed
	if g.UDF[0] != 0 || g.UTF[3] != 0 || g.UDB[3] != 0 || g.UTB[1] != 0 {
		t.Errorf("absorbed updates still carry ripple terms: %+v", g)
	}
	// Their source-side point queries remain.
	if g.PQ[0] != 1 || g.PQ[3] != 1 {
		t.Errorf("PQ = %v/%v, want 1/1", g.PQ[0], g.PQ[3])
	}
}

func TestGhostAwareZeroBudgetKeepsRippleMass(t *testing.T) {
	m := NewModel(4)
	m.IN[2] = 10
	g := m.GhostAware(0)
	if g.IN[2] != 10 {
		t.Errorf("IN[2] = %v, want 10 with no budget", g.IN[2])
	}
}
