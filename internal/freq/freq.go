// Package freq implements Casper's Frequency Model (§4.2 of the paper): ten
// per-block histograms that overlay the access patterns of a sample workload
// on the data distribution. The histograms feed the cost model
// (internal/costmodel) and, through it, the layout optimizer.
//
// The ten histograms, one counter per logical block:
//
//	PQ        point query touches the block
//	RS        a range query starts in the block
//	SC        a range query fully scans the block
//	RE        a range query ends in the block
//	DE        a delete targets the block
//	IN        an insert lands in the block
//	UDF, UTF  update-from / update-to blocks of a forward ripple
//	UDB, UTB  update-from / update-to blocks of a backward ripple
//
// Counters are float64 so the model can also be populated from fractional
// statistical knowledge of the workload (§4.3) and re-binned to coarser
// granularities.
package freq

import (
	"fmt"
	"sort"
)

// Model is the Frequency Model: a set of ten aligned histograms with one bin
// per logical block of a column chunk.
type Model struct {
	PQ  []float64
	RS  []float64
	SC  []float64
	RE  []float64
	DE  []float64
	IN  []float64
	UDF []float64
	UTF []float64
	UDB []float64
	UTB []float64
}

// NewModel returns an empty Frequency Model over n blocks.
func NewModel(n int) *Model {
	if n <= 0 {
		panic(fmt.Sprintf("freq: non-positive block count %d", n))
	}
	return &Model{
		PQ:  make([]float64, n),
		RS:  make([]float64, n),
		SC:  make([]float64, n),
		RE:  make([]float64, n),
		DE:  make([]float64, n),
		IN:  make([]float64, n),
		UDF: make([]float64, n),
		UTF: make([]float64, n),
		UDB: make([]float64, n),
		UTB: make([]float64, n),
	}
}

// Blocks returns the number of logical blocks the model covers.
func (m *Model) Blocks() int { return len(m.PQ) }

// histograms returns all ten histograms in a fixed order.
func (m *Model) histograms() [][]float64 {
	return [][]float64{m.PQ, m.RS, m.SC, m.RE, m.DE, m.IN, m.UDF, m.UTF, m.UDB, m.UTB}
}

// RecordPointQuery documents a point query that (possibly) matches in block b
// (Fig. 7a).
func (m *Model) RecordPointQuery(b int) { m.PQ[b]++ }

// RecordRangeQuery documents a range query whose first qualifying block is
// first and last qualifying block is last (Fig. 7b/7c): one range-start
// access, one range-end access, and full scans for the blocks in between.
// A range fully inside one block counts as a range start only, matching the
// paper's accounting where the single accessed partition is filtered once.
func (m *Model) RecordRangeQuery(first, last int) {
	if last < first {
		first, last = last, first
	}
	m.RS[first]++
	if last == first {
		return
	}
	for b := first + 1; b < last; b++ {
		m.SC[b]++
	}
	m.RE[last]++
}

// RecordDelete documents a delete whose victim lives in block b (Fig. 7d).
func (m *Model) RecordDelete(b int) { m.DE[b]++ }

// RecordInsert documents an insert that belongs in block b (Fig. 7e).
func (m *Model) RecordInsert(b int) { m.IN[b]++ }

// RecordUpdate documents an update moving a value that lives in block from
// to a slot in block to. Forward ripples (to > from) increment UDF/UTF;
// backward ripples (to <= from, including same-block updates by the paper's
// convention at the end of §4.4) increment UDB/UTB (Fig. 7f/7g).
func (m *Model) RecordUpdate(from, to int) {
	if to > from {
		m.UDF[from]++
		m.UTF[to]++
		return
	}
	m.UDB[from]++
	m.UTB[to]++
}

// Add accumulates other into m. Both models must cover the same number of
// blocks.
func (m *Model) Add(other *Model) {
	if m.Blocks() != other.Blocks() {
		panic(fmt.Sprintf("freq: Add size mismatch %d != %d", m.Blocks(), other.Blocks()))
	}
	dst, src := m.histograms(), other.histograms()
	for h := range dst {
		for i := range dst[h] {
			dst[h][i] += src[h][i]
		}
	}
}

// Scale multiplies every counter by f. Useful for turning a sample workload
// into per-period expected frequencies.
func (m *Model) Scale(f float64) {
	for _, h := range m.histograms() {
		for i := range h {
			h[i] *= f
		}
	}
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel(m.Blocks())
	c.Add(m)
	return c
}

// TotalOps returns the number of recorded operations per class (point
// queries, range queries, deletes, inserts, updates). Range queries are
// counted by their starts; updates by their update-from entries.
func (m *Model) TotalOps() (pq, rq, de, in, ud float64) {
	for i := range m.PQ {
		pq += m.PQ[i]
		rq += m.RS[i]
		de += m.DE[i]
		in += m.IN[i]
		ud += m.UDF[i] + m.UDB[i]
	}
	return pq, rq, de, in, ud
}

// Rebin aggregates the model down to n coarser bins (§4.3 "variable
// histogram granularity", §6.3). n must divide into the current block count
// evenly or the trailing bin absorbs the remainder.
func (m *Model) Rebin(n int) *Model {
	old := m.Blocks()
	if n <= 0 || n > old {
		panic(fmt.Sprintf("freq: cannot rebin %d blocks to %d", old, n))
	}
	c := NewModel(n)
	dst, src := c.histograms(), m.histograms()
	per := old / n
	for h := range src {
		for i, v := range src[h] {
			b := i / per
			if b >= n {
				b = n - 1
			}
			dst[h][b] += v
		}
	}
	return c
}

// RotationalShift returns a copy of the model with every histogram rotated
// right by frac of the domain (Fig. 16's "rotational shift" uncertainty:
// the actual workload targets a shifted part of the domain relative to the
// training workload).
func (m *Model) RotationalShift(frac float64) *Model {
	n := m.Blocks()
	k := int(frac*float64(n)+0.5) % n
	if k < 0 {
		k += n
	}
	c := NewModel(n)
	dst, src := c.histograms(), m.histograms()
	for h := range src {
		for i, v := range src[h] {
			dst[h][(i+k)%n] = v
		}
	}
	return c
}

// MassShift returns a copy of the model with frac of the point-query mass
// moved to inserts (positive frac) or frac of the insert mass moved to point
// queries (negative frac), keeping each histogram's shape (Fig. 16's "mass
// shift" uncertainty between the two competing operation classes).
func (m *Model) MassShift(frac float64) *Model {
	c := m.Clone()
	if frac == 0 {
		return c
	}
	from, to := c.PQ, c.IN
	f := frac
	if frac < 0 {
		from, to = c.IN, c.PQ
		f = -frac
	}
	var fromTot, toTot float64
	for i := range from {
		fromTot += from[i]
		toTot += to[i]
	}
	moved := f * fromTot
	if fromTot == 0 {
		return c
	}
	for i := range from {
		from[i] *= 1 - f
	}
	if toTot > 0 {
		for i := range to {
			to[i] += moved * to[i] / toTot
		}
	} else {
		per := moved / float64(len(to))
		for i := range to {
			to[i] += per
		}
	}
	return c
}

// Mapper translates domain values to logical block IDs by overlaying the
// data distribution (a sorted key sample) on the block geometry, as the
// paper does when simulating the sample workload "as if each operation is
// executed on the initial dataset" (§4.2).
type Mapper struct {
	sorted      []int64
	blockValues int
	blocks      int
}

// NewMapper builds a Mapper from keys (sorted copy taken internally) with
// blockValues values per logical block.
func NewMapper(keys []int64, blockValues int) *Mapper {
	if blockValues <= 0 {
		panic(fmt.Sprintf("freq: non-positive blockValues %d", blockValues))
	}
	if len(keys) == 0 {
		panic("freq: empty key set")
	}
	s := make([]int64, len(keys))
	copy(s, keys)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	nb := (len(s) + blockValues - 1) / blockValues
	return &Mapper{sorted: s, blockValues: blockValues, blocks: nb}
}

// Blocks returns the number of logical blocks the mapper covers.
func (mp *Mapper) Blocks() int { return mp.blocks }

// clampBlock converts a position in the sorted data to a block ID.
func (mp *Mapper) clampBlock(pos int) int {
	b := pos / mp.blockValues
	if b >= mp.blocks {
		b = mp.blocks - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Block returns the block that holds (or would hold) value v: the block of
// the first position with key >= v.
func (mp *Mapper) Block(v int64) int {
	pos := sort.Search(len(mp.sorted), func(i int) bool { return mp.sorted[i] >= v })
	return mp.clampBlock(pos)
}

// LastBlock returns the block of the last position with key <= v; used for
// the end of range queries.
func (mp *Mapper) LastBlock(v int64) int {
	pos := sort.Search(len(mp.sorted), func(i int) bool { return mp.sorted[i] > v })
	return mp.clampBlock(pos - 1)
}

// Capture is a convenience that applies one operation to the model using the
// mapper. Kind-specific Record* methods remain available for callers that
// already know block IDs.
type OpKind int

// Operation kinds understood by Capture.
const (
	OpPointQuery OpKind = iota
	OpRangeQuery
	OpInsert
	OpDelete
	OpUpdate
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpPointQuery:
		return "point-query"
	case OpRangeQuery:
		return "range-query"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is a single logical operation of a sample workload, expressed over the
// key domain. For range queries Key..Key2 is the inclusive value range; for
// updates Key is the old value and Key2 the new one.
type Op struct {
	Kind OpKind
	Key  int64
	Key2 int64
}

// Capture documents op in the model using mp for value→block translation.
func (m *Model) Capture(mp *Mapper, op Op) {
	switch op.Kind {
	case OpPointQuery:
		m.RecordPointQuery(mp.Block(op.Key))
	case OpRangeQuery:
		m.RecordRangeQuery(mp.Block(op.Key), mp.LastBlock(op.Key2))
	case OpInsert:
		m.RecordInsert(mp.Block(op.Key))
	case OpDelete:
		m.RecordDelete(mp.Block(op.Key))
	case OpUpdate:
		m.RecordUpdate(mp.Block(op.Key), mp.Block(op.Key2))
	default:
		panic(fmt.Sprintf("freq: unknown op kind %v", op.Kind))
	}
}

// CaptureAll documents every op of a sample workload.
func (m *Model) CaptureAll(mp *Mapper, ops []Op) {
	for _, op := range ops {
		m.Capture(mp, op)
	}
}

// FromSample builds a Frequency Model directly from a data sample and an
// operation sample (Fig. 8a).
func FromSample(keys []int64, blockValues int, ops []Op) (*Model, *Mapper) {
	mp := NewMapper(keys, blockValues)
	m := NewModel(mp.Blocks())
	m.CaptureAll(mp, ops)
	return m, mp
}

// Distribution is a normalized access-pattern density over the block domain:
// Weight(i, n) returns the relative access weight of block i out of n.
// Implementations need not normalize; FromDistributions normalizes.
type Distribution func(i, n int) float64

// DistSpec describes statistical workload knowledge for FromDistributions
// (Fig. 8b): per operation class, a total operation count and an access
// distribution over the domain. Nil distributions contribute nothing.
type DistSpec struct {
	PointQueries float64
	PointDist    Distribution

	RangeQueries   float64
	RangeStartDist Distribution
	// RangeBlocks is the average number of blocks a range query spans
	// (>= 1). Scans and range-ends are derived from it.
	RangeBlocks float64

	Inserts    float64
	InsertDist Distribution

	Deletes    float64
	DeleteDist Distribution

	// Updates move values between blocks; UpdateFromDist and UpdateToDist
	// locate the old and new values. Forward/backward split follows from
	// the expected relative position of the two distributions.
	Updates        float64
	UpdateFromDist Distribution
	UpdateToDist   Distribution
}

// normWeights evaluates d over n blocks and normalizes to sum 1. A nil d
// yields a uniform distribution.
func normWeights(d Distribution, n int) []float64 {
	w := make([]float64, n)
	var tot float64
	for i := range w {
		v := 1.0
		if d != nil {
			v = d(i, n)
		}
		if v < 0 {
			v = 0
		}
		w[i] = v
		tot += v
	}
	if tot == 0 {
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w
	}
	for i := range w {
		w[i] /= tot
	}
	return w
}

// FromDistributions constructs a Frequency Model over n blocks from
// statistical workload knowledge (§4.3).
func FromDistributions(n int, spec DistSpec) *Model {
	m := NewModel(n)
	if spec.PointQueries > 0 {
		w := normWeights(spec.PointDist, n)
		for i := range w {
			m.PQ[i] = spec.PointQueries * w[i]
		}
	}
	if spec.RangeQueries > 0 {
		span := spec.RangeBlocks
		if span < 1 {
			span = 1
		}
		w := normWeights(spec.RangeStartDist, n)
		for i := range w {
			starts := spec.RangeQueries * w[i]
			if starts == 0 {
				continue
			}
			m.RS[i] += starts
			last := i + int(span+0.5) - 1
			if last >= n {
				last = n - 1
			}
			if last > i {
				m.RE[last] += starts
				for b := i + 1; b < last; b++ {
					m.SC[b] += starts
				}
			}
		}
	}
	if spec.Inserts > 0 {
		w := normWeights(spec.InsertDist, n)
		for i := range w {
			m.IN[i] = spec.Inserts * w[i]
		}
	}
	if spec.Deletes > 0 {
		w := normWeights(spec.DeleteDist, n)
		for i := range w {
			m.DE[i] = spec.Deletes * w[i]
		}
	}
	if spec.Updates > 0 {
		from := normWeights(spec.UpdateFromDist, n)
		to := normWeights(spec.UpdateToDist, n)
		// Expected block positions decide the forward/backward split.
		var ef, et float64
		for i := range from {
			ef += float64(i) * from[i]
			et += float64(i) * to[i]
		}
		fwd := 0.5
		if et > ef {
			fwd = 1
		} else if et < ef {
			fwd = 0
		}
		for i := range from {
			m.UDF[i] += spec.Updates * fwd * from[i]
			m.UDB[i] += spec.Updates * (1 - fwd) * from[i]
			m.UTF[i] += spec.Updates * fwd * to[i]
			m.UTB[i] += spec.Updates * (1 - fwd) * to[i]
		}
	}
	return m
}

// Uniform is a uniform access Distribution.
func Uniform(i, n int) float64 { return 1 }

// LinearRamp favors the end of the domain linearly (recent-data skew).
func LinearRamp(i, n int) float64 { return float64(i + 1) }

// ReverseRamp favors the beginning of the domain linearly.
func ReverseRamp(i, n int) float64 { return float64(n - i) }

// GhostAware returns the optimizer's view of the model when the column will
// run with per-partition ghost values and a total budget of `budget` empty
// slots (§4.6). Under ghost buffering:
//
//   - deletes never ripple — they leave a local hole — so their cost is the
//     locating point query only (their counts move into PQ);
//   - the ghost budget absorbs inserts and incoming updates up to its size;
//     only the residual fraction pays ripple costs. Deletes replenish slots,
//     so the net slot demand is inserts+update-targets−deletes.
//
// Absorbed updates still pay their source-side point query, so the absorbed
// fraction of UDF/UDB also moves into PQ. The original model (not the
// ghost-aware view) remains the right input for Eq. 18 allocation.
func (m *Model) GhostAware(budget float64) *Model {
	g := m.Clone()
	var demand, deletes float64
	for i := range g.IN {
		demand += g.IN[i] + g.UTF[i] + g.UTB[i]
		deletes += g.DE[i]
	}
	for i := range g.DE {
		g.PQ[i] += g.DE[i]
		g.DE[i] = 0
	}
	demand -= deletes
	if demand <= 0 || budget <= 0 {
		if demand <= 0 {
			// Every insert is covered by a recycled slot.
			for i := range g.IN {
				g.PQ[i] += g.UDF[i] + g.UDB[i]
				g.IN[i], g.UDF[i], g.UDB[i], g.UTF[i], g.UTB[i] = 0, 0, 0, 0, 0
			}
		}
		return g
	}
	f := 1 - budget/demand
	if f < 0 {
		f = 0
	}
	for i := range g.IN {
		g.IN[i] *= f
		g.PQ[i] += (1 - f) * (g.UDF[i] + g.UDB[i])
		g.UDF[i] *= f
		g.UDB[i] *= f
		g.UTF[i] *= f
		g.UTB[i] *= f
	}
	return g
}
