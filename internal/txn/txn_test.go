package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestBasicCommitVisibility(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	if err := t1.Write(1, 100); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes are invisible to other transactions (no dirty
	// reads).
	t2 := m.Begin()
	if _, ok, _ := t2.Read(1); ok {
		t.Fatal("dirty read: t2 sees t1's uncommitted write")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t2's snapshot predates the commit: still invisible.
	if _, ok, _ := t2.Read(1); ok {
		t.Fatal("snapshot violation: t2 sees a commit after its begin")
	}
	// A new transaction sees it.
	t3 := m.Begin()
	v, ok, err := t3.Read(1)
	if err != nil || !ok || v != 100 {
		t.Fatalf("t3.Read(1) = %v,%v,%v, want 100,true,nil", v, ok, err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Write(7, 70)
	v, ok, _ := tx.Read(7)
	if !ok || v != 70 {
		t.Fatalf("own write invisible: %v,%v", v, ok)
	}
	tx.Delete(7)
	if _, ok, _ := tx.Read(7); ok {
		t.Fatal("own delete invisible")
	}
}

func TestFirstCommitterWins(t *testing.T) {
	m := NewManager()
	m.Seed(1, 10)
	a := m.Begin()
	b := m.Begin()
	a.Write(1, 11)
	b.Write(1, 12)
	if err := a.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	err := b.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	if b.Status() != Aborted {
		t.Fatalf("loser status = %v, want aborted", b.Status())
	}
	if v, ok := m.ReadCommitted(1); !ok || v != 11 {
		t.Fatalf("committed value = %v,%v, want 11", v, ok)
	}
}

func TestDisjointWritersBothCommit(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	a.Write(1, 1)
	b.Write(2, 2)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("disjoint writer aborted: %v", err)
	}
}

func TestSnapshotStableUnderConcurrentCommits(t *testing.T) {
	m := NewManager()
	m.Seed(5, 50)
	reader := m.Begin()
	w := m.Begin()
	w.Write(5, 51)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// The long-running reader keeps seeing its snapshot (repeatable read).
	for i := 0; i < 3; i++ {
		v, ok, _ := reader.Read(5)
		if !ok || v != 50 {
			t.Fatalf("snapshot drifted: %v,%v, want 50", v, ok)
		}
	}
}

func TestDeleteVisibility(t *testing.T) {
	m := NewManager()
	m.Seed(9, 90)
	d := m.Begin()
	d.Delete(9)
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.ReadCommitted(9); ok {
		t.Fatal("deleted row still visible")
	}
	// Pre-delete snapshots still see it.
	if v, ok, _ := m.Begin().Read(9); ok || v != 0 {
		// New snapshot: must NOT see it.
		t.Fatalf("new snapshot sees deleted row: %v %v", v, ok)
	}
}

func TestClosedTransactionRejectsOperations(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Abort()
	if err := tx.Write(1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after abort = %v", err)
	}
	if _, _, err := tx.Read(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after abort = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("Commit after abort = %v", err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Write(3, 33)
	tx.Abort()
	if _, ok := m.ReadCommitted(3); ok {
		t.Fatal("aborted write became visible")
	}
}

func TestWriteSet(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Write(1, 1)
	tx.Write(2, 2)
	tx.Delete(3)
	if got := len(tx.WriteSet()); got != 3 {
		t.Fatalf("write set size = %d, want 3", got)
	}
}

func TestGCDropsOldVersions(t *testing.T) {
	m := NewManager()
	m.Seed(1, 0)
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		tx.Write(1, int64(i))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.VersionCount(); n != 11 {
		t.Fatalf("version count = %d, want 11", n)
	}
	dropped := m.GC(^uint64(0))
	if dropped != 10 {
		t.Fatalf("GC dropped %d, want 10", dropped)
	}
	if v, ok := m.ReadCommitted(1); !ok || v != 9 {
		t.Fatalf("after GC value = %v,%v, want 9", v, ok)
	}
}

func TestConcurrentTransfersPreserveInvariant(t *testing.T) {
	// Classic SI stress: concurrent transfers between two accounts; the
	// total must be conserved across all committed transactions.
	m := NewManager()
	m.Seed(1, 500)
	m.Seed(2, 500)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := m.Begin()
				a, ok1, _ := tx.Read(1)
				b, ok2, _ := tx.Read(2)
				if !ok1 || !ok2 {
					tx.Abort()
					continue
				}
				amt := int64(g + 1)
				tx.Write(1, a-amt)
				tx.Write(2, b+amt)
				_ = tx.Commit() // conflicts abort; that is fine
			}
		}(g)
	}
	wg.Wait()
	a, _ := m.ReadCommitted(1)
	b, _ := m.ReadCommitted(2)
	if a+b != 1000 {
		t.Fatalf("invariant broken: %d + %d != 1000", a, b)
	}
}

func TestOracleMonotonic(t *testing.T) {
	o := NewOracle()
	if o.Now() != 0 {
		t.Fatalf("fresh oracle at %d, want 0", o.Now())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1_000; i++ {
				o.Advance()
			}
		}()
	}
	wg.Wait()
	if got := o.Now(); got != 8_000 {
		t.Fatalf("oracle at %d after 8000 advances, want 8000", got)
	}
}

// TestOracleAdvanceTo covers the crash-recovery epoch restore: AdvanceTo
// raises the clock, never lowers it, and races cleanly with Advance.
func TestOracleAdvanceTo(t *testing.T) {
	o := NewOracle()
	o.AdvanceTo(42)
	if got := o.Now(); got != 42 {
		t.Fatalf("AdvanceTo(42) left oracle at %d", got)
	}
	o.AdvanceTo(7) // never moves backwards
	if got := o.Now(); got != 42 {
		t.Fatalf("AdvanceTo(7) moved oracle backwards to %d", got)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.Advance()
				o.AdvanceTo(uint64(100 * g))
			}
		}(g)
	}
	wg.Wait()
	if got := o.Now(); got < 42+4*500 {
		t.Fatalf("oracle at %d, want >= %d (AdvanceTo swallowed Advances)", got, 42+4*500)
	}
}

// TestSharedOracleAcrossManagerAndEngine models the engine wiring: the
// manager's commit timestamps and an external epoch consumer (cross-shard
// moves) draw from one oracle, and external bumps between Begin and Commit
// never produce spurious conflicts — conflicts key on row versions, not on
// timestamp gaps.
func TestSharedOracleAcrossManagerAndEngine(t *testing.T) {
	o := NewOracle()
	m := NewManagerWithOracle(o)
	if m.Oracle() != o {
		t.Fatal("Oracle() does not return the shared oracle")
	}
	tx := m.Begin()
	if err := tx.Write(1, 5); err != nil {
		t.Fatal(err)
	}
	// Cross-shard moves publish epochs while the transaction is open.
	for i := 0; i < 3; i++ {
		o.Advance()
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after external epoch bumps: %v", err)
	}
	if v, ok := m.ReadCommitted(1); !ok || v != 5 {
		t.Fatalf("ReadCommitted = (%d,%v), want (5,true)", v, ok)
	}
	// The commit consumed a timestamp strictly above the external bumps.
	if got := o.Now(); got != 4 {
		t.Fatalf("oracle at %d after 3 bumps + 1 commit, want 4", got)
	}
	// A snapshot begun before the commit still cannot see the write.
	if tx2 := m.Begin(); tx2.ReadTS() != 4 {
		t.Fatalf("new snapshot at %d, want 4", tx2.ReadTS())
	}
}
