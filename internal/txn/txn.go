// Package txn provides snapshot-isolation transactions via multi-version
// concurrency control, following §6.1 of the paper: every transaction reads
// a snapshot as of its begin timestamp, buffers writes locally, and at
// commit time the first committer wins — concurrent writers of the same row
// abort and roll back.
//
// The manager versions logical rows identified by int64 keys. The storage
// engine applies committed writes to the physical column layout after
// commit, so long-running analytical scans never observe partial
// transactions.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Oracle is a monotonic timestamp/epoch source. It is shared between the
// transaction manager (commit timestamps) and the storage engine (cross-shard
// move epochs), so transactional commits and cross-shard row moves draw from
// one totally ordered time domain. All methods are safe for concurrent use.
type Oracle struct {
	c atomic.Uint64
}

// NewOracle returns an oracle starting at timestamp 0.
func NewOracle() *Oracle { return &Oracle{} }

// Now returns the current timestamp without advancing it.
func (o *Oracle) Now() uint64 { return o.c.Load() }

// Advance atomically bumps the timestamp and returns the new value. Each
// Advance is a unique, totally ordered commit point.
func (o *Oracle) Advance() uint64 { return o.c.Add(1) }

// AdvanceTo raises the timestamp to at least ts; a no-op when the oracle is
// already past it. Crash recovery uses it to restore the epoch domain to the
// highest epoch observed in checkpoints and WAL records, so post-recovery
// commits and moves continue the pre-crash total order.
func (o *Oracle) AdvanceTo(ts uint64) {
	for {
		cur := o.c.Load()
		if cur >= ts || o.c.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Errors returned by Commit and transaction operations.
var (
	// ErrConflict reports a write-write conflict: another transaction
	// committed a version of a written row after this transaction began.
	ErrConflict = errors.New("txn: write-write conflict")
	// ErrClosed reports use of a committed or aborted transaction.
	ErrClosed = errors.New("txn: transaction is closed")
)

// Status is a transaction's lifecycle state.
type Status int

const (
	Active Status = iota
	Committed
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// version is one committed value of a row.
type version struct {
	commitTS uint64
	value    int64
	deleted  bool
}

// write is a buffered, uncommitted mutation.
type write struct {
	value   int64
	deleted bool
}

// Manager is the version store plus its timestamp oracle.
type Manager struct {
	mu       sync.Mutex
	oracle   *Oracle
	versions map[int64][]version // per row, ascending commitTS
}

// NewManager returns an empty manager with a private oracle.
func NewManager() *Manager { return NewManagerWithOracle(NewOracle()) }

// NewManagerWithOracle returns an empty manager drawing timestamps from o,
// letting callers share one time domain between the manager and other
// components (e.g. a sharded engine's move epochs).
func NewManagerWithOracle(o *Oracle) *Manager {
	return &Manager{oracle: o, versions: make(map[int64][]version)}
}

// Oracle returns the manager's timestamp oracle.
func (m *Manager) Oracle() *Oracle { return m.oracle }

// Seed installs an initial committed version for key at timestamp 0, used to
// load existing data without running transactions.
func (m *Manager) Seed(key, value int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.versions[key] = append(m.versions[key], version{commitTS: 0, value: value})
}

// Txn is one transaction. It is not safe for concurrent use by multiple
// goroutines; different transactions may run concurrently.
type Txn struct {
	m      *Manager
	readTS uint64
	writes map[int64]write
	status Status
}

// Begin starts a transaction reading the current snapshot.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &Txn{
		m:      m,
		readTS: m.oracle.Now(),
		writes: make(map[int64]write),
		status: Active,
	}
}

// Status returns the transaction's state.
func (t *Txn) Status() Status { return t.status }

// ReadTS returns the snapshot timestamp.
func (t *Txn) ReadTS() uint64 { return t.readTS }

// Read returns the value of key visible to this transaction: its own
// buffered write if any, otherwise the newest version with
// commitTS <= readTS. ok is false when the row is absent or deleted in the
// snapshot.
func (t *Txn) Read(key int64) (int64, bool, error) {
	if t.status != Active {
		return 0, false, ErrClosed
	}
	if w, ok := t.writes[key]; ok {
		if w.deleted {
			return 0, false, nil
		}
		return w.value, true, nil
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return snapshotRead(t.m.versions[key], t.readTS)
}

func snapshotRead(chain []version, ts uint64) (int64, bool, error) {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].commitTS <= ts {
			if chain[i].deleted {
				return 0, false, nil
			}
			return chain[i].value, true, nil
		}
	}
	return 0, false, nil
}

// Write buffers a value for key in the transaction's local buffer.
func (t *Txn) Write(key, value int64) error {
	if t.status != Active {
		return ErrClosed
	}
	t.writes[key] = write{value: value}
	return nil
}

// Delete buffers a deletion of key.
func (t *Txn) Delete(key int64) error {
	if t.status != Active {
		return ErrClosed
	}
	t.writes[key] = write{deleted: true}
	return nil
}

// WriteSet returns the keys this transaction has buffered writes for.
func (t *Txn) WriteSet() []int64 {
	out := make([]int64, 0, len(t.writes))
	for k := range t.writes {
		out = append(out, k)
	}
	return out
}

// Commit validates and installs the write set atomically. First committer
// wins: if any written key has a version committed after this transaction's
// snapshot, Commit aborts the transaction and returns ErrConflict.
func (t *Txn) Commit() error {
	if t.status != Active {
		return ErrClosed
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	for key := range t.writes {
		chain := t.m.versions[key]
		if len(chain) > 0 && chain[len(chain)-1].commitTS > t.readTS {
			t.status = Aborted
			return fmt.Errorf("%w on key %d", ErrConflict, key)
		}
	}
	ts := t.m.oracle.Advance()
	for key, w := range t.writes {
		t.m.versions[key] = append(t.m.versions[key], version{
			commitTS: ts,
			value:    w.value,
			deleted:  w.deleted,
		})
	}
	t.status = Committed
	return nil
}

// Abort discards the write buffer.
func (t *Txn) Abort() {
	if t.status == Active {
		t.status = Aborted
	}
}

// ReadCommitted returns the latest committed value of key outside any
// transaction.
func (m *Manager) ReadCommitted(key int64) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok, _ := snapshotRead(m.versions[key], m.oracle.Now())
	return v, ok
}

// GC drops versions that no snapshot at or after horizon can observe,
// keeping at least the newest version of every row.
func (m *Manager) GC(horizon uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	dropped := 0
	for key, chain := range m.versions {
		// Keep the newest version with commitTS <= horizon and everything
		// after it.
		keepFrom := 0
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].commitTS <= horizon {
				keepFrom = i
				break
			}
		}
		if keepFrom > 0 {
			dropped += keepFrom
			m.versions[key] = append([]version(nil), chain[keepFrom:]...)
		}
		if len(m.versions[key]) == 1 && m.versions[key][0].deleted {
			delete(m.versions, key)
		}
	}
	return dropped
}

// VersionCount returns the total number of stored versions (for tests and
// GC monitoring).
func (m *Manager) VersionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.versions {
		n += len(c)
	}
	return n
}
