package delta

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// queryable is the read/write surface shared by all three baselines.
type queryable interface {
	PointQuery(v int64) int
	RangeCount(lo, hi int64) int
	RangeSum(lo, hi int64) int64
	Insert(v int64) int
	Delete(v int64) error
	Update(old, new int64) (int, error)
	Len() int
	Snapshot() []int64
}

func refCount(ref []int64, lo, hi int64) int {
	n := 0
	for _, v := range ref {
		if v >= lo && v <= hi {
			n++
		}
	}
	return n
}

func refSum(ref []int64, lo, hi int64) int64 {
	var s int64
	for _, v := range ref {
		if v >= lo && v <= hi {
			s += v
		}
	}
	return s
}

func refRemove(ref []int64, v int64) ([]int64, bool) {
	for i, x := range ref {
		if x == v {
			ref[i] = ref[len(ref)-1]
			return ref[:len(ref)-1], true
		}
	}
	return ref, false
}

// TestBaselinesAgainstReference drives all three layouts with the same
// random workload and cross-checks against a slice reference.
func TestBaselinesAgainstReference(t *testing.T) {
	builders := map[string]func(keys []int64) queryable{
		"heap":   func(k []int64) queryable { return NewHeap(k, nil) },
		"sorted": func(k []int64) queryable { return NewSorted(k, nil) },
		"delta":  func(k []int64) queryable { return NewDelta(k, 32, nil) },
	}
	for name, mk := range builders {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			keys := make([]int64, 300)
			for i := range keys {
				keys[i] = int64(rng.Intn(3000))
			}
			col := mk(keys)
			ref := make([]int64, len(keys))
			copy(ref, keys)

			for i := 0; i < 4000; i++ {
				switch rng.Intn(6) {
				case 0:
					v := int64(rng.Intn(3300) - 100)
					if got, want := col.PointQuery(v), refCount(ref, v, v); got != want {
						t.Fatalf("op %d: PointQuery(%d) = %d, want %d", i, v, got, want)
					}
				case 1:
					lo := int64(rng.Intn(3300) - 100)
					hi := lo + int64(rng.Intn(800))
					if got, want := col.RangeCount(lo, hi), refCount(ref, lo, hi); got != want {
						t.Fatalf("op %d: RangeCount(%d,%d) = %d, want %d", i, lo, hi, got, want)
					}
				case 2:
					lo := int64(rng.Intn(3300) - 100)
					hi := lo + int64(rng.Intn(800))
					if got, want := col.RangeSum(lo, hi), refSum(ref, lo, hi); got != want {
						t.Fatalf("op %d: RangeSum(%d,%d) = %d, want %d", i, lo, hi, got, want)
					}
				case 3:
					v := int64(rng.Intn(3000))
					col.Insert(v)
					ref = append(ref, v)
				case 4:
					v := int64(rng.Intn(3000))
					err := col.Delete(v)
					var ok bool
					ref, ok = refRemove(ref, v)
					if ok != (err == nil) {
						t.Fatalf("op %d: Delete(%d) = %v disagrees with reference", i, v, err)
					}
				case 5:
					old, new := int64(rng.Intn(3000)), int64(rng.Intn(3000))
					_, err := col.Update(old, new)
					var ok bool
					ref, ok = refRemove(ref, old)
					if ok {
						if err != nil {
							t.Fatalf("op %d: Update(%d,%d): %v", i, old, new, err)
						}
						ref = append(ref, new)
					} else if err == nil {
						t.Fatalf("op %d: Update(%d,%d) succeeded but value absent", i, old, new)
					}
				}
			}
			if col.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", col.Len(), len(ref))
			}
			got := col.Snapshot()
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := make([]int64, len(ref))
			copy(want, ref)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("multiset diverges at %d: %d vs %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSortedColumnStaysSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSorted([]int64{5, 1, 9, 3}, nil)
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			s.Insert(int64(rng.Intn(1000)))
		case 1:
			_ = s.Delete(int64(rng.Intn(1000)))
		case 2:
			_, _ = s.Update(int64(rng.Intn(1000)), int64(rng.Intn(1000)))
		}
		snap := s.Snapshot()
		if !sort.SliceIsSorted(snap, func(a, b int) bool { return snap[a] < snap[b] }) {
			t.Fatalf("op %d: column no longer sorted: %v", i, snap)
		}
	}
}

func TestHeapInsertIsConstantCost(t *testing.T) {
	h := NewHeap([]int64{1, 2, 3}, nil)
	h.ResetStats()
	h.Insert(99)
	if s := h.Stats(); s.ValuesMoved != 0 {
		t.Errorf("heap insert moved %d values, want 0", s.ValuesMoved)
	}
}

func TestSortedInsertMovesTrailingRows(t *testing.T) {
	s := NewSorted([]int64{10, 20, 30, 40}, nil)
	s.ResetStats()
	s.Insert(5) // front insert shifts all 4 rows
	if got := s.Stats().ValuesMoved; got != 4 {
		t.Errorf("front insert moved %d rows, want 4", got)
	}
	s.ResetStats()
	s.Insert(99) // back insert shifts none
	if got := s.Stats().ValuesMoved; got != 0 {
		t.Errorf("back insert moved %d rows, want 0", got)
	}
}

func TestDeltaMergeTriggersAtThreshold(t *testing.T) {
	d := NewDelta([]int64{1, 2, 3, 4, 5}, 4, nil)
	for v := int64(10); v < 14; v++ {
		d.Insert(v)
	}
	if d.Stats().Merges != 0 {
		t.Fatalf("merged too early: %d merges", d.Stats().Merges)
	}
	if d.DeltaLen() != 4 {
		t.Fatalf("delta len = %d, want 4", d.DeltaLen())
	}
	d.Insert(14) // fifth insert exceeds the threshold
	if d.Stats().Merges != 1 {
		t.Fatalf("merges = %d, want 1", d.Stats().Merges)
	}
	if d.DeltaLen() != 1 {
		t.Fatalf("delta len after merge = %d, want 1", d.DeltaLen())
	}
	if d.Len() != 10 {
		t.Fatalf("len = %d, want 10", d.Len())
	}
}

func TestDeltaTombstonesHideMainValues(t *testing.T) {
	d := NewDelta([]int64{1, 2, 2, 3}, 8, nil)
	if err := d.Delete(2); err != nil {
		t.Fatal(err)
	}
	if got := d.PointQuery(2); got != 1 {
		t.Errorf("PointQuery(2) = %d, want 1 after one tombstone", got)
	}
	if got := d.RangeCount(1, 3); got != 3 {
		t.Errorf("RangeCount(1,3) = %d, want 3", got)
	}
	// Merge drops tombstones physically.
	d.Merge()
	if got := d.Len(); got != 3 {
		t.Errorf("len after merge = %d, want 3", got)
	}
}

func TestDeltaDeleteMissing(t *testing.T) {
	d := NewDelta([]int64{1, 2, 3}, 8, nil)
	if err := d.Delete(9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(9) = %v, want ErrNotFound", err)
	}
	if _, err := d.Update(9, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update(9,1) = %v, want ErrNotFound", err)
	}
}

// reorderMover records payload rows through merges for alignment testing.
type reorderMover struct {
	payload []int64
}

func (m *reorderMover) Move(dst, src int) { m.payload[dst] = m.payload[src] }
func (m *reorderMover) MoveRange(dst, src, n int) {
	copy(m.payload[dst:dst+n], m.payload[src:src+n])
}
func (m *reorderMover) Swap(a, b int) { m.payload[a], m.payload[b] = m.payload[b], m.payload[a] }
func (m *reorderMover) Grow(n int) {
	for len(m.payload) < n {
		m.payload = append(m.payload, 0)
	}
}
func (m *reorderMover) Reorder(perm []int) {
	next := make([]int64, len(perm))
	for i, old := range perm {
		next[i] = m.payload[old]
	}
	m.payload = next
}

func TestDeltaPayloadSurvivesMerge(t *testing.T) {
	mv := &reorderMover{}
	keys := []int64{30, 10, 20}
	d := NewDelta(keys, 2, mv)
	// Payload mirrors the sorted main store: payload[i] = key[i].
	for i, v := range []int64{10, 20, 30} {
		mv.payload[i] = v
	}
	pos := d.Insert(15)
	mv.payload[pos] = 15
	pos = d.Insert(25)
	mv.payload[pos] = 25
	pos = d.Insert(5) // triggers merge of the two pending rows first
	mv.payload[pos] = 5
	if d.Stats().Merges != 1 {
		t.Fatalf("merges = %d, want 1", d.Stats().Merges)
	}
	d.Merge()
	// After the final merge all rows are in the sorted main store and
	// payload must equal key at each position.
	snap := d.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	for i, v := range snap {
		if mv.payload[i] != v {
			t.Fatalf("payload[%d] = %d, want %d", i, mv.payload[i], v)
		}
	}
}
