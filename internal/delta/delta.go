// Package delta implements the baseline column layouts Casper is evaluated
// against (§7 of the paper):
//
//   - HeapColumn: insertion-order column with no organization ("No Order"),
//   - SortedColumn: fully sorted column ("Sorted"),
//   - DeltaColumn: sorted read store plus a global delta buffer with
//     tombstones and periodic merge — the state-of-the-art update-aware
//     columnar design ("State-of-art").
//
// All three expose the same operation repertoire as internal/column and
// report payload row movements through a Mover so a table's payload columns
// stay aligned.
package delta

import (
	"fmt"
	"sort"
	"sync/atomic"

	"casper/internal/column"
)

// Mover extends column.RowMover with wholesale reorganization, which the
// delta merge needs.
type Mover interface {
	column.RowMover
	// Reorder rebuilds the payload store: new row i comes from old row
	// newFromOld[i]. Rows beyond len(newFromOld) become dead.
	Reorder(newFromOld []int)
}

// NopMover ignores all movement.
type NopMover struct{ column.NopMover }

// Reorder implements Mover.
func (NopMover) Reorder([]int) {}

// ErrNotFound mirrors column.ErrNotFound.
var ErrNotFound = column.ErrNotFound

// Stats counts physical work in the baselines. Counters are maintained
// with atomic adds so concurrent readers can update them safely.
type Stats struct {
	PointQueries  int64
	RangeQueries  int64
	Inserts       int64
	Deletes       int64
	Updates       int64
	ValuesScanned int64
	ValuesMoved   int64
	Merges        int64
}

// ---------------------------------------------------------------------------
// HeapColumn
// ---------------------------------------------------------------------------

// HeapColumn stores values in insertion order: O(1) inserts, full-scan reads.
type HeapColumn struct {
	vals  []int64
	mover column.RowMover
	stats Stats
}

// NewHeap builds a heap column holding keys in the given order.
func NewHeap(keys []int64, mover column.RowMover) *HeapColumn {
	if mover == nil {
		mover = column.NopMover{}
	}
	vals := make([]int64, len(keys))
	copy(vals, keys)
	mover.Grow(len(vals))
	return &HeapColumn{vals: vals, mover: mover}
}

// Len returns the live value count.
func (h *HeapColumn) Len() int { return len(h.vals) }

// Stats returns a copy of the counters.
func (h *HeapColumn) Stats() Stats { return loadStats(&h.stats) }

// ResetStats zeroes the counters.
func (h *HeapColumn) ResetStats() { h.stats = Stats{} }

// PointQuery counts occurrences of v with a full scan.
func (h *HeapColumn) PointQuery(v int64) int {
	atomic.AddInt64(&h.stats.PointQueries, 1)
	atomic.AddInt64(&h.stats.ValuesScanned, int64(len(h.vals)))
	n := 0
	for _, x := range h.vals {
		if x == v {
			n++
		}
	}
	return n
}

// RangeCount counts live values in [lo, hi] with a full scan.
func (h *HeapColumn) RangeCount(lo, hi int64) int {
	atomic.AddInt64(&h.stats.RangeQueries, 1)
	atomic.AddInt64(&h.stats.ValuesScanned, int64(len(h.vals)))
	n := 0
	for _, x := range h.vals {
		if x >= lo && x <= hi {
			n++
		}
	}
	return n
}

// RangeSum sums live values in [lo, hi] with a full scan.
func (h *HeapColumn) RangeSum(lo, hi int64) int64 {
	atomic.AddInt64(&h.stats.RangeQueries, 1)
	atomic.AddInt64(&h.stats.ValuesScanned, int64(len(h.vals)))
	var s int64
	for _, x := range h.vals {
		if x >= lo && x <= hi {
			s += x
		}
	}
	return s
}

// Insert appends v and returns its physical position.
func (h *HeapColumn) Insert(v int64) int {
	atomic.AddInt64(&h.stats.Inserts, 1)
	h.vals = append(h.vals, v)
	h.mover.Grow(len(h.vals))
	return len(h.vals) - 1
}

// Delete removes one occurrence of v by swapping the last row into its slot.
func (h *HeapColumn) Delete(v int64) error {
	atomic.AddInt64(&h.stats.Deletes, 1)
	atomic.AddInt64(&h.stats.ValuesScanned, int64(len(h.vals)))
	for i, x := range h.vals {
		if x == v {
			last := len(h.vals) - 1
			h.vals[i] = h.vals[last]
			h.mover.Move(i, last)
			h.vals = h.vals[:last]
			atomic.AddInt64(&h.stats.ValuesMoved, 1)
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrNotFound, v)
}

// Update rewrites one occurrence of old to new in place.
func (h *HeapColumn) Update(old, new int64) (int, error) {
	atomic.AddInt64(&h.stats.Updates, 1)
	atomic.AddInt64(&h.stats.ValuesScanned, int64(len(h.vals)))
	for i, x := range h.vals {
		if x == old {
			h.vals[i] = new
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrNotFound, old)
}

// Snapshot returns the live values in storage order.
func (h *HeapColumn) Snapshot() []int64 {
	out := make([]int64, len(h.vals))
	copy(out, h.vals)
	return out
}

// ---------------------------------------------------------------------------
// SortedColumn
// ---------------------------------------------------------------------------

// SortedColumn keeps values fully sorted: binary-search reads, memmove
// writes. This is the "Sorted" baseline whose update cost motivates delta
// stores.
type SortedColumn struct {
	vals  []int64
	mover column.RowMover
	stats Stats
}

// NewSorted builds a sorted column from keys (sorted copy taken internally).
func NewSorted(keys []int64, mover column.RowMover) *SortedColumn {
	if mover == nil {
		mover = column.NopMover{}
	}
	vals := make([]int64, len(keys))
	copy(vals, keys)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	mover.Grow(len(vals))
	return &SortedColumn{vals: vals, mover: mover}
}

// Len returns the live value count.
func (s *SortedColumn) Len() int { return len(s.vals) }

// Stats returns a copy of the counters.
func (s *SortedColumn) Stats() Stats { return loadStats(&s.stats) }

// ResetStats zeroes the counters.
func (s *SortedColumn) ResetStats() { s.stats = Stats{} }

func (s *SortedColumn) lowerBound(v int64) int {
	return sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
}

// PointQuery counts occurrences of v by binary search.
func (s *SortedColumn) PointQuery(v int64) int {
	atomic.AddInt64(&s.stats.PointQueries, 1)
	i := s.lowerBound(v)
	n := 0
	for ; i+n < len(s.vals) && s.vals[i+n] == v; n++ {
	}
	atomic.AddInt64(&s.stats.ValuesScanned, int64(n+1))
	return n
}

// RangeCount counts live values in [lo, hi] with two binary searches.
func (s *SortedColumn) RangeCount(lo, hi int64) int {
	atomic.AddInt64(&s.stats.RangeQueries, 1)
	if hi < lo {
		return 0
	}
	a := s.lowerBound(lo)
	b := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > hi })
	return b - a
}

// RangeSum sums live values in [lo, hi].
func (s *SortedColumn) RangeSum(lo, hi int64) int64 {
	atomic.AddInt64(&s.stats.RangeQueries, 1)
	if hi < lo {
		return 0
	}
	a := s.lowerBound(lo)
	b := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > hi })
	var sum int64
	for _, x := range s.vals[a:b] {
		sum += x
	}
	atomic.AddInt64(&s.stats.ValuesScanned, int64(b-a))
	return sum
}

// Insert places v at its sorted position, shifting trailing rows right with
// one bulk move.
func (s *SortedColumn) Insert(v int64) int {
	atomic.AddInt64(&s.stats.Inserts, 1)
	pos := s.lowerBound(v)
	s.vals = append(s.vals, 0)
	s.mover.Grow(len(s.vals))
	if n := len(s.vals) - 1 - pos; n > 0 {
		copy(s.vals[pos+1:], s.vals[pos:len(s.vals)-1])
		s.mover.MoveRange(pos+1, pos, n)
		atomic.AddInt64(&s.stats.ValuesMoved, int64(n))
	}
	s.vals[pos] = v
	return pos
}

// Delete removes one occurrence of v, shifting trailing rows left with one
// bulk move.
func (s *SortedColumn) Delete(v int64) error {
	atomic.AddInt64(&s.stats.Deletes, 1)
	pos := s.lowerBound(v)
	if pos >= len(s.vals) || s.vals[pos] != v {
		return fmt.Errorf("%w: %d", ErrNotFound, v)
	}
	if n := len(s.vals) - 1 - pos; n > 0 {
		copy(s.vals[pos:], s.vals[pos+1:])
		s.mover.MoveRange(pos, pos+1, n)
		atomic.AddInt64(&s.stats.ValuesMoved, int64(n))
	}
	s.vals = s.vals[:len(s.vals)-1]
	return nil
}

// Update moves one occurrence of old to new's sorted position by shifting
// the rows in between — a delete and insert fused into one pass.
func (s *SortedColumn) Update(old, new int64) (int, error) {
	atomic.AddInt64(&s.stats.Updates, 1)
	pos := s.lowerBound(old)
	if pos >= len(s.vals) || s.vals[pos] != old {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, old)
	}
	if new >= old {
		dst := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > new }) - 1
		if n := dst - pos; n > 0 {
			copy(s.vals[pos:], s.vals[pos+1:dst+1])
			s.mover.MoveRange(pos, pos+1, n)
			atomic.AddInt64(&s.stats.ValuesMoved, int64(n))
		}
		s.vals[dst] = new
		return dst, nil
	}
	dst := s.lowerBound(new)
	if n := pos - dst; n > 0 {
		copy(s.vals[dst+1:], s.vals[dst:pos])
		s.mover.MoveRange(dst+1, dst, n)
		atomic.AddInt64(&s.stats.ValuesMoved, int64(n))
	}
	s.vals[dst] = new
	return dst, nil
}

// Snapshot returns the live values sorted.
func (s *SortedColumn) Snapshot() []int64 {
	out := make([]int64, len(s.vals))
	copy(out, s.vals)
	return out
}

// ---------------------------------------------------------------------------
// DeltaColumn
// ---------------------------------------------------------------------------

// DeltaColumn is the state-of-the-art baseline: a sorted read store with a
// global out-of-place delta buffer. Inserts append to the delta; deletes
// tombstone the main store; reads consult both sides. When the delta exceeds
// its threshold it merges into a fresh sorted main store.
//
// Physical row positions: main row i lives at position i; delta row i lives
// at position mainRegion+i, where mainRegion is fixed between merges. Merges
// issue a Reorder to the Mover.
type DeltaColumn struct {
	main       []int64
	dead       []bool // tombstones aligned with main
	deadCount  int
	delta      []int64
	mainRegion int // size of the main position region (== len(main))
	threshold  int // merge when len(delta) reaches this
	mover      Mover
	stats      Stats
}

// DefaultMergeThreshold is the delta capacity as a fraction of the main
// store when no explicit threshold is given. Write-optimized buffers in
// columnar systems are small fractions of the read store; the merge cost
// this implies is the recurring reorganization cost the paper attributes to
// delta designs (§7.2).
const DefaultMergeThreshold = 0.005

// NewDelta builds a delta column from keys. threshold is the delta size that
// triggers a merge; 0 selects DefaultMergeThreshold of the data size.
func NewDelta(keys []int64, threshold int, mover Mover) *DeltaColumn {
	if mover == nil {
		mover = NopMover{}
	}
	main := make([]int64, len(keys))
	copy(main, keys)
	sort.Slice(main, func(i, j int) bool { return main[i] < main[j] })
	if threshold <= 0 {
		threshold = int(float64(len(main)) * DefaultMergeThreshold)
		if threshold < 16 {
			threshold = 16
		}
	}
	mover.Grow(len(main))
	return &DeltaColumn{
		main:       main,
		dead:       make([]bool, len(main)),
		delta:      make([]int64, 0, threshold),
		mainRegion: len(main),
		threshold:  threshold,
		mover:      mover,
	}
}

// Len returns the live value count.
func (d *DeltaColumn) Len() int { return len(d.main) - d.deadCount + len(d.delta) }

// DeltaLen returns the current delta buffer size.
func (d *DeltaColumn) DeltaLen() int { return len(d.delta) }

// Stats returns a copy of the counters.
func (d *DeltaColumn) Stats() Stats { return loadStats(&d.stats) }

// ResetStats zeroes the counters.
func (d *DeltaColumn) ResetStats() { d.stats = Stats{} }

func (d *DeltaColumn) lowerBound(v int64) int {
	return sort.Search(len(d.main), func(i int) bool { return d.main[i] >= v })
}

// PointQuery counts live occurrences of v across main and delta.
func (d *DeltaColumn) PointQuery(v int64) int {
	atomic.AddInt64(&d.stats.PointQueries, 1)
	n := 0
	for i := d.lowerBound(v); i < len(d.main) && d.main[i] == v; i++ {
		if !d.dead[i] {
			n++
		}
	}
	for _, x := range d.delta {
		if x == v {
			n++
		}
	}
	atomic.AddInt64(&d.stats.ValuesScanned, int64(len(d.delta)+1))
	return n
}

// RangeCount counts live values in [lo, hi] across main and delta.
func (d *DeltaColumn) RangeCount(lo, hi int64) int {
	atomic.AddInt64(&d.stats.RangeQueries, 1)
	if hi < lo {
		return 0
	}
	a := d.lowerBound(lo)
	b := sort.Search(len(d.main), func(i int) bool { return d.main[i] > hi })
	n := 0
	for i := a; i < b; i++ {
		if !d.dead[i] {
			n++
		}
	}
	for _, x := range d.delta {
		if x >= lo && x <= hi {
			n++
		}
	}
	atomic.AddInt64(&d.stats.ValuesScanned, int64(b-a+len(d.delta)))
	return n
}

// RangeSum sums live values in [lo, hi] across main and delta.
func (d *DeltaColumn) RangeSum(lo, hi int64) int64 {
	atomic.AddInt64(&d.stats.RangeQueries, 1)
	if hi < lo {
		return 0
	}
	a := d.lowerBound(lo)
	b := sort.Search(len(d.main), func(i int) bool { return d.main[i] > hi })
	var sum int64
	for i := a; i < b; i++ {
		if !d.dead[i] {
			sum += d.main[i]
		}
	}
	for _, x := range d.delta {
		if x >= lo && x <= hi {
			sum += x
		}
	}
	atomic.AddInt64(&d.stats.ValuesScanned, int64(b-a+len(d.delta)))
	return sum
}

// Insert appends v to the delta buffer, merging first if it is full.
// Returns the physical position of the new row.
func (d *DeltaColumn) Insert(v int64) int {
	atomic.AddInt64(&d.stats.Inserts, 1)
	if len(d.delta) >= d.threshold {
		d.merge()
	}
	d.delta = append(d.delta, v)
	pos := d.mainRegion + len(d.delta) - 1
	d.mover.Grow(d.mainRegion + len(d.delta))
	return pos
}

// Delete removes one live occurrence of v: out of the delta if present
// there, otherwise by tombstoning the main store.
func (d *DeltaColumn) Delete(v int64) error {
	atomic.AddInt64(&d.stats.Deletes, 1)
	for i, x := range d.delta {
		if x == v {
			last := len(d.delta) - 1
			d.delta[i] = d.delta[last]
			d.mover.Move(d.mainRegion+i, d.mainRegion+last)
			d.delta = d.delta[:last]
			return nil
		}
	}
	atomic.AddInt64(&d.stats.ValuesScanned, int64(len(d.delta)))
	for i := d.lowerBound(v); i < len(d.main) && d.main[i] == v; i++ {
		if !d.dead[i] {
			d.dead[i] = true
			d.deadCount++
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrNotFound, v)
}

// Update deletes old and inserts new (out-of-place update handling).
// Returns the new row's physical position.
func (d *DeltaColumn) Update(old, new int64) (int, error) {
	atomic.AddInt64(&d.stats.Updates, 1)
	if err := d.Delete(old); err != nil {
		return 0, fmt.Errorf("update: %w", err)
	}
	d.stats.Deletes-- // counted as an update, not a standalone delete
	d.stats.Inserts--
	return d.Insert(new), nil
}

// merge folds the delta and tombstones into a fresh sorted main store.
func (d *DeltaColumn) merge() {
	atomic.AddInt64(&d.stats.Merges, 1)
	type row struct {
		key int64
		old int // old physical position
	}
	rows := make([]row, 0, len(d.main)-d.deadCount+len(d.delta))
	for i, v := range d.main {
		if !d.dead[i] {
			rows = append(rows, row{v, i})
		}
	}
	for i, v := range d.delta {
		rows = append(rows, row{v, d.mainRegion + i})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	newMain := make([]int64, len(rows))
	perm := make([]int, len(rows))
	for i, r := range rows {
		newMain[i] = r.key
		perm[i] = r.old
	}
	atomic.AddInt64(&d.stats.ValuesMoved, int64(len(rows)))
	d.main = newMain
	d.dead = make([]bool, len(newMain))
	d.deadCount = 0
	d.delta = d.delta[:0]
	d.mainRegion = len(newMain)
	d.mover.Reorder(perm)
}

// Merge forces the pending delta to fold into the main store.
func (d *DeltaColumn) Merge() { d.merge() }

// Snapshot returns all live values in an unspecified order.
func (d *DeltaColumn) Snapshot() []int64 {
	out := make([]int64, 0, d.Len())
	for i, v := range d.main {
		if !d.dead[i] {
			out = append(out, v)
		}
	}
	out = append(out, d.delta...)
	return out
}

// ---------------------------------------------------------------------------
// Position APIs shared with internal/column (used by the table layer)
// ---------------------------------------------------------------------------

// Locate returns the physical position of one occurrence of v in the heap.
func (h *HeapColumn) Locate(v int64) (int, bool) {
	for i, x := range h.vals {
		if x == v {
			return i, true
		}
	}
	return 0, false
}

// RangePositions appends the positions of values in [lo, hi] to buf.
func (h *HeapColumn) RangePositions(lo, hi int64, buf []int) []int {
	atomic.AddInt64(&h.stats.RangeQueries, 1)
	atomic.AddInt64(&h.stats.ValuesScanned, int64(len(h.vals)))
	for i, x := range h.vals {
		if x >= lo && x <= hi {
			buf = append(buf, i)
		}
	}
	return buf
}

// Value returns the key at physical position pos.
func (h *HeapColumn) Value(pos int) int64 { return h.vals[pos] }

// Locate returns the physical position of one occurrence of v.
func (s *SortedColumn) Locate(v int64) (int, bool) {
	pos := s.lowerBound(v)
	if pos < len(s.vals) && s.vals[pos] == v {
		return pos, true
	}
	return 0, false
}

// RangePositions appends the positions of values in [lo, hi] to buf.
func (s *SortedColumn) RangePositions(lo, hi int64, buf []int) []int {
	atomic.AddInt64(&s.stats.RangeQueries, 1)
	if hi < lo {
		return buf
	}
	a := s.lowerBound(lo)
	b := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > hi })
	for i := a; i < b; i++ {
		buf = append(buf, i)
	}
	atomic.AddInt64(&s.stats.ValuesScanned, int64(b-a))
	return buf
}

// Value returns the key at physical position pos.
func (s *SortedColumn) Value(pos int) int64 { return s.vals[pos] }

// Locate returns the physical position of one live occurrence of v,
// checking the delta buffer first and then the main store.
func (d *DeltaColumn) Locate(v int64) (int, bool) {
	for i, x := range d.delta {
		if x == v {
			return d.mainRegion + i, true
		}
	}
	for i := d.lowerBound(v); i < len(d.main) && d.main[i] == v; i++ {
		if !d.dead[i] {
			return i, true
		}
	}
	return 0, false
}

// RangePositions appends the positions of live values in [lo, hi] to buf.
func (d *DeltaColumn) RangePositions(lo, hi int64, buf []int) []int {
	atomic.AddInt64(&d.stats.RangeQueries, 1)
	if hi < lo {
		return buf
	}
	a := d.lowerBound(lo)
	b := sort.Search(len(d.main), func(i int) bool { return d.main[i] > hi })
	for i := a; i < b; i++ {
		if !d.dead[i] {
			buf = append(buf, i)
		}
	}
	for i, x := range d.delta {
		if x >= lo && x <= hi {
			buf = append(buf, d.mainRegion+i)
		}
	}
	atomic.AddInt64(&d.stats.ValuesScanned, int64(b-a+len(d.delta)))
	return buf
}

// Value returns the key at physical position pos (main or delta region).
func (d *DeltaColumn) Value(pos int) int64 {
	if pos >= d.mainRegion {
		return d.delta[pos-d.mainRegion]
	}
	return d.main[pos]
}

// loadStats snapshots the counters with atomic loads.
func loadStats(s *Stats) Stats {
	return Stats{
		PointQueries:  atomic.LoadInt64(&s.PointQueries),
		RangeQueries:  atomic.LoadInt64(&s.RangeQueries),
		Inserts:       atomic.LoadInt64(&s.Inserts),
		Deletes:       atomic.LoadInt64(&s.Deletes),
		Updates:       atomic.LoadInt64(&s.Updates),
		ValuesScanned: atomic.LoadInt64(&s.ValuesScanned),
		ValuesMoved:   atomic.LoadInt64(&s.ValuesMoved),
		Merges:        atomic.LoadInt64(&s.Merges),
	}
}
