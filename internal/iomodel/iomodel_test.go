package iomodel

import (
	"strings"
	"testing"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.RR != 100 || p.RW != 100 {
		t.Errorf("random costs = %v/%v, want 100/100", p.RR, p.RW)
	}
	if got, want := p.RR/p.SR, 14.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("RR/SR ratio = %v, want 14 (paper §4.5)", got)
	}
	if p.BlockBytes != DefaultBlockBytes {
		t.Errorf("block bytes = %d, want %d", p.BlockBytes, DefaultBlockBytes)
	}
}

func TestBlockValues(t *testing.T) {
	tests := []struct {
		blockBytes int
		want       int
	}{
		{16 * 1024, 2048},
		{4096, 512},
		{8, 1},
		{0, 0},
	}
	for _, tc := range tests {
		p := CostParams{BlockBytes: tc.blockBytes}
		if got := p.BlockValues(); got != tc.want {
			t.Errorf("BlockValues(%d) = %d, want %d", tc.blockBytes, got, tc.want)
		}
	}
}

func TestWithBlockBytesScalesSequential(t *testing.T) {
	p := DefaultParams()
	q := p.WithBlockBytes(p.BlockBytes * 2)
	if q.RR != p.RR || q.RW != p.RW {
		t.Errorf("random costs changed: %v -> %v", p, q)
	}
	if got, want := q.SR, 2*p.SR; got != want {
		t.Errorf("SR = %v, want %v", got, want)
	}
	if got, want := q.SW, 2*p.SW; got != want {
		t.Errorf("SW = %v, want %v", got, want)
	}
	if q.BlockBytes != 2*p.BlockBytes {
		t.Errorf("BlockBytes = %d, want %d", q.BlockBytes, 2*p.BlockBytes)
	}
}

func TestWithBlockBytesPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive block size")
		}
	}()
	DefaultParams().WithBlockBytes(0)
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       CostParams
		wantErr bool
	}{
		{"default ok", DefaultParams(), false},
		{"zero RR", CostParams{RW: 1, SR: 1, SW: 1, BlockBytes: 64}, true},
		{"negative SR", CostParams{RR: 1, RW: 1, SR: -1, SW: 1, BlockBytes: 64}, true},
		{"tiny block", CostParams{RR: 1, RW: 1, SR: 1, SW: 1, BlockBytes: 4}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestString(t *testing.T) {
	s := DefaultParams().String()
	for _, want := range []string{"RR=100.0ns", "block=16384B"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestCalibrateProducesUsableParams(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration walks a 64MiB working set")
	}
	p := Calibrate(4096)
	if err := p.Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v", err)
	}
	if p.BlockBytes != 4096 {
		t.Errorf("block bytes = %d, want 4096", p.BlockBytes)
	}
}
