// Package iomodel defines the four-constant block access cost model that
// underlies Casper's layout optimization (§4.4–4.5 of the paper).
//
// Every storage engine operation is decomposed into block accesses of four
// kinds: random read (RR), random write (RW), sequential read (SR), and
// sequential write (SW). The constants are per-block latencies. The paper
// establishes them by micro-benchmarking each deployment; Calibrate does the
// same here, while DefaultParams mirrors the constants reported in §4.5
// (100 ns random access per block, sequential access amortized 14× lower).
package iomodel

import (
	"fmt"
	"time"
)

// DefaultBlockBytes is the block size used throughout the paper's main
// experiments (16 KB blocks over 1M-value chunks, §7).
const DefaultBlockBytes = 16 * 1024

// ValueBytes is the width of a column value. Casper stores columns as
// fixed-width arrays of 8-byte integers (keys) — payloads are 4-byte values
// handled by the table layer.
const ValueBytes = 8

// CostParams holds the calibrated per-block access costs, in nanoseconds,
// together with the block geometry they were measured at.
//
// The zero value is not useful; use DefaultParams or Calibrate.
type CostParams struct {
	RR float64 // random read of one block
	RW float64 // random write of one block
	SR float64 // sequential read of one block
	SW float64 // sequential write of one block

	BlockBytes int // block size in bytes
}

// DefaultParams returns the constants reported in §4.5 of the paper for the
// default block size: 100 ns random read/write per block, with sequential
// access amortized to 1/14 of that.
func DefaultParams() CostParams {
	return CostParams{
		RR:         100,
		RW:         100,
		SR:         100.0 / 14.0,
		SW:         100.0 / 14.0,
		BlockBytes: DefaultBlockBytes,
	}
}

// EngineDefaults returns cost constants matched to this repository's
// storage engine without running a calibration pass: a random single-row
// block access costs ~100 ns (one cache miss chain), and a sequential scan
// of one block costs ~0.45 ns per value. These are the constants the Engine
// uses by default; DefaultParams preserves the paper's reported constants
// for model-level experiments, and Calibrate measures the actual machine.
func EngineDefaults(blockBytes int) CostParams {
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	vals := blockBytes / ValueBytes
	if vals < 1 {
		vals = 1
	}
	seq := 0.45 * float64(vals)
	return CostParams{RR: 100, RW: 100, SR: seq, SW: seq, BlockBytes: blockBytes}
}

// BlockValues returns the number of column values per block.
func (p CostParams) BlockValues() int {
	if p.BlockBytes <= 0 {
		return 0
	}
	return p.BlockBytes / ValueBytes
}

// WithBlockBytes returns a copy of p with the block size replaced and the
// sequential costs rescaled proportionally (block costs scale linearly with
// the number of values per block, while the random components are dominated
// by the first cache miss and stay fixed, matching the paper's model where
// costs are per block of the chosen size).
func (p CostParams) WithBlockBytes(blockBytes int) CostParams {
	if blockBytes <= 0 {
		panic(fmt.Sprintf("iomodel: non-positive block size %d", blockBytes))
	}
	scale := float64(blockBytes) / float64(p.BlockBytes)
	q := p
	q.BlockBytes = blockBytes
	q.SR *= scale
	q.SW *= scale
	return q
}

// Validate reports an error when the parameters are not usable by the cost
// model (non-positive latencies or geometry).
func (p CostParams) Validate() error {
	switch {
	case p.RR <= 0 || p.RW <= 0 || p.SR <= 0 || p.SW <= 0:
		return fmt.Errorf("iomodel: all access costs must be positive, got %+v", p)
	case p.BlockBytes < ValueBytes:
		return fmt.Errorf("iomodel: block size %dB smaller than one value (%dB)", p.BlockBytes, ValueBytes)
	}
	return nil
}

// String implements fmt.Stringer.
func (p CostParams) String() string {
	return fmt.Sprintf("CostParams{RR=%.1fns RW=%.1fns SR=%.2fns SW=%.2fns block=%dB}",
		p.RR, p.RW, p.SR, p.SW, p.BlockBytes)
}

// Calibrate micro-benchmarks in-memory block accesses and returns fitted
// cost constants for the given block size, mirroring §4.5 ("for every
// instance of Casper deployed, we first need to establish these values
// through micro-benchmarking").
//
// The measurement walks a working set much larger than typical caches with a
// pseudo-random block permutation (random costs) and a linear pass
// (sequential costs). Results are per-block nanosecond latencies.
func Calibrate(blockBytes int) CostParams {
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	const setBytes = 64 << 20 // 64 MiB working set
	vals := setBytes / ValueBytes
	perBlock := blockBytes / ValueBytes
	if perBlock == 0 {
		perBlock = 1
	}
	nBlocks := vals / perBlock
	data := make([]int64, vals)
	for i := range data {
		data[i] = int64(i)
	}

	// Pseudo-random block visit order (LCG permutation over blocks).
	order := make([]int, nBlocks)
	x := 12345
	for i := range order {
		x = (x*1103515245 + 12721) % nBlocks
		if x < 0 {
			x += nBlocks
		}
		order[i] = x
	}

	var sink int64

	// Sequential read: one pass over everything.
	start := time.Now()
	for _, v := range data {
		sink += v
	}
	srTotal := time.Since(start)
	sr := float64(srTotal.Nanoseconds()) / float64(nBlocks)

	// Sequential write.
	start = time.Now()
	for i := range data {
		data[i] = int64(i) + sink&1
	}
	swTotal := time.Since(start)
	sw := float64(swTotal.Nanoseconds()) / float64(nBlocks)

	// Random read: touch the first value of each block in permuted order.
	start = time.Now()
	for _, b := range order {
		sink += data[b*perBlock]
	}
	rrTotal := time.Since(start)
	rr := float64(rrTotal.Nanoseconds()) / float64(nBlocks)

	// Random write.
	start = time.Now()
	for _, b := range order {
		data[b*perBlock] = sink
	}
	rwTotal := time.Since(start)
	rw := float64(rwTotal.Nanoseconds()) / float64(nBlocks)

	// Guard against degenerate timings on virtualized clocks.
	const eps = 0.01
	if rr < eps {
		rr = eps
	}
	if rw < eps {
		rw = eps
	}
	if sr < eps {
		sr = eps
	}
	if sw < eps {
		sw = eps
	}
	_ = sink
	return CostParams{RR: rr, RW: rw, SR: sr, SW: sw, BlockBytes: blockBytes}
}
