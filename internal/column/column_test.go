package column

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"casper/internal/costmodel"
)

func sortedKeys(n int, rng *rand.Rand) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(10 * n))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func build(t *testing.T, keys []int64, cfg Config) *Column {
	t.Helper()
	c, err := NewFromSorted(keys, cfg)
	if err != nil {
		t.Fatalf("NewFromSorted: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid after build: %v", err)
	}
	return c
}

func TestBuildBasic(t *testing.T) {
	keys := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{1, 1, 2}},
		BlockValues: 2,
	})
	if c.Partitions() != 3 {
		t.Fatalf("partitions = %d, want 3", c.Partitions())
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
	want := []int{2, 2, 4}
	for j, s := range c.PartitionSizes() {
		if s != want[j] {
			t.Errorf("partition %d size %d, want %d", j, s, want[j])
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := NewFromSorted(nil, Config{}); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := NewFromSorted([]int64{3, 1}, Config{}); err == nil {
		t.Error("unsorted keys accepted")
	}
	if _, err := NewFromSorted([]int64{1}, Config{Layout: costmodel.Layout{Sizes: []int{0}}}); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestDuplicatesStayTogether(t *testing.T) {
	// A boundary falling inside the run of 5s must shift so all 5s share
	// a partition (§4.1).
	keys := []int64{1, 2, 5, 5, 5, 5, 6, 7}
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{2, 2}},
		BlockValues: 2,
	})
	if got := c.PointQuery(5); got != 4 {
		t.Fatalf("PointQuery(5) = %d, want 4", got)
	}
}

func TestPointQuery(t *testing.T) {
	keys := []int64{10, 20, 20, 30, 40, 50, 60, 70}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{2, 2}}, BlockValues: 2})
	tests := []struct {
		v    int64
		want int
	}{
		{10, 1}, {20, 2}, {25, 0}, {70, 1}, {-5, 0}, {999, 0},
	}
	for _, tc := range tests {
		if got := c.PointQuery(tc.v); got != tc.want {
			t.Errorf("PointQuery(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestRangeQueries(t *testing.T) {
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
	}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{2, 3, 1, 4}}, BlockValues: 10})
	tests := []struct {
		lo, hi    int64
		wantCount int
		wantSum   int64
	}{
		{0, 99, 100, 4950},
		{10, 19, 10, 145},
		{25, 74, 50, 2475},
		{99, 99, 1, 99},
		{-10, -1, 0, 0},
		{200, 300, 0, 0},
		{50, 40, 0, 0}, // reversed
	}
	for _, tc := range tests {
		if got := c.RangeCount(tc.lo, tc.hi); got != tc.wantCount {
			t.Errorf("RangeCount(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.wantCount)
		}
		if got := c.RangeSum(tc.lo, tc.hi); got != tc.wantSum {
			t.Errorf("RangeSum(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.wantSum)
		}
	}
	if got := c.FullScanSum(); got != 4950 {
		t.Errorf("FullScanSum = %d, want 4950", got)
	}
}

func TestRangePositions(t *testing.T) {
	keys := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{1, 1}}, BlockValues: 4})
	pos := c.RangePositions(3, 6, nil)
	if len(pos) != 4 {
		t.Fatalf("got %d positions, want 4", len(pos))
	}
	for _, p := range pos {
		v := c.Value(p)
		if v < 3 || v > 6 {
			t.Errorf("position %d holds %d, outside [3,6]", p, v)
		}
	}
}

func TestInsertWithGhostSlotIsLocal(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{1, 1}},
		BlockValues: 4,
		Ghosts:      []int{2, 2},
	})
	before := c.Stats().RippleSteps
	c.Insert(25)
	s := c.Stats()
	if s.RippleSteps != before {
		t.Errorf("ghost insert rippled %d steps, want 0", s.RippleSteps-before)
	}
	if s.GhostHits != 1 {
		t.Errorf("GhostHits = %d, want 1", s.GhostHits)
	}
	if got := c.PointQuery(25); got != 1 {
		t.Errorf("PointQuery(25) = %d after insert", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRipplesWhenPartitionFull(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	// Only the last partition has spare capacity.
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{1, 1, 1, 1}},
		BlockValues: 2,
		Ghosts:      []int{0, 0, 0, 3},
	})
	c.Insert(15) // partition 0: ripple across 3 boundaries
	if got := c.Stats().RippleSteps; got != 3 {
		t.Errorf("RippleSteps = %d, want 3", got)
	}
	if got := c.PointQuery(15); got != 1 {
		t.Errorf("PointQuery(15) = %d", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// All previous values still present.
	for _, v := range keys {
		if got := c.PointQuery(v); got != 1 {
			t.Errorf("lost value %d after ripple insert", v)
		}
	}
}

func TestInsertGrowsWhenFull(t *testing.T) {
	keys := []int64{1, 2, 3, 4}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{1, 1}}, BlockValues: 2, Mode: Dense})
	for v := int64(10); v < 90; v++ {
		c.Insert(v)
	}
	if c.Stats().Growths == 0 {
		t.Error("expected column growth")
	}
	if c.Len() != 84 {
		t.Errorf("len = %d, want 84", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteGhostModeLeavesSlot(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{1, 1}}, BlockValues: 4, Mode: Ghost})
	if err := c.Delete(20); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RippleSteps; got != 0 {
		t.Errorf("ghost delete rippled %d steps, want 0", got)
	}
	if got := c.GhostSlots()[0]; got != 1 {
		t.Errorf("partition 0 ghosts = %d, want 1", got)
	}
	if got := c.PointQuery(20); got != 0 {
		t.Errorf("deleted value still found %d times", got)
	}
	// The slot is reused by the next insert into that partition.
	c.Insert(25)
	if got := c.Stats().GhostHits; got != 1 {
		t.Errorf("GhostHits = %d, want 1", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteDenseModeRipplesToEnd(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{1, 1, 1, 1}}, BlockValues: 2, Mode: Dense})
	if err := c.Delete(10); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RippleSteps; got != 3 {
		t.Errorf("RippleSteps = %d, want 3", got)
	}
	// Hole must end up in the last partition.
	gs := c.GhostSlots()
	for j := 0; j < len(gs)-1; j++ {
		if gs[j] != 0 {
			t.Errorf("partition %d kept a hole in dense mode", j)
		}
	}
	if gs[len(gs)-1] != 1 {
		t.Errorf("last partition ghosts = %d, want 1", gs[len(gs)-1])
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	keys := []int64{1, 2, 3, 4}
	c := build(t, keys, Config{})
	if err := c.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(99) = %v, want ErrNotFound", err)
	}
	if c.Stats().FailedDeletes != 1 {
		t.Error("FailedDeletes not counted")
	}
}

func TestUpdateSamePartitionInPlace(t *testing.T) {
	keys := []int64{10, 20, 30, 40}
	c := build(t, keys, Config{})
	before := c.Stats().RippleSteps
	if _, err := c.Update(20, 25); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RippleSteps != before {
		t.Error("same-partition update should not ripple")
	}
	if c.PointQuery(20) != 0 || c.PointQuery(25) != 1 {
		t.Error("update not applied")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateForwardAndBackward(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{1, 1, 1, 1}}, BlockValues: 2})
	// Forward: partition 0 → partition 3.
	if _, err := c.Update(10, 75); err != nil {
		t.Fatal(err)
	}
	if c.PointQuery(10) != 0 || c.PointQuery(75) != 1 {
		t.Error("forward update lost a value")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Backward: partition 3 → partition 0.
	if _, err := c.Update(80, 15); err != nil {
		t.Fatal(err)
	}
	if c.PointQuery(80) != 0 || c.PointQuery(15) != 1 {
		t.Error("backward update lost a value")
	}
	if c.Len() != 8 {
		t.Errorf("len = %d, want 8", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMissing(t *testing.T) {
	c := build(t, []int64{1, 2, 3}, Config{})
	if _, err := c.Update(9, 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update(9,5) = %v, want ErrNotFound", err)
	}
}

// arrayMover mirrors key movements into a payload array so tests can verify
// rows stay aligned.
type arrayMover struct {
	payload []int64
}

func (m *arrayMover) Move(dst, src int) { m.payload[dst] = m.payload[src] }
func (m *arrayMover) MoveRange(dst, src, n int) {
	copy(m.payload[dst:dst+n], m.payload[src:src+n])
}
func (m *arrayMover) Swap(a, b int) { m.payload[a], m.payload[b] = m.payload[b], m.payload[a] }
func (m *arrayMover) Grow(n int) {
	for len(m.payload) < n {
		m.payload = append(m.payload, 0)
	}
}

func TestPayloadFollowsKeyColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := sortedKeys(64, rng)
	mv := &arrayMover{}
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{2, 2, 2, 2}},
		BlockValues: 8,
		Ghosts:      []int{1, 1, 1, 1},
		Mover:       mv,
	})
	// payload[pos] = key at pos (so alignment is checkable as equality).
	c.PhysicalPositions(func(ord, pos int) { mv.payload[pos] = c.Value(pos) })

	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			v := int64(rng.Intn(640))
			pos := c.Insert(v)
			mv.payload[pos] = v
		case 1:
			v := int64(rng.Intn(640))
			_ = c.Delete(v)
		case 2:
			old, new := int64(rng.Intn(640)), int64(rng.Intn(640))
			if pos, ok := c.Locate(old); ok {
				saved := mv.payload[pos]
				if saved != old {
					t.Fatalf("pre-update misalignment at %d: payload %d, key %d", pos, saved, old)
				}
				newPos, err := c.Update(old, new)
				if err != nil {
					t.Fatal(err)
				}
				mv.payload[newPos] = new
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every live row must have payload == key.
	c.PhysicalPositions(func(ord, pos int) {
		if mv.payload[pos] != c.Value(pos) {
			t.Fatalf("misaligned row at %d: payload %d, key %d", pos, mv.payload[pos], c.Value(pos))
		}
	})
}

// TestRandomOperationsAgainstReference runs long random workloads in both
// modes and cross-checks every query against a sorted-slice reference.
func TestRandomOperationsAgainstReference(t *testing.T) {
	for _, mode := range []Mode{Dense, Ghost} {
		mode := mode
		name := "dense"
		if mode == Ghost {
			name = "ghost"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(mode) + 11))
			keys := sortedKeys(200, rng)
			ghosts := []int{0, 0, 0, 0, 0}
			if mode == Ghost {
				ghosts = []int{2, 2, 2, 2, 2}
			}
			c := build(t, keys, Config{
				Layout:      costmodel.Layout{Sizes: []int{1, 1, 1, 1, 1}},
				BlockValues: 40,
				Ghosts:      ghosts,
				Mode:        mode,
			})
			ref := make([]int64, len(keys))
			copy(ref, keys)

			refCount := func(lo, hi int64) int {
				n := 0
				for _, v := range ref {
					if v >= lo && v <= hi {
						n++
					}
				}
				return n
			}
			refRemove := func(v int64) bool {
				for i, x := range ref {
					if x == v {
						ref[i] = ref[len(ref)-1]
						ref = ref[:len(ref)-1]
						return true
					}
				}
				return false
			}

			for i := 0; i < 3000; i++ {
				switch rng.Intn(5) {
				case 0:
					v := int64(rng.Intn(2200) - 100)
					if got, want := c.PointQuery(v), refCount(v, v); got != want {
						t.Fatalf("op %d: PointQuery(%d) = %d, want %d", i, v, got, want)
					}
				case 1:
					lo := int64(rng.Intn(2200) - 100)
					hi := lo + int64(rng.Intn(500))
					if got, want := c.RangeCount(lo, hi), refCount(lo, hi); got != want {
						t.Fatalf("op %d: RangeCount(%d,%d) = %d, want %d", i, lo, hi, got, want)
					}
				case 2:
					v := int64(rng.Intn(2000))
					c.Insert(v)
					ref = append(ref, v)
				case 3:
					v := int64(rng.Intn(2000))
					err := c.Delete(v)
					if refRemove(v) != (err == nil) {
						t.Fatalf("op %d: Delete(%d) = %v disagrees with reference", i, v, err)
					}
				case 4:
					old := int64(rng.Intn(2000))
					new := int64(rng.Intn(2000))
					_, err := c.Update(old, new)
					if refRemove(old) {
						if err != nil {
							t.Fatalf("op %d: Update(%d,%d) failed: %v", i, old, new, err)
						}
						ref = append(ref, new)
					} else if err == nil {
						t.Fatalf("op %d: Update(%d,%d) succeeded but value absent", i, old, new)
					}
				}
				if i%250 == 0 {
					if err := c.Validate(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			// Final multiset comparison.
			got := c.SortedSnapshot()
			want := make([]int64, len(ref))
			copy(want, ref)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("size %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("multiset diverges at %d: %d vs %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestStatsCounting(t *testing.T) {
	c := build(t, []int64{1, 2, 3, 4}, Config{})
	c.PointQuery(1)
	c.RangeCount(1, 2)
	c.Insert(5)
	_ = c.Delete(1)
	_, _ = c.Update(2, 6)
	s := c.Stats()
	if s.PointQueries != 1 || s.RangeQueries != 1 || s.Inserts != 1 || s.Deletes != 1 || s.Updates != 1 {
		t.Errorf("stats = %+v", s)
	}
	c.ResetStats()
	if c.Stats().PointQueries != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestZonemapSkipsCoveredEdgePartitions(t *testing.T) {
	keys := make([]int64, 40)
	for i := range keys {
		keys[i] = int64(i)
	}
	c := build(t, keys, Config{Layout: costmodel.Layout{Sizes: []int{1, 1, 1, 1}}, BlockValues: 10})
	// [0, 39] covers every partition exactly: all four consumed blindly.
	if got := c.RangeCount(0, 39); got != 40 {
		t.Fatalf("RangeCount = %d, want 40", got)
	}
	s := c.Stats()
	if s.ZonemapSkips != 2 {
		t.Errorf("ZonemapSkips = %d, want 2 (first and last partition)", s.ZonemapSkips)
	}
	if s.ValuesScanned != 0 {
		t.Errorf("ValuesScanned = %d, want 0 (fully covered query)", s.ValuesScanned)
	}
	// A partially covering range must still filter the edges.
	c.ResetStats()
	if got := c.RangeCount(5, 34); got != 30 {
		t.Fatalf("RangeCount = %d, want 30", got)
	}
	if c.Stats().ZonemapSkips != 0 {
		t.Errorf("partial edges must not be skipped")
	}
}

func TestZonemapWidensOnInsertAndStaysConservative(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{1, 1}},
		BlockValues: 4,
		Ghosts:      []int{2, 2},
	})
	c.Insert(5) // below partition 0's previous min
	if err := c.Validate(); err != nil {
		t.Fatal(err) // Validate checks values against zonemap bounds
	}
	if got := c.RangeCount(5, 80); got != 9 {
		t.Fatalf("RangeCount = %d, want 9", got)
	}
	// Deleting the extremes leaves bounds conservative but correct.
	if err := c.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.RangeCount(0, 100); got != 8 {
		t.Fatalf("RangeCount = %d, want 8", got)
	}
	// Refresh restores exact bounds; results unchanged.
	c.RefreshZonemaps()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.RangeCount(0, 100); got != 8 {
		t.Fatalf("RangeCount after refresh = %d, want 8", got)
	}
}

func TestZonemapCorrectUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	keys := sortedKeys(300, rng)
	c := build(t, keys, Config{
		Layout:      costmodel.Layout{Sizes: []int{1, 1, 1, 1, 1, 1}},
		BlockValues: 50,
		Ghosts:      []int{1, 1, 1, 1, 1, 1},
	})
	ref := make([]int64, len(keys))
	copy(ref, keys)
	for i := 0; i < 1500; i++ {
		switch rng.Intn(4) {
		case 0:
			v := int64(rng.Intn(3000))
			c.Insert(v)
			ref = append(ref, v)
		case 1:
			v := int64(rng.Intn(3000))
			if err := c.Delete(v); err == nil {
				for k, x := range ref {
					if x == v {
						ref[k] = ref[len(ref)-1]
						ref = ref[:len(ref)-1]
						break
					}
				}
			}
		case 2:
			if i%3 == 0 {
				c.RefreshZonemaps()
			}
		case 3:
			lo := int64(rng.Intn(3000))
			hi := lo + int64(rng.Intn(1000))
			want := 0
			for _, x := range ref {
				if x >= lo && x <= hi {
					want++
				}
			}
			if got := c.RangeCount(lo, hi); got != want {
				t.Fatalf("op %d: RangeCount(%d,%d) = %d, want %d", i, lo, hi, got, want)
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
