package column

import (
	"sort"
	"testing"

	"casper/internal/costmodel"
)

// FuzzColumnOps drives a partitioned column with an arbitrary byte-encoded
// operation sequence and checks the structural invariants plus multiset
// preservation against a reference. Run with `go test -fuzz=FuzzColumnOps`;
// the seed corpus executes on every ordinary `go test`.
func FuzzColumnOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 2, 30, 3, 40, 4, 50})
	f.Add([]byte{2, 200, 2, 100, 3, 200, 4, 100, 5, 1, 0, 0})
	f.Add([]byte{1, 7, 1, 7, 3, 7, 3, 7, 2, 7})

	f.Fuzz(func(t *testing.T, program []byte) {
		keys := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}
		for _, mode := range []Mode{Dense, Ghost} {
			ghosts := []int{0, 0, 0}
			if mode == Ghost {
				ghosts = []int{1, 1, 1}
			}
			c, err := NewFromSorted(keys, Config{
				Layout:      costmodel.Layout{Sizes: []int{2, 1, 3}},
				BlockValues: 2,
				Ghosts:      ghosts,
				Mode:        mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[int64]int)
			for _, k := range keys {
				ref[k]++
			}

			for i := 0; i+1 < len(program); i += 2 {
				op, arg := program[i]%6, int64(program[i+1])
				switch op {
				case 0:
					want := ref[arg]
					if got := c.PointQuery(arg); got != want {
						t.Fatalf("PointQuery(%d) = %d, want %d", arg, got, want)
					}
				case 1:
					c.Insert(arg)
					ref[arg]++
				case 2:
					err := c.Delete(arg)
					if (err == nil) != (ref[arg] > 0) {
						t.Fatalf("Delete(%d) = %v with refcount %d", arg, err, ref[arg])
					}
					if err == nil {
						ref[arg]--
					}
				case 3:
					newV := arg + 3
					_, err := c.Update(arg, newV)
					if (err == nil) != (ref[arg] > 0) {
						t.Fatalf("Update(%d) = %v with refcount %d", arg, err, ref[arg])
					}
					if err == nil {
						ref[arg]--
						ref[newV]++
					}
				case 4:
					lo, hi := arg-16, arg+16
					want := 0
					for k, n := range ref {
						if k >= lo && k <= hi {
							want += n
						}
					}
					if got := c.RangeCount(lo, hi); got != want {
						t.Fatalf("RangeCount(%d,%d) = %d, want %d", lo, hi, got, want)
					}
				case 5:
					c.RefreshZonemaps()
				}
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			// Multiset comparison.
			snap := c.SortedSnapshot()
			var want []int64
			for k, n := range ref {
				for j := 0; j < n; j++ {
					want = append(want, k)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(snap) != len(want) {
				t.Fatalf("size %d, want %d", len(snap), len(want))
			}
			for i := range snap {
				if snap[i] != want[i] {
					t.Fatalf("multiset diverges at %d: %d vs %d", i, snap[i], want[i])
				}
			}
		}
	})
}
