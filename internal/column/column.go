// Package column implements Casper's range-partitioned column (§2–§3 of the
// paper): a fixed-width in-memory array organized into contiguous range
// partitions with optional per-partition ghost values (empty slots).
//
// The five fundamental access patterns are supported:
//
//   - point queries scan exactly the owning partition (Fig. 3b),
//   - range queries filter the first and last partitions and blindly
//     consume the interior ones (Fig. 3c),
//   - inserts use the ripple-insert algorithm, touching one slot per
//     trailing partition (Fig. 4a) — or a single slot when the target
//     partition has a free ghost value,
//   - deletes swap the victim to the end of its partition and either leave
//     the hole as a ghost value or ripple it to the end of the column
//     (Fig. 4b),
//   - updates ripple the hole directly from the source to the target
//     partition, forward or backward (§3).
//
// Payload columns follow the key column through a RowMover callback, so a
// table's columns stay positionally aligned.
package column

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"casper/internal/costmodel"
	"casper/internal/pindex"
)

// RowMover receives every physical row movement of the key column so that
// payload columns (and any positional metadata) can mirror it.
type RowMover interface {
	// Move copies the row at src over the row at dst. The src row becomes
	// dead.
	Move(dst, src int)
	// MoveRange copies n consecutive rows from src to dst (memmove
	// semantics: the regions may overlap).
	MoveRange(dst, src, n int)
	// Swap exchanges the rows at a and b.
	Swap(a, b int)
	// Grow extends the physical row storage to at least n rows.
	Grow(n int)
}

// NopMover ignores all movements; used for key-only columns.
type NopMover struct{}

func (NopMover) Move(dst, src int)         {}
func (NopMover) MoveRange(dst, src, n int) {}
func (NopMover) Swap(a, b int)             {}
func (NopMover) Grow(n int)                {}

// Mode selects how the column maintains density (Table 1's buffering axis).
type Mode int

const (
	// Dense keeps partitions packed: deletes ripple holes to the end of
	// the column and inserts pull free slots from the end ("none"
	// buffering with in-place ripple updates).
	Dense Mode = iota
	// Ghost keeps per-partition empty slots: deletes create them locally
	// and inserts consume them, rippling only between the nearest
	// partition with spare capacity ("per-partition" buffering).
	Ghost
)

// Stats counts the physical work performed, used by the experiment harness.
type Stats struct {
	PointQueries  int64
	RangeQueries  int64
	Inserts       int64
	Deletes       int64
	Updates       int64
	RippleSteps   int64 // slot transfers across partition boundaries
	GhostHits     int64 // inserts/updates absorbed by a local ghost slot
	ValuesScanned int64
	Growths       int64
	FailedDeletes int64
	FailedUpdates int64
	ZonemapSkips  int64 // edge partitions consumed without filtering (§6.3)
}

// partition is a contiguous region of the physical array. Live values
// occupy [start, start+n); ghost slots occupy [start+n, start+cap).
type partition struct {
	start int
	n     int
	cap   int
	// Conservative zonemap bounds over the live values (§6.3: per-
	// partition min/max metadata). Writes widen them; RefreshZonemaps
	// recomputes them exactly. Meaningless when n == 0.
	min, max int64
}

// covered reports whether every live value of p is guaranteed inside
// [lo, hi]; such partitions are consumed blindly without evaluating the
// predicate per value (the Zonemap shortcut of §6.3).
func (p *partition) covered(lo, hi int64) bool {
	return p.n > 0 && p.min >= lo && p.max <= hi
}

// Column is a range-partitioned column of int64 keys.
type Column struct {
	vals  []int64
	parts []partition
	index *pindex.Index
	mover RowMover
	mode  Mode
	size  int
	stats Stats
}

// Config controls construction.
type Config struct {
	// Layout gives partition widths in blocks; BlockValues converts them
	// to value counts. If Layout is empty the column is one partition.
	Layout      costmodel.Layout
	BlockValues int
	// Ghosts gives the initial ghost slots per partition; its length must
	// match the partition count (or be nil for none). Implies Mode Ghost
	// when any entry is non-zero.
	Ghosts []int
	Mode   Mode
	Mover  RowMover
	// IndexFanout overrides the partition index arity (0 = default).
	IndexFanout int
}

// ErrNotFound is returned by operations targeting a value that is absent.
var ErrNotFound = errors.New("column: value not found")

// NewFromSorted builds a partitioned column from keys sorted ascending.
// Partition boundaries derive from the layout's block widths; boundaries
// falling inside a run of duplicate keys are advanced so equal values stay
// in one partition (§4.1: "duplicate values should be in the same
// partition").
func NewFromSorted(keys []int64, cfg Config) (*Column, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("column: empty key set")
	}
	for i := 1; i < n; i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("column: keys not sorted at %d", i)
		}
	}
	if cfg.Mover == nil {
		cfg.Mover = NopMover{}
	}
	bv := cfg.BlockValues
	if bv <= 0 {
		bv = 1
	}
	layout := cfg.Layout
	if len(layout.Sizes) == 0 {
		layout = costmodel.Layout{Sizes: []int{(n + bv - 1) / bv}}
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}

	// Convert block widths to value cut points, respecting duplicates.
	cuts := make([]int, 0, layout.Partitions())
	pos := 0
	for j, s := range layout.Sizes {
		pos += s * bv
		if pos >= n || j == layout.Partitions()-1 {
			pos = n
		} else {
			for pos < n && keys[pos] == keys[pos-1] {
				pos++
			}
		}
		cuts = append(cuts, pos)
		if pos == n {
			break
		}
	}
	if cuts[len(cuts)-1] != n {
		cuts = append(cuts, n)
	}
	// Drop empty partitions produced by duplicate adjustment.
	dedup := cuts[:0]
	prev := 0
	for _, c := range cuts {
		if c > prev {
			dedup = append(dedup, c)
			prev = c
		}
	}
	cuts = dedup

	k := len(cuts)
	ghosts := cfg.Ghosts
	if ghosts == nil {
		ghosts = make([]int, k)
	}
	if len(ghosts) < k {
		g := make([]int, k)
		copy(g, ghosts)
		ghosts = g
	}
	mode := cfg.Mode
	for _, g := range ghosts {
		if g > 0 {
			mode = Ghost
			break
		}
	}

	totalCap := n
	for j := 0; j < k; j++ {
		totalCap += ghosts[j]
	}
	c := &Column{
		vals:  make([]int64, totalCap),
		parts: make([]partition, k),
		mover: cfg.Mover,
		mode:  mode,
		size:  n,
	}
	c.mover.Grow(totalCap)
	seps := make([]int64, 0, k-1)
	start, lo := 0, 0
	for j := 0; j < k; j++ {
		hi := cuts[j]
		p := &c.parts[j]
		p.start = start
		p.n = hi - lo
		p.cap = p.n + ghosts[j]
		copy(c.vals[p.start:p.start+p.n], keys[lo:hi])
		p.min, p.max = keys[lo], keys[hi-1]
		// Payload rows are loaded positionally by the caller before any
		// mutation; the identity placement here needs no mover calls
		// beyond alignment of the ghost gaps, which the caller handles by
		// loading payloads at the same physical positions (PhysicalPos).
		if j > 0 {
			seps = append(seps, keys[lo])
		}
		start += p.cap
		lo = hi
	}
	c.index = pindex.New(seps, cfg.IndexFanout)
	return c, nil
}

// Partitions returns the partition count k.
func (c *Column) Partitions() int { return len(c.parts) }

// Len returns the number of live values.
func (c *Column) Len() int { return c.size }

// Cap returns the number of physical slots (live + ghost + nothing else).
func (c *Column) Cap() int { return len(c.vals) }

// Stats returns a copy of the operation counters. Counters are maintained
// with atomic adds so concurrent readers (which share a chunk read-lock)
// can update them safely.
func (c *Column) Stats() Stats {
	return Stats{
		PointQueries:  atomic.LoadInt64(&c.stats.PointQueries),
		RangeQueries:  atomic.LoadInt64(&c.stats.RangeQueries),
		Inserts:       atomic.LoadInt64(&c.stats.Inserts),
		Deletes:       atomic.LoadInt64(&c.stats.Deletes),
		Updates:       atomic.LoadInt64(&c.stats.Updates),
		RippleSteps:   atomic.LoadInt64(&c.stats.RippleSteps),
		GhostHits:     atomic.LoadInt64(&c.stats.GhostHits),
		ValuesScanned: atomic.LoadInt64(&c.stats.ValuesScanned),
		Growths:       atomic.LoadInt64(&c.stats.Growths),
		FailedDeletes: atomic.LoadInt64(&c.stats.FailedDeletes),
		FailedUpdates: atomic.LoadInt64(&c.stats.FailedUpdates),
		ZonemapSkips:  atomic.LoadInt64(&c.stats.ZonemapSkips),
	}
}

// ResetStats zeroes the counters.
func (c *Column) ResetStats() { c.stats = Stats{} }

// PartitionSizes returns the live value count of each partition.
func (c *Column) PartitionSizes() []int {
	out := make([]int, len(c.parts))
	for j := range c.parts {
		out[j] = c.parts[j].n
	}
	return out
}

// GhostSlots returns the free ghost slots of each partition.
func (c *Column) GhostSlots() []int {
	out := make([]int, len(c.parts))
	for j := range c.parts {
		out[j] = c.parts[j].cap - c.parts[j].n
	}
	return out
}

// PhysicalPositions calls fn(pos) for every live physical slot in value
// order of partitions; used by the table layer to load payload rows aligned
// with the key column at construction time.
func (c *Column) PhysicalPositions(fn func(ordinal, pos int)) {
	ord := 0
	for j := range c.parts {
		p := &c.parts[j]
		for i := p.start; i < p.start+p.n; i++ {
			fn(ord, i)
			ord++
		}
	}
}

// FindPartition returns the partition ordinal that owns value v.
func (c *Column) FindPartition(v int64) int { return c.index.Find(v) }

// PointQuery returns the number of live occurrences of v, scanning exactly
// the owning partition with a tight loop (Fig. 3b).
func (c *Column) PointQuery(v int64) int {
	atomic.AddInt64(&c.stats.PointQueries, 1)
	p := &c.parts[c.index.Find(v)]
	count := 0
	for _, x := range c.vals[p.start : p.start+p.n] {
		if x == v {
			count++
		}
	}
	atomic.AddInt64(&c.stats.ValuesScanned, int64(p.n))
	return count
}

// Locate returns the physical position of one live occurrence of v.
func (c *Column) Locate(v int64) (int, bool) {
	p := &c.parts[c.index.Find(v)]
	for i := p.start; i < p.start+p.n; i++ {
		if c.vals[i] == v {
			return i, true
		}
	}
	return 0, false
}

// Value returns the key stored at physical position pos.
func (c *Column) Value(pos int) int64 { return c.vals[pos] }

// RangeCount returns the number of live values in [lo, hi] inclusive.
// Interior partitions are counted without scanning (their live counts are
// known); only the first and last partitions are filtered (Fig. 3c).
func (c *Column) RangeCount(lo, hi int64) int {
	atomic.AddInt64(&c.stats.RangeQueries, 1)
	if hi < lo {
		return 0
	}
	first, last := c.index.Range(lo, hi)
	count := 0
	for j := first; j <= last; j++ {
		p := &c.parts[j]
		if (j != first && j != last) || p.covered(lo, hi) {
			if j == first || j == last {
				atomic.AddInt64(&c.stats.ZonemapSkips, 1)
			}
			count += p.n
			continue
		}
		for _, x := range c.vals[p.start : p.start+p.n] {
			if x >= lo && x <= hi {
				count++
			}
		}
		atomic.AddInt64(&c.stats.ValuesScanned, int64(p.n))
	}
	return count
}

// RangeSum returns the sum of live values in [lo, hi]. Interior partitions
// are consumed with a tight sequential loop (all their values qualify).
func (c *Column) RangeSum(lo, hi int64) int64 {
	atomic.AddInt64(&c.stats.RangeQueries, 1)
	if hi < lo {
		return 0
	}
	first, last := c.index.Range(lo, hi)
	var sum int64
	for j := first; j <= last; j++ {
		p := &c.parts[j]
		vals := c.vals[p.start : p.start+p.n]
		if (j != first && j != last) || p.covered(lo, hi) {
			if j == first || j == last {
				atomic.AddInt64(&c.stats.ZonemapSkips, 1)
			}
			for _, x := range vals {
				sum += x
			}
		} else {
			for _, x := range vals {
				if x >= lo && x <= hi {
					sum += x
				}
			}
		}
		atomic.AddInt64(&c.stats.ValuesScanned, int64(p.n))
	}
	return sum
}

// RangePositions appends the physical positions of live values in [lo, hi]
// to buf and returns it; the select-operator API that returns qualifying
// positions to downstream operators (§3).
func (c *Column) RangePositions(lo, hi int64, buf []int) []int {
	atomic.AddInt64(&c.stats.RangeQueries, 1)
	if hi < lo {
		return buf
	}
	first, last := c.index.Range(lo, hi)
	for j := first; j <= last; j++ {
		p := &c.parts[j]
		if (j != first && j != last) || p.covered(lo, hi) {
			if j == first || j == last {
				atomic.AddInt64(&c.stats.ZonemapSkips, 1)
			}
			for i := p.start; i < p.start+p.n; i++ {
				buf = append(buf, i)
			}
		} else {
			for i := p.start; i < p.start+p.n; i++ {
				if x := c.vals[i]; x >= lo && x <= hi {
					buf = append(buf, i)
				}
			}
		}
		atomic.AddInt64(&c.stats.ValuesScanned, int64(p.n))
	}
	return buf
}

// FullScanSum sums every live value; the full-column scan API call.
func (c *Column) FullScanSum() int64 {
	var sum int64
	for j := range c.parts {
		p := &c.parts[j]
		for _, x := range c.vals[p.start : p.start+p.n] {
			sum += x
		}
		atomic.AddInt64(&c.stats.ValuesScanned, int64(p.n))
	}
	return sum
}

// widen grows partition j's zonemap to cover v.
func (c *Column) widen(j int, v int64) {
	p := &c.parts[j]
	if p.n == 0 || v < p.min {
		p.min = v
	}
	if p.n == 0 || v > p.max {
		p.max = v
	}
}

// Insert adds v, returning the physical slot the new row occupies. The
// caller writes the payload row at that position afterwards.
func (c *Column) Insert(v int64) int {
	atomic.AddInt64(&c.stats.Inserts, 1)
	j := c.index.Find(v)
	p := &c.parts[j]
	if p.n < p.cap {
		// Ghost (or tail) slot available locally: a single write.
		if c.mode == Ghost {
			atomic.AddInt64(&c.stats.GhostHits, 1)
		}
		c.widen(j, v)
		pos := p.start + p.n
		c.vals[pos] = v
		p.n++
		c.size++
		return pos
	}
	// Ripple a free slot to the end of partition j from the nearest
	// partition with spare capacity (the end of the column in Dense mode).
	h := c.nearestSpare(j)
	if h < 0 {
		c.grow()
		h = len(c.parts) - 1
		if h == j {
			c.widen(j, v)
			pos := p.start + p.n
			c.vals[pos] = v
			p.n++
			c.size++
			return pos
		}
	}
	if h > j {
		c.rippleHoleBackward(h, j)
	} else if h < j {
		c.rippleHoleForward(h, j)
	}
	c.widen(j, v)
	pos := p.start + p.n
	c.vals[pos] = v
	p.n++
	c.size++
	return pos
}

// Delete removes one live occurrence of v. In Ghost mode the freed slot
// stays in the partition as a ghost value; in Dense mode it ripples to the
// end of the column (Fig. 4b). Returns the physical position the victim row
// occupied at removal time (after the swap-to-end), or ErrNotFound.
func (c *Column) Delete(v int64) error {
	atomic.AddInt64(&c.stats.Deletes, 1)
	j := c.index.Find(v)
	p := &c.parts[j]
	found := -1
	for i := p.start; i < p.start+p.n; i++ {
		if c.vals[i] == v {
			found = i
			break
		}
	}
	atomic.AddInt64(&c.stats.ValuesScanned, int64(p.n))
	if found < 0 {
		atomic.AddInt64(&c.stats.FailedDeletes, 1)
		return fmt.Errorf("%w: %d", ErrNotFound, v)
	}
	c.removeAt(j, found)
	if c.mode == Dense {
		c.rippleHoleToEnd(j)
	}
	return nil
}

// removeAt swaps the live row at pos to the end of partition j and shrinks
// the partition, leaving a free slot at its end.
func (c *Column) removeAt(j, pos int) {
	p := &c.parts[j]
	last := p.start + p.n - 1
	if pos != last {
		c.vals[pos] = c.vals[last]
		c.mover.Move(pos, last)
	}
	p.n--
	c.size--
}

// Update changes one live occurrence of old to new, preserving the row's
// payload. It performs a point query for the source partition and then a
// direct ripple toward the target partition (§3, Fig. 7f/7g). The returned
// position is the row's new physical slot.
//
// The payload is preserved by the table layer: callers that carry payloads
// must snapshot the old row before calling Update and rewrite it at the
// returned position (see table.Table.UpdateKey).
func (c *Column) Update(old, new int64) (int, error) {
	atomic.AddInt64(&c.stats.Updates, 1)
	i := c.index.Find(old)
	j := c.index.Find(new)
	src := &c.parts[i]
	found := -1
	for pos := src.start; pos < src.start+src.n; pos++ {
		if c.vals[pos] == old {
			found = pos
			break
		}
	}
	atomic.AddInt64(&c.stats.ValuesScanned, int64(src.n))
	if found < 0 {
		atomic.AddInt64(&c.stats.FailedUpdates, 1)
		return 0, fmt.Errorf("%w: %d", ErrNotFound, old)
	}
	if i == j {
		// Same partition: overwrite in place.
		c.vals[found] = new
		c.widen(j, new)
		return found, nil
	}
	// Delete from i (hole at end of partition i), ripple hole to j,
	// insert new at end of j.
	c.removeAt(i, found)
	if j > i {
		c.rippleHoleForward(i, j)
	} else {
		c.rippleHoleBackward(i, j)
	}
	c.widen(j, new)
	dst := &c.parts[j]
	pos := dst.start + dst.n
	c.vals[pos] = new
	dst.n++
	c.size++
	return pos, nil
}

// nearestSpare returns the partition closest to j with a free slot,
// preferring trailing partitions on ties (the paper ripples from the end of
// the column); −1 when the column is completely full.
func (c *Column) nearestSpare(j int) int {
	k := len(c.parts)
	for d := 1; d < k; d++ {
		if t := j + d; t < k && c.parts[t].cap > c.parts[t].n {
			return t
		}
		if t := j - d; t >= 0 && c.parts[t].cap > c.parts[t].n {
			return t
		}
	}
	return -1
}

// rippleHoleBackward transfers one free slot from partition h to the end of
// partition j, h > j: at every step the first live value of a partition
// moves into that partition's free end slot, and the freed front slot is
// handed to the preceding partition (Fig. 4a read right-to-left).
func (c *Column) rippleHoleBackward(h, j int) {
	for t := h; t > j; t-- {
		p := &c.parts[t]
		if p.n > 0 {
			dst, src := p.start+p.n, p.start
			c.vals[dst] = c.vals[src]
			c.mover.Move(dst, src)
		}
		p.start++
		p.cap--
		c.parts[t-1].cap++
		atomic.AddInt64(&c.stats.RippleSteps, 1)
	}
}

// rippleHoleForward transfers one free slot from partition h to the end of
// partition j, h < j: at every step the last live value of a partition
// moves into the free slot just before the partition, and the partition's
// region shifts left, leaving the free slot at its end.
func (c *Column) rippleHoleForward(h, j int) {
	for t := h + 1; t <= j; t++ {
		p := &c.parts[t]
		c.parts[t-1].cap--
		p.start--
		p.cap++
		if p.n > 0 {
			dst, src := p.start, p.start+p.n
			c.vals[dst] = c.vals[src]
			c.mover.Move(dst, src)
		}
		atomic.AddInt64(&c.stats.RippleSteps, 1)
	}
}

// rippleHoleToEnd pushes the free slot at the end of partition j to the end
// of the column (Dense-mode deletes, Fig. 4b).
func (c *Column) rippleHoleToEnd(j int) {
	c.rippleHoleForward(j, len(c.parts)-1)
}

// grow extends the column with a batch of free slots appended to the last
// partition.
func (c *Column) grow() {
	const batch = 64
	atomic.AddInt64(&c.stats.Growths, 1)
	c.vals = append(c.vals, make([]int64, batch)...)
	c.mover.Grow(len(c.vals))
	c.parts[len(c.parts)-1].cap += batch
}

// RefreshZonemaps recomputes every partition's min/max exactly. Deletes
// leave the bounds conservative (never narrowed); a periodic refresh
// restores tightness, as Zonemap maintenance does in practice (§6.3).
func (c *Column) RefreshZonemaps() {
	for j := range c.parts {
		p := &c.parts[j]
		if p.n == 0 {
			continue
		}
		p.min, p.max = c.vals[p.start], c.vals[p.start]
		for _, x := range c.vals[p.start+1 : p.start+p.n] {
			if x < p.min {
				p.min = x
			}
			if x > p.max {
				p.max = x
			}
		}
	}
}

// Validate checks the structural invariants; tests call it after random
// operation sequences.
func (c *Column) Validate() error {
	pos := 0
	total := 0
	for j := range c.parts {
		p := &c.parts[j]
		if p.start != pos {
			return fmt.Errorf("partition %d starts at %d, want %d", j, p.start, pos)
		}
		if p.n < 0 || p.n > p.cap {
			return fmt.Errorf("partition %d has n=%d cap=%d", j, p.n, p.cap)
		}
		pos += p.cap
		total += p.n
		// Every live value must route back to this partition and sit
		// inside its (conservative) zonemap bounds.
		for i := p.start; i < p.start+p.n; i++ {
			if owner := c.index.Find(c.vals[i]); owner != j {
				return fmt.Errorf("value %d at slot %d sits in partition %d but routes to %d",
					c.vals[i], i, j, owner)
			}
			if c.vals[i] < p.min || c.vals[i] > p.max {
				return fmt.Errorf("value %d at slot %d outside zonemap [%d,%d] of partition %d",
					c.vals[i], i, p.min, p.max, j)
			}
		}
	}
	if pos != len(c.vals) {
		return fmt.Errorf("partitions cover %d slots, column has %d", pos, len(c.vals))
	}
	if total != c.size {
		return fmt.Errorf("live count %d != size %d", total, c.size)
	}
	return nil
}

// Snapshot returns all live values in an unspecified order; tests use it to
// compare multisets.
func (c *Column) Snapshot() []int64 {
	out := make([]int64, 0, c.size)
	for j := range c.parts {
		p := &c.parts[j]
		out = append(out, c.vals[p.start:p.start+p.n]...)
	}
	return out
}

// SortedSnapshot returns all live values sorted ascending.
func (c *Column) SortedSnapshot() []int64 {
	out := c.Snapshot()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
