package wal

// Error-path coverage: segment-collision refusal, rotate-failure state
// invalidation, fsync-error stickiness, flush-loop shutdown durability, and
// replay over an empty final segment.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestOpenLogRefusesExistingSegment: a seq collision must fail loudly, never
// truncate the durable records already in the segment.
func TestOpenLogRefusesExistingSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := OpenLog(dir, 1, Options{Policy: SyncNone}); err == nil {
		t.Fatalf("OpenLog over existing segment succeeded; want error")
	}

	got, lastSeq, err := ReplaySegments(dir, 1)
	if err != nil {
		t.Fatalf("ReplaySegments: %v", err)
	}
	if lastSeq != 1 || !reflect.DeepEqual(got, want) {
		t.Fatalf("records damaged by refused OpenLog: lastSeq=%d got %+v", lastSeq, got)
	}
}

// TestRotateFailureInvalidatesLog: when Rotate closes the old segment but
// cannot create the next one, the log must invalidate its handle and surface
// the rotate error from every later call — not "file already closed", and
// never a nil dereference.
func TestRotateFailureInvalidatesLog(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "wal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if _, err := l.Append(testRecords()[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Removing the directory makes createSegment(next) fail after the old
	// segment has already been fsynced and closed — exactly the post-close
	// failure window.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatalf("Rotate with removed directory succeeded; want error")
	} else if !strings.Contains(err.Error(), "rotate open") {
		t.Fatalf("Rotate error = %v; want the rotate open failure", err)
	}
	rerr := l.Err()
	if rerr == nil {
		t.Fatalf("sticky error not set after failed Rotate")
	}
	if _, err := l.Append(testRecords()[1]); err != rerr {
		t.Fatalf("Append after failed Rotate = %v; want sticky %v", err, rerr)
	}
	if err := l.Sync(); err != rerr {
		t.Fatalf("Sync after failed Rotate = %v; want sticky %v", err, rerr)
	}
	if _, err := l.Rotate(); err != rerr {
		t.Fatalf("second Rotate = %v; want sticky %v", err, rerr)
	}
	if err := l.Close(); err != rerr {
		t.Fatalf("Close after failed Rotate = %v; want sticky %v", err, rerr)
	}
}

// TestFsyncErrorSticky: a failed fsync must poison the log — Sync, Commit,
// and Append all return the same sticky error ever after, so no caller can
// mistake a log with un-durable data for a healthy one.
func TestFsyncErrorSticky(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	lsn, err := l.Append(testRecords()[0])
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	lsn, err = l.Append(testRecords()[1])
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Close the descriptor underneath the log: the next fsync fails (EBADF).
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()

	serr := l.Sync()
	if serr == nil {
		t.Fatalf("Sync on closed descriptor succeeded; want error")
	}
	if got := l.Err(); got != serr {
		t.Fatalf("Err() = %v; want sticky %v", got, serr)
	}
	if err := l.Commit(lsn); err != serr {
		t.Fatalf("Commit after fsync failure = %v; want sticky %v", err, serr)
	}
	if _, err := l.Append(testRecords()[2]); err != serr {
		t.Fatalf("Append after fsync failure = %v; want sticky %v", err, serr)
	}
	if err := l.Sync(); err != serr {
		t.Fatalf("second Sync = %v; want sticky %v", err, serr)
	}
}

// TestCloseFlushesUnsynced: under SyncInterval with a long interval, commits
// never trigger an fsync — Close is what makes the tail durable, and must.
func TestCloseFlushesUnsynced(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want)
	if off := l.DurableOffset(); off != 0 {
		t.Fatalf("DurableOffset before Close = %d; want 0 (interval not due)", off)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _, err := ReplaySegments(dir, 1)
	if err != nil {
		t.Fatalf("ReplaySegments: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records lost across flush-loop shutdown:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReplayEmptyFinalSegment: a zero-byte final segment (created by a crash
// between Rotate's create and the first append) is not corruption.
func TestReplayEmptyFinalSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, lastSeq, err := ReplaySegments(dir, 1)
	if err != nil {
		t.Fatalf("ReplaySegments with empty final segment: %v", err)
	}
	if lastSeq != 2 {
		t.Fatalf("lastSeq = %d; want 2", lastSeq)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}
