package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testRecords() []Record {
	return []Record{
		{Kind: RecInsert, Epoch: 1, Key: 42},
		{Kind: RecInsertRow, Epoch: 1, Key: 7, Row: []int32{1, 2, 3}},
		{Kind: RecDelete, Epoch: 2, Key: 42, Row: []int32{42, 43, 44}},
		{Kind: RecUpdate, Epoch: 3, Key: 7, Key2: 9, Row: []int32{1, 2, 3}},
		{Kind: RecMoveOut, Epoch: 4, MoveID: 11, Key: 9, Key2: 100, Row: []int32{1, 2, 3}},
		{Kind: RecMoveIn, Epoch: 4, MoveID: 11, Key: 9, Key2: 100, Row: []int32{1, 2, 3}},
		{Kind: RecInsertRow, Epoch: 5, Key: -8, Row: nil},
	}
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		dir := t.TempDir()
		l, err := OpenLog(dir, 1, Options{Policy: policy})
		if err != nil {
			t.Fatalf("OpenLog: %v", err)
		}
		want := testRecords()
		appendAll(t, l, want)
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		got, lastSeq, err := ReplaySegments(dir, 1)
		if err != nil {
			t.Fatalf("ReplaySegments: %v", err)
		}
		if lastSeq != 1 {
			t.Fatalf("lastSeq = %d, want 1", lastSeq)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %v: replay mismatch:\ngot  %+v\nwant %+v", policy, got, want)
		}
	}
}

// TestTornTail truncates the segment at every byte boundary inside the final
// record and checks that replay returns exactly the preceding records and
// repairs the file back to its valid prefix.
func TestTornTail(t *testing.T) {
	base := t.TempDir()
	l, err := OpenLog(base, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want)
	l.Close()
	seg := filepath.Join(base, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Find the byte offset of every record boundary by re-parsing.
	_, validLen, torn, err := readSegment(seg)
	if err != nil || torn {
		t.Fatalf("intact segment parsed torn=%v err=%v", torn, err)
	}
	if validLen != int64(len(full)) {
		t.Fatalf("valid prefix %d != file size %d", validLen, len(full))
	}

	// Chop the file anywhere strictly inside it and replay from a copy.
	for cut := 1; cut < len(full); cut += 7 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, err := ReplaySegments(dir, 1)
		if err != nil {
			t.Fatalf("cut %d: ReplaySegments: %v", cut, err)
		}
		if len(got) >= len(want) {
			t.Fatalf("cut %d: got %d records from a truncated file of %d", cut, len(got), len(want))
		}
		for i, r := range got {
			if !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
		// The torn tail must have been trimmed so a second replay (e.g.
		// after more appends) sees no mid-file corruption.
		st, err := os.Stat(filepath.Join(dir, segmentName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, torn, _ := readSegment(filepath.Join(dir, segmentName(1))); torn {
			t.Fatalf("cut %d: tail not repaired (size %d)", cut, st.Size())
		}
	}
}

func TestCorruptTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	appendAll(t, l, want)
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	data, _ := os.ReadFile(seg)
	data[len(data)-1] ^= 0xff // flip a bit in the last record's payload
	os.WriteFile(seg, data, 0o644)
	got, _, err := ReplaySegments(dir, 1)
	if err != nil {
		t.Fatalf("ReplaySegments: %v", err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("got %d records, want %d (corrupt final dropped)", len(got), len(want)-1)
	}
}

func TestRotateAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	appendAll(t, l, recs[:3])
	seq, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if seq != 2 {
		t.Fatalf("Rotate seq = %d, want 2", seq)
	}
	appendAll(t, l, recs[3:])
	l.Close()

	got, lastSeq, err := ReplaySegments(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 2 || !reflect.DeepEqual(got, recs) {
		t.Fatalf("full replay: lastSeq=%d records=%d (want 2, %d)", lastSeq, len(got), len(recs))
	}
	// Replaying from the rotation boundary yields only the tail — the
	// checkpoint-cut contract.
	tail, _, err := ReplaySegments(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail, recs[3:]) {
		t.Fatalf("tail replay mismatch: %+v", tail)
	}
}

// TestGroupCommitConcurrent hammers Append+Commit from several goroutines
// under SyncAlways; every record must survive. Writers run independent hot
// loops (no ping-pong), safe for single-CPU runners.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := l.Append(Record{Kind: RecInsert, Key: int64(w*1000 + i)})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	got, _, err := ReplaySegments(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	seen := map[int64]bool{}
	for _, r := range got {
		seen[r.Key] = true
	}
	if len(seen) != writers*each {
		t.Fatalf("lost or duplicated keys: %d unique of %d", len(seen), writers*each)
	}
}

func TestSyncIntervalCommitIsLazy(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Record{Kind: RecInsert, Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	l.mu.Lock()
	synced := l.syncLSN
	l.mu.Unlock()
	if synced != 0 {
		t.Fatalf("interval commit fsynced eagerly (syncLSN=%d)", synced)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	synced = l.syncLSN
	l.mu.Unlock()
	if synced != lsn {
		t.Fatalf("Sync did not cover lsn %d (syncLSN=%d)", lsn, synced)
	}
	l.Close()
}
