package wal

// Segment tailing: the concurrent read mode behind WAL-shipping
// replication. A Tailer incrementally reads one shard's segment chain while
// the owning Log keeps appending, distinguishing "incomplete frame, more may
// come" from torn-tail corruption and following Rotate boundaries by
// watching for the next segment file. See the package comment's "Segment
// tailing" section for the visibility contract it relies on.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"encoding/binary"
)

// ErrSegmentGone reports that the segment the tailer must read next was
// pruned by a checkpoint before the tailer could open it. The reader's only
// recovery is a full re-bootstrap from the newest checkpoint, which — having
// pruned the segment — covers everything it contained.
var ErrSegmentGone = errors.New("wal: tailed segment pruned by a checkpoint")

// IsSegmentGone reports whether err wraps ErrSegmentGone.
func IsSegmentGone(err error) bool { return errors.Is(err, ErrSegmentGone) }

// Tailer incrementally reads the segments of one WAL directory, concurrently
// with the writing Log. Poll returns the complete records appended since the
// previous Poll; an incomplete or CRC-bad frame at the tail of the newest
// segment is treated as in-flight data (re-poll), not corruption, unless the
// next segment already exists — Rotate finalizes a segment before creating
// its successor, so a bad tail that persists past a rotation is real.
//
// The tailer keeps the current segment's file handle open, so a checkpoint
// pruning (unlinking) it mid-read is harmless; only a segment pruned before
// the tailer reached it surfaces as ErrSegmentGone. Not safe for concurrent
// use by multiple goroutines.
type Tailer struct {
	dir string
	seq uint64   // segment currently being read
	f   *os.File // nil until the segment exists
	off int64    // parse offset: end of the last complete frame
}

// OpenTailer starts tailing dir at segment fromSeq (typically a checkpoint's
// WALSeq). The segment need not exist yet; Poll waits for it — unless later
// segments already exist without it, which means it was pruned
// (ErrSegmentGone).
func OpenTailer(dir string, fromSeq uint64) (*Tailer, error) {
	if fromSeq < 1 {
		fromSeq = 1
	}
	if _, err := os.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("wal: tailing %s: %w", dir, err)
	}
	return &Tailer{dir: dir, seq: fromSeq}, nil
}

// Seq returns the sequence number of the segment the tailer is reading.
func (t *Tailer) Seq() uint64 { return t.seq }

// Close releases the current segment's file handle.
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// Poll reads every complete record appended since the previous Poll, across
// any number of finished segments, and returns them. An empty result with a
// nil error means the tailer is caught up with everything visible. Errors
// are terminal for the tailer: ErrSegmentGone asks the caller to re-bootstrap
// from the newest checkpoint; anything else is corruption or I/O failure.
func (t *Tailer) Poll() ([]Record, error) {
	var out []Record
	for {
		if t.f == nil {
			f, err := os.Open(filepath.Join(t.dir, segmentName(t.seq)))
			if os.IsNotExist(err) {
				later, lerr := t.laterSegmentExists()
				if lerr != nil {
					return out, lerr
				}
				if later {
					return out, fmt.Errorf("%w (segment %d)", ErrSegmentGone, t.seq)
				}
				return out, nil // segment not created yet; re-poll
			}
			if err != nil {
				return out, fmt.Errorf("wal: tailing segment: %w", err)
			}
			t.f, t.off = f, 0
		}
		recs, _, err := t.readAvailable()
		out = append(out, recs...)
		if err != nil {
			return out, err
		}
		succ, err := t.successorExists()
		if err != nil {
			return out, err
		}
		if !succ {
			// No successor usually means this is the newest segment — but if
			// the segment we hold open has been unlinked, a checkpoint pruned
			// it, and prune only ever removes segments below a rotation point:
			// a successor was created before the prune and is itself already
			// pruned. Treating that as "caught up" would silently skip every
			// pruned segment's records, so it must surface as ErrSegmentGone
			// (the pruning checkpoint covers them; re-bootstrap recovers).
			gone, gerr := t.segmentUnlinked()
			if gerr != nil {
				return out, gerr
			}
			if gone {
				return out, fmt.Errorf("%w (segment %d pruned mid-tail, successor chain broken)",
					ErrSegmentGone, t.seq)
			}
			return out, nil // newest segment; bad or missing tail means re-poll
		}
		// The successor exists, so this segment's content is final (Rotate
		// closes a segment before creating its successor) — but the read
		// above may have raced appends that landed just before the rotation,
		// or caught the tail frame half-written. Re-read up to the final
		// size; a tail that is still bad now is real corruption.
		recs, clean, err := t.readAvailable()
		out = append(out, recs...)
		if err != nil {
			return out, err
		}
		if !clean {
			return out, fmt.Errorf("wal: corrupt frame at offset %d of rotated segment %s",
				t.off, segmentName(t.seq))
		}
		// Segment finished cleanly and a successor exists: advance.
		t.f.Close()
		t.f = nil
		t.seq++
	}
}

// readAvailable parses complete frames from t.off to the current end of the
// segment, advancing t.off past each. clean reports whether parsing consumed
// the file exactly (no partial or CRC-bad frame at the tail).
func (t *Tailer) readAvailable() (recs []Record, clean bool, err error) {
	fi, err := t.f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("wal: tailing stat: %w", err)
	}
	size := fi.Size()
	if size <= t.off {
		return nil, size == t.off, nil
	}
	data := make([]byte, size-t.off)
	if _, err := t.f.ReadAt(data, t.off); err != nil && err != io.EOF {
		return nil, false, fmt.Errorf("wal: tailing read: %w", err)
	}
	off := 0
	for off+frameHeader <= len(data) {
		plen := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		end := off + frameHeader + int(plen)
		if plen > maxPayload || end > len(data) {
			break
		}
		payload := data[off+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			break
		}
		recs = append(recs, rec)
		off = end
	}
	t.off += int64(off)
	return recs, off == len(data), nil
}

// segmentUnlinked reports whether the segment held open by the tailer has
// been removed from the directory (pruned by a checkpoint). Segment names are
// never reused (createSegment is O_EXCL), so a name that is missing or
// resolves to a different file than the held handle means ours was unlinked.
func (t *Tailer) segmentUnlinked() (bool, error) {
	held, err := t.f.Stat()
	if err != nil {
		return false, fmt.Errorf("wal: tailing stat: %w", err)
	}
	named, err := os.Stat(filepath.Join(t.dir, segmentName(t.seq)))
	if os.IsNotExist(err) {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("wal: tailing stat: %w", err)
	}
	return !os.SameFile(held, named), nil
}

// successorExists reports whether the next segment file exists, marking the
// current one final.
func (t *Tailer) successorExists() (bool, error) {
	_, err := os.Stat(filepath.Join(t.dir, segmentName(t.seq+1)))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, fmt.Errorf("wal: tailing stat: %w", err)
}

// laterSegmentExists reports whether any segment with seq > t.seq exists —
// the signature of t.seq having been pruned before the tailer opened it.
func (t *Tailer) laterSegmentExists() (bool, error) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return false, fmt.Errorf("wal: tailing %s: %w", t.dir, err)
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name()); ok && seq > t.seq {
			return true, nil
		}
	}
	return false, nil
}
