package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ChunkLayout captures one chunk's trained partitioning so recovery can
// restore the learned layout without re-running the solver. Blocks are the
// partition widths in blocks (costmodel.Layout.Sizes) and Ghosts the per-
// partition ghost-slot allocation, both as applied at training time.
// Untrained chunks persist Trained=false and rebuild under the table's
// default construction layout.
type ChunkLayout struct {
	Trained bool
	Blocks  []int
	Ghosts  []int
}

// Checkpoint is one shard's durable state cut at a single point: every live
// row (keys ascending, payload rows aligned — exactly table.Snapshot's
// shape, including registry compensation for rows staged out of the shard by
// an in-flight cross-shard move), the trained layout of each chunk, the
// engine epoch at the cut, the first WAL segment whose records postdate the
// cut, and the move-ID horizon (every cross-shard move with MoveID <=
// MoveHorizon had fully published before the cut, so its effect on this
// shard — if any — is already inside Keys/Rows).
//
// Schema v2 (magic "CSPRCKP2") adds Bounds: the range-partitioner boundary
// set in force at the cut (nil on hash-partitioned engines). Shard
// rebalancing re-splits boundaries at runtime and checkpoints prune the WAL
// records that announced the change, so each checkpoint must carry the
// boundary set itself; recovery resolves the live set as the
// highest-epoch one across the manifest, the checkpoints, and any
// RecRebalance records in the WAL tails. There is no v1 read path: a v1
// checkpoint fails the magic test and recovery of a v1-only shard directory
// errors loudly ("no valid checkpoint") rather than silently recovering a
// WAL tail without its base.
type Checkpoint struct {
	Epoch       uint64
	WALSeq      uint64
	MoveHorizon uint64
	Bounds      []int64
	Keys        []int64
	Rows        [][]int32
	Layouts     []ChunkLayout
}

const ckptMagic = uint64(0x43535052434b5032) // "CSPRCKP2"

// checkpointName formats a checkpoint file name for seq.
func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%08d.ckpt", seq) }

// parseCkptSeq extracts the sequence number from a ckpt-XXXXXXXX.ckpt name.
func parseCkptSeq(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "ckpt-%08d.ckpt", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// WriteCheckpoint atomically persists cp as checkpoint seq in dir: the
// serialized form (magic, header, rows, layouts, trailing CRC over
// everything) is written to a temp file, fsynced, and renamed into place;
// the directory is fsynced so the rename survives a crash.
func WriteCheckpoint(dir string, seq uint64, cp *Checkpoint) error {
	if len(cp.Rows) != len(cp.Keys) {
		return fmt.Errorf("wal: checkpoint has %d rows for %d keys", len(cp.Rows), len(cp.Keys))
	}
	var b bytes.Buffer
	w := func(v any) { _ = binary.Write(&b, binary.LittleEndian, v) }
	w(ckptMagic)
	w(cp.Epoch)
	w(cp.WALSeq)
	w(cp.MoveHorizon)
	w(uint32(len(cp.Bounds)))
	for _, b := range cp.Bounds {
		w(b)
	}
	w(uint64(len(cp.Keys)))
	ncols := 0
	if len(cp.Rows) > 0 {
		ncols = len(cp.Rows[0])
	}
	w(uint32(ncols))
	for _, k := range cp.Keys {
		w(k)
	}
	for _, row := range cp.Rows {
		if len(row) != ncols {
			return fmt.Errorf("wal: checkpoint row width %d != %d", len(row), ncols)
		}
		for _, v := range row {
			w(v)
		}
	}
	w(uint32(len(cp.Layouts)))
	for _, cl := range cp.Layouts {
		trained := uint8(0)
		if cl.Trained {
			trained = 1
		}
		w(trained)
		w(uint32(len(cl.Blocks)))
		for _, v := range cl.Blocks {
			w(int64(v))
		}
		w(uint32(len(cl.Ghosts)))
		for _, v := range cl.Ghosts {
			w(int64(v))
		}
	}
	w(crc32.ChecksumIEEE(b.Bytes()))

	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	final := filepath.Join(dir, checkpointName(seq))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	return syncDir(dir)
}

// LoadNewestCheckpoint scans dir for checkpoint files in descending sequence
// order and returns the first that validates (magic + CRC), with its
// sequence number. A half-written or corrupt newer checkpoint is skipped so
// recovery falls back to the previous one. Returns (nil, 0, nil) when no
// valid checkpoint exists.
func LoadNewestCheckpoint(dir string) (*Checkpoint, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCkptSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		cp, err := readCheckpoint(filepath.Join(dir, checkpointName(seq)))
		if err != nil {
			continue // corrupt or torn: fall back to an older checkpoint
		}
		return cp, seq, nil
	}
	return nil, 0, nil
}

// readCheckpoint parses and validates one checkpoint file.
func readCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("wal: checkpoint too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint CRC mismatch")
	}
	r := bytes.NewReader(body)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint64
	if err := rd(&magic); err != nil || magic != ckptMagic {
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	cp := &Checkpoint{}
	var nrows uint64
	var ncols, nchunks uint32
	if err := rd(&cp.Epoch); err != nil {
		return nil, err
	}
	if err := rd(&cp.WALSeq); err != nil {
		return nil, err
	}
	if err := rd(&cp.MoveHorizon); err != nil {
		return nil, err
	}
	var nbounds uint32
	if err := rd(&nbounds); err != nil {
		return nil, err
	}
	if uint64(nbounds) > uint64(len(body)) {
		return nil, fmt.Errorf("wal: absurd checkpoint bounds count %d", nbounds)
	}
	if nbounds > 0 {
		cp.Bounds = make([]int64, nbounds)
		for i := range cp.Bounds {
			if err := rd(&cp.Bounds[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := rd(&nrows); err != nil {
		return nil, err
	}
	if err := rd(&ncols); err != nil {
		return nil, err
	}
	if nrows > uint64(len(body)) { // cheap sanity bound; CRC already passed
		return nil, fmt.Errorf("wal: absurd checkpoint row count %d", nrows)
	}
	cp.Keys = make([]int64, nrows)
	for i := range cp.Keys {
		if err := rd(&cp.Keys[i]); err != nil {
			return nil, err
		}
	}
	cp.Rows = make([][]int32, nrows)
	for i := range cp.Rows {
		row := make([]int32, ncols)
		for c := range row {
			if err := rd(&row[c]); err != nil {
				return nil, err
			}
		}
		cp.Rows[i] = row
	}
	if err := rd(&nchunks); err != nil {
		return nil, err
	}
	cp.Layouts = make([]ChunkLayout, nchunks)
	for i := range cp.Layouts {
		var trained uint8
		if err := rd(&trained); err != nil {
			return nil, err
		}
		cp.Layouts[i].Trained = trained != 0
		for _, dst := range []*[]int{&cp.Layouts[i].Blocks, &cp.Layouts[i].Ghosts} {
			var n uint32
			if err := rd(&n); err != nil {
				return nil, err
			}
			vals := make([]int, n)
			for j := range vals {
				var v int64
				if err := rd(&v); err != nil {
					return nil, err
				}
				vals[j] = int(v)
			}
			*dst = vals
		}
	}
	return cp, nil
}

// Prune deletes checkpoints older than keepCkptSeq and WAL segments older
// than keepWALSeq; called after a new checkpoint lands so the directory
// holds one checkpoint plus the WAL tail it references. Best-effort: removal
// errors are ignored (stale files are harmless, recovery skips them).
func Prune(dir string, keepCkptSeq, keepWALSeq uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if seq, ok := parseCkptSeq(e.Name()); ok && seq < keepCkptSeq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name()); ok && seq < keepWALSeq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Manifest is the engine-level durable topology, written once at bootstrap.
// It pins the shard count and key routing so recovery rebuilds the exact
// partitioner the WAL records were routed under. Writing it is the atomic
// commit point of bootstrap: a directory without a manifest is (re)loaded
// from scratch, so a crash mid-bootstrap never recovers partial state.
type Manifest struct {
	Shards  int     `json:"shards"`
	ByRange bool    `json:"by_range"`
	Bounds  []int64 `json:"bounds,omitempty"` // range-partitioner boundaries
	KeyLo   int64   `json:"key_lo"`           // initial key extremes, for
	KeyHi   int64   `json:"key_hi"`           // drift-histogram bucketing
}

const manifestName = "MANIFEST.json"

// WriteManifest atomically persists m in dir.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: manifest temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: manifest write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: manifest fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("wal: manifest rename: %w", err)
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest. Returns (nil, nil) when none exists —
// the directory has no committed durable state.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: reading manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("wal: parsing manifest: %w", err)
	}
	return m, nil
}
