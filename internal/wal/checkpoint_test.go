package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Epoch:       17,
		WALSeq:      3,
		MoveHorizon: 5,
		Keys:        []int64{1, 2, 2, 9},
		Rows:        [][]int32{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		Layouts: []ChunkLayout{
			{Trained: true, Blocks: []int{4, 2, 2}, Ghosts: []int{1, 0, 3}},
			{},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testCheckpoint()
	if err := WriteCheckpoint(dir, 7, want); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, seq, err := LoadNewestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadNewestCheckpoint: %v", err)
	}
	if seq != 7 {
		t.Fatalf("seq = %d, want 7", seq)
	}
	// An untrained layout round-trips with empty (not nil) slices.
	want.Layouts[1].Blocks, want.Layouts[1].Ghosts = []int{}, []int{}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCheckpointEmptyShard(t *testing.T) {
	dir := t.TempDir()
	want := &Checkpoint{Epoch: 1, WALSeq: 2}
	if err := WriteCheckpoint(dir, 1, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadNewestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != 0 || got.WALSeq != 2 {
		t.Fatalf("empty checkpoint mismatch: %+v", got)
	}
}

// TestCorruptNewestFallsBack verifies recovery skips a torn/corrupt newest
// checkpoint and loads the previous valid one.
func TestCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	older := testCheckpoint()
	if err := WriteCheckpoint(dir, 1, older); err != nil {
		t.Fatal(err)
	}
	newer := testCheckpoint()
	newer.Epoch = 99
	if err := WriteCheckpoint(dir, 2, newer); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest in place (flip a payload byte).
	path := filepath.Join(dir, checkpointName(2))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	got, seq, err := LoadNewestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || got.Epoch != older.Epoch {
		t.Fatalf("fallback failed: seq=%d epoch=%d", seq, got.Epoch)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := WriteCheckpoint(dir, seq, &Checkpoint{WALSeq: seq}); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(dir, seq, Options{Policy: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	Prune(dir, 3, 3)
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("prune left %v, want newest checkpoint + newest segment", names)
	}
	if _, seq, _ := LoadNewestCheckpoint(dir); seq != 3 {
		t.Fatalf("newest checkpoint after prune: %d", seq)
	}
	if _, lastSeq, _ := ReplaySegments(dir, 1); lastSeq != 3 {
		t.Fatalf("newest segment after prune: %d", lastSeq)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); err != nil || m != nil {
		t.Fatalf("empty dir: m=%v err=%v", m, err)
	}
	want := &Manifest{Shards: 4, ByRange: true, Bounds: []int64{10, 20, 30}, KeyLo: -5, KeyHi: 99}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("manifest mismatch: %+v vs %+v", got, want)
	}
}
