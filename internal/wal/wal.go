// Package wal is the durability substrate of the sharded Casper engine: a
// per-shard append-only write-ahead log plus a chunk-level checkpoint format
// (checkpoint.go). Together they open the crash-recovery scenario: an engine
// directory holds one manifest (the shard topology) and one subdirectory per
// shard containing numbered WAL segments and checkpoints; recovery loads the
// newest valid checkpoint and replays the WAL tail.
//
// # Record format
//
// A segment is a sequence of CRC-framed records:
//
//	frame   := len(u32) | crc32(u32) | payload       (little endian)
//	payload := kind(u8) | epoch(u64) | moveID(u64) |
//	           key(i64) | key2(i64) | nrow(u16) | nrow × row[i](i32)
//
// The CRC is IEEE crc32 over the payload. Records mirror the engine's
// retrain-journal entries: deletes and updates carry the payload of the row
// the live table actually touched, so replay through DeleteRowExact resolves
// duplicate keys to the same row and is therefore order-independent across
// non-conflicting writers. The epoch stamp records the engine epoch the
// mutation was applied under; replay merges all shards' tails in epoch
// order. MoveOut/MoveIn pairs (one per side of a cross-shard move) share a
// moveID so recovery can reconcile a move whose halves straddle the crash.
//
// # Torn tails
//
// A crash can leave the final frame of the newest segment incomplete or
// corrupt. ReplaySegments stops at the first bad frame of the final segment
// and truncates the file back to its last valid frame, so the discarded tail
// can never resurface as mid-file corruption after further appends. A bad
// frame in a non-final segment is reported as corruption.
//
// # Fsync policy and group commit
//
// Append only writes the frame; Commit applies the log's sync policy:
//
//	SyncInterval  fsync at most once per Interval (default 100ms): commits
//	              piggyback a flush once the interval has elapsed, and a
//	              background flusher covers idle logs, so staleness is
//	              bounded by ~Interval even when writes stop.
//	SyncAlways    every Commit waits until its record is fsynced. Commits
//	              group: one leader fsyncs everything appended so far and
//	              every waiter whose record that covers returns without
//	              issuing its own fsync.
//	SyncNone      never fsync except on Rotate/Sync/Close.
//
// # Segment tailing
//
// A Tailer reads a shard's segments concurrently with the writing Log —
// the replication substrate behind internal/replica. The contract a
// same-host concurrent reader may assume:
//
//   - Appends become visible to readers through the shared page cache as
//     soon as Append's write returns; fsync policy affects durability,
//     never reader visibility. A tailer therefore sees records before they
//     are durable — followers replicate the leader's in-memory history,
//     which recovery of the leader may truncate after a power loss.
//   - A reader can observe a partially written final frame (reads are not
//     atomic with respect to an in-flight write). An incomplete or
//     CRC-mismatched frame at the tail of the newest segment means "more
//     may come", not corruption: re-poll.
//   - Rotate fsyncs and closes segment N before creating segment N+1, so
//     once wal-(N+1) exists, segment N's content is final. A bad tail
//     frame that persists in segment N after its successor exists (and
//     after one re-read to close the race with the final appends) is real
//     corruption, as is any bad frame in a non-final segment.
//   - Checkpoints prune segments below their cut. A tailer that holds the
//     current segment open keeps reading it after an unlink; when it must
//     advance to a segment that was pruned before it could open it, Poll
//     returns ErrSegmentGone and the reader re-bootstraps from the newest
//     checkpoint (which, having pruned the segment, covers it).
//   - A tailer never mutates the directory: it does not truncate torn
//     tails (only ReplaySegments, run by the owning engine, does).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"casper/internal/obs"
)

// SyncPolicy selects when appended records are fsynced (see package comment).
type SyncPolicy int

const (
	// SyncInterval fsyncs at most once per Options.Interval (the default).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs (group-committed) before every Commit returns.
	SyncAlways
	// SyncNone never fsyncs except on Rotate, Sync, and Close.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	Policy SyncPolicy
	// Interval is the maximum staleness under SyncInterval (default 100ms).
	Interval time.Duration
	// Obs, when non-nil, receives append/byte counts, fsync latency, group-
	// commit batch sizes, and segment-roll counts, striped on ObsShard.
	Obs      *obs.Registry
	ObsShard int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Kind enumerates WAL record kinds.
type Kind uint8

const (
	// RecInsert is an Insert(key) with the default-generated payload.
	RecInsert Kind = iota
	// RecInsertRow is an InsertRow(key, row) with an explicit payload.
	RecInsertRow
	// RecDelete removes the row with the given key whose payload matches
	// Row exactly (row-identity replay).
	RecDelete
	// RecUpdate is a same-shard key change Key→Key2 of the row carrying
	// payload Row.
	RecUpdate
	// RecMoveOut is the source half of a cross-shard move: the row with
	// payload Row leaves this shard at Key (its destination is Key2).
	RecMoveOut
	// RecMoveIn is the destination half of a cross-shard move: the row
	// with payload Row arrives on this shard at Key2 (it left Key).
	RecMoveIn
	// RecRebalance is a boundary-change record: the engine installed a new
	// range-partitioner boundary set (Bounds) at the record's epoch — the
	// publish epoch of a shard rebalance. It is appended to every shard's
	// WAL, so any surviving tail carries the boundary change; the rebalance's
	// bulk moves are logged as ordinary RecMoveOut/RecMoveIn pairs (with
	// Key == Key2, since a rebalance moves rows between shards without
	// changing their keys).
	RecRebalance
)

// Record is one WAL entry.
type Record struct {
	Kind   Kind
	Epoch  uint64 // engine epoch the mutation was applied under
	MoveID uint64 // pairs RecMoveOut/RecMoveIn; 0 otherwise
	Key    int64
	Key2   int64
	Row    []int32
	Bounds []int64 // RecRebalance only: the new partitioner boundaries
}

const (
	frameHeader = 8       // len u32 + crc u32
	maxPayload  = 1 << 26 // sanity bound when reading frames
)

// encodePayload serializes r's payload (everything under the CRC).
func encodePayload(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, r.MoveID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Key))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Key2))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Row)))
	for _, v := range r.Row {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	if r.Kind == RecRebalance {
		// Boundary records carry a trailing bounds section; every other kind
		// keeps the original fixed-plus-row framing byte for byte.
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Bounds)))
		for _, b := range r.Bounds {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
		}
	}
	return buf
}

// decodePayload parses one record payload.
func decodePayload(p []byte) (Record, error) {
	const fixed = 1 + 8 + 8 + 8 + 8 + 2
	if len(p) < fixed {
		return Record{}, fmt.Errorf("wal: short payload (%d bytes)", len(p))
	}
	r := Record{
		Kind:   Kind(p[0]),
		Epoch:  binary.LittleEndian.Uint64(p[1:]),
		MoveID: binary.LittleEndian.Uint64(p[9:]),
		Key:    int64(binary.LittleEndian.Uint64(p[17:])),
		Key2:   int64(binary.LittleEndian.Uint64(p[25:])),
	}
	n := int(binary.LittleEndian.Uint16(p[33:]))
	rowEnd := fixed + 4*n
	if r.Kind == RecRebalance {
		if len(p) < rowEnd+2 {
			return Record{}, fmt.Errorf("wal: rebalance payload too short for bounds count")
		}
		nb := int(binary.LittleEndian.Uint16(p[rowEnd:]))
		if len(p) != rowEnd+2+8*nb {
			return Record{}, fmt.Errorf("wal: rebalance payload length %d does not match %d bounds", len(p), nb)
		}
		if nb > 0 {
			r.Bounds = make([]int64, nb)
			for i := 0; i < nb; i++ {
				r.Bounds[i] = int64(binary.LittleEndian.Uint64(p[rowEnd+2+8*i:]))
			}
		}
	} else if len(p) != rowEnd {
		return Record{}, fmt.Errorf("wal: payload length %d does not match %d row values", len(p), n)
	}
	if n > 0 {
		r.Row = make([]int32, n)
		for i := 0; i < n; i++ {
			r.Row[i] = int32(binary.LittleEndian.Uint32(p[fixed+4*i:]))
		}
	}
	return r, nil
}

// segmentName formats a segment file name for seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSeq extracts the sequence number from a wal-XXXXXXXX.log name.
func parseSeq(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Log is one shard's write-ahead log handle, appending to the current
// segment. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	seq       uint64
	appendLSN uint64 // count of appended records, monotonic across rotations
	syncLSN   uint64 // highest LSN known durable
	syncing   bool
	lastSync  time.Time
	buf       []byte
	err       error // sticky I/O error; surfaced by Append/Commit/Sync
	closed    bool

	// wBytes/syncedBytes track the current segment's written and known-
	// durable byte counts; syncedBytes is what a power loss provably keeps
	// (tests use DurableOffset to simulate exactly that).
	wBytes      int64
	syncedBytes int64

	// stopFlush/flushDone bracket the SyncInterval background flusher.
	stopFlush chan struct{}
	flushDone chan struct{}
}

// createSegment creates a brand-new segment file for seq, failing loudly if
// one already exists: a seq collision would silently truncate durable data
// out from under recovery or a tailing follower, so it is never resolved by
// overwriting.
func createSegment(dir string, seq uint64) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
}

// OpenLog creates segment seq in dir and returns an appending handle. The
// segment must not already exist (callers derive seq from ReplaySegments'
// highest-seen sequence, so a collision means a bug, and truncating the
// existing segment would destroy durable records); existing segments are
// left untouched.
func OpenLog(dir string, seq uint64, opts Options) (*Log, error) {
	if seq < 1 {
		seq = 1
	}
	f, err := createSegment(dir, seq)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	l := &Log{dir: dir, opts: opts.withDefaults(), f: f, seq: seq, lastSync: time.Now()}
	l.cond = sync.NewCond(&l.mu)
	if l.opts.Policy == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// flushLoop bounds SyncInterval staleness on idle logs: commits only
// piggyback flushes, so without this a burst followed by silence would sit
// in the page cache forever. One timer goroutine per log; it only fsyncs
// when there is unsynced data.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	tick := time.NewTicker(l.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-tick.C:
			l.mu.Lock()
			dirty := l.err == nil && !l.closed && l.appendLSN > l.syncLSN
			l.mu.Unlock()
			if dirty {
				_ = l.Sync() // error is sticky; surfaced on the write path
			}
		}
	}
}

// Seq returns the current segment sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append frames and writes one record, returning its LSN for Commit. The
// record is in the OS page cache but not necessarily durable until a Commit
// or Sync covers the LSN.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.appendLSN, l.err
	}
	if l.closed {
		l.err = fmt.Errorf("wal: append to closed log")
		return l.appendLSN, l.err
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = encodePayload(l.buf, r)
	payload := l.buf[frameHeader:]
	binary.LittleEndian.PutUint32(l.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.appendLSN, l.err
	}
	l.wBytes += int64(len(l.buf))
	l.appendLSN++
	if o := l.opts.Obs; o != nil && o.Enabled() {
		o.WALAppends.Inc(l.opts.ObsShard)
		o.WALBytes.Add(l.opts.ObsShard, uint64(len(l.buf)))
	}
	return l.appendLSN, nil
}

// DurableOffset returns the byte length of the current segment's provably
// durable prefix (everything covered by a completed fsync). Crash tests
// truncate the segment here to simulate a power loss that drops the page
// cache.
func (l *Log) DurableOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncedBytes
}

// Commit makes the record at lsn durable per the log's sync policy. Under
// SyncAlways concurrent commits group behind a single fsync.
func (l *Log) Commit(lsn uint64) error {
	switch l.opts.Policy {
	case SyncNone:
		return l.Err()
	case SyncAlways:
		return l.syncTo(lsn)
	default: // SyncInterval
		l.mu.Lock()
		due := time.Since(l.lastSync) >= l.opts.Interval
		err := l.err
		l.mu.Unlock()
		if err != nil || !due {
			return err
		}
		return l.Sync()
	}
}

// Sync fsyncs everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.appendLSN
	l.mu.Unlock()
	return l.syncTo(lsn)
}

// syncTo blocks until the record at lsn is durable, group-committing: the
// first waiter becomes the leader and fsyncs the segment once for everything
// appended so far; waiters covered by that fsync return without their own.
func (l *Log) syncTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.syncLSN >= lsn {
			return nil
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		target := l.appendLSN
		targetBytes := l.wBytes
		prior := l.syncLSN
		f := l.f
		l.mu.Unlock()
		o := l.opts.Obs
		timed := o != nil && o.Enabled()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		err := f.Sync()
		if timed {
			o.WALFsyncNs.Observe(l.opts.ObsShard, time.Since(t0).Nanoseconds())
			if target > prior {
				o.WALGroupBatch.Observe(l.opts.ObsShard, int64(target-prior))
			}
		}
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		} else {
			if target > l.syncLSN {
				l.syncLSN = target
			}
			if targetBytes > l.syncedBytes {
				l.syncedBytes = targetBytes
			}
			l.lastSync = time.Now()
		}
		l.cond.Broadcast()
	}
}

// Rotate fsyncs and closes the current segment and starts a fresh one,
// returning the new segment's sequence number. Records appended after Rotate
// land in the new segment; a checkpoint cut at the rotation point therefore
// needs only segments >= the returned seq for its WAL tail.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.seq, l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: rotate fsync: %w", err)
		return l.seq, l.err
	}
	if err := l.f.Close(); err != nil {
		// The handle's state is unknown after a failed close: invalidate it
		// so no later path (Append, Sync, Close) can touch it — they all
		// surface the rotate error instead.
		l.f = nil
		l.err = fmt.Errorf("wal: rotate close: %w", err)
		return l.seq, l.err
	}
	l.syncLSN = l.appendLSN
	l.lastSync = time.Now()
	next := l.seq + 1
	f, err := createSegment(l.dir, next)
	if err != nil {
		// The old segment is already closed; without a new one the log has
		// no valid file. Invalidate the handle explicitly so Append/Sync/
		// Close return this rotate error rather than a confusing "file
		// already closed" (or a nil dereference).
		l.f = nil
		l.err = fmt.Errorf("wal: rotate open: %w", err)
		return l.seq, l.err
	}
	l.f = f
	l.seq = next
	l.wBytes, l.syncedBytes = 0, 0 // byte tracking is per segment
	if o := l.opts.Obs; o != nil && o.Enabled() {
		o.WALRolls.Inc(l.opts.ObsShard)
	}
	return next, nil
}

// Close stops the background flusher, fsyncs, and closes the current
// segment. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true // appends fail and the flusher goes quiet from here on
	l.mu.Unlock()
	if l.stopFlush != nil {
		close(l.stopFlush) // join outside mu: the flusher's Sync needs it
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.f == nil {
		// A failed Rotate already closed (or invalidated) the segment; the
		// sticky error it recorded is the whole story.
		return l.err
	}
	if serr := l.f.Sync(); serr != nil {
		if l.err == nil {
			l.err = serr
		}
	} else {
		l.syncLSN = l.appendLSN
		l.syncedBytes = l.wBytes
	}
	if cerr := l.f.Close(); cerr != nil && l.err == nil {
		l.err = cerr
	}
	return l.err
}

// ReplaySegments reads every record of the segments in dir with seq >=
// fromSeq, in segment order, and returns them together with the highest
// segment sequence present (0 when none exist). The final segment is torn-
// tail tolerant: reading stops at the first incomplete or CRC-corrupt frame
// and the file is truncated back to its last valid frame, so the discarded
// bytes cannot masquerade as mid-file corruption after later appends. A bad
// frame in a non-final segment is reported as corruption.
func ReplaySegments(dir string, fromSeq uint64) ([]Record, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name()); ok && seq >= fromSeq {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil, 0, nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var recs []Record
	for i, seq := range seqs {
		path := filepath.Join(dir, segmentName(seq))
		segRecs, valid, torn, err := readSegment(path)
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, segRecs...)
		if torn {
			if i != len(seqs)-1 {
				return nil, 0, fmt.Errorf("wal: corrupt frame in non-final segment %s", path)
			}
			if err := os.Truncate(path, valid); err != nil {
				return nil, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
		}
	}
	return recs, seqs[len(seqs)-1], nil
}

// readSegment parses one segment file, returning its records, the byte
// length of the valid prefix, and whether a torn/corrupt tail follows it.
func readSegment(path string) ([]Record, int64, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: reading segment: %w", err)
	}
	var recs []Record
	off := int64(0)
	for int(off)+frameHeader <= len(data) {
		plen := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		end := int(off) + frameHeader + int(plen)
		if plen > maxPayload || end > len(data) {
			return recs, off, true, nil
		}
		payload := data[int(off)+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, true, nil
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		off = int64(end)
	}
	return recs, off, int(off) != len(data), nil
}
