package wal

// Tailer coverage: live incremental reads, partial-frame waiting, rotation
// following, pruned-segment detection, and corruption in a finished segment.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// frameBytes encodes r as one on-disk frame.
func frameBytes(r Record) []byte {
	buf := make([]byte, frameHeader)
	buf = encodePayload(buf, r)
	payload := buf[frameHeader:]
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return buf
}

func mustPoll(t *testing.T, tl *Tailer) []Record {
	t.Helper()
	recs, err := tl.Poll()
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	return recs
}

func TestTailerLiveAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()

	want := testRecords()
	appendAll(t, l, want[:3])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[:3]) {
		t.Fatalf("first poll:\ngot  %+v\nwant %+v", got, want[:3])
	}
	if got := mustPoll(t, tl); len(got) != 0 {
		t.Fatalf("caught-up poll returned %d records", len(got))
	}
	appendAll(t, l, want[3:])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[3:]) {
		t.Fatalf("second poll:\ngot  %+v\nwant %+v", got, want[3:])
	}
}

// TestTailerPartialFrameWaits: an incomplete frame at the tail of the newest
// segment means "more may come", not corruption — the tailer returns what is
// complete and picks the frame up once its remaining bytes land.
func TestTailerPartialFrameWaits(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want[:2])
	l.Close()

	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("poll:\ngot  %+v\nwant %+v", got, want[:2])
	}

	// Land a frame in two halves, as a concurrent writer mid-Append would.
	frame := frameBytes(want[2])
	f, err := os.OpenFile(filepath.Join(dir, segmentName(1)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	if got := mustPoll(t, tl); len(got) != 0 {
		t.Fatalf("poll over partial frame returned %d records", len(got))
	}
	if _, err := f.Write(frame[len(frame)-3:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[2:3]) {
		t.Fatalf("poll after frame completed:\ngot  %+v\nwant %+v", got, want[2:3])
	}
}

func TestTailerFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()

	want := testRecords()
	appendAll(t, l, want[:2])
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, want[2:4])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[:4]) {
		t.Fatalf("poll across rotation:\ngot  %+v\nwant %+v", got, want[:4])
	}
	if tl.Seq() != 2 {
		t.Fatalf("Seq() = %d; want 2", tl.Seq())
	}
	// A second rotation with nothing appended in between: the tailer crosses
	// the empty boundary cleanly.
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, want[4:5])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[4:5]) {
		t.Fatalf("poll across second rotation:\ngot  %+v\nwant %+v", got, want[4:5])
	}
}

// TestTailerWaitsForFutureSegment: tailing a segment that does not exist yet
// (a checkpoint's WALSeq pointing at a segment about to be created) is a
// quiet wait, not an error.
func TestTailerWaitsForFutureSegment(t *testing.T) {
	dir := t.TempDir()
	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()
	if got := mustPoll(t, tl); len(got) != 0 {
		t.Fatalf("poll of empty dir returned %d records", len(got))
	}
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	want := testRecords()[:1]
	appendAll(t, l, want)
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want) {
		t.Fatalf("poll after segment appeared:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestTailerSegmentGone: the target segment missing while later ones exist
// means a checkpoint pruned it — the tailer reports ErrSegmentGone so its
// owner re-bootstraps from that checkpoint.
func TestTailerSegmentGone(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 3, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.Close()
	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()
	if _, err := tl.Poll(); !IsSegmentGone(err) {
		t.Fatalf("Poll = %v; want ErrSegmentGone", err)
	}
}

// TestTailerCorruptRotatedSegment: a bad tail in a segment that already has
// a successor is real corruption — Rotate finalized the segment, so no more
// bytes can come.
func TestTailerCorruptRotatedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want[:2])
	l.Close()
	garbage := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(garbage)
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()
	recs, perr := tl.Poll()
	if perr == nil || IsSegmentGone(perr) {
		t.Fatalf("Poll = %v; want corruption error", perr)
	}
	if !reflect.DeepEqual(recs, want[:2]) {
		t.Fatalf("records before corruption:\ngot  %+v\nwant %+v", recs, want[:2])
	}
}

// TestTailerPrunedChainBreak: if the tailer lags more than one checkpoint
// behind, both its open segment AND that segment's successor can be pruned
// before it advances. With no successor file to find, the tailer must not
// mistake its unlinked segment for the newest one and report caught-up — that
// would silently skip every pruned segment's records forever (the exact
// failure mode: follower reports lag 0 while missing rows). It must surface
// ErrSegmentGone so the owner re-bootstraps from the pruning checkpoint.
func TestTailerPrunedChainBreak(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()

	want := testRecords()
	appendAll(t, l, want[:2])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("first poll:\ngot  %+v\nwant %+v", got, want[:2])
	}
	// Two checkpoint cycles while the tailer sits on segment 1: rotate to 2,
	// rotate to 3, prune everything below 3 (segments 1 and 2).
	appendAll(t, l, want[2:3])
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, want[3:4])
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	Prune(dir, 0, 3)

	recs, perr := tl.Poll()
	if !IsSegmentGone(perr) {
		t.Fatalf("Poll = %v; want ErrSegmentGone (chain broken by prune)", perr)
	}
	// Records still readable through the held descriptor arrive with the
	// error; the re-bootstrap the error demands covers them either way.
	if !reflect.DeepEqual(recs, want[2:3]) {
		t.Fatalf("records before chain break:\ngot  %+v\nwant %+v", recs, want[2:3])
	}
}

// TestTailerSurvivesPruneOfOpenSegment: unlinking the segment the tailer is
// mid-way through (checkpoint prune) is harmless — the held descriptor keeps
// the data readable, and the successor carries on.
func TestTailerSurvivesPruneOfOpenSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	tl, err := OpenTailer(dir, 1)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	defer tl.Close()

	want := testRecords()
	appendAll(t, l, want[:1])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[:1]) {
		t.Fatalf("first poll:\ngot  %+v\nwant %+v", got, want[:1])
	}
	appendAll(t, l, want[1:3])
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, want[3:4])
	if got := mustPoll(t, tl); !reflect.DeepEqual(got, want[1:4]) {
		t.Fatalf("poll across pruned open segment:\ngot  %+v\nwant %+v", got, want[1:4])
	}
}
