// Package pindex implements the lightweight partition index of §3/§6.3: a
// shallow k-ary search tree over per-partition metadata (minimum key and
// positional information) that routes point and range operations to
// partitions. For small partition counts the metadata behaves like
// Zonemaps and a linear scan is competitive; both paths are provided.
package pindex

import (
	"fmt"
	"sort"
)

// DefaultFanout is the arity of the search tree. A node of 16 separators
// spans two cache lines of int64 keys, keeping the tree shallow (three
// levels cover 4096 partitions).
const DefaultFanout = 16

// Index routes domain values to partition ordinals. Partition j owns the
// key range [lower[j], lower[j+1]), with lower[0] conceptually −∞ and the
// last partition unbounded above.
type Index struct {
	// lower[j] is the smallest key routed to partition j, for j ≥ 1.
	// lower[0] is unused (first partition catches everything below
	// lower[1]).
	lower  []int64
	fanout int
	// levels[0] is the root node's separators; levels[len-1] is the full
	// separator array. Each level holds every fanout-th key of the next.
	levels [][]int64
}

// New builds an index over k partitions from the k−1 separator keys:
// seps[j] is the lower bound of partition j+1. Separators must be
// non-decreasing.
func New(seps []int64, fanout int) *Index {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	for i := 1; i < len(seps); i++ {
		if seps[i] < seps[i-1] {
			panic(fmt.Sprintf("pindex: separators not sorted at %d: %d < %d", i, seps[i], seps[i-1]))
		}
	}
	lower := make([]int64, len(seps)+1)
	copy(lower[1:], seps)
	idx := &Index{lower: lower, fanout: fanout}
	idx.build()
	return idx
}

// build constructs the k-ary level hierarchy bottom-up.
func (ix *Index) build() {
	base := ix.lower[1:]
	ix.levels = [][]int64{base}
	for len(ix.levels[0]) > ix.fanout {
		prev := ix.levels[0]
		// Take every fanout-th separator (the largest of each group) so a
		// root comparison narrows the search to one group.
		next := make([]int64, 0, (len(prev)+ix.fanout-1)/ix.fanout)
		for i := ix.fanout - 1; i < len(prev); i += ix.fanout {
			next = append(next, prev[i])
		}
		ix.levels = append([][]int64{next}, ix.levels...)
	}
}

// Partitions returns the number of partitions the index routes to.
func (ix *Index) Partitions() int { return len(ix.lower) }

// Find returns the partition that owns value v: the largest j with
// lower[j] <= v (or 0 when v precedes every separator). It descends the
// k-ary tree: each level stores the maximum separator of every complete
// fanout-group of the level below, so counting the keys ≤ v within one node
// identifies the child group to descend into.
func (ix *Index) Find(v int64) int {
	g := 0 // child group within the current level
	for li, level := range ix.levels {
		start := g * ix.fanout
		if li == 0 {
			start = 0
		}
		if start > len(level) {
			start = len(level)
		}
		end := start + ix.fanout
		if li == 0 {
			end = len(level)
		}
		if end > len(level) {
			end = len(level)
		}
		j := start
		for j < end && level[j] <= v {
			j++
		}
		g = j
	}
	return g
}

// FindLinear routes v with a plain zonemap-style scan of the separators.
// Exposed for benchmarking against the tree descent (§6.3: "If the chunk
// size is small ... the metadata can be treated as Zonemaps and ... very
// efficiently scanned").
func (ix *Index) FindLinear(v int64) int {
	j := 0
	base := ix.lower[1:]
	for j < len(base) && base[j] <= v {
		j++
	}
	return j
}

// FindBinary routes v by binary search; the reference implementation used
// in tests.
func (ix *Index) FindBinary(v int64) int {
	base := ix.lower[1:]
	return sort.Search(len(base), func(i int) bool { return base[i] > v })
}

// Range returns the ordinals of the first and last partition that may hold
// values in [lo, hi] inclusive.
func (ix *Index) Range(lo, hi int64) (first, last int) {
	if hi < lo {
		lo, hi = hi, lo
	}
	return ix.Find(lo), ix.Find(hi)
}

// LowerBound returns the lower key bound of partition j (meaningful for
// j ≥ 1; partition 0 is unbounded below).
func (ix *Index) LowerBound(j int) int64 {
	return ix.lower[j]
}
