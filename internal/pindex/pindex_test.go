package pindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildRandom(k, fanout int, rng *rand.Rand) *Index {
	seps := make([]int64, k-1)
	for i := range seps {
		seps[i] = int64(rng.Intn(1000))
	}
	sort.Slice(seps, func(i, j int) bool { return seps[i] < seps[j] })
	return New(seps, fanout)
}

func TestFindMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(300)
		fanout := 2 + rng.Intn(17)
		ix := buildRandom(k, fanout, rng)
		if ix.Partitions() != k {
			t.Fatalf("Partitions() = %d, want %d", ix.Partitions(), k)
		}
		for probe := 0; probe < 200; probe++ {
			v := int64(rng.Intn(1100) - 50)
			want := ix.FindBinary(v)
			if got := ix.Find(v); got != want {
				t.Fatalf("k=%d fanout=%d: Find(%d) = %d, want %d", k, fanout, v, got, want)
			}
			if got := ix.FindLinear(v); got != want {
				t.Fatalf("k=%d: FindLinear(%d) = %d, want %d", k, v, got, want)
			}
		}
	}
}

func TestFindSinglePartition(t *testing.T) {
	ix := New(nil, DefaultFanout)
	if ix.Partitions() != 1 {
		t.Fatalf("Partitions() = %d, want 1", ix.Partitions())
	}
	for _, v := range []int64{-100, 0, 100} {
		if got := ix.Find(v); got != 0 {
			t.Errorf("Find(%d) = %d, want 0", v, got)
		}
	}
}

func TestFindBoundarySemantics(t *testing.T) {
	// Partition j owns [lower[j], lower[j+1]): a value equal to a
	// separator belongs to the partition the separator opens.
	ix := New([]int64{10, 20, 30}, 2)
	tests := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {9, 0},
		{10, 1}, {15, 1}, {19, 1},
		{20, 2}, {29, 2},
		{30, 3}, {1000, 3},
	}
	for _, tc := range tests {
		if got := ix.Find(tc.v); got != tc.want {
			t.Errorf("Find(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestDuplicateSeparators(t *testing.T) {
	// Duplicate separators create empty partitions; routing must still be
	// consistent with binary search.
	ix := New([]int64{10, 10, 10, 20}, 2)
	for _, v := range []int64{5, 10, 15, 20, 25} {
		if got, want := ix.Find(v), ix.FindBinary(v); got != want {
			t.Errorf("Find(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestNewPanicsOnUnsortedSeparators(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted separators")
		}
	}()
	New([]int64{5, 3}, 4)
}

func TestRange(t *testing.T) {
	ix := New([]int64{10, 20, 30}, DefaultFanout)
	first, last := ix.Range(5, 25)
	if first != 0 || last != 2 {
		t.Errorf("Range(5,25) = %d,%d, want 0,2", first, last)
	}
	// Reversed bounds are normalized.
	first, last = ix.Range(25, 5)
	if first != 0 || last != 2 {
		t.Errorf("Range(25,5) = %d,%d, want 0,2", first, last)
	}
	first, last = ix.Range(12, 13)
	if first != 1 || last != 1 {
		t.Errorf("Range(12,13) = %d,%d, want 1,1", first, last)
	}
}

func TestLowerBound(t *testing.T) {
	ix := New([]int64{10, 20}, DefaultFanout)
	if got := ix.LowerBound(1); got != 10 {
		t.Errorf("LowerBound(1) = %d, want 10", got)
	}
	if got := ix.LowerBound(2); got != 20 {
		t.Errorf("LowerBound(2) = %d, want 20", got)
	}
}

func TestFindQuickProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ix := buildRandom(257, 16, rng) // forces a 3-level tree
	f := func(v int64) bool {
		return ix.Find(v) == ix.FindBinary(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFindTree(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ix := buildRandom(1024, 16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Find(int64(i % 1000))
	}
}

func BenchmarkFindLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ix := buildRandom(1024, 16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.FindLinear(int64(i % 1000))
	}
}
