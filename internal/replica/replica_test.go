package replica

// Divergence property suite for WAL-shipping replication: a follower tailing
// a live engine under concurrent writes, cross-shard moves, a rebalance
// boundary install, and a mid-run checkpoint must converge to the leader's
// exact per-shard (key, payload) multiset once writes quiesce; a follower
// killed and restarted at an arbitrary point must re-converge the same way.
// Multiset, not byte-identical dump: a follower that (re)bootstrapped from a
// checkpoint rebuilds its tables in checkpoint order, so the relative
// physical order of duplicate keys with distinct payloads can legally differ
// from the leader's insertion order.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"casper/internal/shard"
	"casper/internal/table"
	"casper/internal/wal"
)

// testConfig mirrors the durable-suite engine configuration, range-partitioned
// so the suite exercises rebalance boundary installs.
func testConfig(dir string) shard.Config {
	return shard.Config{
		Shards:  3,
		ByRange: true,
		Table: table.Config{
			Mode:        table.Casper,
			PayloadCols: 3,
			ChunkValues: 128,
			BlockValues: 16,
			GhostFrac:   0.01,
			Partitions:  4,
		},
		Dir:  dir,
		Sync: wal.SyncNone,
	}
}

// seedKeys returns n distinct keys spread over [0, 100000).
func seedKeys(n int, rng *rand.Rand) []int64 {
	seen := make(map[int64]bool, n)
	keys := make([]int64, 0, n)
	for len(keys) < n {
		k := rng.Int63n(100000)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// churn runs a writer goroutine over its own key stripe [base, base+span):
// inserts fresh keys, deletes some of them again, and moves others to the far
// end of the stripe with UpdateKey — with range partitioning the jump crosses
// shard boundaries, logging MoveOut/MoveIn pairs on two different WALs.
func churn(e *shard.Engine, base, span int64, rounds int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rounds; i++ {
		k := base + rng.Int63n(span/2)
		e.Insert(k)
		switch rng.Intn(3) {
		case 0:
			e.Delete(k) // may have landed on a duplicate; either way legal
		case 1:
			e.UpdateKey(k, base+span/2+rng.Int63n(span/2)) // cross-stripe move
		}
	}
}

// canonDump canonicalizes one shard dump into (key,row) strings sorted
// lexicographically, so comparisons assert multiset equality independent of
// physical duplicate order.
func canonDump(d shard.ShardDump) []string {
	out := make([]string, len(d.Keys))
	for i, k := range d.Keys {
		out[i] = fmt.Sprintf("%d|%v", k, d.Rows[i])
	}
	sort.Strings(out)
	return out
}

// verifyConverged asserts the follower's applied image equals the leader's:
// identical per-shard (key, payload) multisets, identical routing bounds.
func verifyConverged(t *testing.T, leader *shard.Engine, f *Follower) {
	t.Helper()
	ld, fd := leader.DumpShards(), f.Engine().DumpShards()
	for i := range ld {
		lc, fc := canonDump(ld[i]), canonDump(fd[i])
		if reflect.DeepEqual(lc, fc) {
			continue
		}
		t.Errorf("shard %d diverged: leader %d rows, follower %d rows",
			i, len(lc), len(fc))
		for j := 0; j < len(lc) && j < len(fc); j++ {
			if lc[j] != fc[j] {
				t.Errorf("  first mismatch at %d: leader %q, follower %q", j, lc[j], fc[j])
				break
			}
		}
		t.Fatalf("follower diverged from leader")
	}
	lb := leader.Partitioner().(*shard.RangePartitioner).Bounds()
	fb := f.Engine().Partitioner().(*shard.RangePartitioner).Bounds()
	if !reflect.DeepEqual(lb, fb) {
		t.Fatalf("bounds diverged: leader %v follower %v", lb, fb)
	}
}

func TestFollowerConvergence(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	leader, err := shard.New(seedKeys(500, rng), testConfig(dir))
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	defer leader.Close()

	f, err := Open(testConfig(dir), Options{PollEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer f.Close()

	// Three writers churn disjoint stripes while a fourth goroutine installs
	// a new boundary set and cuts a checkpoint mid-run.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			churn(leader, 100000+w*10000, 10000, 400, 42+w)
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		if _, err := leader.RebalanceTo([]int64{40000, 110000}); err != nil {
			t.Errorf("RebalanceTo: %v", err)
		}
		if err := leader.Checkpoint(); err != nil {
			t.Errorf("Checkpoint: %v", err)
		}
	}()
	wg.Wait()

	if !f.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("follower never caught up: err=%v lag=%v", f.Err(), f.Lag())
	}
	verifyConverged(t, leader, f)
	if f.Lag() != 0 {
		t.Fatalf("Lag = %v after catch-up; want 0", f.Lag())
	}
	if got := f.Metrics().Replica.RecordsApplied; got == 0 {
		t.Fatalf("ReplicaRecordsApplied = 0; want > 0")
	}
	if le, fe := leader.Epoch(), f.AppliedEpoch(); fe > le {
		t.Fatalf("follower applied epoch %d beyond leader epoch %d", fe, le)
	}
}

// TestFollowerKillRestart kills followers at arbitrary points during ingest
// and reopens them; each restart re-bootstraps from the then-newest
// checkpoint and the final follower still converges exactly.
func TestFollowerKillRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	leader, err := shard.New(seedKeys(300, rng), testConfig(dir))
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	defer leader.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		churn(leader, 100000, 30000, 1200, 7)
	}()

	// Kill/restart cycles racing the ingest; a mid-run checkpoint advances
	// the bootstrap point so restarts exercise both fresh and caught-up
	// starting offsets.
	var f *Follower
	for i := 0; i < 4; i++ {
		f, err = Open(testConfig(dir), Options{PollEvery: time.Millisecond})
		if err != nil {
			t.Fatalf("follower open %d: %v", i, err)
		}
		time.Sleep(time.Duration(1+i*3) * time.Millisecond)
		if i == 1 {
			if err := leader.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		if i < 3 {
			f.Close()
		}
	}
	<-done

	if !f.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("follower never caught up: err=%v", f.Err())
	}
	verifyConverged(t, leader, f)
	f.Close()

	// A cold follower opened after everything settled converges too.
	cold, err := Open(testConfig(dir), Options{PollEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("cold follower: %v", err)
	}
	defer cold.Close()
	if !cold.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("cold follower never caught up: err=%v", cold.Err())
	}
	verifyConverged(t, leader, cold)
}

// TestFollowerReadOnly: every mutation path on a follower engine fails with
// ErrReadOnly — a local write would silently diverge the replica.
func TestFollowerReadOnly(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	leader, err := shard.New(seedKeys(100, rng), testConfig(dir))
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	defer leader.Close()
	f, err := Open(testConfig(dir), Options{PollEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer f.Close()

	e := f.Engine()
	if err := e.Delete(1); err != shard.ErrReadOnly {
		t.Fatalf("Delete = %v; want ErrReadOnly", err)
	}
	if err := e.UpdateKey(1, 2); err != shard.ErrReadOnly {
		t.Fatalf("UpdateKey = %v; want ErrReadOnly", err)
	}
	if _, err := e.RebalanceTo([]int64{10, 20}); err != shard.ErrReadOnly {
		t.Fatalf("RebalanceTo = %v; want ErrReadOnly", err)
	}
	before := e.Len()
	e.Insert(12345) // no error channel; must be a silent no-op
	if got := e.Len(); got != before {
		t.Fatalf("Insert mutated a read-only engine: Len %d -> %d", before, got)
	}
}

// TestFollowerLagTracksIngest: the lag gauge rises while the follower is
// behind and returns to zero once it catches up.
func TestFollowerLagTracksIngest(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	keys := seedKeys(100, rng)
	leader, err := shard.New(keys, testConfig(dir))
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	defer leader.Close()
	f, err := Open(testConfig(dir), Options{PollEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer f.Close()

	churn(leader, 100000, 10000, 300, 11)
	// A move across shard boundaries advances the epoch, so the follower's
	// applied epoch becomes observable.
	if err := leader.UpdateKey(keys[0], 500000); err != nil {
		t.Fatalf("UpdateKey: %v", err)
	}
	if !f.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("follower never caught up: err=%v", f.Err())
	}
	if f.Lag() != 0 {
		t.Fatalf("Lag = %v after quiesce; want 0", f.Lag())
	}
	m := f.Metrics().Replica
	if m.RecordsApplied == 0 {
		t.Fatalf("RecordsApplied = 0 after ingest; want > 0")
	}
	if m.AppliedEpoch == 0 {
		t.Fatalf("AppliedEpoch = 0 after ingest; want > 0")
	}
}
