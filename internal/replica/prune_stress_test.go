package replica

// Regression stress for the pruned-chain tailer hole (wal.Tailer
// TestTailerPrunedChainBreak is the deterministic twin): a follower tailing a
// leader that runs auto-retrain, auto-rebalance, AND a fast checkpoint loop
// used to silently lose every record in segments pruned while its tailer
// lagged more than one checkpoint behind — reporting lag 0 with rows missing.
// The bulk MoveOut/MoveIn bursts a rebalance appends are what push the tailer
// far enough behind for two prune cycles to pass it, so this suite keeps all
// three background workers live, exactly like `casperbench -scenario`.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"casper/internal/shard"
)

func TestFollowerConvergenceUnderCheckpointPressure(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		dir := t.TempDir()
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig(dir)
		cfg.Shards = 4
		leader, err := shard.New(seedKeys(2000, rng), cfg)
		if err != nil {
			t.Fatalf("leader: %v", err)
		}

		f, err := Open(cfg, Options{PollEvery: time.Millisecond})
		if err != nil {
			t.Fatalf("follower: %v", err)
		}

		if err := leader.StartAutoRetrain(shard.RetrainPolicy{CheckEvery: 5 * time.Millisecond, MinOps: 100}); err != nil {
			t.Fatalf("retrain: %v", err)
		}
		if err := leader.StartAutoRebalance(shard.RebalancePolicy{CheckEvery: 10 * time.Millisecond, MaxSkew: 1.2, MinRows: 256, MinOps: 64}); err != nil {
			t.Fatalf("rebalance: %v", err)
		}
		ckptDone := make(chan struct{})
		var ckptWG sync.WaitGroup
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ckptDone:
					return
				case <-tick.C:
					if err := leader.Checkpoint(); err != nil {
						t.Errorf("checkpoint: %v", err)
						return
					}
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int64) {
				defer wg.Done()
				churn(leader, 100000+w*10000, 10000, 1500, 42+w)
			}(int64(w))
		}
		wg.Wait()

		leader.StopAutoRetrain()
		leader.StopAutoRebalance()
		close(ckptDone)
		ckptWG.Wait()
		if err := leader.SyncWAL(); err != nil {
			t.Fatalf("SyncWAL: %v", err)
		}
		if !f.WaitCaughtUp(20 * time.Second) {
			t.Fatalf("seed %d: follower never caught up: err=%v lag=%v", seed, f.Err(), f.Lag())
		}

		verifyConverged(t, leader, f)
		f.mu.RLock()
		mism := f.rep.Mismatches()
		f.mu.RUnlock()
		if mism != 0 {
			t.Fatalf("seed %d: %d apply mismatches (stream/image divergence)", seed, mism)
		}
		f.Close()
		leader.Close()
	}
}
