// Package replica implements WAL-shipping replication stages 1–2 (ROADMAP):
// an in-process Follower that bootstraps from the newest checkpoint in a
// live engine's directory, tails each shard's WAL segments (including the
// growing final segment — wal.Tailer), and applies epoch-ordered records to
// its own read-only shard set, serving View-consistent reads at its applied
// epoch.
//
// The follower keeps no durable state of its own: it never writes to the
// leader's directory (checkpoint and manifest reads only, tailing reads of
// segments), and a restarted follower simply re-bootstraps from whatever
// checkpoint is then newest. When the leader prunes a segment the follower
// has not reached yet (wal.ErrSegmentGone), the follower re-bootstraps the
// same way — the pruning checkpoint covers everything the segment held.
package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"casper/internal/obs"
	"casper/internal/shard"
	"casper/internal/wal"
)

// DefaultPollEvery is the tail polling interval when Options.PollEvery is
// zero: short enough that follower lag is dominated by ingest, not polling.
const DefaultPollEvery = 10 * time.Millisecond

// Options configures a Follower.
type Options struct {
	// PollEvery is the interval between tail polls (default
	// DefaultPollEvery).
	PollEvery time.Duration
}

// Follower is a read-only replica of the engine whose directory it tails.
// Reads are safe from any goroutine; the apply loop runs in the background
// until Close.
type Follower struct {
	cfg  shard.Config
	poll time.Duration

	// mu guards the engine/replicator/tailer triple, which is replaced
	// wholesale on re-bootstrap; readers take it shared for the length of
	// one engine method call.
	mu    sync.RWMutex
	eng   *shard.Engine
	rep   *shard.Replicator
	tails []*wal.Tailer

	// rounds counts completed poll rounds; emptyRound is the latest round
	// that polled nothing new (the follower was provably caught up with the
	// leader's visible tail when that round's polls ran). lastCaught is the
	// wall time of that observation, the base of the lag gauge.
	rounds     atomic.Uint64
	emptyRound atomic.Uint64
	lastCaught atomic.Int64 // unix nanos

	errMu sync.Mutex
	err   error // sticky terminal error; the apply loop has stopped

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Open bootstraps a follower from the newest checkpoints in cfg.Dir and
// starts its apply loop. cfg must carry the same table configuration the
// leader runs with (casper.OpenFollower derives both from one Options).
func Open(cfg shard.Config, opts Options) (*Follower, error) {
	poll := opts.PollEvery
	if poll <= 0 {
		poll = DefaultPollEvery
	}
	f := &Follower{
		cfg: cfg, poll: poll,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	if err := f.bootstrap(); err != nil {
		return nil, err
	}
	f.lastCaught.Store(time.Now().UnixNano())
	go f.loop()
	return f, nil
}

// bootstrap (re)builds the engine from the newest checkpoints and opens one
// tailer per shard at the checkpoint's WAL position. Called from Open and,
// under f.mu, from the apply loop after ErrSegmentGone.
func (f *Follower) bootstrap() error {
	boot, err := shard.NewFollower(f.cfg)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	tails := make([]*wal.Tailer, len(boot.FromSeqs))
	for i, seq := range boot.FromSeqs {
		t, err := wal.OpenTailer(shard.WALDir(f.cfg.Dir, i), seq)
		if err != nil {
			for _, u := range tails[:i] {
				u.Close()
			}
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		tails[i] = t
	}
	f.mu.Lock()
	f.eng, f.rep, f.tails = boot.Engine, boot.Engine.NewReplicator(boot.BoundsEpoch), tails
	f.mu.Unlock()
	return nil
}

// loop is the apply loop: poll every shard's tail, apply what arrived, track
// lag, re-bootstrap on segment pruning, stop on terminal errors or Close.
func (f *Follower) loop() {
	defer close(f.done)
	ticker := time.NewTicker(f.poll)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		if err := f.pollOnce(); err != nil {
			f.errMu.Lock()
			f.err = err
			f.errMu.Unlock()
			return
		}
	}
}

// pollOnce runs one poll round across every shard and applies the result in
// one epoch-ordered batch.
func (f *Follower) pollOnce() error {
	// The loop goroutine is the only mutator of the triple, so reading it
	// without f.mu is safe here; f.mu is for readers racing a re-bootstrap.
	var batch []shard.ReplicatedRecord
	for i, t := range f.tails {
		recs, err := t.Poll()
		for _, r := range recs {
			batch = append(batch, shard.ReplicatedRecord{Shard: i, Rec: r})
		}
		if err != nil {
			// Apply what this round already polled — the other shards'
			// records are real — then handle the failure.
			f.rep.Apply(batch)
			if wal.IsSegmentGone(err) {
				return f.rebootstrap()
			}
			return fmt.Errorf("replica: shard %d: %w", i, err)
		}
	}
	applied := f.rep.Apply(batch)
	round := f.rounds.Add(1)
	now := time.Now()
	if applied == 0 {
		// Nothing was visible beyond our position when the polls ran: the
		// follower is caught up as of this round.
		f.emptyRound.Store(round)
		f.lastCaught.Store(now.UnixNano())
		f.eng.Obs().ReplicaLagSeconds.SetFloat(0)
	} else {
		lag := now.Sub(time.Unix(0, f.lastCaught.Load()))
		f.eng.Obs().ReplicaLagSeconds.SetFloat(lag.Seconds())
	}
	return nil
}

// rebootstrap replaces the engine after a tailed segment was pruned out from
// under the follower. The old tailers are closed; the old engine needs no
// teardown (no logs, no workers). The records-applied counter carries over —
// it is cumulative per follower, not per engine incarnation.
func (f *Follower) rebootstrap() error {
	for _, t := range f.tails {
		t.Close()
	}
	applied := f.eng.Obs().ReplicaRecordsApplied.Total()
	if err := f.bootstrap(); err != nil {
		return err
	}
	f.eng.Obs().ReplicaRecordsApplied.Add(0, applied)
	return nil
}

// engine returns the current engine under the shared swap lock. Callers hold
// no other follower state across the call, so a re-bootstrap between two
// reads is indistinguishable from one racing the leader directly.
func (f *Follower) engine() *shard.Engine {
	f.mu.RLock()
	e := f.eng
	f.mu.RUnlock()
	return e
}

// Err returns the apply loop's terminal error, if it has stopped on one.
func (f *Follower) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.err
}

// WaitCaughtUp blocks until the follower has applied everything the leader
// had made visible before the call, or the timeout elapses (false). Callers
// quiesce writes first; under continuous ingest the follower may never
// report caught-up.
func (f *Follower) WaitCaughtUp(timeout time.Duration) bool {
	// An empty round numbered >= r0+2 must have started after this call:
	// round r0+1 may already have been mid-poll when we loaded r0, but
	// r0+2's polls begin after r0+1 completes, which is after the load — so
	// they observe every append that happened before the call.
	r0 := f.rounds.Load()
	deadline := time.Now().Add(timeout)
	for {
		if f.emptyRound.Load() >= r0+2 {
			return true
		}
		if f.Err() != nil || time.Now().After(deadline) {
			return false
		}
		select {
		case <-f.stop:
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// Lag returns the current replication lag estimate: zero when the last poll
// round found nothing new, otherwise the time since the follower last
// observed itself caught up.
func (f *Follower) Lag() time.Duration {
	s := f.engine().Obs().ReplicaLagSeconds.LoadFloat()
	return time.Duration(s * float64(time.Second))
}

// AppliedEpoch returns the highest epoch the follower has applied (or
// bootstrapped from).
func (f *Follower) AppliedEpoch() uint64 {
	return f.engine().Obs().ReplicaAppliedEpoch.Load()
}

// Engine returns the follower's current read-only engine for direct reads.
// The engine is replaced on re-bootstrap; callers needing multi-query
// consistency use View on a single returned engine.
func (f *Follower) Engine() *shard.Engine { return f.engine() }

// Metrics returns the follower engine's metrics snapshot (Replica section
// populated).
func (f *Follower) Metrics() obs.Snapshot { return f.engine().Metrics() }

// Events returns the follower engine's journal events with Seq > since.
func (f *Follower) Events(since uint64) []obs.Event { return f.engine().Events(since) }

// Close stops the apply loop and releases the tailers. Idempotent; the
// engine keeps serving reads at its last applied state.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	for _, t := range f.tails {
		t.Close()
	}
	return nil
}
