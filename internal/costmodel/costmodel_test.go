package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"casper/internal/freq"
	"casper/internal/iomodel"
)

func testParams() iomodel.CostParams { return iomodel.DefaultParams() }

// richModel builds a Frequency Model with all ten histograms populated.
func richModel(n int, seed int64) *freq.Model {
	rng := rand.New(rand.NewSource(seed))
	m := freq.NewModel(n)
	for i := 0; i < 4*n; i++ {
		switch rng.Intn(5) {
		case 0:
			m.RecordPointQuery(rng.Intn(n))
		case 1:
			a, b := rng.Intn(n), rng.Intn(n)
			if a > b {
				a, b = b, a
			}
			m.RecordRangeQuery(a, b)
		case 2:
			m.RecordInsert(rng.Intn(n))
		case 3:
			m.RecordDelete(rng.Intn(n))
		case 4:
			m.RecordUpdate(rng.Intn(n), rng.Intn(n))
		}
	}
	return m
}

func randBoundaries(n int, rng *rand.Rand) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = rng.Intn(3) == 0
	}
	p[n-1] = true
	return p
}

func TestCostMatchesNaiveDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(14)
		terms := Compute(richModel(n, int64(trial)), testParams())
		p := randBoundaries(n, rng)
		fast := terms.Cost(p)
		naive := terms.CostNaive(p)
		if math.Abs(fast-naive) > 1e-6*(1+math.Abs(naive)) {
			t.Fatalf("n=%d trial=%d: Cost=%v CostNaive=%v (p=%v)", n, trial, fast, naive, p)
		}
	}
}

func TestCostPanicsWithoutFinalBoundary(t *testing.T) {
	terms := Compute(richModel(4, 1), testParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when p[N-1] is false")
		}
	}()
	terms.Cost([]bool{true, false, false, false})
}

func TestSegmentCostDecomposition(t *testing.T) {
	// Summing SegmentCost over the partitions plus FixedTotal must equal
	// Cost for any boundary placement.
	terms := Compute(richModel(12, 3), testParams())
	p := []bool{false, true, false, false, true, true, false, false, false, true, false, true}
	want := terms.Cost(p)
	got := terms.FixedTotal()
	a := 0
	for b, isB := range p {
		if isB {
			got += terms.SegmentCost(a, b)
			a = b + 1
		}
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("decomposed=%v direct=%v", got, want)
	}
}

func TestSegmentCostSingleBlock(t *testing.T) {
	// A one-block partition contributes no bck/fwd reads, only the
	// boundary cost.
	terms := Compute(richModel(8, 5), testParams())
	for b := 0; b < 8; b++ {
		if got, want := terms.SegmentCost(b, b), terms.BoundaryCost(b); got != want {
			t.Errorf("SegmentCost(%d,%d)=%v, want boundary cost %v", b, b, got, want)
		}
	}
}

func TestSegmentCostPanicsOutOfRange(t *testing.T) {
	terms := Compute(richModel(4, 1), testParams())
	for _, seg := range [][2]int{{-1, 2}, {2, 1}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SegmentCost(%d,%d): expected panic", seg[0], seg[1])
				}
			}()
			terms.SegmentCost(seg[0], seg[1])
		}()
	}
}

func TestMorePartitionsReducePointQueryCost(t *testing.T) {
	// Fig. 2a: with a read-only point workload, the finest partitioning
	// is at least as cheap as any coarser one.
	n := 16
	m := freq.NewModel(n)
	for i := 0; i < n; i++ {
		m.PQ[i] = 10
	}
	terms := Compute(m, testParams())
	fine := make([]bool, n)
	for i := range fine {
		fine[i] = true
	}
	coarse := make([]bool, n)
	coarse[n-1] = true
	if cf, cc := terms.Cost(fine), terms.Cost(coarse); cf >= cc {
		t.Errorf("fine=%v should beat coarse=%v for point reads", cf, cc)
	}
}

func TestFewerPartitionsReduceInsertCost(t *testing.T) {
	// Fig. 2a, flip side: with an insert-only workload, one partition is
	// at least as cheap as the finest partitioning.
	n := 16
	m := freq.NewModel(n)
	for i := 0; i < n; i++ {
		m.IN[i] = 10
	}
	terms := Compute(m, testParams())
	fine := make([]bool, n)
	for i := range fine {
		fine[i] = true
	}
	coarse := make([]bool, n)
	coarse[n-1] = true
	if cf, cc := terms.Cost(fine), terms.Cost(coarse); cc >= cf {
		t.Errorf("coarse=%v should beat fine=%v for inserts", cc, cf)
	}
}

func TestFixedTermComposition(t *testing.T) {
	// One insert in block 0 of a 2-block model: fixed = RR + RW, parts =
	// RR + RW per Eq. 17.
	m := freq.NewModel(2)
	m.RecordInsert(0)
	p := testParams()
	terms := Compute(m, p)
	if got, want := terms.Fixed[0], p.RR+p.RW; got != want {
		t.Errorf("Fixed[0] = %v, want %v", got, want)
	}
	if got, want := terms.Parts[0], p.RR+p.RW; got != want {
		t.Errorf("Parts[0] = %v, want %v", got, want)
	}
	if terms.Bck[0] != 0 || terms.Fwd[0] != 0 {
		t.Errorf("insert should not add bck/fwd terms: %v %v", terms.Bck[0], terms.Fwd[0])
	}
}

func TestUpdateToTermsAreNegative(t *testing.T) {
	// Eq. 13: utf subtracts trailing-partition cost (the ripple stops at
	// the target partition).
	m := freq.NewModel(4)
	m.RecordUpdate(0, 3) // forward
	p := testParams()
	terms := Compute(m, p)
	if terms.Parts[0] <= 0 {
		t.Errorf("update-from block should have positive parts term, got %v", terms.Parts[0])
	}
	if terms.Parts[3] >= 0 {
		t.Errorf("update-to block should have negative parts term, got %v", terms.Parts[3])
	}
	// Backward updates flip the signs (Eq. 14–15).
	m2 := freq.NewModel(4)
	m2.RecordUpdate(3, 0)
	terms2 := Compute(m2, p)
	if terms2.Parts[3] >= 0 {
		t.Errorf("backward update-from parts term should be negative, got %v", terms2.Parts[3])
	}
	if terms2.Parts[0] <= 0 {
		t.Errorf("backward update-to parts term should be positive, got %v", terms2.Parts[0])
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]bool, len(raw))
		copy(p, raw)
		p[len(p)-1] = true
		l := FromBoundaries(p)
		if err := l.Validate(); err != nil {
			return false
		}
		back := l.Boundaries()
		if len(back) != len(p) {
			return false
		}
		for i := range p {
			if p[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := (Layout{}).Validate(); err == nil {
		t.Error("empty layout should be invalid")
	}
	if err := (Layout{Sizes: []int{3, 0, 2}}).Validate(); err == nil {
		t.Error("zero-size partition should be invalid")
	}
	if err := (Layout{Sizes: []int{1, 2, 3}}).Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestEquiWidth(t *testing.T) {
	l := EquiWidth(10, 3)
	if got := l.Partitions(); got != 3 {
		t.Fatalf("partitions = %d, want 3", got)
	}
	sum := 0
	for _, s := range l.Sizes {
		sum += s
		if s < 3 || s > 4 {
			t.Errorf("unbalanced partition size %d", s)
		}
	}
	if sum != 10 {
		t.Errorf("sizes sum to %d, want 10", sum)
	}
	if got := SingleJob(7); got.Partitions() != 1 || got.Sizes[0] != 7 {
		t.Errorf("SingleJob(7) = %+v", got)
	}
}

func TestPredictorsMatchCostShapes(t *testing.T) {
	p := testParams()
	// Insert cost grows linearly with trailing partitions (Fig. 9a).
	prev := -1.0
	for m := 9; m >= 0; m-- {
		c := InsertCost(p, m, 10)
		if c <= prev {
			t.Errorf("InsertCost not increasing with trailing partitions at m=%d: %v <= %v", m, c, prev)
		}
		prev = c
	}
	if got, want := InsertCost(p, 9, 10), p.RR+p.RW; got != want {
		t.Errorf("insert into last partition = %v, want %v", got, want)
	}
	// Point query cost grows linearly with partition size (Fig. 9b).
	if got, want := PointQueryCost(p, 1), p.RR; got != want {
		t.Errorf("1-block PQ = %v, want %v", got, want)
	}
	if got, want := PointQueryCost(p, 5), p.RR+4*p.SR; got != want {
		t.Errorf("5-block PQ = %v, want %v", got, want)
	}
	// Delete = point query + write + ripple (Eq. 11).
	if got, want := DeleteCost(p, 2, 4, 3), PointQueryCost(p, 3)+p.RW+(p.RR+p.RW)*1; got != want {
		t.Errorf("DeleteCost = %v, want %v", got, want)
	}
	// Update cost symmetric in direction, linear in distance (Eq. 12–15).
	if f, b := UpdateCost(p, 1, 5, 8, 2), UpdateCost(p, 5, 1, 8, 2); f != b {
		t.Errorf("update cost not symmetric: fwd=%v bck=%v", f, b)
	}
	if near, far := UpdateCost(p, 1, 2, 8, 2), UpdateCost(p, 1, 7, 8, 2); near >= far {
		t.Errorf("update cost should grow with distance: near=%v far=%v", near, far)
	}
	// Range query: Eq. 3 + 5 + 6 composition.
	if got, want := RangeQueryCost(p, 2, 3, 1), p.RR+p.SR*2+p.SR*3+p.SR+p.SR*1; got != want {
		t.Errorf("RangeQueryCost = %v, want %v", got, want)
	}
}

func TestEquiWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	EquiWidth(3, 4)
}
