// Package costmodel implements Casper's cost model for operations over
// range-partitioned columns (§4.4 of the paper, Eq. 2–17).
//
// The total workload cost of a partitioning P (Eq. 16) is
//
//	cost(P, FM) = Σ_i fixed_i
//	            + Σ_i bck_i·bck_read(i)
//	            + Σ_i fwd_i·fwd_read(i)
//	            + Σ_i parts_i·trail_parts(i)
//
// where for a partition spanning blocks [a, b]:
//
//	bck_read(i)   = i − a   (blocks before i in the same partition, Eq. 2)
//	fwd_read(i)   = b − i   (blocks after i in the same partition, Eq. 4)
//	trail_parts(i)= number of boundaries at or after block i (Eq. 8)
//
// The key structural fact exploited by the optimizer: swapping the order of
// summation in the trail_parts term gives
//
//	Σ_i parts_i·trail_parts(i) = Σ_{boundary j} Σ_{i ≤ j} parts_i,
//
// so the whole objective is a sum of independent per-partition costs
// (SegmentCost) plus a constant. This makes the exact optimum computable by
// a segmentation dynamic program — our substitute for the paper's Mosek BIP
// solver — while remaining the same objective function.
package costmodel

import (
	"fmt"

	"casper/internal/freq"
	"casper/internal/iomodel"
)

// Terms holds the per-block coefficients of Eq. 17 together with prefix sums
// that let SegmentCost run in O(1).
type Terms struct {
	Fixed []float64 // fixed_term_i: cost paid regardless of partitioning
	Bck   []float64 // bck_term_i: weight of bck_read(i)
	Fwd   []float64 // fwd_term_i: weight of fwd_read(i)
	Parts []float64 // parts_term_i: weight of trail_parts(i)

	Params iomodel.CostParams

	fixedTotal float64
	// Prefix sums over [0, i): sums of x and of x·i for Bck/Fwd, and of
	// Parts for the boundary cost.
	bckSum, bckISum []float64
	fwdSum, fwdISum []float64
	partsSum        []float64
}

// Compute derives the Eq. 17 terms from a Frequency Model and cost
// parameters.
func Compute(m *freq.Model, p iomodel.CostParams) *Terms {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("costmodel: %v", err))
	}
	n := m.Blocks()
	t := &Terms{
		Fixed:  make([]float64, n),
		Bck:    make([]float64, n),
		Fwd:    make([]float64, n),
		Parts:  make([]float64, n),
		Params: p,
	}
	for i := 0; i < n; i++ {
		rs, re, sc := m.RS[i], m.RE[i], m.SC[i]
		pq, de, in := m.PQ[i], m.DE[i], m.IN[i]
		udf, utf, udb, utb := m.UDF[i], m.UTF[i], m.UDB[i], m.UTB[i]

		t.Fixed[i] = p.RR*(rs+pq+in+de+2*udf+2*udb) +
			p.SR*(re+sc) +
			p.RW*(in+de+2*udf+2*udb)
		t.Bck[i] = p.SR * (rs + pq + de + udf + udb)
		t.Fwd[i] = p.SR * (re + pq + de + udf + udb)
		t.Parts[i] = (p.RR + p.RW) * (in + de + udf - utf - udb + utb)
	}
	t.buildPrefixes()
	return t
}

// buildPrefixes (re)computes the cached prefix sums.
func (t *Terms) buildPrefixes() {
	n := len(t.Fixed)
	t.bckSum = make([]float64, n+1)
	t.bckISum = make([]float64, n+1)
	t.fwdSum = make([]float64, n+1)
	t.fwdISum = make([]float64, n+1)
	t.partsSum = make([]float64, n+1)
	t.fixedTotal = 0
	for i := 0; i < n; i++ {
		t.fixedTotal += t.Fixed[i]
		t.bckSum[i+1] = t.bckSum[i] + t.Bck[i]
		t.bckISum[i+1] = t.bckISum[i] + t.Bck[i]*float64(i)
		t.fwdSum[i+1] = t.fwdSum[i] + t.Fwd[i]
		t.fwdISum[i+1] = t.fwdISum[i] + t.Fwd[i]*float64(i)
		t.partsSum[i+1] = t.partsSum[i] + t.Parts[i]
	}
}

// Blocks returns the number of blocks N the terms cover.
func (t *Terms) Blocks() int { return len(t.Fixed) }

// FixedTotal returns Σ_i fixed_term_i, the partitioning-independent cost.
func (t *Terms) FixedTotal() float64 { return t.fixedTotal }

// SegmentCost returns the partitioning-dependent cost contributed by a
// partition spanning blocks [a, b] inclusive (with its boundary at b):
//
//	Σ_{i=a}^{b} bck_i·(i−a) + fwd_i·(b−i)  +  Σ_{i=0}^{b} parts_i
//
// The last term is the boundary-at-b share of the trail_parts cost.
func (t *Terms) SegmentCost(a, b int) float64 {
	if a < 0 || b < a || b >= t.Blocks() {
		panic(fmt.Sprintf("costmodel: segment [%d,%d] out of range N=%d", a, b, t.Blocks()))
	}
	bck := (t.bckISum[b+1] - t.bckISum[a]) - float64(a)*(t.bckSum[b+1]-t.bckSum[a])
	fwd := float64(b)*(t.fwdSum[b+1]-t.fwdSum[a]) - (t.fwdISum[b+1] - t.fwdISum[a])
	return bck + fwd + t.partsSum[b+1]
}

// BoundaryCost returns Σ_{i=0}^{b} parts_i: the marginal trail_parts cost of
// placing a boundary at block b.
func (t *Terms) BoundaryCost(b int) float64 { return t.partsSum[b+1] }

// Cost evaluates Eq. 16 for an arbitrary partitioning, expressed as boundary
// bits (p[i] true ⇔ a partition ends at block i). p[N−1] must be true.
// Runs in O(N) using the per-partition decomposition.
func (t *Terms) Cost(p []bool) float64 {
	n := t.Blocks()
	if len(p) != n {
		panic(fmt.Sprintf("costmodel: partitioning has %d bits, want %d", len(p), n))
	}
	if !p[n-1] {
		panic("costmodel: last block must be a partition boundary (Eq. 19 constraint)")
	}
	total := t.fixedTotal
	a := 0
	for b := 0; b < n; b++ {
		if p[b] {
			total += t.SegmentCost(a, b)
			a = b + 1
		}
	}
	return total
}

// CostNaive evaluates Eq. 16 directly from the definitions of bck_read
// (Eq. 2), fwd_read (Eq. 4), and trail_parts (Eq. 8) in O(N²). It exists to
// cross-validate Cost in tests.
func (t *Terms) CostNaive(p []bool) float64 {
	n := t.Blocks()
	if len(p) != n {
		panic("costmodel: size mismatch")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		bckRead := 0.0
		for j := 0; j < i; j++ {
			prod := 1.0
			for k := j; k <= i-1; k++ {
				if p[k] {
					prod = 0
					break
				}
			}
			bckRead += prod
		}
		fwdRead := 0.0
		for j := 0; j <= n-i-1; j++ {
			// Eq. 4: Π_{k=i}^{N−j−1} (1−p_k), upper limit inclusive.
			hi := n - j - 1
			if hi < i {
				continue
			}
			prod := 1.0
			for k := i; k <= hi; k++ {
				if p[k] {
					prod = 0
					break
				}
			}
			fwdRead += prod
		}
		trail := 0.0
		for j := i; j < n; j++ {
			if p[j] {
				trail++
			}
		}
		total += t.Fixed[i] + t.Bck[i]*bckRead + t.Fwd[i]*fwdRead + t.Parts[i]*trail
	}
	return total
}

// Layout describes a concrete partitioning as consecutive partition sizes in
// blocks; used by the per-operation predictors below and by the storage
// engine when applying a layout.
type Layout struct {
	// Sizes[j] is the width of partition j in blocks. Σ Sizes == N.
	Sizes []int
}

// FromBoundaries converts boundary bits to a Layout.
func FromBoundaries(p []bool) Layout {
	var sizes []int
	run := 0
	for _, b := range p {
		run++
		if b {
			sizes = append(sizes, run)
			run = 0
		}
	}
	if run > 0 {
		sizes = append(sizes, run)
	}
	return Layout{Sizes: sizes}
}

// Boundaries converts the layout back to boundary bits over n blocks.
func (l Layout) Boundaries() []bool {
	n := 0
	for _, s := range l.Sizes {
		n += s
	}
	p := make([]bool, n)
	pos := -1
	for _, s := range l.Sizes {
		pos += s
		p[pos] = true
	}
	return p
}

// Partitions returns the number of partitions k.
func (l Layout) Partitions() int { return len(l.Sizes) }

// Validate reports an error if any partition is non-positive.
func (l Layout) Validate() error {
	if len(l.Sizes) == 0 {
		return fmt.Errorf("costmodel: layout has no partitions")
	}
	for j, s := range l.Sizes {
		if s <= 0 {
			return fmt.Errorf("costmodel: partition %d has non-positive size %d", j, s)
		}
	}
	return nil
}

// Per-operation cost predictors (used for the Fig. 9 model verification and
// for SLA reasoning). All take the partition ordinal m (0-based) within a
// layout of k partitions.

// PointQueryCost predicts the latency (ns) of a point query that lands in a
// partition spanning `blocks` blocks (Eq. 7 with the partition fully
// scanned: one random read plus sequential reads of the remaining blocks).
func PointQueryCost(p iomodel.CostParams, blocks int) float64 {
	if blocks < 1 {
		blocks = 1
	}
	return p.RR + p.SR*float64(blocks-1)
}

// InsertCost predicts the latency (ns) of a ripple insert into partition m
// of k (Eq. 9): one random read and write per trailing partition, plus one
// in the last partition.
func InsertCost(p iomodel.CostParams, m, k int) float64 {
	trail := float64(k - 1 - m)
	return (p.RR + p.RW) * (1 + trail)
}

// DeleteCost predicts the latency (ns) of a delete from partition m of k
// whose partition spans `blocks` blocks (Eq. 11 = point query + Eq. 10).
func DeleteCost(p iomodel.CostParams, m, k, blocks int) float64 {
	trail := float64(k - 1 - m)
	return PointQueryCost(p, blocks) + p.RW + (p.RR+p.RW)*trail
}

// UpdateCost predicts the latency (ns) of a direct ripple update from
// partition i to partition j (Eq. 12–15), where the source partition spans
// `blocks` blocks.
func UpdateCost(p iomodel.CostParams, i, j, k, blocks int) float64 {
	between := i - j
	if j > i {
		between = j - i
	}
	return PointQueryCost(p, blocks) + p.RR + 2*p.RW + (p.RR+p.RW)*float64(between)
}

// RangeQueryCost predicts the latency (ns) of a range query that starts in a
// partition with `lead` unnecessary leading blocks, scans `mid` interior
// blocks, and ends in a partition with `tail` unnecessary trailing blocks
// (Eq. 3 + Eq. 5 + Eq. 6).
func RangeQueryCost(p iomodel.CostParams, lead, mid, tail int) float64 {
	return p.RR + p.SR*float64(lead) + p.SR*float64(mid) + p.SR + p.SR*float64(tail)
}

// EquiWidth returns the layout splitting n blocks into k near-equal
// partitions (the Equi baseline of §7).
func EquiWidth(n, k int) Layout {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("costmodel: cannot split %d blocks into %d partitions", n, k))
	}
	sizes := make([]int, k)
	base, rem := n/k, n%k
	for j := range sizes {
		sizes[j] = base
		if j < rem {
			sizes[j]++
		}
	}
	return Layout{Sizes: sizes}
}

// SingleJob returns the one-partition layout (the unpartitioned column).
func SingleJob(n int) Layout { return Layout{Sizes: []int{n}} }
