package casper

// Public follower API: WAL-shipping replication behind the same read surface
// as Engine (internal/replica does the tailing and applying).

import (
	"fmt"
	"time"

	"casper/internal/replica"
	"casper/internal/shard"
	"casper/internal/table"
)

// ErrReadOnly is returned by every write method of a Follower: a follower's
// state is the replicated image of its leader, and a local write would
// silently diverge it. Route writes to the leader engine.
var ErrReadOnly = shard.ErrReadOnly

// Follower is a read-only replica of a durable engine, continuously catching
// up from the leader's directory. Point and range queries, scans, and Views
// serve the follower's applied state (consistent as of its applied epoch);
// every write method fails with ErrReadOnly.
//
// The follower never writes to the leader's directory and keeps no durable
// state of its own: reopening one re-bootstraps from the then-newest
// checkpoint, as does (automatically, mid-flight) a leader checkpoint that
// prunes a segment the follower had not reached.
type Follower struct {
	f *replica.Follower
}

// OpenFollower opens a read-only follower of the durable engine persisted in
// dir — which may be (and typically is) currently open and ingesting in
// another engine instance in this or another process on the same host. Pass
// the same layout-affecting Options the leader runs with (Mode, PayloadCols,
// ChunkValues, …); Dir and durability fields are ignored in favor of dir.
func OpenFollower(dir string, opts Options) (*Follower, error) {
	opts.Dir = dir
	cfg, _, _, err := shardConfig(opts)
	if err != nil {
		return nil, err
	}
	f, err := replica.Open(cfg, replica.Options{})
	if err != nil {
		return nil, fmt.Errorf("casper: %w", err)
	}
	return &Follower{f: f}, nil
}

// PointQuery returns the number of rows with the given key.
func (f *Follower) PointQuery(key int64) int { return f.f.Engine().PointQuery(key) }

// RangeCount returns the number of rows with keys in [lo, hi].
func (f *Follower) RangeCount(lo, hi int64) int { return f.f.Engine().RangeCount(lo, hi) }

// RangeSum sums the first payload column over keys in [lo, hi].
func (f *Follower) RangeSum(lo, hi int64) int64 { return f.f.Engine().RangeSum(lo, hi) }

// MultiRangeSum sums sumCol over keys in [lo, hi] whose payloads pass every
// filter.
func (f *Follower) MultiRangeSum(lo, hi int64, filters []Filter, sumCol int) int64 {
	fs := make([]table.PayloadFilter, len(filters))
	for i, f := range filters {
		fs[i] = table.PayloadFilter{Col: f.Col, Lo: f.Lo, Hi: f.Hi}
	}
	return f.f.Engine().MultiRangeSum(lo, hi, fs, sumCol)
}

// Payload returns one payload column of the row with the given key.
func (f *Follower) Payload(key int64, col int) (int32, bool) {
	return f.f.Engine().Payload(key, col)
}

// Len returns the follower's live row count at its applied state.
func (f *Follower) Len() int { return f.f.Engine().Len() }

// Scan returns a streaming cursor over keys in [lo, hi] at the follower's
// applied state.
func (f *Follower) Scan(lo, hi int64, opts ScanOptions) *Cursor {
	return f.f.Engine().Scan(lo, hi, opts)
}

// View runs fn over a pinned snapshot of the follower's applied state: the
// apply loop cannot advance the image mid-View, so every query inside fn
// observes one epoch.
func (f *Follower) View(fn func(*View)) {
	f.f.Engine().View(func(v *shard.View) { fn(&View{v: v}) })
}

// Insert is rejected: followers are read-only. It returns ErrReadOnly
// (unlike Engine.Insert, which has no error to return).
func (f *Follower) Insert(key int64) error { return ErrReadOnly }

// Delete is rejected: followers are read-only.
func (f *Follower) Delete(key int64) error { return ErrReadOnly }

// UpdateKey is rejected: followers are read-only.
func (f *Follower) UpdateKey(old, new int64) error { return ErrReadOnly }

// AppliedEpoch returns the highest epoch the follower has applied — the
// consistency point its reads serve.
func (f *Follower) AppliedEpoch() uint64 { return f.f.AppliedEpoch() }

// Lag returns the current replication lag estimate: zero when the last tail
// poll found nothing new, otherwise the time since the follower last
// observed itself caught up with the leader's visible WAL tail.
func (f *Follower) Lag() time.Duration { return f.f.Lag() }

// WaitCaughtUp blocks until the follower has applied everything the leader
// had made visible before the call, or the timeout elapses (returns false).
// Intended for after ingest quiesces; under continuous ingest the follower
// may never report caught-up.
func (f *Follower) WaitCaughtUp(timeout time.Duration) bool { return f.f.WaitCaughtUp(timeout) }

// Err returns the terminal error that stopped the follower's apply loop, or
// nil while it is running. A stopped follower keeps serving reads at its
// last applied state.
func (f *Follower) Err() error { return f.f.Err() }

// Metrics snapshots the follower engine's metrics. The Replica section
// (records applied, applied epoch, lag) is recorded unconditionally; the
// rest of the registry follows the usual first-call-enables rule via the
// underlying engine.
func (f *Follower) Metrics() Snapshot { return f.f.Metrics() }

// Events returns the follower engine's lifecycle events with Seq > since.
func (f *Follower) Events(since uint64) []Event { return f.f.Events(since) }

// Close stops the apply loop and releases the WAL tailers. The follower
// keeps serving reads at its last applied state. Idempotent.
func (f *Follower) Close() error { return f.f.Close() }
