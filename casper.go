// Package casper is a workload-driven columnar storage engine for hybrid
// transactional/analytical workloads, reproducing "Optimal Column Layout for
// Hybrid Workloads" (Athanassoulis, Bøgh, Idreos; PVLDB 12(13), 2019).
//
// The engine stores a keyed relation column-wise. Its key column can be laid
// out under six strategies — from plain insertion order, through sorted plus
// delta store (today's state of the art), to Casper's optimizer-chosen range
// partitioning with per-partition ghost-value buffers. Given a sample
// workload, Train solves a binary optimization problem that picks the
// partition sizes and buffer placement minimizing total workload cost,
// optionally under read/update latency SLAs.
//
// Quickstart:
//
//	keys := casper.UniformKeys(1_000_000, 10_000_000, 42)
//	eng, _ := casper.Open(keys, casper.Options{Mode: casper.ModeCasper})
//	sample, _ := casper.PresetWorkload(casper.HybridSkewed, keys, 10_000_000, 10_000, 1)
//	_ = eng.Train(sample, runtime.NumCPU())
//	n := eng.PointQuery(12345)          // scans one partition
//	eng.Insert(777)                      // absorbed by a ghost slot
//
// # Architecture: sharding & background retraining
//
// Internally the engine is a fleet of independently laid-out Casper tables
// (internal/shard). Options.Shards hash- or range-partitions the key domain
// across N tables, each with its own locks, monitor window, and cost-model
// training state; the default of 1 shard preserves the original single-table
// behavior exactly. Point queries route to the owning shard; range reads fan
// out across the spanned shards on parallel goroutines and merge their
// results; ApplyBatch groups a write batch by shard and applies the groups
// concurrently (ApplyBatchAsync does so off the caller's goroutine).
//
// StartAutoRetrain launches a background worker implementing the paper's
// online arc (Fig. 10): every operation feeds a per-shard access histogram,
// and when a shard's histogram drifts past a total-variation threshold from
// the one captured at its last training, the worker re-solves that shard's
// layout on a shadow copy of the table and swaps the copy in atomically.
// Writes that land mid-training are journaled and replayed onto the shadow
// before the swap, so re-layout never loses a mutation and readers never
// block on the solver.
//
// On range-partitioned engines (Options.ShardByRange) the same loop extends
// across the shard boundary: when the key distribution drifts so far that
// one shard holds a disproportionate share of the rows, Rebalance (or the
// StartAutoRebalance worker) re-splits the shard boundaries on the current
// quantiles and migrates rows between shards through the staged-move
// protocol — concurrent readers observe every row on exactly one shard
// throughout, and on durable engines the boundary change survives crashes.
//
// Cross-shard key moves (UpdateKey between shards) commit through an
// epoch-based protocol: the engine keeps a global epoch counter — shared
// with the transaction manager, so commits and moves draw from one time
// domain — and every query reads under a stable epoch. A moving row is
// staged out of its source shard and published into its destination with a
// single epoch bump, so a concurrent reader observes it on exactly one
// shard at all times. View pins move visibility across several queries when
// an invariant spans more than one call.
package casper

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"casper/internal/iomodel"
	"casper/internal/obs"
	"casper/internal/shard"
	"casper/internal/solver"
	"casper/internal/table"
	"casper/internal/txn"
	"casper/internal/wal"
	"casper/internal/workload"
)

// Mode selects the column layout strategy (§7 of the paper).
type Mode int

const (
	// ModeNoOrder stores the column in insertion order (vanilla
	// column-store baseline).
	ModeNoOrder Mode = iota
	// ModeSorted keeps the key column fully sorted.
	ModeSorted
	// ModeStateOfArt is a sorted column with a global delta store — the
	// paper's state-of-the-art comparison point.
	ModeStateOfArt
	// ModeEqui uses equi-width range partitioning.
	ModeEqui
	// ModeEquiGV adds evenly distributed ghost values to ModeEqui.
	ModeEquiGV
	// ModeCasper uses the workload-optimized layout (call Train).
	ModeCasper
)

// String implements fmt.Stringer.
func (m Mode) String() string { return tableMode(m).String() }

// AllModes lists every layout mode in the paper's comparison order.
func AllModes() []Mode {
	return []Mode{ModeCasper, ModeEquiGV, ModeEqui, ModeStateOfArt, ModeSorted, ModeNoOrder}
}

func tableMode(m Mode) table.Mode {
	switch m {
	case ModeNoOrder:
		return table.NoOrder
	case ModeSorted:
		return table.Sorted
	case ModeStateOfArt:
		return table.StateOfArt
	case ModeEqui:
		return table.Equi
	case ModeEquiGV:
		return table.EquiGV
	case ModeCasper:
		return table.Casper
	}
	panic(fmt.Sprintf("casper: unknown mode %d", int(m)))
}

// Options configures Open.
type Options struct {
	// Mode is the layout strategy (default ModeCasper).
	Mode Mode
	// PayloadCols is the number of payload columns beside the key
	// (default 15, matching the paper's 16-column narrow table).
	PayloadCols int
	// ChunkValues is the column chunk size (default 1M, §7).
	ChunkValues int
	// BlockBytes is the logical block size (default 16 KB, §7).
	BlockBytes int
	// GhostFrac is the ghost value budget as a fraction of the data size
	// (default 0.001 = 0.1%, Fig. 12).
	GhostFrac float64
	// Partitions is the per-chunk partition count for the Equi modes and
	// the fairness budget for ModeCasper (§7). Default: one per block.
	Partitions int
	// MinPartitions forces ModeCasper to keep at least this many
	// partitions per chunk; used by experiments that isolate the ghost
	// value effect under a fixed amount of structure.
	MinPartitions int
	// ReadSLA bounds point query latency in nanoseconds (0 = none); it
	// constrains the maximum partition size (Eq. 21).
	ReadSLA float64
	// UpdateSLA bounds insert/update latency in nanoseconds (0 = none);
	// it constrains the partition count (Eq. 21).
	UpdateSLA float64
	// MergeThreshold overrides the delta-store merge trigger
	// (ModeStateOfArt).
	MergeThreshold int
	// Calibrate micro-benchmarks the block access constants instead of
	// using the paper's defaults (§4.5).
	Calibrate bool
	// PayloadGen derives payload values from keys at load and insert
	// time; nil uses the package default.
	PayloadGen func(key int64, col int) int32
	// Shards splits the key domain across this many independent tables,
	// each with its own locks and training state (default 1 — exactly the
	// original single-table engine).
	Shards int
	// ShardByRange partitions shards on the initial keys' quantiles
	// instead of the default hash partitioning. Range sharding prunes
	// range-query fan-out; hash sharding spreads hot key ranges across
	// the whole fleet.
	ShardByRange bool
	// Dir enables durability: every shard keeps an append-only write-ahead
	// log and chunk checkpoints under this directory, and Open recovers
	// any state the directory already holds (see Open). Empty keeps the
	// engine fully in-memory.
	Dir string
	// Sync selects the WAL fsync policy for durable engines (default
	// SyncModeInterval).
	Sync SyncMode
	// SyncEvery bounds WAL staleness under SyncModeInterval (default
	// 100ms).
	SyncEvery time.Duration
	// Admission configures the write admission controller: a token-bucket
	// write limiter with per-tenant fairness lanes whose refill rate is
	// governed by the drift monitors, so a write burst cannot outrun
	// background retraining. Gated writes shed with ErrOverload or block
	// up to AdmissionPolicy.MaxWait; see Engine.Writer for tenant-scoped
	// handles. The zero value disables admission control.
	Admission AdmissionPolicy
}

// AdmissionPolicy configures the write admission controller; see
// shard.AdmissionPolicy for field semantics. The zero value disables it.
type AdmissionPolicy = shard.AdmissionPolicy

// ErrOverload is returned by admission-gated writes when the engine is
// shedding write load; the op was not applied. See Options.Admission.
var ErrOverload = shard.ErrOverload

// SyncMode selects when a durable engine fsyncs its write-ahead logs.
type SyncMode int

const (
	// SyncModeInterval fsyncs at most once per Options.SyncEvery — bounded
	// data loss, near-in-memory ingest throughput (the default).
	SyncModeInterval SyncMode = iota
	// SyncModeAlways makes every acknowledged write durable; concurrent
	// writers group-commit behind shared fsyncs.
	SyncModeAlways
	// SyncModeNone never fsyncs during operation (only at checkpoints and
	// Close); a crash loses whatever the OS had not flushed.
	SyncModeNone
)

func walPolicy(m SyncMode) wal.SyncPolicy {
	switch m {
	case SyncModeAlways:
		return wal.SyncAlways
	case SyncModeNone:
		return wal.SyncNone
	}
	return wal.SyncInterval
}

// Engine is a storage engine instance: a fleet of one or more independently
// laid-out Casper tables behind a single table-like API.
type Engine struct {
	sh     *shard.Engine
	params iomodel.CostParams
	mode   Mode
	mgr    *txn.Manager

	monMu sync.Mutex
	mon   *Monitor

	// obsOnce latches metric collection on: the first Metrics (or
	// EnableMetrics) call enables the registry permanently, so an engine
	// nobody inspects pays only one atomic load per operation.
	obsOnce sync.Once
}

// Open loads keys (any order) into a fresh engine.
//
// With Options.Dir set the engine is durable. If the directory already
// holds committed state, Open performs crash recovery instead of loading
// keys (the keys argument is ignored and may be nil): each shard's newest
// valid checkpoint is loaded — restoring rows, payloads, AND the trained
// partitioning, so no solver run is needed — and the WAL tail is replayed
// in epoch order, tolerating a torn final record. The epoch oracle resumes
// past the highest recovered epoch. An empty (or fresh) directory is
// bootstrapped from keys and the initial state persisted. Pass the same
// layout-affecting Options (Mode, PayloadCols, ChunkValues, …) across runs:
// the directory persists data and shard topology, not engine configuration.
func Open(keys []int64, opts Options) (*Engine, error) {
	cfg, params, oracle, err := shardConfig(opts)
	if err != nil {
		return nil, err
	}
	sh, err := shard.New(keys, cfg)
	if err != nil {
		return nil, fmt.Errorf("casper: %w", err)
	}
	return &Engine{sh: sh, params: params, mode: opts.Mode, mgr: txn.NewManagerWithOracle(oracle)}, nil
}

// shardConfig resolves Options into the shard-layer configuration, shared by
// Open and OpenFollower so a follower interprets the leader's data under
// identical table parameters.
func shardConfig(opts Options) (shard.Config, iomodel.CostParams, *txn.Oracle, error) {
	params := iomodel.EngineDefaults(opts.BlockBytes)
	if opts.Calibrate {
		params = iomodel.Calibrate(opts.BlockBytes)
	}
	payloadCols := opts.PayloadCols
	if payloadCols == 0 {
		payloadCols = 15
	}
	ghostFrac := opts.GhostFrac
	if ghostFrac == 0 {
		ghostFrac = 0.001
	}
	var sopts solver.Options
	sopts.MinPartitions = opts.MinPartitions
	if opts.ReadSLA > 0 {
		mps, err := solver.ReadSLAToMaxBlocks(opts.ReadSLA, params)
		if err != nil {
			return shard.Config{}, params, nil, fmt.Errorf("casper: read SLA: %w", err)
		}
		sopts.MaxPartitionBlocks = mps
	}
	if opts.UpdateSLA > 0 {
		k, err := solver.UpdateSLAToMaxPartitions(opts.UpdateSLA, params)
		if err != nil {
			return shard.Config{}, params, nil, fmt.Errorf("casper: update SLA: %w", err)
		}
		sopts.MaxPartitions = k
	}
	var gen table.PayloadGen
	if opts.PayloadGen != nil {
		gen = table.PayloadGen(opts.PayloadGen)
	}
	// One oracle serves transaction commit timestamps and cross-shard move
	// epochs, putting both in a single totally ordered time domain.
	oracle := txn.NewOracle()
	return shard.Config{
		Shards:    opts.Shards,
		ByRange:   opts.ShardByRange,
		Gen:       gen,
		Epoch:     oracle,
		Dir:       opts.Dir,
		Sync:      walPolicy(opts.Sync),
		SyncEvery: opts.SyncEvery,
		Admission: opts.Admission,
		Table: table.Config{
			Mode:           tableMode(opts.Mode),
			PayloadCols:    payloadCols,
			ChunkValues:    opts.ChunkValues,
			GhostFrac:      ghostFrac,
			Partitions:     opts.Partitions,
			Params:         params,
			SolverOpts:     sopts,
			MergeThreshold: opts.MergeThreshold,
		},
	}, params, oracle, nil
}

// Mode returns the engine's layout mode.
func (e *Engine) Mode() Mode { return e.mode }

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return e.sh.Shards() }

// Len returns the live row count.
func (e *Engine) Len() int { return e.sh.Len() }

// Chunks returns the number of column chunks across all shards. It reads
// under the move gate, so the count reflects a single boundary set — never
// a mid-install rebalance state; see shard.Engine.Chunks for the full
// read-consistency contract.
func (e *Engine) Chunks() int { return e.sh.Chunks() }

// CostParams returns the calibrated block access constants in use.
func (e *Engine) CostParams() string { return e.params.String() }

// Train re-partitions a ModeCasper engine for the sampled workload: the
// sample is split per shard, then each shard builds per-chunk Frequency
// Models, solves the layout optimization (parallel across chunks), and
// applies the layouts with Eq. 18 ghost allocation.
func (e *Engine) Train(sample []Op, parallelism int) error {
	return e.sh.Train(toWorkloadOps(sample), parallelism)
}

// PointQuery returns the number of live rows with the given key (Q1).
func (e *Engine) PointQuery(key int64) int { return e.sh.PointQuery(key) }

// RangeCount counts live rows with keys in [lo, hi] (Q2).
func (e *Engine) RangeCount(lo, hi int64) int { return e.sh.RangeCount(lo, hi) }

// RangeSum sums the keys of live rows in [lo, hi] (Q3).
func (e *Engine) RangeSum(lo, hi int64) int64 { return e.sh.RangeSum(lo, hi) }

// Filter is a conjunctive range predicate on one payload column.
type Filter struct {
	Col    int
	Lo, Hi int32
}

// MultiRangeSum runs a TPC-H-Q6-shaped query: key range plus payload
// filters, summing payload column sumCol over qualifying rows.
func (e *Engine) MultiRangeSum(lo, hi int64, filters []Filter, sumCol int) int64 {
	fs := make([]table.PayloadFilter, len(filters))
	for i, f := range filters {
		fs[i] = table.PayloadFilter{Col: f.Col, Lo: f.Lo, Hi: f.Hi}
	}
	return e.sh.MultiRangeSum(lo, hi, fs, sumCol)
}

// Insert adds a row with the given key (Q4). On a durable engine a WAL
// failure cannot be reported here (no error return); it is sticky and
// surfaces on the next erroring write, SyncWAL, Checkpoint, or Close.
func (e *Engine) Insert(key int64) { e.sh.Insert(key) }

// Delete removes one row with the given key (Q5).
func (e *Engine) Delete(key int64) error { return e.sh.Delete(key) }

// UpdateKey changes one row's key, preserving its payload (Q6). When the
// old and new keys live on different shards the move commits through the
// engine's epoch-based cross-shard protocol: a concurrent reader observes
// the row on exactly one shard at all times — never on neither, never on
// both, and never with a torn payload.
func (e *Engine) UpdateKey(old, new int64) error { return e.sh.UpdateKey(old, new) }

// Writer is a tenant-scoped write handle: writes submitted through it pass
// admission control (Options.Admission) on that tenant's fairness lane and
// may return ErrOverload per the policy. On an engine without admission
// control it behaves like the plain write methods, with Insert additionally
// returning the write path's error.
type Writer = shard.Writer

// Writer returns a write handle bound to the given tenant lane.
func (e *Engine) Writer(tenant int) *Writer { return e.sh.Writer(tenant) }

// Payload returns payload column col of one row with the given key.
func (e *Engine) Payload(key int64, col int) (int32, bool) { return e.sh.Payload(key, col) }

// Epoch returns the engine's current global epoch: it advances once per
// published cross-shard move and once per transaction commit.
func (e *Engine) Epoch() uint64 { return e.sh.Epoch() }

// Checkpoint persists every shard's current rows and trained layout and
// truncates the write-ahead logs at the checkpoint boundaries. Checkpoints
// also happen automatically after Train and after every background retrain
// swap. No-op on in-memory engines.
func (e *Engine) Checkpoint() error { return e.sh.Checkpoint() }

// SyncWAL forces all write-ahead logs to stable storage — a durability
// barrier for engines running Sync modes weaker than SyncModeAlways. No-op
// on in-memory engines.
func (e *Engine) SyncWAL() error { return e.sh.SyncWAL() }

// PendingMove describes one in-flight cross-shard key move: the row has
// left its source shard but is not yet published at its destination, and
// readers serve it at Old from the engine's staged-move registry.
type PendingMove = shard.PendingMove

// PendingMoves returns the cross-shard moves currently staged. Durable
// checkpoints fold these rows back in at their old key, so a checkpoint cut
// mid-move never persists a row on zero or two shards.
func (e *Engine) PendingMoves() []PendingMove { return e.sh.PendingMoves() }

// View is a move-stable multi-query read handle pinned to one routing
// snapshot: for the duration of the callback of Engine.View, the epoch, the
// shard boundaries, and the staged-move registry the view's queries route
// through are frozen — no cross-shard move can stage or publish and no
// rebalance can install new boundaries. Invariants that span several
// queries and depend only on move atomicity therefore hold exactly. It is
// not a full snapshot: single-shard writes (Insert, Delete, same-shard
// UpdateKey) do not pass through the move gate and may land between the
// view's queries.
type View struct {
	v *shard.View
}

// View runs fn over a move-stable read handle pinned at the current epoch
// and routing snapshot. Queries inside fn must go through the View's
// methods; calling Engine methods from inside fn can deadlock against a
// queued cross-shard move. Individual engine queries are already
// snapshot-stable on their own — View is only needed when one invariant
// spans several calls.
func (e *Engine) View(fn func(*View)) {
	e.sh.View(func(v *shard.View) { fn(&View{v: v}) })
}

// Epoch returns the epoch the view is pinned at.
func (v *View) Epoch() uint64 { return v.v.Epoch() }

// PointQuery is Engine.PointQuery under the view's snapshot.
func (v *View) PointQuery(key int64) int { return v.v.PointQuery(key) }

// RangeCount is Engine.RangeCount under the view's snapshot.
func (v *View) RangeCount(lo, hi int64) int { return v.v.RangeCount(lo, hi) }

// RangeSum is Engine.RangeSum under the view's snapshot.
func (v *View) RangeSum(lo, hi int64) int64 { return v.v.RangeSum(lo, hi) }

// MultiRangeSum is Engine.MultiRangeSum under the view's snapshot.
func (v *View) MultiRangeSum(lo, hi int64, filters []Filter, sumCol int) int64 {
	fs := make([]table.PayloadFilter, len(filters))
	for i, f := range filters {
		fs[i] = table.PayloadFilter{Col: f.Col, Lo: f.Lo, Hi: f.Hi}
	}
	return v.v.MultiRangeSum(lo, hi, fs, sumCol)
}

// Payload is Engine.Payload under the view's snapshot.
func (v *View) Payload(key int64, col int) (int32, bool) { return v.v.Payload(key, col) }

// Len is Engine.Len under the view's snapshot.
func (v *View) Len() int { return v.v.Len() }

// Scan is Engine.Scan pinned to the view's snapshot: no cross-shard move
// or rebalance install can interleave, so two drains of the same range
// inside one View yield byte-identical streams. The cursor is only valid
// inside the View callback. Single-shard inserts and deletes may still
// land between batches — a View is move-stable, not write-stable.
func (v *View) Scan(lo, hi int64, opts ScanOptions) *Cursor { return v.v.Scan(lo, hi, opts) }

// ---------------------------------------------------------------------------
// Streaming scans
// ---------------------------------------------------------------------------

// ScanOptions configures Engine.Scan and View.Scan: Limit caps the total
// rows yielded (0 = unlimited), Batch tunes the per-shard batch size, and
// PageToken resumes a scan where a previous cursor's PageToken left off.
type ScanOptions = shard.ScanOptions

// Cursor streams the live rows with keys in [lo, hi] in ascending key
// order, lazily: it materializes one small batch per shard at a time —
// memory and first-row latency are bounded by the batch size, never the
// result size — and holds no locks between Next calls, so a consumer may
// page at leisure while writers proceed.
//
// Next advances and reports whether a row is available; Key and Payload
// read the current row (the payload slice is valid only until the next
// Next/SeekTo/Close — copy to retain); SeekTo jumps forward or backward
// within the scanned range; PageToken returns a resume token for a later
// Scan; Err surfaces construction failures such as a malformed page token;
// Close releases the cursor's buffers.
//
// Concurrent writes: an Engine cursor observes inserts and deletes that
// land ahead of its position and misses those behind it (each row it does
// yield is never torn), and a key moved across the scan frontier by
// UpdateKey or a rebalance mid-scan may be missed or seen twice. A View
// cursor (View.Scan) pins the routing snapshot instead: moves and installs
// cannot interleave at all. Stable pagination under live ingest therefore
// wants page tokens (each page is internally exact) or a View (exact
// across pages).
type Cursor = shard.Cursor

// ErrBadPageToken reports a malformed ScanOptions.PageToken, surfaced
// through Cursor.Err.
var ErrBadPageToken = shard.ErrBadPageToken

// Scan opens a streaming cursor over [lo, hi] — the lazy alternative to
// the materialized aggregates for large or LIMIT-bounded reads. The scan
// feeds the engine's drift monitor as a range access over the requested
// span, so scan-heavy workloads train the layout solver and trigger
// retraining like any other range read. Always Close the cursor.
func (e *Engine) Scan(lo, hi int64, opts ScanOptions) *Cursor { return e.sh.Scan(lo, hi, opts) }

// OpKind enumerates workload operations.
type OpKind int

const (
	PointQuery OpKind = iota
	RangeCount
	RangeSum
	Insert
	Delete
	Update
	// Scan is a streaming cursor read over [Key, Key2], optionally
	// LIMIT-bounded by Op.Limit. Execute drains the cursor and returns the
	// row count; for the layout solver and drift monitor it is a range
	// access over the span it requests.
	Scan
)

// Op is one workload operation. Key2 holds the range end (RangeCount,
// RangeSum, Scan) or the new key (Update). Limit caps the rows a Scan
// yields (0 = unlimited) and is ignored by every other kind.
type Op struct {
	Kind  OpKind
	Key   int64
	Key2  int64
	Limit int
}

func toWorkloadOps(ops []Op) []workload.Op {
	out := make([]workload.Op, len(ops))
	for i, op := range ops {
		out[i] = workload.Op{Kind: workloadKind(op.Kind), Key: op.Key, Key2: op.Key2, Limit: op.Limit}
	}
	return out
}

func workloadKind(k OpKind) workload.Kind {
	switch k {
	case PointQuery:
		return workload.Q1PointQuery
	case RangeCount:
		return workload.Q2RangeCount
	case RangeSum:
		return workload.Q3RangeSum
	case Insert:
		return workload.Q4Insert
	case Delete:
		return workload.Q5Delete
	case Update:
		return workload.Q6Update
	case Scan:
		return workload.Q8Scan
	}
	panic(fmt.Sprintf("casper: unknown op kind %d", int(k)))
}

func fromWorkloadOps(ops []workload.Op) []Op {
	out := make([]Op, len(ops))
	for i, op := range ops {
		var k OpKind
		switch op.Kind {
		case workload.Q1PointQuery:
			k = PointQuery
		case workload.Q2RangeCount:
			k = RangeCount
		case workload.Q3RangeSum:
			k = RangeSum
		case workload.Q4Insert:
			k = Insert
		case workload.Q5Delete:
			k = Delete
		case workload.Q6Update:
			k = Update
		case workload.Q8Scan:
			k = Scan
		}
		out[i] = Op{Kind: k, Key: op.Key, Key2: op.Key2, Limit: op.Limit}
	}
	return out
}

// Execute runs one operation, returning a sink value (query result or 1/0
// success flag for writes). When a monitor is active the operation is also
// recorded for later retraining.
func (e *Engine) Execute(op Op) int64 {
	e.monMu.Lock()
	mon := e.mon
	e.monMu.Unlock()
	if mon != nil {
		mon.record(op)
	}
	return e.sh.Execute(workload.Op{Kind: workloadKind(op.Kind), Key: op.Key, Key2: op.Key2, Limit: op.Limit})
}

// ExecuteAll runs the operations serially.
func (e *Engine) ExecuteAll(ops []Op) int64 {
	e.monMu.Lock()
	mon := e.mon
	e.monMu.Unlock()
	if mon == nil {
		return e.sh.ExecuteAll(toWorkloadOps(ops))
	}
	var sink int64
	for _, op := range ops {
		sink += e.Execute(op)
	}
	return sink
}

// ExecuteParallel spreads the operations over the given number of worker
// goroutines; shard- and chunk-level locking serializes conflicting writes.
func (e *Engine) ExecuteParallel(ops []Op, workers int) int64 {
	return e.sh.ExecuteParallel(toWorkloadOps(ops), workers)
}

// ApplyBatch groups the operations by owning shard and applies each group on
// its own goroutine — the batched write path. Operations keep their relative
// order within a shard; operations spanning shards apply after the per-shard
// waves. Returns the summed sink values. Batched operations feed an active
// monitor just like Execute, so Retrain sees the full workload.
func (e *Engine) ApplyBatch(ops []Op) int64 {
	e.monMu.Lock()
	mon := e.mon
	e.monMu.Unlock()
	if mon != nil {
		for _, op := range ops {
			mon.record(op)
		}
	}
	return e.sh.ApplyBatch(toWorkloadOps(ops))
}

// PendingBatch is a handle to a batch being applied asynchronously.
type PendingBatch struct {
	ch chan int64
}

// Wait blocks until the batch has been applied and returns its summed sink.
func (b *PendingBatch) Wait() int64 { return <-b.ch }

// ApplyBatchAsync applies the batch on a background goroutine and returns
// immediately; Wait on the handle to collect the result. Like ApplyBatch,
// the operations feed an active monitor.
func (e *Engine) ApplyBatchAsync(ops []Op) *PendingBatch {
	b := &PendingBatch{ch: make(chan int64, 1)}
	go func() { b.ch <- e.ApplyBatch(ops) }()
	return b
}

// LayoutSummary describes one chunk's physical layout.
type LayoutSummary struct {
	Shard      int
	Chunk      int
	Partitions int
	Sizes      []int // live values per partition
	Ghosts     []int // free ghost slots per partition
}

// Layouts reports the current physical layout of partitioned chunks across
// all shards.
func (e *Engine) Layouts() []LayoutSummary {
	in := e.sh.Layouts()
	out := make([]LayoutSummary, len(in))
	for i, l := range in {
		out[i] = LayoutSummary{Shard: l.Shard, Chunk: l.Chunk, Partitions: l.Partitions, Sizes: l.Sizes, Ghosts: l.Ghosts}
	}
	return out
}

// ---------------------------------------------------------------------------
// Workload helpers
// ---------------------------------------------------------------------------

// Workload preset names (§7.1 mixes; see EXPERIMENTS.md).
const (
	HybridSkewed      = workload.HybridSkewed
	HybridRangeSkewed = workload.HybridRangeSkewed
	ReadOnlySkewed    = workload.ReadOnlySkewed
	ReadOnlyUniform   = workload.ReadOnlyUniform
	UpdateOnlySkewed  = workload.UpdateOnlySkewed
	UpdateOnlyUniform = workload.UpdateOnlyUniform
	SLAHybrid         = workload.SLAHybrid
	ScanHeavy         = workload.ScanHeavy
)

// PresetWorkload generates ops operations of the named HAP preset against
// the initial keys over the domain [0, domainMax].
func PresetWorkload(name string, keys []int64, domainMax int64, ops int, seed int64) ([]Op, error) {
	spec, err := workload.Preset(name, ops, seed)
	if err != nil {
		return nil, err
	}
	ws, err := workload.Generate(keys, domainMax, spec)
	if err != nil {
		return nil, err
	}
	return fromWorkloadOps(ws), nil
}

// UniformKeys generates n uniformly distributed keys over [0, domainMax].
func UniformKeys(n int, domainMax int64, seed int64) []int64 {
	return workload.UniformKeys(n, domainMax, seed)
}

// ---------------------------------------------------------------------------
// Transactions (§6.1: snapshot isolation, first committer wins)
// ---------------------------------------------------------------------------

// Tx is a snapshot-isolation transaction over row presence. Reads observe
// the snapshot at Begin; buffered writes apply to storage only on Commit.
// Concurrent transactions writing the same key conflict: the first to
// commit wins, later ones abort.
type Tx struct {
	e     *Engine
	inner *txn.Txn
	ops   []Op
}

// Begin starts a transaction.
func (e *Engine) Begin() *Tx {
	return &Tx{e: e, inner: e.mgr.Begin()}
}

// seen ensures the version store knows the storage state of key before the
// transaction reasons about it.
func (t *Tx) seen(key int64) {
	if _, ok := t.e.mgr.ReadCommitted(key); !ok {
		if n := t.e.sh.PointQuery(key); n > 0 {
			t.e.mgr.Seed(key, int64(n))
		}
	}
}

// Exists reports whether a row with the key is visible in the snapshot.
func (t *Tx) Exists(key int64) (bool, error) {
	t.seen(key)
	v, ok, err := t.inner.Read(key)
	if err != nil {
		return false, err
	}
	return ok && v > 0, nil
}

// Insert buffers a row insertion.
func (t *Tx) Insert(key int64) error {
	t.seen(key)
	v, _, err := t.inner.Read(key)
	if err != nil {
		return err
	}
	if err := t.inner.Write(key, v+1); err != nil {
		return err
	}
	t.ops = append(t.ops, Op{Kind: Insert, Key: key})
	return nil
}

// Delete buffers a row deletion.
func (t *Tx) Delete(key int64) error {
	t.seen(key)
	v, ok, err := t.inner.Read(key)
	if err != nil {
		return err
	}
	if !ok || v <= 0 {
		return fmt.Errorf("casper: delete of absent key %d", key)
	}
	if v == 1 {
		if err := t.inner.Delete(key); err != nil {
			return err
		}
	} else if err := t.inner.Write(key, v-1); err != nil {
		return err
	}
	t.ops = append(t.ops, Op{Kind: Delete, Key: key})
	return nil
}

// Update buffers a key change.
func (t *Tx) Update(old, new int64) error {
	if err := t.Delete(old); err != nil {
		return err
	}
	if err := t.Insert(new); err != nil {
		return err
	}
	// Collapse the pair into one storage-level update so the payload
	// travels with the row.
	t.ops = t.ops[:len(t.ops)-2]
	t.ops = append(t.ops, Op{Kind: Update, Key: old, Key2: new})
	return nil
}

// Commit validates the transaction (first committer wins) and applies its
// writes to storage.
func (t *Tx) Commit() error {
	if err := t.inner.Commit(); err != nil {
		if o := t.e.sh.Obs(); o.Enabled() && errors.Is(err, txn.ErrConflict) {
			o.TxnConflicts.Inc(0)
		}
		return err
	}
	if o := t.e.sh.Obs(); o.Enabled() {
		o.TxnCommits.Inc(0)
	}
	for _, op := range t.ops {
		t.e.Execute(op)
	}
	return nil
}

// Abort discards the transaction.
func (t *Tx) Abort() {
	t.inner.Abort()
	if o := t.e.sh.Obs(); o.Enabled() {
		o.TxnAborts.Inc(0)
	}
}

// ---------------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------------

// SortKeys sorts keys ascending in place and returns them; a convenience
// for loading pre-sorted data.
func SortKeys(keys []int64) []int64 {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ShiftWorkload returns a copy of ops with every key rotated right by frac
// of the domain (wrapping), modeling Fig. 16's rotational workload
// uncertainty: the layout was trained for one access pattern and serves a
// shifted one.
func ShiftWorkload(ops []Op, domainMax int64, frac float64) []Op {
	shift := int64(frac * float64(domainMax+1))
	rot := func(v int64) int64 {
		v += shift
		if v > domainMax {
			v -= domainMax + 1
		}
		return v
	}
	out := make([]Op, len(ops))
	for i, op := range ops {
		out[i] = op
		out[i].Key = rot(op.Key)
		if op.Kind == RangeCount || op.Kind == RangeSum {
			// Keep ranges contiguous: shift both ends; clamp at wrap.
			lo, hi := rot(op.Key), rot(op.Key2)
			if hi < lo {
				hi = domainMax
			}
			out[i].Key, out[i].Key2 = lo, hi
		} else if op.Kind == Update {
			out[i].Key2 = op.Key2 // update targets stay put
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Online monitoring and re-partitioning (the A' arc of Fig. 10)
// ---------------------------------------------------------------------------

// Monitor collects executed operations so the layout can be re-derived when
// access patterns drift — the paper's online extension where "offline
// indexing techniques [are] repurposed for online indexing" (§1).
type Monitor struct {
	mu  sync.Mutex
	ops []Op
	cap int
}

// StartMonitor begins recording operations executed through Execute and
// ExecuteAll, keeping the most recent capacity operations.
func (e *Engine) StartMonitor(capacity int) {
	if capacity <= 0 {
		capacity = 10_000
	}
	e.monMu.Lock()
	e.mon = &Monitor{cap: capacity}
	e.monMu.Unlock()
}

// StopMonitor stops recording and returns the operations captured so far.
func (e *Engine) StopMonitor() []Op {
	e.monMu.Lock()
	defer e.monMu.Unlock()
	if e.mon == nil {
		return nil
	}
	ops := e.mon.snapshot()
	e.mon = nil
	return ops
}

// Monitored returns the number of operations currently recorded.
func (e *Engine) Monitored() int {
	e.monMu.Lock()
	defer e.monMu.Unlock()
	if e.mon == nil {
		return 0
	}
	e.mon.mu.Lock()
	defer e.mon.mu.Unlock()
	return len(e.mon.ops)
}

func (m *Monitor) record(op Op) {
	m.mu.Lock()
	if len(m.ops) >= m.cap {
		// Keep the most recent window.
		copy(m.ops, m.ops[len(m.ops)-m.cap/2:])
		m.ops = m.ops[:m.cap/2]
	}
	m.ops = append(m.ops, op)
	m.mu.Unlock()
}

func (m *Monitor) snapshot() []Op {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Op, len(m.ops))
	copy(out, m.ops)
	return out
}

// Retrain re-solves the layout from the monitored operations and applies it
// (a re-partitioning cycle). The monitor keeps recording. Requires
// ModeCasper and an active monitor.
func (e *Engine) Retrain(parallelism int) error {
	e.monMu.Lock()
	mon := e.mon
	e.monMu.Unlock()
	if mon == nil {
		return fmt.Errorf("casper: Retrain requires an active monitor (call StartMonitor)")
	}
	ops := mon.snapshot()
	if len(ops) == 0 {
		return fmt.Errorf("casper: no monitored operations to retrain from")
	}
	return e.Train(ops, parallelism)
}

// RetrainPolicy tunes the background auto-retrainer (see StartAutoRetrain).
// Zero fields select defaults.
type RetrainPolicy struct {
	// CheckEvery is the drift check cadence (default 100ms).
	CheckEvery time.Duration
	// MinOps is the minimum number of operations a shard must observe
	// since its last training before it is considered (default 1000).
	MinOps int
	// MaxDrift triggers a retrain when the total-variation distance
	// between a shard's current access histogram and its at-training
	// baseline reaches this value in [0, 1] (default 0.15).
	MaxDrift float64
	// Parallelism is the per-retrain solver parallelism (default 1).
	Parallelism int
}

// StartAutoRetrain launches the background retraining worker: every
// operation feeds per-shard access histograms, and a shard whose access
// pattern drifts past the policy threshold is re-trained on a shadow copy
// that is swapped in atomically — reads and writes never block on the
// solver. Requires ModeCasper.
func (e *Engine) StartAutoRetrain(p RetrainPolicy) error {
	return e.sh.StartAutoRetrain(shard.RetrainPolicy{
		CheckEvery:  p.CheckEvery,
		MinOps:      p.MinOps,
		MaxDrift:    p.MaxDrift,
		Parallelism: p.Parallelism,
	})
}

// StopAutoRetrain stops the background retrainer, waiting for any in-flight
// retrain to finish. Safe to call when none is running.
func (e *Engine) StopAutoRetrain() { e.sh.StopAutoRetrain() }

// Retrains returns the number of completed background shard retrains.
func (e *Engine) Retrains() uint64 { return e.sh.Retrains() }

// ---------------------------------------------------------------------------
// Shard rebalancing (range-partitioned engines)
// ---------------------------------------------------------------------------

// RebalanceResult reports one shard-boundary re-split: rows moved (and the
// straggler subset caught by the publish-window rescan of the changed
// ownership intervals), boundary sets before and after, max/mean row-count
// skew around the rebalance, and the duration of the exclusive install
// window.
type RebalanceResult = shard.RebalanceResult

// RebalanceStrategy selects the boundary proposer used by Rebalance,
// RebalanceWith, and the auto-rebalancer.
type RebalanceStrategy = shard.RebalanceStrategy

const (
	// RebalanceMinimal (the default) re-splits only the shards breaching
	// the skew bound, plus the neighbors absorbing their load; every other
	// boundary stays bit-identical, so migration volume and the
	// publish-window pause track the drift size rather than the table size.
	RebalanceMinimal = shard.RebalanceMinimal
	// RebalanceQuantile re-splits every boundary on the global quantiles —
	// the exhaustive baseline.
	RebalanceQuantile = shard.RebalanceQuantile
)

// Rebalance re-splits the shard boundaries of a range-partitioned engine
// (Options.ShardByRange) on the current key distribution and migrates rows
// so every shard owns its new range, under the minimal-movement proposer:
// only the shards breaching the skew bound re-split (starved neighbors
// absorb their load), every other boundary stays bit-identical, and only
// rows in intervals whose owner actually changes migrate — a no-op when no
// shard breaches. Rows migrate through the engine's staged-move protocol:
// concurrent readers observe every row on exactly one shard throughout, and
// reads keep flowing except during bounded exclusive windows (the last one
// reported as Pause). Writes keep flowing with one caveat shared with
// cross-shard moves: a Delete or UpdateKey targeting a row currently in
// flight fails with "absent key" until the rebalance publishes — retry
// afterwards. On a durable engine the boundary change and bulk moves are
// WAL-logged and checkpointed, so a crash at any point recovers to one
// consistent boundary set.
func (e *Engine) Rebalance() (RebalanceResult, error) { return e.sh.Rebalance() }

// RebalanceWith is Rebalance under an explicit proposal strategy;
// RebalanceQuantile restores the exhaustive all-boundaries re-split, for
// comparing migration volume and publish pause against the minimal default
// (casperbench -rebalance reports both side by side).
func (e *Engine) RebalanceWith(s RebalanceStrategy) (RebalanceResult, error) {
	return e.sh.RebalanceWith(s)
}

// RebalanceTo migrates rows onto an explicit boundary set (strictly
// increasing, exactly Shards()-1 entries) — manual resharding for operators
// who know the target distribution better than any proposer. The migration
// is still planned from the ownership delta, so unchanged boundaries cost
// nothing; otherwise identical to Rebalance.
func (e *Engine) RebalanceTo(bounds []int64) (RebalanceResult, error) {
	return e.sh.RebalanceTo(bounds)
}

// ShardRowCounts returns the live-row count of every shard — the skew
// detector's input, useful for observing drift before rebalancing.
func (e *Engine) ShardRowCounts() []int { return e.sh.RowCounts() }

// ShardSkew returns the current max/mean shard row-count ratio (1 means
// perfectly balanced).
func (e *Engine) ShardSkew() float64 { return e.sh.Skew() }

// RebalancePolicy tunes the background auto-rebalancer (see
// StartAutoRebalance). Zero fields select defaults.
type RebalancePolicy struct {
	// CheckEvery is the skew check cadence (default 200ms).
	CheckEvery time.Duration
	// MaxSkew triggers a rebalance when the max/mean shard row-count ratio
	// reaches this value (default 1.5).
	MaxSkew float64
	// Strategy selects the boundary proposer (default RebalanceMinimal).
	Strategy RebalanceStrategy
	// MinRows is the minimum total row count before rebalancing is
	// considered (default 1024).
	MinRows int
	// MinOps is the minimum number of monitored operations between
	// rebalances (default 256), so an idle engine never rebalances on
	// stale skew.
	MinOps int
}

// StartAutoRebalance launches the background rebalancing worker: when the
// key distribution drifts so far that one shard holds MaxSkew times the mean
// row count (and the engine is absorbing writes), the shard boundaries are
// re-split automatically — the sharded analogue of the auto-retrainer's
// in-shard re-layout. Requires Options.ShardByRange.
func (e *Engine) StartAutoRebalance(p RebalancePolicy) error {
	return e.sh.StartAutoRebalance(shard.RebalancePolicy{
		CheckEvery: p.CheckEvery,
		MaxSkew:    p.MaxSkew,
		Strategy:   p.Strategy,
		MinRows:    p.MinRows,
		MinOps:     p.MinOps,
	})
}

// StopAutoRebalance stops the background rebalancer, waiting for any
// in-flight rebalance to finish. Safe to call when none is running.
func (e *Engine) StopAutoRebalance() { e.sh.StopAutoRebalance() }

// Rebalances returns the number of completed shard rebalances (manual and
// automatic).
func (e *Engine) Rebalances() uint64 { return e.sh.Rebalances() }

// Close stops background workers and, on a durable engine, fsyncs and
// closes the write-ahead logs, returning the first failure — under Sync
// modes weaker than SyncModeAlways this final fsync is what makes the
// latest writes durable. The engine remains usable for queries; writes
// after Close lose durability (reported where the write API returns an
// error; Insert surfaces WAL failures on the next SyncWAL/Checkpoint/Close
// instead).
func (e *Engine) Close() error { return e.sh.Close() }

// ---------------------------------------------------------------------------
// Observability: metrics registry and lifecycle event journal
// ---------------------------------------------------------------------------

// Snapshot is a point-in-time, JSON-marshalable view of every engine metric.
// All counts are monotonic, so the rate over an interval is the difference
// of two snapshots. The schema:
//
//   - Enabled: whether metric collection is on (Metrics turns it on).
//   - Epoch: the engine's global epoch at snapshot time — diffing two
//     snapshots gives the epoch rate (cross-shard moves + txn commits).
//   - EventSeq: sequence number of the newest journaled event; pass it to
//     Events to read only what is new.
//   - Ops: per-operation counts and latency histograms, keyed by operation
//     name ("point_query", "range_count", "range_sum", "multi_range",
//     "scan", "insert", "delete", "update_key", "payload", "len",
//     "chunks"). Latency histograms are power-of-two bucketed (an entry
//     with UpperBound u counts observations in (previous bound, u]) and
//     sampled (every 8th operation by default), so histogram counts are a
//     fraction of op counts.
//   - StripeRetries: optimistic gate-stripe revalidation retries (route
//     moved mid-lock).
//   - FanSubmits / FanInline: fan-out pool tasks run on workers vs inline
//     on the caller (pool saturated or single-CPU).
//   - CursorBatches: per-shard batches yielded to streaming cursors.
//   - CompensationHits: rows served from the staged-move registry because a
//     cross-shard move or rebalance had them in flight.
//   - Txn: commits, write-write conflicts, and explicit aborts at the Tx
//     API.
//   - WAL: appends, bytes, segment rolls, fsync latency histogram, and
//     group-commit batch-size histogram across all shard logs.
//   - Retrain / Rebalance: lifecycle durations — retrain wall time,
//     publish-window pause, rows migrated.
//   - Checkpoints: checkpoint cuts across all shards.
type Snapshot = obs.Snapshot

// Event is one engine lifecycle event from the bounded in-memory journal:
// retrain start/swap, rebalance propose/stage/publish/install, cross-shard
// move stage/publish/rollback, checkpoint cut/prune, WAL segment roll, and
// the recovery replay summary emitted during Open. Fields: Seq (monotonic,
// 1-based), UnixNano, Kind (e.g. "rebalance.publish"), Shard (-1 =
// engine-wide), and optional Epoch, Rows, DurNs, Note. The journal keeps
// the newest 1024 events; events are always recorded, even with metrics
// disabled, so Open-time history (recovery replay) is never lost.
type Event = obs.Event

// OpStats is one operation's count and latency histogram in a Snapshot.
type OpStats = obs.OpStats

// HistStats is a histogram snapshot: Count, Sum, and sparse power-of-two
// buckets, with Mean and Quantile helpers (Quantile returns a bucket
// upper bound — an overestimate of at most 2x).
type HistStats = obs.HistStats

// Metrics snapshots the engine's metrics registry. The first call (or
// EnableMetrics) permanently enables collection; before that the engine
// pays a single atomic check per operation and records nothing. The
// returned Snapshot marshals to JSON and is served over HTTP by
// obs/httpdebug (casperbench -http).
func (e *Engine) Metrics() Snapshot {
	e.obsOnce.Do(e.sh.EnableObs)
	return e.sh.Metrics()
}

// EnableMetrics turns metric collection on without taking a snapshot — call
// it at startup so the first Metrics diff covers the whole interval.
func (e *Engine) EnableMetrics() { e.obsOnce.Do(e.sh.EnableObs) }

// Events returns the journaled lifecycle events with Seq > since, oldest
// first — pass 0 for everything retained, or the EventSeq of the last
// Snapshot (or the Seq of the last Event seen) to tail incrementally.
func (e *Engine) Events(since uint64) []Event { return e.sh.Events(since) }
