package casper

import (
	"testing"
)

func TestMonitorRecordsAndRetrains(t *testing.T) {
	keys := UniformKeys(4000, 40_000, 13)
	e, err := Open(keys, testOptions(ModeCasper))
	if err != nil {
		t.Fatal(err)
	}
	if e.Monitored() != 0 {
		t.Fatal("monitor active before StartMonitor")
	}
	if err := e.Retrain(1); err == nil {
		t.Fatal("Retrain without monitor accepted")
	}

	e.StartMonitor(1000)
	var ops []Op
	for i := 0; i < 300; i++ {
		ops = append(ops, Op{Kind: PointQuery, Key: int64(i * 100)})
		ops = append(ops, Op{Kind: Insert, Key: int64(i * 50)})
	}
	e.ExecuteAll(ops)
	if got := e.Monitored(); got != 600 {
		t.Fatalf("Monitored = %d, want 600", got)
	}
	if err := e.Retrain(2); err != nil {
		t.Fatalf("Retrain: %v", err)
	}
	if len(e.Layouts()) == 0 {
		t.Fatal("no layouts after retrain")
	}
	// Data survives the re-partitioning cycle.
	if e.Len() != 4000+300 {
		t.Fatalf("Len = %d, want 4300", e.Len())
	}

	rec := e.StopMonitor()
	if len(rec) != 600 {
		t.Fatalf("StopMonitor returned %d ops, want 600", len(rec))
	}
	if e.Monitored() != 0 {
		t.Fatal("monitor still active after StopMonitor")
	}
}

func TestMonitorWindowEviction(t *testing.T) {
	e := openTest(t, ModeCasper, 500)
	e.StartMonitor(100)
	for i := 0; i < 500; i++ {
		e.Execute(Op{Kind: PointQuery, Key: int64(i)})
	}
	got := e.Monitored()
	if got > 100 {
		t.Fatalf("monitor kept %d ops, cap 100", got)
	}
	if got == 0 {
		t.Fatal("monitor empty after 500 ops")
	}
	// The retained window is the most recent operations.
	rec := e.StopMonitor()
	if rec[len(rec)-1].Key != 499 {
		t.Fatalf("last recorded key = %d, want 499", rec[len(rec)-1].Key)
	}
}

func TestRetrainAdaptsToDrift(t *testing.T) {
	// Train for reads on the low domain, then shift traffic to the high
	// domain and retrain: the observed mean point-query latency should not
	// degrade after the re-partitioning cycle.
	keys := make([]int64, 8192)
	for i := range keys {
		keys[i] = int64(i)
	}
	e, err := Open(keys, Options{
		Mode:        ModeCasper,
		PayloadCols: 1,
		ChunkValues: 16_384,
		BlockBytes:  1024, // 128 values per block
		GhostFrac:   0.01,
		Partitions:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var initial []Op
	for i := 0; i < 2000; i++ {
		initial = append(initial, Op{Kind: PointQuery, Key: int64(i % 2048)})
		if i%4 == 0 {
			initial = append(initial, Op{Kind: Insert, Key: int64(4096 + i%2048)})
		}
	}
	if err := e.Train(initial, 1); err != nil {
		t.Fatal(err)
	}
	before := e.Layouts()[0]

	// Drifted traffic: reads now hammer the high domain.
	e.StartMonitor(10_000)
	for i := 0; i < 2000; i++ {
		e.Execute(Op{Kind: PointQuery, Key: int64(6144 + i%2048)})
		if i%4 == 0 {
			e.Execute(Op{Kind: Insert, Key: int64(i % 2048)})
		}
	}
	if err := e.Retrain(1); err != nil {
		t.Fatal(err)
	}
	after := e.Layouts()[0]
	if before.Partitions == after.Partitions {
		// Partition counts may coincide; the sizes must differ if the
		// layout really adapted.
		same := len(before.Sizes) == len(after.Sizes)
		if same {
			for i := range before.Sizes {
				if before.Sizes[i] != after.Sizes[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("layout did not adapt to drift: %v", after.Sizes)
		}
	}
}
