package casper

import (
	"errors"
	"testing"
	"time"
)

func testOptions(mode Mode) Options {
	return Options{
		Mode:        mode,
		PayloadCols: 3,
		ChunkValues: 1024,
		BlockBytes:  512, // 64 values per block
		GhostFrac:   0.01,
		Partitions:  8,
	}
}

func openTest(t *testing.T, mode Mode, n int) *Engine {
	t.Helper()
	keys := UniformKeys(n, int64(n)*10, 77)
	e, err := Open(keys, testOptions(mode))
	if err != nil {
		t.Fatalf("Open(%v): %v", mode, err)
	}
	return e
}

func TestOpenAllModes(t *testing.T) {
	for _, mode := range AllModes() {
		e := openTest(t, mode, 3000)
		if e.Len() != 3000 {
			t.Errorf("%v: Len = %d, want 3000", mode, e.Len())
		}
		if e.Mode() != mode {
			t.Errorf("Mode = %v, want %v", e.Mode(), mode)
		}
		if e.Chunks() < 2 {
			t.Errorf("%v: chunks = %d, want >= 2", mode, e.Chunks())
		}
	}
}

func TestOpenRejectsEmptyKeys(t *testing.T) {
	if _, err := Open(nil, testOptions(ModeCasper)); err == nil {
		t.Fatal("Open(nil) succeeded")
	}
}

func TestOpenRejectsInfeasibleSLA(t *testing.T) {
	keys := UniformKeys(100, 1000, 1)
	opts := testOptions(ModeCasper)
	opts.ReadSLA = 1 // below one random read
	if _, err := Open(keys, opts); err == nil {
		t.Fatal("infeasible read SLA accepted")
	}
	opts = testOptions(ModeCasper)
	opts.UpdateSLA = 1
	if _, err := Open(keys, opts); err == nil {
		t.Fatal("infeasible update SLA accepted")
	}
}

func TestEndToEndCasperFlow(t *testing.T) {
	keys := UniformKeys(4000, 40_000, 5)
	e, err := Open(keys, testOptions(ModeCasper))
	if err != nil {
		t.Fatal(err)
	}
	sample, err := PresetWorkload(HybridSkewed, keys, 40_000, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(sample, 2); err != nil {
		t.Fatal(err)
	}
	if len(e.Layouts()) == 0 {
		t.Fatal("no layouts after training")
	}
	// Execute the sample; spot check against a second engine in a
	// baseline mode.
	ref, err := Open(keys, testOptions(ModeSorted))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range sample {
		if got, want := e.Execute(op), ref.Execute(op); got != want {
			t.Fatalf("op %d (%+v): casper=%d sorted=%d", i, op, got, want)
		}
	}
}

func TestQueriesAndWrites(t *testing.T) {
	keys := []int64{10, 20, 20, 30, 40, 50}
	e, err := Open(keys, Options{Mode: ModeCasper, PayloadCols: 2, ChunkValues: 100, BlockBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.PointQuery(20); got != 2 {
		t.Errorf("PointQuery(20) = %d, want 2", got)
	}
	if got := e.RangeCount(15, 45); got != 4 {
		t.Errorf("RangeCount = %d, want 4", got)
	}
	if got := e.RangeSum(15, 45); got != 110 {
		t.Errorf("RangeSum = %d, want 110", got)
	}
	e.Insert(25)
	if got := e.PointQuery(25); got != 1 {
		t.Errorf("PointQuery(25) = %d, want 1", got)
	}
	if err := e.Delete(25); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(25); err == nil {
		t.Error("double delete succeeded")
	}
	if err := e.UpdateKey(10, 35); err != nil {
		t.Fatal(err)
	}
	if e.PointQuery(10) != 0 || e.PointQuery(35) != 1 {
		t.Error("update not applied")
	}
}

func TestMultiRangeSumPublic(t *testing.T) {
	keys := make([]int64, 50)
	for i := range keys {
		keys[i] = int64(i)
	}
	gen := func(key int64, col int) int32 {
		if col == 0 {
			return int32(key % 5)
		}
		return 1
	}
	e, err := Open(keys, Options{Mode: ModeCasper, PayloadCols: 2, ChunkValues: 100, BlockBytes: 64, PayloadGen: gen})
	if err != nil {
		t.Fatal(err)
	}
	// Keys 0..49, filter key%5 == 0 (via [0,0]): 10 rows, each summing 1.
	got := e.MultiRangeSum(0, 49, []Filter{{Col: 0, Lo: 0, Hi: 0}}, 1)
	if got != 10 {
		t.Errorf("MultiRangeSum = %d, want 10", got)
	}
}

func TestTransactionsCommitAndConflict(t *testing.T) {
	e := openTest(t, ModeCasper, 1000)
	key := int64(123456) // absent

	tx := e.Begin()
	if ok, _ := tx.Exists(key); ok {
		t.Fatal("absent key reported present")
	}
	if err := tx.Insert(key); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tx.Exists(key); !ok {
		t.Fatal("own insert invisible")
	}
	// Not yet visible outside.
	if e.PointQuery(key) != 0 {
		t.Fatal("uncommitted insert visible in storage")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.PointQuery(key) != 1 {
		t.Fatal("committed insert not applied to storage")
	}

	// Write-write conflict: two transactions delete the same row.
	a, b := e.Begin(), e.Begin()
	if err := a.Delete(key); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(key); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err == nil {
		t.Fatal("second committer should conflict")
	}
	if e.PointQuery(key) != 0 {
		t.Fatal("row should be deleted exactly once")
	}
}

func TestTransactionDeleteAbsent(t *testing.T) {
	e := openTest(t, ModeCasper, 500)
	tx := e.Begin()
	if err := tx.Delete(999_999_999); err == nil {
		t.Fatal("delete of absent key accepted")
	}
}

func TestTransactionAbortDiscards(t *testing.T) {
	e := openTest(t, ModeCasper, 500)
	tx := e.Begin()
	if err := tx.Insert(888_888); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after abort accepted")
	}
	if e.PointQuery(888_888) != 0 {
		t.Fatal("aborted insert leaked into storage")
	}
}

func TestTransactionUpdateCarriesPayload(t *testing.T) {
	keys := []int64{100, 200, 300}
	e, err := Open(keys, Options{Mode: ModeCasper, PayloadCols: 1, ChunkValues: 100, BlockBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	want, ok := e.Payload(200, 0)
	if !ok {
		t.Fatal("payload missing")
	}
	tx := e.Begin()
	if err := tx.Update(200, 250); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, ok := e.Payload(250, 0)
	if !ok || got != want {
		t.Fatalf("payload after txn update = %d,%v, want %d", got, ok, want)
	}
}

func TestPresetWorkloadUnknown(t *testing.T) {
	if _, err := PresetWorkload("bogus", []int64{1}, 10, 5, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestShiftWorkloadRotates(t *testing.T) {
	ops := []Op{
		{Kind: PointQuery, Key: 90},
		{Kind: RangeSum, Key: 10, Key2: 20},
		{Kind: Update, Key: 5, Key2: 50},
	}
	shifted := ShiftWorkload(ops, 99, 0.2) // shift by 20
	if shifted[0].Key != 10 {              // 90+20 wraps to 10
		t.Errorf("point key = %d, want 10", shifted[0].Key)
	}
	if shifted[1].Key != 30 || shifted[1].Key2 != 40 {
		t.Errorf("range = [%d,%d], want [30,40]", shifted[1].Key, shifted[1].Key2)
	}
	if shifted[2].Key != 25 || shifted[2].Key2 != 50 {
		t.Errorf("update = %+v, want Key 25 Key2 50", shifted[2])
	}
	if len(ShiftWorkload(nil, 99, 0.5)) != 0 {
		t.Error("nil ops should shift to empty")
	}
}

func TestSortKeys(t *testing.T) {
	got := SortKeys([]int64{3, 1, 2})
	for i, want := range []int64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("SortKeys = %v", got)
		}
	}
}

func TestExecuteParallelPublic(t *testing.T) {
	e := openTest(t, ModeCasper, 2000)
	var ops []Op
	for i := 0; i < 500; i++ {
		ops = append(ops, Op{Kind: PointQuery, Key: int64(i * 37)})
	}
	if s, p := e.ExecuteAll(ops), e.ExecuteParallel(ops, 4); s != p {
		t.Fatalf("serial %d != parallel %d", s, p)
	}
}

func TestDeleteReturnsNotFoundError(t *testing.T) {
	e := openTest(t, ModeSorted, 100)
	err := e.Delete(987_654_321)
	if err == nil {
		t.Fatal("expected error")
	}
	var dummy error = err
	_ = errors.Unwrap(dummy) // must be a wrapped, inspectable error
}

func TestShardedEngineMatchesSingleTable(t *testing.T) {
	keys := UniformKeys(5_000, 50_000, 77)
	single, err := Open(keys, testOptions(ModeCasper))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(ModeCasper)
	opts.Shards = 8
	sharded, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if single.Shards() != 1 || sharded.Shards() != 8 {
		t.Fatalf("shard counts = %d, %d", single.Shards(), sharded.Shards())
	}
	sample, err := PresetWorkload(HybridSkewed, keys, 50_000, 1_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{single, sharded} {
		if err := e.Train(sample, 2); err != nil {
			t.Fatal(err)
		}
	}
	ops, err := PresetWorkload(HybridSkewed, keys, 50_000, 1_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := single.ExecuteAll(ops), sharded.ExecuteAll(ops); s != p {
		t.Fatalf("single sink %d != sharded sink %d", s, p)
	}
	if s, p := single.Len(), sharded.Len(); s != p {
		t.Fatalf("single Len %d != sharded Len %d", s, p)
	}
	for k := int64(0); k < 50_000; k += 509 {
		if s, p := single.PointQuery(k), sharded.PointQuery(k); s != p {
			t.Fatalf("PointQuery(%d): single %d != sharded %d", k, s, p)
		}
	}
	if s, p := single.RangeSum(1_000, 40_000), sharded.RangeSum(1_000, 40_000); s != p {
		t.Fatalf("RangeSum: single %d != sharded %d", s, p)
	}
	if got := len(sharded.Layouts()); got == 0 {
		t.Error("sharded Layouts empty")
	}
}

func TestApplyBatchPublic(t *testing.T) {
	opts := testOptions(ModeCasper)
	opts.Shards = 4
	keys := UniformKeys(2_000, 20_000, 77)
	e, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	var batch []Op
	for i := 0; i < 256; i++ {
		batch = append(batch, Op{Kind: Insert, Key: int64(100_000 + i)})
	}
	before := e.Len()
	if sink := e.ApplyBatch(batch); sink != int64(len(batch)) {
		t.Fatalf("batch sink = %d, want %d", sink, len(batch))
	}
	if got, want := e.Len(), before+len(batch); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	p := e.ApplyBatchAsync(batch)
	if sink := p.Wait(); sink != int64(len(batch)) {
		t.Fatalf("async batch sink = %d, want %d", sink, len(batch))
	}
}

func TestAutoRetrainPublic(t *testing.T) {
	opts := testOptions(ModeCasper)
	opts.Shards = 2
	keys := UniformKeys(4_000, 40_000, 77)
	e, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartAutoRetrain(RetrainPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := e.StartAutoRetrain(RetrainPolicy{}); err == nil {
		t.Error("second StartAutoRetrain should error")
	}
	e.StopAutoRetrain()
	e.StopAutoRetrain() // idempotent
	e.Close()

	sorted := openTest(t, ModeSorted, 100)
	if err := sorted.StartAutoRetrain(RetrainPolicy{}); err == nil {
		t.Error("auto-retrain on non-Casper mode should error")
	}
}

// TestViewAndEpochAcrossShards exercises the public snapshot surface: a
// cross-shard UpdateKey advances the engine epoch exactly once, a View pins
// the moved row at exactly one of its two keys, and transaction commits
// share the same epoch domain.
func TestViewAndEpochAcrossShards(t *testing.T) {
	keys := UniformKeys(2_000, 100_000, 4)
	opts := testOptions(ModeCasper)
	opts.Shards = 4
	eng, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh key pair on different shards.
	part := eng.sh.Partitioner()
	old := int64(200_001)
	new := old + 1
	for part.Shard(new) == part.Shard(old) {
		new++
	}
	eng.Insert(old)

	before := eng.Epoch()
	if err := eng.UpdateKey(old, new); err != nil {
		t.Fatal(err)
	}
	if after := eng.Epoch(); after != before+1 {
		t.Fatalf("cross-shard move bumped epoch %d -> %d, want exactly one bump", before, after)
	}
	eng.View(func(v *View) {
		if got := v.PointQuery(old) + v.PointQuery(new); got != 1 {
			t.Errorf("view sees the moved row %d times, want 1", got)
		}
		if v.Epoch() != eng.sh.Epoch() {
			t.Errorf("view epoch %d != engine epoch %d", v.Epoch(), eng.sh.Epoch())
		}
		if got, want := v.Len(), eng.sh.Len(); got != want {
			t.Errorf("view Len = %d, want %d", got, want)
		}
		filters := []Filter{{Col: 0, Lo: -1 << 30, Hi: 1 << 30}}
		if got, want := v.MultiRangeSum(0, 100_000, filters, 1), eng.MultiRangeSum(0, 100_000, filters, 1); got != want {
			t.Errorf("view MultiRangeSum = %d, want %d", got, want)
		}
	})

	// Transaction commits draw from the same epoch domain as moves.
	preCommit := eng.Epoch()
	tx := eng.Begin()
	if err := tx.Insert(300_000); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Epoch(); got <= preCommit {
		t.Errorf("commit did not advance the shared epoch: %d -> %d", preCommit, got)
	}
}

// TestDurableOpenRecoversThroughPublicAPI drives durability end to end
// through the exported surface: bootstrap a durable engine, mutate it,
// reopen the directory, and observe identical query results — including
// after transactions and cross-shard updates that exercise the shared
// epoch oracle.
func TestDurableOpenRecoversThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(ModeCasper)
	opts.Shards = 4
	opts.Dir = dir
	opts.Sync = SyncModeAlways

	keys := UniformKeys(2000, 20000, 9)
	e, err := Open(keys, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e.Insert(555_555)
	e.Insert(555_555)
	if err := e.Delete(keys[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := e.UpdateKey(keys[1], 777_777); err != nil {
		t.Fatalf("UpdateKey: %v", err)
	}
	tx := e.Begin()
	if err := tx.Insert(888_888); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	wantLen := e.Len()
	wantSum := e.RangeSum(0, 1_000_000)
	wantEpoch := e.Epoch()
	e.Close()

	// Recovery ignores the key argument when the directory has state.
	re, err := Open(nil, opts)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != wantLen {
		t.Fatalf("recovered Len = %d, want %d", got, wantLen)
	}
	if got := re.RangeSum(0, 1_000_000); got != wantSum {
		t.Fatalf("recovered RangeSum = %d, want %d", got, wantSum)
	}
	if got := re.PointQuery(555_555); got != 2 {
		t.Fatalf("recovered PointQuery(555555) = %d, want 2", got)
	}
	if got := re.PointQuery(777_777); got != 1 {
		t.Fatalf("recovered PointQuery(777777) = %d, want 1", got)
	}
	if got := re.PointQuery(888_888); got != 1 {
		t.Fatalf("recovered txn insert invisible")
	}
	if re.Epoch() < wantEpoch {
		t.Fatalf("recovered epoch %d regressed below %d", re.Epoch(), wantEpoch)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after recovery: %v", err)
	}
	if pend := re.PendingMoves(); len(pend) != 0 {
		t.Fatalf("idle engine reports pending moves: %+v", pend)
	}
}

// TestRebalancePublicAPI drives drift-triggered shard rebalancing through
// the public surface: a range-sharded engine whose write distribution drifts
// to one end of the key range must report growing skew, rebalance below the
// 1.5x acceptance threshold (manually and via the auto worker), and keep
// every row queryable with its payload intact.
func TestRebalancePublicAPI(t *testing.T) {
	opts := testOptions(ModeCasper)
	opts.Shards = 4
	opts.ShardByRange = true
	keys := UniformKeys(4_000, 40_000, 7)
	e, err := Open(keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Hash-partitioned engines refuse to rebalance.
	h, err := Open(keys, func() Options { o := testOptions(ModeCasper); o.Shards = 4; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Rebalance(); err == nil {
		t.Error("Rebalance on a hash-sharded engine should error")
	}

	// Drift: pile writes past the top of the loaded range.
	for i := 0; i < 3_000; i++ {
		e.Insert(40_001 + int64(i))
	}
	if got := e.ShardSkew(); got < 1.5 {
		t.Fatalf("drift produced skew %.2f, want >= 1.5", got)
	}
	if counts := e.ShardRowCounts(); len(counts) != 4 {
		t.Fatalf("ShardRowCounts returned %d shards", len(counts))
	}
	wantLen := e.Len()
	wantSum := e.RangeSum(0, 100_000)

	res, err := e.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if res.Moved == 0 || res.SkewAfter >= 1.5 {
		t.Fatalf("rebalance moved %d rows, skew %.2f -> %.2f; want movement and < 1.5",
			res.Moved, res.SkewBefore, res.SkewAfter)
	}
	if got := e.Len(); got != wantLen {
		t.Fatalf("Len changed across rebalance: %d -> %d", wantLen, got)
	}
	if got := e.RangeSum(0, 100_000); got != wantSum {
		t.Fatalf("RangeSum changed across rebalance: %d -> %d", wantSum, got)
	}
	for i := 0; i < 3_000; i += 211 {
		k := 40_001 + int64(i)
		if got := e.PointQuery(k); got != 1 {
			t.Fatalf("PointQuery(%d) = %d after rebalance", k, got)
		}
	}
	if got := e.Rebalances(); got != 1 {
		t.Fatalf("Rebalances = %d, want 1", got)
	}
	// The minimal default left the repaired fleet alone; the exhaustive
	// quantile baseline stays selectable through RebalanceWith.
	if res, err := e.Rebalance(); err != nil || res.Moved != 0 {
		t.Fatalf("repeat minimal rebalance: moved %d, err %v; want a no-op", res.Moved, err)
	}
	if _, err := e.RebalanceWith(RebalanceQuantile); err != nil {
		t.Fatalf("RebalanceWith(RebalanceQuantile): %v", err)
	}
	if got := e.ShardSkew(); got >= 1.5 {
		t.Fatalf("skew %.2f after quantile rebalance", got)
	}

	// Auto mode: a second drift burst under the background worker.
	base := e.Rebalances()
	if err := e.StartAutoRebalance(RebalancePolicy{CheckEvery: 5 * time.Millisecond, MinRows: 100, MinOps: 8}); err != nil {
		t.Fatal(err)
	}
	defer e.StopAutoRebalance()
	for i := 0; i < 4_000; i++ {
		e.Insert(50_001 + int64(i))
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.Rebalances() == base && time.Now().Before(deadline) {
		e.Insert(50_001 + int64(time.Now().UnixNano()%4_000))
		time.Sleep(time.Millisecond)
	}
	if e.Rebalances() == base {
		t.Fatalf("auto-rebalance never triggered (skew %.2f)", e.ShardSkew())
	}
	if got := e.ShardSkew(); got >= 1.5 {
		t.Fatalf("skew %.2f after auto-rebalance, want < 1.5", got)
	}
}
