// SLA tuning: Casper accepts latency service-level agreements as
// optimization constraints (§5, Eq. 21; Fig. 15). An update SLA caps the
// partition count (bounding the worst-case ripple); a read SLA caps the
// partition width (bounding the worst-case point-query scan). This example
// sweeps an insert SLA and shows the layout and latencies adapting.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"casper"
)

const (
	rows      = 100_000
	domainMax = 1_000_000
)

func main() {
	keys := casper.UniformKeys(rows, domainMax, 5)
	sample, err := casper.PresetWorkload(casper.SLAHybrid, keys, domainMax, 6_000, 2)
	if err != nil {
		log.Fatal(err)
	}
	run, err := casper.PresetWorkload(casper.SLAHybrid, keys, domainMax, 3_000, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-10s %-12s %-12s\n", "insert SLA", "max parts", "insert us", "point us")
	// The model's ripple step is RR+RW = 200ns; an SLA of 200·(1+k) ns
	// admits at most k partitions.
	for _, slaNs := range []float64{0, 6600, 3400, 1800, 1000, 600} {
		eng, err := casper.Open(keys, casper.Options{
			Mode:        casper.ModeCasper,
			PayloadCols: 7,
			ChunkValues: 65_536,
			GhostFrac:   0.001,
			Partitions:  32,
			UpdateSLA:   slaNs,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Train(sample, runtime.NumCPU()); err != nil {
			log.Fatal(err)
		}
		maxParts := 0
		for _, l := range eng.Layouts() {
			if l.Partitions > maxParts {
				maxParts = l.Partitions
			}
		}
		var insNs, pqNs, insN, pqN int64
		for _, op := range run {
			t0 := time.Now()
			eng.Execute(op)
			d := time.Since(t0).Nanoseconds()
			switch op.Kind {
			case casper.Insert:
				insNs += d
				insN++
			case casper.PointQuery:
				pqNs += d
				pqN++
			}
		}
		label := "none"
		if slaNs > 0 {
			label = fmt.Sprintf("%.1f us", slaNs/1e3)
		}
		fmt.Printf("%-12s %-10d %-12.2f %-12.2f\n", label, maxParts,
			float64(insNs)/float64(insN)/1e3, float64(pqNs)/float64(pqN)/1e3)
	}
	fmt.Println("\nTighter insert SLAs force fewer partitions: inserts get cheaper,")
	fmt.Println("point queries scan wider partitions, throughput barely moves (Fig. 15).")
}
