// Quickstart: load a column, train Casper's layout on a sampled workload,
// and watch point queries, range queries, inserts, deletes, and updates run
// against the optimized partitioned column (the operations of Figs. 3–4 of
// the paper).
package main

import (
	"fmt"
	"log"
	"runtime"

	"casper"
)

func main() {
	const (
		rows      = 200_000
		domainMax = 2_000_000
	)

	// 1. Load 200k uniformly distributed keys.
	keys := casper.UniformKeys(rows, domainMax, 42)
	eng, err := casper.Open(keys, casper.Options{
		Mode:        casper.ModeCasper,
		PayloadCols: 7,
		ChunkValues: 65_536,
		GhostFrac:   0.01, // 1% ghost value budget
		Partitions:  32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows into %d column chunks (%s)\n",
		eng.Len(), eng.Chunks(), eng.CostParams())

	// 2. Sample the expected workload: skewed hybrid mix of point queries
	//    and inserts with 1% updates (the paper's Fig. 13a mix).
	sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domainMax, 10_000, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Solve for the optimal layout and apply it.
	if err := eng.Train(sample, runtime.NumCPU()); err != nil {
		log.Fatal(err)
	}
	for _, l := range eng.Layouts()[:1] {
		fmt.Printf("chunk %d: %d partitions, sizes %v..., ghosts %v...\n",
			l.Chunk, l.Partitions, head(l.Sizes, 6), head(l.Ghosts, 6))
	}

	// 4. Run the five fundamental operations.
	k := keys[rows/2]
	fmt.Printf("point query key=%d -> %d rows\n", k, eng.PointQuery(k))
	fmt.Printf("range count [%d, %d] -> %d rows\n", domainMax/4, domainMax/2,
		eng.RangeCount(int64(domainMax/4), int64(domainMax/2)))
	fmt.Printf("range sum   [%d, %d] -> %d\n", domainMax/4, domainMax/2,
		eng.RangeSum(int64(domainMax/4), int64(domainMax/2)))

	eng.Insert(777_777)
	fmt.Printf("inserted 777777 -> point query finds %d\n", eng.PointQuery(777_777))

	if err := eng.UpdateKey(777_777, 888_888); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated 777777 -> 888888; old=%d new=%d\n",
		eng.PointQuery(777_777), eng.PointQuery(888_888))

	if err := eng.Delete(888_888); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted 888888 -> point query finds %d\n", eng.PointQuery(888_888))

	// 5. Transactions: snapshot isolation with first-committer-wins.
	tx := eng.Begin()
	if err := tx.Insert(999_999); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inside txn: storage sees %d (uncommitted writes are buffered)\n",
		eng.PointQuery(999_999))
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after commit: storage sees %d\n", eng.PointQuery(999_999))
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}
