// Robustness: what happens when the workload the layout was trained for is
// not the workload that arrives (§7.5, Fig. 16)? This example trains Casper
// on a workload whose point queries target the late key domain and whose
// inserts target the early domain, then serves rotated variants of that
// workload and reports the latency penalty — a plateau for small shifts,
// then a cliff.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"casper"
)

const (
	rows      = 100_000
	domainMax = 1_000_000
)

func main() {
	keys := casper.UniformKeys(rows, domainMax, 9)

	// Train on the opposing-skew workload of Fig. 16a.
	train, err := casper.PresetWorkload("robust-50-50", keys, domainMax, 8_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := casper.Open(keys, casper.Options{
		Mode:        casper.ModeCasper,
		PayloadCols: 7,
		ChunkValues: 65_536,
		GhostFrac:   0.01,
		Partitions:  32,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Train(train, runtime.NumCPU()); err != nil {
		log.Fatal(err)
	}

	eval, err := casper.PresetWorkload("robust-50-50", keys, domainMax, 3_000, 2)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(ops []casper.Op) float64 {
		t0 := time.Now()
		eng.ExecuteAll(ops)
		return float64(time.Since(t0).Nanoseconds()) / float64(len(ops))
	}
	base := measure(eval)

	fmt.Printf("%-18s %-14s %s\n", "rotational shift", "ns/op", "normalized")
	for _, rot := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50} {
		ops := eval
		if rot > 0 {
			ops = casper.ShiftWorkload(eval, domainMax, rot)
		}
		ns := measure(ops)
		fmt.Printf("%-18s %-14.0f %.2fx\n", fmt.Sprintf("%.0f%%", rot*100), ns, ns/base)
	}
	fmt.Println("\nSmall shifts are absorbed by the trained layout; large shifts push")
	fmt.Println("inserts into finely partitioned regions and reads into coarse ones,")
	fmt.Println("reproducing the robustness cliff of Fig. 16.")
}
