// Pagination: serve stable, LIMIT-bounded pages of an ascending key scan
// while the engine keeps ingesting — the streaming read path of the engine.
//
// Two recipes are shown:
//
//  1. Page tokens (Engine.Scan + Cursor.PageToken): each page is a fresh
//     short-lived cursor that resumes where the previous page ended. Pages
//     are internally exact; writes landing between pages are picked up by
//     later pages — the usual REST-style cursor pagination.
//  2. A pinned View (View.Scan): every page of one pagination session reads
//     the same move-stable snapshot, so concurrent cross-shard moves and
//     rebalances cannot reorder or repeat rows across pages.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"casper"
)

func main() {
	const (
		rows      = 100_000
		domainMax = 1_000_000
		pageSize  = 5
	)
	keys := casper.UniformKeys(rows, domainMax, 7)
	eng, err := casper.Open(keys, casper.Options{
		Mode:        casper.ModeCasper,
		PayloadCols: 3,
		ChunkValues: 65_536,
		Shards:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Live ingest in the background: a writer inserting fresh keys the whole
	// time we page. Cursors hold no locks between Next calls, so the writer
	// never stalls behind a slow reader.
	var ingested atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := int64(domainMax + 1); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			eng.Insert(k)
			ingested.Add(1)
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// Recipe 1: token pagination. Each page costs O(pageSize) work and
	// memory no matter how big the underlying range is.
	fmt.Printf("token pagination over [0, %d] (%d rows live, ingest running):\n", domainMax, eng.Len())
	tok := ""
	for page := 1; page <= 3; page++ {
		c := eng.Scan(0, domainMax, casper.ScanOptions{Limit: pageSize, PageToken: tok})
		fmt.Printf("  page %d:", page)
		for c.Next() {
			fmt.Printf(" %d", c.Key())
		}
		if err := c.Err(); err != nil {
			log.Fatal(err)
		}
		tok = c.PageToken() // hand this to the client; resume any time later
		c.Close()
		fmt.Printf("   (resume token %q)\n", tok)
	}

	// Recipe 2: a pinned View. Both drains below see byte-identical pages
	// even if a rebalance or cross-shard move tries to land mid-session —
	// the view's snapshot excludes them until it finishes.
	fmt.Println("\npinned-view pagination (two drains of one snapshot):")
	eng.View(func(v *casper.View) {
		for round := 1; round <= 2; round++ {
			c := v.Scan(500_000, domainMax, casper.ScanOptions{Limit: pageSize})
			fmt.Printf("  drain %d:", round)
			for c.Next() {
				fmt.Printf(" %d", c.Key())
			}
			c.Close()
			fmt.Println()
		}
	})

	close(stop)
	<-done
	fmt.Printf("\nbackground writer inserted %d rows while we paged; engine now holds %d rows\n",
		ingested.Load(), eng.Len())
}
