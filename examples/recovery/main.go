// Recovery: open a durable engine, ingest and train, kill it without a
// clean shutdown, and reopen the directory — rows, payloads, the trained
// layout, and the epoch oracle all come back without re-running the solver.
// The engine's durability stack is a per-shard write-ahead log (CRC-framed
// records with the same row identity the retrain journal uses) plus chunk
// checkpoints cut under the cross-shard move gate.
package main

import (
	"fmt"
	"log"
	"os"

	"casper"
)

func main() {
	const (
		rows      = 100_000
		domainMax = 1_000_000
	)
	dir, err := os.MkdirTemp("", "casper-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := casper.Options{
		Mode:   casper.ModeCasper,
		Shards: 4,
		Dir:    dir,
		Sync:   casper.SyncModeAlways, // every acknowledged write is durable
	}

	// 1. Bootstrap: load keys and persist the initial state.
	keys := casper.UniformKeys(rows, domainMax, 42)
	eng, err := casper.Open(keys, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d rows into %s (%d shards, WAL fsync=always)\n",
		eng.Len(), dir, eng.Shards())

	// 2. Train the layout and mutate: the trained partitioning lands in the
	//    checkpoints, the writes in the per-shard WALs.
	sample, err := casper.PresetWorkload(casper.HybridSkewed, keys, domainMax, 5_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Train(sample, 2); err != nil {
		log.Fatal(err)
	}
	layouts := len(eng.Layouts())
	eng.Insert(domainMax + 1)
	eng.Insert(domainMax + 1)
	if err := eng.Delete(keys[0]); err != nil {
		log.Fatal(err)
	}
	// Move a row until the epoch bumps: hash routing decides shard
	// placement, and only a cross-shard move commits through the epoch
	// protocol (and the MoveOut/MoveIn WAL pair) we want to demonstrate.
	moved := int64(0)
	for i := 1; eng.Epoch() == 0; i++ {
		moved = domainMax + 1 + int64(i)
		if err := eng.UpdateKey(keys[i], moved); err != nil {
			log.Fatal(err)
		}
	}
	wantLen, wantEpoch := eng.Len(), eng.Epoch()
	fmt.Printf("trained %d chunk layouts; mutated to %d rows at epoch %d\n",
		layouts, wantLen, wantEpoch)

	// 3. "Crash": drop the engine on the floor. No Close, no final sync —
	//    recovery must work from the checkpoint + WAL tail alone.
	eng = nil
	fmt.Println("crashing without shutdown...")

	// 4. Recover: Open sees the directory's manifest and ignores the key
	//    argument, replaying the WAL tail onto the newest checkpoints.
	rec, err := casper.Open(nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()
	fmt.Printf("recovered %d rows (want %d) at epoch >= %d (got %d)\n",
		rec.Len(), wantLen, wantEpoch, rec.Epoch())
	fmt.Printf("trained layouts restored without the solver: %d chunks\n", len(rec.Layouts()))
	for _, probe := range []struct {
		name string
		got  int
		want int
	}{
		{"duplicate inserts", rec.PointQuery(domainMax + 1), 2},
		{"deleted row", rec.PointQuery(keys[0]), countOf(keys, keys[0]) - 1},
		{"moved row at new key", rec.PointQuery(moved), 1},
	} {
		status := "ok"
		if probe.got != probe.want {
			status = "MISMATCH"
		}
		fmt.Printf("  %-22s %d (want %d) %s\n", probe.name, probe.got, probe.want, status)
	}

	// 5. The recovered engine is live: it keeps appending to fresh WAL
	//    segments and checkpointing.
	rec.Insert(domainMax + 3)
	if err := rec.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered engine accepted new writes and checkpointed; done")
}

// countOf counts occurrences of k in keys (UniformKeys can duplicate).
func countOf(keys []int64, k int64) int {
	n := 0
	for _, v := range keys {
		if v == k {
			n++
		}
	}
	return n
}
